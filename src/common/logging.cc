#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

#include "common/annotations.hh"

namespace genax {

namespace {

/**
 * Serializes log emission so lines from concurrent pool workers
 * cannot interleave mid-message. Leaf lock: nothing else is ever
 * acquired while it is held (the guarded section only formats into
 * an already-built string and writes it).
 */
Mutex &
logMutex()
{
    static Mutex mu;
    return mu;
}

void
emitLine(const char *prefix, const std::string &msg)
{
    const MutexLock lk(logMutex());
    std::cerr << prefix << msg << std::endl;
}

void
emitLineAt(const char *prefix, const std::string &msg,
           const char *file, int line)
{
    const MutexLock lk(logMutex());
    std::cerr << prefix << msg << " @ " << file << ":" << line
              << std::endl;
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emitLineAt("panic: ", msg, file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emitLineAt("fatal: ", msg, file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emitLine("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    emitLine("info: ", msg);
}

} // namespace genax
