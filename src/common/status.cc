#include "common/status.hh"

#include <cerrno>
#include <cstring>

namespace genax {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "ok";
      case StatusCode::InvalidInput: return "invalid-input";
      case StatusCode::IoError: return "io-error";
      case StatusCode::NotFound: return "not-found";
      case StatusCode::ResourceExhausted: return "resource-exhausted";
      case StatusCode::Unavailable: return "unavailable";
      case StatusCode::FailedPrecondition: return "failed-precondition";
      case StatusCode::Internal: return "internal";
      case StatusCode::EndOfStream: return "end-of-stream";
    }
    return "unknown";
}

Status
Status::withContext(std::string_view context) const
{
    if (ok())
        return *this;
    std::string msg;
    msg.reserve(context.size() + 2 + _message.size());
    msg.append(context);
    msg.append(": ");
    msg.append(_message);
    return Status(_code, std::move(msg));
}

std::string
Status::str() const
{
    std::string out = "[";
    out += statusCodeName(_code);
    out += "]";
    if (!_message.empty()) {
        out += " ";
        out += _message;
    }
    return out;
}

Status
okStatus()
{
    return Status();
}

Status
invalidInputError(std::string message)
{
    return Status(StatusCode::InvalidInput, std::move(message));
}

Status
ioError(std::string message)
{
    return Status(StatusCode::IoError, std::move(message));
}

Status
notFoundError(std::string message)
{
    return Status(StatusCode::NotFound, std::move(message));
}

Status
resourceExhaustedError(std::string message)
{
    return Status(StatusCode::ResourceExhausted, std::move(message));
}

Status
unavailableError(std::string message)
{
    return Status(StatusCode::Unavailable, std::move(message));
}

Status
failedPreconditionError(std::string message)
{
    return Status(StatusCode::FailedPrecondition, std::move(message));
}

Status
internalError(std::string message)
{
    return Status(StatusCode::Internal, std::move(message));
}

Status
endOfStream()
{
    return Status(StatusCode::EndOfStream, "end of stream");
}

Status
ioErrorFromErrno(std::string_view action, std::string_view path)
{
    const int err = errno;
    std::string msg;
    msg.append(action);
    msg.append(" '");
    msg.append(path);
    msg.append("': ");
    msg.append(err != 0 ? std::strerror(err) : "unknown error");
    return ioError(std::move(msg));
}

} // namespace genax
