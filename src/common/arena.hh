/**
 * @file
 * Bump-pointer arena and a std-allocator adapter for hot-path
 * containers.
 *
 * The seeding path (SMEM position lists, CAM intersection scratch,
 * candidate vectors) allocates and frees many short-lived vectors per
 * read; on the sharded batch path that heap traffic serializes
 * workers on the allocator and dominates cache misses. An Arena hands
 * out memory by bumping a pointer through geometrically-growing
 * blocks and recycles everything at once with reset(), so steady
 * state does no allocator calls at all.
 *
 * Discipline (see DESIGN.md "Memory & streaming"):
 *
 *  - An arena is single-threaded: each worker / engine owns its own.
 *  - reset() invalidates every object allocated from the arena since
 *    the previous reset. Containers still holding arena memory must
 *    not be touched afterwards — the owner resets only at a point
 *    where all such containers are dead or already detached.
 *  - ArenaAllocator<T> default-constructs to a heap-fallback state,
 *    so arena-backed container types remain usable as ordinary
 *    members (e.g. `Smem::positions` in a test fixture).
 *  - Copy-constructing a container detaches the copy to the heap
 *    (select_on_container_copy_construction), so handing a seed's
 *    position list to long-lived state is safe by construction.
 *    Moves keep the source allocator (propagate-on-move), which is
 *    the cheap hand-off the hot path uses within one reset epoch.
 */

#ifndef GENAX_COMMON_ARENA_HH
#define GENAX_COMMON_ARENA_HH

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"

namespace genax {

/** Geometric bump allocator; all memory recycled by reset(). */
class Arena
{
  public:
    explicit Arena(size_t first_block_bytes = 16 * 1024)
        : _firstBlockBytes(first_block_bytes)
    {
        GENAX_CHECK(first_block_bytes > 0,
                    "arena needs a non-empty first block");
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate `bytes` aligned to `align` (a power of two). */
    void *
    allocate(size_t bytes, size_t align)
    {
        GENAX_DCHECK((align & (align - 1)) == 0,
                     "arena alignment not a power of two: ", align);
        for (;;) {
            if (_active < _blocks.size()) {
                Block &b = _blocks[_active];
                // Align the absolute address, not the block offset:
                // new char[] only guarantees alignof(max_align_t).
                const uintptr_t base =
                    reinterpret_cast<uintptr_t>(b.mem.get());
                const size_t aligned =
                    (((base + b.used) + (align - 1)) & ~(align - 1)) -
                    base;
                if (aligned + bytes <= b.size) {
                    b.used = aligned + bytes;
                    _allocated += bytes;
                    return b.mem.get() + aligned;
                }
                // Block full: fall through to the next (or a new) one.
                ++_active;
                continue;
            }
            addBlock(bytes + align);
        }
    }

    /**
     * Recycle every allocation at once. Memory is retained for reuse,
     * so a steady-state reset-per-batch loop stops calling the system
     * allocator after the first batch.
     */
    void
    reset()
    {
        for (Block &b : _blocks)
            b.used = 0;
        _active = 0;
        _allocated = 0;
    }

    /** Bytes handed out since the last reset. */
    size_t allocatedBytes() const { return _allocated; }

    /** Total bytes owned across all blocks. */
    size_t
    capacityBytes() const
    {
        size_t total = 0;
        for (const Block &b : _blocks)
            total += b.size;
        return total;
    }

  private:
    struct Block
    {
        std::unique_ptr<char[]> mem;
        size_t size = 0;
        size_t used = 0;
    };

    void
    addBlock(size_t at_least)
    {
        size_t size = _blocks.empty() ? _firstBlockBytes
                                      : _blocks.back().size * 2;
        if (size < at_least)
            size = at_least;
        _blocks.push_back(
            {std::unique_ptr<char[]>(new char[size]), size, 0});
        _active = _blocks.size() - 1;
    }

    size_t _firstBlockBytes;
    size_t _active = 0;
    size_t _allocated = 0;
    std::vector<Block> _blocks;
};

/**
 * std allocator over an Arena. Default-constructed instances (and
 * container copies) fall back to the global heap, so arena-backed
 * container types stay safe to use anywhere.
 */
template <typename T> class ArenaAllocator
{
  public:
    using value_type = T;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;
    using is_always_equal = std::false_type;

    ArenaAllocator() noexcept = default;
    explicit ArenaAllocator(Arena *arena) noexcept : _arena(arena) {}
    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &o) noexcept
        : _arena(o.arena())
    {
    }

    T *
    allocate(size_t n)
    {
        const size_t bytes = n * sizeof(T);
        if (_arena != nullptr)
            return static_cast<T *>(
                _arena->allocate(bytes, alignof(T)));
        return static_cast<T *>(::operator new(bytes));
    }

    void
    deallocate(T *p, size_t) noexcept
    {
        // Arena memory is recycled wholesale by Arena::reset().
        if (_arena == nullptr)
            ::operator delete(p);
    }

    /** Copies detach to the heap: the copy may outlive the arena. */
    ArenaAllocator
    select_on_container_copy_construction() const
    {
        return ArenaAllocator();
    }

    Arena *arena() const { return _arena; }

    template <typename U>
    bool
    operator==(const ArenaAllocator<U> &o) const
    {
        return _arena == o.arena();
    }

  private:
    Arena *_arena = nullptr;
};

/** Vector whose storage can live in an Arena (heap by default). */
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

} // namespace genax

#endif // GENAX_COMMON_ARENA_HH
