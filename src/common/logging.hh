/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — internal invariant violated; aborts.
 * fatal()  — unrecoverable user/configuration error; exits with code 1.
 * warn()   — something questionable happened but execution continues.
 * inform() — status message.
 *
 * Emission is serialized behind an annotated Mutex
 * (common/annotations.hh): a warn() from one pool worker cannot
 * interleave mid-line with another's. The message is formatted
 * before the lock is taken, so the guarded section is one stream
 * write.
 */

#ifndef GENAX_COMMON_LOGGING_HH
#define GENAX_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace genax {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail {

/** Concatenate a sequence of stream-able values into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    // void-cast: with an empty pack the fold is just `os`, which
    // would otherwise warn as a statement with no effect.
    static_cast<void>((os << ... << std::forward<Args>(args)));
    return os.str();
}

} // namespace detail

} // namespace genax

#define GENAX_PANIC(...) \
    ::genax::panicImpl(__FILE__, __LINE__, ::genax::detail::concat(__VA_ARGS__))
#define GENAX_FATAL(...) \
    ::genax::fatalImpl(__FILE__, __LINE__, ::genax::detail::concat(__VA_ARGS__))
#define GENAX_WARN(...) \
    ::genax::warnImpl(::genax::detail::concat(__VA_ARGS__))
#define GENAX_INFORM(...) \
    ::genax::informImpl(::genax::detail::concat(__VA_ARGS__))

/** Panic unless the given invariant holds. */
#define GENAX_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            GENAX_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // GENAX_COMMON_LOGGING_HH
