#include "common/threadpool.hh"

#include <algorithm>

#include "common/check.hh"

namespace genax {

ThreadPool::ThreadPool(unsigned workers)
{
    workers = std::max(1u, workers);
    _queues.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        _queues.push_back(std::make_unique<WorkerQueue>());
    _threads.reserve(workers);
    try {
        for (unsigned i = 0; i < workers; ++i)
            _threads.emplace_back([this, i]() { workerLoop(i); });
    } catch (...) {
        // Thread spawn failed part-way: shut down what started.
        _stop.store(true);
        _cv.notifyAll();
        for (auto &t : _threads)
            t.join();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    {
        const MutexLock lk(_mu);
        _stop.store(true);
    }
    _cv.notifyAll();
    for (auto &t : _threads)
        t.join();
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(resolveWidth(0));
    return pool;
}

unsigned
ThreadPool::resolveWidth(unsigned requested)
{
    // Clamp to the hardware width: on a low-core host an inflated
    // request would spawn runners that only contend on the chunk
    // cursor, and a clamped width of 1 lets parallelFor short-circuit
    // to the serial path with no region setup at all. Results are
    // width-invariant, so clamping cannot change output.
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    if (requested == 0)
        return hw;
    return std::min(requested, hw);
}

void
ThreadPool::submit(std::function<void()> task)
{
    GENAX_CHECK(task != nullptr, "null task submitted to thread pool");
    const u64 victim = _rr.fetch_add(1, std::memory_order_relaxed) %
                       _queues.size();
    {
        const MutexLock lk(_queues[victim]->mu);
        _queues[victim]->tasks.push_back(std::move(task));
    }
    {
        // The increment must synchronize with the sleep mutex:
        // otherwise it can land inside a worker's locked
        // predicate-check window and the notify is lost.
        const MutexLock lk(_mu);
        _pending.fetch_add(1);
    }
    _cv.notifyOne();
}

std::function<void()>
ThreadPool::grab(unsigned self)
{
    // Own deque first (front: oldest local work keeps FIFO fairness
    // for fire-and-forget tasks) ...
    {
        WorkerQueue &own = *_queues[self];
        const MutexLock lk(own.mu);
        if (!own.tasks.empty()) {
            auto task = std::move(own.tasks.front());
            own.tasks.pop_front();
            return task;
        }
    }
    // ... then steal from the back of the other deques.
    for (size_t i = 1; i < _queues.size(); ++i) {
        WorkerQueue &victim = *_queues[(self + i) % _queues.size()];
        const MutexLock lk(victim.mu);
        if (!victim.tasks.empty()) {
            auto task = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            return task;
        }
    }
    return nullptr;
}

void
ThreadPool::workerLoop(unsigned id)
{
    for (;;) {
        if (auto task = grab(id)) {
            _pending.fetch_sub(1);
            task();
            continue;
        }
        const MutexLock lk(_mu);
        while (!_stop.load() &&
               _pending.load(std::memory_order_relaxed) == 0)
            _cv.wait(_mu);
        // On shutdown keep draining until every queue is empty so no
        // submitted task is silently dropped.
        if (_stop.load() && _pending.load() == 0)
            return;
    }
}

} // namespace genax
