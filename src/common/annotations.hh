/**
 * @file
 * Clang Thread Safety Analysis annotations + annotated primitives.
 *
 * The concurrency invariants that PRs 3-5 enforced with comments and
 * runtime tests (TSan, the determinism suite) are stated here as
 * compiler-checked attributes: every guarded field names its mutex,
 * every lock-requiring method names its capability, and the
 * `thread-safety` CMake preset compiles the tree with
 * `clang++ -Wthread-safety -Wthread-safety-beta -Werror` so an
 * unguarded access is a build break, not a latent race.
 *
 * Off Clang every macro expands to nothing, so GCC builds (and any
 * compiler without the analysis) are unaffected.
 *
 * Lock discipline (see DESIGN.md "Static analysis & concurrency
 * invariants"): locks in this codebase are leaf-level — a thread
 * holds at most one at a time. If nesting ever becomes necessary the
 * documented order is pool sleep mutex -> worker queue mutex ->
 * fault-registry mutex; acquiring against that order is a bug even
 * if the analysis cannot see it.
 *
 * The wrappers below (Mutex / MutexLock / CondVar) are the only
 * mutual-exclusion primitives allowed outside src/common/ — the
 * genax_lint `raw-mutex` rule enforces that. Their tiny bodies carry
 * GENAX_NO_THREAD_SAFETY_ANALYSIS because they *implement* the
 * capability protocol the analysis checks everywhere else (the same
 * escape hatch abseil and the Clang docs use for locking
 * primitives).
 */

#ifndef GENAX_COMMON_ANNOTATIONS_HH
#define GENAX_COMMON_ANNOTATIONS_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define GENAX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GENAX_THREAD_ANNOTATION(x)
#endif

/** Type is a capability (a lock); name shown in diagnostics. */
#define GENAX_CAPABILITY(x) GENAX_THREAD_ANNOTATION(capability(x))

/** RAII type that acquires a capability for its lifetime. */
#define GENAX_SCOPED_CAPABILITY GENAX_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be touched while holding `x`. */
#define GENAX_GUARDED_BY(x) GENAX_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be touched while holding `x`. */
#define GENAX_PT_GUARDED_BY(x) GENAX_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the listed capabilities (not acquired here). */
#define GENAX_REQUIRES(...) \
    GENAX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities. */
#define GENAX_EXCLUDES(...) \
    GENAX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function acquires the capability and holds it past return. */
#define GENAX_ACQUIRE(...) \
    GENAX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases a capability the caller held. */
#define GENAX_RELEASE(...) \
    GENAX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns `x`. */
#define GENAX_TRY_ACQUIRE(...) \
    GENAX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Assert (at runtime) that the capability is held. */
#define GENAX_ASSERT_CAPABILITY(x) \
    GENAX_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the named capability. */
#define GENAX_RETURN_CAPABILITY(x) \
    GENAX_THREAD_ANNOTATION(lock_returned(x))

/** Suppress analysis inside a function that implements locking. */
#define GENAX_NO_THREAD_SAFETY_ANALYSIS \
    GENAX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace genax {

/**
 * Annotated mutual-exclusion capability. A thin shell over
 * std::mutex whose lock()/unlock() carry acquire/release attributes,
 * so `GENAX_GUARDED_BY(_mu)` fields become compiler-checked.
 */
class GENAX_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() GENAX_ACQUIRE() GENAX_NO_THREAD_SAFETY_ANALYSIS
    {
        _mu.lock();
    }

    void
    unlock() GENAX_RELEASE() GENAX_NO_THREAD_SAFETY_ANALYSIS
    {
        _mu.unlock();
    }

    bool
    tryLock() GENAX_TRY_ACQUIRE(true) GENAX_NO_THREAD_SAFETY_ANALYSIS
    {
        return _mu.try_lock();
    }

  private:
    friend class CondVar;
    std::mutex _mu;
};

/**
 * RAII scoped lock on a Mutex — the annotated replacement for
 * std::lock_guard / std::unique_lock in annotated code.
 */
class GENAX_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu)
        GENAX_ACQUIRE(mu) GENAX_NO_THREAD_SAFETY_ANALYSIS : _mu(mu)
    {
        _mu.lock();
    }

    ~MutexLock() GENAX_RELEASE() GENAX_NO_THREAD_SAFETY_ANALYSIS
    {
        _mu.unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &_mu;
};

/**
 * Condition variable paired with Mutex. wait() atomically releases
 * and reacquires the mutex the caller holds; the GENAX_REQUIRES
 * annotation makes "wait without the lock" a compile error under
 * the analysis. Predicate loops are written at the call site
 * (`while (!cond) cv.wait(mu);`) so guarded reads in the predicate
 * are checked in the caller's annotated context — a lambda-based
 * wait would hide them from the analysis.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release `mu`, sleep, and reacquire before return.
     *  Spurious wakeups happen; always wait in a predicate loop. */
    void
    wait(Mutex &mu) GENAX_REQUIRES(mu) GENAX_NO_THREAD_SAFETY_ANALYSIS
    {
        std::unique_lock<std::mutex> lk(mu._mu, std::adopt_lock);
        _cv.wait(lk);
        // The lock must survive this scope: the caller's MutexLock
        // still owns it. release() detaches without unlocking.
        lk.release();
    }

    /** wait() with a relative timeout: returns std::cv_status::timeout
     *  when `rel` elapsed without a notification. Same predicate-loop
     *  discipline as wait() — callers re-check the guarded condition
     *  (and their own deadline) after every return. */
    template <class Rep, class Period>
    std::cv_status
    waitFor(Mutex &mu, const std::chrono::duration<Rep, Period> &rel)
        GENAX_REQUIRES(mu) GENAX_NO_THREAD_SAFETY_ANALYSIS
    {
        std::unique_lock<std::mutex> lk(mu._mu, std::adopt_lock);
        const std::cv_status st = _cv.wait_for(lk, rel);
        lk.release();
        return st;
    }

    void
    notifyOne()
    {
        _cv.notify_one();
    }

    void
    notifyAll()
    {
        _cv.notify_all();
    }

  private:
    std::condition_variable _cv;
};

} // namespace genax

#endif // GENAX_COMMON_ANNOTATIONS_HH
