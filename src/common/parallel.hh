/**
 * @file
 * Minimal data-parallel helper used by the multi-threaded software
 * baselines.
 */

#ifndef GENAX_COMMON_PARALLEL_HH
#define GENAX_COMMON_PARALLEL_HH

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace genax {

/**
 * Run fn(begin, end) over [0, n) split into `threads` contiguous
 * chunks. With threads <= 1 the call runs inline.
 *
 * Exception-safe: a throw from a worker does not std::terminate the
 * process. All workers are always joined, and the first exception
 * captured (in completion order) is rethrown to the caller once every
 * thread has finished; later exceptions are swallowed. This also
 * keeps sanitizer reports from worker threads attributable instead of
 * dying inside a detached unwind.
 */
template <typename Fn>
void
parallelFor(u64 n, unsigned threads, Fn &&fn)
{
    if (threads <= 1 || n < 2) {
        fn(u64{0}, n);
        return;
    }
    threads = std::min<u64>(threads, n);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    std::mutex error_mutex;
    std::exception_ptr first_error;
    const u64 chunk = (n + threads - 1) / threads;
    try {
        for (unsigned t = 0; t < threads; ++t) {
            const u64 lo = t * chunk;
            const u64 hi = std::min(n, lo + chunk);
            if (lo >= hi)
                break;
            pool.emplace_back([&fn, &error_mutex, &first_error, lo,
                               hi]() {
                try {
                    fn(lo, hi);
                } catch (...) {
                    const std::lock_guard<std::mutex> g(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            });
        }
    } catch (...) {
        // Thread creation failed: join what was launched, then let
        // the spawn failure propagate.
        for (auto &th : pool)
            th.join();
        throw;
    }
    for (auto &th : pool)
        th.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace genax

#endif // GENAX_COMMON_PARALLEL_HH
