/**
 * @file
 * Minimal data-parallel helper used by the multi-threaded software
 * baselines.
 */

#ifndef GENAX_COMMON_PARALLEL_HH
#define GENAX_COMMON_PARALLEL_HH

#include <algorithm>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace genax {

/**
 * Run fn(begin, end) over [0, n) split into `threads` contiguous
 * chunks. With threads <= 1 the call runs inline.
 */
template <typename Fn>
void
parallelFor(u64 n, unsigned threads, Fn &&fn)
{
    if (threads <= 1 || n < 2) {
        fn(u64{0}, n);
        return;
    }
    threads = std::min<u64>(threads, n);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    const u64 chunk = (n + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
        const u64 lo = t * chunk;
        const u64 hi = std::min(n, lo + chunk);
        if (lo >= hi)
            break;
        pool.emplace_back([&fn, lo, hi]() { fn(lo, hi); });
    }
    for (auto &th : pool)
        th.join();
}

} // namespace genax

#endif // GENAX_COMMON_PARALLEL_HH
