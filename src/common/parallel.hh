/**
 * @file
 * Data-parallel helper used by the batch paths (software aligners and
 * the GenAx system model). A thin wrapper over the persistent
 * work-stealing ThreadPool: chunked dynamic scheduling replaces the
 * old one-static-chunk-per-spawned-thread scheme, so skewed per-item
 * cost no longer serializes on the slowest chunk and repeated calls
 * stop paying thread-spawn cost.
 */

#ifndef GENAX_COMMON_PARALLEL_HH
#define GENAX_COMMON_PARALLEL_HH

#include <algorithm>

#include "common/threadpool.hh"
#include "common/types.hh"

namespace genax {

/**
 * Run fn(begin, end) over [0, n) split into dynamically-scheduled
 * chunks executed by up to `threads` concurrent runners on the
 * process-wide ThreadPool. `threads` == 0 means all hardware
 * threads; with an effective width of 1 (or n < 2) the call runs
 * inline on the caller.
 *
 * fn may be invoked many times per runner, each time with a disjoint
 * subrange; the union of all subranges is exactly [0, n).
 *
 * Exception-safe: a throw from a chunk body does not std::terminate
 * the process and does not abandon the region. Every chunk is still
 * attempted, the caller blocks until the region has drained, and the
 * first captured exception is then rethrown; later exceptions are
 * swallowed. This keeps sanitizer reports from worker threads
 * attributable instead of dying inside a detached unwind.
 */
template <typename Fn>
void
parallelFor(u64 n, unsigned threads, Fn &&fn)
{
    const unsigned width = ThreadPool::resolveWidth(threads);
    if (width <= 1 || n < 2) {
        fn(u64{0}, n);
        return;
    }
    ThreadPool::global().parallelFor(
        n, width, [&fn](unsigned, u64 lo, u64 hi) { fn(lo, hi); });
}

} // namespace genax

#endif // GENAX_COMMON_PARALLEL_HH
