/**
 * @file
 * Persistent work-stealing thread pool.
 *
 * One pool outlives many parallel regions, so repeated batch calls
 * (the aligner's alignAll, the GenAx system's per-segment read loop)
 * pay thread-spawn cost once per process instead of once per call.
 *
 * Structure:
 *
 *  - Each worker owns a deque of tasks. submit() distributes tasks
 *    round-robin; a worker pops its own deque from the front and
 *    steals from the back of a victim's deque when its own is empty.
 *  - parallelFor() implements chunked dynamic scheduling on top of
 *    the task layer: `width` runners (the caller plus width-1 pool
 *    tasks) pull fixed-size chunks from a shared atomic cursor, so
 *    skewed per-item cost rebalances automatically instead of
 *    serializing on the unluckiest static chunk.
 *  - Exceptions thrown by chunk bodies are captured; every chunk is
 *    still attempted, and the first captured exception is rethrown to
 *    the caller once the region has fully drained (the same contract
 *    the old spawn-per-call parallelFor had).
 *
 * The process-wide default pool is created lazily on first use with
 * one worker per hardware thread and lives until process exit.
 * Callers that need per-runner state (per-worker lanes, stat shards)
 * receive a stable slot index in [0, width); a slot is only ever
 * active on one thread at a time, so per-slot state needs no locking.
 */

#ifndef GENAX_COMMON_THREADPOOL_HH
#define GENAX_COMMON_THREADPOOL_HH

#include <atomic>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.hh"
#include "common/types.hh"

namespace genax {

class ThreadPool
{
  public:
    /** Spawn `workers` persistent worker threads (at least one, so a
     *  parallel region's helper tasks always make progress). */
    explicit ThreadPool(unsigned workers);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned
    workerCount() const
    {
        return static_cast<unsigned>(_threads.size());
    }

    /** Lazily-created process-wide pool (hardware_concurrency
     *  workers). */
    static ThreadPool &global();

    /** Resolve a requested parallel width: 0 means "all hardware
     *  threads"; anything else is clamped to the hardware thread
     *  count (oversubscribed runners only contend, and a width of 1
     *  short-circuits parallelFor to the serial path). */
    static unsigned resolveWidth(unsigned requested);

    /** Enqueue one fire-and-forget task. */
    void submit(std::function<void()> task);

    /**
     * Run fn(slot, lo, hi) over [0, n) with chunked dynamic
     * scheduling across `width` concurrent runners. Runner `slot` 0
     * is the calling thread; slots 1..width-1 are pool tasks. Blocks
     * until the whole range has been processed; rethrows the first
     * exception captured from a chunk body (all chunks are still
     * attempted). `chunk_hint` overrides the chunk size (0 picks
     * n / (8 * width), clamped to at least 1).
     */
    template <typename Fn>
    void
    parallelFor(u64 n, unsigned width, Fn &&fn, u64 chunk_hint = 0)
    {
        if (n == 0)
            return;
        width = static_cast<unsigned>(
            std::min<u64>(std::max(1u, width), n));
        if (width == 1) {
            fn(0u, u64{0}, n);
            return;
        }
        Region rg;
        rg.n = n;
        rg.chunk = chunk_hint != 0
                       ? chunk_hint
                       : std::max<u64>(1, n / (u64{8} * width));

        auto runner = [&rg, &fn](unsigned slot) {
            for (;;) {
                const u64 lo = rg.cursor.fetch_add(
                    rg.chunk, std::memory_order_relaxed);
                if (lo >= rg.n)
                    return;
                const u64 hi = std::min(rg.n, lo + rg.chunk);
                try {
                    fn(slot, lo, hi);
                } catch (...) {
                    const MutexLock g(rg.mu);
                    if (!rg.error)
                        rg.error = std::current_exception();
                }
            }
        };

        const unsigned helpers = width - 1;
        for (unsigned s = 1; s <= helpers; ++s) {
            submit([&rg, runner, s]() {
                runner(s);
                const MutexLock g(rg.mu);
                ++rg.done;
                rg.cv.notifyOne();
            });
        }
        runner(0);
        const MutexLock lk(rg.mu);
        while (rg.done != helpers)
            rg.cv.wait(rg.mu);
        if (rg.error)
            std::rethrow_exception(rg.error);
    }

  private:
    /** Shared state of one parallelFor region (lives on the caller's
     *  stack; the caller blocks until every helper has finished). */
    struct Region
    {
        std::atomic<u64> cursor{0};
        u64 n = 0;
        u64 chunk = 1;
        Mutex mu;
        CondVar cv;
        std::exception_ptr error GENAX_GUARDED_BY(mu);
        unsigned done GENAX_GUARDED_BY(mu) = 0;
    };

    struct WorkerQueue
    {
        Mutex mu;
        std::deque<std::function<void()>> tasks GENAX_GUARDED_BY(mu);
    };

    void workerLoop(unsigned id);

    /** Pop from own deque front, else steal from a victim's back. */
    std::function<void()> grab(unsigned self);

    std::vector<std::unique_ptr<WorkerQueue>> _queues;
    std::vector<std::thread> _threads;
    Mutex _mu; //!< sleep/wake
    CondVar _cv;
    std::atomic<u64> _pending{0};
    std::atomic<bool> _stop{false};
    std::atomic<u64> _rr{0}; //!< round-robin submit cursor
};

} // namespace genax

#endif // GENAX_COMMON_THREADPOOL_HH
