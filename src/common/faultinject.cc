#include "common/faultinject.hh"

#include <cstdlib>

namespace genax {

namespace {

/** FNV-1a — decorrelates site streams sharing one user seed. */
u64
hashSite(std::string_view site)
{
    u64 h = 0xcbf29ce484222325ULL;
    for (const char c : site) {
        h ^= static_cast<u8>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** splitmix64 finalizer — the avalanche behind keyed decisions. */
u64
mix64(u64 z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Pure keyed decision stream: uniform [0,1) from (site seed mixed
 *  with the site name, scope key, within-scope ordinal). */
double
keyedU01(u64 seed_base, u64 key, u64 ordinal)
{
    const u64 h = mix64(seed_base ^ mix64(key) ^ mix64(ordinal));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/**
 * Thread-local keyed-decision context. `serial` distinguishes scope
 * instances so the per-site ordinal counters restart whenever a
 * different scope (new or restored-outer) becomes current; a scope's
 * decisions therefore only depend on hits made while it is the
 * innermost one.
 */
struct KeyedContext
{
    bool active = false;
    u64 key = 0;
    u64 serial = 0;
    u64 nextSerial = 0;
    struct SiteOrdinal
    {
        u64 serial = 0;
        u64 count = 0;
    };
    std::map<std::string, SiteOrdinal, std::less<>> ordinals;

    u64
    nextOrdinal(std::string_view site)
    {
        const auto it = ordinals.find(site);
        SiteOrdinal &o = it != ordinals.end()
                             ? it->second
                             : ordinals[std::string(site)];
        if (o.serial != serial) {
            o.serial = serial;
            o.count = 0;
        }
        return ++o.count;
    }
};

thread_local KeyedContext tlKeyed;

} // namespace

FaultKeyScope::FaultKeyScope(u64 key)
    : _prevKey(tlKeyed.key), _prevSerial(tlKeyed.serial),
      _prevActive(tlKeyed.active)
{
    tlKeyed.active = true;
    tlKeyed.key = key;
    tlKeyed.serial = ++tlKeyed.nextSerial;
}

FaultKeyScope::~FaultKeyScope()
{
    tlKeyed.active = _prevActive;
    tlKeyed.key = _prevKey;
    tlKeyed.serial = _prevSerial;
}

u64
FaultKeyScope::mixKey(u64 a, u64 b)
{
    return mix64(a ^ mix64(b));
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(std::string_view site, const FaultSpec &spec)
{
    const MutexLock lock(_mu);
    Site s;
    s.spec = spec;
    s.rng.reseed(spec.seed ^ hashSite(site));
    _sites.insert_or_assign(std::string(site), std::move(s));
    _armed.store(true, std::memory_order_relaxed);
}

void
FaultInjector::disarm(std::string_view site)
{
    const MutexLock lock(_mu);
    const auto it = _sites.find(site);
    if (it != _sites.end())
        _sites.erase(it);
    _armed.store(!_sites.empty(), std::memory_order_relaxed);
}

void
FaultInjector::reset()
{
    const MutexLock lock(_mu);
    _sites.clear();
    _armed.store(false, std::memory_order_relaxed);
}

bool
FaultInjector::shouldFire(std::string_view site)
{
    // The keyed ordinal is thread-local: bump it outside the registry
    // lock, and unconditionally, so an armed site consumes the same
    // decision stream whether or not earlier hits were capped.
    const bool keyed = tlKeyed.active;
    u64 ordinal = 0;
    if (keyed)
        ordinal = tlKeyed.nextOrdinal(site);

    const MutexLock lock(_mu);
    const auto it = _sites.find(site);
    if (it == _sites.end())
        return false;
    Site &s = it->second;
    ++s.hits;
    if (s.fires >= s.spec.maxFires)
        return false;
    bool fire = false;
    if (keyed) {
        // Pure function of (site seed, scope key, ordinal): identical
        // at any thread count and in any completion order.
        if (s.spec.fireOnNth != 0 && ordinal == s.spec.fireOnNth)
            fire = true;
        if (!fire && s.spec.probability > 0 &&
            keyedU01(s.spec.seed ^ hashSite(site), tlKeyed.key,
                     ordinal) < s.spec.probability) {
            fire = true;
        }
    } else {
        if (s.spec.fireOnNth != 0 && s.hits == s.spec.fireOnNth)
            fire = true;
        if (!fire && s.spec.probability > 0 &&
            s.rng.chance(s.spec.probability)) {
            fire = true;
        }
    }
    if (fire)
        ++s.fires;
    return fire;
}

u64
FaultInjector::hits(std::string_view site) const
{
    const MutexLock lock(_mu);
    const auto it = _sites.find(site);
    return it == _sites.end() ? 0 : it->second.hits;
}

u64
FaultInjector::fires(std::string_view site) const
{
    const MutexLock lock(_mu);
    const auto it = _sites.find(site);
    return it == _sites.end() ? 0 : it->second.fires;
}

std::vector<std::string>
FaultInjector::armedSites() const
{
    const MutexLock lock(_mu);
    std::vector<std::string> out;
    out.reserve(_sites.size());
    for (const auto &[name, site] : _sites)
        out.push_back(name);
    return out;
}

Status
FaultInjector::configure(std::string_view spec)
{
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find(';', pos);
        if (end == std::string_view::npos)
            end = spec.size();
        const std::string_view entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;

        const size_t colon = entry.find(':');
        if (colon == std::string_view::npos || colon == 0) {
            return invalidInputError(
                "fault spec entry needs 'site:key=value': " +
                std::string(entry));
        }
        const std::string_view site = entry.substr(0, colon);
        FaultSpec fs;
        bool has_rule = false;

        size_t kpos = colon + 1;
        while (kpos <= entry.size()) {
            size_t kend = entry.find(',', kpos);
            if (kend == std::string_view::npos)
                kend = entry.size();
            const std::string_view kv = entry.substr(kpos, kend - kpos);
            kpos = kend + 1;
            if (kv.empty())
                continue;
            const size_t eq = kv.find('=');
            if (eq == std::string_view::npos) {
                return invalidInputError(
                    "fault spec key without value: " + std::string(kv));
            }
            const std::string_view key = kv.substr(0, eq);
            const std::string val(kv.substr(eq + 1));
            char *parse_end = nullptr;
            if (key == "p") {
                fs.probability = std::strtod(val.c_str(), &parse_end);
                if (parse_end == val.c_str() || fs.probability < 0 ||
                    fs.probability > 1) {
                    return invalidInputError(
                        "fault probability outside [0,1]: " + val);
                }
                has_rule = true;
            } else if (key == "n") {
                fs.fireOnNth = std::strtoull(val.c_str(), &parse_end, 10);
                if (parse_end == val.c_str() || fs.fireOnNth == 0) {
                    return invalidInputError(
                        "fault n= needs a positive hit ordinal: " + val);
                }
                has_rule = true;
            } else if (key == "max") {
                fs.maxFires = std::strtoull(val.c_str(), &parse_end, 10);
                if (parse_end == val.c_str()) {
                    return invalidInputError("bad fault max=: " + val);
                }
            } else if (key == "seed") {
                fs.seed = std::strtoull(val.c_str(), &parse_end, 10);
                if (parse_end == val.c_str()) {
                    return invalidInputError("bad fault seed=: " + val);
                }
            } else {
                return invalidInputError("unknown fault spec key: " +
                                         std::string(key));
            }
        }
        if (!has_rule) {
            return invalidInputError(
                "fault site without p= or n= rule: " + std::string(site));
        }
        arm(site, fs);
    }
    return okStatus();
}

Status
FaultInjector::configureFromEnv()
{
    // The env var is the documented chaos-entry point: read once,
    // before any worker thread exists, and deterministic given the
    // environment.
    // genax-lint: allow(wall-clock): documented GENAX_FAULT_INJECT entry point, read before threads start
    const char *env = std::getenv( // NOLINT(concurrency-mt-unsafe)
        "GENAX_FAULT_INJECT");
    if (env == nullptr || *env == '\0')
        return okStatus();
    return configure(env).withContext("GENAX_FAULT_INJECT");
}

} // namespace genax
