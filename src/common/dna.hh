/**
 * @file
 * DNA alphabet handling: 2-bit base codes, sequence containers, packing.
 *
 * Throughout the code base a DNA sequence is a std::vector<Base> of
 * 2-bit codes (A=0, C=1, G=2, T=3). PackedSeq stores the same data at
 * two bits per base for memory-footprint modelling and fast k-mer
 * extraction.
 */

#ifndef GENAX_COMMON_DNA_HH
#define GENAX_COMMON_DNA_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace genax {

/** 2-bit DNA base code. */
using Base = u8;

inline constexpr Base kBaseA = 0;
inline constexpr Base kBaseC = 1;
inline constexpr Base kBaseG = 2;
inline constexpr Base kBaseT = 3;

/** A DNA sequence as a vector of 2-bit base codes. */
using Seq = std::vector<Base>;

/** Decode a base code to its ASCII character (ACGT). */
char baseToChar(Base b);

/**
 * Encode an ASCII base character to its 2-bit code.
 * Accepts upper or lower case; any non-ACGT character (e.g. N) maps
 * to A, mirroring the common aligner convention of arbitrary
 * assignment for ambiguous bases.
 */
Base charToBase(char c);

/** True if the character is one of ACGTacgt. */
bool isAcgt(char c);

/**
 * True if the character is a legal IUPAC nucleotide code
 * (ACGTU plus the ambiguity codes RYSWKMBDHVN, either case). The
 * parsers accept these — ambiguous codes encode as 'A' via
 * charToBase — and reject everything else as malformed input.
 */
bool isIupac(char c);

/** Complement of a 2-bit base code. */
inline Base
complement(Base b)
{
    return static_cast<Base>(3 - b);
}

/** Encode an ASCII string into a Seq. */
Seq encode(std::string_view s);

/** Decode a Seq into an ASCII string. */
std::string decode(const Seq &s);

/** Reverse complement of a sequence. */
Seq reverseComplement(const Seq &s);

/** reverseComplement() into a caller-owned buffer (capacity reuse on
 *  hot per-read paths); `out` must not alias `s`. */
void reverseComplementInto(const Seq &s, Seq &out);

/**
 * A 2-bit-per-base packed DNA sequence.
 *
 * Supports random access, subsequence extraction and k-mer extraction
 * (k <= 32) as a packed 64-bit word.
 */
class PackedSeq
{
  public:
    PackedSeq() = default;

    /** Construct from an unpacked sequence. */
    explicit PackedSeq(const Seq &s);

    /**
     * Pack the window src[begin, end) directly, without an
     * intermediate Seq copy; with `reversed` the bases are stored in
     * reverse order (plain reversal, no complement). This is how the
     * extension paths build their 2-bit reference windows.
     */
    static PackedSeq packWindow(const Seq &src, size_t begin,
                                size_t end, bool reversed = false);

    /** Number of bases stored. */
    size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

    /** Base code at position i. */
    Base
    at(size_t i) const
    {
        return static_cast<Base>((_words[i >> 5] >> ((i & 31) * 2)) & 3);
    }

    Base operator[](size_t i) const { return at(i); }

    /** Append one base. */
    void push_back(Base b);

    /**
     * Extract the k-mer starting at position pos as a packed word.
     * Base at pos occupies the least-significant two bits.
     *
     * @pre k <= 32 and pos + k <= size().
     */
    u64 kmer(size_t pos, unsigned k) const;

    /**
     * The packed prefix [0, len). Word-level copy — no per-base
     * repacking. Used by the SIMD scoring path to truncate a window
     * to the winning cell before the scalar traceback re-run.
     *
     * @pre len <= size().
     */
    PackedSeq prefix(size_t len) const;

    /** Unpack positions [pos, pos+len) into a Seq. */
    Seq unpack(size_t pos, size_t len) const;

    /** Unpack the whole sequence. */
    Seq unpack() const { return unpack(0, _size); }

    /**
     * Unpack positions [pos, pos+len) into `out`, reusing its
     * storage — the scratch-buffer form of unpack() for hot loops
     * that would otherwise allocate a fresh Seq per call.
     */
    void unpackInto(size_t pos, size_t len, Seq &out) const;

    /** Unpack the whole sequence into `out` (storage reused). */
    void unpackInto(Seq &out) const { unpackInto(0, _size, out); }

    /** Memory footprint of the packed payload in bytes. */
    size_t payloadBytes() const { return _words.size() * sizeof(u64); }

  private:
    std::vector<u64> _words;
    size_t _size = 0;
};

} // namespace genax

#endif // GENAX_COMMON_DNA_HH
