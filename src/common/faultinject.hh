/**
 * @file
 * Deterministic, seeded fault injection.
 *
 * Production components register *fault points* — named places where
 * an environment failure could strike (an IO read, a DRAM stream, a
 * CAM capacity overflow, a SillaX lane issue). Tests and the chaos CI
 * job arm a subset of sites with a firing rule; the component then
 * observes the failure through its ordinary Status channel and must
 * skip, retry or degrade exactly as it would in production.
 *
 * Cost model: everything is off by default, and a disarmed build
 * evaluates one relaxed atomic load per fault point — the accelerator
 * perf model regresses by noise only. Arming is process-global and
 * thread-safe; firing decisions are deterministic given (site seed,
 * hit ordinal), so a failing chaos run replays exactly.
 *
 * Parallel regions and keyed decisions: a global hit ordinal is only
 * reproducible when hits arrive in one deterministic order, which
 * stops being true once work is sharded across pool workers. Code
 * that processes independent work items concurrently opens a
 * FaultKeyScope with a deterministic per-item key (e.g. a hash of
 * (segment, read)); every hit inside the scope is then decided as a
 * pure function of (site seed, key, within-item hit ordinal) instead
 * of arrival order, so the same spec fires on exactly the same work
 * at any thread count. Inside a scope the n= rule counts hits within
 * the item, not process-wide, and max= still caps total fires but
 * which concurrent hit gets suppressed is scheduling-dependent —
 * deterministic multi-threaded replay should stick to p=/n= rules.
 *
 * Site naming convention (see DESIGN.md): "<layer>.<unit>.<event>",
 * e.g. "io.fastq.record" or "sillax.lane.issue". Constants for all
 * registered sites live in namespace fault so call sites and tests
 * cannot drift apart.
 */

#ifndef GENAX_COMMON_FAULTINJECT_HH
#define GENAX_COMMON_FAULTINJECT_HH

#include <atomic>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.hh"
#include "common/rng.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace genax {

/** Registered fault-site names. */
namespace fault {

inline constexpr const char *kFastaRecord = "io.fasta.record";
inline constexpr const char *kFastqRecord = "io.fastq.record";
inline constexpr const char *kSamWrite = "io.sam.write";
inline constexpr const char *kCamOverflow = "seed.cam.overflow";
inline constexpr const char *kDramStream = "genax.dram.stream";
inline constexpr const char *kLaneIssue = "sillax.lane.issue";
inline constexpr const char *kPipelineRead = "genax.pipeline.read";
inline constexpr const char *kStoreShortWrite = "io.store.short_write";
inline constexpr const char *kStoreEio = "io.store.eio";
inline constexpr const char *kStoreEnospc = "io.store.enospc";
inline constexpr const char *kStoreMmapFail = "io.store.mmap_fail";
inline constexpr const char *kServeAcceptFail = "serve.accept.fail";
inline constexpr const char *kServeReadShort = "serve.read.short";
inline constexpr const char *kServeWriteEio = "serve.write.eio";

} // namespace fault

/** Firing rule for one armed site. */
struct FaultSpec
{
    /** Fire each hit with this probability (deterministic stream). */
    double probability = 0.0;
    /** Fire on exactly the Nth hit (1-based); 0 disables the rule. */
    u64 fireOnNth = 0;
    /** Stop firing after this many fires (both rules). */
    u64 maxFires = ~u64{0};
    /** Seed for the site's private random stream. */
    u64 seed = 1;
};

/** Process-global fault-injection registry. */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Arm (or re-arm) a site; resets its hit/fire counters. */
    void arm(std::string_view site, const FaultSpec &spec);

    /** Disarm one site (its counters are dropped). */
    void disarm(std::string_view site);

    /** Disarm every site and clear all counters. */
    void reset();

    /** Fast check: is any site armed at all? */
    bool
    anyArmed() const
    {
        return _armed.load(std::memory_order_relaxed);
    }

    /**
     * Count a hit at `site` and decide whether the fault fires.
     * Unarmed sites never fire (and are not counted).
     */
    bool shouldFire(std::string_view site);

    /** Hits observed at an armed site (0 when not armed). */
    u64 hits(std::string_view site) const;

    /** Faults fired at an armed site (0 when not armed). */
    u64 fires(std::string_view site) const;

    /** Names of currently armed sites, sorted. */
    std::vector<std::string> armedSites() const;

    /**
     * Arm sites from a spec string:
     *
     *   site:key=value[,key=value...][;site:...]
     *
     * keys: p (probability in [0,1]), n (fire on Nth hit),
     *       max (max fires), seed. Example:
     *
     *   "io.fastq.record:p=0.01,seed=7;sillax.lane.issue:n=3"
     */
    Status configure(std::string_view spec);

    /** configure() from the GENAX_FAULT_INJECT environment variable;
     *  OK (and a no-op) when the variable is unset or empty. */
    Status configureFromEnv();

  private:
    FaultInjector() = default;

    struct Site
    {
        FaultSpec spec;
        Rng rng;
        u64 hits = 0;
        u64 fires = 0;
    };

    mutable Mutex _mu;
    std::map<std::string, Site, std::less<>> _sites
        GENAX_GUARDED_BY(_mu);
    std::atomic<bool> _armed{false};
};

/**
 * The fault point itself: false with a single relaxed atomic load
 * unless at least one site is armed anywhere in the process.
 */
inline bool
faultFires(const char *site)
{
    FaultInjector &fi = FaultInjector::instance();
    if (!fi.anyArmed()) [[likely]]
        return false;
    return fi.shouldFire(site);
}

/**
 * RAII deterministic-key scope for fault points inside parallel
 * regions (see the keyed-decision notes in the file header). While a
 * thread holds a scope, every faultFires() it evaluates is decided by
 * (site seed, key, within-scope hit ordinal) — a pure function, so
 * the decision is identical no matter which worker runs the item or
 * in what order items complete. Scopes nest; the innermost key wins.
 */
class FaultKeyScope
{
  public:
    explicit FaultKeyScope(u64 key);
    ~FaultKeyScope();

    FaultKeyScope(const FaultKeyScope &) = delete;
    FaultKeyScope &operator=(const FaultKeyScope &) = delete;

    /** Mix two values into a decorrelated scope key (splitmix64). */
    static u64 mixKey(u64 a, u64 b);

  private:
    u64 _prevKey;
    u64 _prevSerial;
    bool _prevActive;
};

/**
 * RAII fault plan for tests: arms sites on construction and restores
 * a fully-disarmed registry on destruction.
 */
class ScopedFaultPlan
{
  public:
    ScopedFaultPlan() = default;

    explicit ScopedFaultPlan(
        std::initializer_list<std::pair<const char *, FaultSpec>> plan)
    {
        for (const auto &[site, spec] : plan)
            FaultInjector::instance().arm(site, spec);
    }

    ~ScopedFaultPlan() { FaultInjector::instance().reset(); }

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

} // namespace genax

#endif // GENAX_COMMON_FAULTINJECT_HH
