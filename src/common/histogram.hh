/**
 * @file
 * Log-bucketed latency histogram for the serving layer's tail-latency
 * accounting.
 *
 * Latencies land in power-of-two nanosecond buckets (bucket i covers
 * [2^i, 2^(i+1)) ns), so 64 fixed counters span sub-nanosecond to
 * multi-century with ~2x relative resolution — the standard
 * inference-server shape for p50/p99 reporting where the *order of
 * magnitude* of the tail matters, not its third digit. Quantiles are
 * recovered by walking the cumulative counts and interpolating
 * linearly inside the winning bucket.
 *
 * Accounting is pure integer arithmetic (counts and nanosecond sums
 * in u64), so merging shards is order-invariant and nothing here
 * accumulates floating point in a parallel region. The histogram
 * never reads a clock: callers time with steady_clock deltas (the
 * sanctioned profiling pattern — see DESIGN.md "Serving layer";
 * latency numbers are observability output, never part of a
 * determinism contract) and hand the result in.
 *
 * Not thread-safe: owners guard instances with their own Mutex (the
 * batcher keeps its histograms under the stats lock) or keep
 * per-thread shards and merge().
 */

#ifndef GENAX_COMMON_HISTOGRAM_HH
#define GENAX_COMMON_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstddef>

#include "common/check.hh"
#include "common/types.hh"

namespace genax {

class LatencyHistogram
{
  public:
    static constexpr size_t kBuckets = 64;

    /** Record one latency in nanoseconds. */
    void
    recordNanos(u64 ns)
    {
        ++_buckets[bucketOf(ns)];
        ++_count;
        _sumNanos += ns;
        if (ns > _maxNanos)
            _maxNanos = ns;
    }

    /** Record one latency in seconds (negative clamps to zero). */
    void
    recordSeconds(double s)
    {
        recordNanos(s > 0 ? static_cast<u64>(s * 1e9) : 0);
    }

    /** Fold another histogram into this one (order-invariant). */
    void
    merge(const LatencyHistogram &other)
    {
        for (size_t i = 0; i < kBuckets; ++i)
            _buckets[i] += other._buckets[i];
        _count += other._count;
        _sumNanos += other._sumNanos;
        if (other._maxNanos > _maxNanos)
            _maxNanos = other._maxNanos;
    }

    u64 count() const { return _count; }
    u64 sumNanos() const { return _sumNanos; }
    u64 maxNanos() const { return _maxNanos; }

    double
    meanSeconds() const
    {
        return _count ? static_cast<double>(_sumNanos) / _count / 1e9
                      : 0.0;
    }

    double maxSeconds() const { return _maxNanos / 1e9; }

    /**
     * Approximate q-quantile (q in [0,1]) in seconds: the latency at
     * or below which a fraction q of recorded samples fall, linearly
     * interpolated inside the winning log bucket and clamped to the
     * observed maximum. 0 when empty.
     */
    double
    quantileSeconds(double q) const
    {
        GENAX_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
        if (_count == 0)
            return 0.0;
        // Rank of the target sample, 1-based ceil so q=1 is the last
        // and q=0 the first.
        u64 rank = _count - static_cast<u64>(
                                static_cast<double>(_count) *
                                (1.0 - q));
        if (rank == 0)
            rank = 1;
        u64 seen = 0;
        for (size_t i = 0; i < kBuckets; ++i) {
            if (_buckets[i] == 0)
                continue;
            if (seen + _buckets[i] >= rank && rank > seen) {
                const double lo = bucketLowNanos(i);
                const double hi = bucketHighNanos(i);
                const double frac =
                    static_cast<double>(rank - seen) /
                    static_cast<double>(_buckets[i]);
                const double ns = lo + (hi - lo) * frac;
                const double cap = static_cast<double>(_maxNanos);
                return (ns < cap ? ns : cap) / 1e9;
            }
            seen += _buckets[i];
        }
        return maxSeconds();
    }

    /** Per-bucket count (for tests and text dumps). */
    u64 bucketCount(size_t i) const { return _buckets[i]; }

    /** Bucket index of a nanosecond value: floor(log2(ns)), 0 for
     *  ns < 2. */
    static size_t
    bucketOf(u64 ns)
    {
        return ns < 2 ? 0
                      : static_cast<size_t>(std::bit_width(ns) - 1);
    }

    /** Inclusive lower bound of bucket i in nanoseconds. */
    static double
    bucketLowNanos(size_t i)
    {
        return i == 0 ? 0.0
                      : static_cast<double>(u64{1} << (i < 63 ? i : 63));
    }

    /** Exclusive upper bound of bucket i in nanoseconds. */
    static double
    bucketHighNanos(size_t i)
    {
        return i >= 63 ? 2.0 * bucketLowNanos(63)
                       : static_cast<double>(u64{1} << (i + 1));
    }

  private:
    std::array<u64, kBuckets> _buckets{};
    u64 _count = 0;
    u64 _sumNanos = 0;
    u64 _maxNanos = 0;
};

} // namespace genax

#endif // GENAX_COMMON_HISTOGRAM_HH
