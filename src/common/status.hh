/**
 * @file
 * Recoverable-error propagation: Status, StatusOr<T> and the
 * GENAX_TRY family of macros.
 *
 * The division of labour with check.hh/logging.hh:
 *
 *   GENAX_CHECK / GENAX_DCHECK — programmer invariants. A violation
 *       means the code itself is wrong; the process (or the installed
 *       handler) aborts.
 *   Status / StatusOr          — environment and input failures: an
 *       unopenable file, a malformed FASTQ record, an exhausted
 *       hardware resource. These are *expected* at production scale
 *       and must flow back to a layer that can skip, retry, degrade
 *       or report — never abort.
 *
 * A Status carries a code plus a human-readable message; context is
 * chained outward with withContext() so the surfaced error reads like
 * a call-stack of intent ("align files: read FASTQ 'x.fq': line 12:
 * truncated record"). EndOfStream is a sentinel for iteration
 * protocols (streaming readers), not a failure.
 */

#ifndef GENAX_COMMON_STATUS_HH
#define GENAX_COMMON_STATUS_HH

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.hh"
#include "common/types.hh"

namespace genax {

/** Broad classes of recoverable failure. */
enum class StatusCode : u8
{
    Ok = 0,
    InvalidInput,       //!< malformed user/file input
    IoError,            //!< the environment failed us (open/read/write)
    NotFound,           //!< a named thing does not exist
    ResourceExhausted,  //!< a capacity or budget was exceeded
    Unavailable,        //!< transient failure; retry may succeed
    FailedPrecondition, //!< caller state does not admit the operation
    Internal,           //!< invariant failed but caller can recover
    EndOfStream,        //!< iteration sentinel, not a failure
};

/** Stable lower-case name of a status code (e.g. "invalid-input"). */
const char *statusCodeName(StatusCode code);

/** A recoverable-error result: a code and a contextual message. */
class [[nodiscard]] Status
{
  public:
    /** Default: OK. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : _code(code), _message(std::move(message))
    {
    }

    bool ok() const { return _code == StatusCode::Ok; }
    StatusCode code() const { return _code; }
    const std::string &message() const { return _message; }

    /**
     * Return a copy with `context` prepended ("context: message").
     * OK statuses pass through unchanged.
     */
    Status withContext(std::string_view context) const;

    /** One-line rendering: "[io-error] context: message". */
    std::string str() const;

    bool
    operator==(const Status &o) const
    {
        return _code == o._code && _message == o._message;
    }

  private:
    StatusCode _code = StatusCode::Ok;
    std::string _message;
};

/** Factory helpers — the only way Status objects are minted. */
Status okStatus();
Status invalidInputError(std::string message);
Status ioError(std::string message);
Status notFoundError(std::string message);
Status resourceExhaustedError(std::string message);
Status unavailableError(std::string message);
Status failedPreconditionError(std::string message);
Status internalError(std::string message);
Status endOfStream();

/** IoError annotated with the failing path and current errno. */
Status ioErrorFromErrno(std::string_view action, std::string_view path);

/** True when the status is the end-of-stream iteration sentinel. */
inline bool
isEndOfStream(const Status &s)
{
    return s.code() == StatusCode::EndOfStream;
}

/**
 * Either a value or a non-OK Status. Accessing the value of a failed
 * StatusOr is a programmer error (GENAX_CHECK).
 */
template <typename T>
class [[nodiscard]] StatusOr
{
  public:
    /** Implicit from a non-OK status (OK without a value is a bug). */
    StatusOr(Status status) : _status(std::move(status))
    {
        GENAX_CHECK(!_status.ok(),
                    "StatusOr constructed from OK status with no value");
    }

    /** Implicit from a value. */
    StatusOr(T value) : _value(std::move(value)) {}

    bool ok() const { return _status.ok(); }
    const Status &status() const { return _status; }

    const T &
    value() const &
    {
        GENAX_CHECK(ok(), "StatusOr::value() on error: ", _status.str());
        return *_value;
    }

    T &
    value() &
    {
        GENAX_CHECK(ok(), "StatusOr::value() on error: ", _status.str());
        return *_value;
    }

    T &&
    value() &&
    {
        GENAX_CHECK(ok(), "StatusOr::value() on error: ", _status.str());
        return std::move(*_value);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

    /** Propagate context through the error channel (no-op when OK). */
    StatusOr
    withContext(std::string_view context) &&
    {
        if (!ok())
            return StatusOr(_status.withContext(context));
        return std::move(*this);
    }

  private:
    Status _status;          //!< OK iff _value holds
    std::optional<T> _value;
};

namespace detail {

/** Unwraps Status or StatusOr<T> into a plain Status for GENAX_TRY. */
inline const Status &
asStatus(const Status &s)
{
    return s;
}

template <typename T>
const Status &
asStatus(const StatusOr<T> &s)
{
    return s.status();
}

} // namespace detail

} // namespace genax

#define GENAX_STATUS_CONCAT_INNER(a, b) a##b
#define GENAX_STATUS_CONCAT(a, b) GENAX_STATUS_CONCAT_INNER(a, b)

/**
 * Evaluate an expression yielding Status (or StatusOr); on error,
 * return the Status from the enclosing function.
 */
#define GENAX_TRY(expr) \
    do { \
        const auto &GENAX_STATUS_CONCAT(_genax_st_, __LINE__) = (expr); \
        if (!GENAX_STATUS_CONCAT(_genax_st_, __LINE__).ok()) \
            [[unlikely]] { \
            return ::genax::detail::asStatus( \
                GENAX_STATUS_CONCAT(_genax_st_, __LINE__)); \
        } \
    } while (0)

/**
 * Evaluate a StatusOr expression; on error return its Status, else
 * bind the value to `lhs` (which may declare a variable).
 *
 *   GENAX_TRY_ASSIGN(const auto reads, readFastqFile(path));
 */
#define GENAX_TRY_ASSIGN(lhs, expr) \
    auto GENAX_STATUS_CONCAT(_genax_so_, __LINE__) = (expr); \
    if (!GENAX_STATUS_CONCAT(_genax_so_, __LINE__).ok()) [[unlikely]] { \
        return GENAX_STATUS_CONCAT(_genax_so_, __LINE__).status(); \
    } \
    lhs = std::move(GENAX_STATUS_CONCAT(_genax_so_, __LINE__)).value()

#endif // GENAX_COMMON_STATUS_HH
