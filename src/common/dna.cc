#include "common/dna.hh"

#include <algorithm>
#include <cstddef>

#include "common/logging.hh"

namespace genax {

char
baseToChar(Base b)
{
    static constexpr char table[4] = {'A', 'C', 'G', 'T'};
    return table[b & 3];
}

Base
charToBase(char c)
{
    switch (c) {
      case 'A': case 'a': return kBaseA;
      case 'C': case 'c': return kBaseC;
      case 'G': case 'g': return kBaseG;
      case 'T': case 't': return kBaseT;
      default: return kBaseA;
    }
}

bool
isAcgt(char c)
{
    switch (c) {
      case 'A': case 'a': case 'C': case 'c':
      case 'G': case 'g': case 'T': case 't':
        return true;
      default:
        return false;
    }
}

bool
isIupac(char c)
{
    switch (c) {
      case 'A': case 'a': case 'C': case 'c':
      case 'G': case 'g': case 'T': case 't':
      case 'U': case 'u': case 'R': case 'r':
      case 'Y': case 'y': case 'S': case 's':
      case 'W': case 'w': case 'K': case 'k':
      case 'M': case 'm': case 'B': case 'b':
      case 'D': case 'd': case 'H': case 'h':
      case 'V': case 'v': case 'N': case 'n':
        return true;
      default:
        return false;
    }
}

Seq
encode(std::string_view s)
{
    Seq out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(charToBase(c));
    return out;
}

std::string
decode(const Seq &s)
{
    std::string out;
    out.reserve(s.size());
    for (Base b : s)
        out.push_back(baseToChar(b));
    return out;
}

Seq
reverseComplement(const Seq &s)
{
    Seq out;
    reverseComplementInto(s, out);
    return out;
}

void
reverseComplementInto(const Seq &s, Seq &out)
{
    out.resize(s.size());
    for (size_t i = 0; i < s.size(); ++i)
        out[i] = complement(s[s.size() - 1 - i]);
}

PackedSeq::PackedSeq(const Seq &s)
{
    _words.reserve((s.size() + 31) / 32);
    for (Base b : s)
        push_back(b);
}

PackedSeq
PackedSeq::packWindow(const Seq &src, size_t begin, size_t end,
                      bool reversed)
{
    GENAX_ASSERT(begin <= end && end <= src.size(),
                 "packWindow out of bounds: begin=", begin,
                 " end=", end, " size=", src.size());
    PackedSeq out;
    const size_t len = end - begin;
    out._words.assign((len + 31) / 32, 0);
    out._size = len;
    if (reversed) {
        for (size_t i = 0; i < len; ++i) {
            const u64 b = src[end - 1 - i] & 3;
            out._words[i >> 5] |= b << ((i & 31) * 2);
        }
    } else {
        for (size_t i = 0; i < len; ++i) {
            const u64 b = src[begin + i] & 3;
            out._words[i >> 5] |= b << ((i & 31) * 2);
        }
    }
    return out;
}

PackedSeq
PackedSeq::prefix(size_t len) const
{
    GENAX_ASSERT(len <= _size, "prefix beyond sequence: len=", len,
                 " size=", _size);
    PackedSeq out;
    out._words.assign(_words.begin(),
                      _words.begin() +
                          static_cast<std::ptrdiff_t>((len + 31) / 32));
    out._size = len;
    return out;
}

void
PackedSeq::push_back(Base b)
{
    if ((_size & 31) == 0)
        _words.push_back(0);
    _words[_size >> 5] |= static_cast<u64>(b & 3) << ((_size & 31) * 2);
    ++_size;
}

u64
PackedSeq::kmer(size_t pos, unsigned k) const
{
    GENAX_ASSERT(k >= 1 && k <= 32, "k out of range: ", k);
    GENAX_ASSERT(pos + k <= _size,
                 "kmer out of bounds: pos=", pos, " k=", k,
                 " size=", _size);
    const size_t word = pos >> 5;
    const unsigned shift = (pos & 31) * 2;
    u64 bits = _words[word] >> shift;
    if (shift != 0 && word + 1 < _words.size())
        bits |= _words[word + 1] << (64 - shift);
    if (k == 32)
        return bits;
    return bits & ((u64{1} << (2 * k)) - 1);
}

Seq
PackedSeq::unpack(size_t pos, size_t len) const
{
    Seq out;
    unpackInto(pos, len, out);
    return out;
}

void
PackedSeq::unpackInto(size_t pos, size_t len, Seq &out) const
{
    GENAX_ASSERT(pos + len <= _size, "unpack out of bounds");
    out.resize(len);
    for (size_t i = 0; i < len; ++i)
        out[i] = at(pos + i);
}

} // namespace genax
