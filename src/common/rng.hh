/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic components of the repository (reference generation,
 * read simulation, property tests) draw from this generator so that
 * every experiment is reproducible from its seed.
 */

#ifndef GENAX_COMMON_RNG_HH
#define GENAX_COMMON_RNG_HH

#include <array>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace genax {

/** xoshiro256** by Blackman & Vigna, seeded via splitmix64. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed. */
    void
    reseed(u64 seed)
    {
        // splitmix64 stream to fill the state.
        u64 x = seed;
        for (auto &word : _s) {
            x += 0x9e3779b97f4a7c15ULL;
            u64 z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        const u64 result = rotl(_s[1] * 5, 7) * 9;
        const u64 t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    u64
    below(u64 bound)
    {
        GENAX_ASSERT(bound != 0, "Rng::below(0)");
        // Rejection sampling to remove modulo bias.
        const u64 threshold = (~bound + 1) % bound;
        for (;;) {
            const u64 r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    i64
    range(i64 lo, i64 hi)
    {
        GENAX_ASSERT(lo <= hi, "Rng::range empty");
        return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return real() < p; }

    /** Uniformly pick an element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        GENAX_ASSERT(!v.empty(), "Rng::pick on empty vector");
        return v[below(v.size())];
    }

  private:
    static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

    std::array<u64, 4> _s{};
};

} // namespace genax

#endif // GENAX_COMMON_RNG_HH
