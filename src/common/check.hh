/**
 * @file
 * Repo-wide invariant checking layer.
 *
 * GENAX_CHECK(cond, ...)   — always-on invariant; formatted message.
 * GENAX_DCHECK(cond, ...)  — heavier invariant, compiled out when
 *                            GENAX_ENABLE_DCHECKS is 0 (the Release
 *                            preset); condition is never evaluated
 *                            but stays type-checked.
 * GENAX_UNREACHABLE(...)   — marks control flow that must not be
 *                            reached.
 *
 * Unlike GENAX_ASSERT/GENAX_PANIC (logging.hh), a violation is routed
 * through a process-wide configurable handler, so tests can install a
 * throwing handler and assert that a deliberately corrupted model
 * configuration is caught instead of watching the process abort. If
 * the installed handler returns, the failure still aborts: a CHECK
 * can never be survived by accident.
 */

#ifndef GENAX_COMMON_CHECK_HH
#define GENAX_COMMON_CHECK_HH

#include <stdexcept>
#include <string>

#include "common/logging.hh"

#ifndef GENAX_ENABLE_DCHECKS
#define GENAX_ENABLE_DCHECKS 1
#endif

namespace genax {

/** Everything known about one check violation. */
struct CheckContext
{
    const char *file;
    int line;
    const char *expr;    //!< stringified condition
    std::string message; //!< formatted user message (may be empty)

    /** One-line human-readable rendering. */
    std::string str() const;
};

/** Exception thrown by throwingCheckHandler(). */
class CheckViolation : public std::runtime_error
{
  public:
    explicit CheckViolation(const CheckContext &ctx);

    const CheckContext &context() const { return _ctx; }

  private:
    CheckContext _ctx;
};

/**
 * Violation handler. May throw (tests) or abort; if it returns
 * normally the checking layer aborts the process itself.
 */
using CheckHandler = void (*)(const CheckContext &);

/**
 * Install a new process-wide handler; returns the previous one.
 * Passing nullptr restores the default (print + abort). Thread-safe.
 */
CheckHandler setCheckHandler(CheckHandler handler);

/** Ready-made handler that throws CheckViolation. */
void throwingCheckHandler(const CheckContext &ctx);

/** RAII helper: install a handler for one scope (typically a test). */
class ScopedCheckHandler
{
  public:
    explicit ScopedCheckHandler(CheckHandler handler)
        : _prev(setCheckHandler(handler))
    {
    }
    ~ScopedCheckHandler() { setCheckHandler(_prev); }

    ScopedCheckHandler(const ScopedCheckHandler &) = delete;
    ScopedCheckHandler &operator=(const ScopedCheckHandler &) = delete;

  private:
    CheckHandler _prev;
};

/**
 * Dispatch a violation to the current handler; aborts if the handler
 * declines to throw. Out-of-line so the macro's cold path stays one
 * call.
 */
[[noreturn]] void checkFailed(const char *file, int line,
                              const char *expr, std::string message);

} // namespace genax

#define GENAX_CHECK(cond, ...) \
    do { \
        if (!(cond)) [[unlikely]] { \
            ::genax::checkFailed(__FILE__, __LINE__, #cond, \
                                 ::genax::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

#if GENAX_ENABLE_DCHECKS
#define GENAX_DCHECK(cond, ...) GENAX_CHECK(cond, ##__VA_ARGS__)
#else
// Keep the condition and message arguments compiled (so disabling
// dchecks cannot hide bit-rot) but never evaluated.
#define GENAX_DCHECK(cond, ...) \
    do { \
        if (false) { \
            GENAX_CHECK(cond, ##__VA_ARGS__); \
        } \
    } while (0)
#endif

#define GENAX_UNREACHABLE(...) \
    ::genax::checkFailed(__FILE__, __LINE__, "unreachable", \
                         ::genax::detail::concat(__VA_ARGS__))

#endif // GENAX_COMMON_CHECK_HH
