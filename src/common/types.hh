/**
 * @file
 * Fundamental integer type aliases used across the GenAx code base.
 */

#ifndef GENAX_COMMON_TYPES_HH
#define GENAX_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace genax {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulation cycle count. */
using Cycle = u64;

/** Position within a genome or read (0-based). */
using Pos = u64;

/** Sentinel for "no position". */
inline constexpr Pos kNoPos = ~Pos{0};

} // namespace genax

#endif // GENAX_COMMON_TYPES_HH
