#include "common/check.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <utility>

namespace genax {

namespace {

void
defaultCheckHandler(const CheckContext &ctx)
{
    std::cerr << ctx.str() << std::endl;
    std::abort();
}

std::atomic<CheckHandler> gHandler{&defaultCheckHandler};

} // namespace

std::string
CheckContext::str() const
{
    std::ostringstream os;
    os << "check failed: " << expr;
    if (!message.empty())
        os << " — " << message;
    os << " @ " << file << ":" << line;
    return os.str();
}

CheckViolation::CheckViolation(const CheckContext &ctx)
    : std::runtime_error(ctx.str()), _ctx(ctx)
{
}

CheckHandler
setCheckHandler(CheckHandler handler)
{
    if (handler == nullptr)
        handler = &defaultCheckHandler;
    return gHandler.exchange(handler);
}

void
throwingCheckHandler(const CheckContext &ctx)
{
    throw CheckViolation(ctx);
}

void
checkFailed(const char *file, int line, const char *expr,
            std::string message)
{
    const CheckContext ctx{file, line, expr, std::move(message)};
    gHandler.load()(ctx);
    // The handler chose not to throw or exit: a violated invariant
    // must still never be survived.
    std::cerr << "check handler returned after: " << ctx.str()
              << std::endl;
    std::abort();
}

} // namespace genax
