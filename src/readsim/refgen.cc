#include "readsim/refgen.hh"

#include <algorithm>

#include "common/logging.hh"

namespace genax {

Seq
generateReference(const RefGenConfig &cfg)
{
    GENAX_ASSERT(cfg.length > 0, "empty reference requested");
    GENAX_ASSERT(cfg.repeatLenMin <= cfg.repeatLenMax,
                 "bad repeat length range");
    Rng rng(cfg.seed);
    Seq ref;
    ref.reserve(cfg.length);

    auto random_base = [&]() -> Base {
        if (rng.chance(cfg.gcBias))
            return rng.chance(0.5) ? kBaseG : kBaseC;
        return rng.chance(0.5) ? kBaseA : kBaseT;
    };

    // The repeat branch emits a whole block per draw, so the draw
    // probability must be scaled by the mean block length for
    // repeatFraction to be the fraction of copied bases.
    const double mean_repeat_len =
        static_cast<double>(cfg.repeatLenMin + cfg.repeatLenMax) / 2.0;
    const double repeat_prob =
        cfg.repeatFraction <= 0.0
            ? 0.0
            : cfg.repeatFraction /
                  ((1.0 - std::min(cfg.repeatFraction, 0.99)) *
                   mean_repeat_len);

    while (ref.size() < cfg.length) {
        const bool can_repeat =
            ref.size() > cfg.repeatLenMax + 1 && rng.chance(repeat_prob);
        if (can_repeat) {
            // Copy an earlier window, possibly with light divergence
            // so repeats are near- rather than perfectly identical.
            const u64 len = static_cast<u64>(
                rng.range(static_cast<i64>(cfg.repeatLenMin),
                          static_cast<i64>(cfg.repeatLenMax)));
            const u64 take = std::min(len, cfg.length - ref.size());
            const u64 src = rng.below(ref.size() - take);
            const size_t start = ref.size();
            for (u64 i = 0; i < take; ++i)
                ref.push_back(ref[src + i]);
            // ~1% divergence within the copy.
            for (size_t i = start; i < ref.size(); ++i) {
                if (rng.chance(0.01))
                    ref[i] = static_cast<Base>(rng.below(4));
            }
        } else {
            ref.push_back(random_base());
        }
    }
    ref.resize(cfg.length);
    return ref;
}

} // namespace genax
