/**
 * @file
 * Illumina-style short-read simulation with ground truth.
 *
 * Two error sources are modelled separately, as in real pipelines:
 *
 *  1. Donor variants: the sequenced individual differs from the
 *     reference (SNPs and short indels). A donor genome is built once
 *     and a donor->reference coordinate map retained so each read
 *     knows its true reference position.
 *  2. Sequencing errors: per-base substitution errors (dominant for
 *     Illumina) plus rare indel errors, applied per read.
 *
 * Default rates reproduce the paper's measured workload shape: about
 * 75% of reads align exactly (Section V, "~75% of the reads have
 * exact matches").
 */

#ifndef GENAX_READSIM_READSIM_HH
#define GENAX_READSIM_READSIM_HH

#include <string>
#include <vector>

#include "common/dna.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace genax {

/** Read simulation parameters. */
struct ReadSimConfig
{
    u64 readLen = 101;        //!< Illumina-style read length
    u64 numReads = 10000;
    u64 seed = 7;

    double snpRate = 0.001;       //!< donor SNPs per base
    double donorIndelRate = 0.0001; //!< donor indels per base
    u64 donorIndelMax = 6;        //!< max donor indel length

    double baseErrorRate = 0.0025; //!< sequencing substitution errors
    double readIndelRate = 0.0001; //!< sequencing indel errors
    bool sampleReverse = true;     //!< sample 50% reverse-strand reads
    /** Illumina-style positional error profile: the error rate ramps
     *  from 0.5x baseErrorRate at the 5' end to 1.5x at the 3' end
     *  (same mean), and quality scores reflect the local rate. */
    bool positionalErrors = false;
};

/** One simulated read with its ground truth. */
struct SimRead
{
    std::string name;
    Seq seq;                  //!< as sequenced (already fwd/rev strand)
    std::vector<u8> qual;     //!< synthetic Phred scores
    Pos truthPos = kNoPos;    //!< true reference position (fwd coords)
    bool reverse = false;     //!< sampled from the reverse strand
    u32 numErrors = 0;        //!< sequencing errors applied to this read
};

/** A donor genome derived from a reference, with coordinate map. */
struct Donor
{
    Seq seq;
    /** donorToRef[i] = reference coordinate of donor base i. */
    std::vector<Pos> donorToRef;
    u64 numSnps = 0;
    u64 numIndels = 0;
};

/** Paired-end simulation parameters (FR orientation). */
struct PairSimConfig
{
    double insertMean = 300; //!< fragment length mean
    double insertSd = 30;    //!< fragment length std deviation
};

/** One simulated read pair (R1 forward, R2 reverse of fragment). */
struct SimPair
{
    SimRead r1;
    SimRead r2;
    u64 fragmentLen = 0;
};

/** Plant variants into a reference to build a donor genome. */
Donor buildDonor(const Seq &ref, const ReadSimConfig &cfg, Rng &rng);

/** Sample reads from a donor genome. */
std::vector<SimRead> simulateReads(const Donor &donor,
                                   const ReadSimConfig &cfg, Rng &rng);

/** Convenience: build donor and sample reads with a fresh RNG. */
std::vector<SimRead> simulateReads(const Seq &ref,
                                   const ReadSimConfig &cfg);

/**
 * Sample FR read pairs from a donor genome: R1 is the fragment's
 * 5' end on the forward strand, R2 the reverse complement of its
 * 3' end. cfg.numReads counts pairs; cfg.sampleReverse is ignored.
 */
std::vector<SimPair> simulatePairs(const Donor &donor,
                                   const ReadSimConfig &cfg,
                                   const PairSimConfig &pcfg, Rng &rng);

/** Convenience wrapper building the donor internally. */
std::vector<SimPair> simulatePairs(const Seq &ref,
                                   const ReadSimConfig &cfg,
                                   const PairSimConfig &pcfg = {});

} // namespace genax

#endif // GENAX_READSIM_READSIM_HH
