/**
 * @file
 * Synthetic reference genome generation.
 *
 * Stands in for GRCh38 (see DESIGN.md substitution table): a random
 * base stream with injected repeat copies, so that k-mer hit-list
 * size distributions have the heavy tail that drives the seeding
 * accelerator's CAM/binary-search design (Section V).
 */

#ifndef GENAX_READSIM_REFGEN_HH
#define GENAX_READSIM_REFGEN_HH

#include "common/dna.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace genax {

/** Parameters for synthetic reference generation. */
struct RefGenConfig
{
    u64 length = 1 << 20;     //!< genome length in bases
    u64 seed = 42;            //!< RNG seed
    double repeatFraction = 0.05; //!< fraction of genome that is copies
    u64 repeatLenMin = 200;   //!< min length of one repeat copy
    u64 repeatLenMax = 2000;  //!< max length of one repeat copy
    double gcBias = 0.41;     //!< probability of G or C (human-like)
};

/** Generate a synthetic reference genome. */
Seq generateReference(const RefGenConfig &cfg);

} // namespace genax

#endif // GENAX_READSIM_REFGEN_HH
