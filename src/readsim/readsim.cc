#include "readsim/readsim.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace genax {

namespace {

/** A base different from b, uniformly among the other three. */
Base
mutate(Base b, Rng &rng)
{
    return static_cast<Base>((b + 1 + rng.below(3)) & 3);
}

/** Substitution-error rate at a read position (Illumina-like ramp). */
double
errorRateAt(const ReadSimConfig &cfg, u64 pos)
{
    if (!cfg.positionalErrors)
        return cfg.baseErrorRate;
    return cfg.baseErrorRate *
           (0.5 + static_cast<double>(pos) /
                      static_cast<double>(cfg.readLen));
}

/** Phred score corresponding to an error probability. */
u8
phredOf(double p)
{
    const double q = -10.0 * std::log10(std::max(p, 1e-5));
    return static_cast<u8>(std::clamp(q, 2.0, 41.0));
}

/** Per-position quality string for the configured error model. */
std::vector<u8>
qualityProfile(const ReadSimConfig &cfg)
{
    std::vector<u8> qual(cfg.readLen);
    for (u64 i = 0; i < cfg.readLen; ++i) {
        qual[i] = cfg.positionalErrors ? phredOf(errorRateAt(cfg, i))
                                       : static_cast<u8>(35);
    }
    return qual;
}

/**
 * Sample a read of cfg.readLen from the donor starting at `start`,
 * applying sequencing errors. Returns false when the donor end is
 * reached before the read fills up.
 */
bool
sampleErroredRead(const Seq &donor, Pos start, const ReadSimConfig &cfg,
                  Rng &rng, Seq &out, u32 &errors,
                  bool reversed_read = false)
{
    out.clear();
    out.reserve(cfg.readLen + 4);
    errors = 0;
    Pos d = start;
    while (out.size() < cfg.readLen && d < donor.size()) {
        if (rng.chance(cfg.readIndelRate)) {
            ++errors;
            if (rng.chance(0.5)) {
                out.push_back(static_cast<Base>(rng.below(4)));
                continue;
            }
            ++d;
            continue;
        }
        Base b = donor[d++];
        // The error ramp follows sequencing order: for a read that
        // will be reverse-complemented, the fragment start is the
        // sequenced 3' end.
        const u64 seq_pos = reversed_read
                                ? cfg.readLen - 1 - out.size()
                                : out.size();
        if (rng.chance(errorRateAt(cfg, seq_pos))) {
            b = mutate(b, rng);
            ++errors;
        }
        out.push_back(b);
    }
    return out.size() >= cfg.readLen;
}

/** Standard normal via Box-Muller. */
double
gaussian(Rng &rng)
{
    double u1 = rng.real();
    while (u1 <= 1e-12)
        u1 = rng.real();
    const double u2 = rng.real();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

} // namespace

Donor
buildDonor(const Seq &ref, const ReadSimConfig &cfg, Rng &rng)
{
    Donor donor;
    donor.seq.reserve(ref.size());
    donor.donorToRef.reserve(ref.size());

    for (Pos r = 0; r < ref.size(); ++r) {
        if (rng.chance(cfg.donorIndelRate)) {
            const u64 len = 1 + rng.below(cfg.donorIndelMax);
            ++donor.numIndels;
            if (rng.chance(0.5)) {
                // Donor insertion: extra bases not in the reference.
                for (u64 i = 0; i < len; ++i) {
                    donor.seq.push_back(static_cast<Base>(rng.below(4)));
                    donor.donorToRef.push_back(r);
                }
            } else {
                // Donor deletion: skip reference bases.
                r += std::min<Pos>(len - 1, ref.size() - 1 - r);
                continue;
            }
        }
        Base b = ref[r];
        if (rng.chance(cfg.snpRate)) {
            b = mutate(b, rng);
            ++donor.numSnps;
        }
        donor.seq.push_back(b);
        donor.donorToRef.push_back(r);
    }
    return donor;
}

std::vector<SimRead>
simulateReads(const Donor &donor, const ReadSimConfig &cfg, Rng &rng)
{
    GENAX_ASSERT(donor.seq.size() >= cfg.readLen,
                 "donor shorter than read length");
    std::vector<SimRead> reads;
    reads.reserve(cfg.numReads);

    const std::vector<u8> qual = qualityProfile(cfg);
    for (u64 n = 0; n < cfg.numReads; ++n) {
        const Pos start = rng.below(donor.seq.size() - cfg.readLen + 1);
        const bool reverse = cfg.sampleReverse && rng.chance(0.5);

        // Fragment as it appears on the forward donor strand, with
        // sequencing errors applied in sequencing order.
        Seq frag;
        u32 errors = 0;
        if (!sampleErroredRead(donor.seq, start, cfg, rng, frag,
                               errors, reverse)) {
            // Ran off the donor end (rare); resample.
            --n;
            continue;
        }

        SimRead read;
        read.name = "sim" + std::to_string(n);
        read.truthPos = donor.donorToRef[start];
        read.numErrors = errors;
        read.reverse = reverse;
        read.seq = reverse ? reverseComplement(frag) : frag;
        read.qual = qual;
        reads.push_back(std::move(read));
    }
    return reads;
}

std::vector<SimRead>
simulateReads(const Seq &ref, const ReadSimConfig &cfg)
{
    Rng rng(cfg.seed);
    const Donor donor = buildDonor(ref, cfg, rng);
    return simulateReads(donor, cfg, rng);
}

std::vector<SimPair>
simulatePairs(const Donor &donor, const ReadSimConfig &cfg,
              const PairSimConfig &pcfg, Rng &rng)
{
    GENAX_ASSERT(donor.seq.size() >= cfg.readLen * 2,
                 "donor too short for pairs");
    std::vector<SimPair> pairs;
    pairs.reserve(cfg.numReads);

    for (u64 n = 0; n < cfg.numReads; ++n) {
        const double draw =
            pcfg.insertMean + pcfg.insertSd * gaussian(rng);
        const u64 frag_len = std::max<u64>(
            cfg.readLen,
            std::min<u64>(donor.seq.size(),
                          static_cast<u64>(std::max(1.0, draw))));
        if (donor.seq.size() < frag_len) {
            --n;
            continue;
        }
        const Pos start = rng.below(donor.seq.size() - frag_len + 1);

        Seq s1, s2;
        u32 e1 = 0, e2 = 0;
        const Pos start2 = start + frag_len - cfg.readLen;
        if (!sampleErroredRead(donor.seq, start, cfg, rng, s1, e1) ||
            !sampleErroredRead(donor.seq, start2, cfg, rng, s2, e2,
                               /*reversed_read=*/true)) {
            --n;
            continue;
        }

        SimPair pair;
        pair.fragmentLen = frag_len;
        pair.r1.name = "pair" + std::to_string(n) + "/1";
        pair.r1.seq = std::move(s1);
        pair.r1.qual = qualityProfile(cfg);
        pair.r1.truthPos = donor.donorToRef[start];
        pair.r1.reverse = false;
        pair.r1.numErrors = e1;
        pair.r2.name = "pair" + std::to_string(n) + "/2";
        pair.r2.seq = reverseComplement(s2);
        pair.r2.qual = qualityProfile(cfg);
        pair.r2.truthPos = donor.donorToRef[start2];
        pair.r2.reverse = true;
        pair.r2.numErrors = e2;
        pairs.push_back(std::move(pair));
    }
    return pairs;
}

std::vector<SimPair>
simulatePairs(const Seq &ref, const ReadSimConfig &cfg,
              const PairSimConfig &pcfg)
{
    Rng rng(cfg.seed);
    const Donor donor = buildDonor(ref, cfg, rng);
    return simulatePairs(donor, cfg, pcfg, rng);
}

} // namespace genax
