/**
 * @file
 * Evaluation helpers: mapping accuracy against simulated ground
 * truth, and concordance between two aligners (the paper's
 * Section VIII-A methodology, reusable by tests, benches and
 * examples).
 *
 * Header-only; binaries using it must link genax_align for the
 * Mapping/Cigar types.
 */

#ifndef GENAX_READSIM_EVAL_HH
#define GENAX_READSIM_EVAL_HH

#include <cstdlib>
#include <vector>

#include "align/mapping.hh"
#include "common/logging.hh"
#include "readsim/readsim.hh"

namespace genax {

/** Accuracy of mappings against simulated truth. */
struct AccuracyReport
{
    u64 reads = 0;
    u64 mapped = 0;
    u64 correct = 0; //!< right strand, position within tolerance

    double
    mappedFraction() const
    {
        return reads ? static_cast<double>(mapped) / reads : 0.0;
    }

    double
    correctFraction() const
    {
        return reads ? static_cast<double>(correct) / reads : 0.0;
    }
};

/**
 * Score mappings against the simulator's truth positions.
 *
 * @param tolerance allowed |position - truth| (indel slack)
 */
inline AccuracyReport
evaluateAccuracy(const std::vector<SimRead> &truth,
                 const std::vector<Mapping> &maps, i64 tolerance = 12)
{
    GENAX_ASSERT(truth.size() == maps.size(),
                 "truth/mapping size mismatch");
    AccuracyReport rep;
    rep.reads = truth.size();
    for (size_t i = 0; i < maps.size(); ++i) {
        if (!maps[i].mapped)
            continue;
        ++rep.mapped;
        const i64 delta = static_cast<i64>(maps[i].pos) -
                          static_cast<i64>(truth[i].truthPos);
        if (maps[i].reverse == truth[i].reverse &&
            std::llabs(delta) <= tolerance) {
            ++rep.correct;
        }
    }
    return rep;
}

/** Agreement between two aligners on the same reads. */
struct ConcordanceReport
{
    u64 bothMapped = 0;
    u64 sameScore = 0;
    u64 samePlacement = 0; //!< same position and strand

    double
    scoreFraction() const
    {
        return bothMapped
                   ? static_cast<double>(sameScore) / bothMapped
                   : 0.0;
    }

    double
    placementFraction() const
    {
        return bothMapped
                   ? static_cast<double>(samePlacement) / bothMapped
                   : 0.0;
    }
};

/** Compare two aligners' outputs read by read. */
inline ConcordanceReport
evaluateConcordance(const std::vector<Mapping> &a,
                    const std::vector<Mapping> &b)
{
    GENAX_ASSERT(a.size() == b.size(), "mapping size mismatch");
    ConcordanceReport rep;
    for (size_t i = 0; i < a.size(); ++i) {
        if (!a[i].mapped || !b[i].mapped)
            continue;
        ++rep.bothMapped;
        rep.sameScore += a[i].score == b[i].score;
        rep.samePlacement +=
            a[i].pos == b[i].pos && a[i].reverse == b[i].reverse;
    }
    return rep;
}

} // namespace genax

#endif // GENAX_READSIM_EVAL_HH
