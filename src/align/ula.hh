/**
 * @file
 * Universal Levenshtein Automaton (Mitankin 2005), the paper's
 * Section II comparison point.
 *
 * Like Silla, the ULA is string independent: one automaton for a
 * given edit bound K processes any string pair. Its states are sets
 * of subsumption-reduced positions (d, e) — pattern lead/lag d = i-j
 * and error count e — and its input alphabet is the characteristic
 * bit-vector chi[m] = (text[j] == pattern[j+m]) over the window
 * m in [-K, K].
 *
 * The paper's criticism, which this model makes measurable: a ULA
 * position fans out to O(K) successors per step (the deletion edges
 * jump d by up to K - e), so its communication is not local — the
 * property Silla was designed to fix. fanoutEdges() and
 * maxDeltaReach() report exactly that.
 */

#ifndef GENAX_ALIGN_ULA_HH
#define GENAX_ALIGN_ULA_HH

#include <optional>
#include <vector>

#include "common/dna.hh"
#include "common/types.hh"

namespace genax {

/** Universal Levenshtein automaton simulation for edit bound K. */
class UniversalLevAutomaton
{
  public:
    explicit UniversalLevAutomaton(u32 k);

    /**
     * Edit distance between pattern and text if <= K.
     * One instance can process any pair (string independence).
     */
    std::optional<u32> distance(const Seq &pattern, const Seq &text);

    u32 k() const { return _k; }

    /** Transition edges evaluated in the last distance() call. */
    u64 lastFanoutEdges() const { return _fanoutEdges; }

    /** Largest |d' - d| jump taken by any edge in the last call
     *  (locality measure; Silla's is always 1). */
    u32 lastMaxDeltaReach() const { return _maxDeltaReach; }

    /** Peak simultaneously-active positions in the last call. */
    u64 lastPeakActive() const { return _peakActive; }

  private:
    /** Active flag index for position (d, e), d in [-K, K]. */
    size_t
    idx(i32 d, u32 e) const
    {
        return static_cast<size_t>(e) * (2 * _k + 1) +
               static_cast<size_t>(d + static_cast<i32>(_k));
    }

    /** Remove positions subsumed by stronger ones. */
    void subsume(std::vector<u8> &active) const;

    u32 _k;
    u64 _fanoutEdges = 0;
    u32 _maxDeltaReach = 0;
    u64 _peakActive = 0;
    std::vector<u8> _cur, _next;
};

} // namespace genax

#endif // GENAX_ALIGN_ULA_HH
