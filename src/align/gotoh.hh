/**
 * @file
 * Smith-Waterman-Gotoh affine-gap alignment with traceback.
 *
 * Three modes cover the alignment flavours used in the paper:
 *
 *  Global  — both sequences consumed end to end (Needleman-Wunsch).
 *  Local   — classic Smith-Waterman (scores floored at zero, best
 *            cell anywhere, both ends free).
 *  Extend  — BWA-MEM seed extension: anchored at (0,0), the best
 *            score seen anywhere wins ("clipping", Section IV-B),
 *            traceback runs from that cell back to the anchor and the
 *            remainder of the query is soft-clipped.
 *
 * Both a full O(n*m) implementation and a banded O((2K+1)*n)
 * implementation (the SeqAn-style baseline of Figures 14/15) are
 * provided. Banded cells outside |i-j| <= band are treated as
 * unreachable.
 */

#ifndef GENAX_ALIGN_GOTOH_HH
#define GENAX_ALIGN_GOTOH_HH

#include "common/dna.hh"
#include "common/types.hh"

#include "align/cigar.hh"
#include "align/scoring.hh"

namespace genax {

/** Alignment flavour. */
enum class AlignMode
{
    Global,
    Local,
    Extend,
};

/** Result of a pairwise alignment. */
struct AlignResult
{
    /** True if any alignment was found (can be false for banded
     *  Global with an insufficient band). */
    bool valid = false;

    i32 score = 0;

    /** Consumed half-open reference span [refBegin, refEnd). */
    u64 refBegin = 0;
    u64 refEnd = 0;

    /** Consumed half-open query span [qryBegin, qryEnd). */
    u64 qryBegin = 0;
    u64 qryEnd = 0;

    /** Alignment path; includes trailing/leading soft clips of the
     *  query in Local/Extend modes. */
    Cigar cigar;
};

/** Full-matrix Gotoh alignment. ref indexes rows, qry columns. */
AlignResult gotohAlign(const Seq &ref, const Seq &qry, const Scoring &sc,
                       AlignMode mode);

/**
 * Banded Gotoh alignment over |i-j| <= band.
 *
 * In Extend mode this is exactly the computation the SillaX scoring
 * and traceback machines perform with K = band, and serves as their
 * verification oracle.
 */
AlignResult gotohBanded(const Seq &ref, const Seq &qry, const Scoring &sc,
                        AlignMode mode, u32 band);

/** Banded Gotoh against a 2-bit packed reference window. The packed
 *  form quarters the window's cache footprint, which is what the
 *  extension fallback path feeds it (see PackedSeq::packWindow). */
AlignResult gotohBanded(const PackedSeq &ref, const Seq &qry,
                        const Scoring &sc, AlignMode mode, u32 band);

/**
 * Score-only banded Gotoh Extend pass (no traceback storage).
 * This is the software throughput baseline kernel (SeqAn stand-in)
 * used by the Figure 14 bench.
 */
i32 gotohBandedScoreOnly(const Seq &ref, const Seq &qry, const Scoring &sc,
                         u32 band);

/** Score-only banded Extend against a 2-bit packed reference. */
i32 gotohBandedScoreOnly(const PackedSeq &ref, const Seq &qry,
                         const Scoring &sc, u32 band);

/**
 * The (score, refEnd, qryEnd) triple of a banded Extend alignment —
 * exactly the fields gotohBanded(..., Extend, band) would report,
 * without computing a traceback. Feeding the triple back into a
 * prefix-truncated gotohBanded run reproduces the full result (see
 * src/align/simd/): the winning cell and every cell on its path lie
 * inside ref[0, refEnd) x qry[0, qryEnd), so the truncated DP is
 * bit-identical there. The SIMD batch kernels must reproduce this
 * function's output exactly; it is their scalar reference oracle.
 */
struct BandedExtendScore
{
    i32 score = 0;
    u64 refEnd = 0;
    u64 qryEnd = 0;

    bool operator==(const BandedExtendScore &) const = default;
};

BandedExtendScore gotohBandedExtendScore(const Seq &ref, const Seq &qry,
                                         const Scoring &sc, u32 band);

BandedExtendScore gotohBandedExtendScore(const PackedSeq &ref,
                                         const Seq &qry,
                                         const Scoring &sc, u32 band);

} // namespace genax

#endif // GENAX_ALIGN_GOTOH_HH
