/**
 * @file
 * Myers bit-vector edit distance (Myers 1999, block-based per Hyyrö).
 *
 * Computes the global Levenshtein distance between a pattern and a
 * text in O(ceil(m/64) * n) word operations. This is the strongest
 * practical software edit-distance baseline referenced by the paper
 * (its reference [15]) and is used by the microbenchmarks.
 */

#ifndef GENAX_ALIGN_MYERS_HH
#define GENAX_ALIGN_MYERS_HH

#include "common/dna.hh"
#include "common/types.hh"

namespace genax {

/**
 * Global edit distance via the bit-parallel algorithm.
 * Works for any pattern length (multi-block). Empty inputs allowed.
 */
u64 myersEditDistance(const Seq &pattern, const Seq &text);

/** Same, scanning a 2-bit packed text (the padded reference windows
 *  the extension paths build with PackedSeq::packWindow). */
u64 myersEditDistance(const Seq &pattern, const PackedSeq &text);

} // namespace genax

#endif // GENAX_ALIGN_MYERS_HH
