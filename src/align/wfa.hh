/**
 * @file
 * Gap-affine wavefront alignment (WFA).
 *
 * The contemporary successor of banded Smith-Waterman: three
 * families of wavefronts (M/I/D) of furthest-reaching diagonal
 * offsets are advanced in order of accumulated penalty, with free
 * sliding through matches. Runtime O((n+m) * P) where P is the
 * optimal penalty — like Silla, work scales with the amount of
 * divergence rather than with the full DP matrix.
 *
 * WFA minimizes penalties with zero-cost matches; the standard
 * linear transformation maps any (match, mismatch, gapOpen,
 * gapExtend) maximization scheme onto it, so wfaGlobalScore()
 * reproduces Gotoh global scores exactly (property-tested).
 */

#ifndef GENAX_ALIGN_WFA_HH
#define GENAX_ALIGN_WFA_HH

#include <optional>

#include "align/scoring.hh"
#include "common/dna.hh"
#include "common/types.hh"

namespace genax {

/** WFA penalty scheme (match = 0). */
struct WfaPenalties
{
    u32 mismatch = 4;
    u32 gapOpen = 6;
    u32 gapExtend = 2;
};

/**
 * Minimum global alignment penalty, or nullopt if it exceeds
 * max_penalty.
 */
std::optional<u64> wfaGlobalPenalty(const Seq &a, const Seq &b,
                                    const WfaPenalties &p,
                                    u64 max_penalty);

/**
 * Global alignment score under an affine maximization scheme,
 * computed via WFA with the 2(a+b)/2g/(2e+a) penalty transformation.
 * Requires non-empty inputs (the degenerate all-gap cases are
 * cheaper done directly).
 */
i32 wfaGlobalScore(const Seq &a, const Seq &b, const Scoring &sc);

} // namespace genax

#endif // GENAX_ALIGN_WFA_HH
