#include "align/gotoh.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace genax {

namespace {

constexpr i32 kNegInf = INT32_MIN / 4;

// Direction byte layout: bits 0-1 = H source, bit 2 = E extends,
// bit 3 = F extends.
enum HSrc : u8
{
    kDiag = 0,
    kFromE = 1,
    kFromF = 2,
    kStop = 3,
};

constexpr u8 kEExtBit = 1 << 2;
constexpr u8 kFExtBit = 1 << 3;

HSrc hSrc(u8 d) { return static_cast<HSrc>(d & 3); }

struct BestCell
{
    i32 score = kNegInf;
    u64 i = 0;
    u64 j = 0;

    /** Deterministic preference: higher score, then shorter, then
     *  fewer reference characters. */
    void
    consider(i32 s, u64 ci, u64 cj)
    {
        if (s > score ||
            (s == score && (ci + cj < i + j ||
                            (ci + cj == i + j && ci < i)))) {
            score = s;
            i = ci;
            j = cj;
        }
    }
};

/**
 * Shared traceback walker. dir_at(i, j) must return the direction
 * byte for a cell that was computed; it is only called on the path.
 * RefT is any random-access base container (Seq or PackedSeq).
 */
template <typename RefT, typename DirFn>
AlignResult
traceback(const RefT &ref, const Seq &qry, AlignMode mode, i32 best,
          u64 bi, u64 bj, DirFn dir_at)
{
    AlignResult res;
    res.valid = true;
    res.score = best;
    res.refEnd = bi;
    res.qryEnd = bj;

    Cigar path;
    enum class St { H, E, F } st = St::H;
    u64 i = bi, j = bj;
    for (;;) {
        if (st == St::H) {
            const u8 d = dir_at(i, j);
            const HSrc s = hSrc(d);
            if (s == kStop)
                break;
            if (s == kDiag) {
                GENAX_ASSERT(i > 0 && j > 0, "diag traceback underflow");
                path.push(ref[i - 1] == qry[j - 1] ? CigarOp::Match
                                                   : CigarOp::Mismatch);
                --i;
                --j;
            } else if (s == kFromE) {
                st = St::E;
            } else {
                st = St::F;
            }
        } else if (st == St::E) {
            GENAX_ASSERT(j > 0, "E traceback underflow");
            const bool ext = dir_at(i, j) & kEExtBit;
            path.push(CigarOp::Ins);
            --j;
            if (!ext)
                st = St::H;
        } else {
            GENAX_ASSERT(i > 0, "F traceback underflow");
            const bool ext = dir_at(i, j) & kFExtBit;
            path.push(CigarOp::Del);
            --i;
            if (!ext)
                st = St::H;
        }
    }
    res.refBegin = i;
    res.qryBegin = j;
    path.reverse();

    Cigar full;
    if (res.qryBegin > 0)
        full.push(CigarOp::SoftClip, static_cast<u32>(res.qryBegin));
    full.append(path);
    if (res.qryEnd < qry.size())
        full.push(CigarOp::SoftClip,
                  static_cast<u32>(qry.size() - res.qryEnd));
    res.cigar = std::move(full);

    // Anchored modes must trace back to the origin.
    if (mode != AlignMode::Local) {
        GENAX_ASSERT(res.refBegin == 0 && res.qryBegin == 0,
                     "anchored traceback did not reach origin");
    }
    return res;
}

} // namespace

AlignResult
gotohAlign(const Seq &ref, const Seq &qry, const Scoring &sc,
           AlignMode mode)
{
    const u64 n = ref.size(), m = qry.size();
    const u64 cols = m + 1;
    const bool local = mode == AlignMode::Local;

    std::vector<u8> dir((n + 1) * cols, kStop);
    std::vector<i32> hPrev(cols), hCur(cols);
    std::vector<i32> fPrev(cols, kNegInf), fCur(cols, kNegInf);

    BestCell best;

    // Row 0.
    hPrev[0] = 0;
    best.consider(0, 0, 0);
    for (u64 j = 1; j <= m; ++j) {
        if (local) {
            hPrev[j] = 0;
        } else {
            hPrev[j] = sc.gapCost(static_cast<i32>(j));
            dir[j] = kFromE | (j > 1 ? kEExtBit : 0);
        }
        best.consider(hPrev[j], 0, j);
    }

    for (u64 i = 1; i <= n; ++i) {
        i32 e = kNegInf;
        if (local) {
            hCur[0] = 0;
            dir[i * cols] = kStop;
        } else {
            hCur[0] = sc.gapCost(static_cast<i32>(i));
            dir[i * cols] = kFromF | (i > 1 ? kFExtBit : 0);
        }
        fCur[0] = kNegInf;
        best.consider(hCur[0], i, 0);

        for (u64 j = 1; j <= m; ++j) {
            // E: gap consuming the query (insertion run).
            const i32 eOpen = hCur[j - 1] - sc.gapOpen - sc.gapExtend;
            const i32 eExt = e == kNegInf ? kNegInf : e - sc.gapExtend;
            const bool eIsExt = eExt > eOpen;
            e = std::max(eOpen, eExt);

            // F: gap consuming the reference (deletion run).
            const i32 fOpen = hPrev[j] - sc.gapOpen - sc.gapExtend;
            const i32 fExt =
                fPrev[j] == kNegInf ? kNegInf : fPrev[j] - sc.gapExtend;
            const bool fIsExt = fExt > fOpen;
            fCur[j] = std::max(fOpen, fExt);

            const i32 diag = hPrev[j - 1] + sc.sub(ref[i - 1], qry[j - 1]);

            i32 h = diag;
            u8 d = kDiag;
            if (e > h) {
                h = e;
                d = kFromE;
            }
            if (fCur[j] > h) {
                h = fCur[j];
                d = kFromF;
            }
            if (local && h <= 0) {
                h = 0;
                d = kStop;
            }
            hCur[j] = h;
            dir[i * cols + j] = static_cast<u8>(
                d | (eIsExt ? kEExtBit : 0) | (fIsExt ? kFExtBit : 0));
            best.consider(h, i, j);
        }
        std::swap(hPrev, hCur);
        std::swap(fPrev, fCur);
    }

    u64 bi, bj;
    i32 bscore;
    if (mode == AlignMode::Global) {
        bi = n;
        bj = m;
        bscore = hPrev[m];
    } else {
        bi = best.i;
        bj = best.j;
        bscore = best.score;
    }
    return traceback(ref, qry, mode, bscore, bi, bj,
                     [&](u64 i, u64 j) { return dir[i * cols + j]; });
}

namespace {

/**
 * Banded Gotoh over any random-access reference container; the 2-bit
 * PackedSeq instantiation keeps the reference window in ~1/4 of the
 * cache footprint on the extension fallback path.
 */
template <typename RefT>
AlignResult
gotohBandedImpl(const RefT &ref, const Seq &qry, const Scoring &sc,
                AlignMode mode, u32 band)
{
    const i64 n = static_cast<i64>(ref.size());
    const i64 m = static_cast<i64>(qry.size());
    const i64 w = band;
    const i64 width = 2 * w + 1;
    const bool local = mode == AlignMode::Local;

    if (mode == AlignMode::Global && std::abs(n - m) > w)
        return {};

    // Band storage: row i holds columns j in [i-w, i+w]; band column
    // index is j - i + w.
    std::vector<u8> dir(static_cast<size_t>(n + 1) * width, kStop);
    auto dir_at = [&](u64 i, u64 j) {
        const i64 col = static_cast<i64>(j) - static_cast<i64>(i) + w;
        GENAX_ASSERT(col >= 0 && col < width, "traceback left the band");
        return dir[i * width + col];
    };
    auto dir_set = [&](i64 i, i64 j, u8 v) {
        dir[static_cast<size_t>(i) * width + (j - i + w)] = v;
    };

    std::vector<i32> hPrev(width, kNegInf), hCur(width, kNegInf);
    std::vector<i32> fPrev(width, kNegInf), fCur(width, kNegInf);

    BestCell best;

    // Row 0: columns 0..min(m, w), band col = j + w... for i=0 the
    // band col of j is j + w - 0? No: j - 0 + w = j + w; but j <= w
    // keeps it < width only for j <= w. Row 0 covers j in [0, w].
    for (i64 j = 0; j <= std::min(m, w); ++j) {
        const i64 col = j + w;
        if (col >= width)
            break;
        if (local || j == 0) {
            hPrev[col] = 0;
        } else {
            hPrev[col] = sc.gapCost(static_cast<i32>(j));
            dir_set(0, j, static_cast<u8>(kFromE | (j > 1 ? kEExtBit : 0)));
        }
        best.consider(hPrev[col], 0, static_cast<u64>(j));
    }

    for (i64 i = 1; i <= n; ++i) {
        std::fill(hCur.begin(), hCur.end(), kNegInf);
        std::fill(fCur.begin(), fCur.end(), kNegInf);
        const i64 jlo = std::max<i64>(0, i - w);
        const i64 jhi = std::min(m, i + w);
        i32 e = kNegInf;
        for (i64 j = jlo; j <= jhi; ++j) {
            const i64 col = j - i + w;
            if (j == 0) {
                if (local) {
                    hCur[col] = 0;
                    dir_set(i, 0, kStop);
                } else {
                    hCur[col] = sc.gapCost(static_cast<i32>(i));
                    dir_set(i, 0, static_cast<u8>(
                                kFromF | (i > 1 ? kFExtBit : 0)));
                }
                best.consider(hCur[col], static_cast<u64>(i), 0);
                continue;
            }

            // E from (i, j-1): band col-1 in the same row.
            i32 eOpen = kNegInf, eExt = kNegInf;
            if (col - 1 >= 0) {
                if (hCur[col - 1] != kNegInf)
                    eOpen = hCur[col - 1] - sc.gapOpen - sc.gapExtend;
                if (e != kNegInf)
                    eExt = e - sc.gapExtend;
            }
            const bool eIsExt = eExt > eOpen;
            e = std::max(eOpen, eExt);

            // F from (i-1, j): band col+1 in the previous row.
            i32 fOpen = kNegInf, fExt = kNegInf;
            if (col + 1 < width) {
                if (hPrev[col + 1] != kNegInf)
                    fOpen = hPrev[col + 1] - sc.gapOpen - sc.gapExtend;
                if (fPrev[col + 1] != kNegInf)
                    fExt = fPrev[col + 1] - sc.gapExtend;
            }
            const bool fIsExt = fExt > fOpen;
            fCur[col] = std::max(fOpen, fExt);

            // Diagonal from (i-1, j-1): same band col in previous row.
            i32 diag = kNegInf;
            if (hPrev[col] != kNegInf)
                diag = hPrev[col] + sc.sub(ref[i - 1], qry[j - 1]);

            i32 h = diag;
            u8 d = kDiag;
            if (e > h) {
                h = e;
                d = kFromE;
            }
            if (fCur[col] > h) {
                h = fCur[col];
                d = kFromF;
            }
            if (h == kNegInf)
                continue; // unreachable cell
            if (local && h <= 0) {
                h = 0;
                d = kStop;
            }
            hCur[col] = h;
            dir_set(i, j, static_cast<u8>(
                        d | (eIsExt ? kEExtBit : 0) |
                        (fIsExt ? kFExtBit : 0)));
            best.consider(h, static_cast<u64>(i), static_cast<u64>(j));
        }
        std::swap(hPrev, hCur);
        std::swap(fPrev, fCur);
    }

    u64 bi, bj;
    i32 bscore;
    if (mode == AlignMode::Global) {
        const i64 col = m - n + w;
        if (col < 0 || col >= width || hPrev[col] == kNegInf)
            return {};
        bi = static_cast<u64>(n);
        bj = static_cast<u64>(m);
        bscore = hPrev[col];
    } else {
        if (best.score == kNegInf)
            return {};
        bi = best.i;
        bj = best.j;
        bscore = best.score;
    }
    return traceback(ref, qry, mode, bscore, bi, bj, dir_at);
}

/**
 * Extend-mode banded pass tracking the BestCell argmax but storing no
 * directions. Mirrors gotohBandedImpl (Extend) cell for cell, so the
 * returned triple matches the full run exactly — including the
 * deterministic tie-break order of BestCell::consider.
 */
template <typename RefT>
BandedExtendScore
gotohBandedExtendScoreImpl(const RefT &ref, const Seq &qry,
                           const Scoring &sc, u32 band)
{
    const i64 n = static_cast<i64>(ref.size());
    const i64 m = static_cast<i64>(qry.size());
    const i64 w = band;
    const i64 width = 2 * w + 1;

    std::vector<i32> hPrev(width, kNegInf), hCur(width, kNegInf);
    std::vector<i32> fPrev(width, kNegInf), fCur(width, kNegInf);

    BestCell best;
    for (i64 j = 0; j <= std::min(m, w); ++j) {
        const i64 col = j + w;
        if (col >= width)
            break;
        hPrev[col] = j == 0 ? 0 : sc.gapCost(static_cast<i32>(j));
        best.consider(hPrev[col], 0, static_cast<u64>(j));
    }
    for (i64 i = 1; i <= n; ++i) {
        std::fill(hCur.begin(), hCur.end(), kNegInf);
        std::fill(fCur.begin(), fCur.end(), kNegInf);
        const i64 jlo = std::max<i64>(0, i - w);
        const i64 jhi = std::min(m, i + w);
        i32 e = kNegInf;
        for (i64 j = jlo; j <= jhi; ++j) {
            const i64 col = j - i + w;
            if (j == 0) {
                hCur[col] = sc.gapCost(static_cast<i32>(i));
                best.consider(hCur[col], static_cast<u64>(i), 0);
                continue;
            }
            i32 eOpen = kNegInf, eExt = kNegInf;
            if (col - 1 >= 0) {
                if (hCur[col - 1] != kNegInf)
                    eOpen = hCur[col - 1] - sc.gapOpen - sc.gapExtend;
                if (e != kNegInf)
                    eExt = e - sc.gapExtend;
            }
            e = std::max(eOpen, eExt);

            i32 fOpen = kNegInf, fExt = kNegInf;
            if (col + 1 < width) {
                if (hPrev[col + 1] != kNegInf)
                    fOpen = hPrev[col + 1] - sc.gapOpen - sc.gapExtend;
                if (fPrev[col + 1] != kNegInf)
                    fExt = fPrev[col + 1] - sc.gapExtend;
            }
            fCur[col] = std::max(fOpen, fExt);

            i32 diag = kNegInf;
            if (hPrev[col] != kNegInf)
                diag = hPrev[col] + sc.sub(ref[i - 1], qry[j - 1]);

            const i32 h = std::max({diag, e, fCur[col]});
            if (h == kNegInf)
                continue; // unreachable cell
            hCur[col] = h;
            best.consider(h, static_cast<u64>(i), static_cast<u64>(j));
        }
        std::swap(hPrev, hCur);
        std::swap(fPrev, fCur);
    }
    return {best.score, best.i, best.j};
}

template <typename RefT>
i32
gotohBandedScoreOnlyImpl(const RefT &ref, const Seq &qry,
                         const Scoring &sc, u32 band)
{
    const i64 n = static_cast<i64>(ref.size());
    const i64 m = static_cast<i64>(qry.size());
    const i64 w = band;
    const i64 width = 2 * w + 1;

    std::vector<i32> hPrev(width, kNegInf), hCur(width, kNegInf);
    std::vector<i32> fPrev(width, kNegInf), fCur(width, kNegInf);

    i32 best = 0;
    for (i64 j = 0; j <= std::min(m, w); ++j) {
        hPrev[j + w] = j == 0 ? 0 : sc.gapCost(static_cast<i32>(j));
        best = std::max(best, hPrev[j + w]);
    }
    for (i64 i = 1; i <= n; ++i) {
        std::fill(hCur.begin(), hCur.end(), kNegInf);
        std::fill(fCur.begin(), fCur.end(), kNegInf);
        const i64 jlo = std::max<i64>(0, i - w);
        const i64 jhi = std::min(m, i + w);
        i32 e = kNegInf;
        for (i64 j = jlo; j <= jhi; ++j) {
            const i64 col = j - i + w;
            if (j == 0) {
                hCur[col] = sc.gapCost(static_cast<i32>(i));
                best = std::max(best, hCur[col]);
                continue;
            }
            i32 eBest = kNegInf;
            if (col - 1 >= 0) {
                if (hCur[col - 1] != kNegInf)
                    eBest = hCur[col - 1] - sc.gapOpen - sc.gapExtend;
                if (e != kNegInf)
                    eBest = std::max(eBest, e - sc.gapExtend);
            }
            e = eBest;
            i32 fBest = kNegInf;
            if (col + 1 < width) {
                if (hPrev[col + 1] != kNegInf)
                    fBest = hPrev[col + 1] - sc.gapOpen - sc.gapExtend;
                if (fPrev[col + 1] != kNegInf)
                    fBest = std::max(fBest, fPrev[col + 1] - sc.gapExtend);
            }
            fCur[col] = fBest;
            i32 h = kNegInf;
            if (hPrev[col] != kNegInf)
                h = hPrev[col] + sc.sub(ref[i - 1], qry[j - 1]);
            h = std::max({h, e, fBest});
            hCur[col] = h;
            if (h > best)
                best = h;
        }
        std::swap(hPrev, hCur);
        std::swap(fPrev, fCur);
    }
    return best;
}

} // namespace

AlignResult
gotohBanded(const Seq &ref, const Seq &qry, const Scoring &sc,
            AlignMode mode, u32 band)
{
    return gotohBandedImpl(ref, qry, sc, mode, band);
}

AlignResult
gotohBanded(const PackedSeq &ref, const Seq &qry, const Scoring &sc,
            AlignMode mode, u32 band)
{
    return gotohBandedImpl(ref, qry, sc, mode, band);
}

i32
gotohBandedScoreOnly(const Seq &ref, const Seq &qry, const Scoring &sc,
                     u32 band)
{
    return gotohBandedScoreOnlyImpl(ref, qry, sc, band);
}

i32
gotohBandedScoreOnly(const PackedSeq &ref, const Seq &qry,
                     const Scoring &sc, u32 band)
{
    return gotohBandedScoreOnlyImpl(ref, qry, sc, band);
}

BandedExtendScore
gotohBandedExtendScore(const Seq &ref, const Seq &qry, const Scoring &sc,
                       u32 band)
{
    return gotohBandedExtendScoreImpl(ref, qry, sc, band);
}

BandedExtendScore
gotohBandedExtendScore(const PackedSeq &ref, const Seq &qry,
                       const Scoring &sc, u32 band)
{
    return gotohBandedExtendScoreImpl(ref, qry, sc, band);
}

} // namespace genax
