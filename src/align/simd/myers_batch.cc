#include "align/simd/myers_batch.hh"

#include "align/myers.hh"
#include "align/simd/dispatch.hh"
#include "align/simd/tiers.hh"

namespace genax::simd {

std::vector<u64>
myersEditDistanceBatch(const std::vector<MyersJob> &jobs)
{
    std::vector<u64> out(jobs.size(), 0);

    // Degenerate jobs have closed-form answers; filtering them here
    // keeps the vector kernel free of per-lane emptiness masks.
    std::vector<u32> pending;
    pending.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const size_t m = jobs[i].pattern->size();
        const size_t n = jobs[i].text->size();
        if (m == 0)
            out[i] = n;
        else if (n == 0)
            out[i] = m;
        else
            pending.push_back(static_cast<u32>(i));
    }
    if (pending.empty())
        return out;

#if defined(GENAX_SIMD_AVX2)
    // Only AVX2 has the 64-bit lane compares the batched kernel
    // needs; SSE4.1 falls back to the scalar loop.
    if (activeKernelTier() == KernelTier::Avx2) {
        detail::myersBatchAvx2(jobs.data(), pending.data(),
                               pending.size(), out.data());
        return out;
    }
#endif
    for (u32 i : pending)
        out[i] = myersEditDistance(*jobs[i].pattern, *jobs[i].text);
    return out;
}

} // namespace genax::simd
