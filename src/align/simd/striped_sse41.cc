// Striped (Farrar) local Smith-Waterman-Gotoh, 128-bit kernels.
// Compiled with -msse4.1. Both SIMD dispatch tiers use this file:
// the striped recurrence needs a one-lane byte shift per row, which
// is a single instruction at 128 bits but a cross-lane shuffle at
// 256, so a 16-lane 8-bit pass is already the sweet spot.
//
// Ladder: 8-bit unsigned saturating pass; if the observed maximum is
// close enough to 255 that an add may have saturated, a 16-bit pass;
// if that may have saturated too, -1 (caller re-runs scalar). A pass
// that reports a score is exact: unsigned saturation clamps only at
// zero, which coincides with the local-alignment floor, and any
// upward clamp would push the reported maximum over the re-run
// threshold.
//
// The lazy-F loop corrects cross-lane query-gap propagation after
// each row. Gap-then-gap corner paths that would need the stored
// ref-gap values re-corrected always have an equal-scoring
// commuted twin (gap order swapped) that the next row computes, so
// the maximum — all this kernel reports — is unaffected.

#include "align/simd/tiers.hh"

#if defined(GENAX_SIMD_SSE41)

#include <smmintrin.h>

#include <algorithm>
#include <vector>

namespace genax::simd::detail {

namespace {

__m128i
loadv(const void *p)
{
    return _mm_loadu_si128(static_cast<const __m128i *>(p));
}

void
storev(void *p, __m128i v)
{
    _mm_storeu_si128(static_cast<__m128i *>(p), v);
}

/** 8-bit pass: score, or -1 when the range gate fails or the score
 *  came close enough to 255 that saturation was possible. */
i32
stripedPassU8(const Seq &ref, const Seq &qry, const Scoring &sc)
{
    const u32 bias = static_cast<u32>(sc.mismatch);
    const u32 match = static_cast<u32>(sc.match);
    const u32 goe = static_cast<u32>(sc.gapOpen + sc.gapExtend);
    if (bias + match > 255 || goe > 255 ||
        static_cast<u32>(sc.gapExtend) > 255)
        return -1;

    const size_t m = qry.size(), n = ref.size();
    const size_t p = (m + 15) / 16;

    // Striped query profile: lane s, stripe t holds query index
    // j = s*p + t. Padding columns score 0 (a full-bias penalty), so
    // they can never exceed the true maximum.
    std::vector<u8> prof(4 * p * 16, 0);
    for (u32 c = 0; c < 4; ++c) {
        for (size_t t = 0; t < p; ++t) {
            for (size_t s = 0; s < 16; ++s) {
                const size_t j = s * p + t;
                if (j < m)
                    prof[(c * p + t) * 16 + s] = static_cast<u8>(
                        static_cast<i32>(bias) +
                        sc.sub(static_cast<Base>(c), qry[j]));
            }
        }
    }

    std::vector<u8> hStore(p * 16, 0), hLoad(p * 16, 0), eBuf(p * 16, 0);
    const __m128i vZero = _mm_setzero_si128();
    const __m128i vBias = _mm_set1_epi8(static_cast<char>(bias));
    const __m128i vGapO = _mm_set1_epi8(static_cast<char>(goe));
    const __m128i vGapE =
        _mm_set1_epi8(static_cast<char>(sc.gapExtend));
    __m128i vMax = vZero;

    for (size_t i = 0; i < n; ++i) {
        const u8 *row = &prof[static_cast<size_t>(ref[i] & 3) * p * 16];
        __m128i vF = vZero;
        __m128i vH = _mm_slli_si128(loadv(&hStore[(p - 1) * 16]), 1);
        std::swap(hStore, hLoad);

        for (size_t t = 0; t < p; ++t) {
            vH = _mm_subs_epu8(_mm_adds_epu8(vH, loadv(row + t * 16)),
                               vBias);
            __m128i e = loadv(&eBuf[t * 16]);
            vH = _mm_max_epu8(vH, e);
            vH = _mm_max_epu8(vH, vF);
            vMax = _mm_max_epu8(vMax, vH);
            storev(&hStore[t * 16], vH);

            const __m128i vHgap = _mm_subs_epu8(vH, vGapO);
            e = _mm_max_epu8(_mm_subs_epu8(e, vGapE), vHgap);
            storev(&eBuf[t * 16], e);
            vF = _mm_max_epu8(_mm_subs_epu8(vF, vGapE), vHgap);
            vH = loadv(&hLoad[t * 16]);
        }

        // Lazy F: push the wrapped query-gap value through the
        // stripes until it cannot improve any cell.
        vF = _mm_slli_si128(vF, 1);
        for (int k = 0; k < 16; ++k) {
            for (size_t t = 0; t < p; ++t) {
                const __m128i vH2 =
                    _mm_max_epu8(loadv(&hStore[t * 16]), vF);
                storev(&hStore[t * 16], vH2);
                const __m128i vHgap = _mm_subs_epu8(vH2, vGapO);
                vF = _mm_subs_epu8(vF, vGapE);
                const __m128i gt = _mm_subs_epu8(vF, vHgap);
                if (_mm_movemask_epi8(_mm_cmpeq_epi8(gt, vZero)) ==
                    0xFFFF)
                    goto row_done;
            }
            vF = _mm_slli_si128(vF, 1);
        }
    row_done:;
    }

    u8 lanes[16];
    storev(lanes, vMax);
    const u32 best = *std::max_element(lanes, lanes + 16);
    if (best + bias + match >= 255)
        return -1; // an adds_epu8 may have clamped somewhere
    return static_cast<i32>(best);
}

/** 16-bit pass: same structure, 8 lanes; -1 on possible overflow. */
i32
stripedPassU16(const Seq &ref, const Seq &qry, const Scoring &sc)
{
    const u32 bias = static_cast<u32>(sc.mismatch);
    const u32 match = static_cast<u32>(sc.match);
    const u32 goe = static_cast<u32>(sc.gapOpen + sc.gapExtend);
    if (bias + match > 65535 || goe > 65535 ||
        static_cast<u32>(sc.gapExtend) > 65535)
        return -1;

    const size_t m = qry.size(), n = ref.size();
    const size_t p = (m + 7) / 8;

    std::vector<u16> prof(4 * p * 8, 0);
    for (u32 c = 0; c < 4; ++c) {
        for (size_t t = 0; t < p; ++t) {
            for (size_t s = 0; s < 8; ++s) {
                const size_t j = s * p + t;
                if (j < m)
                    prof[(c * p + t) * 8 + s] = static_cast<u16>(
                        static_cast<i32>(bias) +
                        sc.sub(static_cast<Base>(c), qry[j]));
            }
        }
    }

    std::vector<u16> hStore(p * 8, 0), hLoad(p * 8, 0), eBuf(p * 8, 0);
    const __m128i vZero = _mm_setzero_si128();
    const __m128i vBias = _mm_set1_epi16(static_cast<short>(bias));
    const __m128i vGapO = _mm_set1_epi16(static_cast<short>(goe));
    const __m128i vGapE =
        _mm_set1_epi16(static_cast<short>(sc.gapExtend));
    __m128i vMax = vZero;

    for (size_t i = 0; i < n; ++i) {
        const u16 *row = &prof[static_cast<size_t>(ref[i] & 3) * p * 8];
        __m128i vF = vZero;
        __m128i vH = _mm_slli_si128(loadv(&hStore[(p - 1) * 8]), 2);
        std::swap(hStore, hLoad);

        for (size_t t = 0; t < p; ++t) {
            vH = _mm_subs_epu16(_mm_adds_epu16(vH, loadv(row + t * 8)),
                                vBias);
            __m128i e = loadv(&eBuf[t * 8]);
            vH = _mm_max_epu16(vH, e);
            vH = _mm_max_epu16(vH, vF);
            vMax = _mm_max_epu16(vMax, vH);
            storev(&hStore[t * 8], vH);

            const __m128i vHgap = _mm_subs_epu16(vH, vGapO);
            e = _mm_max_epu16(_mm_subs_epu16(e, vGapE), vHgap);
            storev(&eBuf[t * 8], e);
            vF = _mm_max_epu16(_mm_subs_epu16(vF, vGapE), vHgap);
            vH = loadv(&hLoad[t * 8]);
        }

        vF = _mm_slli_si128(vF, 2);
        for (int k = 0; k < 8; ++k) {
            for (size_t t = 0; t < p; ++t) {
                const __m128i vH2 =
                    _mm_max_epu16(loadv(&hStore[t * 8]), vF);
                storev(&hStore[t * 8], vH2);
                const __m128i vHgap = _mm_subs_epu16(vH2, vGapO);
                vF = _mm_subs_epu16(vF, vGapE);
                const __m128i gt = _mm_subs_epu16(vF, vHgap);
                if (_mm_movemask_epi8(_mm_cmpeq_epi16(gt, vZero)) ==
                    0xFFFF)
                    goto row_done;
            }
            vF = _mm_slli_si128(vF, 2);
        }
    row_done:;
    }

    u16 lanes[8];
    storev(lanes, vMax);
    const u32 best = *std::max_element(lanes, lanes + 8);
    if (best + bias + match >= 65535)
        return -1;
    return static_cast<i32>(best);
}

} // namespace

i32
stripedLocalScoreSse41(const Seq &ref, const Seq &qry, const Scoring &sc)
{
    if (sc.match < 0 || sc.mismatch < 0 || sc.gapOpen < 0 ||
        sc.gapExtend < 0)
        return -1; // exotic scoring: scalar only
    const i32 s8 = stripedPassU8(ref, qry, sc);
    if (s8 >= 0)
        return s8;
    return stripedPassU16(ref, qry, sc);
}

} // namespace genax::simd::detail

#endif // GENAX_SIMD_SSE41
