#include "align/simd/striped.hh"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "align/simd/dispatch.hh"
#include "align/simd/tiers.hh"

namespace genax::simd {

i32
localScoreScalar(const Seq &ref, const Seq &qry, const Scoring &sc)
{
    const size_t n = ref.size(), m = qry.size();
    if (n == 0 || m == 0)
        return 0;

    constexpr i32 kNegInf = INT32_MIN / 4;
    const i32 goe = sc.gapOpen + sc.gapExtend;

    // h[j] = H[i-1][j] entering row i; f[j] = F[i-1][j].
    std::vector<i32> h(m + 1, 0);
    std::vector<i32> f(m + 1, kNegInf);
    i32 best = 0;
    for (size_t i = 1; i <= n; ++i) {
        i32 diag = h[0]; // H[i-1][0] == 0
        i32 e = kNegInf;
        for (size_t j = 1; j <= m; ++j) {
            const i32 eOpen = h[j - 1] - goe; // h[j-1] is H[i][j-1]
            e = std::max(eOpen, e == kNegInf ? kNegInf : e - sc.gapExtend);
            const i32 fOpen = h[j] - goe;
            f[j] = std::max(fOpen,
                            f[j] == kNegInf ? kNegInf
                                            : f[j] - sc.gapExtend);
            i32 cell = std::max({diag + sc.sub(ref[i - 1], qry[j - 1]), e,
                                 f[j]});
            if (cell <= 0)
                cell = 0;
            diag = h[j];
            h[j] = cell;
            best = std::max(best, cell);
        }
    }
    return best;
}

i32
stripedLocalScore(const Seq &ref, const Seq &qry, const Scoring &sc)
{
    if (ref.empty() || qry.empty())
        return 0;
#if defined(GENAX_SIMD_SSE41)
    // Both SIMD tiers share the 128-bit striped kernel: the striped
    // lane shift is a 128-bit byte shift, which AVX2 cannot widen
    // across its lane boundary cheaply (see DESIGN.md).
    if (activeKernelTier() != KernelTier::Scalar &&
        kernelTierSupported(KernelTier::Sse41)) {
        const i32 s = detail::stripedLocalScoreSse41(ref, qry, sc);
        if (s >= 0)
            return s; // < 0 means 16-bit overflow: fall through
    }
#endif
    return localScoreScalar(ref, qry, sc);
}

} // namespace genax::simd
