/**
 * @file
 * The shared inter-sequence banded Extend kernel body, templated over
 * an ISA traits type (Sse41/Avx2). Included only by the tier
 * translation units, which are compiled with the matching -m flags —
 * never by generic code.
 *
 * Each group of T::kLanes jobs runs the banded Gotoh Extend
 * recurrence in the 16-bit lanes of one vector register: row i,
 * band column `col` (query column j = i - band + col) is computed
 * for all lanes at once, exactly as gotohBandedExtendScoreImpl does
 * per job. Bit-identity with the scalar kernel holds because:
 *
 *  - the eligibility gate (laneEligible in batch_score.cc) bounds
 *    every genuine cell value to [-12000, +12000] and the lane
 *    dimensions so that 16-bit saturating arithmetic is exact on
 *    genuine values;
 *  - cells the scalar kernel leaves "unset" (kNegInf) hold a
 *    sentinel-descended value here that can climb by at most +match
 *    per row, which the gate keeps strictly below every genuine
 *    value — so the lane-wise max always prefers the genuine path
 *    and the sentinel never reaches the argmax (best starts at 0);
 *  - lanes shorter than the group maximum are masked: query columns
 *    past a lane's m are forced back to the sentinel each row (they
 *    would otherwise leak into valid cells through the F recurrence),
 *    and rows past a lane's n are excluded from the argmax (they
 *    only feed further-down rows, never back);
 *  - the argmax replicates BestCell::consider — a strict total
 *    preference order (score, then smaller i+j, then smaller i) —
 *    with masked per-cell updates, so tie-breaks match the scalar
 *    oracle exactly.
 *
 * Boundary cells (row 0 and column 0) score gapCost(k) <= 0 and lose
 * every tie against the initial best 0 @ (0,0) on the i+j key, so
 * they are stored but never offered to the argmax — same outcome as
 * the scalar consider() calls on them.
 */

#ifndef GENAX_ALIGN_SIMD_BANDED_KERNEL_HH
#define GENAX_ALIGN_SIMD_BANDED_KERNEL_HH

#include <algorithm>
#include <vector>

#include "align/simd/batch_score.hh"

namespace genax::simd::detail {

/** Lane sentinel standing in for the scalar kernel's kNegInf. */
inline constexpr i16 kLaneNegInf = -30000;

template <typename T>
void
scoreExtendBatchImpl(const ExtendJob *jobs, const u32 *idx, size_t count,
                     const Scoring &sc, u32 band, BandedExtendScore *out)
{
    using V = typename T::V;
    constexpr int L = T::kLanes;
    const i64 w = band;
    const i64 width = 2 * w + 1;

    // Scratch reused across groups.
    std::vector<i16> refT, qryT;
    std::vector<i16> hPrev, hCur, fPrev, fCur;

    for (size_t g0 = 0; g0 < count; g0 += L) {
        const int gl = static_cast<int>(
            std::min<size_t>(L, count - g0));

        // Lane dimensions. Rows past m + w hold no band cells, so the
        // per-lane row count is capped there (the scalar kernel just
        // iterates empty rows).
        i64 nl[L], ml[L];
        i64 maxN = 0, maxM = 0;
        for (int l = 0; l < L; ++l) {
            if (l < gl) {
                const ExtendJob &jb = jobs[idx[g0 + l]];
                ml[l] = static_cast<i64>(jb.qry->size());
                nl[l] = std::min<i64>(
                    static_cast<i64>(jb.ref->size()), ml[l] + w);
            } else {
                nl[l] = 0; // padding lane: best stays 0 @ (0,0)
                ml[l] = 0;
            }
            maxN = std::max(maxN, nl[l]);
            maxM = std::max(maxM, ml[l]);
        }

        // Transpose the sequences into lane-major i16 rows. Padding
        // bases are 0: harmless, since every cell they could produce
        // is masked (j > m) or argmax-excluded (i > n).
        refT.assign(static_cast<size_t>(maxN) * L, 0);
        qryT.assign(static_cast<size_t>(maxM) * L, 0);
        for (int l = 0; l < gl; ++l) {
            const ExtendJob &jb = jobs[idx[g0 + l]];
            for (i64 i = 0; i < nl[l]; ++i)
                refT[static_cast<size_t>(i) * L + l] =
                    static_cast<i16>(jb.ref->at(static_cast<size_t>(i)));
            for (i64 j = 0; j < ml[l]; ++j)
                qryT[static_cast<size_t>(j) * L + l] =
                    static_cast<i16>((*jb.qry)[static_cast<size_t>(j)]);
        }

        hPrev.assign(static_cast<size_t>(width) * L, kLaneNegInf);
        hCur.assign(static_cast<size_t>(width) * L, kLaneNegInf);
        fPrev.assign(static_cast<size_t>(width) * L, kLaneNegInf);
        fCur.assign(static_cast<size_t>(width) * L, kLaneNegInf);
        auto rowPtr = [L](std::vector<i16> &v, i64 col) {
            return &v[static_cast<size_t>(col) * L];
        };

        const V negV = T::set1(kLaneNegInf);
        const V onesV = T::cmpEq(negV, negV);
        const V matchV = T::set1(static_cast<i16>(sc.match));
        const V mismV = T::set1(static_cast<i16>(-sc.mismatch));
        const V gogeV =
            T::set1(static_cast<i16>(sc.gapOpen + sc.gapExtend));
        const V geV = T::set1(static_cast<i16>(sc.gapExtend));

        i16 laneTmp[L];
        for (int l = 0; l < L; ++l)
            laneTmp[l] = static_cast<i16>(nl[l]);
        const V nV = T::loadu(laneTmp);
        for (int l = 0; l < L; ++l)
            laneTmp[l] = static_cast<i16>(ml[l]);
        const V mV = T::loadu(laneTmp);

        // Row 0: h(0, j) = gapCost(j), 0 at the origin; columns past
        // a lane's query end go straight to the sentinel.
        for (i64 j = 0; j <= std::min(w, maxM); ++j) {
            const i32 base =
                j == 0 ? 0
                       : -(sc.gapOpen +
                           sc.gapExtend * static_cast<i32>(j));
            V v = T::set1(static_cast<i16>(base));
            v = T::blend(v, negV,
                         T::cmpGt(T::set1(static_cast<i16>(j)), mV));
            T::storeu(rowPtr(hPrev, j + w), v);
        }

        // Argmax state: BestCell semantics. best starts at the
        // origin cell 0 @ (0,0), so bSum = bI = 0.
        V best = T::set1(0);
        V bSum = T::set1(0);
        V bI = T::set1(0);
        V bJ = T::set1(0);

        for (i64 i = 1; i <= maxN; ++i) {
            const i64 colLo = i >= w ? 0 : w - i;
            const i64 colHi = std::min<i64>(2 * w, w + maxM - i);
            // Clear exactly the columns the next row may read
            // (its own range plus one on each side).
            const i64 clearLo = std::max<i64>(0, colLo - 1);
            const i64 clearHi = std::min<i64>(width - 1, colHi + 1);
            std::fill(rowPtr(hCur, clearLo),
                      rowPtr(hCur, clearHi) + L, kLaneNegInf);
            std::fill(rowPtr(fCur, clearLo),
                      rowPtr(fCur, clearHi) + L, kLaneNegInf);

            const V iv = T::set1(static_cast<i16>(i));
            const V iGtN = T::cmpGt(iv, nV);
            const V refRow =
                T::loadu(&refT[static_cast<size_t>(i - 1) * L]);
            V e = negV;
            for (i64 col = colLo; col <= colHi; ++col) {
                const i64 j = i - w + col;
                if (j == 0) {
                    // Column-0 boundary: gapCost(i), never a best
                    // candidate. E is not touched (scalar `continue`).
                    const i32 base =
                        -(sc.gapOpen +
                          sc.gapExtend * static_cast<i32>(i));
                    T::storeu(rowPtr(hCur, col),
                              T::set1(static_cast<i16>(base)));
                    continue;
                }

                if (col == 0) {
                    e = negV; // no in-band left neighbour
                } else {
                    const V eOpen =
                        T::subSat(T::loadu(rowPtr(hCur, col - 1)),
                                  gogeV);
                    e = T::maxS(eOpen, T::subSat(e, geV));
                }

                V f = negV;
                if (col + 1 < width) {
                    const V fOpen =
                        T::subSat(T::loadu(rowPtr(hPrev, col + 1)),
                                  gogeV);
                    const V fExt =
                        T::subSat(T::loadu(rowPtr(fPrev, col + 1)),
                                  geV);
                    f = T::maxS(fOpen, fExt);
                }
                T::storeu(rowPtr(fCur, col), f);

                const V qv =
                    T::loadu(&qryT[static_cast<size_t>(j - 1) * L]);
                const V subv =
                    T::blend(mismV, matchV, T::cmpEq(refRow, qv));
                const V diag =
                    T::addSat(T::loadu(rowPtr(hPrev, col)), subv);

                V h = T::maxS(diag, T::maxS(e, f));
                const V jv = T::set1(static_cast<i16>(j));
                const V jGtM = T::cmpGt(jv, mV);
                // Padded query columns revert to the sentinel so they
                // cannot leak into valid cells via F in later rows.
                h = T::blend(h, negV, jGtM);
                T::storeu(rowPtr(hCur, col), h);

                // Masked BestCell::consider: strictly better score,
                // or equal score with (smaller i+j, then smaller i).
                const V valid =
                    T::andNot(iGtN, T::andNot(jGtM, onesV));
                const V sumv = T::set1(static_cast<i16>(i + j));
                const V tie = T::and_(
                    T::cmpEq(h, best),
                    T::or_(T::cmpGt(bSum, sumv),
                           T::and_(T::cmpEq(bSum, sumv),
                                   T::cmpGt(bI, iv))));
                const V upd =
                    T::and_(T::or_(T::cmpGt(h, best), tie), valid);
                best = T::blend(best, h, upd);
                bSum = T::blend(bSum, sumv, upd);
                bI = T::blend(bI, iv, upd);
                bJ = T::blend(bJ, jv, upd);
            }
            std::swap(hPrev, hCur);
            std::swap(fPrev, fCur);
        }

        i16 oBest[L], oI[L], oJ[L];
        T::storeu(oBest, best);
        T::storeu(oI, bI);
        T::storeu(oJ, bJ);
        for (int l = 0; l < gl; ++l) {
            out[idx[g0 + l]] = {static_cast<i32>(oBest[l]),
                                static_cast<u64>(oI[l]),
                                static_cast<u64>(oJ[l])};
        }
    }
}

} // namespace genax::simd::detail

#endif // GENAX_ALIGN_SIMD_BANDED_KERNEL_HH
