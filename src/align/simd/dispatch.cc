#include "align/simd/dispatch.hh"

#include <atomic>
#include <cstdlib>
#include <string>

namespace genax::simd {

namespace {

/** Forced tier: -1 = auto, else a KernelTier value. */
std::atomic<int> g_forced{-1};

bool
scalarForcedByEnv()
{
    // genax-lint: allow(wall-clock): documented GENAX_FORCE_SCALAR kernel pin, read once before dispatch; tiers are byte-identical
    const char *v = std::getenv("GENAX_FORCE_SCALAR");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

KernelTier
detectCpuTier()
{
#if defined(__x86_64__) || defined(__i386__)
#if defined(GENAX_SIMD_AVX2)
    if (__builtin_cpu_supports("avx2"))
        return KernelTier::Avx2;
#endif
#if defined(GENAX_SIMD_SSE41)
    if (__builtin_cpu_supports("sse4.1"))
        return KernelTier::Sse41;
#endif
#endif
    return KernelTier::Scalar;
}

} // namespace

const char *
kernelTierName(KernelTier tier)
{
    switch (tier) {
      case KernelTier::Scalar:
        return "scalar";
      case KernelTier::Sse41:
        return "sse41";
      case KernelTier::Avx2:
        return "avx2";
    }
    return "scalar";
}

bool
kernelTierCompiled(KernelTier tier)
{
    switch (tier) {
      case KernelTier::Scalar:
        return true;
      case KernelTier::Sse41:
#if defined(GENAX_SIMD_SSE41)
        return true;
#else
        return false;
#endif
      case KernelTier::Avx2:
#if defined(GENAX_SIMD_AVX2)
        return true;
#else
        return false;
#endif
    }
    return false;
}

bool
kernelTierSupported(KernelTier tier)
{
    if (!kernelTierCompiled(tier))
        return false;
#if defined(__x86_64__) || defined(__i386__)
    switch (tier) {
      case KernelTier::Scalar:
        return true;
      case KernelTier::Sse41:
        return __builtin_cpu_supports("sse4.1") != 0;
      case KernelTier::Avx2:
        return __builtin_cpu_supports("avx2") != 0;
    }
    return false;
#else
    return tier == KernelTier::Scalar;
#endif
}

KernelTier
detectKernelTier()
{
    // CPUID is process-invariant, so cache it; the env override is
    // re-read on every call (cheap, and tests flip it with setenv).
    static const KernelTier cpu_tier = detectCpuTier();
    if (scalarForcedByEnv())
        return KernelTier::Scalar;
    return cpu_tier;
}

KernelTier
activeKernelTier()
{
    const int forced = g_forced.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<KernelTier>(forced);
    return detectKernelTier();
}

Status
setKernelTier(KernelTier tier)
{
    if (!kernelTierSupported(tier)) {
        return invalidInputError(
            std::string("kernel tier not supported on this host: ") +
            kernelTierName(tier));
    }
    g_forced.store(static_cast<int>(tier), std::memory_order_relaxed);
    return okStatus();
}

Status
setKernelTierByName(std::string_view name)
{
    if (name == "auto") {
        clearKernelTierOverride();
        return okStatus();
    }
    for (const KernelTier tier :
         {KernelTier::Scalar, KernelTier::Sse41, KernelTier::Avx2}) {
        if (name == kernelTierName(tier))
            return setKernelTier(tier);
    }
    return invalidInputError("unknown kernel tier: \"" +
                             std::string(name) +
                             "\" (want auto|scalar|sse41|avx2)");
}

void
clearKernelTierOverride()
{
    g_forced.store(-1, std::memory_order_relaxed);
}

} // namespace genax::simd
