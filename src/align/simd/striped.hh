/**
 * @file
 * Striped-profile (Farrar) local Smith-Waterman-Gotoh scoring.
 *
 * The SIMD pass runs the classic SSW ladder: an 8-bit unsigned
 * saturating sweep first (16 lanes per 128-bit vector), a 16-bit
 * sweep when the 8-bit score range may have saturated, and the scalar
 * kernel when even 16 bits cannot hold the score — the overflow
 * re-run contract. Every rung produces a score bit-identical to
 * gotohAlign(..., AlignMode::Local).score; the ladder only trades
 * speed. Traceback (when a caller needs it) is a separate scalar
 * gotohAlign run on the winner — scores here are score-only.
 */

#ifndef GENAX_ALIGN_SIMD_STRIPED_HH
#define GENAX_ALIGN_SIMD_STRIPED_HH

#include "align/scoring.hh"
#include "common/dna.hh"
#include "common/types.hh"

namespace genax::simd {

/**
 * Best local alignment score of qry against ref on the active kernel
 * tier. Equals gotohAlign(ref, qry, sc, AlignMode::Local).score for
 * every input and every tier.
 */
i32 stripedLocalScore(const Seq &ref, const Seq &qry, const Scoring &sc);

/** Scalar score-only local Gotoh — the reference oracle and the
 *  final rung of the overflow ladder. */
i32 localScoreScalar(const Seq &ref, const Seq &qry, const Scoring &sc);

} // namespace genax::simd

#endif // GENAX_ALIGN_SIMD_STRIPED_HH
