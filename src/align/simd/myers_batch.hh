/**
 * @file
 * Batched multi-block Myers bit-parallel edit distance.
 *
 * Four independent (pattern, packed-text window) jobs run in the
 * 64-bit lanes of one AVX2 vector; each lane executes exactly the
 * block recurrence of align/myers.cc (the carry-propagating add in
 * the XH computation is per-lane exact with _mm256_add_epi64), so the
 * distances are bit-identical to myersEditDistance at every tier.
 * Tiers without 64-bit lane compares (scalar, SSE4.1) loop the scalar
 * kernel job by job.
 */

#ifndef GENAX_ALIGN_SIMD_MYERS_BATCH_HH
#define GENAX_ALIGN_SIMD_MYERS_BATCH_HH

#include <vector>

#include "common/dna.hh"
#include "common/types.hh"

namespace genax::simd {

/**
 * One edit-distance job: global Levenshtein distance of *pattern
 * against the packed window *text. Pointed-to sequences must outlive
 * the batch call.
 */
struct MyersJob
{
    const Seq *pattern = nullptr;
    const PackedSeq *text = nullptr;
};

/**
 * Edit distance for every job, on the active kernel tier.
 * Postcondition: out[i] == myersEditDistance(*jobs[i].pattern,
 * *jobs[i].text) for every i, at every tier.
 */
std::vector<u64> myersEditDistanceBatch(const std::vector<MyersJob> &jobs);

} // namespace genax::simd

#endif // GENAX_ALIGN_SIMD_MYERS_BATCH_HH
