// SSE4.1 instantiation of the inter-sequence banded Extend kernel.
// Compiled with -msse4.1 (and only then); generic code reaches it
// through the declaration in tiers.hh.

#include "align/simd/tiers.hh"

#if defined(GENAX_SIMD_SSE41)

#include <smmintrin.h>

#include "align/simd/banded_kernel.hh"

namespace genax::simd::detail {

namespace {

struct TraitsSse41
{
    using V = __m128i;
    static constexpr int kLanes = 8;

    static V set1(i16 x) { return _mm_set1_epi16(x); }
    static V
    loadu(const i16 *p)
    {
        return _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    }
    static void
    storeu(i16 *p, V v)
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
    }
    static V addSat(V a, V b) { return _mm_adds_epi16(a, b); }
    static V subSat(V a, V b) { return _mm_subs_epi16(a, b); }
    static V maxS(V a, V b) { return _mm_max_epi16(a, b); }
    static V cmpEq(V a, V b) { return _mm_cmpeq_epi16(a, b); }
    static V cmpGt(V a, V b) { return _mm_cmpgt_epi16(a, b); }
    static V and_(V a, V b) { return _mm_and_si128(a, b); }
    static V or_(V a, V b) { return _mm_or_si128(a, b); }
    /** ~a & b */
    static V andNot(V a, V b) { return _mm_andnot_si128(a, b); }
    /** mask ? b : a (mask lanes are all-ones or all-zeros, so the
     *  byte-granular blend is lane-exact). */
    static V blend(V a, V b, V mask) { return _mm_blendv_epi8(a, b, mask); }
};

} // namespace

void
scoreExtendBatchSse41(const ExtendJob *jobs, const u32 *idx, size_t count,
                      const Scoring &sc, u32 band, BandedExtendScore *out)
{
    scoreExtendBatchImpl<TraitsSse41>(jobs, idx, count, sc, band, out);
}

} // namespace genax::simd::detail

#endif // GENAX_SIMD_SSE41
