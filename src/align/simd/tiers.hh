/**
 * @file
 * Internal per-tier entry points of the SIMD kernel subsystem. Only
 * the dispatch glue (batch_score.cc, striped.cc, myers_batch.cc)
 * includes this; each declaration is compiled into its own
 * translation unit with the matching -m flags and exists only when
 * the corresponding GENAX_SIMD_* macro is defined for the target.
 */

#ifndef GENAX_ALIGN_SIMD_TIERS_HH
#define GENAX_ALIGN_SIMD_TIERS_HH

#include <vector>

#include "align/simd/batch_score.hh"
#include "align/simd/myers_batch.hh"

namespace genax::simd::detail {

#if defined(GENAX_SIMD_SSE41)
/** SSE4.1 inter-sequence banded Extend scoring over eligible jobs
 *  (idx lists indices into jobs/out). */
void scoreExtendBatchSse41(const ExtendJob *jobs, const u32 *idx,
                           size_t count, const Scoring &sc, u32 band,
                           BandedExtendScore *out);

/**
 * 128-bit striped (Farrar) local Smith-Waterman score: 8-bit
 * saturating first pass, 16-bit re-run on overflow. Returns -1 when
 * even 16 bits cannot hold the score (caller falls back to scalar).
 * Used by both SIMD tiers — the striped byte shifts do not cross
 * 128-bit AVX2 lane boundaries cheaply, so there is no 256-bit
 * variant (see DESIGN.md "Kernel dispatch").
 */
i32 stripedLocalScoreSse41(const Seq &ref, const Seq &qry,
                           const Scoring &sc);
#endif

#if defined(GENAX_SIMD_AVX2)
/** AVX2 (16-lane) inter-sequence banded Extend scoring. */
void scoreExtendBatchAvx2(const ExtendJob *jobs, const u32 *idx,
                          size_t count, const Scoring &sc, u32 band,
                          BandedExtendScore *out);

/** AVX2 4-lane multi-block Myers edit distance over eligible jobs. */
void myersBatchAvx2(const MyersJob *jobs, const u32 *idx, size_t count,
                    u64 *out);
#endif

} // namespace genax::simd::detail

#endif // GENAX_ALIGN_SIMD_TIERS_HH
