// Batched multi-block Myers edit distance, four jobs in the 64-bit
// lanes of one AVX2 vector. Compiled with -mavx2 only.
//
// Each lane replicates align/myers.cc exactly: same block recurrence
// (the carry add in XH is _mm256_add_epi64, exact per lane), same
// pre-advance last-block score probe at the true pattern row, same
// horizontal-delta chaining. Lanes whose pattern needs fewer blocks
// than the group maximum run harmless padding blocks (empty match
// masks; the horizontal delta only flows upward and the score is
// probed only at the lane's own last block), and lanes whose text is
// shorter than the group maximum freeze their score once their text
// is consumed.

#include "align/simd/tiers.hh"

#if defined(GENAX_SIMD_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <vector>

namespace genax::simd::detail {

namespace {

__m256i
loadv(const u64 *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

void
storev(u64 *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

} // namespace

void
myersBatchAvx2(const MyersJob *jobs, const u32 *idx, size_t count,
               u64 *out)
{
    constexpr int L = 4;
    constexpr unsigned W = 64;

    std::vector<u64> peqT, lastMaskT, laneLastT, pvT, mvT, textT;

    for (size_t g0 = 0; g0 < count; g0 += L) {
        const int gl =
            static_cast<int>(std::min<size_t>(L, count - g0));

        size_t mArr[L] = {0}, nArr[L] = {0}, blocksArr[L] = {0};
        size_t B = 0, maxN = 0;
        for (int l = 0; l < gl; ++l) {
            const MyersJob &jb = jobs[idx[g0 + l]];
            mArr[l] = jb.pattern->size();
            nArr[l] = jb.text->size();
            blocksArr[l] = (mArr[l] + W - 1) / W;
            B = std::max(B, blocksArr[l]);
            maxN = std::max(maxN, nArr[l]);
        }

        // peqT[(b*4 + c)*L + l]: match mask of base c, block b, lane l.
        peqT.assign(B * 4 * L, 0);
        lastMaskT.assign(B * L, 0);
        laneLastT.assign(B * L, 0);
        for (int l = 0; l < gl; ++l) {
            const MyersJob &jb = jobs[idx[g0 + l]];
            for (size_t i = 0; i < mArr[l]; ++i) {
                const size_t b = i / W;
                const u32 c = (*jb.pattern)[i] & 3;
                peqT[(b * 4 + c) * L + static_cast<size_t>(l)] |=
                    u64{1} << (i % W);
            }
            const size_t lastB = blocksArr[l] - 1;
            lastMaskT[lastB * L + static_cast<size_t>(l)] =
                u64{1} << ((mArr[l] - 1) % W);
            laneLastT[lastB * L + static_cast<size_t>(l)] = ~u64{0};
        }

        pvT.assign(B * L, ~u64{0});
        mvT.assign(B * L, 0);

        textT.assign(std::max<size_t>(maxN, 1) * L, 0);
        for (int l = 0; l < gl; ++l) {
            const MyersJob &jb = jobs[idx[g0 + l]];
            for (size_t j = 0; j < nArr[l]; ++j)
                textT[j * L + static_cast<size_t>(l)] =
                    jb.text->at(j) & 3;
        }

        u64 laneTmp[L];
        for (int l = 0; l < L; ++l)
            laneTmp[l] = mArr[l]; // D[m][0] = m
        __m256i score = loadv(laneTmp);
        for (int l = 0; l < L; ++l)
            laneTmp[l] = nArr[l];
        const __m256i nV = loadv(laneTmp);

        const __m256i ones = _mm256_set1_epi64x(-1);
        const __m256i one = _mm256_set1_epi64x(1);

        for (size_t j = 0; j < maxN; ++j) {
            const __m256i cV = loadv(&textT[j * L]);
            // Lanes whose text is exhausted keep advancing on padding
            // characters, but their score is frozen by this mask.
            const __m256i active = _mm256_cmpgt_epi64(
                nV, _mm256_set1_epi64x(static_cast<long long>(j)));

            __m256i hinP = one;   // row 0 horizontal delta is +1
            __m256i hinM = _mm256_setzero_si256();

            for (size_t b = 0; b < B; ++b) {
                __m256i eq = _mm256_setzero_si256();
                for (u32 c = 0; c < 4; ++c) {
                    const __m256i sel = _mm256_cmpeq_epi64(
                        cV,
                        _mm256_set1_epi64x(static_cast<long long>(c)));
                    eq = _mm256_or_si256(
                        eq, _mm256_and_si256(
                                sel, loadv(&peqT[(b * 4 + c) * L])));
                }
                const __m256i eqp = _mm256_or_si256(eq, hinM);

                const __m256i pv = loadv(&pvT[b * L]);
                const __m256i mv = loadv(&mvT[b * L]);

                const __m256i xv = _mm256_or_si256(eqp, mv);
                const __m256i xh = _mm256_or_si256(
                    _mm256_xor_si256(
                        _mm256_add_epi64(_mm256_and_si256(eqp, pv), pv),
                        pv),
                    eqp);

                __m256i ph = _mm256_or_si256(
                    mv, _mm256_andnot_si256(_mm256_or_si256(xh, pv),
                                            ones));
                __m256i mh = _mm256_and_si256(pv, xh);

                // Last-block score probe at the lane's true pattern
                // row, before the shift (align/myers.cc does the same
                // with a scratch recompute).
                const __m256i lastM = loadv(&lastMaskT[b * L]);
                const __m256i upd = _mm256_and_si256(
                    loadv(&laneLastT[b * L]), active);
                const __m256i incr = _mm256_and_si256(
                    _mm256_cmpeq_epi64(_mm256_and_si256(ph, lastM),
                                       lastM),
                    upd);
                const __m256i decr = _mm256_and_si256(
                    _mm256_cmpeq_epi64(_mm256_and_si256(mh, lastM),
                                       lastM),
                    upd);
                score = _mm256_add_epi64(score,
                                         _mm256_and_si256(incr, one));
                score = _mm256_sub_epi64(score,
                                         _mm256_and_si256(decr, one));

                // Horizontal deltas out of the block (bit 63, before
                // the shift). ph and mh are disjoint, so at most one
                // fires per lane.
                const __m256i houtP = _mm256_srli_epi64(ph, 63);
                const __m256i houtM = _mm256_srli_epi64(mh, 63);

                ph = _mm256_or_si256(_mm256_slli_epi64(ph, 1), hinP);
                mh = _mm256_or_si256(_mm256_slli_epi64(mh, 1), hinM);

                storev(&pvT[b * L],
                       _mm256_or_si256(
                           mh, _mm256_andnot_si256(
                                   _mm256_or_si256(xv, ph), ones)));
                storev(&mvT[b * L], _mm256_and_si256(ph, xv));

                hinP = houtP;
                hinM = houtM;
            }
        }

        storev(laneTmp, score);
        for (int l = 0; l < gl; ++l)
            out[idx[g0 + l]] = laneTmp[l];
    }
}

} // namespace genax::simd::detail

#endif // GENAX_SIMD_AVX2
