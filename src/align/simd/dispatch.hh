/**
 * @file
 * One-time runtime CPU dispatch for the vectorized alignment kernels.
 *
 * Tier ladder: AVX2 > SSE4.1 > scalar. The best tier both compiled in
 * and supported by the running CPU is detected once; every batch
 * entry point (scoreCandidateBatch, stripedLocalScore,
 * myersEditDistanceBatch) routes through the active tier. All tiers
 * are bit-identical by contract — the scalar kernels are the
 * reference oracle — so tier selection is purely a speed choice and
 * never changes any pipeline output.
 *
 * Overrides, strongest first:
 *  - setKernelTier() / setKernelTierByName() — programmatic, backs
 *    the genax_align / bench_report `--kernel` flag;
 *  - GENAX_FORCE_SCALAR=1 in the environment — pins the scalar
 *    reference path (CI uses this to keep it exercised on
 *    SIMD-capable runners).
 */

#ifndef GENAX_ALIGN_SIMD_DISPATCH_HH
#define GENAX_ALIGN_SIMD_DISPATCH_HH

#include <string_view>

#include "common/status.hh"
#include "common/types.hh"

namespace genax::simd {

/** Kernel implementation tiers, weakest to strongest. */
enum class KernelTier : u8
{
    Scalar = 0,
    Sse41 = 1,
    Avx2 = 2,
};

/** Lower-case tier name ("scalar", "sse41", "avx2"). */
const char *kernelTierName(KernelTier tier);

/** True if the tier's kernels were compiled into this binary. */
bool kernelTierCompiled(KernelTier tier);

/** True if the running CPU can execute the tier's instructions
 *  (and the tier was compiled in). */
bool kernelTierSupported(KernelTier tier);

/**
 * Best supported tier, detected once per process from CPUID and
 * demoted to Scalar when GENAX_FORCE_SCALAR is set to anything but
 * "0" or empty.
 */
KernelTier detectKernelTier();

/**
 * The tier the batch kernels currently dispatch to: the forced tier
 * if one was set, else detectKernelTier().
 */
KernelTier activeKernelTier();

/**
 * Force a specific tier (must be supported on this host; forcing a
 * *lower* tier than detected is always legal). Pass std::nullopt-like
 * "auto" via setKernelTierByName to clear.
 */
Status setKernelTier(KernelTier tier);

/**
 * Parse and apply a `--kernel` value: "auto", "scalar", "sse41" or
 * "avx2". "auto" clears any forced tier. Unknown names and tiers the
 * host cannot run yield InvalidInput.
 */
Status setKernelTierByName(std::string_view name);

/** Clear any forced tier (back to auto detection). */
void clearKernelTierOverride();

} // namespace genax::simd

#endif // GENAX_ALIGN_SIMD_DISPATCH_HH
