/**
 * @file
 * Inter-sequence batched Extend scoring — the hot entry point of the
 * SIMD kernel subsystem.
 *
 * A batch of independent (reference window, query) extension jobs is
 * scored with the banded Gotoh Extend recurrence running one job per
 * 16-bit SIMD lane (SWIPE-style inter-sequence vectorization: 16
 * lanes under AVX2, 8 under SSE4.1). Every lane computes exactly the
 * scalar recurrence of gotohBandedExtendScore — same saturating-safe
 * value range (enforced by a per-job eligibility gate), same
 * deterministic argmax tie-break — so the returned triples are
 * bit-identical to the scalar oracle at every dispatch tier. Jobs
 * that fail the 16-bit range gate (very long or exotically scored)
 * are re-run on the scalar kernel, job by job: that is the overflow
 * re-run contract.
 *
 * Traceback is never vectorized. Callers score the whole candidate
 * list here, pick the winner, and re-run the scalar banded DP only on
 * the winner's prefix (see extendWithScoreHint in swbase/anchor.hh).
 */

#ifndef GENAX_ALIGN_SIMD_BATCH_SCORE_HH
#define GENAX_ALIGN_SIMD_BATCH_SCORE_HH

#include <vector>

#include "align/gotoh.hh"
#include "align/scoring.hh"
#include "common/dna.hh"
#include "common/types.hh"

namespace genax::simd {

/**
 * One extension-scoring job: an anchored Extend-mode banded
 * alignment of *qry against the packed reference window *ref. The
 * pointed-to sequences must outlive the scoreCandidateBatch call.
 */
struct ExtendJob
{
    const PackedSeq *ref = nullptr;
    const Seq *qry = nullptr;
};

/**
 * Score every job in the batch on the active kernel tier.
 *
 * Postcondition, enforced by the equivalence test suite:
 *   out[i] == gotohBandedExtendScore(*jobs[i].ref, *jobs[i].qry,
 *                                    sc, band)
 * for every i, at every dispatch tier.
 */
std::vector<BandedExtendScore> scoreCandidateBatch(
    const std::vector<ExtendJob> &jobs, const Scoring &sc, u32 band);

/**
 * Single-job scoring (the graceful-degradation fallback path of the
 * GenAx system). One job cannot fill SIMD lanes, so this is always
 * the scalar reference kernel.
 */
BandedExtendScore scoreExtendOne(const PackedSeq &ref, const Seq &qry,
                                 const Scoring &sc, u32 band);

} // namespace genax::simd

#endif // GENAX_ALIGN_SIMD_BATCH_SCORE_HH
