// AVX2 instantiation of the inter-sequence banded Extend kernel:
// 16 jobs per 256-bit vector. Compiled with -mavx2 only.

#include "align/simd/tiers.hh"

#if defined(GENAX_SIMD_AVX2)

#include <immintrin.h>

#include "align/simd/banded_kernel.hh"

namespace genax::simd::detail {

namespace {

struct TraitsAvx2
{
    using V = __m256i;
    static constexpr int kLanes = 16;

    static V set1(i16 x) { return _mm256_set1_epi16(x); }
    static V
    loadu(const i16 *p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
    }
    static void
    storeu(i16 *p, V v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }
    static V addSat(V a, V b) { return _mm256_adds_epi16(a, b); }
    static V subSat(V a, V b) { return _mm256_subs_epi16(a, b); }
    static V maxS(V a, V b) { return _mm256_max_epi16(a, b); }
    static V cmpEq(V a, V b) { return _mm256_cmpeq_epi16(a, b); }
    static V cmpGt(V a, V b) { return _mm256_cmpgt_epi16(a, b); }
    static V and_(V a, V b) { return _mm256_and_si256(a, b); }
    static V or_(V a, V b) { return _mm256_or_si256(a, b); }
    /** ~a & b */
    static V andNot(V a, V b) { return _mm256_andnot_si256(a, b); }
    /** mask ? b : a (lane masks are all-ones or all-zeros; the blend
     *  never crosses a 128-bit lane, so AVX2 blendv is lane-exact). */
    static V
    blend(V a, V b, V mask)
    {
        return _mm256_blendv_epi8(a, b, mask);
    }
};

} // namespace

void
scoreExtendBatchAvx2(const ExtendJob *jobs, const u32 *idx, size_t count,
                     const Scoring &sc, u32 band, BandedExtendScore *out)
{
    scoreExtendBatchImpl<TraitsAvx2>(jobs, idx, count, sc, band, out);
}

} // namespace genax::simd::detail

#endif // GENAX_SIMD_AVX2
