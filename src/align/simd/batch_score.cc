#include "align/simd/batch_score.hh"

#include <algorithm>
#include <vector>

#include "align/simd/dispatch.hh"
#include "align/simd/tiers.hh"

namespace genax::simd {

namespace {

/**
 * True if the job's banded Extend DP provably stays exact in 16-bit
 * saturating lanes (see banded_kernel.hh for the argument):
 *
 *  - every DP path from the origin takes at most n + m steps, each
 *    costing at most mismatch + gapOpen + gapExtend, so the product
 *    bound keeps genuine cell values >= -12000;
 *  - positive values are bounded by m * match <= 12000;
 *  - sentinel-descended "unreachable" values start at -30000 (or
 *    saturate at -32768) and climb by at most match per row, i.e. by
 *    at most m*match + band*match <= 16000 total, so they stay below
 *    -16768 and never outrank a genuine value;
 *  - row/column indices (and their sum) fit i16 via n + m + 2 <= 8000.
 *
 * Jobs that fail the gate are scored by the scalar oracle — the
 * overflow re-run contract.
 */
bool
laneEligible(const ExtendJob &jb, const Scoring &sc, u32 band)
{
    constexpr i64 kMaxParam = 4000;
    const i64 match = sc.match, mismatch = sc.mismatch;
    const i64 go = sc.gapOpen, ge = sc.gapExtend;
    if (match < 0 || match > kMaxParam || mismatch < 0 ||
        mismatch > kMaxParam || go < 0 || go > kMaxParam || ge < 0 ||
        ge > kMaxParam)
        return false;
    const i64 m = static_cast<i64>(jb.qry->size());
    const i64 n_eff = std::min<i64>(static_cast<i64>(jb.ref->size()),
                                    m + static_cast<i64>(band));
    return static_cast<i64>(band) * match <= 4000 &&
           n_eff + m + 2 <= 8000 && m * match <= 12000 &&
           (n_eff + m + 2) * (mismatch + go + ge) <= 12000;
}

} // namespace

std::vector<BandedExtendScore>
scoreCandidateBatch(const std::vector<ExtendJob> &jobs, const Scoring &sc,
                    u32 band)
{
    std::vector<BandedExtendScore> out(jobs.size());
    std::vector<bool> handled(jobs.size(), false);

    const KernelTier tier = activeKernelTier();
    if (tier != KernelTier::Scalar) {
        std::vector<u32> eligible;
        eligible.reserve(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (laneEligible(jobs[i], sc, band))
                eligible.push_back(static_cast<u32>(i));
        }
        // Occupancy heuristic: a vector group costs the same whether
        // its lanes are full or idle, so a batch filling less than
        // half the lanes runs faster on the scalar scorer. Oversized
        // batches keep only whole-enough groups vectorized; the tail
        // joins the scalar loop. Purely a speed choice — the scalar
        // scorer is bit-identical.
        const size_t lanes = tier == KernelTier::Avx2 ? 16 : 8;
        size_t take = eligible.size() - eligible.size() % lanes;
        if (eligible.size() % lanes >= lanes / 2)
            take = eligible.size();
        eligible.resize(take);
        if (!eligible.empty()) {
            bool ran = false;
#if defined(GENAX_SIMD_AVX2)
            if (tier == KernelTier::Avx2) {
                detail::scoreExtendBatchAvx2(jobs.data(), eligible.data(),
                                             eligible.size(), sc, band,
                                             out.data());
                ran = true;
            }
#endif
#if defined(GENAX_SIMD_SSE41)
            if (!ran && tier == KernelTier::Sse41) {
                detail::scoreExtendBatchSse41(jobs.data(), eligible.data(),
                                              eligible.size(), sc, band,
                                              out.data());
                ran = true;
            }
#endif
            if (ran) {
                for (u32 i : eligible)
                    handled[i] = true;
            }
        }
    }

    for (size_t i = 0; i < jobs.size(); ++i) {
        if (!handled[i])
            out[i] = gotohBandedExtendScore(*jobs[i].ref, *jobs[i].qry, sc,
                                            band);
    }
    return out;
}

BandedExtendScore
scoreExtendOne(const PackedSeq &ref, const Seq &qry, const Scoring &sc,
               u32 band)
{
    return gotohBandedExtendScore(ref, qry, sc, band);
}

} // namespace genax::simd
