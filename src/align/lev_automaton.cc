#include "align/lev_automaton.hh"

#include <bit>

#include "common/logging.hh"

namespace genax {

namespace {

/** dst = src << 1 across a word chain (dst may alias src). */
void
shiftLeftInto(const std::vector<u64> &src, std::vector<u64> &dst)
{
    u64 carry = 0;
    for (size_t w = 0; w < src.size(); ++w) {
        const u64 v = src[w];
        dst[w] = (v << 1) | carry;
        carry = v >> 63;
    }
}

} // namespace

LevenshteinAutomaton::LevenshteinAutomaton(const Seq &pattern, u32 k)
    : _pattern(pattern), _k(k),
      _words((pattern.size() + 1 + 63) / 64),
      _charMask(4, std::vector<u64>(_words, 0)),
      _active(k + 1, std::vector<u64>(_words, 0))
{
    for (size_t pos = 0; pos < _pattern.size(); ++pos)
        _charMask[_pattern[pos] & 3][pos / 64] |= u64{1} << (pos % 64);
    reset();
}

void
LevenshteinAutomaton::reset()
{
    for (auto &lvl : _active)
        std::fill(lvl.begin(), lvl.end(), 0);
    _active[0][0] = 1; // state (0, 0)
    epsilonClose(_active);
}

void
LevenshteinAutomaton::epsilonClose(
    std::vector<std::vector<u64>> &levels) const
{
    // Deletion: (pos, e) -> (pos+1, e+1) without consuming input.
    // One pass in increasing edit order reaches the full closure.
    std::vector<u64> shifted(_words);
    for (u32 e = 1; e <= _k; ++e) {
        shiftLeftInto(levels[e - 1], shifted);
        for (size_t w = 0; w < _words; ++w)
            levels[e][w] |= shifted[w];
    }
}

void
LevenshteinAutomaton::step(Base c)
{
    const auto &mask = _charMask[c & 3];
    std::vector<std::vector<u64>> next(_k + 1,
                                       std::vector<u64>(_words, 0));
    std::vector<u64> tmp(_words);

    for (u32 e = 0; e <= _k; ++e) {
        // Match: advance position at the same edit level.
        for (size_t w = 0; w < _words; ++w)
            tmp[w] = _active[e][w] & mask[w];
        shiftLeftInto(tmp, tmp);
        for (size_t w = 0; w < _words; ++w)
            next[e][w] |= tmp[w];

        if (e > 0) {
            // Substitution: advance position, one more edit.
            shiftLeftInto(_active[e - 1], tmp);
            for (size_t w = 0; w < _words; ++w) {
                next[e][w] |= tmp[w];
                // Insertion: same position, one more edit.
                next[e][w] |= _active[e - 1][w];
            }
        }
    }
    epsilonClose(next);

    // Mask out bits beyond position N.
    const size_t nbits = _pattern.size() + 1;
    const u64 last_mask = (nbits % 64 == 0) ? ~u64{0}
                                            : ((u64{1} << (nbits % 64)) - 1);
    for (u32 e = 0; e <= _k; ++e)
        next[e][_words - 1] &= last_mask;

    _active = std::move(next);
}

std::optional<u32>
LevenshteinAutomaton::acceptedEdits() const
{
    const size_t pos = _pattern.size();
    for (u32 e = 0; e <= _k; ++e) {
        if ((_active[e][pos / 64] >> (pos % 64)) & 1)
            return e;
    }
    return std::nullopt;
}

std::optional<u32>
LevenshteinAutomaton::distanceTo(const Seq &text)
{
    reset();
    for (Base c : text)
        step(c);
    return acceptedEdits();
}

u64
LevenshteinAutomaton::activeStates() const
{
    u64 n = 0;
    for (const auto &lvl : _active)
        for (u64 w : lvl)
            n += static_cast<u64>(std::popcount(w));
    return n;
}

} // namespace genax
