/**
 * @file
 * Classic string-dependent Levenshtein automaton (the paper's
 * Section II strawman).
 *
 * The automaton is built for one fixed pattern P and bound K; its
 * states are (pos, edits) with pos in [0, |P|] and edits in [0, K],
 * i.e. O(K * N) states. Consuming a text character applies the usual
 * NFA transitions (match, substitution, insertion) followed by the
 * epsilon-closure over deletions. The simulation is bit-parallel,
 * one word-chain per edit level.
 *
 * Its two deficiencies motivate Silla: the structure depends on the
 * pattern (rebuild/reprogram per read) and state count grows with
 * pattern length.
 */

#ifndef GENAX_ALIGN_LEV_AUTOMATON_HH
#define GENAX_ALIGN_LEV_AUTOMATON_HH

#include <optional>
#include <vector>

#include "common/dna.hh"
#include "common/types.hh"

namespace genax {

/** NFA Levenshtein automaton for a fixed pattern and edit bound. */
class LevenshteinAutomaton
{
  public:
    /**
     * Build the automaton for the given pattern.
     *
     * @param pattern the stored string the automaton recognizes
     *                neighbourhoods of
     * @param k maximum edit distance
     */
    LevenshteinAutomaton(const Seq &pattern, u32 k);

    /** Reset to the start configuration (only state (0,0) active). */
    void reset();

    /** Consume one text character. */
    void step(Base c);

    /**
     * Minimum edit level e such that state (|P|, e) is active, i.e.
     * the whole pattern has been matched with e edits against the
     * text consumed so far.
     */
    std::optional<u32> acceptedEdits() const;

    /**
     * Convenience: edit distance between the stored pattern and a
     * text, if <= k.
     */
    std::optional<u32> distanceTo(const Seq &text);

    /** Total NFA state count, K*N-proportional as in the paper. */
    u64 stateCount() const { return (_pattern.size() + 1) * (_k + 1); }

    /** Number of currently active states (for occupancy stats). */
    u64 activeStates() const;

  private:
    /** Apply the deletion epsilon-closure across edit levels. */
    void epsilonClose(std::vector<std::vector<u64>> &levels) const;

    Seq _pattern;
    u32 _k;
    size_t _words;

    /** Bitmask of pattern positions matching each base code. */
    std::vector<std::vector<u64>> _charMask;

    /** Active-state bitsets, one position-bitset per edit level. */
    std::vector<std::vector<u64>> _active;
};

} // namespace genax

#endif // GENAX_ALIGN_LEV_AUTOMATON_HH
