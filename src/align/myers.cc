#include "align/myers.hh"

#include <array>
#include <vector>

namespace genax {

namespace {

constexpr unsigned kWordBits = 64;

/**
 * Advance one block of the bit-parallel DP by one text column.
 *
 * @param pv,mv  vertical positive/negative delta bit vectors (in/out)
 * @param eq     pattern-match bit mask for this block and text char
 * @param hin    horizontal delta entering the block (-1, 0, +1)
 * @return horizontal delta leaving the block
 */
int
advanceBlock(u64 &pv, u64 &mv, u64 eq, int hin)
{
    if (hin < 0)
        eq |= 1;
    const u64 xv = eq | mv;
    const u64 xh = (((eq & pv) + pv) ^ pv) | eq;

    u64 ph = mv | ~(xh | pv);
    u64 mh = pv & xh;

    int hout = 0;
    if (ph >> (kWordBits - 1))
        hout = +1;
    else if (mh >> (kWordBits - 1))
        hout = -1;

    ph <<= 1;
    mh <<= 1;
    if (hin < 0)
        mh |= 1;
    else if (hin > 0)
        ph |= 1;

    pv = mh | ~(xv | ph);
    mv = ph & xv;
    return hout;
}

/** Body shared by the Seq and 2-bit PackedSeq text overloads. */
template <typename TextT>
u64
myersImpl(const Seq &pattern, const TextT &text)
{
    const size_t m = pattern.size();
    const size_t n = text.size();
    if (m == 0)
        return n;
    if (n == 0)
        return m;

    const size_t blocks = (m + kWordBits - 1) / kWordBits;

    // Pattern-match masks per base code per block. The pattern is
    // conceptually padded to a block boundary with a character that
    // matches nothing.
    std::vector<std::array<u64, 4>> peq(blocks, {0, 0, 0, 0});
    for (size_t i = 0; i < m; ++i)
        peq[i / kWordBits][pattern[i] & 3] |= u64{1} << (i % kWordBits);

    std::vector<u64> pv(blocks, ~u64{0});
    std::vector<u64> mv(blocks, 0);

    // Score at the last pattern row (D[m][j]); starts at D[m][0] = m.
    u64 score = m;
    const unsigned last_bit = (m - 1) % kWordBits;
    const size_t last = blocks - 1;

    for (size_t j = 0; j < n; ++j) {
        const Base c = text[j] & 3;
        // Horizontal input at row 0 is +1: D[0][j] = j (global mode).
        int hin = +1;
        for (size_t b = 0; b < blocks; ++b) {
            // Recompute the last block's horizontal delta at the true
            // pattern row rather than the padded block boundary.
            if (b == last) {
                u64 lpv = pv[b], lmv = mv[b];
                u64 eq = peq[b][c];
                if (hin < 0)
                    eq |= 1;
                const u64 xh = (((eq & lpv) + lpv) ^ lpv) | eq;
                u64 ph = lmv | ~(xh | lpv);
                u64 mh = lpv & xh;
                if ((ph >> last_bit) & 1)
                    ++score;
                else if ((mh >> last_bit) & 1)
                    --score;
            }
            hin = advanceBlock(pv[b], mv[b], peq[b][c], hin);
        }
    }
    return score;
}

} // namespace

u64
myersEditDistance(const Seq &pattern, const Seq &text)
{
    return myersImpl(pattern, text);
}

u64
myersEditDistance(const Seq &pattern, const PackedSeq &text)
{
    return myersImpl(pattern, text);
}

} // namespace genax
