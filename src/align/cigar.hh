/**
 * @file
 * CIGAR representation of alignments.
 *
 * Conventions follow SAM, expressed relative to the query (read):
 *  '='  match           (consumes query and reference)
 *  'X'  mismatch        (consumes query and reference)
 *  'I'  insertion       (consumes query only — extra base in the read)
 *  'D'  deletion        (consumes reference only)
 *  'S'  soft clip       (consumes query only, unaligned)
 */

#ifndef GENAX_ALIGN_CIGAR_HH
#define GENAX_ALIGN_CIGAR_HH

#include <string>
#include <vector>

#include "common/dna.hh"
#include "common/types.hh"

#include "align/scoring.hh"

namespace genax {

/** One CIGAR operation kind. */
enum class CigarOp : char
{
    Match = '=',
    Mismatch = 'X',
    Ins = 'I',
    Del = 'D',
    SoftClip = 'S',
};

/** A run-length encoded CIGAR element. */
struct CigarElem
{
    CigarOp op;
    u32 len;

    bool operator==(const CigarElem &) const = default;
};

/** A full CIGAR: sequence of run-length encoded operations. */
class Cigar
{
  public:
    Cigar() = default;
    explicit Cigar(std::vector<CigarElem> elems) : _elems(std::move(elems)) {}

    /** Append an operation, merging with the trailing run if equal. */
    void push(CigarOp op, u32 len = 1);

    /** Reverse the element order in place (for left extensions). */
    void reverse();

    /** Append another cigar (run-merging at the seam). */
    void append(const Cigar &other);

    const std::vector<CigarElem> &elems() const { return _elems; }
    bool empty() const { return _elems.empty(); }

    /** Number of query characters consumed (=, X, I, S). */
    u64 queryLen() const;

    /** Number of reference characters consumed (=, X, D). */
    u64 refLen() const;

    /** Number of aligned (non-clip) query characters. */
    u64 alignedQueryLen() const;

    /** Total edits (X + I + D characters). */
    u64 editDistance() const;

    /** Format as a SAM CIGAR string (with =/X kept distinct). */
    std::string str() const;

    /** Format using 'M' for both = and X (classic SAM style). */
    std::string strSamM() const;

    /** Parse from a string produced by str(). Fatal on bad input. */
    static Cigar parse(const std::string &s);

    /**
     * Recompute the affine-gap score of this cigar against the given
     * sequences, verifying op-by-op consistency (e.g. '=' positions
     * really match). Fatal on inconsistency. Clips score zero.
     *
     * @param ref reference window the cigar refers to (from position 0)
     * @param qry query sequence (from position 0)
     */
    i32 rescore(const Seq &ref, const Seq &qry, const Scoring &sc) const;

    bool operator==(const Cigar &) const = default;

  private:
    std::vector<CigarElem> _elems;
};

} // namespace genax

#endif // GENAX_ALIGN_CIGAR_HH
