/**
 * @file
 * Reference Levenshtein (edit) distance implementations.
 *
 * These are the ground-truth oracles the Silla automata are verified
 * against, plus banded/bounded variants matching the complexity
 * trade-offs discussed in the paper (Section II).
 */

#ifndef GENAX_ALIGN_EDIT_DISTANCE_HH
#define GENAX_ALIGN_EDIT_DISTANCE_HH

#include <optional>

#include "common/dna.hh"
#include "common/types.hh"

namespace genax {

/** Full O(n*m) dynamic-programming Levenshtein distance. */
u64 editDistance(const Seq &a, const Seq &b);

/**
 * Banded edit distance restricted to |i-j| <= band.
 *
 * @return the distance if some alignment with <= band indel skew
 *         exists, std::nullopt otherwise (distance exceeds what the
 *         band can certify).
 */
std::optional<u64> editDistanceBanded(const Seq &a, const Seq &b, u64 band);

/**
 * Bounded edit distance: the exact distance if it is <= k, otherwise
 * std::nullopt. Runs the Ukkonen band |i-j| <= k and checks the
 * result against k. This is the problem Silla solves (Section III).
 */
std::optional<u64> editDistanceBounded(const Seq &a, const Seq &b, u64 k);

} // namespace genax

#endif // GENAX_ALIGN_EDIT_DISTANCE_HH
