#include "align/edit_distance.hh"

#include <algorithm>
#include <vector>

namespace genax {

u64
editDistance(const Seq &a, const Seq &b)
{
    const size_t n = a.size(), m = b.size();
    std::vector<u64> prev(m + 1), cur(m + 1);
    for (size_t j = 0; j <= m; ++j)
        prev[j] = j;
    for (size_t i = 1; i <= n; ++i) {
        cur[0] = i;
        for (size_t j = 1; j <= m; ++j) {
            const u64 sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

std::optional<u64>
editDistanceBanded(const Seq &a, const Seq &b, u64 band)
{
    const i64 n = static_cast<i64>(a.size());
    const i64 m = static_cast<i64>(b.size());
    // Any alignment requires at least |n-m| indels, all skewing the
    // diagonal the same way; the band must cover that skew.
    if (static_cast<u64>(std::abs(n - m)) > band)
        return std::nullopt;

    const i64 w = static_cast<i64>(band);
    const u64 inf = ~u64{0} / 2;
    // Row-sliced band storage: row i covers j in [i-w, i+w].
    std::vector<u64> prev(2 * band + 1, inf), cur(2 * band + 1, inf);
    auto idx = [&](i64 i, i64 j) { return static_cast<size_t>(j - (i - w)); };

    for (i64 j = 0; j <= std::min(m, w); ++j)
        prev[idx(0, j)] = static_cast<u64>(j);
    for (i64 i = 1; i <= n; ++i) {
        std::fill(cur.begin(), cur.end(), inf);
        const i64 jlo = std::max<i64>(0, i - w);
        const i64 jhi = std::min(m, i + w);
        for (i64 j = jlo; j <= jhi; ++j) {
            u64 best = inf;
            if (j == 0) {
                best = static_cast<u64>(i);
            } else {
                // Diagonal predecessor is always inside row i-1's band.
                if (j - 1 >= i - 1 - w && j - 1 <= i - 1 + w &&
                    prev[idx(i - 1, j - 1)] != inf) {
                    const u64 sub = prev[idx(i - 1, j - 1)] +
                        (a[i - 1] == b[j - 1] ? 0 : 1);
                    best = std::min(best, sub);
                }
                if (j - 1 >= i - w && cur[idx(i, j - 1)] != inf)
                    best = std::min(best, cur[idx(i, j - 1)] + 1);
            }
            if (j >= i - 1 - w && j <= i - 1 + w &&
                prev[idx(i - 1, j)] != inf) {
                best = std::min(best, prev[idx(i - 1, j)] + 1);
            }
            cur[idx(i, j)] = best;
        }
        std::swap(prev, cur);
    }
    const u64 d = prev[idx(n, m)];
    if (d >= inf)
        return std::nullopt;
    return d;
}

std::optional<u64>
editDistanceBounded(const Seq &a, const Seq &b, u64 k)
{
    auto d = editDistanceBanded(a, b, k);
    if (!d || *d > k)
        return std::nullopt;
    return d;
}

} // namespace genax
