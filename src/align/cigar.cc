#include "align/cigar.hh"

#include <algorithm>
#include <cctype>

#include "common/check.hh"
#include "common/logging.hh"

namespace genax {

void
Cigar::push(CigarOp op, u32 len)
{
    if (len == 0)
        return;
    if (!_elems.empty() && _elems.back().op == op)
        _elems.back().len += len;
    else
        _elems.push_back({op, len});
}

void
Cigar::reverse()
{
    std::reverse(_elems.begin(), _elems.end());
}

void
Cigar::append(const Cigar &other)
{
    for (const auto &e : other._elems)
        push(e.op, e.len);
}

u64
Cigar::queryLen() const
{
    u64 n = 0;
    for (const auto &e : _elems) {
        switch (e.op) {
          case CigarOp::Match:
          case CigarOp::Mismatch:
          case CigarOp::Ins:
          case CigarOp::SoftClip:
            n += e.len;
            break;
          case CigarOp::Del:
            break;
        }
    }
    return n;
}

u64
Cigar::refLen() const
{
    u64 n = 0;
    for (const auto &e : _elems) {
        switch (e.op) {
          case CigarOp::Match:
          case CigarOp::Mismatch:
          case CigarOp::Del:
            n += e.len;
            break;
          default:
            break;
        }
    }
    return n;
}

u64
Cigar::alignedQueryLen() const
{
    u64 n = 0;
    for (const auto &e : _elems) {
        switch (e.op) {
          case CigarOp::Match:
          case CigarOp::Mismatch:
          case CigarOp::Ins:
            n += e.len;
            break;
          default:
            break;
        }
    }
    return n;
}

u64
Cigar::editDistance() const
{
    u64 n = 0;
    for (const auto &e : _elems) {
        switch (e.op) {
          case CigarOp::Mismatch:
          case CigarOp::Ins:
          case CigarOp::Del:
            n += e.len;
            break;
          default:
            break;
        }
    }
    return n;
}

std::string
Cigar::str() const
{
    if (_elems.empty())
        return "*";
    std::string out;
    for (const auto &e : _elems) {
        out += std::to_string(e.len);
        out += static_cast<char>(e.op);
    }
    return out;
}

std::string
Cigar::strSamM() const
{
    if (_elems.empty())
        return "*";
    std::string out;
    u64 run = 0;
    auto flush_m = [&]() {
        if (run > 0) {
            out += std::to_string(run);
            out += 'M';
            run = 0;
        }
    };
    for (const auto &e : _elems) {
        if (e.op == CigarOp::Match || e.op == CigarOp::Mismatch) {
            run += e.len;
        } else {
            flush_m();
            out += std::to_string(e.len);
            out += static_cast<char>(e.op);
        }
    }
    flush_m();
    return out;
}

Cigar
Cigar::parse(const std::string &s)
{
    Cigar out;
    if (s == "*" || s.empty())
        return out;
    size_t i = 0;
    while (i < s.size()) {
        GENAX_ASSERT(std::isdigit(static_cast<unsigned char>(s[i])),
                     "bad cigar: ", s);
        u32 len = 0;
        while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
            len = len * 10 + static_cast<u32>(s[i++] - '0');
        GENAX_ASSERT(i < s.size(), "cigar missing op: ", s);
        const char c = s[i++];
        CigarOp op;
        switch (c) {
          case '=': op = CigarOp::Match; break;
          case 'X': op = CigarOp::Mismatch; break;
          case 'I': op = CigarOp::Ins; break;
          case 'D': op = CigarOp::Del; break;
          case 'S': op = CigarOp::SoftClip; break;
          default: GENAX_CHECK(false, "bad cigar op '", c, "' in ", s);
        }
        out.push(op, len);
    }
    return out;
}

i32
Cigar::rescore(const Seq &ref, const Seq &qry, const Scoring &sc) const
{
    i32 score = 0;
    size_t r = 0, q = 0;
    for (const auto &e : _elems) {
        switch (e.op) {
          case CigarOp::Match:
            for (u32 i = 0; i < e.len; ++i, ++r, ++q) {
                GENAX_ASSERT(r < ref.size() && q < qry.size(),
                             "cigar overruns sequences");
                GENAX_ASSERT(ref[r] == qry[q],
                             "cigar '=' on mismatching pair at r=", r,
                             " q=", q);
                score += sc.match;
            }
            break;
          case CigarOp::Mismatch:
            for (u32 i = 0; i < e.len; ++i, ++r, ++q) {
                GENAX_ASSERT(r < ref.size() && q < qry.size(),
                             "cigar overruns sequences");
                GENAX_ASSERT(ref[r] != qry[q],
                             "cigar 'X' on matching pair at r=", r,
                             " q=", q);
                score -= sc.mismatch;
            }
            break;
          case CigarOp::Ins:
            GENAX_ASSERT(q + e.len <= qry.size(), "cigar overruns query");
            q += e.len;
            score += sc.gapCost(static_cast<i32>(e.len));
            break;
          case CigarOp::Del:
            GENAX_ASSERT(r + e.len <= ref.size(), "cigar overruns ref");
            r += e.len;
            score += sc.gapCost(static_cast<i32>(e.len));
            break;
          case CigarOp::SoftClip:
            q += e.len;
            break;
        }
    }
    return score;
}

} // namespace genax
