/**
 * @file
 * Affine-gap scoring parameters (Gotoh).
 *
 * Defaults are the BWA-MEM scheme used throughout the GenAx paper:
 * match +1, mismatch -4, gap open -6 (one-time per indel), gap extend
 * -1 per gap character, i.e. a gap of length L costs 6 + L.
 */

#ifndef GENAX_ALIGN_SCORING_HH
#define GENAX_ALIGN_SCORING_HH

#include "common/dna.hh"
#include "common/types.hh"

namespace genax {

/** Affine gap scoring scheme. Penalties are stored as magnitudes. */
struct Scoring
{
    i32 match = 1;      //!< reward for a matching pair
    i32 mismatch = 4;   //!< penalty for a substitution
    i32 gapOpen = 6;    //!< one-time penalty per indel run
    i32 gapExtend = 1;  //!< per-character penalty within an indel run

    /** Substitution score for a pair of base codes. */
    i32
    sub(Base a, Base b) const
    {
        return a == b ? match : -mismatch;
    }

    /** Total (negative) score of a gap of the given length. */
    i32
    gapCost(i32 len) const
    {
        return len == 0 ? 0 : -(gapOpen + gapExtend * len);
    }

    /** Scheme where score == negated edit distance (unit costs). */
    static Scoring
    unitEdit()
    {
        return Scoring{0, 1, 0, 1};
    }
};

} // namespace genax

#endif // GENAX_ALIGN_SCORING_HH
