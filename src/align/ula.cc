#include "align/ula.hh"

#include <algorithm>

#include "common/logging.hh"

namespace genax {

UniversalLevAutomaton::UniversalLevAutomaton(u32 k)
    : _k(k),
      _cur((2 * k + 1) * (k + 1), 0),
      _next((2 * k + 1) * (k + 1), 0)
{
}

void
UniversalLevAutomaton::subsume(std::vector<u8> &active) const
{
    // (d, e) subsumes (d', e') when e' >= e + |d' - d|: every string
    // accepted through the weaker position is accepted through the
    // stronger one.
    for (u32 e = 0; e <= _k; ++e) {
        for (i32 d = -static_cast<i32>(_k); d <= static_cast<i32>(_k);
             ++d) {
            if (!active[idx(d, e)])
                continue;
            for (u32 e2 = e; e2 <= _k; ++e2) {
                for (i32 d2 = -static_cast<i32>(_k);
                     d2 <= static_cast<i32>(_k); ++d2) {
                    if (d2 == d && e2 == e)
                        continue;
                    if (!active[idx(d2, e2)])
                        continue;
                    if (e2 >= e + static_cast<u32>(std::abs(d2 - d)))
                        active[idx(d2, e2)] = 0;
                }
            }
        }
    }
}

std::optional<u32>
UniversalLevAutomaton::distance(const Seq &pattern, const Seq &text)
{
    const i64 plen = static_cast<i64>(pattern.size());
    _fanoutEdges = 0;
    _maxDeltaReach = 0;
    _peakActive = 0;

    if (pattern.size() > text.size() + _k ||
        text.size() > pattern.size() + _k) {
        return std::nullopt;
    }

    std::fill(_cur.begin(), _cur.end(), 0);
    _cur[idx(0, 0)] = 1;

    // Characteristic window: chi[m] = (pattern[j + m] == t).
    std::vector<u8> chi(2 * _k + 1);
    auto chi_at = [&](i32 m) {
        return chi[static_cast<size_t>(m + static_cast<i32>(_k))];
    };

    for (u64 j = 0; j < text.size(); ++j) {
        const Base t = text[j];
        for (i32 m = -static_cast<i32>(_k); m <= static_cast<i32>(_k);
             ++m) {
            const i64 pi = static_cast<i64>(j) + m;
            chi[static_cast<size_t>(m + static_cast<i32>(_k))] =
                pi >= 0 && pi < plen && pattern[pi] == t;
        }

        std::fill(_next.begin(), _next.end(), 0);
        u64 active = 0;
        for (u32 e = 0; e <= _k; ++e) {
            for (i32 d = -static_cast<i32>(_k);
                 d <= static_cast<i32>(_k); ++d) {
                if (!_cur[idx(d, e)])
                    continue;
                ++active;

                // Insertion: consume the text char only.
                if (e + 1 <= _k && d - 1 >= -static_cast<i32>(_k)) {
                    _next[idx(d - 1, e + 1)] = 1;
                    ++_fanoutEdges;
                    _maxDeltaReach = std::max(_maxDeltaReach, 1u);
                }

                // l pattern deletions followed by a match or a
                // substitution (the O(K)-fanout edges).
                for (u32 l = 0; e + l <= _k; ++l) {
                    const i32 d2 = d + static_cast<i32>(l);
                    if (d2 > static_cast<i32>(_k))
                        break;
                    const i64 pi = static_cast<i64>(j) + d2;
                    if (pi >= plen)
                        break; // no pattern char left to consume
                    if (chi_at(d2)) {
                        _next[idx(d2, e + l)] = 1;
                        ++_fanoutEdges;
                        _maxDeltaReach = std::max(_maxDeltaReach, l);
                    } else if (e + l + 1 <= _k) {
                        _next[idx(d2, e + l + 1)] = 1;
                        ++_fanoutEdges;
                        _maxDeltaReach = std::max(_maxDeltaReach, l);
                    }
                }
            }
        }
        _peakActive = std::max(_peakActive, active);
        subsume(_next);
        std::swap(_cur, _next);
    }

    // Acceptance: delete the remaining pattern suffix.
    std::optional<u32> best;
    for (u32 e = 0; e <= _k; ++e) {
        for (i32 d = -static_cast<i32>(_k); d <= static_cast<i32>(_k);
             ++d) {
            if (!_cur[idx(d, e)])
                continue;
            const i64 i = static_cast<i64>(text.size()) + d;
            if (i < 0 || i > plen)
                continue;
            const u64 rest = static_cast<u64>(plen - i);
            const u64 total = e + rest;
            if (total <= _k && (!best || total < *best))
                best = static_cast<u32>(total);
        }
    }
    return best;
}

} // namespace genax
