#include "align/wfa.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace genax {

namespace {

constexpr i64 kNull = INT64_MIN / 4;

/** One penalty level's wavefront: offsets over diagonals [lo, hi]. */
struct Wave
{
    i64 lo = 0;
    i64 hi = -1; //!< empty when hi < lo
    std::vector<i64> m, i, d;

    bool
    has(i64 k) const
    {
        return k >= lo && k <= hi;
    }

    i64 mAt(i64 k) const { return has(k) ? m[k - lo] : kNull; }
    i64 iAt(i64 k) const { return has(k) ? i[k - lo] : kNull; }
    i64 dAt(i64 k) const { return has(k) ? d[k - lo] : kNull; }
};

} // namespace

std::optional<u64>
wfaGlobalPenalty(const Seq &a, const Seq &b, const WfaPenalties &p,
                 u64 max_penalty)
{
    GENAX_ASSERT(p.mismatch > 0 && p.gapExtend > 0,
                 "WFA needs positive mismatch and extend penalties");
    const i64 n = static_cast<i64>(a.size());
    const i64 m = static_cast<i64>(b.size());
    const i64 k_target = n - m;

    auto slide = [&](i64 k, i64 x) {
        while (x < n && x - k < m && a[x] == b[x - k])
            ++x;
        return x;
    };
    // An offset is usable if it stays within both strings.
    auto valid = [&](i64 k, i64 x) {
        return x != kNull && x >= 0 && x <= n && x - k >= 0 &&
               x - k <= m;
    };

    std::vector<Wave> waves;
    waves.reserve(max_penalty + 1);

    for (u64 s = 0; s <= max_penalty; ++s) {
        Wave wave;
        if (s == 0) {
            wave.lo = 0;
            wave.hi = 0;
            wave.m = {slide(0, 0)};
            wave.i = {kNull};
            wave.d = {kNull};
        } else {
            // Source waves for the affine recurrences.
            const Wave *mx =
                s >= p.mismatch ? &waves[s - p.mismatch] : nullptr;
            const Wave *open = s >= p.gapOpen + p.gapExtend
                                   ? &waves[s - p.gapOpen - p.gapExtend]
                                   : nullptr;
            const Wave *ext =
                s >= p.gapExtend ? &waves[s - p.gapExtend] : nullptr;

            i64 lo = 1, hi = 0; // empty until a source exists
            auto widen = [&](const Wave *w) {
                if (!w || w->hi < w->lo)
                    return;
                if (hi < lo) {
                    lo = w->lo - 1;
                    hi = w->hi + 1;
                } else {
                    lo = std::min(lo, w->lo - 1);
                    hi = std::max(hi, w->hi + 1);
                }
            };
            widen(mx);
            widen(open);
            widen(ext);
            if (hi < lo) {
                waves.push_back(std::move(wave));
                continue;
            }
            wave.lo = lo;
            wave.hi = hi;
            const size_t width = static_cast<size_t>(hi - lo + 1);
            wave.m.assign(width, kNull);
            wave.i.assign(width, kNull);
            wave.d.assign(width, kNull);

            for (i64 k = lo; k <= hi; ++k) {
                // Insertion (consume b): from diagonal k+1, offset
                // unchanged.
                i64 ival = kNull;
                if (open && valid(k, open->mAt(k + 1)))
                    ival = open->mAt(k + 1);
                if (ext && valid(k, ext->iAt(k + 1)))
                    ival = std::max(ival, ext->iAt(k + 1));
                // Deletion (consume a): from diagonal k-1, offset +1.
                i64 dval = kNull;
                if (open && open->mAt(k - 1) != kNull &&
                    valid(k, open->mAt(k - 1) + 1)) {
                    dval = open->mAt(k - 1) + 1;
                }
                if (ext && ext->dAt(k - 1) != kNull &&
                    valid(k, ext->dAt(k - 1) + 1)) {
                    dval = std::max(dval, ext->dAt(k - 1) + 1);
                }
                // Mismatch: same diagonal, consume one of each.
                i64 mval = kNull;
                if (mx && mx->mAt(k) != kNull &&
                    valid(k, mx->mAt(k) + 1)) {
                    mval = mx->mAt(k) + 1;
                }
                mval = std::max({mval, ival, dval});

                wave.i[k - lo] = ival;
                wave.d[k - lo] = dval;
                wave.m[k - lo] =
                    mval == kNull ? kNull : slide(k, mval);
            }
        }

        if (wave.has(k_target) && wave.mAt(k_target) >= n)
            return s;
        waves.push_back(std::move(wave));
    }
    return std::nullopt;
}

i32
wfaGlobalScore(const Seq &a, const Seq &b, const Scoring &sc)
{
    GENAX_ASSERT(!a.empty() && !b.empty(),
                 "wfaGlobalScore needs non-empty inputs");
    // Transformation to match-free penalties (Marco-Sola et al.):
    //   x' = 2(alpha + beta), o' = 2*gamma, e' = 2*delta + alpha
    // with S = alpha*(n+m)/2 - P/2.
    const u32 alpha = static_cast<u32>(sc.match);
    WfaPenalties p;
    p.mismatch = 2 * static_cast<u32>(sc.match + sc.mismatch);
    p.gapOpen = 2 * static_cast<u32>(sc.gapOpen);
    p.gapExtend = 2 * static_cast<u32>(sc.gapExtend) + alpha;

    // Any global alignment is bounded by all-gaps cost.
    const u64 bound =
        2 * (static_cast<u64>(sc.gapOpen) * 2 +
             static_cast<u64>(sc.gapExtend) * (a.size() + b.size())) +
        static_cast<u64>(alpha) * (a.size() + b.size()) + 4;
    const auto penalty = wfaGlobalPenalty(a, b, p, bound);
    GENAX_ASSERT(penalty.has_value(), "WFA failed to converge");
    const double s =
        static_cast<double>(alpha) *
            static_cast<double>(a.size() + b.size()) / 2.0 -
        static_cast<double>(*penalty) / 2.0;
    return static_cast<i32>(s);
}

} // namespace genax
