/**
 * @file
 * Read-mapping result shared by the software aligner and the GenAx
 * system model.
 */

#ifndef GENAX_ALIGN_MAPPING_HH
#define GENAX_ALIGN_MAPPING_HH

#include "align/cigar.hh"
#include "common/types.hh"

namespace genax {

/** One read's best alignment against the reference. */
struct Mapping
{
    bool mapped = false;
    Pos pos = kNoPos;   //!< 0-based reference position of the first
                        //!< aligned (non-clipped) read base
    bool reverse = false; //!< aligned as the reverse complement
    i32 score = 0;      //!< affine-gap alignment score
    u8 mapq = 0;        //!< mapping confidence (0-60)
    Cigar cigar;        //!< in read orientation as aligned
};

} // namespace genax

#endif // GENAX_ALIGN_MAPPING_HH
