#include "align/wavefront.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace genax {

namespace {

constexpr i64 kUnreached = -1;

/**
 * Run wavefronts until the end diagonal reaches (n, m) or the edit
 * budget is exhausted.
 *
 * V[e-indexed wave][diagonal k = x - y] = furthest x (characters of
 * `a` consumed) reachable with e edits, after the free-match slide.
 */
std::optional<u64>
wavefront(const Seq &a, const Seq &b, u64 max_e)
{
    const i64 n = static_cast<i64>(a.size());
    const i64 m = static_cast<i64>(b.size());
    const i64 k_target = n - m;

    auto slide = [&](i64 k, i64 x) {
        while (x < n && x - k < m && a[x] == b[x - k])
            ++x;
        return x;
    };

    // Diagonals live in [-e, e]; store with offset max_e.
    const i64 off = static_cast<i64>(max_e) + 1;
    std::vector<i64> cur(2 * off + 1, kUnreached);
    std::vector<i64> next(2 * off + 1, kUnreached);

    cur[off] = slide(0, 0);
    if (k_target == 0 && cur[off] >= n)
        return 0;

    for (u64 e = 1; e <= max_e; ++e) {
        const i64 lo = -static_cast<i64>(e);
        const i64 hi = static_cast<i64>(e);
        std::fill(next.begin(), next.end(), kUnreached);
        for (i64 k = lo; k <= hi; ++k) {
            i64 x = kUnreached;
            // Each source is validated independently: a candidate
            // that would consume past either string end must not
            // shadow a smaller valid one in the max.
            auto feed = [&](i64 cand) {
                if (cand == kUnreached || cand > n)
                    return;
                const i64 y = cand - k;
                if (y < 0 || y > m)
                    return;
                x = std::max(x, cand);
            };
            // Substitution: same diagonal, consume one of each.
            if (cur[k + off] != kUnreached)
                feed(cur[k + off] + 1);
            // Deletion (consume a): from diagonal k-1.
            if (k - 1 >= -static_cast<i64>(e - 1) &&
                cur[k - 1 + off] != kUnreached) {
                feed(cur[k - 1 + off] + 1);
            }
            // Insertion (consume b): from diagonal k+1, x unchanged.
            if (k + 1 <= static_cast<i64>(e - 1) &&
                cur[k + 1 + off] != kUnreached) {
                feed(cur[k + 1 + off]);
            }
            if (x == kUnreached)
                continue;
            next[k + off] = slide(k, x);
        }
        std::swap(cur, next);
        if (std::abs(k_target) <= static_cast<i64>(e) &&
            cur[k_target + off] >= n) {
            return e;
        }
    }
    return std::nullopt;
}

} // namespace

u64
wavefrontEditDistance(const Seq &a, const Seq &b)
{
    const auto d = wavefront(a, b, a.size() + b.size());
    GENAX_ASSERT(d.has_value(), "unbounded wavefront must terminate");
    return *d;
}

std::optional<u64>
wavefrontEditDistanceBounded(const Seq &a, const Seq &b, u64 k)
{
    return wavefront(a, b, k);
}

} // namespace genax
