/**
 * @file
 * Wavefront (Myers O(ND)) edit distance.
 *
 * The furthest-reaching-point algorithm underlying modern wavefront
 * aligners: for each edit count e it tracks, per diagonal, how far a
 * path with exactly e edits can reach after sliding through free
 * matches. Runtime O((n+m) * D) with D the edit distance — the same
 * "greedy slide along diagonals, branch on mismatch" idea Silla
 * evaluates in hardware, computed sequentially in software. A useful
 * third oracle next to the DP matrix and Myers' bit-vector.
 */

#ifndef GENAX_ALIGN_WAVEFRONT_HH
#define GENAX_ALIGN_WAVEFRONT_HH

#include <optional>

#include "common/dna.hh"
#include "common/types.hh"

namespace genax {

/** Exact edit distance via the wavefront algorithm. */
u64 wavefrontEditDistance(const Seq &a, const Seq &b);

/** Edit distance if <= k, nullopt otherwise (early-terminating). */
std::optional<u64> wavefrontEditDistanceBounded(const Seq &a,
                                                const Seq &b, u64 k);

} // namespace genax

#endif // GENAX_ALIGN_WAVEFRONT_HH
