#include "silla/silla_score.hh"

#include <algorithm>

#include "common/check.hh"

namespace genax {

namespace {

constexpr i32 kNegInf = INT32_MIN / 4;

} // namespace

SillaScore::SillaScore(u32 k, const Scoring &sc)
    : _k(k), _sc(sc)
{
    GENAX_CHECK(k <= kMaxSillaK, "Silla edit bound ", k,
                " exceeds the supported maximum ", kMaxSillaK);
    GENAX_CHECK(sc.match >= 0 && sc.mismatch > 0 && sc.gapOpen >= 0 &&
                    sc.gapExtend > 0,
                "degenerate scoring scheme: match=", sc.match,
                " mismatch=", sc.mismatch, " gapOpen=", sc.gapOpen,
                " gapExtend=", sc.gapExtend);
    const size_t n = static_cast<size_t>(k + 1) * (k + 1);
    _hCur.assign(n, kNegInf);
    _hNext.assign(n, kNegInf);
    _eCur.assign(n, kNegInf);
    _eNext.assign(n, kNegInf);
    _fCur.assign(n, kNegInf);
    _fNext.assign(n, kNegInf);
}

SillaScoreResult
SillaScore::run(const Seq &r, const Seq &q)
{
    const u64 n = r.size(), m = q.size();

    std::fill(_hCur.begin(), _hCur.end(), kNegInf);
    std::fill(_eCur.begin(), _eCur.end(), kNegInf);
    std::fill(_fCur.begin(), _fCur.end(), kNegInf);

    SillaScoreResult res;
    res.best = 0; // the empty extension (full clip) is always available
    res.refEnd = 0;
    res.qryEnd = 0;
    u64 best_rq = 0, best_r = 0;
    bool have_best = false;

    auto consider = [&](i32 score, u32 i, u32 d, u64 cell_r, u64 cell_q,
                        Cycle c) {
        if (score < res.best)
            return;
        const u64 rq = cell_r + cell_q;
        if (score > res.best || !have_best || rq < best_rq ||
            (rq == best_rq && cell_r < best_r)) {
            res.best = score;
            res.winnerI = i;
            res.winnerD = d;
            res.bestCycle = c;
            res.refEnd = cell_r;
            res.qryEnd = cell_q;
            best_rq = rq;
            best_r = cell_r;
            have_best = true;
        }
    };
    consider(0, 0, 0, 0, 0, 0);

    const u64 max_cycle = std::min(n, m) + _k;
    for (u64 c = 0; c <= max_cycle; ++c) {
        std::fill(_hNext.begin(), _hNext.end(), kNegInf);
        std::fill(_eNext.begin(), _eNext.end(), kNegInf);
        std::fill(_fNext.begin(), _fNext.end(), kNegInf);

        for (u32 i = 0; i <= _k; ++i) {
            if (c < i)
                break;
            const u64 cell_r = c - i;
            if (cell_r > n)
                continue;
            for (u32 d = 0; d <= _k; ++d) {
                if (c < d)
                    break;
                const u64 cell_q = c - d;
                if (cell_q > m)
                    continue;

                // E: open or extend an insertion run arriving from
                // PE (i-1, d), one cycle delayed (delayed merging).
                i32 e = kNegInf;
                if (i >= 1 && cell_q >= 1) {
                    const size_t src = idx(i - 1, d);
                    if (_hCur[src] != kNegInf)
                        e = _hCur[src] - _sc.gapOpen - _sc.gapExtend;
                    if (_eCur[src] != kNegInf)
                        e = std::max(e, _eCur[src] - _sc.gapExtend);
                }

                // F: open or extend a deletion run from PE (i, d-1).
                i32 f = kNegInf;
                if (d >= 1 && cell_r >= 1) {
                    const size_t src = idx(i, d - 1);
                    if (_hCur[src] != kNegInf)
                        f = _hCur[src] - _sc.gapOpen - _sc.gapExtend;
                    if (_fCur[src] != kNegInf)
                        f = std::max(f, _fCur[src] - _sc.gapExtend);
                }

                // Closed path continues diagonally within this PE.
                i32 diag = kNegInf;
                const size_t self = idx(i, d);
                if (cell_r >= 1 && cell_q >= 1 && _hCur[self] != kNegInf)
                    diag = _hCur[self] +
                           _sc.sub(r[cell_r - 1], q[cell_q - 1]);

                i32 h = std::max({diag, e, f});
                if (c == 0 && i == 0 && d == 0)
                    h = 0; // anchor: only PE (0,0) holds cell (0,0)

                _eNext[self] = e;
                _fNext[self] = f;
                _hNext[self] = h;
                if (h != kNegInf)
                    consider(h, i, d, cell_r, cell_q, c);
            }
        }
        std::swap(_hCur, _hNext);
        std::swap(_eCur, _eNext);
        std::swap(_fCur, _fNext);
    }
    res.streamCycles = max_cycle + 1;
    return res;
}

} // namespace genax
