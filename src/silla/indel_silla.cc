#include "silla/indel_silla.hh"

#include <algorithm>

#include "common/logging.hh"

namespace genax {

IndelSilla::IndelSilla(u32 k)
    : _k(k),
      _cur((k + 1) * (k + 1), 0),
      _next((k + 1) * (k + 1), 0)
{
    GENAX_CHECK(k <= kMaxSillaK, "Silla edit bound ", k,
                " exceeds the supported maximum ", kMaxSillaK);
}

std::optional<u32>
IndelSilla::distance(const Seq &r, const Seq &q)
{
    const u64 n = r.size(), m = q.size();
    // Any accepting state satisfies i - d == n - m, so i + d has the
    // same parity as n + m; distances are bounded below by |n - m|.
    if (n > m + _k || m > n + _k)
        return std::nullopt;

    std::fill(_cur.begin(), _cur.end(), 0);
    _cur[idx(0, 0)] = 1;
    _lastPeakActive = 1;

    std::optional<u32> best;
    const u64 max_cycle = std::min(n, m) + _k;
    u64 c = 0;
    for (; c <= max_cycle; ++c) {
        std::fill(_next.begin(), _next.end(), 0);
        u64 active = 0;
        bool any = false;
        for (u32 i = 0; i <= _k; ++i) {
            for (u32 d = 0; i + d <= _k; ++d) {
                if (!_cur[idx(i, d)])
                    continue;
                ++active;
                // Acceptance: both strings fully consumed.
                if (c - i == n && c - d == m) {
                    GENAX_DCHECK(n + i == m + d,
                                 "acceptance off the length diagonal");
                    const u32 edits = i + d;
                    if (!best || edits < *best)
                        best = edits;
                    continue;
                }
                // Prune states that overshot either string; their
                // stream positions only grow, so they can never
                // reach the acceptance point.
                if (c - i > n || c - d > m)
                    continue;
                any = true;
                if (retroCompare(r, q, c, i, d)) {
                    _next[idx(i, d)] = 1;
                } else {
                    if (i + 1 + d <= _k)
                        _next[idx(i + 1, d)] = 1;
                    if (i + d + 1 <= _k)
                        _next[idx(i, d + 1)] = 1;
                }
            }
        }
        _lastPeakActive = std::max(_lastPeakActive, active);
        std::swap(_cur, _next);
        if (!any)
            break;
    }
    _lastCycles = c;
    return best;
}

std::optional<u64>
IndelSilla::lcsLength(const Seq &r, const Seq &q)
{
    const auto d = distance(r, q);
    if (!d)
        return std::nullopt;
    // Each non-indel column of an indel-only alignment is a common
    // character, and there are (|r| + |q| - distance) / 2 of them.
    return (r.size() + q.size() - *d) / 2;
}

} // namespace genax
