/**
 * @file
 * Silla edit machines supporting insertions, deletions and
 * substitutions (Sections III-B and III-C of the GenAx paper).
 *
 * Two functionally equivalent variants are provided:
 *
 *  Silla3D      — the explicit construction with K+1 substitution
 *                 layers, O(K^3) states (Section III-B).
 *  SillaEdit    — the collapsed design: two regular layers plus wait
 *                 states, 3(K+1)^2/2 states (Section III-C). A
 *                 substitution from layer 1 passes through a wait
 *                 state and merges into layer 0 at (i+1, d+1) one
 *                 cycle later, preserving both the edit count
 *                 (i + d + layer) and the relative indel offset.
 *
 * Both compute min edit distance if <= K; their equivalence is the
 * paper's collapse argument and is property-tested.
 */

#ifndef GENAX_SILLA_SILLA_EDIT_HH
#define GENAX_SILLA_SILLA_EDIT_HH

#include <optional>
#include <vector>

#include "silla/silla.hh"

namespace genax {

/** Statistics from one automaton run. */
struct SillaRunStats
{
    Cycle cycles = 0;       //!< cycles consumed
    u64 peakActive = 0;     //!< peak simultaneously-active states
    u64 totalActivations = 0; //!< sum of active states over cycles
};

/** Collapsed 3D Silla (the production design). */
class SillaEdit
{
  public:
    explicit SillaEdit(u32 k);

    /** Min edit distance between r and q if <= K, else nullopt. */
    std::optional<u32> distance(const Seq &r, const Seq &q);

    u32 k() const { return _k; }
    u64 stateCount() const { return SillaStateCount::collapsed(_k); }
    const SillaRunStats &lastStats() const { return _stats; }

  private:
    size_t idx(u32 i, u32 d) const { return i * (_k + 1) + d; }

    u32 _k;
    SillaRunStats _stats;

    // Per-(i,d) activation flags for layer 0, layer 1 and the wait
    // state, double buffered.
    std::vector<u8> _cur0, _cur1, _curW;
    std::vector<u8> _next0, _next1, _nextW;
};

/** Explicit 3D Silla (the strawman the collapse removes). */
class Silla3D
{
  public:
    explicit Silla3D(u32 k);

    /** Min edit distance between r and q if <= K, else nullopt. */
    std::optional<u32> distance(const Seq &r, const Seq &q);

    u32 k() const { return _k; }
    u64 stateCount() const { return SillaStateCount::explicit3d(_k); }
    const SillaRunStats &lastStats() const { return _stats; }

  private:
    size_t idx(u32 i, u32 d, u32 s) const
    {
        return (static_cast<size_t>(s) * (_k + 1) + i) * (_k + 1) + d;
    }

    u32 _k;
    SillaRunStats _stats;
    std::vector<u8> _cur, _next;
};

} // namespace genax

#endif // GENAX_SILLA_SILLA_EDIT_HH
