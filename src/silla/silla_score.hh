/**
 * @file
 * Silla scoring machine (Section IV-B of the GenAx paper).
 *
 * Each PE (i, d) — "i inserted characters, d deleted characters so
 * far" — processes one DP cell per cycle: at cycle c it holds the
 * best affine-gap score of any extension path ending at cell
 * (r, q) = (c - i, c - d) that used exactly i insertions and d
 * deletions. Three registers implement the paper's delayed merging:
 *
 *   H — best closed path (last column was a match/substitution, or a
 *       gap that has just been merged in),
 *   E — best still-open insertion path (latched, merged next cycle),
 *   F — best still-open deletion path.
 *
 * H continues diagonally inside the same PE (this is why the
 * substitution layers of the edit machine disappear here); E arrives
 * from PE (i-1, d) and F from PE (i, d-1), both one cycle delayed —
 * exactly the local-neighbour communication of Figure 7.
 *
 * Clipping: every PE tracks the best H it has ever held; after the
 * streaming phase the maxima are reduced (modelled here directly,
 * costed as K back-propagation cycles in the SillaX timing model).
 *
 * The result equals banded Gotoh extension alignment restricted to
 * paths with at most K insertions and K deletions, and is verified
 * against gotohBanded in the tests.
 */

#ifndef GENAX_SILLA_SILLA_SCORE_HH
#define GENAX_SILLA_SILLA_SCORE_HH

#include <vector>

#include "align/scoring.hh"
#include "silla/silla.hh"

namespace genax {

/** Result of one scoring-machine run. */
struct SillaScoreResult
{
    i32 best = 0;       //!< clipped best score (>= 0; 0 = full clip)
    u32 winnerI = 0;    //!< insertions of the winning PE
    u32 winnerD = 0;    //!< deletions of the winning PE
    Cycle bestCycle = 0; //!< cycle at which the winner saw its best
    u64 refEnd = 0;     //!< reference characters consumed by the best path
    u64 qryEnd = 0;     //!< query characters consumed by the best path
    Cycle streamCycles = 0; //!< phase-1 cycles (N-proportional)
};

/** The Silla scoring machine for a fixed K and scoring scheme. */
class SillaScore
{
  public:
    SillaScore(u32 k, const Scoring &sc);

    /**
     * Compute the clipped best extension score of query q against
     * reference r, both anchored at position 0.
     */
    SillaScoreResult run(const Seq &r, const Seq &q);

    u32 k() const { return _k; }
    const Scoring &scoring() const { return _sc; }

    /** PE count of the scoring grid: the full (K+1)^2 square. */
    u64 peCount() const { return static_cast<u64>(_k + 1) * (_k + 1); }

  private:
    size_t idx(u32 i, u32 d) const { return i * (_k + 1) + d; }

    u32 _k;
    Scoring _sc;

    // Double-buffered per-PE registers.
    std::vector<i32> _hCur, _hNext;
    std::vector<i32> _eCur, _eNext;
    std::vector<i32> _fCur, _fNext;
};

} // namespace genax

#endif // GENAX_SILLA_SILLA_SCORE_HH
