/**
 * @file
 * AVX2 tier of the Silla traceback streaming cycle kernel (compiled
 * with -mavx2; only dispatched to on CPUs that support it).
 *
 * Eight d-adjacent PEs per vector, all lean rows of one cycle per
 * call so the broadcast constants are set up once. All five lanes
 * (H, E, F and the two gap-run counters) are updated with the same
 * i32 arithmetic and tie-breaks as the scalar lean path; the rare
 * per-cell outcomes — pointer-trail adoptions and cells reaching the
 * caller's best score — are extracted through movemasks and appended
 * to the event list, so the fast path is branch-free.
 */

#include "silla/silla_stream_row.hh"

#include <algorithm>
#include <cstring>

#include <immintrin.h>

namespace genax::detail {

void
sillaStreamCycleAvx2(const SillaCycleCtx &x, u32 iBegin, u32 iEnd,
                     u32 dBegin, std::vector<SillaRowEvent> &events)
{
    const u32 stride = x.k + 1;
    const __m256i v_open_ext = _mm256_set1_epi32(x.openExt);
    const __m256i v_gap_ext = _mm256_set1_epi32(x.gapExt);
    const __m256i v_one = _mm256_set1_epi32(1);
    const __m256i v_match = _mm256_set1_epi32(x.match);
    const __m256i v_mis = _mm256_set1_epi32(-x.mismatch);
    // threshold >= 0, so threshold - 1 cannot underflow; h > t-1 is
    // exactly h >= threshold.
    const __m256i v_thr = _mm256_set1_epi32(x.threshold - 1);

    for (u32 i = iBegin; i <= iEnd; ++i) {
        const u64 cell_r = x.c - i;
        const u32 d_end = static_cast<u32>(
            std::min<u64>(x.k, x.c - i));
        if (d_end < dBegin)
            break; // spans only shrink as i grows
        const size_t row = static_cast<size_t>(i) * stride;
        const u8 r_char = x.r[cell_r - 1];
        const __m256i v_r = _mm256_set1_epi32(r_char);

        u32 d = dBegin;
        for (; d + 7 <= d_end; d += 8) {
            const size_t self = row + d;
            const size_t src_e = self - stride;
            const size_t src_f = self - 1;

            // E lane: vertical sources, d-contiguous in the row
            // above.
            const __m256i h_e = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x.hCur + src_e));
            const __m256i e_e = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x.eCur + src_e));
            const __m256i open_e = _mm256_sub_epi32(h_e, v_open_ext);
            const __m256i ext_e = _mm256_sub_epi32(e_e, v_gap_ext);
            // Extension wins only strictly (open preferred on ties).
            const __m256i m_e = _mm256_cmpgt_epi32(ext_e, open_e);
            const __m256i e = _mm256_blendv_epi8(open_e, ext_e, m_e);
            const __m256i run_src_e = _mm256_cvtepu16_epi32(
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    x.eRunCur + src_e)));
            const __m256i e_run = _mm256_blendv_epi8(
                v_one, _mm256_add_epi32(run_src_e, v_one), m_e);

            // F lane: horizontal sources, shifted one cell left.
            const __m256i h_f = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x.hCur + src_f));
            const __m256i f_f = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x.fCur + src_f));
            const __m256i open_f = _mm256_sub_epi32(h_f, v_open_ext);
            const __m256i ext_f = _mm256_sub_epi32(f_f, v_gap_ext);
            const __m256i m_f = _mm256_cmpgt_epi32(ext_f, open_f);
            const __m256i f = _mm256_blendv_epi8(open_f, ext_f, m_f);
            const __m256i run_src_f = _mm256_cvtepu16_epi32(
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    x.fRunCur + src_f)));
            const __m256i f_run = _mm256_blendv_epi8(
                v_one, _mm256_add_epi32(run_src_f, v_one), m_f);

            // Diagonal: cell_q = c - d decreases across the lanes,
            // so the eight query characters are a byte-reversed
            // 8-byte load. (Lean lanes have cell_q >= 1, hence
            // c - d - 8 >= 0 for the block's base d.)
            const __m256i h_s = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x.hCur + self));
            u64 qb;
            std::memcpy(&qb, x.q + (x.c - d - 8), 8);
            const __m256i qv = _mm256_cvtepu8_epi32(
                _mm_cvtsi64_si128(
                    static_cast<long long>(__builtin_bswap64(qb))));
            const __m256i subv = _mm256_blendv_epi8(
                v_mis, v_match, _mm256_cmpeq_epi32(qv, v_r));
            const __m256i diag = _mm256_add_epi32(h_s, subv);

            // Adoption precedence: diagonal, then Ins (E), then Del
            // (F).
            const __m256i adopt_e = _mm256_cmpgt_epi32(e, diag);
            const __m256i h1 = _mm256_max_epi32(diag, e);
            const __m256i adopt_f = _mm256_cmpgt_epi32(f, h1);
            const __m256i h = _mm256_max_epi32(h1, f);

            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(x.eNext + self), e);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(x.fNext + self), f);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(x.hNext + self), h);
            // Runs are bounded by K <= 4095, far below the packus
            // saturation point.
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(x.eRunNext + self),
                _mm_packus_epi32(
                    _mm256_castsi256_si128(e_run),
                    _mm256_extracti128_si256(e_run, 1)));
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(x.fRunNext + self),
                _mm_packus_epi32(
                    _mm256_castsi256_si128(f_run),
                    _mm256_extracti128_si256(f_run, 1)));

            const u32 am = static_cast<u32>(
                _mm256_movemask_ps(_mm256_castsi256_ps(
                    _mm256_or_si256(adopt_e, adopt_f))));
            const u32 cm = static_cast<u32>(
                _mm256_movemask_ps(_mm256_castsi256_ps(
                    _mm256_cmpgt_epi32(h, v_thr))));
            const u32 bits = am | cm;
            if (bits) {
                alignas(32) i32 run_e[8], run_f[8], del[8];
                _mm256_store_si256(
                    reinterpret_cast<__m256i *>(run_e), e_run);
                _mm256_store_si256(
                    reinterpret_cast<__m256i *>(run_f), f_run);
                _mm256_store_si256(
                    reinterpret_cast<__m256i *>(del), adopt_f);
                for (u32 j = 0; j < 8; ++j) {
                    const u32 bit = 1u << j;
                    if (!(bits & bit))
                        continue;
                    u8 flags = 0;
                    u16 run = 0;
                    if (am & bit) {
                        flags |= kSillaRowAdopt;
                        if (del[j]) {
                            flags |= kSillaRowDel;
                            run = static_cast<u16>(run_f[j]);
                        } else {
                            run = static_cast<u16>(run_e[j]);
                        }
                    }
                    if (cm & bit)
                        flags |= kSillaRowConsider;
                    events.push_back({i, d + j, run, flags});
                }
            }
        }

        // Scalar tail for the last (d_end - d + 1) < 8 lanes — the
        // same arithmetic, lane by lane.
        for (; d <= d_end; ++d) {
            const size_t self = row + d;
            const size_t src_e = self - stride;
            const size_t src_f = self - 1;

            const i32 open_e = x.hCur[src_e] - x.openExt;
            const i32 ext_e = x.eCur[src_e] - x.gapExt;
            i32 e;
            u32 e_run;
            if (ext_e > open_e) {
                e = ext_e;
                e_run = x.eRunCur[src_e] + 1u;
            } else {
                e = open_e;
                e_run = 1;
            }

            const i32 open_f = x.hCur[src_f] - x.openExt;
            const i32 ext_f = x.fCur[src_f] - x.gapExt;
            i32 f;
            u32 f_run;
            if (ext_f > open_f) {
                f = ext_f;
                f_run = x.fRunCur[src_f] + 1u;
            } else {
                f = open_f;
                f_run = 1;
            }

            const u64 cell_q = x.c - d;
            const i32 diag =
                x.hCur[self] +
                (x.q[cell_q - 1] == r_char ? x.match : -x.mismatch);

            i32 h = diag;
            u8 flags = 0;
            u16 run = 0;
            if (e > h) {
                h = e;
                flags = kSillaRowAdopt;
                run = static_cast<u16>(e_run);
            }
            if (f > h) {
                h = f;
                flags = kSillaRowAdopt | kSillaRowDel;
                run = static_cast<u16>(f_run);
            }

            x.eNext[self] = e;
            x.fNext[self] = f;
            x.eRunNext[self] = static_cast<u16>(e_run);
            x.fRunNext[self] = static_cast<u16>(f_run);
            x.hNext[self] = h;
            if (h >= x.threshold)
                flags |= kSillaRowConsider;
            if (flags)
                events.push_back({i, d, run, flags});
        }
    }
}

} // namespace genax::detail
