/**
 * @file
 * Indel-only Silla automaton (Section III-A of the GenAx paper).
 *
 * States (i, d) with i + d <= K track insertions and deletions only;
 * a retro-comparison mismatch activates the insertion and deletion
 * successors (there is no substitution edge). The automaton computes
 * the minimum indel distance (Levenshtein distance with substitution
 * disallowed), which equals |R| + |Q| - 2 * LCS(R, Q).
 */

#ifndef GENAX_SILLA_INDEL_SILLA_HH
#define GENAX_SILLA_INDEL_SILLA_HH

#include <optional>
#include <vector>

#include "silla/silla.hh"

namespace genax {

/** Indel-only Silla automaton for a fixed edit bound K. */
class IndelSilla
{
  public:
    explicit IndelSilla(u32 k);

    /**
     * Minimum indel distance between r and q, if <= K.
     * The same automaton instance can process any pair of strings
     * (string independence).
     */
    std::optional<u32> distance(const Seq &r, const Seq &q);

    /**
     * Longest common subsequence length, if the strings are within
     * K indels: LCS = (|r| + |q| - indelDistance) / 2. This is the
     * Section VIII-C observation that Silla extends to other string
     * problems.
     */
    std::optional<u64> lcsLength(const Seq &r, const Seq &q);

    u32 k() const { return _k; }
    u64 stateCount() const { return SillaStateCount::indel(_k); }

    /** Cycles consumed by the last distance() call. */
    Cycle lastCycles() const { return _lastCycles; }

    /** Peak number of simultaneously active states in the last run. */
    u64 lastPeakActive() const { return _lastPeakActive; }

  private:
    size_t idx(u32 i, u32 d) const { return i * (_k + 1) + d; }

    u32 _k;
    Cycle _lastCycles = 0;
    u64 _lastPeakActive = 0;

    /** Active flags, double buffered; indexed by idx(i, d). */
    std::vector<u8> _cur;
    std::vector<u8> _next;
};

} // namespace genax

#endif // GENAX_SILLA_INDEL_SILLA_HH
