/**
 * @file
 * Vectorized inner row kernel for the Silla traceback machine's
 * streaming phase (internal to genax_silla).
 *
 * The kernel covers only the *lean interior* span of one PE row —
 * cells with i >= 1, d >= 1, cell_r >= 1 and cell_q >= 1, whose
 * sources all sit inside the live window — where the -inf guards of
 * the reference sweep are provably redundant. It computes the E/F/H
 * lanes and gap-run counters for the span and reports the rare
 * per-cell events (pointer-trail adoptions; cells whose H reaches the
 * caller's current best score) back through a compact event list, in
 * ascending-d order, so the caller can replay record pushes and
 * best-cell updates exactly as the scalar sweep would.
 *
 * The scalar lean path in silla_traceback.cc is the reference; the
 * AVX2 kernel is bit-identical to it by contract (same i32
 * arithmetic, same tie-breaks), so runtime tier selection — via
 * genax::simd::activeKernelTier(), honouring GENAX_FORCE_SCALAR and
 * the --kernel override — never changes any output.
 */

#ifndef GENAX_SILLA_SILLA_STREAM_ROW_HH
#define GENAX_SILLA_SILLA_STREAM_ROW_HH

#include <vector>

#include "common/types.hh"

namespace genax::detail {

/** Per-cycle inputs of the streaming kernel (raw spans into the
 *  traceback machine's double-buffered lane arrays). */
struct SillaCycleCtx
{
    const i32 *hCur;
    const i32 *eCur;
    const i32 *fCur;
    i32 *hNext;
    i32 *eNext;
    i32 *fNext;
    const u16 *eRunCur;
    u16 *eRunNext;
    const u16 *fRunCur;
    u16 *fRunNext;
    const u8 *r;   //!< reference string (row characters)
    const u8 *q;   //!< query string (for the diagonal comparisons)
    u64 c;         //!< streaming cycle
    u32 k;         //!< edit bound (stride is k + 1)
    i32 openExt;   //!< gapOpen + gapExtend
    i32 gapExt;    //!< gapExtend
    i32 match;     //!< substitution reward
    i32 mismatch;  //!< substitution penalty (magnitude)
    i32 threshold; //!< caller's best score at cycle entry (>= 0)
};

inline constexpr u8 kSillaRowAdopt = 1;    //!< cell latched a record
inline constexpr u8 kSillaRowDel = 2;      //!< ...from the F (Del) lane
inline constexpr u8 kSillaRowConsider = 4; //!< h >= threshold

/**
 * One reportable cell event. `run` is the adopted gap run length
 * (meaningful only with kSillaRowAdopt). The threshold filter is a
 * conservative prefilter: the caller's best score can only grow
 * within a cycle, so re-checking flagged cells against the live best
 * reproduces the scalar winner exactly (within one cycle, no two
 * distinct cells can tie on all of the best-cell keys — equal score,
 * r+q sum and r force equal (r, q), which pins (i, d)).
 */
struct SillaRowEvent
{
    u32 i;
    u32 d;
    u16 run;
    u8 flags;
};

#if defined(GENAX_SIMD_AVX2)
/**
 * AVX2 lean sweep of one streaming cycle: rows i in [iBegin, iEnd],
 * each over d in [dBegin, min(k, c - i)] (rows whose span is empty
 * are skipped). Appends events in (i asc, d asc) order. Call only
 * when the running CPU has AVX2.
 */
void sillaStreamCycleAvx2(const SillaCycleCtx &ctx, u32 iBegin,
                          u32 iEnd, u32 dBegin,
                          std::vector<SillaRowEvent> &events);
#endif

} // namespace genax::detail

#endif // GENAX_SILLA_SILLA_STREAM_ROW_HH
