#include "silla/silla_traceback.hh"

#include <algorithm>

#include "common/check.hh"

namespace genax {

namespace {

constexpr i32 kNegInf = INT32_MIN / 4;

/** How the closed (H) path entered a PE. */
enum class AdoptSrc : u8
{
    Anchor,
    Ins,
    Del,
};

/**
 * One pointer-trail record: latched by a PE whenever its closed path
 * changes identity (an E/F value beats the diagonal continuation).
 *
 * Hardware realization: the 2-bit traceback pointer plus the gap
 * run-length counter that rides along the E/F lanes (log2(K) bits),
 * latched together — so a multi-character gap is traced in one hop
 * without consulting the volatile gap lanes at collection time. This
 * mirrors the paper's match-count compression applied to gap runs.
 */
struct Adoption
{
    Cycle cycle;
    AdoptSrc src;
    u32 gapLen; // characters in the adopted gap run (0 for anchor)
};

} // namespace

SillaTraceback::SillaTraceback(u32 k, const Scoring &sc)
    : _k(k), _sc(sc)
{
    GENAX_CHECK(k <= kMaxSillaK, "Silla edit bound ", k,
                " exceeds the supported maximum ", kMaxSillaK);
    GENAX_CHECK(sc.match >= 0 && sc.mismatch > 0 && sc.gapOpen >= 0 &&
                    sc.gapExtend > 0,
                "degenerate scoring scheme: match=", sc.match,
                " mismatch=", sc.mismatch, " gapOpen=", sc.gapOpen,
                " gapExtend=", sc.gapExtend);
    const size_t n = peCount();
    _hCur.assign(n, kNegInf);
    _hNext.assign(n, kNegInf);
    _eCur.assign(n, kNegInf);
    _eNext.assign(n, kNegInf);
    _fCur.assign(n, kNegInf);
    _fNext.assign(n, kNegInf);
}

SillaAlignment
SillaTraceback::align(const Seq &r, const Seq &q)
{
    const u64 n = r.size(), m = q.size();
    const u64 max_cycle = std::min(n, m) + _k;

    std::fill(_hCur.begin(), _hCur.end(), kNegInf);
    std::fill(_eCur.begin(), _eCur.end(), kNegInf);
    std::fill(_fCur.begin(), _fCur.end(), kNegInf);

    // Gap run-length counters riding along the E/F lanes.
    std::vector<u32> eRunCur(peCount(), 0), eRunNext(peCount(), 0);
    std::vector<u32> fRunCur(peCount(), 0), fRunNext(peCount(), 0);

    // Pointer-trail records per PE, in adoption (cycle) order.
    std::vector<std::vector<Adoption>> recs(peCount());

    SillaAlignment res;
    res.score = 0;
    u64 best_rq = 0, best_r = 0;
    u32 win_i = 0, win_d = 0;
    Cycle best_cycle = 0;
    bool have_best = false;

    auto consider = [&](i32 score, u32 i, u32 d, u64 cell_r, u64 cell_q,
                        Cycle c) {
        if (score < res.score)
            return;
        const u64 rq = cell_r + cell_q;
        if (score > res.score || !have_best || rq < best_rq ||
            (rq == best_rq && cell_r < best_r)) {
            res.score = score;
            win_i = i;
            win_d = d;
            best_cycle = c;
            res.refEnd = cell_r;
            res.qryEnd = cell_q;
            best_rq = rq;
            best_r = cell_r;
            have_best = true;
        }
    };

    // --------------------------------------------- Phase 1: streaming
    for (u64 c = 0; c <= max_cycle; ++c) {
        std::fill(_hNext.begin(), _hNext.end(), kNegInf);
        std::fill(_eNext.begin(), _eNext.end(), kNegInf);
        std::fill(_fNext.begin(), _fNext.end(), kNegInf);

        for (u32 i = 0; i <= _k && i <= c; ++i) {
            const u64 cell_r = c - i;
            if (cell_r > n)
                continue;
            for (u32 d = 0; d <= _k && d <= c; ++d) {
                const u64 cell_q = c - d;
                if (cell_q > m)
                    continue;
                const size_t self = idx(i, d);

                i32 e = kNegInf;
                u32 e_run = 0;
                if (i >= 1 && cell_q >= 1) {
                    const size_t src = idx(i - 1, d);
                    i32 open = kNegInf, ext = kNegInf;
                    if (_hCur[src] != kNegInf)
                        open = _hCur[src] - _sc.gapOpen - _sc.gapExtend;
                    if (_eCur[src] != kNegInf)
                        ext = _eCur[src] - _sc.gapExtend;
                    if (ext > open) { // open preferred on ties
                        e = ext;
                        e_run = eRunCur[src] + 1;
                    } else if (open != kNegInf) {
                        e = open;
                        e_run = 1;
                    }
                }

                i32 f = kNegInf;
                u32 f_run = 0;
                if (d >= 1 && cell_r >= 1) {
                    const size_t src = idx(i, d - 1);
                    i32 open = kNegInf, ext = kNegInf;
                    if (_hCur[src] != kNegInf)
                        open = _hCur[src] - _sc.gapOpen - _sc.gapExtend;
                    if (_fCur[src] != kNegInf)
                        ext = _fCur[src] - _sc.gapExtend;
                    if (ext > open) {
                        f = ext;
                        f_run = fRunCur[src] + 1;
                    } else if (open != kNegInf) {
                        f = open;
                        f_run = 1;
                    }
                }

                i32 diag = kNegInf;
                if (cell_r >= 1 && cell_q >= 1 && _hCur[self] != kNegInf)
                    diag = _hCur[self] +
                           _sc.sub(r[cell_r - 1], q[cell_q - 1]);

                i32 h;
                if (c == 0 && i == 0 && d == 0) {
                    h = 0;
                    recs[self].push_back({c, AdoptSrc::Anchor, 0});
                } else {
                    // Precedence on ties: diagonal continuation, then
                    // insertion, then deletion (one adoption max).
                    h = diag;
                    AdoptSrc src = AdoptSrc::Anchor;
                    u32 run = 0;
                    bool adopted = false;
                    if (e > h) {
                        h = e;
                        src = AdoptSrc::Ins;
                        run = e_run;
                        adopted = true;
                    }
                    if (f > h) {
                        h = f;
                        src = AdoptSrc::Del;
                        run = f_run;
                        adopted = true;
                    }
                    if (adopted)
                        recs[self].push_back({c, src, run});
                }

                _eNext[self] = e;
                _fNext[self] = f;
                eRunNext[self] = e_run;
                fRunNext[self] = f_run;
                _hNext[self] = h;
                if (h != kNegInf)
                    consider(h, i, d, cell_r, cell_q, c);
            }
        }
        std::swap(_hCur, _hNext);
        std::swap(_eCur, _eNext);
        std::swap(_fCur, _fNext);
        std::swap(eRunCur, eRunNext);
        std::swap(fRunCur, fRunNext);
    }
    res.stats.streamCycles = max_cycle + 1;
    // Phases 2-4: best-score back-propagation, winner announcement,
    // path flagging — each sweeps the K-deep grid.
    res.stats.reduceCycles = 3 * _k;

    // ------------------------------------------- Phase 5: collection
    if (!have_best || res.score <= 0) {
        res.score = 0;
        res.refEnd = 0;
        res.qryEnd = 0;
        if (m > 0)
            res.cigar.push(CigarOp::SoftClip, static_cast<u32>(m));
        return res;
    }

    // The hardware registers reflect the machine state as of
    // machine_time. Consulting a PE whose pointer record was
    // overwritten after the cycle we need is a broken pointer trail:
    // re-execute phase 1 truncated to that cycle (Section IV-C).
    Cycle machine_time = max_cycle;
    bool first_segment = true;
    u64 path_pes = 0;

    auto rerun_to = [&](Cycle t) {
        ++res.stats.reruns;
        res.stats.rerunCycles += t + 1;
        machine_time = t;
    };

    // Last adoption of the PE at cycle <= t (the register view after
    // any necessary re-run).
    auto record_at = [&](size_t pe, Cycle t) -> const Adoption & {
        const auto &v = recs[pe];
        GENAX_CHECK(!v.empty(), "traceback into PE with no records");
        auto it = std::upper_bound(
            v.begin(), v.end(), t,
            [](Cycle c, const Adoption &a) { return c < a.cycle; });
        GENAX_CHECK(it != v.begin(), "no adoption at or before cycle ", t);
        return *(it - 1);
    };
    auto adopted_in = [&](size_t pe, Cycle lo_excl, Cycle hi_incl) {
        const auto &v = recs[pe];
        auto it = std::upper_bound(
            v.begin(), v.end(), lo_excl,
            [](Cycle c, const Adoption &a) { return c < a.cycle; });
        return it != v.end() && it->cycle <= hi_incl;
    };

    Cigar rev; // built back-to-front
    u32 pi = win_i, pd = win_d;
    Cycle t = best_cycle;
    for (;;) {
        const size_t pe = idx(pi, pd);
        if (!first_segment && adopted_in(pe, t, machine_time))
            rerun_to(t);
        first_segment = false;
        ++path_pes;

        const Adoption &rec = record_at(pe, t);
        // Diagonal (match/substitution) run back to the adoption,
        // re-expanded from the strings (match-count compression).
        for (Cycle c = t; c > rec.cycle; --c) {
            const u64 cell_r = c - pi, cell_q = c - pd;
            GENAX_CHECK(cell_r >= 1 && cell_q >= 1,
                         "diagonal step at matrix edge");
            rev.push(r[cell_r - 1] == q[cell_q - 1] ? CigarOp::Match
                                                    : CigarOp::Mismatch);
        }

        if (rec.src == AdoptSrc::Anchor) {
            GENAX_CHECK(rec.cycle == pi && rec.cycle == pd,
                         "anchor reached off the origin cell");
            break;
        }
        GENAX_CHECK(rec.gapLen >= 1, "edit adoption without a gap run");
        if (rec.src == AdoptSrc::Ins) {
            GENAX_CHECK(pi >= rec.gapLen, "Ins run exceeds grid");
            rev.push(CigarOp::Ins, rec.gapLen);
            pi -= rec.gapLen;
        } else {
            GENAX_CHECK(pd >= rec.gapLen, "Del run exceeds grid");
            rev.push(CigarOp::Del, rec.gapLen);
            pd -= rec.gapLen;
        }
        GENAX_CHECK(rec.cycle >= rec.gapLen, "gap run precedes cycle 0");
        t = rec.cycle - rec.gapLen;
    }

    rev.reverse();
    res.cigar = std::move(rev);
    if (res.qryEnd < m)
        res.cigar.push(CigarOp::SoftClip,
                       static_cast<u32>(m - res.qryEnd));
    res.stats.collectCycles = path_pes + _k;
    return res;
}

} // namespace genax
