#include "silla/silla_traceback.hh"

#include <algorithm>

#include "align/simd/dispatch.hh"
#include "common/check.hh"
#include "silla/silla_stream_row.hh"

namespace genax {

namespace {

constexpr i32 kNegInf = INT32_MIN / 4;

/** Initial subgrid bound of the event path. Typical short-read
 *  extension jobs carry only a handful of edits, so a small square
 *  almost always survives the outside-score cap on the first try;
 *  a miss escalates directly to a bound that provably succeeds. */
constexpr u32 kEventBound0 = 8;

} // namespace

SillaTraceback::SillaTraceback(u32 k, const Scoring &sc)
    : _k(k), _sc(sc)
{
    GENAX_CHECK(k <= kMaxSillaK, "Silla edit bound ", k,
                " exceeds the supported maximum ", kMaxSillaK);
    GENAX_CHECK(sc.match >= 0 && sc.mismatch > 0 && sc.gapOpen >= 0 &&
                    sc.gapExtend > 0,
                "degenerate scoring scheme: match=", sc.match,
                " mismatch=", sc.mismatch, " gapOpen=", sc.gapOpen,
                " gapExtend=", sc.gapExtend);
    const size_t n = peCount();
    _hCur.assign(n, kNegInf);
    _hNext.assign(n, kNegInf);
    _eCur.assign(n, kNegInf);
    _eNext.assign(n, kNegInf);
    _fCur.assign(n, kNegInf);
    _fNext.assign(n, kNegInf);
    _eRunCur.assign(n, 0);
    _eRunNext.assign(n, 0);
    _fRunCur.assign(n, 0);
    _fRunNext.assign(n, 0);
    _recs.resize(n);
}

SillaAlignment
SillaTraceback::align(const Seq &r, const Seq &q)
{
#if defined(GENAX_MODEL_ORACLE)
    return alignNaive(r, q);
#else
    return alignEvent(r, q);
#endif
}

SillaAlignment
SillaTraceback::alignNaive(const Seq &r, const Seq &q)
{
    return collect(r, q, _k, streamPhase(r, q, _k));
}

SillaAlignment
SillaTraceback::alignEvent(const Seq &r, const Seq &q)
{
    const u64 mn = std::min<u64>(r.size(), q.size());
    const i64 open_ext = i64{_sc.gapOpen} + _sc.gapExtend;
    u32 bound = std::min(_k, kEventBound0);
    for (;;) {
        const StreamBest best = streamPhase(r, q, bound);
        if (bound == _k)
            return collect(r, q, bound, best); // exact by definition
        // Any PE outside the subgrid spends more than `bound`
        // insertion or deletion characters, paying at least one gap
        // open plus `bound` extensions against at most min(n, m)
        // matches — so its H can never exceed this cap. A subgrid
        // best strictly above the cap also wins every tie-break
        // (ties require equal scores), making the sweep exact.
        const i64 cap =
            i64{_sc.match} * static_cast<i64>(mn) -
            (open_ext + i64{bound} * _sc.gapExtend);
        if (best.score > cap)
            return collect(r, q, bound, best);
        // Escalate to the smallest bound whose cap falls strictly
        // below the score already in hand; a larger subgrid can only
        // raise the best score, so the next sweep is final unless it
        // clamps to the (exact) full array.
        const i64 deficit = i64{_sc.match} * static_cast<i64>(mn) -
                            open_ext - best.score;
        const i64 need = deficit / _sc.gapExtend + 1;
        bound = static_cast<u32>(std::min<i64>(
            _k, std::max<i64>(i64{bound} + 1, need)));
    }
}

SillaTraceback::StreamBest
SillaTraceback::streamPhase(const Seq &r, const Seq &q, u32 bound)
{
    const u64 n = r.size(), m = q.size();
    const u64 max_cycle = std::min(n, m) + bound;
    const u32 stride = bound + 1;
    const auto at = [stride](u32 i, u32 d) {
        return static_cast<size_t>(i) * stride + d;
    };

    const size_t cells = static_cast<size_t>(stride) * stride;
    std::fill(_hCur.begin(), _hCur.begin() + cells, kNegInf);
    std::fill(_eCur.begin(), _eCur.begin() + cells, kNegInf);
    std::fill(_fCur.begin(), _fCur.begin() + cells, kNegInf);
    // Run counters and records are reused across calls; stale run
    // values are never read because a run is only consulted when the
    // corresponding E/F lane is live, and the lanes start at -inf.
    // Only the subgrid prefix is touched by this sweep (collection
    // never leaves the winner's componentwise-≤ rectangle), so only
    // that prefix needs clearing.
    for (size_t pe = 0; pe < cells; ++pe)
        _recs[pe].clear();

    StreamBest best;
    u64 best_rq = 0, best_r = 0;

    auto consider = [&](i32 score, u32 i, u32 d, u64 cell_r, u64 cell_q,
                        Cycle c) {
        if (score < best.score)
            return;
        const u64 rq = cell_r + cell_q;
        if (score > best.score || !best.haveBest || rq < best_rq ||
            (rq == best_rq && cell_r < best_r)) {
            best.score = score;
            best.winI = i;
            best.winD = d;
            best.bestCycle = c;
            best.refEnd = cell_r;
            best.qryEnd = cell_q;
            best_rq = rq;
            best_r = cell_r;
            best.haveBest = true;
        }
    };

    const i32 open_ext = _sc.gapOpen + _sc.gapExtend;
    const i32 gap_ext = _sc.gapExtend;

#if defined(GENAX_SIMD_AVX2)
    // Lean-interior rows can run on the vector row kernel; all tiers
    // are bit-identical by contract, so this is purely a speed choice
    // (and GENAX_FORCE_SCALAR / --kernel pin the scalar reference).
    const bool use_avx2 =
        simd::activeKernelTier() >= simd::KernelTier::Avx2;
#endif

    // --------------------------------------------- Phase 1: streaming
    for (u64 c = 0; c <= max_cycle; ++c) {
        // Live-cell window. Scores spread from PE (0,0) one
        // neighbour hop per cycle, so cells with i + d > c are still
        // at -inf (their sources at cycle c-1 have index sums
        // >= i + d - 1 > c - 1); cells with i < c - n or d < c - m
        // have run off a sequence end. Both kinds would compute and
        // store -inf with no adoption and no consider() call —
        // exactly what the fill already left there — so the clamped
        // loops visit precisely the cells the dense sweep did
        // anything observable for, in the same (i asc, d asc) order.
        const u32 i_lo =
            c > n ? static_cast<u32>(std::min<u64>(c - n, stride))
                  : 0;
        const u32 i_hi = static_cast<u32>(std::min<u64>(bound, c));
        const u32 d_lo =
            c > m ? static_cast<u32>(std::min<u64>(c - m, stride))
                  : 0;

        // Incremental frontier fill in place of whole-array resets.
        // Every cell of the cycle-c window is stored unconditionally,
        // and cycle c+1 reads only cells the cycle-c sweep wrote —
        // except the diagonal self-reads on the fresh anti-diagonal
        // i + d == c, which must see the exact -inf a dark PE holds.
        // (The E/F lanes of those cells are never read before being
        // written, so only H needs the reset.) Everything outside is
        // two-generation-stale garbage that provably stays unread.
        {
            const u32 fi_lo = std::max(
                i_lo, c > bound ? static_cast<u32>(c - bound) : 0);
            for (u32 i = fi_lo; i <= i_hi; ++i) {
                const u32 d = static_cast<u32>(c - i);
                if (d < d_lo)
                    break; // d only shrinks as i grows
                _hCur[at(i, d)] = kNegInf;
            }
        }

        // Guarded cell body for boundary PEs (i == 0, cell_r == 0,
        // d == 0): the reference semantics, -inf checks included.
        const auto cell = [&](u32 i, u32 d) {
            const u64 cell_r = c - i;
            const u64 cell_q = c - d;
            const size_t self = at(i, d);

            i32 e = kNegInf;
            u32 e_run = 0;
            if (i >= 1 && cell_q >= 1) {
                const size_t src = at(i - 1, d);
                i32 open = kNegInf, ext = kNegInf;
                if (_hCur[src] != kNegInf)
                    open = _hCur[src] - open_ext;
                if (_eCur[src] != kNegInf)
                    ext = _eCur[src] - gap_ext;
                if (ext > open) { // open preferred on ties
                    e = ext;
                    e_run = _eRunCur[src] + 1u;
                } else if (open != kNegInf) {
                    e = open;
                    e_run = 1;
                }
            }

            i32 f = kNegInf;
            u32 f_run = 0;
            if (d >= 1 && cell_r >= 1) {
                const size_t src = at(i, d - 1);
                i32 open = kNegInf, ext = kNegInf;
                if (_hCur[src] != kNegInf)
                    open = _hCur[src] - open_ext;
                if (_fCur[src] != kNegInf)
                    ext = _fCur[src] - gap_ext;
                if (ext > open) {
                    f = ext;
                    f_run = _fRunCur[src] + 1u;
                } else if (open != kNegInf) {
                    f = open;
                    f_run = 1;
                }
            }

            i32 diag = kNegInf;
            if (cell_r >= 1 && cell_q >= 1 && _hCur[self] != kNegInf)
                diag = _hCur[self] +
                       _sc.sub(r[cell_r - 1], q[cell_q - 1]);

            i32 h;
            if (c == 0 && i == 0 && d == 0) {
                h = 0;
                _recs[self].push_back({c, AdoptSrc::Anchor, 0});
            } else {
                // Precedence on ties: diagonal continuation, then
                // insertion, then deletion (one adoption max).
                h = diag;
                AdoptSrc src = AdoptSrc::Anchor;
                u32 run = 0;
                bool adopted = false;
                if (e > h) {
                    h = e;
                    src = AdoptSrc::Ins;
                    run = e_run;
                    adopted = true;
                }
                if (f > h) {
                    h = f;
                    src = AdoptSrc::Del;
                    run = f_run;
                    adopted = true;
                }
                if (adopted)
                    _recs[self].push_back({c, src, run});
            }

            _eNext[self] = e;
            _fNext[self] = f;
            _eRunNext[self] = static_cast<u16>(e_run);
            _fRunNext[self] = static_cast<u16>(f_run);
            _hNext[self] = h;
            if (h != kNegInf)
                consider(h, i, d, cell_r, cell_q, c);
        };

#if defined(GENAX_SIMD_AVX2)
        // Vector path: one kernel invocation sweeps every lean row of
        // the cycle (amortizing the broadcast setup that dominates a
        // per-row call), after all guarded boundary cells have run.
        // Hoisting the guarded cells ahead of the lean sweep cannot
        // change any output: within one cycle the best-cell update is
        // order-independent (see silla_stream_row.hh), and adoptions
        // land in disjoint per-PE record vectors, at most one per
        // cycle, so record order inside each vector stays by-cycle.
        if (use_avx2) {
            for (u32 i = i_lo; i <= i_hi; ++i) {
                const u32 d_hi =
                    static_cast<u32>(std::min<u64>(bound, c - i));
                if (i == 0 || c == i) {
                    for (u32 d = d_lo; d <= d_hi; ++d)
                        cell(i, d);
                } else if (d_lo == 0) {
                    cell(i, 0); // a lean row's guarded d == 0 cell
                }
            }
            const u32 lean_lo = std::max(i_lo, 1u);
            if (c >= 1 && lean_lo <= i_hi) {
                const u32 lean_hi = static_cast<u32>(
                    std::min<u64>(i_hi, c - 1));
                const u32 lean_d = std::max(d_lo, 1u);
                if (lean_lo <= lean_hi) {
                    const detail::SillaCycleCtx ctx{
                        _hCur.data(),    _eCur.data(),
                        _fCur.data(),    _hNext.data(),
                        _eNext.data(),   _fNext.data(),
                        _eRunCur.data(), _eRunNext.data(),
                        _fRunCur.data(), _fRunNext.data(),
                        r.data(),        q.data(),
                        c,               bound,
                        open_ext,        gap_ext,
                        _sc.match,       _sc.mismatch,
                        best.score};
                    _rowEvents.clear();
                    detail::sillaStreamCycleAvx2(
                        ctx, lean_lo, lean_hi, lean_d, _rowEvents);
                    for (const auto &ev : _rowEvents) {
                        const size_t self = at(ev.i, ev.d);
                        if (ev.flags & detail::kSillaRowAdopt)
                            _recs[self].push_back(
                                {c,
                                 (ev.flags & detail::kSillaRowDel)
                                     ? AdoptSrc::Del
                                     : AdoptSrc::Ins,
                                 ev.run});
                        if (ev.flags & detail::kSillaRowConsider)
                            consider(_hNext[self], ev.i, ev.d,
                                     c - ev.i, c - ev.d, c);
                    }
                }
            }
            std::swap(_hCur, _hNext);
            std::swap(_eCur, _eNext);
            std::swap(_fCur, _fNext);
            std::swap(_eRunCur, _eRunNext);
            std::swap(_fRunCur, _fRunNext);
            continue;
        }
#endif
        for (u32 i = i_lo; i <= i_hi; ++i) {
            const u64 cell_r = c - i;
            const u32 d_hi =
                static_cast<u32>(std::min<u64>(bound, c - i));
            if (i == 0 || cell_r == 0) {
                for (u32 d = d_lo; d <= d_hi; ++d)
                    cell(i, d);
                continue;
            }
            u32 d = d_lo;
            if (d == 0 && d <= d_hi) {
                cell(i, 0);
                d = 1;
            }
            // Lean interior: i >= 1 and d >= 1 with cell_r >= 1 and
            // cell_q >= 1 (d <= c - i implies c - d >= i >= 1), so
            // every H source — (i-1,d), (i,d-1) and, one diagonal
            // hop back, (i,d) itself — is inside the live window and
            // holds either a real score or the exact -inf fill.
            // Arithmetic on an exact -inf source yields a value
            // hundreds of millions below any reachable score, so the
            // unguarded max/compare chain picks the same winners,
            // latches the same adoptions and stores the same (real)
            // values as the guarded body.
            const size_t row = static_cast<size_t>(i) * stride;
            for (; d <= d_hi; ++d) {
                const size_t self = row + d;
                const size_t srcE = self - stride;
                const size_t srcF = self - 1;

                const i32 openE = _hCur[srcE] - open_ext;
                const i32 extE = _eCur[srcE] - gap_ext;
                i32 e;
                u32 e_run;
                if (extE > openE) { // open preferred on ties
                    e = extE;
                    e_run = _eRunCur[srcE] + 1u;
                } else {
                    e = openE;
                    e_run = 1;
                }

                const i32 openF = _hCur[srcF] - open_ext;
                const i32 extF = _fCur[srcF] - gap_ext;
                i32 f;
                u32 f_run;
                if (extF > openF) {
                    f = extF;
                    f_run = _fRunCur[srcF] + 1u;
                } else {
                    f = openF;
                    f_run = 1;
                }

                const u64 cell_q = c - d;
                const i32 diag =
                    _hCur[self] + _sc.sub(r[cell_r - 1],
                                          q[cell_q - 1]);

                i32 h = diag;
                AdoptSrc src = AdoptSrc::Anchor;
                u32 run = 0;
                bool adopted = false;
                if (e > h) {
                    h = e;
                    src = AdoptSrc::Ins;
                    run = e_run;
                    adopted = true;
                }
                if (f > h) {
                    h = f;
                    src = AdoptSrc::Del;
                    run = f_run;
                    adopted = true;
                }
                if (adopted)
                    _recs[self].push_back({c, src, run});

                _eNext[self] = e;
                _fNext[self] = f;
                _eRunNext[self] = static_cast<u16>(e_run);
                _fRunNext[self] = static_cast<u16>(f_run);
                _hNext[self] = h;
                consider(h, i, d, cell_r, cell_q, c);
            }
        }
        std::swap(_hCur, _hNext);
        std::swap(_eCur, _eNext);
        std::swap(_fCur, _fNext);
        std::swap(_eRunCur, _eRunNext);
        std::swap(_fRunCur, _fRunNext);
    }
    return best;
}

SillaAlignment
SillaTraceback::collect(const Seq &r, const Seq &q, u32 bound,
                        const StreamBest &best)
{
    const u64 n = r.size(), m = q.size();
    const u32 stride = bound + 1;
    const auto at = [stride](u32 i, u32 d) {
        return static_cast<size_t>(i) * stride + d;
    };

    SillaAlignment res;
    res.score = best.score;
    res.refEnd = best.refEnd;
    res.qryEnd = best.qryEnd;
    // Stats describe the K-deep hardware array regardless of how
    // small a subgrid sufficed to compute its outputs: the machine
    // streams min(n, m) + K + 1 cycles whether or not the far PEs
    // ever hold a live score.
    const Cycle full_cycle = std::min(n, m) + _k;
    res.stats.streamCycles = full_cycle + 1;
    // Phases 2-4: best-score back-propagation, winner announcement,
    // path flagging — each sweeps the K-deep grid.
    res.stats.reduceCycles = 3 * _k;

    // ------------------------------------------- Phase 5: collection
    if (!best.haveBest || best.score <= 0) {
        res.score = 0;
        res.refEnd = 0;
        res.qryEnd = 0;
        if (m > 0)
            res.cigar.push(CigarOp::SoftClip, static_cast<u32>(m));
        return res;
    }

    // The hardware registers reflect the machine state as of
    // machine_time. Consulting a PE whose pointer record was
    // overwritten after the cycle we need is a broken pointer trail:
    // re-execute phase 1 truncated to that cycle (Section IV-C).
    Cycle machine_time = full_cycle;
    bool first_segment = true;
    u64 path_pes = 0;

    auto rerun_to = [&](Cycle t) {
        ++res.stats.reruns;
        res.stats.rerunCycles += t + 1;
        machine_time = t;
    };

    // Last adoption of the PE at cycle <= t (the register view after
    // any necessary re-run).
    auto record_at = [&](size_t pe, Cycle t) -> const Adoption & {
        const auto &v = _recs[pe];
        GENAX_CHECK(!v.empty(), "traceback into PE with no records");
        auto it = std::upper_bound(
            v.begin(), v.end(), t,
            [](Cycle c, const Adoption &a) { return c < a.cycle; });
        GENAX_CHECK(it != v.begin(), "no adoption at or before cycle ", t);
        return *(it - 1);
    };
    auto adopted_in = [&](size_t pe, Cycle lo_excl, Cycle hi_incl) {
        const auto &v = _recs[pe];
        auto it = std::upper_bound(
            v.begin(), v.end(), lo_excl,
            [](Cycle c, const Adoption &a) { return c < a.cycle; });
        return it != v.end() && it->cycle <= hi_incl;
    };

    Cigar rev; // built back-to-front
    u32 pi = best.winI, pd = best.winD;
    Cycle t = best.bestCycle;
    for (;;) {
        const size_t pe = at(pi, pd);
        if (!first_segment && adopted_in(pe, t, machine_time))
            rerun_to(t);
        first_segment = false;
        ++path_pes;

        const Adoption &rec = record_at(pe, t);
        // Diagonal (match/substitution) run back to the adoption,
        // re-expanded from the strings (match-count compression).
        for (Cycle c = t; c > rec.cycle; --c) {
            const u64 cell_r = c - pi, cell_q = c - pd;
            GENAX_CHECK(cell_r >= 1 && cell_q >= 1,
                         "diagonal step at matrix edge");
            rev.push(r[cell_r - 1] == q[cell_q - 1] ? CigarOp::Match
                                                    : CigarOp::Mismatch);
        }

        if (rec.src == AdoptSrc::Anchor) {
            GENAX_CHECK(rec.cycle == pi && rec.cycle == pd,
                         "anchor reached off the origin cell");
            break;
        }
        GENAX_CHECK(rec.gapLen >= 1, "edit adoption without a gap run");
        if (rec.src == AdoptSrc::Ins) {
            GENAX_CHECK(pi >= rec.gapLen, "Ins run exceeds grid");
            rev.push(CigarOp::Ins, rec.gapLen);
            pi -= rec.gapLen;
        } else {
            GENAX_CHECK(pd >= rec.gapLen, "Del run exceeds grid");
            rev.push(CigarOp::Del, rec.gapLen);
            pd -= rec.gapLen;
        }
        GENAX_CHECK(rec.cycle >= rec.gapLen, "gap run precedes cycle 0");
        t = rec.cycle - rec.gapLen;
    }

    rev.reverse();
    res.cigar = std::move(rev);
    if (res.qryEnd < m)
        res.cigar.push(CigarOp::SoftClip,
                       static_cast<u32>(m - res.qryEnd));
    res.stats.collectCycles = path_pes + _k;
    return res;
}

} // namespace genax
