/**
 * @file
 * Silla traceback machine (Section IV-C of the GenAx paper).
 *
 * Extends the scoring machine with per-PE path records so the exact
 * sequence of edits of the winning extension can be recovered:
 *
 *  - Each PE records how its current closed (H) path last entered it
 *    (the 2-bit traceback pointer: anchor / insertion / deletion),
 *    when, and the length of the adopted gap run (a counter riding
 *    the E/F lanes, latched with the pointer). Diagonal
 *    match/substitution steps within a PE are run-length compressed
 *    ("count of matches") and re-expanded from the strings during
 *    collection.
 *
 * The hardware keeps only the registers' latest values; a pointer
 * trail is "broken" when a greedy PE overwrote its record after the
 * winning path left it. The machine then re-executes the streaming
 * phase truncated to the cycle the winning path left that PE and
 * resumes collection (Section IV-C). This model replays that
 * protocol — walking the path off per-PE adoption records while
 * tracking the machine-time the hardware registers would reflect —
 * and reports the re-execution counts and cycle costs that Figure 13
 * plots.
 */

#ifndef GENAX_SILLA_SILLA_TRACEBACK_HH
#define GENAX_SILLA_SILLA_TRACEBACK_HH

#include <vector>

#include "align/cigar.hh"
#include "align/scoring.hh"
#include "silla/silla.hh"

namespace genax {

/** Timing/behaviour statistics for one traceback run. */
struct SillaTraceStats
{
    Cycle streamCycles = 0;  //!< phase 1 (string streaming)
    Cycle reduceCycles = 0;  //!< phases 2-4 (K cycles each)
    Cycle collectCycles = 0; //!< phase 5 (trace shift-out)
    u32 reruns = 0;          //!< broken-pointer-trail re-executions
    Cycle rerunCycles = 0;   //!< cycles spent re-executing phase 1

    Cycle
    total() const
    {
        return streamCycles + reduceCycles + collectCycles + rerunCycles;
    }
};

/** Full alignment result from the traceback machine. */
struct SillaAlignment
{
    i32 score = 0;
    u64 refEnd = 0;  //!< reference characters consumed
    u64 qryEnd = 0;  //!< query characters consumed (rest soft-clipped)
    Cigar cigar;     //!< includes the trailing soft clip
    SillaTraceStats stats;
};

/** The Silla traceback machine for a fixed K and scoring scheme. */
class SillaTraceback
{
  public:
    SillaTraceback(u32 k, const Scoring &sc);

    /**
     * Align query q against reference r (both anchored at 0) and
     * recover the winning path.
     */
    SillaAlignment align(const Seq &r, const Seq &q);

    u32 k() const { return _k; }
    u64 peCount() const { return static_cast<u64>(_k + 1) * (_k + 1); }

  private:
    /** How the closed (H) path entered a PE. */
    enum class AdoptSrc : u8
    {
        Anchor,
        Ins,
        Del,
    };

    /**
     * One pointer-trail record: latched by a PE whenever its closed
     * path changes identity (an E/F value beats the diagonal
     * continuation).
     *
     * Hardware realization: the 2-bit traceback pointer plus the gap
     * run-length counter that rides along the E/F lanes (log2(K)
     * bits), latched together — so a multi-character gap is traced
     * in one hop without consulting the volatile gap lanes at
     * collection time. This mirrors the paper's match-count
     * compression applied to gap runs.
     */
    struct Adoption
    {
        Cycle cycle;
        AdoptSrc src;
        u32 gapLen; // characters in the adopted gap run (0 = anchor)
    };

    size_t idx(u32 i, u32 d) const { return i * (_k + 1) + d; }

    u32 _k;
    Scoring _sc;

    std::vector<i32> _hCur, _hNext, _eCur, _eNext, _fCur, _fNext;
    /** Gap run-length counters riding along the E/F lanes (the run
     *  is bounded by K <= kMaxSillaK, so u16 suffices). Reused
     *  across align() calls. */
    std::vector<u16> _eRunCur, _eRunNext, _fRunCur, _fRunNext;
    /** Pointer-trail records per PE, in adoption (cycle) order.
     *  Reused across align() calls so the per-PE vectors keep their
     *  capacity instead of reallocating every extension. */
    std::vector<std::vector<Adoption>> _recs;
};

} // namespace genax

#endif // GENAX_SILLA_SILLA_TRACEBACK_HH
