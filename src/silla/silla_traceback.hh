/**
 * @file
 * Silla traceback machine (Section IV-C of the GenAx paper).
 *
 * Extends the scoring machine with per-PE path records so the exact
 * sequence of edits of the winning extension can be recovered:
 *
 *  - Each PE records how its current closed (H) path last entered it
 *    (the 2-bit traceback pointer: anchor / insertion / deletion),
 *    when, and the length of the adopted gap run (a counter riding
 *    the E/F lanes, latched with the pointer). Diagonal
 *    match/substitution steps within a PE are run-length compressed
 *    ("count of matches") and re-expanded from the strings during
 *    collection.
 *
 * The hardware keeps only the registers' latest values; a pointer
 * trail is "broken" when a greedy PE overwrote its record after the
 * winning path left it. The machine then re-executes the streaming
 * phase truncated to the cycle the winning path left that PE and
 * resumes collection (Section IV-C). This model replays that
 * protocol — walking the path off per-PE adoption records while
 * tracking the machine-time the hardware registers would reflect —
 * and reports the re-execution counts and cycle costs that Figure 13
 * plots.
 */

#ifndef GENAX_SILLA_SILLA_TRACEBACK_HH
#define GENAX_SILLA_SILLA_TRACEBACK_HH

#include <vector>

#include "align/cigar.hh"
#include "align/scoring.hh"
#include "silla/silla.hh"
#include "silla/silla_stream_row.hh"

namespace genax {

/** Timing/behaviour statistics for one traceback run. */
struct SillaTraceStats
{
    Cycle streamCycles = 0;  //!< phase 1 (string streaming)
    Cycle reduceCycles = 0;  //!< phases 2-4 (K cycles each)
    Cycle collectCycles = 0; //!< phase 5 (trace shift-out)
    u32 reruns = 0;          //!< broken-pointer-trail re-executions
    Cycle rerunCycles = 0;   //!< cycles spent re-executing phase 1

    Cycle
    total() const
    {
        return streamCycles + reduceCycles + collectCycles + rerunCycles;
    }
};

/** Full alignment result from the traceback machine. */
struct SillaAlignment
{
    i32 score = 0;
    u64 refEnd = 0;  //!< reference characters consumed
    u64 qryEnd = 0;  //!< query characters consumed (rest soft-clipped)
    Cigar cigar;     //!< includes the trailing soft clip
    SillaTraceStats stats;
};

/** The Silla traceback machine for a fixed K and scoring scheme. */
class SillaTraceback
{
  public:
    SillaTraceback(u32 k, const Scoring &sc);

    /**
     * Align query q against reference r (both anchored at 0) and
     * recover the winning path.
     *
     * Two implementations produce bit-identical results (scores,
     * CIGARs, stats — including rerun accounting):
     *
     *  - the naive oracle sweeps the full (K+1)² grid every cycle,
     *    exactly as the hardware array would;
     *  - the event path sweeps only a dependency-closed (B+1)²
     *    subgrid (PE (i,d) reads only (i-1,d), (i,d-1) and itself,
     *    so the rectangle [0..B]² is closed under dependencies) and
     *    accepts the result when the subgrid's best score strictly
     *    beats the provable cap on any outside PE — a cell spending
     *    more than B insertion or deletion characters pays at least
     *    one gap open plus B extensions, so its score is at most
     *    match·min(n,m) − (gapOpen + gapExtend + B·gapExtend).
     *    On a miss it escalates B to the smallest bound whose cap
     *    falls below the score already in hand (at most one more
     *    sweep; B = K degenerates to the oracle).
     *
     * `-DGENAX_MODEL_ORACLE=ON` pins the naive oracle, mirroring the
     * seeding model's simulateNaive() switch.
     */
    SillaAlignment align(const Seq &r, const Seq &q);

    /** The full-grid lock-step oracle (always available to tests). */
    SillaAlignment alignNaive(const Seq &r, const Seq &q);
    /** The escalating-subgrid event path (always available). */
    SillaAlignment alignEvent(const Seq &r, const Seq &q);

    u32 k() const { return _k; }
    u64 peCount() const { return static_cast<u64>(_k + 1) * (_k + 1); }

  private:
    /** How the closed (H) path entered a PE. */
    enum class AdoptSrc : u8
    {
        Anchor,
        Ins,
        Del,
    };

    /**
     * One pointer-trail record: latched by a PE whenever its closed
     * path changes identity (an E/F value beats the diagonal
     * continuation).
     *
     * Hardware realization: the 2-bit traceback pointer plus the gap
     * run-length counter that rides along the E/F lanes (log2(K)
     * bits), latched together — so a multi-character gap is traced
     * in one hop without consulting the volatile gap lanes at
     * collection time. This mirrors the paper's match-count
     * compression applied to gap runs.
     */
    struct Adoption
    {
        Cycle cycle;
        AdoptSrc src;
        u32 gapLen; // characters in the adopted gap run (0 = anchor)
    };

    /** Winning cell of one streaming sweep, before collection. */
    struct StreamBest
    {
        i32 score = 0;
        u32 winI = 0, winD = 0;
        Cycle bestCycle = 0;
        u64 refEnd = 0, qryEnd = 0;
        bool haveBest = false;
    };

    /**
     * Phase 1 over the dependency-closed subgrid [0..bound]²
     * (bound == _k is the full array). Leaves the per-PE adoption
     * records addressed with stride bound + 1.
     */
    StreamBest streamPhase(const Seq &r, const Seq &q, u32 bound);

    /** Phases 2-5 off the records of the last streamPhase(bound). */
    SillaAlignment collect(const Seq &r, const Seq &q, u32 bound,
                           const StreamBest &best);

    size_t idx(u32 i, u32 d) const { return i * (_k + 1) + d; }

    u32 _k;
    Scoring _sc;

    std::vector<i32> _hCur, _hNext, _eCur, _eNext, _fCur, _fNext;
    /** Gap run-length counters riding along the E/F lanes (the run
     *  is bounded by K <= kMaxSillaK, so u16 suffices). Reused
     *  across align() calls. */
    std::vector<u16> _eRunCur, _eRunNext, _fRunCur, _fRunNext;
    /** Pointer-trail records per PE, in adoption (cycle) order.
     *  Reused across align() calls so the per-PE vectors keep their
     *  capacity instead of reallocating every extension. */
    std::vector<std::vector<Adoption>> _recs;
    /** Event staging for the vector row kernel, reused across
     *  sweeps. */
    std::vector<detail::SillaRowEvent> _rowEvents;
};

} // namespace genax

#endif // GENAX_SILLA_SILLA_TRACEBACK_HH
