#include "silla/silla_edit.hh"

#include <algorithm>

#include "common/check.hh"

namespace genax {

SillaEdit::SillaEdit(u32 k)
    : _k(k)
{
    GENAX_CHECK(k <= kMaxSillaK, "Silla edit bound ", k,
                " exceeds the supported maximum ", kMaxSillaK);
    const size_t n = static_cast<size_t>(k + 1) * (k + 1);
    _cur0.assign(n, 0);
    _cur1.assign(n, 0);
    _curW.assign(n, 0);
    _next0.assign(n, 0);
    _next1.assign(n, 0);
    _nextW.assign(n, 0);
}

std::optional<u32>
SillaEdit::distance(const Seq &r, const Seq &q)
{
    const u64 n = r.size(), m = q.size();
    _stats = {};
    if (n > m + _k || m > n + _k)
        return std::nullopt;

    std::fill(_cur0.begin(), _cur0.end(), 0);
    std::fill(_cur1.begin(), _cur1.end(), 0);
    std::fill(_curW.begin(), _curW.end(), 0);
    _cur0[idx(0, 0)] = 1;

    std::optional<u32> best;
    const u64 max_cycle = std::min(n, m) + _k;
    u64 c = 0;
    for (; c <= max_cycle; ++c) {
        std::fill(_next0.begin(), _next0.end(), 0);
        std::fill(_next1.begin(), _next1.end(), 0);
        std::fill(_nextW.begin(), _nextW.end(), 0);
        u64 active = 0;
        bool any = false;

        for (u32 i = 0; i <= _k; ++i) {
            for (u32 d = 0; i + d <= _k; ++d) {
                const size_t s = idx(i, d);

                // Wait states fire the merged layer-0 state one
                // position down the diagonal (the 3D collapse).
                if (_curW[s]) {
                    // A wait state only ever arms when the merged
                    // target (i+1, d+1) is a legal state, otherwise
                    // the write below would leave the half-square
                    // bit-mask region.
                    GENAX_DCHECK(i + d + 2 <= _k,
                                 "wait state outside the grid at (", i,
                                 ",", d, ") for K=", _k);
                    ++active;
                    any = true;
                    _next0[idx(i + 1, d + 1)] = 1;
                }

                for (u32 layer = 0; layer <= 1; ++layer) {
                    const u8 on = layer == 0 ? _cur0[s] : _cur1[s];
                    if (!on)
                        continue;
                    ++active;
                    if (c - i == n && c - d == m) {
                        // Accepting states sit on the anti-diagonal
                        // fixed by the length difference.
                        GENAX_DCHECK(n + i == m + d,
                                     "acceptance off the length "
                                     "diagonal: i=", i, " d=", d);
                        const u32 edits = i + d + layer;
                        GENAX_DCHECK(edits <= _k,
                                     "accepted with ", edits,
                                     " edits but K=", _k);
                        if (!best || edits < *best)
                            best = edits;
                        continue;
                    }
                    if (c - i > n || c - d > m)
                        continue; // overshot: can never accept
                    any = true;
                    if (retroCompare(r, q, c, i, d)) {
                        (layer == 0 ? _next0 : _next1)[s] = 1;
                        continue;
                    }
                    auto &lay = layer == 0 ? _next0 : _next1;
                    if (i + 1 + d + layer <= _k)
                        lay[idx(i + 1, d)] = 1; // insertion
                    if (i + d + 1 + layer <= _k)
                        lay[idx(i, d + 1)] = 1; // deletion
                    if (layer == 0) {
                        if (i + d + 1 <= _k)
                            _next1[s] = 1; // substitution to layer 1
                    } else {
                        // Substitution from layer 1: wait, then merge
                        // into layer 0 at (i+1, d+1).
                        if (i + d + 2 <= _k)
                            _nextW[s] = 1;
                    }
                }
            }
        }
        _stats.peakActive = std::max(_stats.peakActive, active);
        _stats.totalActivations += active;
        std::swap(_cur0, _next0);
        std::swap(_cur1, _next1);
        std::swap(_curW, _nextW);
        if (best || !any)
            break;
    }
    _stats.cycles = c;
    return best;
}

Silla3D::Silla3D(u32 k)
    : _k(k)
{
    GENAX_CHECK(k <= kMaxSillaK, "Silla edit bound ", k,
                " exceeds the supported maximum ", kMaxSillaK);
    const size_t n =
        static_cast<size_t>(k + 1) * (k + 1) * (k + 1);
    _cur.assign(n, 0);
    _next.assign(n, 0);
}

std::optional<u32>
Silla3D::distance(const Seq &r, const Seq &q)
{
    const u64 n = r.size(), m = q.size();
    _stats = {};
    if (n > m + _k || m > n + _k)
        return std::nullopt;

    std::fill(_cur.begin(), _cur.end(), 0);
    _cur[idx(0, 0, 0)] = 1;

    std::optional<u32> best;
    const u64 max_cycle = std::min(n, m) + _k;
    u64 c = 0;
    for (; c <= max_cycle; ++c) {
        std::fill(_next.begin(), _next.end(), 0);
        u64 active = 0;
        bool any = false;
        for (u32 s = 0; s <= _k; ++s) {
            for (u32 i = 0; i + s <= _k; ++i) {
                for (u32 d = 0; i + d + s <= _k; ++d) {
                    if (!_cur[idx(i, d, s)])
                        continue;
                    ++active;
                    if (c - i == n && c - d == m) {
                        const u32 edits = i + d + s;
                        if (!best || edits < *best)
                            best = edits;
                        continue;
                    }
                    if (c - i > n || c - d > m)
                        continue;
                    any = true;
                    if (retroCompare(r, q, c, i, d)) {
                        _next[idx(i, d, s)] = 1;
                        continue;
                    }
                    if (i + 1 + d + s <= _k)
                        _next[idx(i + 1, d, s)] = 1;
                    if (i + d + 1 + s <= _k)
                        _next[idx(i, d + 1, s)] = 1;
                    if (i + d + s + 1 <= _k)
                        _next[idx(i, d, s + 1)] = 1;
                }
            }
        }
        _stats.peakActive = std::max(_stats.peakActive, active);
        _stats.totalActivations += active;
        std::swap(_cur, _next);
        // Unlike the collapsed design (whose per-cycle edit totals
        // are monotone because the layer index is at most 1), the 3D
        // automaton can accept with FEWER total edits at a LATER
        // cycle: a substitution (s+1) replaces an insertion+deletion
        // pair (i+1, d+1) that would have finished one cycle
        // earlier. Run until no state is active.
        if (!any)
            break;
    }
    _stats.cycles = c;
    return best;
}

} // namespace genax
