/**
 * @file
 * Shared definitions for the Silla automata family.
 *
 * Silla (String Independent Local Levenshtein Automaton, Section III
 * of the GenAx paper) tracks the number and types of edits in its
 * states instead of pattern positions. A state (i, d) means "i
 * characters inserted into the query, d characters deleted from the
 * reference so far". At cycle c the state performs the retro
 * comparison R[c - i] == Q[c - d]: the streamed character positions
 * offset by the state's own indel counts.
 */

#ifndef GENAX_SILLA_SILLA_HH
#define GENAX_SILLA_SILLA_HH

#include "common/check.hh"
#include "common/dna.hh"
#include "common/types.hh"

namespace genax {

/**
 * Largest edit bound any Silla machine accepts. The (K+1)^2 state
 * grids and the cycle arithmetic (cycle - i with 64-bit cycles) are
 * safe far beyond this, but a bound this size already means a PE grid
 * of ~16M states — way past anything the paper's hardware (K <= 40)
 * or the tests configure, so a larger K is a corrupted configuration,
 * not a use case.
 */
constexpr u32 kMaxSillaK = 4095;

/**
 * Retro comparison for state (i, d) at cycle c (Figure 2a).
 *
 * Out-of-range positions compare as mismatching sentinels, which
 * makes the automaton explore trailing indels naturally.
 */
inline bool
retroCompare(const Seq &r, const Seq &q, u64 cycle, u32 i, u32 d)
{
    const u64 pr = cycle - i;
    const u64 pq = cycle - d;
    if (pr >= r.size() || pq >= q.size())
        return false;
    return r[pr] == q[pq];
}

/** State-count formulas from the paper, for reporting and tests. */
struct SillaStateCount
{
    /** Indel-only Silla: half square of side K+1 (Section III-A). */
    static u64
    indel(u32 k)
    {
        return static_cast<u64>(k + 1) * (k + 2) / 2;
    }

    /** Explicit 3D Silla: K+1 indel layers (Section III-B). */
    static u64
    explicit3d(u32 k)
    {
        u64 n = 0;
        for (u32 s = 0; s <= k; ++s) {
            // Layer s holds indel states with i + d <= K - s.
            n += static_cast<u64>(k - s + 1) * (k - s + 2) / 2;
        }
        return n;
    }

    /**
     * Collapsed 3D Silla: two regular layers plus wait states,
     * 3(K+1)^2/2 in the paper's counting (Section III-C).
     */
    static u64
    collapsed(u32 k)
    {
        return 3 * static_cast<u64>(k + 1) * (k + 1) / 2;
    }

    /** Classic Levenshtein automaton for pattern length n. */
    static u64
    levenshtein(u32 k, u64 n)
    {
        return (n + 1) * (k + 1);
    }
};

} // namespace genax

#endif // GENAX_SILLA_SILLA_HH
