/**
 * @file
 * Minimal SAM writer covering the subset of the spec emitted by the
 * GenAx pipeline (header @HD/@SQ/@PG lines and single-end alignment
 * records).
 *
 * CIGAR strings are passed pre-formatted so this module stays
 * independent of the alignment substrate.
 */

#ifndef GENAX_IO_SAM_HH
#define GENAX_IO_SAM_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"

namespace genax {

/** SAM FLAG bits used by the pipeline. */
enum SamFlag : u16
{
    kSamPaired = 0x1,
    kSamProperPair = 0x2,
    kSamUnmapped = 0x4,
    kSamMateUnmapped = 0x8,
    kSamReverse = 0x10,
    kSamMateReverse = 0x20,
    kSamRead1 = 0x40,
    kSamRead2 = 0x80,
    kSamSecondary = 0x100,
};

/** One SAM alignment line. */
struct SamRecord
{
    std::string qname;
    u16 flag = 0;
    std::string rname = "*";
    Pos pos = 0;              //!< 0-based; written as 1-based.
    u8 mapq = 0;
    std::string cigar = "*";
    std::string rnext = "*";  //!< mate reference ("=" when shared)
    Pos pnext = kNoPos;       //!< mate position, 0-based
    i64 tlen = 0;             //!< observed template length
    std::string seq = "*";
    std::string qual = "*";
    i32 score = 0;            //!< emitted as AS:i tag
    i32 editDistance = -1;    //!< emitted as NM:i tag when >= 0
};

/**
 * Encode numeric Phred scores as the SAM QUAL string (Phred+33),
 * optionally reversed (reverse-strand records store the qualities in
 * read-reversed order). Empty input encodes as "*" per the spec.
 */
std::string phredToAscii(const std::vector<u8> &qual,
                         bool reversed = false);

/** Reference-sequence description for the @SQ header line. */
struct SamRefSeq
{
    std::string name;
    u64 length = 0;
};

/** Parsed SAM content. */
struct SamFile
{
    std::vector<SamRefSeq> refs;    //!< from @SQ lines
    std::vector<SamRecord> records; //!< alignment lines
};

/**
 * Parse a SAM stream (the subset SamWriter emits: @HD/@SQ/@PG plus
 * 11 mandatory fields and AS/NM tags). Malformed lines are a
 * recoverable InvalidInput error.
 */
StatusOr<SamFile> readSam(std::istream &in);

/** Streaming SAM writer. */
class SamWriter
{
  public:
    /** Write header lines for the given reference sequences. */
    SamWriter(std::ostream &out, const std::vector<SamRefSeq> &refs,
              const std::string &program = "genax");

    /** Append one alignment record. */
    void write(const SamRecord &rec);

    /** Number of records written so far. */
    u64 count() const { return _count; }

  private:
    std::ostream &_out;
    u64 _count = 0;
    std::string _line; //!< reused record buffer (one write per line)
};

} // namespace genax

#endif // GENAX_IO_SAM_HH
