/**
 * @file
 * Streaming, error-recovering FASTA reader plus writer.
 *
 * FastaReader pulls one record at a time and never aborts on bad
 * input: malformed records (empty name, empty sequence, stray data
 * before the first header, garbage characters, duplicate names) are
 * skipped and counted up to ReaderOptions::maxMalformed, after which
 * the reader fails with a recoverable Status. Lowercase bases, IUPAC
 * ambiguity codes, CRLF line endings, blank lines and a missing final
 * newline are all tolerated.
 *
 * readFasta/readFastaFile are thin whole-file wrappers over the
 * streaming reader.
 */

#ifndef GENAX_IO_FASTA_HH
#define GENAX_IO_FASTA_HH

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "common/dna.hh"
#include "common/status.hh"
#include "io/reader.hh"

namespace genax {

/** One FASTA record: a name and a DNA sequence. */
struct FastaRecord
{
    std::string name;
    Seq seq;
};

/** Streaming FASTA parser with skip-and-count error recovery. */
class FastaReader
{
  public:
    explicit FastaReader(std::istream &in,
                         const ReaderOptions &opts = {});

    /**
     * Next well-formed record.
     *
     * Returns EndOfStream at clean end of input; IoError on stream
     * failure or injected IO fault; InvalidInput once more than
     * maxMalformed records had to be skipped.
     */
    StatusOr<FastaRecord> next();

    /**
     * Up to `max_records` next well-formed records — the streaming
     * pipeline's batch refill. Records are never split or reordered
     * across batches: the concatenation of successive batches is
     * exactly the sequence repeated next() calls would yield,
     * including the skip-and-count recovery behaviour. An empty
     * vector means clean end of input; a non-EndOfStream error from
     * the underlying parser fails the whole batch.
     */
    StatusOr<std::vector<FastaRecord>> nextBatch(u64 max_records);

    const ReaderStats &stats() const { return _stats; }
    const ReaderOptions &options() const { return _opts; }

  private:
    /** Fetch the next line into _line (CR trimmed); false at EOF. */
    bool fetchLine();

    /** Count one malformed record; error once over budget. */
    Status recordMalformed(u64 line, std::string message);

    std::istream &_in;
    ReaderOptions _opts;
    ReaderStats _stats;
    std::string _line;
    bool _lineBuffered = false; //!< _line holds an unconsumed line
    u64 _lineNo = 0;
    std::set<std::string> _seenNames;
};

/** Parse all records from a FASTA stream. When `stats` is non-null
 *  the reader's final statistics (records parsed, records skipped,
 *  kept diagnostics) are copied out, on success and on failure. */
StatusOr<std::vector<FastaRecord>>
readFasta(std::istream &in, const ReaderOptions &opts = {},
          ReaderStats *stats = nullptr);

/** Parse all records from a FASTA file (errno-annotated on open
 *  failure). */
StatusOr<std::vector<FastaRecord>>
readFastaFile(const std::string &path, const ReaderOptions &opts = {},
              ReaderStats *stats = nullptr);

/** Write records to a FASTA stream with the given line width.
 *  IoError when the stream goes bad (ENOSPC/EIO; the io.store.enospc
 *  fault site fires here in tests). */
Status writeFasta(std::ostream &out,
                  const std::vector<FastaRecord> &recs,
                  size_t line_width = 70);

} // namespace genax

#endif // GENAX_IO_FASTA_HH
