/**
 * @file
 * Minimal FASTA reader/writer.
 *
 * Handles multi-record files with arbitrary line wrapping. Non-ACGT
 * characters in sequence lines are encoded as 'A' (see charToBase).
 */

#ifndef GENAX_IO_FASTA_HH
#define GENAX_IO_FASTA_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/dna.hh"

namespace genax {

/** One FASTA record: a name and a DNA sequence. */
struct FastaRecord
{
    std::string name;
    Seq seq;
};

/** Parse all records from a FASTA stream. */
std::vector<FastaRecord> readFasta(std::istream &in);

/** Parse all records from a FASTA file. Fatal on open failure. */
std::vector<FastaRecord> readFastaFile(const std::string &path);

/** Write records to a FASTA stream with the given line width. */
void writeFasta(std::ostream &out, const std::vector<FastaRecord> &recs,
                size_t line_width = 70);

} // namespace genax

#endif // GENAX_IO_FASTA_HH
