/**
 * @file
 * Crash-safe on-disk store container.
 *
 * A *store* is a single file holding named binary sections behind a
 * fixed little-endian POD header: magic, store kind, format versions,
 * a section table, and a 64-bit streaming checksum per section (plus
 * one over the header and one over the table itself). Section
 * payloads start at 8-byte-aligned offsets so an mmap'ed store can be
 * aliased directly by POD views (the flat k-mer index's
 * {key, offset, count} entries in particular) with no copy and no
 * misaligned loads.
 *
 * Durability: StoreWriter emits the file through AtomicFileWriter —
 * temp file in the target directory, fsync the file, rename over the
 * destination, fsync the directory — so a crash at any instant leaves
 * either the old store or none, never a torn one. The corruption
 * model is verified from the outside: tools/store_chaos truncates at
 * every section boundary, bit-flips header/table/payload bytes and
 * kills the writer mid-save; every mutation must surface as a typed
 * Status from StoreFile::open, never a crash or a silently wrong
 * payload.
 *
 * Loading: StoreFile::open prefers a zero-copy MmapRegion and falls
 * back to an owned whole-file read when mapping fails (the
 * io.store.mmap_fail fault site drives that path in tests). All
 * structural validation and the full checksum walk happen at open —
 * a successfully opened store hands out infallible section spans.
 *
 * Fault sites (DESIGN.md "On-disk stores & durability"):
 * io.store.short_write / io.store.eio / io.store.enospc on the write
 * path, io.store.mmap_fail on the load path.
 */

#ifndef GENAX_IO_STORE_HH
#define GENAX_IO_STORE_HH

#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"

namespace genax {

// ------------------------------------------------------------------
// Checksum

/**
 * Streaming 64-bit checksum: the input is folded 8 bytes at a time
 * through the splitmix64 finalizer (the same mix the flat index's
 * slotOf uses), with the total length folded into the digest so
 * truncation to a word boundary still changes the value. The digest
 * is independent of how the input was split across update() calls.
 */
class StoreChecksum
{
  public:
    void update(const void *data, size_t bytes);
    u64 digest() const;

    /** splitmix64 finalizer — the shared bit mixer. */
    static u64
    mix(u64 h)
    {
        h += 0x9e3779b97f4a7c15ULL;
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
        return h ^ (h >> 31);
    }

  private:
    u64 _h = 0x243f6a8885a308d3ULL; //!< pi fraction, arbitrary start
    u64 _len = 0;
    u64 _pending = 0;      //!< partial trailing word, little-endian
    u32 _pendingBytes = 0; //!< valid bytes in _pending (0..7)
};

/** One-shot convenience over StoreChecksum. */
u64 storeChecksum(const void *data, size_t bytes);

// ------------------------------------------------------------------
// On-disk layout

/** Store container magic ("GXSTORE1"). */
inline constexpr char kStoreMagic[8] = {'G', 'X', 'S', 'T',
                                        'O', 'R', 'E', '1'};

/** Container format version this build reads and writes. */
inline constexpr u32 kStoreVersion = 1;

/** Section payload alignment within the file. */
inline constexpr u64 kStoreAlign = 8;

/** Sanity bound on the section count of a well-formed store. */
inline constexpr u64 kStoreMaxSections = u64{1} << 20;

/** Fixed 64-byte store header. Everything is little-endian POD;
 *  headerChecksum covers the bytes before it, tableChecksum covers
 *  the serialized section table. */
struct StoreHeader
{
    char magic[8];   //!< kStoreMagic
    char kind[8];    //!< store kind tag, NUL-padded (e.g. "GXSNAP")
    u32 version;     //!< container version (kStoreVersion)
    u32 kindVersion; //!< kind-specific format version
    u64 sectionCount;
    u64 sectionTableOffset; //!< == sizeof(StoreHeader)
    u64 fileBytes;          //!< total file size, padding included
    u64 tableChecksum;      //!< over the section-table bytes
    u64 headerChecksum;     //!< over this header minus this field
};
static_assert(sizeof(StoreHeader) == 64);
static_assert(std::is_trivially_copyable_v<StoreHeader>);

/** One section-table entry (40 bytes). */
struct StoreSectionEntry
{
    char name[16]; //!< NUL-padded section name (1..15 chars)
    u64 offset;    //!< payload offset from file start, 8-aligned
    u64 bytes;     //!< payload size (padding not included)
    u64 checksum;  //!< storeChecksum over the payload
};
static_assert(sizeof(StoreSectionEntry) == 40);
static_assert(std::is_trivially_copyable_v<StoreSectionEntry>);

// ------------------------------------------------------------------
// Atomic durable writes

/**
 * Write-new-then-rename file writer: all bytes go to
 * `<path>.tmp.<pid>` in the destination directory; commit() fsyncs
 * the temp file, renames it over `path` and fsyncs the directory.
 * Until commit() returns OK the destination is untouched, and the
 * destructor unlinks an uncommitted temp file, so every outcome is
 * "old file" or "new file" — never a torn mix.
 *
 * Not thread-safe; one writer per target path at a time (the pid in
 * the temp name only separates concurrent *processes*).
 */
class AtomicFileWriter
{
  public:
    AtomicFileWriter() = default;
    ~AtomicFileWriter();

    AtomicFileWriter(AtomicFileWriter &&other) noexcept;
    AtomicFileWriter &operator=(AtomicFileWriter &&other) noexcept;
    AtomicFileWriter(const AtomicFileWriter &) = delete;
    AtomicFileWriter &operator=(const AtomicFileWriter &) = delete;

    /** Open the temp file next to `path` (errno-annotated). */
    static StatusOr<AtomicFileWriter> create(const std::string &path);

    /** Append bytes to the temp file; consults the short_write /
     *  enospc fault sites and retries real short writes. */
    Status append(const void *data, size_t bytes);

    /** fsync + rename + directory fsync. After OK the new file is
     *  durably in place; after an error the old file is untouched
     *  and the temp file has been cleaned up. */
    Status commit();

    /** Drop the temp file without touching the destination. */
    void abandon();

    u64 bytesWritten() const { return _written; }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
    std::string _tmpPath;
    int _fd = -1;
    u64 _written = 0;
};

// ------------------------------------------------------------------
// mmap

/** RAII read-only memory mapping of a whole file. */
class MmapRegion
{
  public:
    MmapRegion() = default;
    ~MmapRegion();

    MmapRegion(MmapRegion &&other) noexcept;
    MmapRegion &operator=(MmapRegion &&other) noexcept;
    MmapRegion(const MmapRegion &) = delete;
    MmapRegion &operator=(const MmapRegion &) = delete;

    /** Map `path` read-only; IoError on any OS failure (and from the
     *  io.store.mmap_fail site), InvalidInput for an empty file. */
    static StatusOr<MmapRegion> map(const std::string &path);

    const u8 *data() const { return _data; }
    size_t size() const { return _size; }
    bool valid() const { return _data != nullptr; }

  private:
    u8 *_data = nullptr;
    size_t _size = 0;
};

// ------------------------------------------------------------------
// Writing stores

/**
 * Collects named sections (borrowed pointers — the caller keeps the
 * payloads alive until writeFile returns) and emits the whole store
 * atomically. Section order in the file is the order of addSection
 * calls; names must be unique, 1..15 bytes.
 */
class StoreWriter
{
  public:
    /** @param kind NUL-padded kind tag, 1..7 chars. */
    explicit StoreWriter(std::string_view kind, u32 kind_version = 1);

    void addSection(std::string name, const void *data, u64 bytes);

    /** Lay out, checksum and atomically write the store. */
    Status writeFile(const std::string &path) const;

  private:
    struct Pending
    {
        std::string name;
        const void *data;
        u64 bytes;
    };
    std::string _kind;
    u32 _kindVersion;
    std::vector<Pending> _pending;
};

// ------------------------------------------------------------------
// Reading stores

/**
 * A validated, opened store. open() maps the file (owned-read
 * fallback), checks the header, the section table and every section
 * checksum; afterwards section() is a bounds-checked name lookup over
 * known-good data. The object owns the backing bytes — spans handed
 * out stay valid for its lifetime (moves keep them valid: both the
 * mapping and the owned buffer are stable under move).
 */
class StoreFile
{
  public:
    struct Section
    {
        std::string name;
        u64 offset;
        u64 bytes;
        u64 checksum;
    };

    /**
     * Open and fully verify a store. `expect_kind` is matched against
     * the header when non-empty; pass "" to open any kind (the
     * --verify inspector). Corruption comes back as InvalidInput, OS
     * trouble as IoError.
     */
    static StatusOr<StoreFile> open(const std::string &path,
                                    std::string_view expect_kind,
                                    bool prefer_mmap = true);

    /** True when the backing is the zero-copy mapping rather than an
     *  owned read (the mmap_fail degraded path). */
    bool mapped() const { return _map.valid(); }

    std::string_view kind() const { return _kind; }
    u32 version() const { return _version; }
    u32 kindVersion() const { return _kindVersion; }
    u64 fileBytes() const { return _bytes.size(); }
    const std::string &path() const { return _path; }

    const std::vector<Section> &sections() const { return _sections; }

    /** Payload span by name; NotFound for an unknown name. */
    StatusOr<std::span<const u8>> section(std::string_view name) const;

    /** Payload span reinterpreted as an array of POD T; InvalidInput
     *  when the payload size is not a multiple of sizeof(T). */
    template <typename T>
    StatusOr<std::span<const T>>
    sectionAs(std::string_view name) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        static_assert(alignof(T) <= kStoreAlign);
        GENAX_TRY_ASSIGN(const std::span<const u8> raw, section(name));
        if (raw.size() % sizeof(T) != 0) {
            return invalidInputError(
                "store " + _path + ": section '" + std::string(name) +
                "' size " + std::to_string(raw.size()) +
                " is not a multiple of " + std::to_string(sizeof(T)));
        }
        return std::span<const T>(
            reinterpret_cast<const T *>(raw.data()),
            raw.size() / sizeof(T));
    }

  private:
    std::string _path;
    std::string _kind;
    u32 _version = 0;
    u32 _kindVersion = 0;
    MmapRegion _map;
    std::vector<u8> _owned;
    std::span<const u8> _bytes;
    std::vector<Section> _sections;
};

} // namespace genax

#endif // GENAX_IO_STORE_HH
