#include "io/fastq.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace genax {

namespace {

bool
getlineTrim(std::istream &in, std::string &line)
{
    if (!std::getline(in, line))
        return false;
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return true;
}

} // namespace

std::vector<FastqRecord>
readFastq(std::istream &in)
{
    std::vector<FastqRecord> out;
    std::string header, bases, plus, quals;
    while (getlineTrim(in, header)) {
        if (header.empty())
            continue;
        if (header[0] != '@')
            GENAX_FATAL("FASTQ: expected '@' header, got: ", header);
        if (!getlineTrim(in, bases) || !getlineTrim(in, plus) ||
            !getlineTrim(in, quals)) {
            GENAX_FATAL("FASTQ: truncated record: ", header);
        }
        if (plus.empty() || plus[0] != '+')
            GENAX_FATAL("FASTQ: expected '+' separator, got: ", plus);
        if (bases.size() != quals.size())
            GENAX_FATAL("FASTQ: sequence/quality length mismatch in ",
                        header);
        FastqRecord rec;
        const size_t end = header.find_first_of(" \t", 1);
        rec.name = header.substr(1, end == std::string::npos
                                        ? std::string::npos : end - 1);
        rec.seq = encode(bases);
        rec.qual.reserve(quals.size());
        for (char c : quals)
            rec.qual.push_back(static_cast<u8>(c - 33));
        out.push_back(std::move(rec));
    }
    return out;
}

std::vector<FastqRecord>
readFastqFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        GENAX_FATAL("cannot open FASTQ file: ", path);
    return readFastq(in);
}

void
writeFastq(std::ostream &out, const std::vector<FastqRecord> &recs)
{
    for (const auto &rec : recs) {
        out << '@' << rec.name << '\n' << decode(rec.seq) << "\n+\n";
        for (u8 q : rec.qual)
            out << static_cast<char>(q + 33);
        out << '\n';
    }
}

} // namespace genax
