#include "io/fastq.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/faultinject.hh"

namespace genax {

FastqReader::FastqReader(std::istream &in, const ReaderOptions &opts)
    : _in(in), _opts(opts)
{
}

bool
FastqReader::fetchLine()
{
    if (_lineBuffered) {
        _lineBuffered = false;
        return true;
    }
    if (!std::getline(_in, _line))
        return false;
    ++_lineNo;
    if (!_line.empty() && _line.back() == '\r')
        _line.pop_back();
    return true;
}

void
FastqReader::resync()
{
    while (fetchLine()) {
        if (!_line.empty() && _line[0] == '@') {
            _lineBuffered = true;
            return;
        }
    }
}

Status
FastqReader::recordMalformed(u64 line, std::string message)
{
    ++_stats.malformed;
    if (_stats.errors.size() < _opts.maxErrorsKept)
        _stats.errors.push_back({line, message});
    if (_stats.malformed > _opts.maxMalformed) {
        return invalidInputError(
            "FASTQ line " + std::to_string(line) + ": " + message +
            " (malformed-record budget " +
            std::to_string(_opts.maxMalformed) + " exhausted)");
    }
    return okStatus();
}

StatusOr<FastqRecord>
FastqReader::next()
{
    for (;;) {
        if (faultFires(fault::kFastqRecord)) {
            return ioError("injected fault at " +
                           std::string(fault::kFastqRecord) +
                           " near line " + std::to_string(_lineNo));
        }

        // Header line (blank lines between records are tolerated).
        std::string header;
        u64 header_line = 0;
        bool have_header = false;
        while (fetchLine()) {
            if (_line.empty())
                continue;
            header = _line;
            header_line = _lineNo;
            have_header = true;
            break;
        }
        if (_in.bad())
            return ioError("FASTQ stream read failure near line " +
                           std::to_string(_lineNo));
        if (!have_header)
            return endOfStream();

        if (header[0] != '@') {
            GENAX_TRY(recordMalformed(
                header_line, "expected '@' header, got: " + header));
            resync();
            continue;
        }

        // The three remaining record lines.
        std::string bases, plus, quals;
        bool complete = false;
        if (fetchLine()) {
            bases = _line;
            if (fetchLine()) {
                plus = _line;
                if (fetchLine()) {
                    quals = _line;
                    complete = true;
                }
            }
        }
        if (_in.bad())
            return ioError("FASTQ stream read failure near line " +
                           std::to_string(_lineNo));
        if (!complete) {
            GENAX_TRY(recordMalformed(header_line,
                                      "truncated record: " + header));
            return endOfStream();
        }

        std::string bad;
        if (plus.empty() || plus[0] != '+')
            bad = "expected '+' separator, got: " + plus;
        else if (bases.size() != quals.size())
            bad = "sequence/quality length mismatch (" +
                  std::to_string(bases.size()) + " vs " +
                  std::to_string(quals.size()) + ") in " + header;
        else if (bases.empty())
            bad = "record with empty sequence: " + header;
        if (bad.empty()) {
            for (const char c : bases) {
                if (!isIupac(c)) {
                    bad = "invalid character '" + std::string(1, c) +
                          "' in sequence of " + header;
                    break;
                }
            }
        }
        if (bad.empty()) {
            for (const char c : quals) {
                if (c < '!' || c > '~') {
                    bad = "quality character out of Phred+33 range in " +
                          header;
                    break;
                }
            }
        }

        FastqRecord rec;
        const size_t name_end = header.find_first_of(" \t", 1);
        rec.name = header.substr(1, name_end == std::string::npos
                                        ? std::string::npos
                                        : name_end - 1);
        if (bad.empty() && rec.name.empty())
            bad = "record with empty name";

        if (!bad.empty()) {
            GENAX_TRY(recordMalformed(header_line, std::move(bad)));
            // A bad separator usually means the 4-line framing
            // slipped; hunt for the next header. Other defects leave
            // the framing intact.
            if (plus.empty() || plus[0] != '+')
                resync();
            continue;
        }

        rec.seq = encode(bases);
        rec.qual.reserve(quals.size());
        for (const char c : quals)
            rec.qual.push_back(static_cast<u8>(c - 33));
        ++_stats.records;
        return rec;
    }
}

StatusOr<std::vector<FastqRecord>>
FastqReader::nextBatch(u64 max_records)
{
    std::vector<FastqRecord> out;
    out.reserve(static_cast<size_t>(std::min<u64>(max_records, 4096)));
    while (out.size() < max_records) {
        auto rec = next();
        if (!rec.ok()) {
            if (isEndOfStream(rec.status()))
                break;
            return rec.status();
        }
        out.push_back(std::move(rec).value());
    }
    return out;
}

StatusOr<std::vector<FastqRecord>>
readFastq(std::istream &in, const ReaderOptions &opts,
          ReaderStats *stats)
{
    FastqReader reader(in, opts);
    std::vector<FastqRecord> out;
    for (;;) {
        auto rec = reader.next();
        if (!rec.ok()) {
            if (stats)
                *stats = reader.stats();
            if (isEndOfStream(rec.status()))
                break;
            return rec.status();
        }
        out.push_back(std::move(rec).value());
    }
    return out;
}

StatusOr<std::vector<FastqRecord>>
readFastqFile(const std::string &path, const ReaderOptions &opts,
              ReaderStats *stats)
{
    std::ifstream in(path);
    if (!in)
        return ioErrorFromErrno("cannot open FASTQ file", path);
    return readFastq(in, opts, stats)
        .withContext("FASTQ file '" + path + "'");
}

Status
writeFastq(std::ostream &out, const std::vector<FastqRecord> &recs)
{
    for (const auto &rec : recs) {
        if (faultFires(fault::kStoreEnospc)) [[unlikely]]
            out.setstate(std::ios::failbit);
        out << '@' << rec.name << '\n' << decode(rec.seq) << "\n+\n";
        for (u8 q : rec.qual)
            out << static_cast<char>(q + 33);
        out << '\n';
        if (!out)
            return ioError(
                "failed writing FASTQ record '" + rec.name +
                "' (device full or write error)");
    }
    out.flush();
    if (!out)
        return ioError("failed flushing FASTQ output");
    return okStatus();
}

} // namespace genax
