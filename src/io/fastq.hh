/**
 * @file
 * Streaming, error-recovering FASTQ reader plus writer (4-line
 * records, Phred+33 qualities).
 *
 * FastqReader mirrors FastaReader's recovery policy: malformed
 * records (bad '@' header, missing '+' separator, sequence/quality
 * length mismatch, empty name or sequence, garbage characters,
 * truncation at EOF) are skipped and counted up to
 * ReaderOptions::maxMalformed before the reader fails. After a
 * malformed record the parser resynchronizes on the next plausible
 * '@' header line. Lowercase and IUPAC-ambiguity bases, CRLF and a
 * missing final newline are tolerated.
 */

#ifndef GENAX_IO_FASTQ_HH
#define GENAX_IO_FASTQ_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/dna.hh"
#include "common/status.hh"
#include "io/reader.hh"

namespace genax {

/** One FASTQ record. Quality is Phred scores (not ASCII-offset). */
struct FastqRecord
{
    std::string name;
    Seq seq;
    std::vector<u8> qual;
};

/** Streaming FASTQ parser with skip-and-count error recovery. */
class FastqReader
{
  public:
    explicit FastqReader(std::istream &in,
                         const ReaderOptions &opts = {});

    /**
     * Next well-formed record.
     *
     * Returns EndOfStream at clean end of input; IoError on stream
     * failure or injected IO fault; InvalidInput once more than
     * maxMalformed records had to be skipped.
     */
    StatusOr<FastqRecord> next();

    /**
     * Up to `max_records` next well-formed records — the streaming
     * pipeline's batch refill. Records are never split or reordered
     * across batches: the concatenation of successive batches is
     * exactly the sequence repeated next() calls would yield,
     * including resync-on-'@' recovery. An empty vector means clean
     * end of input; a non-EndOfStream error from the underlying
     * parser fails the whole batch.
     */
    StatusOr<std::vector<FastqRecord>> nextBatch(u64 max_records);

    const ReaderStats &stats() const { return _stats; }
    const ReaderOptions &options() const { return _opts; }

  private:
    bool fetchLine();

    /** Skip lines until one starts with '@' (left buffered). */
    void resync();

    /** Count one malformed record; error once over budget. */
    Status recordMalformed(u64 line, std::string message);

    std::istream &_in;
    ReaderOptions _opts;
    ReaderStats _stats;
    std::string _line;
    bool _lineBuffered = false;
    u64 _lineNo = 0;
};

/** Parse all records from a FASTQ stream. When `stats` is non-null
 *  the reader's final statistics (records parsed, records skipped,
 *  kept diagnostics) are copied out, on success and on failure. */
StatusOr<std::vector<FastqRecord>>
readFastq(std::istream &in, const ReaderOptions &opts = {},
          ReaderStats *stats = nullptr);

/** Parse all records from a FASTQ file (errno-annotated on open
 *  failure). */
StatusOr<std::vector<FastqRecord>>
readFastqFile(const std::string &path, const ReaderOptions &opts = {},
              ReaderStats *stats = nullptr);

/** Write records to a FASTQ stream (Phred+33). IoError when the
 *  stream goes bad (ENOSPC/EIO; the io.store.enospc fault site fires
 *  here in tests). */
Status writeFastq(std::ostream &out,
                  const std::vector<FastqRecord> &recs);

} // namespace genax

#endif // GENAX_IO_FASTQ_HH
