/**
 * @file
 * Minimal FASTQ reader/writer (4-line records, Phred+33 qualities).
 */

#ifndef GENAX_IO_FASTQ_HH
#define GENAX_IO_FASTQ_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/dna.hh"

namespace genax {

/** One FASTQ record. Quality is Phred scores (not ASCII-offset). */
struct FastqRecord
{
    std::string name;
    Seq seq;
    std::vector<u8> qual;
};

/** Parse all records from a FASTQ stream. Fatal on malformed input. */
std::vector<FastqRecord> readFastq(std::istream &in);

/** Parse all records from a FASTQ file. Fatal on open failure. */
std::vector<FastqRecord> readFastqFile(const std::string &path);

/** Write records to a FASTQ stream (Phred+33). */
void writeFastq(std::ostream &out, const std::vector<FastqRecord> &recs);

} // namespace genax

#endif // GENAX_IO_FASTQ_HH
