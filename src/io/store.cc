#include "io/store.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <set>
#include <utility>

#include "common/check.hh"
#include "common/faultinject.hh"

// The on-disk format is little-endian POD aliased in place; a
// big-endian port would need byte-swapping loads, not just a
// recompile.
static_assert(std::endian::native == std::endian::little,
              "the store layer assumes a little-endian host");

namespace genax {

// ------------------------------------------------------------------
// Checksum

void
StoreChecksum::update(const void *data, size_t bytes)
{
    const u8 *p = static_cast<const u8 *>(data);
    _len += bytes;
    // Finish a partial trailing word from the previous update.
    while (bytes > 0 && _pendingBytes > 0) {
        _pending |= static_cast<u64>(*p++) << (8 * _pendingBytes);
        --bytes;
        if (++_pendingBytes == 8) {
            _h = mix(_h ^ _pending);
            _pending = 0;
            _pendingBytes = 0;
        }
    }
    while (bytes >= 8) {
        u64 w;
        std::memcpy(&w, p, 8);
        _h = mix(_h ^ w);
        p += 8;
        bytes -= 8;
    }
    while (bytes > 0) {
        _pending |= static_cast<u64>(*p++) << (8 * _pendingBytes);
        ++_pendingBytes;
        --bytes;
    }
}

u64
StoreChecksum::digest() const
{
    u64 h = _h;
    if (_pendingBytes > 0)
        h = mix(h ^ _pending);
    // Folding the length in keeps zero-padding and truncation to a
    // word boundary from colliding with the unpadded input.
    return mix(h ^ _len);
}

u64
storeChecksum(const void *data, size_t bytes)
{
    StoreChecksum c;
    c.update(data, bytes);
    return c.digest();
}

// ------------------------------------------------------------------
// Kill-during-save test hook

namespace {

/** Crash plan for the store_chaos kill-during-save sweep. The
 *  variable is only ever set by the harness's forked children; a
 *  production process never sees it. */
struct KillPlan
{
    i64 afterWrites = -1; //!< die mid-way through the Nth ::write
    bool preRename = false;
    bool postRename = false;
};

const KillPlan &
killPlan()
{
    static const KillPlan plan = [] {
        KillPlan p;
        // genax-lint: allow(wall-clock): GENAX_STORE_KILL_AT is the store_chaos crash hook, read once and never set in production
        const char *env = std::getenv("GENAX_STORE_KILL_AT");
        if (env == nullptr)
            return p;
        const std::string_view v(env);
        if (v == "pre-rename")
            p.preRename = true;
        else if (v == "post-rename")
            p.postRename = true;
        else if (v.rfind("write:", 0) == 0)
            p.afterWrites = std::atoll(env + 6);
        return p;
    }();
    return plan;
}

std::atomic<i64> g_writeCalls{0};

/** Die abruptly mid-write when the crash plan says so: half the
 *  chunk reaches the kernel, then the process vanishes without
 *  unwinding — the torn-write crash the atomic protocol must make
 *  unobservable. */
void
maybeKillOnWrite(int fd, const u8 *p, size_t chunk)
{
    if (killPlan().afterWrites < 0) [[likely]]
        return;
    const i64 n =
        g_writeCalls.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n == killPlan().afterWrites) {
        if (chunk > 1) {
            // genax-lint: allow(unchecked-write): deliberate torn write immediately before _exit in the crash-sweep hook
            (void)::write(fd, p, chunk / 2);
        }
        _exit(137);
    }
}

/** Each ::write call moves at most this much, so the kill sweep gets
 *  a dense set of crash points even for few large sections. */
constexpr size_t kWriteChunk = size_t{256} * 1024;

u64
alignUp(u64 v)
{
    return (v + (kStoreAlign - 1)) & ~(kStoreAlign - 1);
}

StatusOr<std::vector<u8>>
readWholeFile(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return ioErrorFromErrno("cannot open file", path);
    struct ::stat sb;
    if (::fstat(fd, &sb) != 0) {
        Status st = ioErrorFromErrno("fstat failed", path);
        ::close(fd);
        return st;
    }
    std::vector<u8> out(static_cast<size_t>(sb.st_size));
    size_t got = 0;
    while (got < out.size()) {
        const ssize_t n =
            ::read(fd, out.data() + got, out.size() - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            Status st = ioErrorFromErrno("read failed", path);
            ::close(fd);
            return st;
        }
        if (n == 0)
            break; // raced a truncation; header checks will reject
        got += static_cast<size_t>(n);
    }
    out.resize(got);
    ::close(fd);
    return out;
}

} // namespace

// ------------------------------------------------------------------
// AtomicFileWriter

AtomicFileWriter::~AtomicFileWriter() { abandon(); }

AtomicFileWriter::AtomicFileWriter(AtomicFileWriter &&other) noexcept
    : _path(std::move(other._path)),
      _tmpPath(std::move(other._tmpPath)), _fd(other._fd),
      _written(other._written)
{
    other._fd = -1;
    other._tmpPath.clear();
}

AtomicFileWriter &
AtomicFileWriter::operator=(AtomicFileWriter &&other) noexcept
{
    if (this != &other) {
        abandon();
        _path = std::move(other._path);
        _tmpPath = std::move(other._tmpPath);
        _fd = other._fd;
        _written = other._written;
        other._fd = -1;
        other._tmpPath.clear();
    }
    return *this;
}

StatusOr<AtomicFileWriter>
AtomicFileWriter::create(const std::string &path)
{
    AtomicFileWriter w;
    w._path = path;
    w._tmpPath = path + ".tmp." + std::to_string(::getpid());
    w._fd = ::open(w._tmpPath.c_str(),
                   O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (w._fd < 0)
        return ioErrorFromErrno("cannot create temp file", w._tmpPath);
    return w;
}

Status
AtomicFileWriter::append(const void *data, size_t bytes)
{
    GENAX_CHECK(_fd >= 0, "append on a closed AtomicFileWriter");
    const u8 *p = static_cast<const u8 *>(data);
    while (bytes > 0) {
        const size_t chunk = std::min(bytes, kWriteChunk);
        if (faultFires(fault::kStoreEnospc)) [[unlikely]]
            return ioError("no space left writing " + _tmpPath +
                           " (injected ENOSPC, io.store.enospc)");
        if (faultFires(fault::kStoreShortWrite)) [[unlikely]]
            return ioError("short write on " + _tmpPath +
                           " (injected, io.store.short_write)");
        maybeKillOnWrite(_fd, p, chunk);
        const ssize_t n = ::write(_fd, p, chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ioErrorFromErrno("write failed", _tmpPath);
        }
        // A real short write is not an error — resume after the
        // bytes that landed.
        p += n;
        bytes -= static_cast<size_t>(n);
        _written += static_cast<u64>(n);
    }
    return okStatus();
}

Status
AtomicFileWriter::commit()
{
    GENAX_CHECK(_fd >= 0, "commit on a closed AtomicFileWriter");
    if (faultFires(fault::kStoreEio)) [[unlikely]] {
        abandon();
        return ioError("device error syncing " + _path +
                       " (injected EIO, io.store.eio)");
    }
    if (::fsync(_fd) != 0) {
        Status st = ioErrorFromErrno("fsync failed", _tmpPath);
        abandon();
        return st;
    }
    if (::close(_fd) != 0) {
        _fd = -1;
        Status st = ioErrorFromErrno("close failed", _tmpPath);
        abandon();
        return st;
    }
    _fd = -1;
    if (killPlan().preRename) [[unlikely]]
        _exit(137);
    if (::rename(_tmpPath.c_str(), _path.c_str()) != 0) {
        Status st = ioErrorFromErrno("rename failed", _tmpPath);
        abandon();
        return st;
    }
    if (killPlan().postRename) [[unlikely]]
        _exit(137);
    _tmpPath.clear();

    // The rename is only durable once the directory entry is synced.
    const size_t slash = _path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : _path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(),
                           O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd < 0)
        return ioErrorFromErrno("cannot open directory to sync", dir);
    if (::fsync(dfd) != 0) {
        Status st = ioErrorFromErrno("directory fsync failed", dir);
        ::close(dfd);
        return st;
    }
    if (::close(dfd) != 0)
        return ioErrorFromErrno("directory close failed", dir);
    return okStatus();
}

void
AtomicFileWriter::abandon()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    if (!_tmpPath.empty()) {
        ::unlink(_tmpPath.c_str());
        _tmpPath.clear();
    }
}

// ------------------------------------------------------------------
// MmapRegion

MmapRegion::~MmapRegion()
{
    if (_data != nullptr)
        ::munmap(_data, _size);
}

MmapRegion::MmapRegion(MmapRegion &&other) noexcept
    : _data(other._data), _size(other._size)
{
    other._data = nullptr;
    other._size = 0;
}

MmapRegion &
MmapRegion::operator=(MmapRegion &&other) noexcept
{
    if (this != &other) {
        if (_data != nullptr)
            ::munmap(_data, _size);
        _data = other._data;
        _size = other._size;
        other._data = nullptr;
        other._size = 0;
    }
    return *this;
}

StatusOr<MmapRegion>
MmapRegion::map(const std::string &path)
{
    if (faultFires(fault::kStoreMmapFail)) [[unlikely]]
        return ioError("mmap refused for " + path +
                       " (injected, io.store.mmap_fail)");
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return ioErrorFromErrno("cannot open file for mmap", path);
    struct ::stat sb;
    if (::fstat(fd, &sb) != 0) {
        Status st = ioErrorFromErrno("fstat failed", path);
        ::close(fd);
        return st;
    }
    if (sb.st_size == 0) {
        ::close(fd);
        return invalidInputError("cannot map empty file: " + path);
    }
    void *mem = ::mmap(nullptr, static_cast<size_t>(sb.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (mem == MAP_FAILED)
        return ioErrorFromErrno("mmap failed", path);
    MmapRegion r;
    r._data = static_cast<u8 *>(mem);
    r._size = static_cast<size_t>(sb.st_size);
    return r;
}

// ------------------------------------------------------------------
// StoreWriter

StoreWriter::StoreWriter(std::string_view kind, u32 kind_version)
    : _kind(kind), _kindVersion(kind_version)
{
    GENAX_CHECK(!_kind.empty() &&
                    _kind.size() < sizeof(StoreHeader{}.kind),
                "store kind tag must be 1..7 chars: '", _kind, "'");
}

void
StoreWriter::addSection(std::string name, const void *data, u64 bytes)
{
    GENAX_CHECK(!name.empty() &&
                    name.size() < sizeof(StoreSectionEntry{}.name),
                "section name must be 1..15 chars: '", name, "'");
    GENAX_CHECK(data != nullptr || bytes == 0,
                "null section payload: '", name, "'");
    for (const auto &s : _pending)
        GENAX_CHECK(s.name != name, "duplicate section: '", name, "'");
    _pending.push_back({std::move(name), data, bytes});
}

Status
StoreWriter::writeFile(const std::string &path) const
{
    const u64 n = _pending.size();
    GENAX_CHECK(n <= kStoreMaxSections, "too many sections: ", n);

    std::vector<StoreSectionEntry> table(n);
    u64 cur = alignUp(sizeof(StoreHeader) +
                      n * sizeof(StoreSectionEntry));
    for (u64 i = 0; i < n; ++i) {
        StoreSectionEntry &e = table[i];
        std::memset(&e, 0, sizeof(e));
        std::memcpy(e.name, _pending[i].name.data(),
                    _pending[i].name.size());
        e.offset = cur;
        e.bytes = _pending[i].bytes;
        e.checksum = storeChecksum(_pending[i].data, _pending[i].bytes);
        cur = alignUp(cur + e.bytes);
    }

    StoreHeader hdr{};
    std::memcpy(hdr.magic, kStoreMagic, sizeof(hdr.magic));
    std::memcpy(hdr.kind, _kind.data(), _kind.size());
    hdr.version = kStoreVersion;
    hdr.kindVersion = _kindVersion;
    hdr.sectionCount = n;
    hdr.sectionTableOffset = sizeof(StoreHeader);
    hdr.fileBytes = cur;
    hdr.tableChecksum =
        storeChecksum(table.data(), n * sizeof(StoreSectionEntry));
    hdr.headerChecksum =
        storeChecksum(&hdr, offsetof(StoreHeader, headerChecksum));

    GENAX_TRY_ASSIGN(AtomicFileWriter w,
                     AtomicFileWriter::create(path));
    GENAX_TRY(w.append(&hdr, sizeof(hdr)));
    GENAX_TRY(
        w.append(table.data(), n * sizeof(StoreSectionEntry)));
    static constexpr char zeros[kStoreAlign] = {};
    u64 pos = sizeof(StoreHeader) + n * sizeof(StoreSectionEntry);
    for (u64 i = 0; i < n; ++i) {
        if (table[i].offset > pos) {
            GENAX_TRY(w.append(zeros, table[i].offset - pos));
            pos = table[i].offset;
        }
        GENAX_TRY(w.append(_pending[i].data, _pending[i].bytes));
        pos += _pending[i].bytes;
    }
    if (hdr.fileBytes > pos)
        GENAX_TRY(w.append(zeros, hdr.fileBytes - pos));
    return w.commit();
}

// ------------------------------------------------------------------
// StoreFile

StatusOr<StoreFile>
StoreFile::open(const std::string &path, std::string_view expect_kind,
                bool prefer_mmap)
{
    StoreFile f;
    f._path = path;
    if (prefer_mmap) {
        // Zero-copy by preference; any mapping failure (including
        // the injected one) degrades to an owned whole-file read.
        auto m = MmapRegion::map(path);
        if (m.ok()) {
            f._map = std::move(*m);
            f._bytes = {f._map.data(), f._map.size()};
        }
    }
    if (!f._map.valid()) {
        GENAX_TRY_ASSIGN(f._owned, readWholeFile(path));
        f._bytes = {f._owned.data(), f._owned.size()};
    }

    const auto corrupt = [&path](const std::string &what) {
        return invalidInputError("store " + path + ": " + what);
    };
    const std::span<const u8> b = f._bytes;
    if (b.size() < sizeof(StoreHeader))
        return corrupt("file of " + std::to_string(b.size()) +
                       " bytes is too small for the header");
    StoreHeader hdr;
    std::memcpy(&hdr, b.data(), sizeof(hdr));
    if (std::memcmp(hdr.magic, kStoreMagic, sizeof(hdr.magic)) != 0)
        return corrupt("bad magic (not a GenAx store)");
    if (storeChecksum(&hdr, offsetof(StoreHeader, headerChecksum)) !=
        hdr.headerChecksum)
        return corrupt("header checksum mismatch");
    if (hdr.version != kStoreVersion)
        return corrupt("unsupported container version " +
                       std::to_string(hdr.version));
    const void *kind_end =
        std::memchr(hdr.kind, '\0', sizeof(hdr.kind));
    if (kind_end == nullptr || kind_end == hdr.kind)
        return corrupt("malformed kind tag");
    f._kind.assign(hdr.kind,
                   static_cast<const char *>(kind_end) - hdr.kind);
    if (!expect_kind.empty() && f._kind != expect_kind)
        return corrupt("store kind is '" + f._kind + "', want '" +
                       std::string(expect_kind) + "'");
    if (hdr.fileBytes != b.size())
        return corrupt("file is " + std::to_string(b.size()) +
                       " bytes but the header says " +
                       std::to_string(hdr.fileBytes) +
                       " (truncated or grown)");
    if (hdr.sectionTableOffset != sizeof(StoreHeader))
        return corrupt("unexpected section-table offset");
    if (hdr.sectionCount > kStoreMaxSections)
        return corrupt("implausible section count " +
                       std::to_string(hdr.sectionCount));
    const u64 tbytes =
        hdr.sectionCount * sizeof(StoreSectionEntry);
    if (sizeof(StoreHeader) + tbytes > b.size())
        return corrupt("section table extends past end of file");
    if (storeChecksum(b.data() + sizeof(StoreHeader), tbytes) !=
        hdr.tableChecksum)
        return corrupt("section-table checksum mismatch");

    f._version = hdr.version;
    f._kindVersion = hdr.kindVersion;
    std::set<std::string> seen;
    for (u64 i = 0; i < hdr.sectionCount; ++i) {
        StoreSectionEntry e;
        std::memcpy(&e,
                    b.data() + sizeof(StoreHeader) +
                        i * sizeof(StoreSectionEntry),
                    sizeof(e));
        const void *name_end =
            std::memchr(e.name, '\0', sizeof(e.name));
        if (name_end == nullptr || name_end == e.name)
            return corrupt("section " + std::to_string(i) +
                           ": malformed name");
        std::string name(
            e.name, static_cast<const char *>(name_end) - e.name);
        if (!seen.insert(name).second)
            return corrupt("duplicate section '" + name + "'");
        if (e.offset % kStoreAlign != 0)
            return corrupt("section '" + name +
                           "' is misaligned at offset " +
                           std::to_string(e.offset));
        if (e.offset > b.size() || e.bytes > b.size() - e.offset)
            return corrupt("section '" + name +
                           "' extends past end of file");
        if (storeChecksum(b.data() + e.offset, e.bytes) != e.checksum)
            return corrupt("section '" + name +
                           "' checksum mismatch (bit rot or torn "
                           "write)");
        f._sections.push_back(
            {std::move(name), e.offset, e.bytes, e.checksum});
    }
    return f;
}

StatusOr<std::span<const u8>>
StoreFile::section(std::string_view name) const
{
    for (const auto &s : _sections)
        if (s.name == name)
            return std::span<const u8>(_bytes.data() + s.offset,
                                       s.bytes);
    return notFoundError("store " + _path + ": no section '" +
                         std::string(name) + "'");
}

} // namespace genax
