/**
 * @file
 * Shared vocabulary of the streaming sequence readers: per-reader
 * options, parse-error records and skip/recovery accounting.
 *
 * The readers (FastaReader, FastqReader) implement the repository's
 * "degrade, don't die" policy at the input boundary: a malformed
 * record is skipped and counted — up to a configurable budget —
 * instead of killing a production run, while genuine environment
 * failures (unreadable stream, injected IO fault) surface as Status
 * errors the caller must handle.
 */

#ifndef GENAX_IO_READER_HH
#define GENAX_IO_READER_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace genax {

/** Options shared by the streaming FASTA/FASTQ readers. */
struct ReaderOptions
{
    /**
     * Malformed records to skip-and-count before the reader gives up
     * with InvalidInput. 0 = strict: the first malformed record is an
     * error. Production pipelines raise this (PipelineOptions).
     */
    u64 maxMalformed = 0;

    /** Parse errors retained in ReaderStats::errors (all are counted,
     *  only the first few kept, so a rotten file cannot OOM us). */
    u64 maxErrorsKept = 16;

    /** FASTA: treat a duplicate record name as a malformed record
     *  (duplicates would silently corrupt ContigMap coordinates). */
    bool rejectDuplicateNames = true;
};

/** One diagnosed input problem. */
struct ParseError
{
    u64 line = 0; //!< 1-based line number of the offending record
    std::string message;
};

/** Accumulated reader accounting. */
struct ReaderStats
{
    u64 records = 0;   //!< well-formed records returned
    u64 malformed = 0; //!< malformed records skipped
    std::vector<ParseError> errors; //!< first maxErrorsKept diagnoses
};

} // namespace genax

#endif // GENAX_IO_READER_HH
