#include "io/fasta.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace genax {

std::vector<FastaRecord>
readFasta(std::istream &in)
{
    std::vector<FastaRecord> out;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '>') {
            FastaRecord rec;
            // Name is the first whitespace-delimited token.
            const size_t end = line.find_first_of(" \t", 1);
            rec.name = line.substr(1, end == std::string::npos
                                          ? std::string::npos : end - 1);
            out.push_back(std::move(rec));
        } else {
            if (out.empty())
                GENAX_FATAL("FASTA: sequence data before first header");
            Seq &seq = out.back().seq;
            for (char c : line)
                seq.push_back(charToBase(c));
        }
    }
    return out;
}

std::vector<FastaRecord>
readFastaFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        GENAX_FATAL("cannot open FASTA file: ", path);
    return readFasta(in);
}

void
writeFasta(std::ostream &out, const std::vector<FastaRecord> &recs,
           size_t line_width)
{
    GENAX_ASSERT(line_width > 0, "FASTA line width must be positive");
    for (const auto &rec : recs) {
        out << '>' << rec.name << '\n';
        for (size_t i = 0; i < rec.seq.size(); i += line_width) {
            const size_t n = std::min(line_width, rec.seq.size() - i);
            for (size_t j = 0; j < n; ++j)
                out << baseToChar(rec.seq[i + j]);
            out << '\n';
        }
    }
}

} // namespace genax
