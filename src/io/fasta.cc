#include "io/fasta.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/faultinject.hh"
#include "common/logging.hh"

namespace genax {

FastaReader::FastaReader(std::istream &in, const ReaderOptions &opts)
    : _in(in), _opts(opts)
{
}

bool
FastaReader::fetchLine()
{
    if (_lineBuffered) {
        _lineBuffered = false;
        return true;
    }
    if (!std::getline(_in, _line))
        return false;
    ++_lineNo;
    if (!_line.empty() && _line.back() == '\r')
        _line.pop_back();
    return true;
}

Status
FastaReader::recordMalformed(u64 line, std::string message)
{
    ++_stats.malformed;
    if (_stats.errors.size() < _opts.maxErrorsKept)
        _stats.errors.push_back({line, message});
    if (_stats.malformed > _opts.maxMalformed) {
        return invalidInputError(
            "FASTA line " + std::to_string(line) + ": " + message +
            " (malformed-record budget " +
            std::to_string(_opts.maxMalformed) + " exhausted)");
    }
    return okStatus();
}

StatusOr<FastaRecord>
FastaReader::next()
{
    for (;;) {
        if (faultFires(fault::kFastaRecord)) {
            return ioError("injected fault at " +
                           std::string(fault::kFastaRecord) +
                           " near line " + std::to_string(_lineNo));
        }

        // Locate the next header, diagnosing stray data on the way.
        std::string bad;
        u64 bad_line = 0;
        bool have_header = false;
        u64 header_line = 0;
        while (fetchLine()) {
            if (_line.empty())
                continue;
            if (_line[0] == '>') {
                have_header = true;
                header_line = _lineNo;
                break;
            }
            if (bad.empty()) {
                bad = "sequence data before first header";
                bad_line = _lineNo;
            }
        }
        if (_in.bad())
            return ioError("FASTA stream read failure near line " +
                           std::to_string(_lineNo));
        if (!have_header) {
            if (!bad.empty())
                GENAX_TRY(recordMalformed(bad_line, std::move(bad)));
            return endOfStream();
        }
        if (!bad.empty()) {
            // The stray run is one malformed pseudo-record; the
            // header we just found still starts a fresh record.
            GENAX_TRY(recordMalformed(bad_line, std::move(bad)));
            bad.clear();
        }

        // Name is the first whitespace-delimited token.
        const size_t name_end = _line.find_first_of(" \t", 1);
        FastaRecord rec;
        rec.name = _line.substr(1, name_end == std::string::npos
                                       ? std::string::npos
                                       : name_end - 1);
        if (rec.name.empty()) {
            bad = "record with empty name";
            bad_line = header_line;
        }

        // Collect sequence lines until the next header or EOF.
        while (fetchLine()) {
            if (_line.empty())
                continue;
            if (_line[0] == '>') {
                _lineBuffered = true;
                break;
            }
            for (const char c : _line) {
                if (bad.empty() && !isIupac(c)) {
                    bad = "invalid character '" + std::string(1, c) +
                          "' in sequence of '" + rec.name + "'";
                    bad_line = _lineNo;
                }
                if (bad.empty())
                    rec.seq.push_back(charToBase(c));
            }
        }
        if (_in.bad())
            return ioError("FASTA stream read failure near line " +
                           std::to_string(_lineNo));

        if (bad.empty() && rec.seq.empty()) {
            bad = "record '" + rec.name + "' with empty sequence";
            bad_line = header_line;
        }
        if (bad.empty() && _opts.rejectDuplicateNames &&
            !_seenNames.insert(rec.name).second) {
            bad = "duplicate record name '" + rec.name + "'";
            bad_line = header_line;
        }
        if (!bad.empty()) {
            GENAX_TRY(recordMalformed(bad_line, std::move(bad)));
            continue; // skip this record, try the next one
        }
        ++_stats.records;
        return rec;
    }
}

StatusOr<std::vector<FastaRecord>>
FastaReader::nextBatch(u64 max_records)
{
    std::vector<FastaRecord> out;
    out.reserve(static_cast<size_t>(std::min<u64>(max_records, 4096)));
    while (out.size() < max_records) {
        auto rec = next();
        if (!rec.ok()) {
            if (isEndOfStream(rec.status()))
                break;
            return rec.status();
        }
        out.push_back(std::move(rec).value());
    }
    return out;
}

StatusOr<std::vector<FastaRecord>>
readFasta(std::istream &in, const ReaderOptions &opts,
          ReaderStats *stats)
{
    FastaReader reader(in, opts);
    std::vector<FastaRecord> out;
    for (;;) {
        auto rec = reader.next();
        if (!rec.ok()) {
            if (stats)
                *stats = reader.stats();
            if (isEndOfStream(rec.status()))
                break;
            return rec.status();
        }
        out.push_back(std::move(rec).value());
    }
    return out;
}

StatusOr<std::vector<FastaRecord>>
readFastaFile(const std::string &path, const ReaderOptions &opts,
              ReaderStats *stats)
{
    std::ifstream in(path);
    if (!in)
        return ioErrorFromErrno("cannot open FASTA file", path);
    return readFasta(in, opts, stats)
        .withContext("FASTA file '" + path + "'");
}

Status
writeFasta(std::ostream &out, const std::vector<FastaRecord> &recs,
           size_t line_width)
{
    GENAX_ASSERT(line_width > 0, "FASTA line width must be positive");
    for (const auto &rec : recs) {
        if (faultFires(fault::kStoreEnospc)) [[unlikely]]
            out.setstate(std::ios::failbit);
        out << '>' << rec.name << '\n';
        for (size_t i = 0; i < rec.seq.size(); i += line_width) {
            const size_t n = std::min(line_width, rec.seq.size() - i);
            for (size_t j = 0; j < n; ++j)
                out << baseToChar(rec.seq[i + j]);
            out << '\n';
        }
        if (!out)
            return ioError(
                "failed writing FASTA record '" + rec.name +
                "' (device full or write error)");
    }
    out.flush();
    if (!out)
        return ioError("failed flushing FASTA output");
    return okStatus();
}

} // namespace genax
