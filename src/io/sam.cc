#include "io/sam.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/faultinject.hh"

namespace genax {

StatusOr<SamFile>
readSam(std::istream &in)
{
    SamFile out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == '@') {
            if (line.rfind("@SQ", 0) == 0) {
                SamRefSeq ref;
                std::istringstream fields(line);
                std::string tok;
                while (fields >> tok) {
                    if (tok.rfind("SN:", 0) == 0)
                        ref.name = tok.substr(3);
                    else if (tok.rfind("LN:", 0) == 0)
                        ref.length = std::stoull(tok.substr(3));
                }
                if (ref.name.empty())
                    return invalidInputError("@SQ without SN: " + line);
                out.refs.push_back(std::move(ref));
            }
            continue;
        }
        std::istringstream fields(line);
        SamRecord rec;
        u64 pos1 = 0, pnext1 = 0;
        int mapq = 0, flag = 0;
        if (!(fields >> rec.qname >> flag >> rec.rname >> pos1 >>
              mapq >> rec.cigar >> rec.rnext >> pnext1 >> rec.tlen >>
              rec.seq >> rec.qual)) {
            return invalidInputError("malformed SAM record: " + line);
        }
        rec.flag = static_cast<u16>(flag);
        rec.mapq = static_cast<u8>(mapq);
        rec.pos = pos1 == 0 ? kNoPos : pos1 - 1;
        rec.pnext = pnext1 == 0 ? kNoPos : pnext1 - 1;
        std::string tag;
        while (fields >> tag) {
            if (tag.rfind("AS:i:", 0) == 0)
                rec.score = std::stoi(tag.substr(5));
            else if (tag.rfind("NM:i:", 0) == 0)
                rec.editDistance = std::stoi(tag.substr(5));
        }
        out.records.push_back(std::move(rec));
    }
    return out;
}

SamWriter::SamWriter(std::ostream &out, const std::vector<SamRefSeq> &refs,
                     const std::string &program)
    : _out(out)
{
    _out << "@HD\tVN:1.6\tSO:unsorted\n";
    for (const auto &ref : refs)
        _out << "@SQ\tSN:" << ref.name << "\tLN:" << ref.length << '\n';
    _out << "@PG\tID:" << program << "\tPN:" << program << '\n';
}

void
SamWriter::write(const SamRecord &rec)
{
    // An injected write fault models a failed device write; it
    // surfaces exactly like a real one, through the stream state the
    // caller must check after writing.
    if (faultFires(fault::kSamWrite)) [[unlikely]]
        _out.setstate(std::ios::failbit);
    const bool mapped = !(rec.flag & kSamUnmapped);
    _out << rec.qname << '\t' << rec.flag << '\t' << rec.rname << '\t'
         << (mapped ? rec.pos + 1 : 0) << '\t'
         << static_cast<int>(rec.mapq) << '\t' << rec.cigar << '\t'
         << rec.rnext << '\t'
         << (rec.pnext == kNoPos ? 0 : rec.pnext + 1) << '\t'
         << rec.tlen << '\t' << rec.seq << '\t' << rec.qual
         << "\tAS:i:" << rec.score;
    if (rec.editDistance >= 0)
        _out << "\tNM:i:" << rec.editDistance;
    _out << '\n';
    ++_count;
}

} // namespace genax
