#include "io/sam.hh"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/faultinject.hh"

namespace genax {

std::string
phredToAscii(const std::vector<u8> &qual, bool reversed)
{
    if (qual.empty())
        return "*";
    std::string out;
    out.resize(qual.size());
    const size_t n = qual.size();
    if (reversed) {
        for (size_t i = 0; i < n; ++i)
            out[i] = static_cast<char>(qual[n - 1 - i] + 33);
    } else {
        for (size_t i = 0; i < n; ++i)
            out[i] = static_cast<char>(qual[i] + 33);
    }
    return out;
}

StatusOr<SamFile>
readSam(std::istream &in)
{
    SamFile out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == '@') {
            if (line.rfind("@SQ", 0) == 0) {
                SamRefSeq ref;
                std::istringstream fields(line);
                std::string tok;
                while (fields >> tok) {
                    if (tok.rfind("SN:", 0) == 0)
                        ref.name = tok.substr(3);
                    else if (tok.rfind("LN:", 0) == 0)
                        ref.length = std::stoull(tok.substr(3));
                }
                if (ref.name.empty())
                    return invalidInputError("@SQ without SN: " + line);
                out.refs.push_back(std::move(ref));
            }
            continue;
        }
        std::istringstream fields(line);
        SamRecord rec;
        u64 pos1 = 0, pnext1 = 0;
        int mapq = 0, flag = 0;
        if (!(fields >> rec.qname >> flag >> rec.rname >> pos1 >>
              mapq >> rec.cigar >> rec.rnext >> pnext1 >> rec.tlen >>
              rec.seq >> rec.qual)) {
            return invalidInputError("malformed SAM record: " + line);
        }
        rec.flag = static_cast<u16>(flag);
        rec.mapq = static_cast<u8>(mapq);
        rec.pos = pos1 == 0 ? kNoPos : pos1 - 1;
        rec.pnext = pnext1 == 0 ? kNoPos : pnext1 - 1;
        std::string tag;
        while (fields >> tag) {
            if (tag.rfind("AS:i:", 0) == 0)
                rec.score = std::stoi(tag.substr(5));
            else if (tag.rfind("NM:i:", 0) == 0)
                rec.editDistance = std::stoi(tag.substr(5));
        }
        out.records.push_back(std::move(rec));
    }
    return out;
}

SamWriter::SamWriter(std::ostream &out, const std::vector<SamRefSeq> &refs,
                     const std::string &program)
    : _out(out)
{
    _out << "@HD\tVN:1.6\tSO:unsorted\n";
    for (const auto &ref : refs)
        _out << "@SQ\tSN:" << ref.name << "\tLN:" << ref.length << '\n';
    _out << "@PG\tID:" << program << "\tPN:" << program << '\n';
}

void
SamWriter::write(const SamRecord &rec)
{
    // An injected write fault models a failed device write; it
    // surfaces exactly like a real one, through the stream state the
    // caller must check after writing. The shared io.store.enospc
    // site fires here too, so one armed plan proves a full disk is
    // surfaced on the SAM path as well as the snapshot path.
    if (faultFires(fault::kSamWrite) ||
        faultFires(fault::kStoreEnospc)) [[unlikely]]
        _out.setstate(std::ios::failbit);
    // Build the record in a reused buffer and emit it with a single
    // stream write: formatting through operator<< per field was a
    // measurable host cost on large batches.
    const bool mapped = !(rec.flag & kSamUnmapped);
    std::string &line = _line;
    line.clear();
    line.reserve(rec.qname.size() + rec.rname.size() +
                 rec.cigar.size() + rec.rnext.size() + rec.seq.size() +
                 rec.qual.size() + 96);
    const auto num = [&line](i64 v) {
        char buf[24];
        const auto r = std::to_chars(buf, buf + sizeof(buf), v);
        line.append(buf, r.ptr);
    };
    line.append(rec.qname);
    line.push_back('\t');
    num(rec.flag);
    line.push_back('\t');
    line.append(rec.rname);
    line.push_back('\t');
    num(mapped ? static_cast<i64>(rec.pos) + 1 : 0);
    line.push_back('\t');
    num(rec.mapq);
    line.push_back('\t');
    line.append(rec.cigar);
    line.push_back('\t');
    line.append(rec.rnext);
    line.push_back('\t');
    num(rec.pnext == kNoPos ? 0 : static_cast<i64>(rec.pnext) + 1);
    line.push_back('\t');
    num(rec.tlen);
    line.push_back('\t');
    line.append(rec.seq);
    line.push_back('\t');
    line.append(rec.qual);
    line.append("\tAS:i:");
    num(rec.score);
    if (rec.editDistance >= 0) {
        line.append("\tNM:i:");
        num(rec.editDistance);
    }
    line.push_back('\n');
    _out.write(line.data(), static_cast<std::streamsize>(line.size()));
    ++_count;
}

} // namespace genax
