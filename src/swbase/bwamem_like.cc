#include "swbase/bwamem_like.hh"

#include <algorithm>

#include "common/parallel.hh"
#include "seed/smem_engine.hh"

namespace genax {

BwaMemLike::BwaMemLike(const Seq &ref, const AlignerConfig &cfg)
    : _ref(ref), _cfg(cfg),
      _index(std::make_unique<KmerIndex>(ref, cfg.k))
{
}

Mapping
BwaMemLike::alignRead(const Seq &read) const
{
    SmemEngine engine(*_index, _cfg.seeding);

    Mapping best;
    i32 second = INT32_MIN;
    u32 evaluated = 0;

    auto consider = [&](const Mapping &m) {
        ++evaluated;
        const bool better =
            !best.mapped || m.score > best.score ||
            (m.score == best.score &&
             ((best.reverse && !m.reverse) ||
              (best.reverse == m.reverse && m.pos < best.pos)));
        if (better) {
            if (best.mapped)
                second = std::max(second, best.score);
            best = m;
        } else {
            second = std::max(second, m.score);
        }
    };

    const ExtendFn kernel = [this](const PackedSeq &ref_window,
                                   const Seq &qry) {
        return gotohExtendKernel(ref_window, qry, _cfg.scoring,
                                 _cfg.band);
    };

    for (bool reverse : {false, true}) {
        const Seq oriented = reverse ? reverseComplement(read) : read;
        const auto smems = engine.seed(oriented);
        const auto anchors =
            makeAnchors(smems, 0, reverse, _cfg.anchors);
        for (const auto &anchor : anchors) {
            consider(extendAnchor(_ref, oriented, anchor, _cfg.scoring,
                                  _cfg.band, kernel));
        }
    }

    if (!best.mapped)
        return best;
    // Margin-based mapping quality.
    if (evaluated <= 1) {
        best.mapq = 60;
    } else if (second >= best.score) {
        best.mapq = 0;
    } else {
        best.mapq = static_cast<u8>(
            std::min<i32>(60, 6 * (best.score - second)));
    }
    return best;
}

std::vector<Mapping>
BwaMemLike::candidates(const Seq &read, u32 max_out) const
{
    SmemEngine engine(*_index, _cfg.seeding);
    const ExtendFn kernel = [this](const PackedSeq &ref_window,
                                   const Seq &qry) {
        return gotohExtendKernel(ref_window, qry, _cfg.scoring,
                                 _cfg.band);
    };

    std::vector<Mapping> out;
    for (bool reverse : {false, true}) {
        const Seq oriented = reverse ? reverseComplement(read) : read;
        const auto smems = engine.seed(oriented);
        const auto anchors =
            makeAnchors(smems, 0, reverse, _cfg.anchors);
        for (const auto &anchor : anchors) {
            Mapping m = extendAnchor(_ref, oriented, anchor,
                                     _cfg.scoring, _cfg.band, kernel);
            bool dup = false;
            for (const auto &prev : out) {
                if (prev.pos == m.pos && prev.reverse == m.reverse) {
                    dup = true;
                    break;
                }
            }
            if (!dup)
                out.push_back(std::move(m));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Mapping &a, const Mapping &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  if (a.reverse != b.reverse)
                      return !a.reverse;
                  return a.pos < b.pos;
              });
    if (out.size() > max_out)
        out.resize(max_out);
    return out;
}

std::vector<Mapping>
BwaMemLike::alignAll(const std::vector<Seq> &reads) const
{
    std::vector<Mapping> out(reads.size());
    parallelFor(reads.size(), _cfg.threads, [&](u64 lo, u64 hi) {
        for (u64 i = lo; i < hi; ++i)
            out[i] = alignRead(reads[i]);
    });
    return out;
}

} // namespace genax
