#include "swbase/bwamem_like.hh"

#include <algorithm>
#include <utility>

#include "align/simd/batch_score.hh"
#include "common/parallel.hh"
#include "seed/smem_engine.hh"

namespace genax {

namespace {

/**
 * One candidate after the score-only pass: the anchor, both extension
 * problems in self-contained form, and the batched score triples from
 * which the final mapping score and position are already known. Only
 * the winning candidate ever pays for a traceback.
 */
struct ScoredCandidate
{
    Anchor anchor;
    ExtendWindows win;
    BandedExtendScore leftHint;
    BandedExtendScore rightHint;
    i32 score = 0;
    u64 pos = 0;
};

/**
 * Seed both strands and build every candidate's extension windows
 * (scores not yet known). Candidate order matches the scalar path's
 * consider() order (forward strand first, anchors in makeAnchors
 * order).
 */
std::vector<ScoredCandidate>
buildReadCandidates(const SeedIndex &index, const Seq &ref,
                    const AlignerConfig &cfg, const Seq &read)
{
    SmemEngine engine(index, cfg.seeding);

    std::vector<ScoredCandidate> cands;
    for (bool reverse : {false, true}) {
        const Seq oriented = reverse ? reverseComplement(read) : read;
        const auto smems = engine.seed(oriented);
        const auto anchors =
            makeAnchors(smems, 0, reverse, cfg.anchors);
        for (const auto &anchor : anchors) {
            ScoredCandidate c;
            c.anchor = anchor;
            c.win = makeExtendWindows(ref, oriented, anchor, cfg.band);
            cands.push_back(std::move(c));
        }
    }
    return cands;
}

/**
 * Collect every extension of every candidate into `jobs`. The windows
 * are owned by `cands`, which must not reallocate afterwards. Each
 * slot records (candidate index, is_left) for the scatter.
 */
void
gatherJobs(const std::vector<ScoredCandidate> &cands, u32 base,
           std::vector<simd::ExtendJob> &jobs,
           std::vector<std::pair<u32, bool>> &slots)
{
    for (u32 i = 0; i < cands.size(); ++i) {
        const ExtendWindows &w = cands[i].win;
        if (w.hasRight) {
            jobs.push_back({&w.right, &w.rightQry});
            slots.emplace_back(base + i, false);
        }
        if (w.hasLeft) {
            jobs.push_back({&w.left, &w.leftQry});
            slots.emplace_back(base + i, true);
        }
    }
}

/** Once both hints are in place, a candidate's final mapping score
 *  and position are fully determined. */
void
applyHints(std::vector<ScoredCandidate> &cands,
           const AlignerConfig &cfg)
{
    for (auto &c : cands) {
        c.score = static_cast<i32>(c.anchor.seedLen()) *
                      cfg.scoring.match +
                  c.leftHint.score + c.rightHint.score;
        c.pos = c.anchor.refPos - c.leftHint.refEnd;
    }
}

/**
 * Seed, window and score one read's candidates with a per-read
 * batch — the single-read entry point's path.
 */
std::vector<ScoredCandidate>
scoreReadCandidates(const SeedIndex &index, const Seq &ref,
                    const AlignerConfig &cfg, const Seq &read)
{
    auto cands = buildReadCandidates(index, ref, cfg, read);
    std::vector<simd::ExtendJob> jobs;
    std::vector<std::pair<u32, bool>> slots;
    gatherJobs(cands, 0, jobs, slots);
    const auto scores =
        simd::scoreCandidateBatch(jobs, cfg.scoring, cfg.band);
    for (size_t s = 0; s < slots.size(); ++s) {
        ScoredCandidate &c = cands[slots[s].first];
        (slots[s].second ? c.leftHint : c.rightHint) = scores[s];
    }
    applyHints(cands, cfg);
    return cands;
}

/** Traceback both extensions of one candidate and compose. */
Mapping
finishCandidate(const ScoredCandidate &c, const AlignerConfig &cfg,
                u64 read_len)
{
    ExtensionResult right;
    if (c.win.hasRight)
        right = extendWithScoreHint(c.win.right, c.win.rightQry,
                                    cfg.scoring, cfg.band, c.rightHint);
    ExtensionResult left;
    if (c.win.hasLeft)
        left = extendWithScoreHint(c.win.left, c.win.leftQry,
                                   cfg.scoring, cfg.band, c.leftHint);
    return composeAnchorMapping(c.anchor, cfg.scoring, read_len, left,
                                right);
}

/**
 * Winner selection + traceback + MAPQ for one read's scored
 * candidates. The fold replicates the scalar path's serial consider()
 * on the (score, strand, position) triples the score-only pass
 * already determines; only the winner pays for a traceback.
 */
Mapping
selectAndFinish(const std::vector<ScoredCandidate> &cands,
                const AlignerConfig &cfg, u64 read_len)
{
    i64 best_idx = -1;
    i32 second = INT32_MIN;
    for (u32 i = 0; i < cands.size(); ++i) {
        if (best_idx < 0) {
            best_idx = i;
            continue;
        }
        const ScoredCandidate &c = cands[i];
        const ScoredCandidate &b = cands[static_cast<size_t>(best_idx)];
        const bool better =
            c.score > b.score ||
            (c.score == b.score &&
             ((b.anchor.reverse && !c.anchor.reverse) ||
              (b.anchor.reverse == c.anchor.reverse && c.pos < b.pos)));
        if (better) {
            second = std::max(second, b.score);
            best_idx = i;
        } else {
            second = std::max(second, c.score);
        }
    }

    if (best_idx < 0)
        return Mapping{};
    Mapping best = finishCandidate(cands[static_cast<size_t>(best_idx)],
                                   cfg, read_len);

    // Margin-based mapping quality.
    const u32 evaluated = static_cast<u32>(cands.size());
    if (evaluated <= 1) {
        best.mapq = 60;
    } else if (second >= best.score) {
        best.mapq = 0;
    } else {
        best.mapq = static_cast<u8>(
            std::min<i32>(60, 6 * (best.score - second)));
    }
    return best;
}

} // namespace

BwaMemLike::BwaMemLike(const Seq &ref, const AlignerConfig &cfg)
    : _ref(ref), _cfg(cfg),
      _index(std::make_unique<SeedIndex>(ref, cfg.k))
{
}

Mapping
BwaMemLike::alignRead(const Seq &read) const
{
    const auto cands = scoreReadCandidates(*_index, _ref, _cfg, read);
    return selectAndFinish(cands, _cfg, read.size());
}

std::vector<Mapping>
BwaMemLike::candidates(const Seq &read, u32 max_out) const
{
    const auto cands = scoreReadCandidates(*_index, _ref, _cfg, read);

    // Deduplicate by (position, strand) keeping the first in insertion
    // order, then sort by the scalar path's key. After deduplication
    // the key is unique per survivor, so the comparator is a strict
    // total order and the sort result is deterministic.
    std::vector<u32> keep;
    keep.reserve(cands.size());
    for (u32 i = 0; i < cands.size(); ++i) {
        bool dup = false;
        for (u32 j : keep) {
            if (cands[j].pos == cands[i].pos &&
                cands[j].anchor.reverse == cands[i].anchor.reverse) {
                dup = true;
                break;
            }
        }
        if (!dup)
            keep.push_back(i);
    }
    std::sort(keep.begin(), keep.end(), [&](u32 a, u32 b) {
        const ScoredCandidate &ca = cands[a];
        const ScoredCandidate &cb = cands[b];
        if (ca.score != cb.score)
            return ca.score > cb.score;
        if (ca.anchor.reverse != cb.anchor.reverse)
            return !ca.anchor.reverse;
        return ca.pos < cb.pos;
    });
    if (keep.size() > max_out)
        keep.resize(max_out);

    std::vector<Mapping> out;
    out.reserve(keep.size());
    for (u32 i : keep)
        out.push_back(finishCandidate(cands[i], _cfg, read.size()));
    return out;
}

std::vector<Mapping>
BwaMemLike::alignAll(const std::vector<Seq> &reads) const
{
    // Three-phase batch path. Scoring one read's handful of extension
    // jobs cannot fill a 16-lane vector group, so the batch is
    // aggregated across the whole read set: (1) seed and build
    // windows in parallel, (2) score every extension of every read in
    // one inter-sequence SIMD batch, (3) select winners and run their
    // tracebacks in parallel. Per-job scores are independent of batch
    // composition (the equivalence suite fuzzes exactly this), so the
    // output is byte-identical to per-read alignRead() calls at any
    // thread count and any dispatch tier.
    std::vector<std::vector<ScoredCandidate>> all(reads.size());
    parallelFor(reads.size(), _cfg.threads, [&](u64 lo, u64 hi) {
        for (u64 i = lo; i < hi; ++i)
            all[i] = buildReadCandidates(*_index, _ref, _cfg, reads[i]);
    });

    std::vector<simd::ExtendJob> jobs;
    std::vector<std::pair<u32, bool>> slots;
    std::vector<u32> bases(reads.size());
    u64 total_cands = 0;
    for (const auto &cands : all)
        total_cands += cands.size();
    jobs.reserve(2 * total_cands);
    slots.reserve(2 * total_cands);
    u32 base = 0;
    for (size_t i = 0; i < reads.size(); ++i) {
        bases[i] = base;
        gatherJobs(all[i], base, jobs, slots);
        base += static_cast<u32>(all[i].size());
    }
    const auto scores =
        simd::scoreCandidateBatch(jobs, _cfg.scoring, _cfg.band);
    for (size_t s = 0; s < slots.size(); ++s) {
        // Map the flat candidate index back to its read's list.
        const u32 flat = slots[s].first;
        const size_t read_idx = static_cast<size_t>(
            std::upper_bound(bases.begin(), bases.end(), flat) -
            bases.begin() - 1);
        ScoredCandidate &c = all[read_idx][flat - bases[read_idx]];
        (slots[s].second ? c.leftHint : c.rightHint) = scores[s];
    }

    std::vector<Mapping> out(reads.size());
    parallelFor(reads.size(), _cfg.threads, [&](u64 lo, u64 hi) {
        for (u64 i = lo; i < hi; ++i) {
            applyHints(all[i], _cfg);
            out[i] = selectAndFinish(all[i], _cfg, reads[i].size());
            all[i].clear();
            all[i].shrink_to_fit();
        }
    });
    return out;
}

} // namespace genax
