/**
 * @file
 * Paired-end alignment on top of the single-end aligner.
 *
 * Real Illumina runs are paired (FR orientation with a fragment-size
 * distribution); BWA-MEM exploits the pair constraint both to rank
 * placements and to rescue a repetitive mate via its uniquely-mapped
 * partner. This module adds the same capability: candidate mappings
 * for both mates are combined under a Gaussian insert-size prior and
 * the best-scoring consistent pair wins.
 */

#ifndef GENAX_SWBASE_PAIRED_HH
#define GENAX_SWBASE_PAIRED_HH

#include "swbase/bwamem_like.hh"

namespace genax {

/** Pairing model parameters. */
struct PairedConfig
{
    double insertMean = 300;  //!< expected fragment length
    double insertSd = 30;
    double maxZ = 4.0;        //!< |z| beyond which a pair is improper
    i32 unpairedPenalty = 17; //!< score cost of leaving mates unpaired
    u32 candidatesPerMate = 16;
};

/** A resolved read pair. */
struct PairMapping
{
    Mapping r1;
    Mapping r2;
    bool proper = false; //!< FR orientation within the insert window
    i64 templateLen = 0; //!< signed observed fragment length
};

/**
 * Resolve a mate pair from per-mate candidate lists (sorted by
 * descending score, as produced by BwaMemLike::candidates or
 * GenAxSystem::alignAllCandidates). Engine-independent: this is the
 * pairing stage that sits downstream of any single-end aligner.
 */
PairMapping resolvePair(const std::vector<Mapping> &c1,
                        const std::vector<Mapping> &c2,
                        const PairedConfig &cfg);

/** Paired-end resolver over a single-end aligner. */
class PairedAligner
{
  public:
    PairedAligner(const BwaMemLike &aligner, const PairedConfig &cfg = {})
        : _aligner(aligner), _cfg(cfg)
    {
    }

    /**
     * Align a mate pair (r2 given as sequenced, i.e. reverse strand
     * of the fragment for FR libraries).
     */
    PairMapping alignPair(const Seq &r1, const Seq &r2) const;

    /** Align a batch of pairs with the given worker-thread count
     *  (0 = all hardware threads); results are identical at any
     *  width. */
    std::vector<PairMapping>
    alignAllPairs(const std::vector<Seq> &r1s,
                  const std::vector<Seq> &r2s,
                  unsigned threads = 1) const;

    const PairedConfig &config() const { return _cfg; }

  private:
    /** Gaussian insert-size score penalty for a candidate pair. */
    i32 pairPenalty(const Mapping &a, const Mapping &b, bool &proper,
                    i64 &tlen) const;

    const BwaMemLike &_aligner;
    PairedConfig _cfg;
};

} // namespace genax

#endif // GENAX_SWBASE_PAIRED_HH
