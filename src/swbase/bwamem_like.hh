/**
 * @file
 * BWA-MEM-like CPU read aligner: the software baseline of Figure 15.
 *
 * The pipeline mirrors the structure of BWA-MEM as described in the
 * paper: SMEM seeding (here against a whole-genome hash index rather
 * than an FM-index — same seeds, better locality, exactly the
 * algorithm the GenAx seeding accelerator implements), anchor
 * deduplication, banded Smith-Waterman-Gotoh extension with clipping
 * in both directions from each seed, and best-score selection across
 * both strands with a simple margin-based MAPQ.
 */

#ifndef GENAX_SWBASE_BWAMEM_LIKE_HH
#define GENAX_SWBASE_BWAMEM_LIKE_HH

#include <memory>
#include <vector>

#include "align/mapping.hh"
#include "seed/seed_index.hh"
#include "swbase/anchor.hh"

namespace genax {

/** Software aligner configuration. */
struct AlignerConfig
{
    u32 k = 11;            //!< seeding k-mer length
    SeedingConfig seeding;
    AnchorConfig anchors;
    Scoring scoring;
    u32 band = 16;         //!< extension band (the edit bound K)
    /** alignAll() worker threads; 0 = all hardware threads.
     *  Results are identical at any width. */
    unsigned threads = 1;
};

/** Whole-genome CPU aligner. */
class BwaMemLike
{
  public:
    /** Build the whole-genome index (the expensive offline step). */
    BwaMemLike(const Seq &ref, const AlignerConfig &cfg);

    /** Align one read (both strands), returning its best mapping. */
    Mapping alignRead(const Seq &read) const;

    /** Align a batch of reads using cfg.threads workers. */
    std::vector<Mapping> alignAll(const std::vector<Seq> &reads) const;

    /**
     * All distinct candidate mappings of a read (both strands),
     * deduplicated by (position, strand) and sorted by descending
     * score. Used by the paired-end rescuer. MAPQ fields are unset.
     */
    std::vector<Mapping> candidates(const Seq &read,
                                    u32 max_out = 16) const;

    const AlignerConfig &config() const { return _cfg; }
    const SeedIndex &index() const { return *_index; }

  private:
    const Seq &_ref;
    AlignerConfig _cfg;
    std::unique_ptr<SeedIndex> _index;
};

} // namespace genax

#endif // GENAX_SWBASE_BWAMEM_LIKE_HH
