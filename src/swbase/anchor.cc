#include "swbase/anchor.hh"

#include <algorithm>
#include <utility>

#include "align/simd/batch_score.hh"
#include "common/logging.hh"

namespace genax {

std::vector<Anchor>
makeAnchors(const std::vector<Smem> &smems, u64 seg_start, bool reverse,
            const AnchorConfig &cfg)
{
    std::vector<Anchor> out;
    // First anchor per diagonal wins, in smem order — kept as a
    // sorted flat vector (one allocation, binary-search membership)
    // rather than a node-per-diagonal tree; anchor counts are small
    // enough that the ordered insert is cheaper than the allocator
    // traffic was.
    std::vector<i64> diagonals;
    for (const auto &smem : smems) {
        if (smem.length() < cfg.minSeedLen)
            continue; // too short to be a reliable anchor
        if (smem.positions.size() > cfg.maxHitsPerSmem)
            continue; // ultra-repetitive seed: uninformative
        for (u32 local : smem.positions) {
            Anchor a;
            a.qryBegin = smem.qryBegin;
            a.qryEnd = smem.qryEnd;
            a.refPos = seg_start + local;
            a.reverse = reverse;
            const i64 d = a.diagonal();
            const auto it = std::lower_bound(diagonals.begin(),
                                             diagonals.end(), d);
            if (it == diagonals.end() || *it != d) {
                diagonals.insert(it, d);
                out.push_back(a);
            }
        }
    }
    // Prefer longer seeds (stronger anchors), then smaller position.
    std::sort(out.begin(), out.end(),
              [](const Anchor &a, const Anchor &b) {
                  if (a.seedLen() != b.seedLen())
                      return a.seedLen() > b.seedLen();
                  return a.refPos < b.refPos;
              });
    if (out.size() > cfg.maxAnchors)
        out.resize(cfg.maxAnchors);
    return out;
}

namespace {

/** Shared kernel body: extract the anchored-extension view of the
 *  banded alignment result. */
ExtensionResult
extractExtension(const AlignResult &r)
{
    GENAX_ASSERT(r.valid, "banded extend cannot fail");
    ExtensionResult out;
    out.score = r.score;
    out.refConsumed = r.refEnd;
    out.qryConsumed = r.qryEnd;
    for (const auto &e : r.cigar.elems())
        if (e.op != CigarOp::SoftClip)
            out.cigar.push(e.op, e.len);
    return out;
}

/** Reverse the element order of an extension cigar. */
Cigar
reversedCigar(const Cigar &c)
{
    Cigar out = c;
    out.reverse();
    return out;
}

} // namespace

ExtensionResult
gotohExtendKernel(const Seq &ref_window, const Seq &qry,
                  const Scoring &sc, u32 band)
{
    return extractExtension(
        gotohBanded(ref_window, qry, sc, AlignMode::Extend, band));
}

ExtensionResult
gotohExtendKernel(const PackedSeq &ref_window, const Seq &qry,
                  const Scoring &sc, u32 band)
{
    return extractExtension(
        gotohBanded(ref_window, qry, sc, AlignMode::Extend, band));
}

ExtendWindows
makeExtendWindows(const Seq &ref, const Seq &read, const Anchor &anchor,
                  u32 margin)
{
    const u64 len = read.size();
    GENAX_ASSERT(anchor.qryEnd <= len, "anchor beyond read");
    GENAX_ASSERT(anchor.refPos < ref.size(), "anchor beyond reference");

    ExtendWindows win;

    // Right extension: read tail vs reference after the seed. The
    // window is packed straight from the genome — no Seq copy.
    const u64 seed_ref_end = anchor.refPos + anchor.seedLen();
    if (anchor.qryEnd < len && seed_ref_end < ref.size()) {
        const u64 want = (len - anchor.qryEnd) + margin;
        const u64 end = std::min<u64>(ref.size(), seed_ref_end + want);
        win.hasRight = true;
        win.right = PackedSeq::packWindow(ref, seed_ref_end, end);
        win.rightQry.assign(read.begin() + anchor.qryEnd, read.end());
    }

    // Left extension: reversed read head vs the reference before the
    // seed, packed in reverse order directly from the genome.
    if (anchor.qryBegin > 0 && anchor.refPos > 0) {
        const u64 want = anchor.qryBegin + margin;
        const u64 begin = anchor.refPos >= want ? anchor.refPos - want : 0;
        win.hasLeft = true;
        win.left = PackedSeq::packWindow(ref, begin, anchor.refPos,
                                         /*reversed=*/true);
        win.leftQry.assign(read.rend() - anchor.qryBegin, read.rend());
    }

    return win;
}

ExtensionResult
extendWithScoreHint(const PackedSeq &ref_window, const Seq &qry,
                    const Scoring &sc, u32 band,
                    const BandedExtendScore &hint)
{
    if (hint.refEnd == 0 && hint.qryEnd == 0) {
        // Best extension is the empty one; the hint carries its score
        // (0 unless the scoring makes empty extensions non-neutral —
        // it cannot, Extend mode pins cell (0,0) at 0).
        ExtensionResult out;
        out.score = hint.score;
        return out;
    }
    const Seq qry_prefix(qry.begin(),
                         qry.begin() + static_cast<size_t>(hint.qryEnd));
    ExtensionResult out = extractExtension(
        gotohBanded(ref_window.prefix(hint.refEnd), qry_prefix, sc,
                    AlignMode::Extend, band));
    GENAX_ASSERT(out.score == hint.score &&
                     out.refConsumed == hint.refEnd &&
                     out.qryConsumed == hint.qryEnd,
                 "truncated traceback diverged from score pass");
    return out;
}

Mapping
composeAnchorMapping(const Anchor &anchor, const Scoring &sc,
                     u64 read_len, const ExtensionResult &left,
                     const ExtensionResult &right)
{
    const u32 seed_len = anchor.seedLen();

    Mapping out;
    out.mapped = true;
    out.reverse = anchor.reverse;
    out.score = static_cast<i32>(seed_len) * sc.match + left.score +
                right.score;
    out.pos = anchor.refPos - left.refConsumed;

    Cigar cigar;
    const u64 left_clip = anchor.qryBegin - left.qryConsumed;
    if (left_clip > 0)
        cigar.push(CigarOp::SoftClip, static_cast<u32>(left_clip));
    cigar.append(reversedCigar(left.cigar));
    cigar.push(CigarOp::Match, seed_len);
    cigar.append(right.cigar);
    const u64 right_clip = (read_len - anchor.qryEnd) - right.qryConsumed;
    if (right_clip > 0)
        cigar.push(CigarOp::SoftClip, static_cast<u32>(right_clip));
    out.cigar = std::move(cigar);
    return out;
}

ExtensionResult
gotohExtendViaScore(const PackedSeq &ref_window, const Seq &qry,
                    const Scoring &sc, u32 band)
{
    const std::vector<simd::ExtendJob> jobs{{&ref_window, &qry}};
    const auto scores = simd::scoreCandidateBatch(jobs, sc, band);
    return extendWithScoreHint(ref_window, qry, sc, band, scores[0]);
}

Mapping
extendAnchor(const Seq &ref, const Seq &read, const Anchor &anchor,
             const Scoring &sc, u32 margin, const ExtendFn &extend)
{
    const ExtendWindows win = makeExtendWindows(ref, read, anchor, margin);
    ExtensionResult right;
    if (win.hasRight)
        right = extend(win.right, win.rightQry);
    ExtensionResult left;
    if (win.hasLeft)
        left = extend(win.left, win.leftQry);
    return composeAnchorMapping(anchor, sc, read.size(), left, right);
}

} // namespace genax
