#include "swbase/paired.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace genax {

namespace {

/**
 * Gaussian insert-size score penalty for a candidate pair; sets
 * `proper` and `tlen` as side results.
 */
i32
pairPenaltyImpl(const Mapping &a, const Mapping &b,
                const PairedConfig &cfg, bool &proper, i64 &tlen)
{
    proper = false;
    tlen = 0;
    if (!a.mapped || !b.mapped || a.reverse == b.reverse)
        return cfg.unpairedPenalty;

    const Mapping &fwd = a.reverse ? b : a;
    const Mapping &rev = a.reverse ? a : b;
    const i64 frag_end =
        static_cast<i64>(rev.pos) + static_cast<i64>(rev.cigar.refLen());
    tlen = frag_end - static_cast<i64>(fwd.pos);
    if (tlen <= 0)
        return cfg.unpairedPenalty;

    const double z =
        (static_cast<double>(tlen) - cfg.insertMean) / cfg.insertSd;
    if (std::abs(z) > cfg.maxZ)
        return cfg.unpairedPenalty;
    proper = true;
    return std::min<i32>(cfg.unpairedPenalty,
                         static_cast<i32>(std::lround(z * z / 2.0)));
}

/** Single-end MAPQ from a sorted candidate list. */
u8
soloMapq(const std::vector<Mapping> &c)
{
    if (c.size() <= 1)
        return 60;
    if (c[1].score >= c[0].score)
        return 0;
    return static_cast<u8>(
        std::min<i32>(60, 6 * (c[0].score - c[1].score)));
}

} // namespace

PairMapping
resolvePair(const std::vector<Mapping> &c1,
            const std::vector<Mapping> &c2, const PairedConfig &cfg)
{
    PairMapping out;
    if (c1.empty() && c2.empty())
        return out;
    if (c1.empty() || c2.empty()) {
        // Only one mate maps: single-end resolution for it.
        if (!c1.empty()) {
            out.r1 = c1[0];
            out.r1.mapq = soloMapq(c1);
        }
        if (!c2.empty()) {
            out.r2 = c2[0];
            out.r2.mapq = soloMapq(c2);
        }
        return out;
    }

    i32 best_total = INT32_MIN, second_total = INT32_MIN;
    size_t best_i = 0, best_j = 0;
    bool best_proper = false;
    i64 best_tlen = 0;
    for (size_t i = 0; i < c1.size(); ++i) {
        for (size_t j = 0; j < c2.size(); ++j) {
            bool proper;
            i64 tlen;
            const i32 pen =
                pairPenaltyImpl(c1[i], c2[j], cfg, proper, tlen);
            const i32 total = c1[i].score + c2[j].score - pen;
            if (total > best_total) {
                second_total = best_total;
                best_total = total;
                best_i = i;
                best_j = j;
                best_proper = proper;
                best_tlen = tlen;
            } else if (total > second_total) {
                second_total = total;
            }
        }
    }

    out.r1 = c1[best_i];
    out.r2 = c2[best_j];
    out.proper = best_proper;
    out.templateLen = best_tlen;

    u8 mapq;
    if (second_total == INT32_MIN) {
        mapq = 60;
    } else if (second_total >= best_total) {
        mapq = 0;
    } else {
        mapq = static_cast<u8>(
            std::min<i32>(60, 6 * (best_total - second_total)));
    }
    out.r1.mapq = mapq;
    out.r2.mapq = mapq;
    return out;
}

i32
PairedAligner::pairPenalty(const Mapping &a, const Mapping &b,
                           bool &proper, i64 &tlen) const
{
    return pairPenaltyImpl(a, b, _cfg, proper, tlen);
}

PairMapping
PairedAligner::alignPair(const Seq &r1, const Seq &r2) const
{
    return resolvePair(_aligner.candidates(r1, _cfg.candidatesPerMate),
                       _aligner.candidates(r2, _cfg.candidatesPerMate),
                       _cfg);
}

std::vector<PairMapping>
PairedAligner::alignAllPairs(const std::vector<Seq> &r1s,
                             const std::vector<Seq> &r2s,
                             unsigned threads) const
{
    GENAX_ASSERT(r1s.size() == r2s.size(),
                 "mate batches differ in size");
    std::vector<PairMapping> out(r1s.size());
    parallelFor(r1s.size(), threads, [&](u64 lo, u64 hi) {
        for (u64 i = lo; i < hi; ++i)
            out[i] = alignPair(r1s[i], r2s[i]);
    });
    return out;
}

} // namespace genax
