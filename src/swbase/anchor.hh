/**
 * @file
 * Seed anchors and bidirectional seed extension.
 *
 * Both the software aligner (swbase) and the GenAx system model share
 * this logic: SMEM seeds are turned into deduplicated anchors, and an
 * anchor is extended left and right with anchored ("Extend" mode)
 * alignments whose composition yields the read's full alignment.
 * Only the extension kernel differs between the two (banded Gotoh on
 * the CPU, SillaX lanes in the accelerator), so it is passed in as a
 * callable.
 */

#ifndef GENAX_SWBASE_ANCHOR_HH
#define GENAX_SWBASE_ANCHOR_HH

#include <functional>
#include <vector>

#include "align/gotoh.hh"
#include "align/mapping.hh"
#include "align/scoring.hh"
#include "seed/smem_engine.hh"

namespace genax {

/** A candidate alignment anchor derived from one SMEM hit. */
struct Anchor
{
    u32 qryBegin = 0;  //!< seed span in the (oriented) read
    u32 qryEnd = 0;
    u64 refPos = 0;    //!< global reference position of read[qryBegin]
    bool reverse = false;

    u32 seedLen() const { return qryEnd - qryBegin; }

    /** Diagonal key used for deduplication. */
    i64
    diagonal() const
    {
        return static_cast<i64>(refPos) - static_cast<i64>(qryBegin);
    }
};

/** Anchor-generation limits. */
struct AnchorConfig
{
    u32 minSeedLen = 19;      //!< BWA-MEM's minimum seed length
    u32 maxHitsPerSmem = 256; //!< drop ultra-repetitive seeds
    u32 maxAnchors = 32;      //!< cap per read and strand
};

/**
 * Turn one strand's SMEMs into deduplicated anchors.
 *
 * @param smems      seeds from SmemEngine (segment-local positions)
 * @param seg_start  global coordinate of the segment's position 0
 */
std::vector<Anchor> makeAnchors(const std::vector<Smem> &smems,
                                u64 seg_start, bool reverse,
                                const AnchorConfig &cfg);

/**
 * One directional extension result (the callable's contract): the
 * clipped best anchored extension of `qry` against `ref`, both
 * anchored at offset 0.
 */
struct ExtensionResult
{
    i32 score = 0;
    u64 refConsumed = 0;
    u64 qryConsumed = 0;
    Cigar cigar; //!< aligned part only, no soft clips
};

/**
 * Extension kernel callable. The reference window arrives 2-bit
 * packed: extendAnchor packs it straight from the genome (reversed
 * in place for the left extension) so the kernel streams a quarter
 * of the bytes and no intermediate Seq copy is ever materialised.
 */
using ExtendFn = std::function<ExtensionResult(
    const PackedSeq &ref_window, const Seq &qry)>;

/**
 * Extend an anchor in both directions and compose the full mapping.
 *
 * @param ref    the whole reference genome
 * @param read   the read, already oriented to the anchor's strand
 * @param margin extra reference bases fetched beyond the query
 *               length on each side (>= the edit bound K)
 */
Mapping extendAnchor(const Seq &ref, const Seq &read,
                     const Anchor &anchor, const Scoring &sc, u32 margin,
                     const ExtendFn &extend);

/**
 * The two extension problems of one anchor, in self-contained form:
 * packed reference windows plus query copies. This is the unit the
 * batched SIMD scoring path collects across a read's whole candidate
 * list before dispatching one scoreCandidateBatch call (see
 * swbase/bwamem_like.cc). hasRight/hasLeft mirror extendAnchor's
 * gating: an absent side contributes an empty ExtensionResult.
 */
struct ExtendWindows
{
    bool hasRight = false;
    bool hasLeft = false;
    PackedSeq right;  //!< forward window after the seed
    Seq rightQry;     //!< read tail after the seed
    PackedSeq left;   //!< reversed window before the seed
    Seq leftQry;      //!< reversed read head before the seed
};

/** Build both extension problems exactly as extendAnchor would. */
ExtendWindows makeExtendWindows(const Seq &ref, const Seq &read,
                                const Anchor &anchor, u32 margin);

/**
 * Finish one extension from its precomputed score triple: re-run the
 * banded Gotoh DP with traceback on the [0, hint.refEnd) x
 * [0, hint.qryEnd) prefix only. By the truncation property of
 * gotohBandedExtendScore this reproduces the full-window Extend
 * result bit for bit while the traceback matrix shrinks to the part
 * the winning path can reach. The hint must come from
 * gotohBandedExtendScore / scoreCandidateBatch on the same
 * (window, query, scoring, band).
 */
ExtensionResult extendWithScoreHint(const PackedSeq &ref_window,
                                    const Seq &qry, const Scoring &sc,
                                    u32 band,
                                    const BandedExtendScore &hint);

/**
 * Compose a full mapping from an anchor and its two finished
 * extensions (extendAnchor's composition step, split out so the
 * batched path can invoke it on the winning candidate only).
 */
Mapping composeAnchorMapping(const Anchor &anchor, const Scoring &sc,
                             u64 read_len, const ExtensionResult &left,
                             const ExtensionResult &right);

/**
 * Banded extension kernel routed through the SIMD subsystem's
 * score-then-traceback split: a score-only pass (scalar for a single
 * job) followed by the truncated traceback re-run. Same results as
 * gotohExtendKernel; used as the GenAx lane-fault fallback.
 */
ExtensionResult gotohExtendViaScore(const PackedSeq &ref_window,
                                    const Seq &qry, const Scoring &sc,
                                    u32 band);

/** Banded-Gotoh extension kernel (the software baseline's). */
ExtensionResult gotohExtendKernel(const Seq &ref_window, const Seq &qry,
                                  const Scoring &sc, u32 band);

/** Same kernel against a 2-bit packed reference window — the form
 *  the ExtendFn contract delivers. */
ExtensionResult gotohExtendKernel(const PackedSeq &ref_window,
                                  const Seq &qry, const Scoring &sc,
                                  u32 band);

} // namespace genax

#endif // GENAX_SWBASE_ANCHOR_HH
