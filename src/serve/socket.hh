/**
 * @file
 * Thin Status-typed socket layer for the serving protocol: endpoint
 * parsing ("unix:PATH" / "tcp:[HOST:]PORT"), a poll-driven listener
 * and a blocking stream socket with whole-frame send/receive.
 *
 * All environment failures (refused connects, resets, short reads,
 * write errors) surface as Status through the ordinary error
 * channel; nothing here throws or aborts. A clean peer close is the
 * EndOfStream sentinel, distinct from IO errors, so connection
 * handlers can tell "client finished" from "stream died mid-frame".
 *
 * Fault sites (DESIGN.md "Serving layer"):
 *  - serve.accept.fail — an incoming connection is dropped at
 *    accept() as if the kernel refused it;
 *  - serve.read.short  — a receive completes short and the
 *    connection is treated as torn;
 *  - serve.write.eio   — a send fails with a device-style error.
 * Each is observed through the same Status path a real failure would
 * take, so chaos runs exercise production code, not test shims.
 */

#ifndef GENAX_SERVE_SOCKET_HH
#define GENAX_SERVE_SOCKET_HH

#include <optional>
#include <string>
#include <string_view>

#include "common/status.hh"
#include "common/types.hh"
#include "serve/protocol.hh"

namespace genax {

/** A parsed listen/connect address. */
struct Endpoint
{
    enum class Kind
    {
        Unix, //!< Unix-domain stream socket at `path`
        Tcp,  //!< TCP stream socket at host:port (loopback default)
    };
    Kind kind = Kind::Unix;
    std::string path;               //!< Unix only
    std::string host = "127.0.0.1"; //!< TCP only
    u16 port = 0;                   //!< TCP only; 0 = ephemeral

    /**
     * Parse "unix:PATH", "tcp:PORT" or "tcp:HOST:PORT". Unix paths
     * must fit sockaddr_un; TCP host defaults to loopback.
     */
    static StatusOr<Endpoint> parse(std::string_view spec);

    /** Canonical spec string ("unix:/tmp/x.sock", "tcp:127.0.0.1:4"). */
    std::string str() const;
};

/** Move-only connected stream socket. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : _fd(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&o) noexcept : _fd(o._fd) { o._fd = -1; }
    Socket &
    operator=(Socket &&o) noexcept
    {
        if (this != &o) {
            close();
            _fd = o._fd;
            o._fd = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return _fd >= 0; }
    int fd() const { return _fd; }

    void close();

    /** Connect to `ep`, retrying refused/missing endpoints until
     *  `timeoutSeconds` elapses (covers the daemon-startup race). */
    static StatusOr<Socket> connectTo(const Endpoint &ep,
                                      double timeoutSeconds);

    /** Read exactly `n` bytes. EndOfStream on a clean close at
     *  offset 0; IoError on a mid-buffer close or any read error. */
    Status readAll(void *buf, size_t n);

    /** Write exactly `n` bytes (SIGPIPE suppressed). */
    Status writeAll(const void *buf, size_t n);

    /** Encode and write one whole frame. */
    Status sendFrame(FrameType type, std::string_view payload);

    /** Read and fully validate one frame (header checks, payload
     *  checksum). EndOfStream on a clean close between frames. */
    StatusOr<Frame> recvFrame();

  private:
    int _fd = -1;
};

/** Move-only listening socket with poll-based, stoppable accept. */
class ListenSocket
{
  public:
    ListenSocket() = default;
    ~ListenSocket() { close(); }

    ListenSocket(ListenSocket &&o) noexcept;
    ListenSocket &operator=(ListenSocket &&o) noexcept;
    ListenSocket(const ListenSocket &) = delete;
    ListenSocket &operator=(const ListenSocket &) = delete;

    /** Bind + listen. A Unix endpoint unlinks a stale socket file
     *  first; tcp:0 binds an ephemeral port (see boundEndpoint()). */
    static StatusOr<ListenSocket> listen(const Endpoint &ep);

    /**
     * Wait up to `timeoutMs` for a connection: an accepted Socket, or
     * nullopt on timeout (callers loop, re-checking their stop flag).
     * An injected serve.accept.fail drops the connection and reports
     * it as nullopt too — the daemon stays up, the client sees a
     * reset, exactly the production shape of a transient accept
     * failure.
     */
    StatusOr<std::optional<Socket>> acceptFor(int timeoutMs);

    /** The endpoint actually bound (real port for tcp:0). */
    const Endpoint &boundEndpoint() const { return _bound; }

    bool valid() const { return _fd >= 0; }

    void close();

  private:
    int _fd = -1;
    Endpoint _bound;
    bool _unlinkOnClose = false;
};

} // namespace genax

#endif // GENAX_SERVE_SOCKET_HH
