/**
 * @file
 * Client side of the serving protocol: connect (with a startup-race
 * retry window), handshake, and blocking align/stats round trips.
 *
 * A client that writes samHeader() followed by every line from its
 * align() calls reproduces, byte for byte, the SAM an offline
 * `genax_align --index` run over the same reads would write — the
 * determinism suite pins that. Error frames come back as the carried
 * Status; torn streams (daemon killed mid-batch) surface as IoError
 * from the checksummed framing, never as partially-accepted SAM.
 *
 * One conversation per Client; not thread-safe (load generators run
 * one Client per thread).
 */

#ifndef GENAX_SERVE_CLIENT_HH
#define GENAX_SERVE_CLIENT_HH

#include <string>
#include <vector>

#include "common/status.hh"
#include "io/fastq.hh"
#include "serve/socket.hh"

namespace genax {

class ServeClient
{
  public:
    /**
     * Connect to a daemon at `ep` (retrying refused/missing
     * endpoints until `timeoutSeconds`), send Hello with `tenant`
     * and wait for the HelloAck carrying the SAM header.
     */
    static StatusOr<ServeClient> connect(const Endpoint &ep,
                                         const std::string &tenant,
                                         double timeoutSeconds = 5.0);

    ServeClient(ServeClient &&) = default;
    ServeClient &operator=(ServeClient &&) = default;

    /** SAM header text of the daemon's reference. */
    const std::string &samHeader() const { return _header; }

    /** Round-trip one batch: one SAM line per read, in order. An
     *  Error frame returns as its carried Status. */
    StatusOr<std::vector<std::string>>
    align(const std::vector<FastqRecord> &reads);

    /** Fetch the daemon's human-readable serving stats. */
    StatusOr<std::string> stats();

    void close() { _sock.close(); }

  private:
    ServeClient() = default;

    Socket _sock;
    std::string _header;
};

} // namespace genax

#endif // GENAX_SERVE_CLIENT_HH
