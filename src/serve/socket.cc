#include "serve/socket.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/faultinject.hh"

namespace genax {

namespace {

/** Parse a decimal port. */
StatusOr<u16>
parsePort(std::string_view s)
{
    if (s.empty() || s.size() > 5)
        return invalidInputError("bad TCP port: '" + std::string(s) +
                                 "'");
    u32 port = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return invalidInputError("bad TCP port: '" +
                                     std::string(s) + "'");
        port = port * 10 + static_cast<u32>(c - '0');
    }
    if (port > 65535)
        return invalidInputError("TCP port out of range: " +
                                 std::string(s));
    return static_cast<u16>(port);
}

/** Fill a sockaddr for `ep`; returns its length. */
StatusOr<socklen_t>
fillSockaddr(const Endpoint &ep, sockaddr_storage &ss)
{
    std::memset(&ss, 0, sizeof(ss));
    if (ep.kind == Endpoint::Kind::Unix) {
        auto *sun = reinterpret_cast<sockaddr_un *>(&ss);
        sun->sun_family = AF_UNIX;
        if (ep.path.size() >= sizeof(sun->sun_path))
            return invalidInputError(
                "unix socket path too long: " + ep.path);
        std::memcpy(sun->sun_path, ep.path.c_str(),
                    ep.path.size() + 1);
        return static_cast<socklen_t>(sizeof(sockaddr_un));
    }
    auto *sin = reinterpret_cast<sockaddr_in *>(&ss);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(ep.port);
    if (inet_pton(AF_INET, ep.host.c_str(), &sin->sin_addr) != 1)
        return invalidInputError("bad TCP host: " + ep.host);
    return static_cast<socklen_t>(sizeof(sockaddr_in));
}

int
domainOf(const Endpoint &ep)
{
    return ep.kind == Endpoint::Kind::Unix ? AF_UNIX : AF_INET;
}

} // namespace

StatusOr<Endpoint>
Endpoint::parse(std::string_view spec)
{
    Endpoint ep;
    if (spec.rfind("unix:", 0) == 0) {
        ep.kind = Kind::Unix;
        ep.path = std::string(spec.substr(5));
        if (ep.path.empty())
            return invalidInputError("empty unix socket path in '" +
                                     std::string(spec) + "'");
        return ep;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        ep.kind = Kind::Tcp;
        std::string_view rest = spec.substr(4);
        const size_t colon = rest.rfind(':');
        std::string_view port_part = rest;
        if (colon != std::string_view::npos) {
            ep.host = std::string(rest.substr(0, colon));
            port_part = rest.substr(colon + 1);
            if (ep.host.empty())
                return invalidInputError("empty TCP host in '" +
                                         std::string(spec) + "'");
        }
        GENAX_TRY_ASSIGN(ep.port, parsePort(port_part));
        return ep;
    }
    return invalidInputError(
        "bad endpoint '" + std::string(spec) +
        "' (expected unix:PATH, tcp:PORT or tcp:HOST:PORT)");
}

std::string
Endpoint::str() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

void
Socket::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

StatusOr<Socket>
Socket::connectTo(const Endpoint &ep, double timeoutSeconds)
{
    sockaddr_storage ss;
    GENAX_TRY_ASSIGN(const socklen_t len, fillSockaddr(ep, ss));
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeoutSeconds));
    for (;;) {
        const int fd = ::socket(domainOf(ep), SOCK_STREAM, 0);
        if (fd < 0)
            return ioErrorFromErrno("socket", ep.str());
        if (::connect(fd, reinterpret_cast<sockaddr *>(&ss), len) ==
            0)
            return Socket(fd);
        const int err = errno;
        ::close(fd);
        // The daemon may still be starting: retry refused/missing
        // endpoints until the deadline; anything else is final.
        const bool transient = err == ECONNREFUSED ||
                               err == ENOENT || err == ECONNRESET;
        if (!transient || std::chrono::steady_clock::now() >= deadline)
            return ioError("connect " + ep.str() + ": " +
                           std::strerror(err));
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

Status
Socket::readAll(void *buf, size_t n)
{
    auto *p = static_cast<char *>(buf);
    size_t got = 0;
    while (got < n) {
        if (faultFires(fault::kServeReadShort)) [[unlikely]] {
            return ioError("injected short read on the serve "
                           "connection (serve.read.short)");
        }
        const ssize_t r = ::recv(_fd, p + got, n - got, 0);
        if (r == 0) {
            if (got == 0)
                return endOfStream();
            return ioError("connection closed mid-frame after " +
                           std::to_string(got) + " of " +
                           std::to_string(n) + " bytes");
        }
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return ioError(std::string("recv: ") +
                           std::strerror(errno));
        }
        got += static_cast<size_t>(r);
    }
    return okStatus();
}

Status
Socket::writeAll(const void *buf, size_t n)
{
    const auto *p = static_cast<const char *>(buf);
    size_t sent = 0;
    while (sent < n) {
        if (faultFires(fault::kServeWriteEio)) [[unlikely]] {
            return ioError("injected write failure on the serve "
                           "connection (serve.write.eio)");
        }
        const ssize_t r =
            ::send(_fd, p + sent, n - sent, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return ioError(std::string("send: ") +
                           std::strerror(errno));
        }
        sent += static_cast<size_t>(r);
    }
    return okStatus();
}

Status
Socket::sendFrame(FrameType type, std::string_view payload)
{
    const std::string frame = encodeFrame(type, payload);
    return writeAll(frame.data(), frame.size());
}

StatusOr<Frame>
Socket::recvFrame()
{
    char hdr_bytes[sizeof(FrameHeader)];
    GENAX_TRY(readAll(hdr_bytes, sizeof(hdr_bytes)));
    GENAX_TRY_ASSIGN(const FrameHeader hdr,
                     decodeFrameHeader(hdr_bytes));
    Frame frame;
    frame.type = static_cast<FrameType>(hdr.type);
    frame.payload.resize(hdr.payloadBytes);
    if (hdr.payloadBytes > 0) {
        Status s = readAll(frame.payload.data(), hdr.payloadBytes);
        if (!s.ok()) {
            // EOF between header and payload is a torn frame, not a
            // clean close.
            if (isEndOfStream(s))
                return ioError("connection closed before the frame "
                               "payload arrived");
            return s;
        }
    }
    GENAX_TRY(validateFramePayload(hdr, frame.payload));
    return frame;
}

ListenSocket::ListenSocket(ListenSocket &&o) noexcept
    : _fd(o._fd), _bound(std::move(o._bound)),
      _unlinkOnClose(o._unlinkOnClose)
{
    o._fd = -1;
    o._unlinkOnClose = false;
}

ListenSocket &
ListenSocket::operator=(ListenSocket &&o) noexcept
{
    if (this != &o) {
        close();
        _fd = o._fd;
        _bound = std::move(o._bound);
        _unlinkOnClose = o._unlinkOnClose;
        o._fd = -1;
        o._unlinkOnClose = false;
    }
    return *this;
}

void
ListenSocket::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
        if (_unlinkOnClose)
            ::unlink(_bound.path.c_str());
    }
}

StatusOr<ListenSocket>
ListenSocket::listen(const Endpoint &ep)
{
    ListenSocket ls;
    ls._bound = ep;

    if (ep.kind == Endpoint::Kind::Unix)
        ::unlink(ep.path.c_str()); // stale socket from a dead daemon

    sockaddr_storage ss;
    GENAX_TRY_ASSIGN(const socklen_t len, fillSockaddr(ep, ss));
    const int fd = ::socket(domainOf(ep), SOCK_STREAM, 0);
    if (fd < 0)
        return ioErrorFromErrno("socket", ep.str());
    ls._fd = fd;

    if (ep.kind == Endpoint::Kind::Tcp) {
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&ss), len) != 0)
        return ioErrorFromErrno("bind", ep.str());
    ls._unlinkOnClose = ep.kind == Endpoint::Kind::Unix;
    if (::listen(fd, 256) != 0)
        return ioErrorFromErrno("listen", ep.str());

    // tcp:0 bound an ephemeral port; report the real one.
    if (ep.kind == Endpoint::Kind::Tcp && ep.port == 0) {
        sockaddr_in sin;
        socklen_t slen = sizeof(sin);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&sin),
                          &slen) != 0)
            return ioErrorFromErrno("getsockname", ep.str());
        ls._bound.port = ntohs(sin.sin_port);
    }
    return ls;
}

StatusOr<std::optional<Socket>>
ListenSocket::acceptFor(int timeoutMs)
{
    pollfd pfd{_fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, timeoutMs);
    if (r < 0) {
        if (errno == EINTR)
            return std::optional<Socket>();
        return Status(ioErrorFromErrno("poll", _bound.str()));
    }
    if (r == 0 || !(pfd.revents & POLLIN))
        return std::optional<Socket>();
    const int cfd = ::accept(_fd, nullptr, nullptr);
    if (cfd < 0) {
        if (errno == EINTR || errno == ECONNABORTED ||
            errno == EAGAIN || errno == EWOULDBLOCK)
            return std::optional<Socket>();
        return Status(ioErrorFromErrno("accept", _bound.str()));
    }
    if (faultFires(fault::kServeAcceptFail)) [[unlikely]] {
        // Model a transient kernel-level accept failure: the
        // connection is torn down immediately; the daemon keeps
        // listening and the client observes a reset.
        ::close(cfd);
        return std::optional<Socket>();
    }
    return std::optional<Socket>(Socket(cfd));
}

} // namespace genax
