#include "serve/batcher.hh"

#include <algorithm>
#include <sstream>

namespace genax {

Batcher::Batcher(AlignService &service, const BatcherConfig &cfg)
    : _service(service), _cfg(cfg),
      _epoch(std::chrono::steady_clock::now()),
      _worker([this] { workerLoop(); })
{
}

Batcher::~Batcher()
{
    stop();
}

u64
Batcher::nowNanos() const
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - _epoch)
            .count());
}

StatusOr<std::vector<std::string>>
Batcher::align(const std::string &tenant,
               std::vector<FastqRecord> reads)
{
    Job job;
    job.tenant = &tenant;
    job.reads = &reads;

    {
        const MutexLock lk(_mu);
        if (_stopped)
            return unavailableError("genax_serve is shutting down");
        const u64 n = reads.size();
        // Admission control: a request that would overflow the read
        // bound is shed (reject mode) or its producer blocks until
        // the worker drains (backpressure mode). An empty queue
        // always admits, so one oversized request cannot deadlock.
        if (_cfg.rejectWhenFull) {
            if (_queuedReads > 0 &&
                _queuedReads + n > _cfg.queueReads) {
                ++_tenants[tenant].rejected;
                return resourceExhaustedError(
                    "serve queue full (" +
                    std::to_string(_queuedReads) + " reads pending, "
                    "bound " +
                    std::to_string(_cfg.queueReads) +
                    "); retry later");
            }
        } else {
            while (_queuedReads > 0 &&
                   _queuedReads + n > _cfg.queueReads && !_stopped)
                _notFull.wait(_mu);
            if (_stopped)
                return unavailableError(
                    "genax_serve is shutting down");
        }
        job.enqueuedNanos = nowNanos();
        _queue.push_back(&job);
        _queuedReads += n;
        _pending.notifyOne();
        // The worker guarantees done is eventually set: every queued
        // job is either processed or failed at shutdown.
        while (!job.done)
            _complete.wait(_mu);
    }

    if (!job.status.ok())
        return job.status;
    return std::move(job.lines);
}

void
Batcher::stop()
{
    bool join = false;
    {
        const MutexLock lk(_mu);
        if (!_stopped) {
            _stopped = true;
            _pending.notifyAll();
            _notFull.notifyAll();
            join = true; // first stopper owns the join
        }
    }
    if (join && _worker.joinable())
        _worker.join();
}

void
Batcher::workerLoop()
{
    const u64 wait_ns = static_cast<u64>(
        std::max(0.0, _cfg.batchWaitSeconds) * 1e9);
    for (;;) {
        std::vector<Job *> batch;
        {
            const MutexLock lk(_mu);
            for (;;) {
                if (_stopped) {
                    // Fail whatever is still queued; their
                    // producers are blocked on _complete.
                    while (!_queue.empty()) {
                        Job *j = _queue.front();
                        _queue.pop_front();
                        j->status = unavailableError(
                            "genax_serve is shutting down");
                        j->done = true;
                    }
                    _queuedReads = 0;
                    _complete.notifyAll();
                    return;
                }
                if (_queue.empty()) {
                    _pending.wait(_mu);
                    continue;
                }
                if (_queuedReads >= _cfg.batchReads) {
                    ++_flushesBySize;
                    break;
                }
                const u64 deadline =
                    _queue.front()->enqueuedNanos + wait_ns;
                const u64 now = nowNanos();
                if (now >= deadline) {
                    ++_flushesByDeadline;
                    break;
                }
                _pending.waitFor(
                    _mu, std::chrono::nanoseconds(deadline - now));
            }

            const u64 start = nowNanos();
            u64 taken = 0;
            while (!_queue.empty() && taken < _cfg.batchReads) {
                Job *j = _queue.front();
                _queue.pop_front();
                _queueWait.recordNanos(start - j->enqueuedNanos);
                taken += j->reads->size();
                batch.push_back(j);
            }
            _queuedReads -= taken;
            ++_batches;
            if (taken > _maxBatchReads)
                _maxBatchReads = taken;
            _notFull.notifyAll();
        }

        // Engine work runs strictly outside the lock: producers keep
        // queueing the next batch while this one aligns.
        std::vector<FastqRecord> reads;
        for (const Job *j : batch)
            reads.insert(reads.end(), j->reads->begin(),
                         j->reads->end());
        const u64 t0 = nowNanos();
        BatchOutcome out = _service.alignBatch(reads);
        const u64 engine_ns = nowNanos() - t0;

        {
            const MutexLock lk(_mu);
            const u64 done_ns = nowNanos();
            size_t off = 0;
            for (Job *j : batch) {
                const size_t n = j->reads->size();
                j->lines.assign(
                    std::move_iterator(out.samLines.begin() +
                                       static_cast<long>(off)),
                    std::move_iterator(out.samLines.begin() +
                                       static_cast<long>(off + n)));
                TenantStats &t = _tenants[*j->tenant];
                ++t.requests;
                t.reads += n;
                for (size_t i = off; i < off + n; ++i) {
                    switch (out.outcomes[i]) {
                    case BatchOutcome::kMapped:
                        ++t.mapped;
                        break;
                    case BatchOutcome::kUnmapped:
                        ++t.unmapped;
                        break;
                    default:
                        ++t.degraded;
                        break;
                    }
                }
                off += n;
                _engine.recordNanos(engine_ns);
                _total.recordNanos(done_ns - j->enqueuedNanos);
                j->status = okStatus();
                j->done = true;
            }
            _complete.notifyAll();
        }
    }
}

Batcher::StatsSnapshot
Batcher::stats() const
{
    const MutexLock lk(_mu);
    StatsSnapshot snap;
    snap.queueWait = _queueWait;
    snap.engine = _engine;
    snap.total = _total;
    snap.tenants = _tenants;
    snap.queuedReads = _queuedReads;
    snap.batches = _batches;
    snap.flushesBySize = _flushesBySize;
    snap.flushesByDeadline = _flushesByDeadline;
    snap.maxBatchReads = _maxBatchReads;
    return snap;
}

std::string
Batcher::statsText(const StatsSnapshot &snap)
{
    std::ostringstream out;
    const auto hist = [&](const char *name,
                          const LatencyHistogram &h) {
        out << "  " << name << ": n=" << h.count() << " mean="
            << h.meanSeconds() * 1e3 << "ms p50="
            << h.quantileSeconds(0.5) * 1e3 << "ms p99="
            << h.quantileSeconds(0.99) * 1e3 << "ms max="
            << h.maxSeconds() * 1e3 << "ms\n";
    };
    out << "batches: " << snap.batches << " (" << snap.flushesBySize
        << " by size, " << snap.flushesByDeadline
        << " by deadline; largest " << snap.maxBatchReads
        << " reads; " << snap.queuedReads << " queued)\n";
    hist("queue-wait", snap.queueWait);
    hist("engine", snap.engine);
    hist("total", snap.total);
    for (const auto &[tenant, t] : snap.tenants) {
        out << "  tenant " << tenant << ": requests=" << t.requests
            << " reads=" << t.reads << " mapped=" << t.mapped
            << " unmapped=" << t.unmapped << " degraded="
            << t.degraded << " rejected=" << t.rejected << "\n";
    }
    return out.str();
}

} // namespace genax
