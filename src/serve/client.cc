#include "serve/client.hh"

namespace genax {

StatusOr<ServeClient>
ServeClient::connect(const Endpoint &ep, const std::string &tenant,
                     double timeoutSeconds)
{
    ServeClient client;
    GENAX_TRY_ASSIGN(client._sock,
                     Socket::connectTo(ep, timeoutSeconds));
    GENAX_TRY(client._sock.sendFrame(FrameType::Hello, tenant));
    GENAX_TRY_ASSIGN(const Frame ack, client._sock.recvFrame());
    if (ack.type == FrameType::Error) {
        Status carried;
        GENAX_TRY(decodeError(ack.payload, carried));
        return carried.withContext("serve handshake");
    }
    if (ack.type != FrameType::HelloAck)
        return failedPreconditionError(
            std::string("expected hello-ack, got ") +
            frameTypeName(ack.type));
    client._header = ack.payload;
    return client;
}

StatusOr<std::vector<std::string>>
ServeClient::align(const std::vector<FastqRecord> &reads)
{
    GENAX_TRY(_sock.sendFrame(FrameType::AlignRequest,
                              encodeAlignRequest(reads)));
    GENAX_TRY_ASSIGN(const Frame reply, _sock.recvFrame());
    if (reply.type == FrameType::Error) {
        Status carried;
        GENAX_TRY(decodeError(reply.payload, carried));
        return carried;
    }
    if (reply.type != FrameType::AlignResponse)
        return failedPreconditionError(
            std::string("expected align-response, got ") +
            frameTypeName(reply.type));
    GENAX_TRY_ASSIGN(std::vector<std::string> lines,
                     decodeAlignResponse(reply.payload));
    if (lines.size() != reads.size())
        return internalError(
            "align response carries " +
            std::to_string(lines.size()) + " lines for " +
            std::to_string(reads.size()) + " reads");
    return lines;
}

StatusOr<std::string>
ServeClient::stats()
{
    GENAX_TRY(_sock.sendFrame(FrameType::StatsRequest, ""));
    GENAX_TRY_ASSIGN(const Frame reply, _sock.recvFrame());
    if (reply.type == FrameType::Error) {
        Status carried;
        GENAX_TRY(decodeError(reply.payload, carried));
        return carried;
    }
    if (reply.type != FrameType::StatsReply)
        return failedPreconditionError(
            std::string("expected stats-reply, got ") +
            frameTypeName(reply.type));
    return reply.payload;
}

} // namespace genax
