/**
 * @file
 * Cross-client batch aggregator: N producer threads (one per
 * connection) submit read batches; one worker thread drains them
 * into the AlignService in arrival order.
 *
 * This is PR 5's bounded reader-queue pattern generalized to N
 * producers, with the same continuous-batching policy inference
 * servers use: requests accumulate until either the pending read
 * count reaches `batchReads` or the oldest request has waited
 * `batchWaitSeconds`, then everything pending runs as one engine
 * batch and the results are demultiplexed back to the owning
 * requests in order. Under light load the deadline bounds latency;
 * under heavy load batches fill instantly and the deadline never
 * fires — throughput approaches the offline streaming path because
 * it *is* the offline streaming path (streamBegin/streamBatch/
 * streamEnd on the shared ThreadPool) fed by many sockets instead of
 * one file.
 *
 * Admission control: the queue is bounded in reads. A submit that
 * would overflow either blocks until the worker drains (default —
 * per-connection backpressure, the socket stops reading) or is
 * rejected immediately with ResourceExhausted when
 * `rejectWhenFull` is set (load-shedding mode; the client sees a
 * clean Error frame).
 *
 * Accounting: three log-bucketed latency histograms (queue wait,
 * engine time, total) plus a per-tenant ledger in ReaderStats style.
 * Timing uses steady_clock deltas — the sanctioned profiling pattern
 * (observability output, never a determinism contract; see the
 * genax_lint wall-clock rule).
 *
 * Locking (DESIGN.md lock-order inventory): one leaf Mutex `_mu`
 * guards the queue, the histograms and the ledgers. The engine runs
 * strictly outside the lock, so producers keep queueing while a
 * batch aligns. The worker's engine calls may take the ThreadPool's
 * internal locks; `_mu` is never held across them.
 */

#ifndef GENAX_SERVE_BATCHER_HH
#define GENAX_SERVE_BATCHER_HH

#include <chrono>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hh"
#include "common/histogram.hh"
#include "common/status.hh"
#include "io/fastq.hh"
#include "serve/service.hh"

namespace genax {

/** Batching/admission policy. */
struct BatcherConfig
{
    /** Flush when this many reads are pending. */
    u64 batchReads = 64;
    /** Flush when the oldest pending request has waited this long. */
    double batchWaitSeconds = 0.002;
    /** Admission bound: max reads queued (≥ one request's worth is
     *  always admitted so oversized requests cannot deadlock). */
    u64 queueReads = 4096;
    /** Queue-full policy: reject with ResourceExhausted instead of
     *  blocking the producer. */
    bool rejectWhenFull = false;
};

/** Per-tenant serving ledger (ReaderStats style: plain counters,
 *  folded under the stats lock). */
struct TenantStats
{
    u64 requests = 0;
    u64 reads = 0;
    u64 mapped = 0;
    u64 unmapped = 0;
    u64 degraded = 0;
    u64 rejected = 0; //!< requests shed by admission control
};

class Batcher
{
  public:
    Batcher(AlignService &service, const BatcherConfig &cfg);
    ~Batcher();

    Batcher(const Batcher &) = delete;
    Batcher &operator=(const Batcher &) = delete;

    /**
     * Submit one request and block until its batch ran: the SAM
     * lines for `reads` in order, or ResourceExhausted (admission),
     * or Unavailable (batcher stopped while the request was
     * pending). Callable from any number of threads.
     */
    StatusOr<std::vector<std::string>>
    align(const std::string &tenant, std::vector<FastqRecord> reads);

    /** Stop the worker; pending and in-flight requests complete or
     *  fail with Unavailable. Idempotent. */
    void stop();

    /** Consistent copy of the accounting state. */
    struct StatsSnapshot
    {
        LatencyHistogram queueWait; //!< submit → batch start
        LatencyHistogram engine;    //!< batch engine time (per req)
        LatencyHistogram total;     //!< submit → results ready
        std::map<std::string, TenantStats> tenants;
        u64 queuedReads = 0; //!< reads pending at snapshot time
        u64 batches = 0;
        u64 flushesBySize = 0;     //!< batch filled
        u64 flushesByDeadline = 0; //!< oldest request timed out
        u64 maxBatchReads = 0;
    };
    StatsSnapshot stats() const;

    /** Render a snapshot as the human-readable stats text the
     *  protocol's StatsReply carries. */
    static std::string statsText(const StatsSnapshot &snap);

  private:
    /** One queued request; lives in its submitter's align() frame. */
    struct Job
    {
        const std::string *tenant;
        std::vector<FastqRecord> *reads;
        std::vector<std::string> lines;
        Status status;
        bool done = false;
        u64 enqueuedNanos = 0;
    };

    void workerLoop();

    /** Monotonic nanoseconds since the batcher was created. */
    u64 nowNanos() const;

    AlignService &_service;
    const BatcherConfig _cfg;
    const std::chrono::steady_clock::time_point _epoch;

    mutable Mutex _mu;
    CondVar _pending;  //!< worker waits: work or stop
    CondVar _notFull;  //!< producers wait: queue space
    CondVar _complete; //!< producers wait: job done
    std::deque<Job *> _queue GENAX_GUARDED_BY(_mu);
    u64 _queuedReads GENAX_GUARDED_BY(_mu) = 0;
    bool _stopped GENAX_GUARDED_BY(_mu) = false;

    LatencyHistogram _queueWait GENAX_GUARDED_BY(_mu);
    LatencyHistogram _engine GENAX_GUARDED_BY(_mu);
    LatencyHistogram _total GENAX_GUARDED_BY(_mu);
    std::map<std::string, TenantStats> _tenants GENAX_GUARDED_BY(_mu);
    u64 _batches GENAX_GUARDED_BY(_mu) = 0;
    u64 _flushesBySize GENAX_GUARDED_BY(_mu) = 0;
    u64 _flushesByDeadline GENAX_GUARDED_BY(_mu) = 0;
    u64 _maxBatchReads GENAX_GUARDED_BY(_mu) = 0;

    std::thread _worker; //!< last member: starts in the ctor body
};

} // namespace genax

#endif // GENAX_SERVE_BATCHER_HH
