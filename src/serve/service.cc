#include "serve/service.hh"

#include <utility>

#include "common/check.hh"
#include "common/logging.hh"
#include "silla/silla.hh"

namespace genax {

StatusOr<std::unique_ptr<AlignService>>
AlignService::create(std::vector<FastaRecord> ref,
                     const ServiceConfig &cfg)
{
    if (ref.empty())
        return invalidInputError("reference has no usable contigs");
    for (const auto &rec : ref) {
        if (rec.seq.empty())
            return invalidInputError("reference contig '" + rec.name +
                                     "' is empty");
    }

    // No make_unique: the constructor is private.
    std::unique_ptr<AlignService> svc(new AlignService());
    svc->_ref = std::move(ref);
    svc->_contigs.emplace(svc->_ref);

    if (!cfg.indexSnapshot.empty()) {
        GENAX_TRY_ASSIGN(svc->_attach,
                         attachIndexSnapshot(
                             cfg.indexSnapshot,
                             svc->_contigs->sequence()));
    }

    bool use_software =
        cfg.engine == PipelineOptions::Engine::Software;
    if (!use_software && cfg.band > kMaxSillaK) {
        GENAX_WARN("edit bound ", cfg.band,
                   " exceeds the SillaX maximum ", kMaxSillaK,
                   "; serving on the software engine");
        use_software = true;
        svc->_softwareFallback = true;
    }

    if (!use_software) {
        GenAxConfig gcfg;
        gcfg.k = cfg.k;
        gcfg.editBound = cfg.band;
        gcfg.segmentCount = cfg.segments;
        gcfg.segmentOverlap = cfg.segmentOverlap;
        gcfg.threads = cfg.threads;
        applyIndexAttachment(gcfg, svc->_attach);
        svc->_system.emplace(svc->_contigs->sequence(), gcfg);
        svc->_system->streamBegin();
    } else {
        AlignerConfig acfg;
        acfg.k = cfg.k;
        acfg.band = cfg.band;
        acfg.threads = cfg.threads;
        svc->_aligner.emplace(svc->_contigs->sequence(), acfg);
    }

    std::vector<SamRefSeq> header;
    for (const auto &c : svc->_contigs->contigs())
        header.push_back({c.name, c.length});
    svc->_sam.emplace(svc->_stage, header);
    svc->_header = svc->_stage.str();
    svc->_stage.str(std::string());
    return svc;
}

AlignService::~AlignService()
{
    finish();
}

BatchOutcome
AlignService::alignBatch(const std::vector<FastqRecord> &reads)
{
    GENAX_CHECK(!_finished,
                "alignBatch() after the service stream was closed");
    BatchOutcome out;
    if (reads.empty())
        return out;

    std::vector<Seq> seqs;
    seqs.reserve(reads.size());
    for (const auto &r : reads)
        seqs.push_back(r.seq);

    std::vector<Mapping> maps;
    std::vector<u8> degraded(seqs.size(), 0);
    if (_system) {
        maps = _system->streamBatch(seqs, _base);
        degraded = _system->degradedReads();
    } else {
        maps = _aligner->alignAll(seqs);
        if (_softwareFallback)
            degraded.assign(seqs.size(), 1);
    }
    _base += seqs.size();

    out.samLines.reserve(reads.size());
    out.outcomes.reserve(reads.size());
    for (size_t i = 0; i < reads.size(); ++i) {
        const Mapping &m = maps[i];
        if (!m.mapped) {
            ++out.unmapped;
            out.outcomes.push_back(BatchOutcome::kUnmapped);
        } else if (degraded[i]) {
            ++out.degraded;
            out.outcomes.push_back(BatchOutcome::kDegraded);
        } else {
            ++out.mapped;
            out.outcomes.push_back(BatchOutcome::kMapped);
        }
        _sam->write(pipelineSamRecord(*_contigs, reads[i], m));
        // One record is exactly one line: take the staged text
        // (newline included) as this read's response.
        out.samLines.push_back(_stage.str());
        _stage.str(std::string());
    }
    return out;
}

void
AlignService::finish()
{
    if (_finished)
        return;
    _finished = true;
    if (_system)
        _system->streamEnd();
}

} // namespace genax
