/**
 * @file
 * Wire protocol for the genax_serve daemon: length-prefixed binary
 * frames over a byte stream (Unix-domain or TCP socket).
 *
 * Every frame is a fixed 32-byte little-endian header followed by an
 * opaque payload. The header carries a magic, a protocol version, the
 * frame type, the payload length, and two checksums (StoreChecksum,
 * the store layer's splitmix64 stream): one over the payload and one
 * over the header's own leading bytes. A frame is accepted only after
 * both checksums verify, so a torn or corrupted stream surfaces as a
 * typed Status at the frame boundary — a partial frame is never
 * delivered upward, which is what lets a killed daemon guarantee "no
 * partial SAM accepted" on the client side.
 *
 * Conversation shape (client drives):
 *
 *   C -> S  Hello         tenant name (free-form client identity)
 *   S -> C  HelloAck      SAM header text for this daemon's reference
 *   C -> S  AlignRequest  a batch of reads
 *   S -> C  AlignResponse one SAM line per read, in request order
 *           (or Error: the carried Status — request rejected/failed)
 *   C -> S  StatsRequest  (optional, any time after Hello)
 *   S -> C  StatsReply    human-readable serving stats
 *
 * Payload codecs live here too so client and server cannot drift:
 * reads travel as (name, 2-bit-encoded sequence, raw Phred bytes)
 * triples — the daemon never re-parses FASTQ text — and responses
 * carry finished SAM lines (each including its trailing newline), so
 * client-side output is exactly headerText + concat(lines).
 */

#ifndef GENAX_SERVE_PROTOCOL_HH
#define GENAX_SERVE_PROTOCOL_HH

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"
#include "io/fastq.hh"

namespace genax {

/** Frame types (u16 on the wire). */
enum class FrameType : u16
{
    Hello = 1,
    HelloAck = 2,
    AlignRequest = 3,
    AlignResponse = 4,
    Error = 5,
    StatsRequest = 6,
    StatsReply = 7,
};

/** Printable frame-type name for diagnostics. */
const char *frameTypeName(FrameType t);

/** Fixed little-endian frame header. */
struct FrameHeader
{
    char magic[4];      //!< "GXSV"
    u16 version;        //!< kProtocolVersion
    u16 type;           //!< FrameType
    u64 payloadBytes;   //!< payload length following the header
    u64 payloadChecksum; //!< storeChecksum over the payload
    u64 headerChecksum;  //!< storeChecksum over the 24 bytes above
};
static_assert(sizeof(FrameHeader) == 32, "wire header is 32 bytes");

inline constexpr char kFrameMagic[4] = {'G', 'X', 'S', 'V'};
inline constexpr u16 kProtocolVersion = 1;

/** Upper bound on a single payload; a header claiming more is a
 *  protocol error, not an allocation request. */
inline constexpr u64 kMaxFramePayload = u64{256} * 1024 * 1024;

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::string payload;
};

/** Serialize a frame (header + payload) ready to write. */
std::string encodeFrame(FrameType type, std::string_view payload);

/**
 * Validate and decode a wire header: magic, version, header checksum
 * and the payload-size bound. The payload checksum is checked
 * separately once the payload bytes arrived.
 */
StatusOr<FrameHeader> decodeFrameHeader(const void *bytes);

/** Verify a received payload against its header's checksum. */
Status validateFramePayload(const FrameHeader &hdr,
                            std::string_view payload);

/** @name Payload codecs */
///@{

/** AlignRequest: a batch of reads in submission order. */
std::string encodeAlignRequest(const std::vector<FastqRecord> &reads);
StatusOr<std::vector<FastqRecord>>
decodeAlignRequest(std::string_view payload);

/** AlignResponse: one finished SAM line (with trailing newline) per
 *  requested read, in request order. */
std::string
encodeAlignResponse(const std::vector<std::string> &samLines);
StatusOr<std::vector<std::string>>
decodeAlignResponse(std::string_view payload);

/** Error: a Status carried across the wire (code + message). The
 *  decode return reports payload problems; the carried error lands
 *  in `out`. */
std::string encodeError(const Status &s);
Status decodeError(std::string_view payload, Status &out);

///@}

} // namespace genax

#endif // GENAX_SERVE_PROTOCOL_HH
