/**
 * @file
 * Connection front end of the daemon: a poll-driven accept loop plus
 * one handler thread per connection, all feeding the shared Batcher.
 *
 * Per-connection conversation (protocol.hh): Hello → HelloAck (the
 * daemon's SAM header text), then any number of AlignRequests — each
 * answered with an AlignResponse in order, or an Error frame when
 * the request was shed/failed (the connection survives request-level
 * errors; only protocol violations and dead streams close it).
 * StatsRequest may interleave anywhere after Hello.
 *
 * Shutdown: stop() closes the listener, wakes every blocked handler
 * by shutting its socket down, stops the batcher and joins all
 * threads. In-flight requests either complete or fail with a clean
 * Error frame — a killed daemon can tear frames, but the checksummed
 * framing means a client never *accepts* a torn response (see the
 * chaos leg in tools/chaos_smoke.sh).
 *
 * Locking (DESIGN.md lock-order inventory): `_mu` here is a leaf
 * guarding the connection registry only; it is never held while
 * calling into the batcher or the sockets.
 */

#ifndef GENAX_SERVE_SERVER_HH
#define GENAX_SERVE_SERVER_HH

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hh"
#include "serve/batcher.hh"
#include "serve/socket.hh"

namespace genax {

class Server
{
  public:
    Server(AlignService &service, Batcher &batcher)
        : _service(service), _batcher(batcher)
    {
    }
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen on `ep` and start accepting. */
    Status start(const Endpoint &ep);

    /** The endpoint actually bound (real port for tcp:0). */
    const Endpoint &boundEndpoint() const
    {
        return _listener.boundEndpoint();
    }

    /** Stop accepting, tear down live connections, stop the batcher,
     *  join everything. Idempotent. */
    void stop();

    u64
    connectionsServed() const
    {
        return _connectionsServed.load(std::memory_order_relaxed);
    }

  private:
    void acceptLoop();
    void handleConnection(Socket sock, size_t slot);

    AlignService &_service;
    Batcher &_batcher;
    ListenSocket _listener;
    std::atomic<bool> _stop{false};
    std::atomic<u64> _connectionsServed{0};
    std::thread _acceptThread;

    Mutex _mu;
    /** One slot per connection ever accepted: its handler thread and
     *  its fd (-1 once the handler finished). Slots are appended
     *  only; stop() shuts down every live fd, then joins. */
    std::vector<std::thread> _threads GENAX_GUARDED_BY(_mu);
    std::vector<int> _fds GENAX_GUARDED_BY(_mu);
};

} // namespace genax

#endif // GENAX_SERVE_SERVER_HH
