#include "serve/protocol.hh"

#include "io/store.hh"

namespace genax {

namespace {

/** Little-endian append of a POD integer. */
template <typename T>
void
putInt(std::string &out, T v)
{
    for (size_t i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** Bounds-checked little-endian read; advances `off`. */
template <typename T>
Status
getInt(std::string_view in, size_t &off, T &out)
{
    if (off > in.size() || in.size() - off < sizeof(T))
        return invalidInputError("truncated frame payload");
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i)
        v |= static_cast<T>(static_cast<u8>(in[off + i])) << (8 * i);
    off += sizeof(T);
    out = v;
    return okStatus();
}

/** Length-prefixed (u32) byte string. */
void
putBytes(std::string &out, std::string_view bytes)
{
    putInt<u32>(out, static_cast<u32>(bytes.size()));
    out.append(bytes.data(), bytes.size());
}

Status
getBytes(std::string_view in, size_t &off, std::string &out)
{
    u32 len = 0;
    GENAX_TRY(getInt<u32>(in, off, len));
    if (in.size() - off < len)
        return invalidInputError("truncated frame payload");
    out.assign(in.data() + off, len);
    off += len;
    return okStatus();
}

/** Checksum over the header's first 24 bytes (everything before
 *  headerChecksum itself). */
u64
headerDigest(const FrameHeader &hdr)
{
    return storeChecksum(&hdr,
                         offsetof(FrameHeader, headerChecksum));
}

} // namespace

const char *
frameTypeName(FrameType t)
{
    switch (t) {
    case FrameType::Hello:
        return "hello";
    case FrameType::HelloAck:
        return "hello-ack";
    case FrameType::AlignRequest:
        return "align-request";
    case FrameType::AlignResponse:
        return "align-response";
    case FrameType::Error:
        return "error";
    case FrameType::StatsRequest:
        return "stats-request";
    case FrameType::StatsReply:
        return "stats-reply";
    }
    return "unknown";
}

std::string
encodeFrame(FrameType type, std::string_view payload)
{
    FrameHeader hdr{};
    std::memcpy(hdr.magic, kFrameMagic, sizeof(hdr.magic));
    hdr.version = kProtocolVersion;
    hdr.type = static_cast<u16>(type);
    hdr.payloadBytes = payload.size();
    hdr.payloadChecksum = storeChecksum(payload.data(), payload.size());
    hdr.headerChecksum = headerDigest(hdr);

    std::string out;
    out.reserve(sizeof(hdr) + payload.size());
    out.append(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    out.append(payload.data(), payload.size());
    return out;
}

StatusOr<FrameHeader>
decodeFrameHeader(const void *bytes)
{
    FrameHeader hdr;
    std::memcpy(&hdr, bytes, sizeof(hdr));
    if (std::memcmp(hdr.magic, kFrameMagic, sizeof(hdr.magic)) != 0)
        return invalidInputError("bad frame magic (not a genax_serve "
                                 "stream, or the stream lost sync)");
    if (hdr.headerChecksum != headerDigest(hdr))
        return invalidInputError("frame header checksum mismatch");
    if (hdr.version != kProtocolVersion)
        return invalidInputError(
            "unsupported protocol version " +
            std::to_string(hdr.version) + " (this build speaks " +
            std::to_string(kProtocolVersion) + ")");
    if (hdr.payloadBytes > kMaxFramePayload)
        return invalidInputError(
            "frame payload claims " +
            std::to_string(hdr.payloadBytes) +
            " bytes, beyond the protocol maximum");
    return hdr;
}

Status
validateFramePayload(const FrameHeader &hdr, std::string_view payload)
{
    if (payload.size() != hdr.payloadBytes)
        return internalError("frame payload length mismatch");
    if (storeChecksum(payload.data(), payload.size()) !=
        hdr.payloadChecksum)
        return invalidInputError("frame payload checksum mismatch");
    return okStatus();
}

std::string
encodeAlignRequest(const std::vector<FastqRecord> &reads)
{
    std::string out;
    putInt<u32>(out, static_cast<u32>(reads.size()));
    for (const auto &r : reads) {
        putBytes(out, r.name);
        putBytes(out,
                 std::string_view(
                     reinterpret_cast<const char *>(r.seq.data()),
                     r.seq.size()));
        putBytes(out,
                 std::string_view(
                     reinterpret_cast<const char *>(r.qual.data()),
                     r.qual.size()));
    }
    return out;
}

StatusOr<std::vector<FastqRecord>>
decodeAlignRequest(std::string_view payload)
{
    size_t off = 0;
    u32 count = 0;
    GENAX_TRY(getInt<u32>(payload, off, count));
    std::vector<FastqRecord> reads;
    reads.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        FastqRecord rec;
        GENAX_TRY(getBytes(payload, off, rec.name));
        std::string seq, qual;
        GENAX_TRY(getBytes(payload, off, seq));
        GENAX_TRY(getBytes(payload, off, qual));
        rec.seq.assign(seq.begin(), seq.end());
        for (u8 code : rec.seq) {
            if (code > 3)
                return invalidInputError(
                    "align request carries a non-2-bit base code");
        }
        rec.qual.assign(qual.begin(), qual.end());
        reads.push_back(std::move(rec));
    }
    if (off != payload.size())
        return invalidInputError("align request has trailing bytes");
    return reads;
}

std::string
encodeAlignResponse(const std::vector<std::string> &samLines)
{
    std::string out;
    putInt<u32>(out, static_cast<u32>(samLines.size()));
    for (const auto &line : samLines)
        putBytes(out, line);
    return out;
}

StatusOr<std::vector<std::string>>
decodeAlignResponse(std::string_view payload)
{
    size_t off = 0;
    u32 count = 0;
    GENAX_TRY(getInt<u32>(payload, off, count));
    std::vector<std::string> lines;
    lines.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        std::string line;
        GENAX_TRY(getBytes(payload, off, line));
        lines.push_back(std::move(line));
    }
    if (off != payload.size())
        return invalidInputError("align response has trailing bytes");
    return lines;
}

std::string
encodeError(const Status &s)
{
    std::string out;
    putInt<u32>(out, static_cast<u32>(s.code()));
    putBytes(out, s.message());
    return out;
}

Status
decodeError(std::string_view payload, Status &out)
{
    size_t off = 0;
    u32 code = 0;
    GENAX_TRY(getInt<u32>(payload, off, code));
    std::string message;
    GENAX_TRY(getBytes(payload, off, message));
    if (code == 0 || code > static_cast<u32>(StatusCode::EndOfStream))
        return invalidInputError("error frame carries a bad status "
                                 "code");
    out = Status(static_cast<StatusCode>(code), std::move(message));
    return okStatus();
}

} // namespace genax
