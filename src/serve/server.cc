#include "serve/server.hh"

#include <utility>

#include <sys/socket.h>

#include "common/logging.hh"

namespace genax {

Server::~Server()
{
    stop();
}

Status
Server::start(const Endpoint &ep)
{
    GENAX_TRY_ASSIGN(_listener, ListenSocket::listen(ep));
    _acceptThread = std::thread([this] { acceptLoop(); });
    return okStatus();
}

void
Server::stop()
{
    if (_stop.exchange(true))
        return; // first stopper owns the teardown
    // Join before closing: acceptFor polls with a bounded timeout,
    // so the loop re-checks _stop within ~100ms. Closing the fd
    // while the accept thread still reads it would be a race.
    if (_acceptThread.joinable())
        _acceptThread.join();
    _listener.close();

    // Unblock handlers stuck in recv: a shutdown fd reads EOF.
    {
        const MutexLock lk(_mu);
        for (int fd : _fds) {
            if (fd >= 0)
                ::shutdown(fd, SHUT_RDWR);
        }
    }
    // Unblock handlers stuck in the batcher: pending requests fail
    // with Unavailable and the handlers wind down.
    _batcher.stop();

    std::vector<std::thread> threads;
    {
        const MutexLock lk(_mu);
        threads.swap(_threads);
    }
    for (auto &t : threads) {
        if (t.joinable())
            t.join();
    }
}

void
Server::acceptLoop()
{
    while (!_stop.load(std::memory_order_relaxed)) {
        auto accepted = _listener.acceptFor(100);
        if (!accepted.ok()) {
            GENAX_WARN("accept failed: ", accepted.status().str());
            continue;
        }
        if (!accepted->has_value())
            continue; // timeout or transient accept failure
        Socket sock = std::move(**accepted);
        const MutexLock lk(_mu);
        const size_t slot = _threads.size();
        _fds.push_back(sock.fd());
        _threads.emplace_back(
            [this, s = std::move(sock), slot]() mutable {
                handleConnection(std::move(s), slot);
            });
    }
}

void
Server::handleConnection(Socket sock, size_t slot)
{
    // Handshake: Hello (tenant name) → HelloAck (SAM header).
    std::string tenant = "anonymous";
    do {
        auto hello = sock.recvFrame();
        if (!hello.ok())
            break;
        if (hello->type != FrameType::Hello) {
            (void)sock.sendFrame(
                FrameType::Error,
                encodeError(failedPreconditionError(
                    std::string("expected a hello frame, got ") +
                    frameTypeName(hello->type))));
            break;
        }
        if (!hello->payload.empty())
            tenant = hello->payload;
        if (!sock.sendFrame(FrameType::HelloAck,
                            _service.headerText())
                 .ok())
            break;

        for (;;) {
            auto frame = sock.recvFrame();
            if (!frame.ok()) {
                // Clean close between frames is the normal end of a
                // conversation; anything else tore mid-frame.
                if (!isEndOfStream(frame.status()))
                    GENAX_WARN("connection to ", tenant,
                               " dropped: ", frame.status().str());
                break;
            }
            if (frame->type == FrameType::AlignRequest) {
                auto reads = decodeAlignRequest(frame->payload);
                if (!reads.ok()) {
                    (void)sock.sendFrame(
                        FrameType::Error,
                        encodeError(reads.status()));
                    break; // protocol violation: drop the stream
                }
                auto lines = _batcher.align(
                    tenant, std::move(reads).value());
                if (!lines.ok()) {
                    // Request-level failure (shed, shutdown): a
                    // clean Error frame; the connection survives.
                    if (!sock.sendFrame(FrameType::Error,
                                        encodeError(lines.status()))
                             .ok())
                        break;
                    continue;
                }
                if (!sock.sendFrame(FrameType::AlignResponse,
                                    encodeAlignResponse(*lines))
                         .ok())
                    break;
            } else if (frame->type == FrameType::StatsRequest) {
                if (!sock.sendFrame(
                            FrameType::StatsReply,
                            Batcher::statsText(_batcher.stats()))
                         .ok())
                    break;
            } else {
                (void)sock.sendFrame(
                    FrameType::Error,
                    encodeError(failedPreconditionError(
                        std::string("unexpected ") +
                        frameTypeName(frame->type) + " frame")));
                break;
            }
        }
    } while (false);

    sock.close();
    _connectionsServed.fetch_add(1, std::memory_order_relaxed);
    const MutexLock lk(_mu);
    _fds[slot] = -1;
}

} // namespace genax
