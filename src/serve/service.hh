/**
 * @file
 * Load-once alignment service: the daemon-resident engine the
 * batcher drives.
 *
 * Construction does everything an offline `genax_align --index` run
 * does once per invocation — parse/concatenate the reference, run
 * the PR 7 snapshot attach policy (zero-copy mmap when the snapshot
 * is healthy, rebuild-from-FASTA degradation when it is corrupt or
 * missing, hard FailedPrecondition on a reference mismatch), build
 * the engine and open the stream (`streamBegin`) — so every request
 * after that pays only alignment, never startup.
 *
 * Byte-identity contract: per-read mappings are a pure function of
 * (read, reference, config) — batch composition and the stream's
 * base read index only key fault injection and perf accounting — and
 * SAM text is produced by the exact pipelineSamRecord /
 * pipelineUnmappedRecord formatting the offline pipeline uses, with
 * the same SamWriter header. A client that writes headerText() plus
 * its returned lines therefore reproduces, byte for byte, the SAM an
 * offline `genax_align --index` run over its reads would have
 * written (tests/test_determinism.cc pins this at multiple
 * clients × batch sizes × thread counts).
 *
 * Not thread-safe: exactly one caller (the batcher's worker thread)
 * may touch alignBatch()/finish() — the engine's stream state is
 * single-owner by design, which is precisely why the batcher
 * serializes cross-client batches in front of it.
 */

#ifndef GENAX_SERVE_SERVICE_HH
#define GENAX_SERVE_SERVICE_HH

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "genax/pipeline.hh"
#include "io/fasta.hh"
#include "io/fastq.hh"
#include "swbase/bwamem_like.hh"

namespace genax {

/** Engine/config knobs for one daemon lifetime. */
struct ServiceConfig
{
    PipelineOptions::Engine engine = PipelineOptions::Engine::GenAx;
    u32 k = 12;
    u32 band = 40;
    u64 segments = 8;
    u64 segmentOverlap = 256;
    unsigned threads = 1;
    /** Optional index snapshot path (PR 7 attach semantics). */
    std::string indexSnapshot;
};

/** One batch's results: SAM lines plus per-read outcomes. */
struct BatchOutcome
{
    /** One SAM line per read (trailing newline included), in input
     *  order. */
    std::vector<std::string> samLines;
    /** Per-read outcome code, parallel to samLines. */
    enum : u8
    {
        kMapped = 0,
        kUnmapped = 1,
        kDegraded = 2,
    };
    std::vector<u8> outcomes;
    u64 mapped = 0;
    u64 unmapped = 0;
    u64 degraded = 0;
};

class AlignService
{
  public:
    /** Parse nothing — the reference is already in memory. Runs the
     *  snapshot policy, constructs the engine, opens the stream. */
    static StatusOr<std::unique_ptr<AlignService>>
    create(std::vector<FastaRecord> ref, const ServiceConfig &cfg);

    ~AlignService();
    AlignService(const AlignService &) = delete;
    AlignService &operator=(const AlignService &) = delete;

    /** SAM header text (@HD/@SQ/@PG) for this reference. */
    const std::string &headerText() const { return _header; }

    /** Align one cross-client batch (single-caller; see file
     *  header). */
    BatchOutcome alignBatch(const std::vector<FastqRecord> &reads);

    /** Close the engine stream (idempotent; called at shutdown). */
    void finish();

    /** Snapshot disposition for startup logs / stats. */
    const IndexAttachment &indexAttachment() const { return _attach; }

    /** Whole service degraded to the software engine (band beyond
     *  the SillaX bound). */
    bool softwareFallback() const { return _softwareFallback; }

    u64 readsServed() const { return _base; }

  private:
    AlignService() = default;

    std::vector<FastaRecord> _ref;
    std::optional<ContigMap> _contigs;
    IndexAttachment _attach;
    bool _softwareFallback = false;
    std::optional<GenAxSystem> _system;  //!< GenAx engine
    std::optional<BwaMemLike> _aligner;  //!< software engine
    bool _finished = false;
    u64 _base = 0; //!< admitted reads before the current batch

    /** Persistent SAM formatting stage: the writer emits its header
     *  once at construction (captured into _header), then each
     *  batch's records are staged here and split back per read. */
    std::ostringstream _stage;
    std::optional<SamWriter> _sam;
    std::string _header;
};

} // namespace genax

#endif // GENAX_SERVE_SERVICE_HH
