#include "seed/smem_engine.hh"

#include <algorithm>
#include <bit>

#include "common/check.hh"

namespace genax {

SmemEngine::SmemEngine(const SeedIndex &index, const SeedingConfig &cfg)
    : _index(index), _cfg(cfg),
      _cam(cfg.camSize, cfg.binarySearchFallback)
{
}

void
SmemEngine::resetStats()
{
    _stats = {};
    _cam.resetStats();
}

PosList
SmemEngine::primeCandidates(std::span<const u32> hits, u32 offset)
{
    PosList out{ArenaAllocator<u32>(&_arena)};
    out.reserve(hits.size());
    for (u32 h : hits)
        if (h >= offset)
            out.push_back(h - offset);
    return out;
}

PosList
SmemEngine::tryExactMatch(const Seq &read, std::span<const u64> keys)
{
    const u32 k = _index.k();
    const u32 len = static_cast<u32>(read.size());

    // k-mers spanning the whole read: offsets 0, k, 2k, ... plus a
    // final overlapping k-mer ending at the last base.
    ArenaVector<u32> offsets{ArenaAllocator<u32>(&_arena)};
    offsets.reserve(len / k + 2);
    for (u32 off = 0; off + k <= len; off += k)
        offsets.push_back(off);
    if (offsets.back() + k != len)
        offsets.push_back(len - k);

    // Batched offset loop: prefetch every key's probe line up front,
    // so the dependent table loads of consecutive lookups overlap
    // instead of serializing on cache misses.
    for (u32 off : offsets)
        _index.lookupPrefetch(keys[off]);

    struct Lookup
    {
        u32 offset;
        std::span<const u32> hits;
    };
    ArenaVector<Lookup> lookups{ArenaAllocator<Lookup>(&_arena)};
    lookups.reserve(offsets.size());
    for (u32 off : offsets) {
        const auto hits = _index.lookup(keys[off]);
        ++_stats.indexLookups;
        if (hits.empty())
            return PosList{
                ArenaAllocator<u32>(&_arena)}; // some k-mer absent
        lookups.push_back({off, hits});
    }

    // Start from the smallest hit set, intersect in ascending size.
    std::sort(lookups.begin(), lookups.end(),
              [](const Lookup &a, const Lookup &b) {
                  return a.hits.size() < b.hits.size();
              });
    PosList cand =
        primeCandidates(lookups[0].hits, lookups[0].offset);
    PosList next{ArenaAllocator<u32>(&_arena)};
    for (size_t i = 1; i < lookups.size() && !cand.empty(); ++i) {
        _cam.intersectInto(cand, lookups[i].hits, lookups[i].offset,
                           next);
        cand.swap(next);
    }
    return cand;
}

std::pair<u32, std::span<const u32>>
SmemEngine::rmem(const Seq &read, u32 pivot, std::span<const u64> keys)
{
    const u32 k = _index.k();
    const u32 len = static_cast<u32>(read.size());
    const u32 max_len = len - pivot; // longest possible RMEM

    const auto first = _index.lookup(keys[pivot]);
    ++_stats.indexLookups;
    if (first.empty())
        return {0, {}};

    // Pivot-normalizing the first hit list (offset 0) is the
    // identity, so the candidate set starts as a zero-copy view of
    // the postings array; intersections ping-pong between two arena
    // buffers and the view tracks the latest result.
    std::span<const u32> cand = first;
    PosList buf_a{ArenaAllocator<u32>(&_arena)};
    PosList buf_b{ArenaAllocator<u32>(&_arena)};
    PosList *next = &buf_a;
    u32 length = k;

    // Extension by an overlapping or abutting k-mer at read offset
    // pivot + t certifies length t + k.
    auto try_extend_hits = [&](u32 t, std::span<const u32> hits) {
        _cam.intersectInto(cand, hits, t, *next);
        if (next->empty())
            return false;
        cand = *next;
        next = next == &buf_a ? &buf_b : &buf_a;
        length = t + k;
        return true;
    };
    auto try_extend = [&](u32 t) {
        const auto hits = _index.lookup(keys[pivot + t]);
        ++_stats.indexLookups;
        return try_extend_hits(t, hits);
    };

    // Probing optimization: the expensive case is intersecting the
    // first two k-mers when the second one has a pathological hit
    // list (poly-A etc.). If the stride-k second k-mer overflows the
    // CAM, probe lower strides and start from the smallest list.
    bool probed_failure = false;
    if (_cfg.probing && length + k <= max_len) {
        const u32 t0 = length; // the standard stride-k second k-mer
        auto hits0 = _index.lookup(keys[pivot + t0]);
        ++_stats.indexLookups;
        u32 best_t = t0;
        auto best_hits = hits0;
        if (hits0.size() > _cfg.probeThreshold) {
            for (u32 s = k / 2; s >= 1; s /= 2) {
                const u32 t = length - k + s;
                const auto hits = _index.lookup(keys[pivot + t]);
                ++_stats.indexLookups;
                if (hits.size() < best_hits.size()) {
                    best_hits = hits;
                    best_t = t;
                }
                if (s == 1)
                    break;
            }
        }
        probed_failure = !try_extend_hits(best_t, best_hits);
    }

    // Phase A: stride by k while the intersection stays non-empty.
    if (!probed_failure) {
        bool failed = false;
        while (length + k <= max_len) {
            if (!try_extend(length)) {
                failed = true;
                break;
            }
        }
        // Boundary: a final overlapping k-mer can certify the whole
        // remaining read (only sound when it overlaps the certified
        // prefix, i.e. when phase A ran out of room, not when it
        // failed mid-read).
        if (!failed && length < max_len && max_len <= length + k) {
            if (try_extend(max_len - k))
                GENAX_CHECK(length == max_len, "boundary extension");
        }
    }

    // Phase B: binary stride refinement of the final extension. The
    // strides must be powers of two (not k/2, k/4, ... which for
    // non-power-of-two k cannot compose every remainder: with k = 12
    // the set {6, 3, 1} has no subset summing to 2), so that any
    // residual extension in [0, k-1] is reachable.
    if (_cfg.strideRefinement && k >= 2) {
        for (u32 s = std::bit_floor(k - 1); s >= 1; s /= 2) {
            if (length + s <= max_len)
                try_extend(length + s - k);
            if (s == 1)
                break;
        }
    }
    return {length, cand};
}

std::vector<Smem>
SmemEngine::seed(const Seq &read)
{
    // Recycle the previous read's position lists and scratch; see
    // the lifetime note in the header.
    _arena.reset();

    const u32 k = _index.k();
    const u32 len = static_cast<u32>(read.size());
    ++_stats.reads;
    if (len < k)
        return {};

    // One rolling pass packs the k-mer key of every read offset —
    // O(len) total instead of O(k) per pivot — and both the
    // exact-match path and every rmem() extension index into it.
    const u32 pivots = len - k + 1;
    ArenaVector<u64> keys{ArenaAllocator<u64>(&_arena)};
    keys.reserve(pivots);
    u64 key = _index.packKmer(read, 0);
    keys.push_back(key);
    const u32 top_shift = 2 * (k - 1);
    for (u32 p = 1; p < pivots; ++p) {
        key = (key >> 2) |
              (static_cast<u64>(read[p + k - 1] & 3) << top_shift);
        keys.push_back(key);
    }

    if (_cfg.exactMatchFastPath) {
        auto cand = tryExactMatch(read, keys);
        if (!cand.empty()) {
            ++_stats.exactMatchReads;
            ++_stats.smems;
            _stats.hitsReported += cand.size();
            Smem smem;
            smem.qryBegin = 0;
            smem.qryEnd = len;
            smem.positions = std::move(cand);
            _stats.cam += _cam.stats();
            _cam.resetStats();
            std::vector<Smem> out;
            out.push_back(std::move(smem));
            return out;
        }
    }

    // Prefetch the pivot k-mers' probe lines a fixed distance ahead
    // of the rmem loop: the first lookup of each pivot is the one
    // predictable table access, and overlapping its cache miss with
    // the previous pivots' work takes it off the critical path.
    constexpr u32 kLookahead = 8;
    for (u32 p = 0; p < std::min(pivots, kLookahead); ++p)
        _index.lookupPrefetch(keys[p]);

    std::vector<Smem> out;
    u32 max_end = 0;
    for (u32 pivot = 0; pivot + k <= len; ++pivot) {
        if (pivot + kLookahead < pivots)
            _index.lookupPrefetch(keys[pivot + kLookahead]);
        auto [length, cand] = rmem(read, pivot, keys);
        if (length == 0)
            continue;
        // SMEM interval sanity: an RMEM certifies at least one whole
        // k-mer, never runs past the read, and always carries the
        // reference positions that witnessed it (sorted, so the CAM
        // and downstream anchoring can merge them).
        GENAX_CHECK(length >= k && pivot + length <= len,
                    "RMEM interval corrupt: pivot=", pivot,
                    " length=", length, " read=", len);
        GENAX_CHECK(!cand.empty(),
                    "RMEM of length ", length, " with no positions");
        GENAX_DCHECK(std::is_sorted(cand.begin(), cand.end()),
                     "RMEM hit positions not sorted");
        const u32 end = pivot + length;
        if (_cfg.smemFilter && end <= max_end)
            continue; // contained in an earlier SMEM
        max_end = std::max(max_end, end);
        ++_stats.smems;
        _stats.hitsReported += cand.size();
        Smem smem;
        smem.qryBegin = pivot;
        smem.qryEnd = end;
        // Materialize the surviving candidate view (rmem()'s span
        // dies at its next call); contained RMEMs — the overwhelming
        // majority — were dropped above without a copy.
        smem.positions = PosList{ArenaAllocator<u32>(&_arena)};
        smem.positions.assign(cand.begin(), cand.end());
        out.push_back(std::move(smem));
    }
    _stats.cam += _cam.stats();
    _cam.resetStats();
    return out;
}

} // namespace genax
