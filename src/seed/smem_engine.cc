#include "seed/smem_engine.hh"

#include <algorithm>
#include <bit>

#include "common/check.hh"

namespace genax {

SmemEngine::SmemEngine(const SeedIndex &index, const SeedingConfig &cfg)
    : _index(index), _cfg(cfg),
      _cam(cfg.camSize, cfg.binarySearchFallback)
{
}

void
SmemEngine::resetStats()
{
    _stats = {};
    _cam.resetStats();
}

PosList
SmemEngine::primeCandidates(std::span<const u32> hits, u32 offset)
{
    PosList out{ArenaAllocator<u32>(&_arena)};
    out.reserve(hits.size());
    for (u32 h : hits)
        if (h >= offset)
            out.push_back(h - offset);
    return out;
}

PosList
SmemEngine::tryExactMatch(const Seq &read)
{
    const u32 k = _index.k();
    const u32 len = static_cast<u32>(read.size());

    // k-mers spanning the whole read: offsets 0, k, 2k, ... plus a
    // final overlapping k-mer ending at the last base.
    ArenaVector<u32> offsets{ArenaAllocator<u32>(&_arena)};
    offsets.reserve(len / k + 2);
    for (u32 off = 0; off + k <= len; off += k)
        offsets.push_back(off);
    if (offsets.back() + k != len)
        offsets.push_back(len - k);

    // Batched offset loop: pack every key up front and prefetch its
    // probe line, so the dependent table loads of consecutive
    // lookups overlap instead of serializing on cache misses.
    ArenaVector<u64> keys{ArenaAllocator<u64>(&_arena)};
    keys.reserve(offsets.size());
    for (u32 off : offsets)
        keys.push_back(_index.packKmer(read, off));
    for (u64 key : keys)
        _index.lookupPrefetch(key);

    struct Lookup
    {
        u32 offset;
        std::span<const u32> hits;
    };
    ArenaVector<Lookup> lookups{ArenaAllocator<Lookup>(&_arena)};
    lookups.reserve(offsets.size());
    for (size_t i = 0; i < offsets.size(); ++i) {
        const auto hits = _index.lookup(keys[i]);
        ++_stats.indexLookups;
        if (hits.empty())
            return PosList{
                ArenaAllocator<u32>(&_arena)}; // some k-mer absent
        lookups.push_back({offsets[i], hits});
    }

    // Start from the smallest hit set, intersect in ascending size.
    std::sort(lookups.begin(), lookups.end(),
              [](const Lookup &a, const Lookup &b) {
                  return a.hits.size() < b.hits.size();
              });
    PosList cand =
        primeCandidates(lookups[0].hits, lookups[0].offset);
    PosList next{ArenaAllocator<u32>(&_arena)};
    for (size_t i = 1; i < lookups.size() && !cand.empty(); ++i) {
        _cam.intersectInto(cand, lookups[i].hits, lookups[i].offset,
                           next);
        cand.swap(next);
    }
    return cand;
}

std::pair<u32, PosList>
SmemEngine::rmem(const Seq &read, u32 pivot)
{
    const u32 k = _index.k();
    const u32 len = static_cast<u32>(read.size());
    const u32 max_len = len - pivot; // longest possible RMEM

    const auto first = _index.lookup(
        _index.packKmer(read, pivot));
    ++_stats.indexLookups;
    if (first.empty())
        return {0, PosList{ArenaAllocator<u32>(&_arena)}};

    PosList cand = primeCandidates(first, 0);
    PosList next{ArenaAllocator<u32>(&_arena)};
    u32 length = k;

    // Extension by an overlapping or abutting k-mer at read offset
    // pivot + t certifies length t + k.
    auto try_extend_hits = [&](u32 t, std::span<const u32> hits) {
        _cam.intersectInto(cand, hits, t, next);
        if (next.empty())
            return false;
        cand.swap(next);
        length = t + k;
        return true;
    };
    auto try_extend = [&](u32 t) {
        const auto hits = _index.lookup(
            _index.packKmer(read, pivot + t));
        ++_stats.indexLookups;
        return try_extend_hits(t, hits);
    };

    // Probing optimization: the expensive case is intersecting the
    // first two k-mers when the second one has a pathological hit
    // list (poly-A etc.). If the stride-k second k-mer overflows the
    // CAM, probe lower strides and start from the smallest list.
    bool probed_failure = false;
    if (_cfg.probing && length + k <= max_len) {
        const u32 t0 = length; // the standard stride-k second k-mer
        auto hits0 = _index.lookup(_index.packKmer(read, pivot + t0));
        ++_stats.indexLookups;
        u32 best_t = t0;
        auto best_hits = hits0;
        if (hits0.size() > _cfg.probeThreshold) {
            for (u32 s = k / 2; s >= 1; s /= 2) {
                const u32 t = length - k + s;
                const auto hits = _index.lookup(
                    _index.packKmer(read, pivot + t));
                ++_stats.indexLookups;
                if (hits.size() < best_hits.size()) {
                    best_hits = hits;
                    best_t = t;
                }
                if (s == 1)
                    break;
            }
        }
        probed_failure = !try_extend_hits(best_t, best_hits);
    }

    // Phase A: stride by k while the intersection stays non-empty.
    if (!probed_failure) {
        bool failed = false;
        while (length + k <= max_len) {
            if (!try_extend(length)) {
                failed = true;
                break;
            }
        }
        // Boundary: a final overlapping k-mer can certify the whole
        // remaining read (only sound when it overlaps the certified
        // prefix, i.e. when phase A ran out of room, not when it
        // failed mid-read).
        if (!failed && length < max_len && max_len <= length + k) {
            if (try_extend(max_len - k))
                GENAX_CHECK(length == max_len, "boundary extension");
        }
    }

    // Phase B: binary stride refinement of the final extension. The
    // strides must be powers of two (not k/2, k/4, ... which for
    // non-power-of-two k cannot compose every remainder: with k = 12
    // the set {6, 3, 1} has no subset summing to 2), so that any
    // residual extension in [0, k-1] is reachable.
    if (_cfg.strideRefinement && k >= 2) {
        for (u32 s = std::bit_floor(k - 1); s >= 1; s /= 2) {
            if (length + s <= max_len)
                try_extend(length + s - k);
            if (s == 1)
                break;
        }
    }
    return {length, std::move(cand)};
}

std::vector<Smem>
SmemEngine::seed(const Seq &read)
{
    // Recycle the previous read's position lists and scratch; see
    // the lifetime note in the header.
    _arena.reset();

    const u32 k = _index.k();
    const u32 len = static_cast<u32>(read.size());
    ++_stats.reads;
    if (len < k)
        return {};

    if (_cfg.exactMatchFastPath) {
        auto cand = tryExactMatch(read);
        if (!cand.empty()) {
            ++_stats.exactMatchReads;
            ++_stats.smems;
            _stats.hitsReported += cand.size();
            Smem smem;
            smem.qryBegin = 0;
            smem.qryEnd = len;
            smem.positions = std::move(cand);
            _stats.cam += _cam.stats();
            _cam.resetStats();
            std::vector<Smem> out;
            out.push_back(std::move(smem));
            return out;
        }
    }

    std::vector<Smem> out;
    u32 max_end = 0;
    for (u32 pivot = 0; pivot + k <= len; ++pivot) {
        auto [length, cand] = rmem(read, pivot);
        if (length == 0)
            continue;
        // SMEM interval sanity: an RMEM certifies at least one whole
        // k-mer, never runs past the read, and always carries the
        // reference positions that witnessed it (sorted, so the CAM
        // and downstream anchoring can merge them).
        GENAX_CHECK(length >= k && pivot + length <= len,
                    "RMEM interval corrupt: pivot=", pivot,
                    " length=", length, " read=", len);
        GENAX_CHECK(!cand.empty(),
                    "RMEM of length ", length, " with no positions");
        GENAX_DCHECK(std::is_sorted(cand.begin(), cand.end()),
                     "RMEM hit positions not sorted");
        const u32 end = pivot + length;
        if (_cfg.smemFilter && end <= max_end)
            continue; // contained in an earlier SMEM
        max_end = std::max(max_end, end);
        ++_stats.smems;
        _stats.hitsReported += cand.size();
        Smem smem;
        smem.qryBegin = pivot;
        smem.qryEnd = end;
        smem.positions = std::move(cand);
        out.push_back(std::move(smem));
    }
    _stats.cam += _cam.stats();
    _cam.resetStats();
    return out;
}

} // namespace genax
