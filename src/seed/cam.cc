#include "seed/cam.hh"

namespace genax {

std::vector<u32>
CamModel::intersect(const std::vector<u32> &candidates,
                    std::span<const u32> hits, u32 offset)
{
    std::vector<u32> out;
    intersectInto(candidates, hits, offset, out);
    return out;
}

} // namespace genax
