#include "seed/cam.hh"

#include <algorithm>
#include <bit>

#include "common/check.hh"
#include "common/faultinject.hh"

namespace genax {

std::vector<u32>
CamModel::intersect(const std::vector<u32> &candidates,
                    std::span<const u32> hits, u32 offset)
{
    // Both inputs must arrive sorted: the merge below and the
    // binary-search datapath it models silently produce garbage
    // otherwise.
    GENAX_DCHECK(std::is_sorted(candidates.begin(), candidates.end()),
                 "CAM candidate set not sorted");
    GENAX_DCHECK(std::is_sorted(hits.begin(), hits.end()),
                 "CAM hit list not sorted");
    // Cost accounting first (the functional result is identical on
    // all paths). The controller knows both set sizes up front, so
    // with the fallback enabled it picks the cheaper datapath.
    // An injected seed.cam.overflow fault forces the capacity-
    // overflow handling so chaos tests can drive the fallback
    // datapath with ordinary-sized hit lists.
    const bool forced_overflow = faultFires(fault::kCamOverflow);
    const u64 passes = (hits.size() + _capacity - 1) / _capacity;
    const u64 cam_cost = passes * candidates.size();
    const u64 bin_cost =
        candidates.size() *
        std::bit_width(static_cast<u64>(hits.size()));
    if (_binaryFallback &&
        (forced_overflow ||
         (hits.size() > _capacity && bin_cost < cam_cost))) {
        // Binary-search each candidate in the sorted position table.
        _stats.binarySteps += bin_cost;
        ++_stats.overflowFallbacks;
    } else {
        // Stream the hit list into the CAM (multi-pass when it
        // exceeds capacity) and search every candidate per pass.
        _stats.loads += hits.size();
        _stats.searches += passes * candidates.size();
    }

    // Two-pointer merge over the sorted inputs.
    std::vector<u32> out;
    out.reserve(std::min(candidates.size(), hits.size()));
    size_t ci = 0, hi = 0;
    while (ci < candidates.size() && hi < hits.size()) {
        if (hits[hi] < offset) {
            ++hi;
            continue;
        }
        const u32 norm = hits[hi] - offset;
        if (candidates[ci] < norm) {
            ++ci;
        } else if (norm < candidates[ci]) {
            ++hi;
        } else {
            out.push_back(norm);
            ++ci;
            ++hi;
        }
    }
    return out;
}

} // namespace genax
