/**
 * @file
 * Model of the per-lane 512-entry CAM used for hit-set intersection
 * (Section V), with operation accounting for the Figure 16 bench.
 *
 * The new k-mer's (normalized) hit list is loaded into the CAM and
 * the candidate set streams through it, one search per candidate.
 * When the hit list exceeds the CAM capacity, the baseline design
 * loads it in ceil(|list| / capacity) passes and re-streams the
 * candidates each pass; the optimized design instead binary-searches
 * each candidate in the sorted position-table list, which costs
 * |candidates| * ceil(log2 |list|) probe steps — a large win on the
 * pathological k-mers (poly-A etc.) whose hit lists are huge.
 */

#ifndef GENAX_SEED_CAM_HH
#define GENAX_SEED_CAM_HH

#include <algorithm>
#include <bit>
#include <span>
#include <vector>

#include "common/check.hh"
#include "common/faultinject.hh"
#include "common/types.hh"

namespace genax {

/** Operation counts accumulated by the CAM model. */
struct CamStats
{
    u64 loads = 0;        //!< CAM entry writes
    u64 searches = 0;     //!< CAM search operations
    u64 binarySteps = 0;  //!< binary-search probe steps
    u64 overflowFallbacks = 0; //!< intersections that used the fallback

    /** The paper's Figure 16b metric: CAM search operations plus
     *  binary-search probes. Entry writes (loads) stream from SRAM
     *  at full bandwidth and are tracked separately. */
    u64 lookups() const { return searches + binarySteps; }

    void
    operator+=(const CamStats &o)
    {
        loads += o.loads;
        searches += o.searches;
        binarySteps += o.binarySteps;
        overflowFallbacks += o.overflowFallbacks;
    }
};

/** 512-entry CAM intersection unit (capacity configurable). */
class CamModel
{
  public:
    explicit CamModel(u32 capacity = 512, bool binary_fallback = true)
        : _capacity(capacity), _binaryFallback(binary_fallback)
    {
        GENAX_CHECK(capacity > 0, "CAM with zero capacity");
    }

    /**
     * Intersect the candidate set with a hit list, where each hit is
     * first normalized by subtracting `offset` (hits below `offset`
     * cannot correspond to the pivot and are dropped).
     *
     * Candidates must be sorted ascending; the result is sorted.
     *
     * @param candidates current candidate positions (pivot-normalized)
     * @param hits       position-table list for the new k-mer (sorted)
     * @param offset     read offset of the new k-mer relative to pivot
     */
    std::vector<u32> intersect(const std::vector<u32> &candidates,
                               std::span<const u32> hits, u32 offset);

    /**
     * Same intersection, writing into a caller-owned output vector
     * (cleared first) — the allocation-free form the arena-backed
     * seeding hot path uses. `out` must not alias `candidates`.
     * Accounting and results are identical to intersect().
     */
    template <typename OutVec>
    void
    intersectInto(std::span<const u32> candidates,
                  std::span<const u32> hits, u32 offset, OutVec &out)
    {
        GENAX_DCHECK(
            std::is_sorted(candidates.begin(), candidates.end()),
            "CAM candidate set not sorted");
        GENAX_DCHECK(std::is_sorted(hits.begin(), hits.end()),
                     "CAM hit list not sorted");
        // Cost accounting first (the functional result is identical
        // on all paths). The controller knows both set sizes up
        // front, so with the fallback enabled it picks the cheaper
        // datapath. An injected seed.cam.overflow fault forces the
        // capacity-overflow handling so chaos tests can drive the
        // fallback datapath with ordinary-sized hit lists.
        const bool forced_overflow = faultFires(fault::kCamOverflow);
        const u64 passes = (hits.size() + _capacity - 1) / _capacity;
        const u64 cam_cost = passes * candidates.size();
        const u64 bin_cost =
            candidates.size() *
            std::bit_width(static_cast<u64>(hits.size()));
        if (_binaryFallback &&
            (forced_overflow ||
             (hits.size() > _capacity && bin_cost < cam_cost))) {
            // Binary-search each candidate in the sorted position
            // table.
            _stats.binarySteps += bin_cost;
            ++_stats.overflowFallbacks;
        } else {
            // Stream the hit list into the CAM (multi-pass when it
            // exceeds capacity) and search every candidate per pass.
            _stats.loads += hits.size();
            _stats.searches += passes * candidates.size();
        }

        // Two-pointer merge over the sorted inputs.
        out.clear();
        out.reserve(std::min(candidates.size(), hits.size()));
        size_t ci = 0, hi = 0;
        while (ci < candidates.size() && hi < hits.size()) {
            if (hits[hi] < offset) {
                ++hi;
                continue;
            }
            const u32 norm = hits[hi] - offset;
            if (candidates[ci] < norm) {
                ++ci;
            } else if (norm < candidates[ci]) {
                ++hi;
            } else {
                out.push_back(norm);
                ++ci;
                ++hi;
            }
        }
    }

    const CamStats &stats() const { return _stats; }
    void resetStats() { _stats = {}; }
    u32 capacity() const { return _capacity; }

  private:
    u32 _capacity;
    bool _binaryFallback;
    CamStats _stats;
};

} // namespace genax

#endif // GENAX_SEED_CAM_HH
