/**
 * @file
 * Model of the per-lane 512-entry CAM used for hit-set intersection
 * (Section V), with operation accounting for the Figure 16 bench.
 *
 * The new k-mer's (normalized) hit list is loaded into the CAM and
 * the candidate set streams through it, one search per candidate.
 * When the hit list exceeds the CAM capacity, the baseline design
 * loads it in ceil(|list| / capacity) passes and re-streams the
 * candidates each pass; the optimized design instead binary-searches
 * each candidate in the sorted position-table list, which costs
 * |candidates| * ceil(log2 |list|) probe steps — a large win on the
 * pathological k-mers (poly-A etc.) whose hit lists are huge.
 */

#ifndef GENAX_SEED_CAM_HH
#define GENAX_SEED_CAM_HH

#include <span>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"

namespace genax {

/** Operation counts accumulated by the CAM model. */
struct CamStats
{
    u64 loads = 0;        //!< CAM entry writes
    u64 searches = 0;     //!< CAM search operations
    u64 binarySteps = 0;  //!< binary-search probe steps
    u64 overflowFallbacks = 0; //!< intersections that used the fallback

    /** The paper's Figure 16b metric: CAM search operations plus
     *  binary-search probes. Entry writes (loads) stream from SRAM
     *  at full bandwidth and are tracked separately. */
    u64 lookups() const { return searches + binarySteps; }

    void
    operator+=(const CamStats &o)
    {
        loads += o.loads;
        searches += o.searches;
        binarySteps += o.binarySteps;
        overflowFallbacks += o.overflowFallbacks;
    }
};

/** 512-entry CAM intersection unit (capacity configurable). */
class CamModel
{
  public:
    explicit CamModel(u32 capacity = 512, bool binary_fallback = true)
        : _capacity(capacity), _binaryFallback(binary_fallback)
    {
        GENAX_CHECK(capacity > 0, "CAM with zero capacity");
    }

    /**
     * Intersect the candidate set with a hit list, where each hit is
     * first normalized by subtracting `offset` (hits below `offset`
     * cannot correspond to the pivot and are dropped).
     *
     * Candidates must be sorted ascending; the result is sorted.
     *
     * @param candidates current candidate positions (pivot-normalized)
     * @param hits       position-table list for the new k-mer (sorted)
     * @param offset     read offset of the new k-mer relative to pivot
     */
    std::vector<u32> intersect(const std::vector<u32> &candidates,
                               std::span<const u32> hits, u32 offset);

    const CamStats &stats() const { return _stats; }
    void resetStats() { _stats = {}; }
    u32 capacity() const { return _capacity; }

  private:
    u32 _capacity;
    bool _binaryFallback;
    CamStats _stats;
};

} // namespace genax

#endif // GENAX_SEED_CAM_HH
