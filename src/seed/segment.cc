#include "seed/segment.hh"

#include <algorithm>

#include "common/check.hh"

namespace genax {

GenomeSegments::GenomeSegments(const Seq &ref, const SegmentConfig &cfg)
    : _ref(ref), _cfg(cfg)
{
    GENAX_CHECK(cfg.segmentCount > 0, "segment count must be positive");
    GENAX_CHECK(!ref.empty(), "empty reference");

    const u64 base = (ref.size() + cfg.segmentCount - 1) /
                     cfg.segmentCount;
    for (u64 s = 0; s < cfg.segmentCount; ++s) {
        const u64 start = s * base;
        if (start >= ref.size())
            break;
        const u64 end = std::min<u64>(ref.size(),
                                      start + base + cfg.overlap);
        _starts.push_back(start);
        _lengths.push_back(end - start);
    }
}

Seq
GenomeSegments::bases(u64 i) const
{
    GENAX_CHECK(i < count(), "segment index out of range");
    const auto begin = _ref.begin() + static_cast<i64>(_starts[i]);
    return Seq(begin, begin + static_cast<i64>(_lengths[i]));
}

KmerIndex
GenomeSegments::buildIndex(u64 i) const
{
    return KmerIndex(bases(i), _cfg.k);
}

SeedIndex
GenomeSegments::buildSeedIndex(u64 i) const
{
    return SeedIndex(bases(i), _cfg.k);
}

} // namespace genax
