#include "seed/minimizer.hh"

#include <algorithm>

#include "common/check.hh"

namespace genax {

std::vector<Minimizer>
selectMinimizers(const Seq &s, u32 k, u32 w)
{
    GENAX_CHECK(k >= 1 && k <= 31, "minimizer k out of range");
    GENAX_CHECK(w >= 1, "minimizer window must be positive");
    std::vector<Minimizer> out;
    if (s.size() < k)
        return out;
    const u64 kmers = s.size() - k + 1;

    // Hashed keys of every k-mer (rolling pack).
    std::vector<u64> hash(kmers);
    const u64 mask =
        k == 32 ? ~u64{0} : ((u64{1} << (2 * k)) - 1);
    u64 key = 0;
    for (u32 i = 0; i < k; ++i)
        key |= static_cast<u64>(s[i] & 3) << (2 * i);
    for (u64 p = 0;; ++p) {
        hash[p] = minimizerHash(key);
        if (p + 1 >= kmers)
            break;
        key = ((key >> 2) |
               (static_cast<u64>(s[p + k] & 3) << (2 * (k - 1)))) &
              mask;
    }

    // Sliding-window minimum over w consecutive k-mers; report each
    // selected position once.
    u64 last_pos = ~u64{0};
    for (u64 win = 0; win + w <= kmers + 0; ++win) {
        u64 best = win;
        for (u64 j = win + 1; j < win + w; ++j) {
            if (hash[j] < hash[best])
                best = j;
        }
        if (best != last_pos) {
            out.push_back({hash[best], static_cast<u32>(best)});
            last_pos = best;
        }
    }
    // Degenerate short sequences (< w k-mers) still select one.
    if (out.empty() && kmers > 0) {
        u64 best = 0;
        for (u64 j = 1; j < kmers; ++j)
            if (hash[j] < hash[best])
                best = j;
        out.push_back({hash[best], static_cast<u32>(best)});
    }
    return out;
}

MinimizerIndex::MinimizerIndex(const Seq &ref, u32 k, u32 w)
    : _k(k), _w(w), _refLen(ref.size())
{
    auto mins = selectMinimizers(ref, k, w);
    std::sort(mins.begin(), mins.end(),
              [](const Minimizer &a, const Minimizer &b) {
                  return a.key != b.key ? a.key < b.key
                                        : a.pos < b.pos;
              });
    _keys.reserve(mins.size());
    _positions.reserve(mins.size());
    for (const auto &m : mins) {
        _keys.push_back(m.key);
        _positions.push_back(m.pos);
    }
}

std::span<const u32>
MinimizerIndex::lookup(u64 key) const
{
    const auto range =
        std::equal_range(_keys.begin(), _keys.end(), key);
    const size_t lo = static_cast<size_t>(range.first - _keys.begin());
    const size_t hi =
        static_cast<size_t>(range.second - _keys.begin());
    return {_positions.data() + lo, _positions.data() + hi};
}

double
MinimizerIndex::density() const
{
    const u64 kmers = _refLen >= _k ? _refLen - _k + 1 : 0;
    return kmers ? static_cast<double>(_keys.size()) / kmers : 0.0;
}

std::vector<Smem>
MinimizerIndex::seed(const Seq &read, u32 max_hits_per_minimizer) const
{
    std::vector<Smem> out;
    for (const auto &m : selectMinimizers(read, _k, _w)) {
        const auto hits = lookup(m.key);
        if (hits.empty() || hits.size() > max_hits_per_minimizer)
            continue;
        Smem s;
        s.qryBegin = m.pos;
        s.qryEnd = m.pos + _k;
        s.positions.assign(hits.begin(), hits.end());
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace genax
