/**
 * @file
 * Genome segmentation (Sections V and VI).
 *
 * GenAx segments the reference genome (512 segments for GRCh38) so
 * each segment's index/position tables fit in on-chip SRAM and can be
 * streamed in once per pass. Segments overlap by readLen - 1 bases so
 * every read alignment lies entirely inside at least one segment.
 *
 * Indexes are built on demand, one segment at a time — mirroring the
 * hardware, which holds exactly one segment's tables in SRAM.
 */

#ifndef GENAX_SEED_SEGMENT_HH
#define GENAX_SEED_SEGMENT_HH

#include <vector>

#include "common/dna.hh"
#include "seed/seed_index.hh"

namespace genax {

/** Segmentation parameters. */
struct SegmentConfig
{
    u64 segmentCount = 512;
    u64 overlap = 128; //!< >= readLen - 1 so no alignment is split
    u32 k = 12;
};

/** A segmented view of a reference genome. */
class GenomeSegments
{
  public:
    GenomeSegments(const Seq &ref, const SegmentConfig &cfg);

    u64 count() const { return _starts.size(); }

    /** Global start coordinate of segment i (its local position 0). */
    u64 start(u64 i) const { return _starts[i]; }

    /** Segment length including the overlap tail. */
    u64 length(u64 i) const { return _lengths[i]; }

    /** Copy of the segment's bases. */
    Seq bases(u64 i) const;

    /** Build the segment's dense hardware-model index (the per-pass
     *  SRAM streaming; also the oracle layout). */
    KmerIndex buildIndex(u64 i) const;

    /** Build the segment's seeding index in the configured layout
     *  (SeedIndex — flat by default, dense under the oracle). */
    SeedIndex buildSeedIndex(u64 i) const;

    /** Convert a segment-local position to a global one. */
    u64 toGlobal(u64 seg, u64 local) const { return _starts[seg] + local; }

    // ------------- table footprints for the DRAM streaming model

    /** Packed 2-bit reference bytes streamed per segment. */
    u64 refBytes(u64 i) const { return (length(i) + 3) / 4; }

    /** Index-table bytes per segment (4^k hardware entries). */
    u64
    indexTableBytes() const
    {
        return (u64{1} << (2 * _cfg.k)) * KmerIndex::kEntryBytes;
    }

    /** Position-table bytes for segment i. */
    u64
    positionTableBytes(u64 i) const
    {
        const u64 len = length(i);
        return (len >= _cfg.k ? len - _cfg.k + 1 : 0) *
               KmerIndex::kEntryBytes;
    }

    const SegmentConfig &config() const { return _cfg; }

  private:
    const Seq &_ref;
    SegmentConfig _cfg;
    std::vector<u64> _starts;
    std::vector<u64> _lengths;
};

} // namespace genax

#endif // GENAX_SEED_SEGMENT_HH
