/**
 * @file
 * Cache-conscious k-mer index: flat open-addressing table over packed
 * 2-bit k-mers plus one contiguous postings array.
 *
 * The dense CSR KmerIndex models the paper's hardware tables exactly
 * (4^k entries, no tags), but as a *host* data structure it wastes
 * cache: at k = 12 the offsets array is 64 MB of which a segment's
 * reads touch a sparse subset, so nearly every lookup is two cold
 * cache lines plus TLB pressure. This layout stores only the k-mers
 * that occur: a power-of-two open-addressing table of
 * {key, offset, count} entries (16 bytes, linear probing, <= 50%
 * load) over a single contiguous u32 postings array. A lookup is one
 * probe sequence (almost always one cache line) and the postings for
 * a key are adjacent, in ascending position order — the same order
 * the CSR layout reports, so every downstream consumer sees identical
 * hit lists (the equivalence suite diffs the two layouts
 * exhaustively).
 *
 * lookupPrefetch() issues a software prefetch of a key's first probe
 * line so batched offset loops (SmemEngine's exact-match path) can
 * overlap the dependent loads of consecutive lookups.
 *
 * All hardware footprint reporting (indexTableBytes,
 * positionTableBytes) still models the paper's dense SRAM tables —
 * the DRAM streaming model and Table II must not change because the
 * host got a better data structure; hostBytes() reports the actual
 * malloc'd footprint for the microbenches.
 */

#ifndef GENAX_SEED_FLAT_KMER_INDEX_HH
#define GENAX_SEED_FLAT_KMER_INDEX_HH

#include <span>
#include <string>
#include <vector>

#include "common/dna.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace genax {

struct IndexFingerprint;
class FlatKmerIndexMapping;

/** Additive constant of the splitmix64 slot hash. Serialized into
 *  snapshot fingerprints: a snapshot built with a different hash
 *  stream can never be probed by this build's lookup(), so the
 *  constant is part of the format identity. */
inline constexpr u64 kFlatIndexHashSeed = 0x9e3779b97f4a7c15ULL;

/** Open-addressing k-mer index for one reference segment. */
class FlatKmerIndex
{
  public:
    /**
     * Build the table for a reference segment.
     *
     * @param ref the segment's bases
     * @param k   k-mer length (1..13; the paper uses 12)
     */
    FlatKmerIndex(const Seq &ref, u32 k);

    /** One occupied table slot: a key's postings extent. The layout
     *  is serialized verbatim into index snapshots — POD, 16 bytes,
     *  no implicit padding (static_asserts in flat_kmer_index.cc). */
    struct Entry
    {
        u64 key = kEmptyKey;
        u32 offset = 0;
        u32 count = 0;
    };

    /**
     * Non-owning view over externally held storage — the zero-copy
     * path for mmap'ed index snapshots (src/seed/index_snapshot.hh).
     * The caller guarantees the spans outlive the view, that `table`
     * is a power-of-two open-addressing table laid out exactly as
     * the building constructor produces, and that every occupied
     * entry's postings extent lies inside `positions` (the snapshot
     * loader validates all of this once at open, after the checksum
     * walk).
     */
    static FlatKmerIndex view(std::span<const Entry> table,
                              std::span<const u32> positions, u32 k,
                              u64 seg_len, u32 max_hits, u64 distinct);

    /** True when this index borrows its storage (a snapshot view)
     *  rather than owning it. */
    bool borrowed() const { return _tablePtr != _table.data(); }

    // Deep copies re-point at the copied vectors; a copied *view*
    // stays a view over the same external storage. Moves transfer
    // vector buffers, so all spans and pointers stay valid.
    FlatKmerIndex(const FlatKmerIndex &other);
    FlatKmerIndex &operator=(const FlatKmerIndex &other);
    FlatKmerIndex(FlatKmerIndex &&other) noexcept = default;
    FlatKmerIndex &operator=(FlatKmerIndex &&other) noexcept = default;
    ~FlatKmerIndex() = default;

    /** The raw slot array (occupied and empty), for serialization. */
    std::span<const Entry>
    tableSpan() const
    {
        return {_tablePtr, _slots};
    }

    /** The contiguous postings array, for serialization. */
    std::span<const u32>
    positionsSpan() const
    {
        return {_posPtr, _posCount};
    }

    /** Sorted occurrence positions of a packed k-mer. */
    std::span<const u32>
    lookup(u64 kmer) const
    {
        u64 slot = slotOf(kmer);
        for (;;) {
            const Entry &e = _tablePtr[slot];
            if (e.key == kmer)
                return {_posPtr + e.offset, e.count};
            if (e.key == kEmptyKey)
                return {};
            slot = (slot + 1) & _mask;
        }
    }

    /** Hit-list length only — the `{count}` metadata consumers use
     *  to reserve() before filling. */
    u32
    lookupCount(u64 kmer) const
    {
        u64 slot = slotOf(kmer);
        for (;;) {
            const Entry &e = _tablePtr[slot];
            if (e.key == kmer)
                return e.count;
            if (e.key == kEmptyKey)
                return 0;
            slot = (slot + 1) & _mask;
        }
    }

    /** Prefetch the key's first probe line ahead of lookup(). */
    void
    lookupPrefetch(u64 kmer) const
    {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&_tablePtr[slotOf(kmer)], 0, 1);
#else
        (void)kmer;
#endif
    }

    /** Pack the k bases starting at s[pos] into a k-mer key. */
    u64
    packKmer(const Seq &s, size_t pos) const
    {
        u64 key = 0;
        for (u32 i = 0; i < _k; ++i)
            key |= static_cast<u64>(s[pos + i] & 3) << (2 * i);
        return key;
    }

    u32 k() const { return _k; }
    u64 segmentLength() const { return _segLen; }

    /** Hardware table entry width (see KmerIndex::kEntryBytes — the
     *  footprint model is shared between both layouts). */
    static constexpr u64 kEntryBytes = 3;

    /** Hardware index-table footprint (dense 4^k entries — the SRAM
     *  the paper streams, not the host table). */
    u64
    indexTableBytes() const
    {
        return (u64{1} << (2 * _k)) * kEntryBytes;
    }

    /** Hardware position-table footprint in bytes. */
    u64
    positionTableBytes() const
    {
        return _posCount * kEntryBytes;
    }

    /** Largest hit-list size in this segment (CAM sizing input). */
    u32 maxHitListSize() const { return _maxHits; }

    /** Distinct k-mers present in the segment. */
    u64 distinctKmers() const { return _distinct; }

    /** Actual host memory footprint (table + postings), for the
     *  layout microbenches. A borrowed view reports the bytes it
     *  aliases, not bytes it malloc'd. */
    u64
    hostBytes() const
    {
        return _slots * sizeof(Entry) + _posCount * sizeof(u32);
    }

    /** Table entries examined by lookup(kmer) — the probe-chain
     *  length (1 on a first-slot hit or miss). Diagnostics and the
     *  bytes-touched microbench. */
    u32
    probeLength(u64 kmer) const
    {
        u64 slot = slotOf(kmer);
        u32 probes = 1;
        while (_tablePtr[slot].key != kmer &&
               _tablePtr[slot].key != kEmptyKey) {
            slot = (slot + 1) & _mask;
            ++probes;
        }
        return probes;
    }

    static constexpr u64 kEmptyKey = ~u64{0};

    // ----- on-disk snapshots (defined in seed/index_snapshot.cc) ---

    /**
     * Write this index as a single-index store snapshot (kind
     * "FKXIDX") through the atomic-write path. `fp` is the build
     * fingerprint (k, hash seed, reference length/checksum) stamped
     * into the file; fp.k must equal k().
     */
    Status save(const std::string &path,
                const IndexFingerprint &fp) const;

    /**
     * Load a snapshot into an owning index (full copy, no mmap
     * lifetime to manage). When `expect` is non-null the stored
     * fingerprint must match it exactly.
     */
    static StatusOr<FlatKmerIndex>
    load(const std::string &path,
         const IndexFingerprint *expect = nullptr);

    /**
     * Open a snapshot zero-copy: the returned mapping owns the file
     * bytes (mmap preferred, owned read on mmap failure) and exposes
     * a borrowed FlatKmerIndex view over them.
     */
    static StatusOr<FlatKmerIndexMapping>
    mapView(const std::string &path,
            const IndexFingerprint *expect = nullptr);

  private:
    friend class FlatKmerIndexMapping;
    FlatKmerIndex() = default; //!< storage bound by view()

    /** Point the lookup pointers at the owning vectors (after a
     *  build or a deep copy). */
    void
    bindOwned()
    {
        _tablePtr = _table.data();
        _slots = _table.size();
        _posPtr = _positions.data();
        _posCount = _positions.size();
    }

    u64
    slotOf(u64 key) const
    {
        // splitmix64 finalizer: packed k-mers differ in low bits only
        // for near-identical sequence, so mix before masking.
        u64 h = key + kFlatIndexHashSeed;
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
        return (h ^ (h >> 31)) & _mask;
    }

    u32 _k = 0;
    u64 _segLen = 0;
    u32 _maxHits = 0;
    u64 _distinct = 0;
    u64 _mask = 0;
    std::vector<Entry> _table;
    std::vector<u32> _positions; //!< contiguous postings, per-key
                                 //!< extents in ascending order
    // All accessors go through these; they alias the vectors above
    // when owning, or external snapshot storage when borrowed.
    const Entry *_tablePtr = nullptr;
    u64 _slots = 0;
    const u32 *_posPtr = nullptr;
    u64 _posCount = 0;
};

} // namespace genax

#endif // GENAX_SEED_FLAT_KMER_INDEX_HH
