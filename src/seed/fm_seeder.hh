/**
 * @file
 * FM-index-based SMEM seeding — functionally what BWA-MEM does, and
 * the baseline the GenAx seeding accelerator replaces.
 *
 * The index is built over the reversed reference, so prepending in
 * backward-search order walks the read left to right: the right
 * maximal exact match from a pivot falls out of one extension chain.
 * Produces exactly the same SMEMs and hit sets as the hash-based
 * SmemEngine (cross-checked in the tests) while exhibiting the
 * serialized, random rank()-chain access pattern the paper's
 * Section V/IX locality argument is about.
 */

#ifndef GENAX_SEED_FM_SEEDER_HH
#define GENAX_SEED_FM_SEEDER_HH

#include "seed/fm_index.hh"
#include "seed/smem_engine.hh"

namespace genax {

/** Whole-reference FM-index SMEM seeder. */
class FmSeeder
{
  public:
    /**
     * @param ref whole reference
     * @param min_seed_len minimum reported match length (the hash
     *        engine's k)
     */
    FmSeeder(const Seq &ref, u32 min_seed_len);

    /** SMEM seeds of one read, identical to SmemEngine's output. */
    std::vector<Smem> seed(const Seq &read);

    const FmStats &stats() const { return _index.stats(); }
    void resetStats() { _index.resetStats(); }
    u64 footprintBytes() const { return _index.footprintBytes(); }

  private:
    u64 _refLen;
    u32 _minSeedLen;
    FmIndex _index; //!< over the reversed reference
};

} // namespace genax

#endif // GENAX_SEED_FM_SEEDER_HH
