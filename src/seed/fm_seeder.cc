#include "seed/fm_seeder.hh"

#include <algorithm>

namespace genax {

FmSeeder::FmSeeder(const Seq &ref, u32 min_seed_len)
    : _refLen(ref.size()), _minSeedLen(min_seed_len),
      _index(Seq(ref.rbegin(), ref.rend()))
{
}

std::vector<Smem>
FmSeeder::seed(const Seq &read)
{
    const u32 len = static_cast<u32>(read.size());
    std::vector<Smem> out;
    if (len < _minSeedLen)
        return out;

    u32 max_end = 0;
    for (u32 pivot = 0; pivot + _minSeedLen <= len; ++pivot) {
        // Right maximal extension: one backward-search chain on the
        // reversed-reference index walks the read forward.
        FmIndex::Interval iv = _index.all();
        u32 length = 0;
        while (pivot + length < len) {
            const auto next = _index.extend(iv, read[pivot + length]);
            if (next.empty())
                break;
            iv = next;
            ++length;
        }
        if (length < _minSeedLen)
            continue;
        const u32 end = pivot + length;
        if (end <= max_end)
            continue; // contained in an earlier SMEM
        max_end = end;

        Smem smem;
        smem.qryBegin = pivot;
        smem.qryEnd = end;
        // Reversed-text start p covers ref[refLen - p - length,
        // refLen - p); map and restore ascending order.
        const auto rev_hits = _index.locate(iv, iv.size());
        smem.positions.reserve(rev_hits.size());
        for (auto it = rev_hits.rbegin(); it != rev_hits.rend(); ++it) {
            smem.positions.push_back(
                static_cast<u32>(_refLen - *it - length));
        }
        out.push_back(std::move(smem));
    }
    return out;
}

} // namespace genax
