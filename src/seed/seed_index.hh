/**
 * @file
 * Build-time selection of the seeding lookup structure.
 *
 * SeedIndex is the index type every consumer (SmemEngine, BwaMemLike,
 * GenomeSegments::buildSeedIndex) compiles against. The default is
 * the cache-conscious FlatKmerIndex; configuring with
 * -DGENAX_KMER_INDEX_ORACLE=ON substitutes the dense CSR KmerIndex so
 * the whole test suite re-runs against the original layout — the
 * equivalence oracle for the flat table. Both types expose the same
 * lookup interface (lookup / lookupCount / lookupPrefetch / packKmer
 * / maxHitListSize / footprints) and report identical hit lists, so
 * the choice changes host speed and memory only, never output.
 *
 * The dense KmerIndex remains a first-class type regardless of the
 * toggle: genax_index files keep its on-disk format, and the
 * equivalence tests compare both layouts directly.
 */

#ifndef GENAX_SEED_SEED_INDEX_HH
#define GENAX_SEED_SEED_INDEX_HH

#include "seed/flat_kmer_index.hh"
#include "seed/kmer_index.hh"

namespace genax {

#if defined(GENAX_KMER_INDEX_ORACLE)
using SeedIndex = KmerIndex;
#else
using SeedIndex = FlatKmerIndex;
#endif

} // namespace genax

#endif // GENAX_SEED_SEED_INDEX_HH
