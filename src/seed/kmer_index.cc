#include "seed/kmer_index.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.hh"
#include "io/store.hh"

namespace genax {

KmerIndex::KmerIndex(const Seq &ref, u32 k)
    : _k(k), _segLen(ref.size())
{
    GENAX_CHECK(k >= 1 && k <= 13, "k out of supported range: ", k);
    const u64 entries = u64{1} << (2 * k);
    _offsets.assign(entries + 1, 0);

    if (ref.size() < k)
        return;
    const u64 kmers = ref.size() - k + 1;

    auto first_key = [&]() {
        u64 key = 0;
        for (u32 i = 0; i < k; ++i)
            key |= static_cast<u64>(ref[i] & 3) << (2 * i);
        return key;
    };
    auto roll = [&](u64 key, u64 next_pos) {
        return (key >> 2) |
               (static_cast<u64>(ref[next_pos] & 3) << (2 * (k - 1)));
    };

    // Pass 1: histogram into offsets[key + 1].
    u64 key = first_key();
    for (u64 p = 0; p < kmers; ++p) {
        ++_offsets[key + 1];
        if (p + 1 < kmers)
            key = roll(key, p + k);
    }
    for (u64 e = 0; e < entries; ++e)
        _offsets[e + 1] += _offsets[e];

    // Pass 2: fill in ascending position order so each k-mer's list
    // is sorted (required for the binary-search fallback).
    _positions.assign(kmers, 0);
    std::vector<u32> cursor(_offsets.begin(), _offsets.end() - 1);
    key = first_key();
    for (u64 p = 0; p < kmers; ++p) {
        _positions[cursor[key]++] = static_cast<u32>(p);
        if (p + 1 < kmers)
            key = roll(key, p + k);
    }

    for (u64 e = 0; e < entries; ++e)
        _maxHits = std::max(_maxHits, _offsets[e + 1] - _offsets[e]);
}

namespace {

constexpr char kIndexMagic[8] = {'G', 'X', 'I', 'D', 'X', '0', '0', '1'};

template <typename T>
void
writePod(std::ostream &out, const T &v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
void
readPod(std::istream &in, T &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(T));
}

} // namespace

Status
KmerIndex::save(std::ostream &out) const
{
    out.write(kIndexMagic, sizeof(kIndexMagic));
    writePod(out, _k);
    writePod(out, _segLen);
    writePod(out, _maxHits);
    const u64 offsets = _offsets.size();
    const u64 positions = _positions.size();
    writePod(out, offsets);
    writePod(out, positions);
    out.write(reinterpret_cast<const char *>(_offsets.data()),
              static_cast<std::streamsize>(offsets * sizeof(u32)));
    out.write(reinterpret_cast<const char *>(_positions.data()),
              static_cast<std::streamsize>(positions * sizeof(u32)));
    if (!out)
        return ioError("k-mer index serialization failed");
    return okStatus();
}

StatusOr<KmerIndex>
KmerIndex::load(std::istream &in)
{
    char magic[sizeof(kIndexMagic)];
    in.read(magic, sizeof(magic));
    if (!in || !std::equal(magic, magic + sizeof(magic), kIndexMagic))
        return invalidInputError("not a GenAx k-mer index file");
    KmerIndex idx;
    readPod(in, idx._k);
    readPod(in, idx._segLen);
    readPod(in, idx._maxHits);
    u64 offsets = 0, positions = 0;
    readPod(in, offsets);
    readPod(in, positions);
    if (!in || idx._k < 1 || idx._k > 13 ||
        offsets != (u64{1} << (2 * idx._k)) + 1) {
        return invalidInputError("corrupt k-mer index header");
    }
    idx._offsets.resize(offsets);
    idx._positions.resize(positions);
    in.read(reinterpret_cast<char *>(idx._offsets.data()),
            static_cast<std::streamsize>(offsets * sizeof(u32)));
    in.read(reinterpret_cast<char *>(idx._positions.data()),
            static_cast<std::streamsize>(positions * sizeof(u32)));
    if (!in)
        return ioError("truncated k-mer index file");
    return idx;
}

Status
KmerIndex::saveFile(const std::string &path) const
{
    // Serialize into memory, then land the bytes through the atomic
    // writer: a crash or full disk mid-save leaves the previous index
    // intact (or no file), never a truncated one that load() would
    // have to diagnose.
    std::ostringstream buf(std::ios::binary);
    GENAX_TRY(save(buf).withContext("k-mer index '" + path + "'"));
    const std::string bytes = std::move(buf).str();
    GENAX_TRY_ASSIGN(AtomicFileWriter writer,
                     AtomicFileWriter::create(path));
    GENAX_TRY(writer.append(bytes.data(), bytes.size()));
    return writer.commit().withContext("k-mer index '" + path + "'");
}

StatusOr<KmerIndex>
KmerIndex::loadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return ioErrorFromErrno("cannot open k-mer index", path);
    return load(in).withContext("k-mer index '" + path + "'");
}

u64
KmerIndex::indexTableBytes() const
{
    return (_offsets.size() - 1) * kEntryBytes;
}

u64
KmerIndex::positionTableBytes() const
{
    return _positions.size() * kEntryBytes;
}

} // namespace genax
