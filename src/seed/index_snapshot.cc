#include "seed/index_snapshot.hh"

#include <bit>
#include <cstring>

#include "common/check.hh"

namespace genax {

namespace {

constexpr std::string_view kFlatIndexKind = "FKXIDX";
constexpr u32 kFlatIndexKindVersion = 1;
constexpr std::string_view kSnapshotKind = "GXSNAP";
constexpr u32 kSnapshotKindVersion = 1;

/** Contig names longer than this are rejected as corrupt. */
constexpr u64 kMaxContigName = u64{1} << 16;

/** "meta" section of a single-index ("FKXIDX") snapshot. */
struct FlatIndexMeta
{
    IndexFingerprint fp;
    u64 segLen;
    u64 slots;
    u64 positions;
    u64 distinct;
    u32 maxHits;
    u32 pad;
};
static_assert(sizeof(FlatIndexMeta) == 72);
static_assert(std::is_trivially_copyable_v<FlatIndexMeta>);

/** "meta" section of a whole-reference ("GXSNAP") snapshot. */
struct SnapshotMeta
{
    IndexFingerprint fp;
    u64 segmentCount;
    u64 segmentOverlap;
    u64 contigCount;
};
static_assert(sizeof(SnapshotMeta) == 56);
static_assert(std::is_trivially_copyable_v<SnapshotMeta>);

/** One element of the "segs" section: segment geometry plus the
 *  shape of its index tables. */
struct SegMeta
{
    u64 start;
    u64 length;
    u64 slots;
    u64 positions;
    u64 distinct;
    u32 maxHits;
    u32 pad;
};
static_assert(sizeof(SegMeta) == 48);
static_assert(std::is_trivially_copyable_v<SegMeta>);

Status
snapshotError(const std::string &path, const std::string &what)
{
    return invalidInputError("snapshot " + path + ": " + what);
}

/**
 * Structural validation of an index table against its postings
 * array: the store checksums already rule out on-disk corruption, so
 * this is defense-in-depth against writer bugs and version skew —
 * everything lookup() would otherwise trust blindly.
 */
Status
validateTable(const std::string &path, const std::string &what,
              std::span<const FlatKmerIndex::Entry> table,
              u64 positions, u64 distinct, u32 max_hits)
{
    if (table.size() < 2 || !std::has_single_bit(table.size()))
        return snapshotError(
            path, what + ": table size " +
                      std::to_string(table.size()) +
                      " is not a power of two >= 2");
    u64 occupied = 0;
    for (const FlatKmerIndex::Entry &e : table) {
        if (e.key == FlatKmerIndex::kEmptyKey)
            continue;
        ++occupied;
        if (u64{e.offset} + e.count > positions)
            return snapshotError(
                path, what + ": postings extent out of bounds");
        if (e.count > max_hits)
            return snapshotError(
                path, what + ": entry count exceeds maxHits");
    }
    if (occupied != distinct)
        return snapshotError(
            path, what + ": occupied slots " +
                      std::to_string(occupied) +
                      " != recorded distinct count " +
                      std::to_string(distinct));
    return okStatus();
}

Status
validateFingerprintShape(const std::string &path,
                         const IndexFingerprint &fp)
{
    if (fp.k < 1 || fp.k > 13)
        return snapshotError(path, "fingerprint k " +
                                       std::to_string(fp.k) +
                                       " out of supported range");
    if (fp.hashSeed != kFlatIndexHashSeed)
        return snapshotError(
            path,
            "built with a different slot-hash seed (incompatible)");
    return okStatus();
}

void
appendLe64(std::vector<u8> &out, u64 v)
{
    const size_t at = out.size();
    out.resize(at + 8);
    std::memcpy(out.data() + at, &v, 8);
}

} // namespace

// ------------------------------------------------------------------
// Fingerprint

IndexFingerprint
referenceFingerprint(const Seq &ref, u32 k)
{
    IndexFingerprint fp;
    fp.k = k;
    fp.refLength = ref.size();
    fp.refChecksum = storeChecksum(ref.data(), ref.size());
    return fp;
}

Status
checkFingerprint(const IndexFingerprint &got,
                 const IndexFingerprint &want)
{
    const auto fail = [](const char *field, u64 g, u64 w) {
        return failedPreconditionError(
            std::string("index fingerprint mismatch: ") + field +
            " is " + std::to_string(g) + ", expected " +
            std::to_string(w) +
            " (snapshot built from a different reference or "
            "configuration)");
    };
    if (got.k != want.k)
        return fail("k", got.k, want.k);
    if (got.hashSeed != want.hashSeed)
        return fail("hashSeed", got.hashSeed, want.hashSeed);
    if (got.refLength != want.refLength)
        return fail("refLength", got.refLength, want.refLength);
    if (got.refChecksum != want.refChecksum)
        return fail("refChecksum", got.refChecksum, want.refChecksum);
    return okStatus();
}

// ------------------------------------------------------------------
// Single-index snapshots

namespace {

/** Everything parsed out of an opened "FKXIDX" store; the spans
 *  alias the store's bytes. */
struct ParsedFlatIndex
{
    FlatIndexMeta meta;
    std::span<const FlatKmerIndex::Entry> table;
    std::span<const u32> positions;
};

StatusOr<ParsedFlatIndex>
parseFlatIndex(const StoreFile &store)
{
    ParsedFlatIndex out;
    GENAX_TRY_ASSIGN(const std::span<const FlatIndexMeta> metas,
                     store.sectionAs<FlatIndexMeta>("meta"));
    if (metas.size() != 1)
        return snapshotError(store.path(), "malformed meta section");
    out.meta = metas[0];
    GENAX_TRY(validateFingerprintShape(store.path(), out.meta.fp));
    GENAX_TRY_ASSIGN(out.table,
                     store.sectionAs<FlatKmerIndex::Entry>("table"));
    GENAX_TRY_ASSIGN(out.positions,
                     store.sectionAs<u32>("postings"));
    if (out.table.size() != out.meta.slots)
        return snapshotError(store.path(),
                             "table section does not match the "
                             "recorded slot count");
    if (out.positions.size() != out.meta.positions)
        return snapshotError(store.path(),
                             "postings section does not match the "
                             "recorded position count");
    GENAX_TRY(validateTable(store.path(), "index", out.table,
                            out.positions.size(), out.meta.distinct,
                            out.meta.maxHits));
    return out;
}

} // namespace

Status
FlatKmerIndex::save(const std::string &path,
                    const IndexFingerprint &fp) const
{
    GENAX_CHECK(fp.k == _k, "fingerprint k ", fp.k,
                " does not match index k ", _k);
    GENAX_CHECK(fp.hashSeed == kFlatIndexHashSeed,
                "fingerprint hash seed is not this build's seed");
    FlatIndexMeta meta{};
    meta.fp = fp;
    meta.segLen = _segLen;
    meta.slots = _slots;
    meta.positions = _posCount;
    meta.distinct = _distinct;
    meta.maxHits = _maxHits;
    StoreWriter w(kFlatIndexKind, kFlatIndexKindVersion);
    w.addSection("meta", &meta, sizeof(meta));
    w.addSection("table", _tablePtr, _slots * sizeof(Entry));
    w.addSection("postings", _posPtr, _posCount * sizeof(u32));
    return w.writeFile(path);
}

StatusOr<FlatKmerIndex>
FlatKmerIndex::load(const std::string &path,
                    const IndexFingerprint *expect)
{
    GENAX_TRY_ASSIGN(
        const StoreFile store,
        StoreFile::open(path, kFlatIndexKind, /*prefer_mmap=*/false));
    GENAX_TRY_ASSIGN(const ParsedFlatIndex p, parseFlatIndex(store));
    if (expect != nullptr)
        GENAX_TRY(checkFingerprint(p.meta.fp, *expect)
                      .withContext("snapshot " + path));
    FlatKmerIndex idx;
    idx._k = p.meta.fp.k;
    idx._segLen = p.meta.segLen;
    idx._maxHits = p.meta.maxHits;
    idx._distinct = p.meta.distinct;
    idx._mask = p.table.size() - 1;
    idx._table.assign(p.table.begin(), p.table.end());
    idx._positions.assign(p.positions.begin(), p.positions.end());
    idx.bindOwned();
    return idx;
}

StatusOr<FlatKmerIndexMapping>
FlatKmerIndex::mapView(const std::string &path,
                       const IndexFingerprint *expect)
{
    GENAX_TRY_ASSIGN(
        StoreFile store,
        StoreFile::open(path, kFlatIndexKind, /*prefer_mmap=*/true));
    GENAX_TRY_ASSIGN(const ParsedFlatIndex p, parseFlatIndex(store));
    if (expect != nullptr)
        GENAX_TRY(checkFingerprint(p.meta.fp, *expect)
                      .withContext("snapshot " + path));
    FlatKmerIndexMapping m;
    // The spans stay valid across the move: both the mapping and the
    // owned buffer keep their addresses.
    m._store = std::move(store);
    m._fp = p.meta.fp;
    m._view = FlatKmerIndex::view(p.table, p.positions, p.meta.fp.k,
                                  p.meta.segLen, p.meta.maxHits,
                                  p.meta.distinct);
    return m;
}

// ------------------------------------------------------------------
// Whole-reference snapshots

Status
IndexSnapshot::build(const std::string &path, const Seq &ref,
                     const std::vector<SnapshotContig> &contigs,
                     const SegmentConfig &cfg)
{
    GENAX_CHECK(cfg.k >= 1 && cfg.k <= 13,
                "k out of supported range: ", cfg.k);
    GENAX_CHECK(cfg.segmentCount >= 1 &&
                    cfg.segmentCount <= 100000,
                "implausible segment count: ", cfg.segmentCount);
    for (const SnapshotContig &c : contigs) {
        GENAX_CHECK(!c.name.empty() &&
                        c.name.size() <= kMaxContigName,
                    "bad contig name length: ", c.name.size());
        GENAX_CHECK(c.start <= ref.size() &&
                        c.length <= ref.size() - c.start,
                    "contig '", c.name,
                    "' extends past the reference");
    }

    const GenomeSegments segs(ref, cfg);
    SnapshotMeta meta{};
    meta.fp = referenceFingerprint(ref, cfg.k);
    meta.segmentCount = segs.count();
    meta.segmentOverlap = cfg.overlap;
    meta.contigCount = contigs.size();

    // Contig blob: per contig {u64 start, u64 length, u64 nameLen,
    // name bytes}, unpadded and parsed with bounds-checked memcpy.
    std::vector<u8> blob;
    for (const SnapshotContig &c : contigs) {
        appendLe64(blob, c.start);
        appendLe64(blob, c.length);
        appendLe64(blob, c.name.size());
        blob.insert(blob.end(), c.name.begin(), c.name.end());
    }

    // Build every per-segment index up front so the store is written
    // in one atomic pass (peak memory is O(reference) — see the
    // class comment).
    std::vector<FlatKmerIndex> built;
    built.reserve(segs.count());
    std::vector<SegMeta> segmeta(segs.count());
    for (u64 i = 0; i < segs.count(); ++i) {
        const Seq bases = segs.bases(i);
        built.emplace_back(bases, cfg.k);
        const FlatKmerIndex &idx = built.back();
        SegMeta &m = segmeta[i];
        m = SegMeta{};
        m.start = segs.start(i);
        m.length = segs.length(i);
        m.slots = idx.tableSpan().size();
        m.positions = idx.positionsSpan().size();
        m.distinct = idx.distinctKmers();
        m.maxHits = idx.maxHitListSize();
    }

    StoreWriter w(kSnapshotKind, kSnapshotKindVersion);
    w.addSection("meta", &meta, sizeof(meta));
    w.addSection("contigs", blob.data(), blob.size());
    w.addSection("ref", ref.data(), ref.size());
    w.addSection("segs", segmeta.data(),
                 segmeta.size() * sizeof(SegMeta));
    for (u64 i = 0; i < segs.count(); ++i) {
        const std::string tag = "seg" + std::to_string(i);
        const auto table = built[i].tableSpan();
        const auto pos = built[i].positionsSpan();
        w.addSection(tag + ".tab", table.data(),
                     table.size_bytes());
        w.addSection(tag + ".pos", pos.data(), pos.size_bytes());
    }
    return w.writeFile(path);
}

StatusOr<IndexSnapshot>
IndexSnapshot::open(const std::string &path, bool prefer_mmap)
{
    IndexSnapshot snap;
    GENAX_TRY_ASSIGN(snap._store, StoreFile::open(path, kSnapshotKind,
                                                  prefer_mmap));
    const StoreFile &store = snap._store;

    GENAX_TRY_ASSIGN(const std::span<const SnapshotMeta> metas,
                     store.sectionAs<SnapshotMeta>("meta"));
    if (metas.size() != 1)
        return snapshotError(path, "malformed meta section");
    const SnapshotMeta meta = metas[0];
    GENAX_TRY(validateFingerprintShape(path, meta.fp));
    snap._fp = meta.fp;
    snap._segmentOverlap = meta.segmentOverlap;

    GENAX_TRY_ASSIGN(snap._ref, store.section("ref"));
    if (snap._ref.size() != meta.fp.refLength)
        return snapshotError(
            path, "reference section is " +
                      std::to_string(snap._ref.size()) +
                      " bytes but the fingerprint says " +
                      std::to_string(meta.fp.refLength));
    if (storeChecksum(snap._ref.data(), snap._ref.size()) !=
        meta.fp.refChecksum)
        return snapshotError(
            path, "reference bytes do not match the fingerprint");

    // Contig blob.
    GENAX_TRY_ASSIGN(const std::span<const u8> blob,
                     store.section("contigs"));
    size_t at = 0;
    for (u64 i = 0; i < meta.contigCount; ++i) {
        if (blob.size() - at < 24)
            return snapshotError(path, "truncated contig table");
        u64 start, length, name_len;
        std::memcpy(&start, blob.data() + at, 8);
        std::memcpy(&length, blob.data() + at + 8, 8);
        std::memcpy(&name_len, blob.data() + at + 16, 8);
        at += 24;
        if (name_len == 0 || name_len > kMaxContigName ||
            name_len > blob.size() - at)
            return snapshotError(path, "malformed contig name");
        if (start > meta.fp.refLength ||
            length > meta.fp.refLength - start)
            return snapshotError(
                path, "contig extends past the reference");
        SnapshotContig c;
        c.name.assign(
            reinterpret_cast<const char *>(blob.data() + at),
            name_len);
        c.start = start;
        c.length = length;
        at += name_len;
        snap._contigs.push_back(std::move(c));
    }
    if (at != blob.size())
        return snapshotError(path,
                             "trailing bytes after the contig table");

    // Segment geometry and per-segment tables.
    GENAX_TRY_ASSIGN(const std::span<const SegMeta> segmeta,
                     store.sectionAs<SegMeta>("segs"));
    if (segmeta.size() != meta.segmentCount ||
        segmeta.empty())
        return snapshotError(
            path, "segment table does not match the recorded "
                  "segment count");
    snap._segs.reserve(segmeta.size());
    for (u64 i = 0; i < segmeta.size(); ++i) {
        const SegMeta &m = segmeta[i];
        const std::string what = "segment " + std::to_string(i);
        if (m.start > meta.fp.refLength ||
            m.length > meta.fp.refLength - m.start)
            return snapshotError(
                path, what + " extends past the reference");
        const std::string tag = "seg" + std::to_string(i);
        SegRef s;
        s.start = m.start;
        s.length = m.length;
        s.maxHits = m.maxHits;
        s.distinct = m.distinct;
        GENAX_TRY_ASSIGN(
            s.table,
            store.sectionAs<FlatKmerIndex::Entry>(tag + ".tab"));
        GENAX_TRY_ASSIGN(s.positions,
                         store.sectionAs<u32>(tag + ".pos"));
        if (s.table.size() != m.slots)
            return snapshotError(
                path, what + ": table section does not match the "
                             "recorded slot count");
        if (s.positions.size() != m.positions)
            return snapshotError(
                path, what + ": postings section does not match "
                             "the recorded position count");
        GENAX_TRY(validateTable(path, what, s.table,
                                s.positions.size(), s.distinct,
                                s.maxHits));
        snap._segs.push_back(s);
    }
    return snap;
}

Seq
IndexSnapshot::referenceSequence() const
{
    return Seq(_ref.begin(), _ref.end());
}

FlatKmerIndex
IndexSnapshot::segmentView(u64 i) const
{
    GENAX_CHECK(i < _segs.size(), "segment index out of range: ", i,
                " of ", _segs.size());
    const SegRef &s = _segs[i];
    return FlatKmerIndex::view(s.table, s.positions, _fp.k, s.length,
                               s.maxHits, s.distinct);
}

} // namespace genax
