/**
 * @file
 * Minimizer-based seeding (Roberts 2004 / minimap2-style): the
 * modern sparse alternative to GenAx's dense per-position k-mer
 * tables.
 *
 * In every window of w consecutive k-mers, the one with the smallest
 * (invertible) hash is selected; two sequences sharing a k-long
 * exact match in a window are guaranteed to share a minimizer. The
 * index stores only the selected k-mers — a fraction ~2/(w+1) of all
 * positions — trading index size against seed density. Included as
 * an ablation substrate: the GenAx accelerator's segmented dense
 * tables vs a sparse sketch.
 */

#ifndef GENAX_SEED_MINIMIZER_HH
#define GENAX_SEED_MINIMIZER_HH

#include <span>
#include <vector>

#include "common/dna.hh"
#include "seed/smem_engine.hh" // for the Smem seed type

namespace genax {

/** One selected minimizer. */
struct Minimizer
{
    u64 key;  //!< hashed k-mer value
    u32 pos;  //!< start position of the k-mer
};

/** Invertible 64-bit mixing hash (splitmix64 finalizer). */
inline u64
minimizerHash(u64 x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Select the minimizers of a sequence. */
std::vector<Minimizer> selectMinimizers(const Seq &s, u32 k, u32 w);

/** Sorted minimizer index over a reference. */
class MinimizerIndex
{
  public:
    /**
     * @param ref reference sequence
     * @param k   k-mer length (<= 31)
     * @param w   window size (in k-mers)
     */
    MinimizerIndex(const Seq &ref, u32 k, u32 w);

    /** Reference positions whose minimizer k-mer hashes to `key`. */
    std::span<const u32> lookup(u64 key) const;

    u32 k() const { return _k; }
    u32 w() const { return _w; }

    /** Selected fraction of reference positions (~2 / (w+1)). */
    double density() const;

    /** Index footprint in bytes (sorted key/position pairs). */
    u64
    footprintBytes() const
    {
        return _keys.size() * (sizeof(u64) + sizeof(u32));
    }

    /**
     * Seed a read: its minimizers are looked up and every hit is
     * reported as a k-long seed (Smem-shaped so the anchor/extension
     * machinery is reusable).
     *
     * @param max_hits_per_minimizer drop ultra-repetitive minimizers
     */
    std::vector<Smem> seed(const Seq &read,
                           u32 max_hits_per_minimizer = 256) const;

  private:
    u32 _k;
    u32 _w;
    u64 _refLen;
    std::vector<u64> _keys;      //!< sorted
    std::vector<u32> _positions; //!< parallel to _keys
};

} // namespace genax

#endif // GENAX_SEED_MINIMIZER_HH
