#include "seed/fm_index.hh"

#include <algorithm>
#include <numeric>

#include "common/check.hh"

namespace genax {

std::vector<u32>
buildSuffixArray(const Seq &text)
{
    const u32 n = static_cast<u32>(text.size());
    std::vector<u32> sa(n), rank_of(n), next_rank(n);
    std::iota(sa.begin(), sa.end(), 0);
    for (u32 i = 0; i < n; ++i)
        rank_of[i] = text[i];

    for (u32 len = 1;; len *= 2) {
        auto key = [&](u32 i) {
            const i64 second =
                i + len < n ? static_cast<i64>(rank_of[i + len]) : -1;
            return std::pair<i64, i64>(rank_of[i], second);
        };
        std::sort(sa.begin(), sa.end(),
                  [&](u32 a, u32 b) { return key(a) < key(b); });

        next_rank[sa[0]] = 0;
        for (u32 i = 1; i < n; ++i) {
            next_rank[sa[i]] = next_rank[sa[i - 1]] +
                               (key(sa[i - 1]) < key(sa[i]) ? 1 : 0);
        }
        rank_of.swap(next_rank);
        if (n == 0 || rank_of[sa[n - 1]] == n - 1)
            break;
    }
    return sa;
}

FmIndex::FmIndex(const Seq &text, u32 sa_sample_rate)
    : _n(text.size()), _sampleRate(std::max(1u, sa_sample_rate))
{
    GENAX_CHECK(_n + 1 <= UINT32_MAX, "text too large for u32 index");
    Seq t = text;
    for (Base b : t)
        GENAX_CHECK(b < kSentinel, "FM-index expects 2-bit bases");
    t.push_back(kSentinel);
    const u32 nt = static_cast<u32>(t.size());

    const std::vector<u32> sa = buildSuffixArray(t);

    _bwt.resize(nt);
    _sampled.assign(nt, 0);
    _sampleValue.assign(nt, 0);
    for (u32 row = 0; row < nt; ++row) {
        _bwt[row] = t[(sa[row] + nt - 1) % nt];
        if (sa[row] % _sampleRate == 0) {
            _sampled[row] = 1;
            _sampleValue[row] = sa[row];
        }
    }

    // Cumulative symbol counts: _c[c] = #symbols < c.
    u32 counts[kAlphabet] = {};
    for (u8 b : t)
        ++counts[b];
    _c[0] = 0;
    for (u32 c = 0; c < kAlphabet; ++c)
        _c[c + 1] = _c[c] + counts[c];

    // Rank checkpoints every kCheckpoint BWT symbols.
    const u32 blocks = nt / kCheckpoint + 1;
    _checkpoints.assign(static_cast<size_t>(blocks) * kAlphabet, 0);
    u32 running[kAlphabet] = {};
    for (u32 i = 0; i < nt; ++i) {
        if (i % kCheckpoint == 0) {
            const size_t base =
                static_cast<size_t>(i / kCheckpoint) * kAlphabet;
            for (u32 c = 0; c < kAlphabet; ++c)
                _checkpoints[base + c] = running[c];
        }
        ++running[_bwt[i]];
    }
}

u32
FmIndex::rank(u8 c, u32 i) const
{
    ++_stats.rankCalls;
    const u32 block = i / kCheckpoint;
    u32 cnt =
        _checkpoints[static_cast<size_t>(block) * kAlphabet + c];
    for (u32 j = block * kCheckpoint; j < i; ++j)
        cnt += _bwt[j] == c;
    return cnt;
}

u32
FmIndex::lf(u32 row) const
{
    const u8 c = _bwt[row];
    return _c[c] + rank(c, row);
}

FmIndex::Interval
FmIndex::extend(const Interval &iv, Base c) const
{
    GENAX_CHECK(c < kSentinel, "cannot extend with the sentinel");
    Interval out;
    out.lo = _c[c] + rank(c, iv.lo);
    out.hi = _c[c] + rank(c, iv.hi);
    return out;
}

std::vector<u32>
FmIndex::locate(const Interval &iv, u32 max_out) const
{
    std::vector<u32> out;
    const u32 hi = std::min<u32>(iv.hi, iv.lo + max_out);
    out.reserve(hi - iv.lo);
    for (u32 row = iv.lo; row < hi; ++row) {
        u32 r = row, steps = 0;
        while (!_sampled[r]) {
            r = lf(r);
            ++steps;
            ++_stats.locateSteps;
        }
        out.push_back(_sampleValue[r] + steps);
    }
    std::sort(out.begin(), out.end());
    return out;
}

u32
FmIndex::count(const Seq &pattern) const
{
    Interval iv = all();
    for (auto it = pattern.rbegin(); it != pattern.rend(); ++it) {
        iv = extend(iv, *it);
        if (iv.empty())
            return 0;
    }
    return iv.size();
}

u64
FmIndex::footprintBytes() const
{
    return _bwt.size() + _checkpoints.size() * sizeof(u32) +
           _sampleValue.size() / _sampleRate * sizeof(u32) +
           _sampled.size() / 8;
}

} // namespace genax
