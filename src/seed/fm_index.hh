/**
 * @file
 * FM-index: the seeding substrate of BWA-MEM, built here as the
 * baseline GenAx's segmented hash tables replace (Section V,
 * Section IX).
 *
 * Pipeline: suffix array (prefix-doubling) -> Burrows-Wheeler
 * transform -> occurrence (rank) checkpoints + sampled SA for
 * locate. Backward search extends a pattern one character at a time
 * by prepending, each step performing two rank() lookups whose
 * addresses depend on the previous step — the serialized,
 * poorly-local access chain the paper contrasts with GenAx's
 * k-mer/CAM datapath. rank-access statistics are tracked so the
 * comparison is measurable.
 */

#ifndef GENAX_SEED_FM_INDEX_HH
#define GENAX_SEED_FM_INDEX_HH

#include <vector>

#include "common/dna.hh"
#include "common/types.hh"

namespace genax {

/** Suffix-array construction (prefix doubling, O(n log^2 n)). */
std::vector<u32> buildSuffixArray(const Seq &text);

/** Access statistics for the locality comparison. */
struct FmStats
{
    u64 rankCalls = 0;     //!< occurrence-table lookups
    u64 locateSteps = 0;   //!< LF steps during locate
    void operator+=(const FmStats &o)
    {
        rankCalls += o.rankCalls;
        locateSteps += o.locateSteps;
    }
};

/** FM-index over a DNA text (with an internal sentinel). */
class FmIndex
{
  public:
    /** Half-open suffix-array interval of pattern occurrences. */
    struct Interval
    {
        u32 lo = 0;
        u32 hi = 0;
        u32 size() const { return hi - lo; }
        bool empty() const { return lo >= hi; }
    };

    /**
     * @param text the indexed text
     * @param sa_sample_rate keep every sa_sample_rate-th SA entry
     *        for locate (space/time trade-off)
     */
    explicit FmIndex(const Seq &text, u32 sa_sample_rate = 8);

    /** Interval of the empty pattern (all rotations). */
    Interval
    all() const
    {
        return {0, static_cast<u32>(_bwt.size())};
    }

    /** Backward-search step: interval of (c + current pattern). */
    Interval extend(const Interval &iv, Base c) const;

    /** Text positions of the interval's occurrences, ascending. */
    std::vector<u32> locate(const Interval &iv, u32 max_out) const;

    /** Count of occurrences of a whole pattern. */
    u32 count(const Seq &pattern) const;

    u64 textLength() const { return _n; }

    const FmStats &stats() const { return _stats; }
    void resetStats() { _stats = {}; }

    /** Index memory footprint (BWT + checkpoints + samples). */
    u64 footprintBytes() const;

  private:
    static constexpr u32 kCheckpoint = 32;
    static constexpr u8 kSentinel = 4;
    static constexpr u32 kAlphabet = 5;

    /** Occurrences of c in bwt[0, i). */
    u32 rank(u8 c, u32 i) const;

    /** LF mapping: row of the predecessor character. */
    u32 lf(u32 row) const;

    u64 _n; //!< original text length (without sentinel)
    u32 _sampleRate;
    std::vector<u8> _bwt;
    u32 _c[kAlphabet + 1] = {}; //!< cumulative symbol counts
    /** checkpoints[block * kAlphabet + c] = rank(c, block * 32). */
    std::vector<u32> _checkpoints;
    std::vector<u32> _sampleValue; //!< SA value per sampled row
    std::vector<u8> _sampled;      //!< row-is-sampled flags
    mutable FmStats _stats;
};

} // namespace genax

#endif // GENAX_SEED_FM_INDEX_HH
