#include "seed/flat_kmer_index.hh"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <type_traits>

#include "common/check.hh"

namespace genax {

// The entry array is serialized into (and aliased out of) on-disk
// snapshots verbatim; any layout drift silently invalidates every
// existing snapshot, so pin it at compile time.
static_assert(sizeof(FlatKmerIndex::Entry) == 16);
static_assert(std::is_trivially_copyable_v<FlatKmerIndex::Entry>);
static_assert(offsetof(FlatKmerIndex::Entry, key) == 0);
static_assert(offsetof(FlatKmerIndex::Entry, offset) == 8);
static_assert(offsetof(FlatKmerIndex::Entry, count) == 12);

FlatKmerIndex::FlatKmerIndex(const Seq &ref, u32 k)
    : _k(k), _segLen(ref.size())
{
    GENAX_CHECK(k >= 1 && k <= 13, "k out of supported range: ", k);
    if (ref.size() < k) {
        // Even the empty table needs one probe-able slot.
        _table.assign(2, Entry{});
        _mask = 1;
        bindOwned();
        return;
    }
    const u64 kmers = ref.size() - k + 1;

    // <= 50% load so linear probe chains stay short; the table is
    // sized for the worst case (every k-mer distinct) to keep the
    // build single-pass over the upserts.
    const u64 slots = std::bit_ceil(std::max<u64>(16, 2 * kmers));
    _table.assign(slots, Entry{});
    _mask = slots - 1;

    auto first_key = [&]() {
        u64 key = 0;
        for (u32 i = 0; i < k; ++i)
            key |= static_cast<u64>(ref[i] & 3) << (2 * i);
        return key;
    };
    auto roll = [&](u64 key, u64 next_pos) {
        return (key >> 2) |
               (static_cast<u64>(ref[next_pos] & 3) << (2 * (k - 1)));
    };

    // Pass 1: count occurrences per distinct key.
    u64 key = first_key();
    for (u64 p = 0; p < kmers; ++p) {
        u64 slot = slotOf(key);
        for (;;) {
            Entry &e = _table[slot];
            if (e.key == key) {
                ++e.count;
                break;
            }
            if (e.key == kEmptyKey) {
                e.key = key;
                e.count = 1;
                ++_distinct;
                break;
            }
            slot = (slot + 1) & _mask;
        }
        if (p + 1 < kmers)
            key = roll(key, p + k);
    }

    // Assign postings extents in ascending key order, so the layout
    // (and hence any iteration the tests do) is independent of the
    // hash function and table size. The sort runs over packed
    // (key << 32 | slot) words — a key spans at most 2*13 = 26 bits
    // and slots are u32-indexed, and keys are distinct across
    // occupied slots, so this orders exactly like the old indirect
    // sort while the comparisons stay out of the table.
    std::vector<u64> occupied;
    occupied.reserve(_distinct);
    for (u32 s = 0; s < _table.size(); ++s)
        if (_table[s].key != kEmptyKey)
            occupied.push_back(_table[s].key << 32 | s);
    std::sort(occupied.begin(), occupied.end());
    u32 offset = 0;
    for (const u64 packed : occupied) {
        Entry &e = _table[static_cast<u32>(packed)];
        e.offset = offset;
        offset += e.count;
        _maxHits = std::max(_maxHits, e.count);
        e.count = 0; // reused as the fill cursor in pass 2
    }

    // Pass 2: fill in ascending position order so each key's postings
    // are sorted (required for the binary-search fallback), exactly
    // as the dense CSR layout reports them.
    _positions.assign(kmers, 0);
    key = first_key();
    for (u64 p = 0; p < kmers; ++p) {
        u64 slot = slotOf(key);
        while (_table[slot].key != key)
            slot = (slot + 1) & _mask;
        Entry &e = _table[slot];
        _positions[e.offset + e.count++] = static_cast<u32>(p);
        if (p + 1 < kmers)
            key = roll(key, p + k);
    }
    bindOwned();
}

FlatKmerIndex::FlatKmerIndex(const FlatKmerIndex &other)
    : _k(other._k), _segLen(other._segLen), _maxHits(other._maxHits),
      _distinct(other._distinct), _mask(other._mask),
      _table(other._table), _positions(other._positions),
      _tablePtr(other._tablePtr), _slots(other._slots),
      _posPtr(other._posPtr), _posCount(other._posCount)
{
    if (!other.borrowed())
        bindOwned();
}

FlatKmerIndex &
FlatKmerIndex::operator=(const FlatKmerIndex &other)
{
    if (this != &other) {
        _k = other._k;
        _segLen = other._segLen;
        _maxHits = other._maxHits;
        _distinct = other._distinct;
        _mask = other._mask;
        _table = other._table;
        _positions = other._positions;
        _tablePtr = other._tablePtr;
        _slots = other._slots;
        _posPtr = other._posPtr;
        _posCount = other._posCount;
        if (!other.borrowed())
            bindOwned();
    }
    return *this;
}

FlatKmerIndex
FlatKmerIndex::view(std::span<const Entry> table,
                    std::span<const u32> positions, u32 k, u64 seg_len,
                    u32 max_hits, u64 distinct)
{
    GENAX_CHECK(k >= 1 && k <= 13, "k out of supported range: ", k);
    GENAX_CHECK(table.size() >= 2 && std::has_single_bit(table.size()),
                "view table size must be a power of two >= 2, got ",
                table.size());
    FlatKmerIndex idx;
    idx._k = k;
    idx._segLen = seg_len;
    idx._maxHits = max_hits;
    idx._distinct = distinct;
    idx._mask = table.size() - 1;
    idx._tablePtr = table.data();
    idx._slots = table.size();
    idx._posPtr = positions.data();
    idx._posCount = positions.size();
    return idx;
}

} // namespace genax
