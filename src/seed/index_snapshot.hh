/**
 * @file
 * On-disk index snapshots over the crash-safe store container
 * (io/store.hh).
 *
 * Two store kinds live here:
 *
 *  - "FKXIDX": one FlatKmerIndex (table + postings + metadata). The
 *    member functions FlatKmerIndex::{save, load, mapView} declared
 *    in flat_kmer_index.hh are defined in index_snapshot.cc.
 *
 *  - "GXSNAP": a whole-reference snapshot — the concatenated
 *    reference bases, the contig map, the segmentation geometry and
 *    one FlatKmerIndex per segment. genax_index --format flat writes
 *    one; genax_align --index mmaps it and aligns without rebuilding
 *    any per-segment index.
 *
 * Every snapshot embeds an IndexFingerprint (k, slot-hash seed,
 * reference length and checksum). Loaders compare it against the
 * reference the caller actually parsed, so a snapshot can never be
 * applied to the wrong genome: a mismatch is a hard
 * FailedPrecondition, distinct from corruption (InvalidInput from
 * the checksum walk), which callers may treat as "rebuild from
 * FASTA".
 *
 * Lifetime rule for zero-copy views: FlatKmerIndexMapping and
 * IndexSnapshot own the backing bytes (mmap or owned read); every
 * FlatKmerIndex view and span they hand out aliases those bytes and
 * must not outlive the owner. Moving the owner keeps views valid;
 * destroying it invalidates them.
 */

#ifndef GENAX_SEED_INDEX_SNAPSHOT_HH
#define GENAX_SEED_INDEX_SNAPSHOT_HH

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/dna.hh"
#include "common/status.hh"
#include "common/types.hh"
#include "io/store.hh"
#include "seed/flat_kmer_index.hh"
#include "seed/segment.hh"

namespace genax {

// ------------------------------------------------------------------
// Fingerprint

/**
 * Identity of an index build: a snapshot is only usable against the
 * exact reference and parameters it was built from. Serialized
 * verbatim into snapshot meta sections (32-byte little-endian POD).
 */
struct IndexFingerprint
{
    u32 k = 0;
    u32 reserved = 0; //!< zero on disk
    u64 hashSeed = kFlatIndexHashSeed;
    u64 refLength = 0;
    u64 refChecksum = 0; //!< storeChecksum over the raw base bytes
};
static_assert(sizeof(IndexFingerprint) == 32);
static_assert(std::is_trivially_copyable_v<IndexFingerprint>);

/** Fingerprint of a reference sequence at k-mer length k. */
IndexFingerprint referenceFingerprint(const Seq &ref, u32 k);

/** OK when `got` matches `want` field-for-field; FailedPrecondition
 *  naming the first mismatching field otherwise. */
Status checkFingerprint(const IndexFingerprint &got,
                        const IndexFingerprint &want);

// ------------------------------------------------------------------
// Single-index snapshots ("FKXIDX")

/**
 * Owner of a mapped single-index snapshot: holds the store bytes and
 * a borrowed FlatKmerIndex view over them (see the file comment's
 * lifetime rule).
 */
class FlatKmerIndexMapping
{
  public:
    const FlatKmerIndex &index() const { return *_view; }
    const IndexFingerprint &fingerprint() const { return _fp; }

    /** True on the zero-copy mmap path, false after the owned-read
     *  fallback (io.store.mmap_fail). */
    bool mapped() const { return _store.mapped(); }

  private:
    friend class FlatKmerIndex; // filled by FlatKmerIndex::mapView

    FlatKmerIndexMapping() = default;

    StoreFile _store;
    IndexFingerprint _fp;
    std::optional<FlatKmerIndex> _view;
};

// ------------------------------------------------------------------
// Whole-reference snapshots ("GXSNAP")

/** Contig descriptor inside a snapshot (mirrors ContigMap::Contig
 *  without depending on the genax layer). */
struct SnapshotContig
{
    std::string name;
    u64 start = 0;  //!< concatenated-space start
    u64 length = 0; //!< bases
};

/**
 * A validated, opened whole-reference snapshot. All structural
 * validation (geometry, table shapes, postings extents) happens at
 * open(), after the store layer's checksum walk — segmentView() and
 * the accessors are infallible afterwards.
 */
class IndexSnapshot
{
  public:
    /**
     * Build a snapshot of `ref` under `cfg` and write it atomically
     * to `path`. Builds every per-segment FlatKmerIndex in memory
     * first (O(reference) peak — acceptable for the modelled genome
     * sizes; streaming section emission is a documented follow-up).
     * `contigs` describe the concatenated layout for SAM headers.
     */
    static Status build(const std::string &path, const Seq &ref,
                        const std::vector<SnapshotContig> &contigs,
                        const SegmentConfig &cfg);

    /** Open and fully validate a snapshot (mmap preferred; owned
     *  read on mmap failure). Corruption is InvalidInput; OS trouble
     *  is IoError. */
    static StatusOr<IndexSnapshot> open(const std::string &path,
                                        bool prefer_mmap = true);

    const IndexFingerprint &fingerprint() const { return _fp; }
    u32 k() const { return _fp.k; }
    u64 referenceLength() const { return _fp.refLength; }
    u64 segmentCount() const { return _segs.size(); }
    u64 segmentOverlap() const { return _segmentOverlap; }
    const std::vector<SnapshotContig> &contigs() const
    {
        return _contigs;
    }
    bool mapped() const { return _store.mapped(); }
    const std::string &path() const { return _store.path(); }

    /** Copy of the stored reference bases (2-bit codes, one per
     *  byte — same encoding as Seq). */
    Seq referenceSequence() const;

    /** Global start / length (overlap included) of segment i. */
    u64 segmentStart(u64 i) const { return _segs[i].start; }
    u64 segmentLength(u64 i) const { return _segs[i].length; }

    /** Borrowed FlatKmerIndex over segment i's on-disk tables —
     *  cheap (no allocation), valid while this snapshot lives. */
    FlatKmerIndex segmentView(u64 i) const;

  private:
    IndexSnapshot() = default;

    struct SegRef
    {
        u64 start = 0;
        u64 length = 0;
        u32 maxHits = 0;
        u64 distinct = 0;
        std::span<const FlatKmerIndex::Entry> table;
        std::span<const u32> positions;
    };

    StoreFile _store;
    IndexFingerprint _fp;
    u64 _segmentOverlap = 0;
    std::vector<SnapshotContig> _contigs;
    std::span<const u8> _ref;
    std::vector<SegRef> _segs;
};

} // namespace genax

#endif // GENAX_SEED_INDEX_SNAPSHOT_HH
