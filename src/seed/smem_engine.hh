/**
 * @file
 * SMEM seeding engine (Section V of the GenAx paper).
 *
 * For each pivot position in the read the engine computes the right
 * maximal exact match (RMEM) of length >= k by intersecting
 * pivot-normalized k-mer hit sets: first striding by k, then binary
 * stride refinement (k/2, k/4, ..., 1). An RMEM contained in a
 * previously discovered one is suppressed, so exactly the
 * super-maximal exact matches (SMEMs) are reported with their
 * reference hit positions.
 *
 * The four accelerator optimizations are independently toggleable so
 * the Figure 16 ablations can be regenerated:
 *
 *  - smemFilter          containment filtering (vs raw hash hits)
 *  - strideRefinement    the binary extension of match length
 *  - binarySearchFallback CAM-overflow binary search (via CamModel)
 *  - probing             choose the second k-mer with the smallest
 *                        hit set among several strides
 *  - exactMatchFastPath  whole-read k-mer intersection shortcut
 *
 * Memory: every position list and intersection scratch vector is
 * bump-allocated from an engine-owned Arena that seed() resets on
 * entry. The returned Smems therefore borrow the engine's arena —
 * they are valid until the next seed() call (or the engine's
 * destruction), which is exactly the consume-before-reseeding
 * lifetime every caller already has. Copying a Smem detaches its
 * positions to the heap (see common/arena.hh) for callers that need
 * to retain seeds longer.
 */

#ifndef GENAX_SEED_SMEM_ENGINE_HH
#define GENAX_SEED_SMEM_ENGINE_HH

#include <vector>

#include "common/arena.hh"
#include "common/dna.hh"
#include "seed/cam.hh"
#include "seed/seed_index.hh"

namespace genax {

/** Seeding configuration (accelerator optimization toggles). */
struct SeedingConfig
{
    u32 camSize = 512;
    bool smemFilter = true;
    bool strideRefinement = true;
    bool binarySearchFallback = true;
    bool probing = true;
    /** Probe lower strides when the stride-k second k-mer's hit list
     *  exceeds this size (streaming it through the CAM gets costly
     *  well before the capacity overflow). */
    u32 probeThreshold = 64;
    bool exactMatchFastPath = true;
};

/** Position list type used on the seeding hot path (arena-backed
 *  when produced by SmemEngine, heap-backed by default). */
using PosList = ArenaVector<u32>;

/** One reported seed: an SMEM and its reference hit positions. */
struct Smem
{
    u32 qryBegin = 0; //!< pivot position in the read
    u32 qryEnd = 0;   //!< one past the last matched read position
    /** Segment-local reference positions where read[qryBegin]
     *  aligns, ascending. Storage may borrow the producing engine's
     *  arena — see the lifetime note in the file header. */
    PosList positions;

    u32 length() const { return qryEnd - qryBegin; }
};

/** Per-engine accumulated statistics. */
struct SeedingStats
{
    u64 reads = 0;
    u64 exactMatchReads = 0;
    u64 indexLookups = 0;
    u64 smems = 0;
    u64 hitsReported = 0;
    CamStats cam;

    double
    avgHitsPerRead() const
    {
        return reads == 0 ? 0.0
                          : static_cast<double>(hitsReported) /
                                static_cast<double>(reads);
    }

    double
    camLookupsPerRead() const
    {
        return reads == 0 ? 0.0
                          : static_cast<double>(cam.lookups()) /
                                static_cast<double>(reads);
    }
};

/** Seeding engine bound to one segment's k-mer index. */
class SmemEngine
{
  public:
    SmemEngine(const SeedIndex &index, const SeedingConfig &cfg);

    /**
     * Compute the SMEM seeds (and hits) of one read.
     *
     * Resets the engine's arena: seeds returned by the previous
     * seed() call are invalidated.
     */
    std::vector<Smem> seed(const Seq &read);

    const SeedingStats &stats() const { return _stats; }
    void resetStats();
    const SeedingConfig &config() const { return _cfg; }

    /** The engine's bump arena (observability for tests/benches). */
    const Arena &arena() const { return _arena; }

  private:
    /** Normalize a hit list by `offset` into a fresh candidate set. */
    PosList primeCandidates(std::span<const u32> hits, u32 offset);

    /**
     * Right maximal exact match from `pivot`.
     *
     * `keys` holds the precomputed k-mer key for every read offset
     * with a whole k-mer (seed() builds it once per read with a
     * rolling update). The returned span views either the index's
     * postings array or the engine's arena; it is valid until the
     * next rmem() or seed() call, so callers must materialize kept
     * candidate sets before moving on — which is the point: the vast
     * majority of RMEMs are contained in an earlier SMEM and get
     * dropped without their hit lists ever being copied.
     *
     * @return matched length L (>= k) and the pivot-normalized hit
     *         set; L == 0 when even the first k-mer has no hits.
     */
    std::pair<u32, std::span<const u32>>
    rmem(const Seq &read, u32 pivot, std::span<const u64> keys);

    /** Whole-read exact-match shortcut; empty when not exact. */
    PosList tryExactMatch(const Seq &read, std::span<const u64> keys);

    const SeedIndex &_index;
    SeedingConfig _cfg;
    CamModel _cam;
    SeedingStats _stats;
    Arena _arena; //!< per-read scratch; reset by seed()
};

} // namespace genax

#endif // GENAX_SEED_SMEM_ENGINE_HH
