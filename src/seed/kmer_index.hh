/**
 * @file
 * k-mer index and position tables for one genome segment (Section V).
 *
 * The index table has one entry per possible k-mer (4^k entries, no
 * tags or collision handling — the reason the paper picks k = 12)
 * pointing into a position table that lists, in ascending order, the
 * reference offsets where the k-mer occurs. Both tables are built
 * offline per segment and streamed into on-chip SRAM at run time.
 */

#ifndef GENAX_SEED_KMER_INDEX_HH
#define GENAX_SEED_KMER_INDEX_HH

#include <iosfwd>
#include <span>
#include <vector>

#include "common/dna.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace genax {

/** Index + position tables for one reference segment. */
class KmerIndex
{
  public:
    /**
     * Build the tables for a reference segment.
     *
     * @param ref the segment's bases
     * @param k   k-mer length (1..13; the paper uses 12)
     */
    KmerIndex(const Seq &ref, u32 k);

    /** Sorted occurrence positions of a packed k-mer. */
    std::span<const u32>
    lookup(u64 kmer) const
    {
        const u32 begin = _offsets[kmer];
        const u32 end = _offsets[kmer + 1];
        return {_positions.data() + begin, _positions.data() + end};
    }

    /** Hit-list length only — the `{count}` metadata consumers use
     *  to reserve() before filling. */
    u32
    lookupCount(u64 kmer) const
    {
        return _offsets[kmer + 1] - _offsets[kmer];
    }

    /** Prefetch the key's offset line ahead of lookup() (interface
     *  parity with FlatKmerIndex; the dense table needs it less). */
    void
    lookupPrefetch(u64 kmer) const
    {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&_offsets[kmer], 0, 1);
#else
        (void)kmer;
#endif
    }

    /** Pack the k bases starting at p[pos] into a k-mer key. */
    u64
    packKmer(const Seq &s, size_t pos) const
    {
        u64 key = 0;
        for (u32 i = 0; i < _k; ++i)
            key |= static_cast<u64>(s[pos + i] & 3) << (2 * i);
        return key;
    }

    u32 k() const { return _k; }
    u64 segmentLength() const { return _segLen; }

    /**
     * Hardware table entry width. The paper's SRAM tables use 3-byte
     * entries (48 MB index + 18 MB positions for a 6 Mbp segment at
     * k = 12); the in-memory model uses u32 for convenience but all
     * footprint reporting assumes the hardware width.
     */
    static constexpr u64 kEntryBytes = 3;

    /** Index-table footprint in bytes (4^k entries). */
    u64 indexTableBytes() const;

    /** Position-table footprint in bytes. */
    u64 positionTableBytes() const;

    /** Largest hit-list size in this segment (CAM sizing input). */
    u32 maxHitListSize() const { return _maxHits; }

    /** Host-resident footprint of the CSR arrays (the micro benches
     *  compare this against FlatKmerIndex::hostBytes()). */
    u64
    hostBytes() const
    {
        return _offsets.size() * sizeof(u32) +
               _positions.size() * sizeof(u32);
    }

    /**
     * Serialize the tables (the paper builds them offline per
     * segment and streams them in at run time). IoError when the
     * stream fails.
     */
    Status save(std::ostream &out) const;

    /**
     * Deserialize tables written by save(). Bad magic or a mangled
     * header is InvalidInput; a short read is IoError.
     */
    static StatusOr<KmerIndex> load(std::istream &in);

    /** File-path convenience wrappers (errno-annotated on open
     *  failure). */
    Status saveFile(const std::string &path) const;
    static StatusOr<KmerIndex> loadFile(const std::string &path);

  private:
    KmerIndex() : _k(0), _segLen(0) {}

    u32 _k;
    u64 _segLen;
    u32 _maxHits = 0;
    std::vector<u32> _offsets;   //!< CSR offsets, 4^k + 1 entries
    std::vector<u32> _positions; //!< occurrence positions per k-mer
};

} // namespace genax

#endif // GENAX_SEED_KMER_INDEX_HH
