/**
 * @file
 * Structural SillaX edit machine (Section IV-A, Figures 5 and 6).
 *
 * Functionally identical to SillaEdit, but the retro comparisons are
 * produced by the systolic ComparatorArray (2K+1 peripheral
 * comparators + diagonal latch forwarding) instead of being computed
 * directly — i.e. this is the machine as the hardware would evaluate
 * it, one streamed character pair per cycle. Equivalence with the
 * functional automaton is property-tested.
 */

#ifndef GENAX_SILLAX_EDIT_MACHINE_HH
#define GENAX_SILLAX_EDIT_MACHINE_HH

#include <optional>
#include <vector>

#include "silla/silla_edit.hh"
#include "sillax/comparator_array.hh"

namespace genax {

/** Cycle-level structural edit machine. */
class StructuralEditMachine
{
  public:
    explicit StructuralEditMachine(u32 k);

    /**
     * Min edit distance between r and q if <= K, else nullopt.
     *
     * Two implementations are bit-identical (result and stats): the
     * naive oracle streams every cycle's character pair through the
     * systolic ComparatorArray exactly as the hardware would; the
     * event path exploits the latched-datapath identity
     * cmp(i,d)@c == R[c-i] == Q[c-d] (pads never match) to read the
     * comparisons straight off the strings, skipping the O(K²)
     * per-cycle latch shuffle. `-DGENAX_MODEL_ORACLE=ON` pins the
     * naive oracle.
     */
    std::optional<u32> distance(const Seq &r, const Seq &q);

    /** The systolic-array oracle (always available, e.g. to the
     *  equivalence tests and benches). */
    std::optional<u32> distanceNaive(const Seq &r, const Seq &q);
    /** The direct-comparison event path (always available). */
    std::optional<u32> distanceEvent(const Seq &r, const Seq &q);

    u32 k() const { return _k; }
    const SillaRunStats &lastStats() const { return _stats; }

    /** Gate-count accounting hooks for the technology model. */
    u32 comparatorCount() const { return _cmps.comparatorCount(); }

  private:
    size_t idx(u32 i, u32 d) const { return i * (_k + 1) + d; }

    /** The shared sparse sweep; `cmp(i, d, c)` supplies the retro
     *  comparison and `step(c)` advances whatever produces it. */
    template <typename StepFn, typename CmpFn>
    std::optional<u32> distanceImpl(const Seq &r, const Seq &q,
                                    StepFn &&step, CmpFn &&cmp);

    u32 _k;
    ComparatorArray _cmps;
    SillaRunStats _stats;
    std::vector<u8> _cur0, _cur1, _curW, _next0, _next1, _nextW;
    /**
     * Cells with at least one state bit set, maintained across the
     * swap so each cycle touches only live PEs instead of sweeping
     * (and re-zeroing) the whole (K+1)^2 grid. Activation stats are
     * per set bit, so the sparse sweep counts exactly what the dense
     * one did.
     */
    std::vector<size_t> _activeCur, _activeNext;
};

} // namespace genax

#endif // GENAX_SILLAX_EDIT_MACHINE_HH
