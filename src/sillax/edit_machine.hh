/**
 * @file
 * Structural SillaX edit machine (Section IV-A, Figures 5 and 6).
 *
 * Functionally identical to SillaEdit, but the retro comparisons are
 * produced by the systolic ComparatorArray (2K+1 peripheral
 * comparators + diagonal latch forwarding) instead of being computed
 * directly — i.e. this is the machine as the hardware would evaluate
 * it, one streamed character pair per cycle. Equivalence with the
 * functional automaton is property-tested.
 */

#ifndef GENAX_SILLAX_EDIT_MACHINE_HH
#define GENAX_SILLAX_EDIT_MACHINE_HH

#include <optional>
#include <vector>

#include "silla/silla_edit.hh"
#include "sillax/comparator_array.hh"

namespace genax {

/** Cycle-level structural edit machine. */
class StructuralEditMachine
{
  public:
    explicit StructuralEditMachine(u32 k);

    /** Min edit distance between r and q if <= K, else nullopt. */
    std::optional<u32> distance(const Seq &r, const Seq &q);

    u32 k() const { return _k; }
    const SillaRunStats &lastStats() const { return _stats; }

    /** Gate-count accounting hooks for the technology model. */
    u32 comparatorCount() const { return _cmps.comparatorCount(); }

  private:
    size_t idx(u32 i, u32 d) const { return i * (_k + 1) + d; }

    u32 _k;
    ComparatorArray _cmps;
    SillaRunStats _stats;
    std::vector<u8> _cur0, _cur1, _curW, _next0, _next1, _nextW;
    /**
     * Cells with at least one state bit set, maintained across the
     * swap so each cycle touches only live PEs instead of sweeping
     * (and re-zeroing) the whole (K+1)^2 grid. Activation stats are
     * per set bit, so the sparse sweep counts exactly what the dense
     * one did.
     */
    std::vector<size_t> _activeCur, _activeNext;
};

} // namespace genax

#endif // GENAX_SILLAX_EDIT_MACHINE_HH
