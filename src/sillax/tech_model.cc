#include "sillax/tech_model.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"

namespace genax {

namespace {

// Per-PE calibration at the 2 GHz synthesis point (see header).
constexpr double kEditAreaUm2 = 0.012e6 / 1681;     // ~7.14
constexpr double kTracebackAreaUm2 = 1.41e6 / 1681; // ~838.8
constexpr double kScoringAreaUm2 = kTracebackAreaUm2 * 0.92;

constexpr double kEditPowerW = 0.047 / 1681;
constexpr double kTracebackPowerW = 1.54 / 1681;
constexpr double kScoringPowerW = kTracebackPowerW * 0.92;

// Latency model lat(f) = min + c / f, fitted to the published
// 2 GHz points and the quoted maximum operating frequencies.
constexpr double kEditLatMin = 0.12, kEditLatC = 0.10;       // 0.17 @ 2
constexpr double kTraceLatMin = 0.25, kTraceLatC = 0.16;     // 0.33 @ 2

} // namespace

u32
TechModel::peGates(PeType type, u32 read_len_bits)
{
    switch (type) {
      case PeType::Edit:
        return 13; // Section IV-A
      case PeType::Scoring:
        // Edit PE + four score registers (log N bits each) + the
        // programmable scoring ALU and delayed-merge muxes.
        return 13 + 4 * read_len_bits * 8 + 150;
      case PeType::Traceback:
        // Scoring PE + match counter + best-cycle register + the
        // 2-bit pointer, gap-run counter and path flags.
        return peGates(PeType::Scoring, read_len_bits) +
               2 * read_len_bits * 8 + 40;
    }
    GENAX_PANIC("unknown PE type");
}

double
TechModel::areaScale(double f_ghz)
{
    GENAX_CHECK(f_ghz > 0, "non-positive frequency");
    // Fitted to s(1) = 0.95, s(2) = 1 (calibration), s(5) = 1.359
    // (the 9.7 um^2 edit-PE point); cubic term models the
    // super-linear sizing beyond the inflection (Figure 12).
    return 0.913 + 0.03476 * f_ghz + 0.002177 * f_ghz * f_ghz * f_ghz;
}

double
TechModel::peAreaUm2(PeType type, double f_ghz)
{
    const double s = areaScale(f_ghz);
    switch (type) {
      case PeType::Edit:
        return kEditAreaUm2 * s;
      case PeType::Scoring:
        return kScoringAreaUm2 * s;
      case PeType::Traceback:
        return kTracebackAreaUm2 * s;
    }
    GENAX_PANIC("unknown PE type");
}

double
TechModel::pePowerW(PeType type, double f_ghz)
{
    double base;
    switch (type) {
      case PeType::Edit: base = kEditPowerW; break;
      case PeType::Scoring: base = kScoringPowerW; break;
      case PeType::Traceback: base = kTracebackPowerW; break;
      default: GENAX_PANIC("unknown PE type");
    }
    // Dynamic power ~ f * V^2 * C; voltage rises past the 2 GHz
    // knee, capacitance with the upsized gates.
    const double vf = std::max(1.0, 1.0 + 0.08 * (f_ghz - 2.0));
    return base * (f_ghz / 2.0) * vf * vf * std::sqrt(areaScale(f_ghz));
}

double
TechModel::peLatencyNs(PeType type, double f_ghz)
{
    switch (type) {
      case PeType::Edit:
        return kEditLatMin + kEditLatC / f_ghz;
      case PeType::Scoring:
      case PeType::Traceback:
        return kTraceLatMin + kTraceLatC / f_ghz;
    }
    GENAX_PANIC("unknown PE type");
}

double
TechModel::maxFrequencyGhz(PeType type)
{
    // 1 / intrinsic latency floor: the edit machine reaches 6 GHz,
    // the scoring/traceback machines are 2 GHz parts (Section VIII).
    switch (type) {
      case PeType::Edit:
        return 6.0;
      case PeType::Scoring:
      case PeType::Traceback:
        return 3.0;
    }
    GENAX_PANIC("unknown PE type");
}

double
TechModel::machineAreaMm2(PeType type, u32 k, double f_ghz)
{
    const double pes =
        static_cast<double>(peCount(k)) * peAreaUm2(type, f_ghz);
    // Periphery: 2K+1 comparators plus the two (K+1)-deep character
    // shift registers; small relative to the grid.
    const double periphery =
        (2.0 * k + 1) * 3.0 * areaScale(f_ghz) +
        2.0 * (k + 1) * 2.5 * areaScale(f_ghz);
    return (pes + periphery) / 1e6;
}

double
TechModel::machinePowerW(PeType type, u32 k, double f_ghz)
{
    const double pes =
        static_cast<double>(peCount(k)) * pePowerW(type, f_ghz);
    return pes * 1.03; // periphery adds ~3%
}

double
TechModel::bandedSwPeAreaUm2(double f_ghz)
{
    // 300 um^2 at 5 GHz (Section VIII-C); same frequency scaling.
    return 300.0 / areaScale(5.0) * areaScale(f_ghz);
}

} // namespace genax
