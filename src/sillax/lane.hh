/**
 * @file
 * A SillaX lane: one traceback machine plus the cycle/energy
 * accounting used by the GenAx system model (Section VI).
 *
 * A lane receives seed-extension jobs — a reference window fetched
 * from the reference cache and a read — and runs the full traceback
 * machine on each, accumulating the cycle breakdown (streaming,
 * reduction phases, trace collection, broken-trail re-executions) so
 * throughput at a given clock follows directly.
 */

#ifndef GENAX_SILLAX_LANE_HH
#define GENAX_SILLAX_LANE_HH

#include <vector>

#include "common/status.hh"
#include "silla/silla_traceback.hh"

namespace genax {

/** Accumulated lane statistics. */
struct LaneStats
{
    u64 jobs = 0;
    Cycle streamCycles = 0;
    Cycle reduceCycles = 0;
    Cycle collectCycles = 0;
    Cycle rerunCycles = 0;
    u64 jobsWithRerun = 0;
    u64 reruns = 0;
    u64 issueFaults = 0; //!< jobs refused at the issue fault point

    Cycle
    totalCycles() const
    {
        return streamCycles + reduceCycles + collectCycles + rerunCycles;
    }

    /** Average cycles per extension job. */
    double
    cyclesPerJob() const
    {
        return jobs == 0 ? 0.0
                         : static_cast<double>(totalCycles()) /
                               static_cast<double>(jobs);
    }

    /** Jobs per second at the given clock. */
    double
    jobsPerSecond(double f_ghz) const
    {
        const double cpj = cyclesPerJob();
        return cpj == 0.0 ? 0.0 : f_ghz * 1e9 / cpj;
    }
};

/** One seed-extension lane built around a SillaX traceback machine. */
class SillaXLane
{
  public:
    SillaXLane(u32 k, const Scoring &sc, double f_ghz = 2.0);

    /** Run one extension job and account for its cycles. */
    SillaAlignment extend(const Seq &ref_window, const Seq &read);

    /**
     * Fault-aware job issue: the sillax.lane.issue fault point sits
     * between dispatch and the machine. A refused job returns
     * Unavailable and touches no cycle accounting; the system model
     * degrades it to the banded-Gotoh fallback kernel.
     */
    StatusOr<SillaAlignment> tryExtend(const Seq &ref_window,
                                       const Seq &read);

    /** Reset the accumulated statistics. */
    void resetStats() { _stats = {}; }

    const LaneStats &stats() const { return _stats; }
    double frequencyGhz() const { return _fGhz; }
    u32 k() const { return _machine.k(); }

  private:
    SillaTraceback _machine;
    Scoring _sc; //!< kept for the re-score equality cross-check
    double _fGhz;
    LaneStats _stats;
};

} // namespace genax

#endif // GENAX_SILLAX_LANE_HH
