/**
 * @file
 * Analytical 28 nm technology model for SillaX and GenAx.
 *
 * The paper synthesized the machines with Synopsys DC in a commercial
 * 28 nm process (Section VII). We reproduce the published design
 * points and curve shapes with an analytical model calibrated to the
 * numbers quoted in the paper:
 *
 *   - edit PE: 13 gates; edit machine (K=40, 1681 PEs) at 2 GHz:
 *     0.012 mm^2, 0.047 W, 0.17 ns latency; operable at 6 GHz;
 *     9.7 um^2 per PE at a 5 GHz synthesis target.
 *   - traceback machine at 2 GHz: 1.41 mm^2, 1.54 W, 0.33 ns.
 *   - scoring machine "comparable to the traceback machine".
 *   - banded Smith-Waterman PE: 300 um^2 at 5 GHz (Section VIII-C).
 *   - Table II: 128 seeding lanes = 4.224 mm^2, 4 SillaX lanes =
 *     5.36 mm^2, 68 MB SRAM = 163.2 mm^2.
 *
 * Area grows slowly below the 2 GHz inflection point and
 * super-linearly above it (Figure 12); power scales with frequency
 * and the voltage needed to reach it. All constants live here so the
 * Figure 12 / Table II benches and the GenAx estimator share one
 * model.
 */

#ifndef GENAX_SILLAX_TECH_MODEL_HH
#define GENAX_SILLAX_TECH_MODEL_HH

#include "common/types.hh"

namespace genax {

/** Processing-element flavour (Section IV). */
enum class PeType
{
    Edit,      //!< edit machine PE (Figure 6)
    Scoring,   //!< scoring machine PE (Figure 7)
    Traceback, //!< traceback machine PE (Figure 9)
};

/** Analytical area/power/latency model in a 28 nm process. */
class TechModel
{
  public:
    /** PE grid size for edit bound K: the (K+1)^2 grouped units. */
    static u64
    peCount(u32 k)
    {
        return static_cast<u64>(k + 1) * (k + 1);
    }

    /** Approximate gate count of one PE (readLenBits-wide counters). */
    static u32 peGates(PeType type, u32 read_len_bits = 10);

    /** Area of one PE in um^2 at the given synthesis target (GHz). */
    static double peAreaUm2(PeType type, double f_ghz);

    /** Power of one PE in W at the given frequency (GHz). */
    static double pePowerW(PeType type, double f_ghz);

    /** Achieved critical-path latency in ns at the target (GHz). */
    static double peLatencyNs(PeType type, double f_ghz);

    /** Maximum operating frequency in GHz for a PE type. */
    static double maxFrequencyGhz(PeType type);

    /** Whole-machine area in mm^2 (PE grid + comparator periphery). */
    static double machineAreaMm2(PeType type, u32 k, double f_ghz);

    /** Whole-machine power in W. */
    static double machinePowerW(PeType type, u32 k, double f_ghz);

    /** Banded Smith-Waterman PE area (um^2) for Section VIII-C. */
    static double bandedSwPeAreaUm2(double f_ghz);

    // ------------------------------------------------ system blocks

    /** One seeding lane (512-entry CAM + control FSM), mm^2. */
    static double seedingLaneAreaMm2() { return 4.224 / 128; }

    /** One seeding lane average power, W. */
    static double seedingLanePowerW() { return 0.0070; }

    /** On-chip SRAM area per MB, mm^2 (Table II: 163.2 / 68). */
    static double sramAreaPerMb() { return 163.2 / 68.0; }

    /** On-chip SRAM power per MB, W (leakage + streaming access). */
    static double sramPowerPerMb() { return 0.066; }

  private:
    /** Area multiplier relative to the 2 GHz calibration point. */
    static double areaScale(double f_ghz);
};

} // namespace genax

#endif // GENAX_SILLAX_TECH_MODEL_HH
