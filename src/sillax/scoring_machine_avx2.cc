/**
 * @file
 * AVX2 tier of the scoring machine streaming cycle kernel (compiled
 * with -mavx2; only dispatched to on CPUs that support it).
 *
 * Eight d-adjacent PEs per vector, all lean rows of one cycle per
 * call. The E/F/H lanes use the same i32 arithmetic and max
 * precedence as the scalar lean path; the per-PE clipping registers
 * are folded in place, and cells reaching the caller's best score
 * are extracted through a movemask and appended to the event list.
 */

#include "sillax/scoring_row.hh"

#include <algorithm>
#include <cstring>

#include <immintrin.h>

namespace genax::detail {

void
scoringStreamCycleAvx2(const ScoringCycleCtx &x, u32 iBegin, u32 iEnd,
                       u32 dBegin, std::vector<ScoringRowEvent> &events)
{
    const u32 stride = x.k + 1;
    const __m256i v_open_ext = _mm256_set1_epi32(x.openExt);
    const __m256i v_gap_ext = _mm256_set1_epi32(x.gapExt);
    const __m256i v_match = _mm256_set1_epi32(x.match);
    const __m256i v_mis = _mm256_set1_epi32(-x.mismatch);
    // threshold >= 0, so threshold - 1 cannot underflow; h > t-1 is
    // exactly h >= threshold.
    const __m256i v_thr = _mm256_set1_epi32(x.threshold - 1);

    for (u32 i = iBegin; i <= iEnd; ++i) {
        const u64 cell_r = x.c - i;
        const u32 d_end = static_cast<u32>(
            std::min<u64>(x.k, x.c - i));
        if (d_end < dBegin)
            break; // spans only shrink as i grows
        const size_t row = static_cast<size_t>(i) * stride;
        const u8 r_char = x.r[cell_r - 1];
        const __m256i v_r = _mm256_set1_epi32(r_char);

        u32 d = dBegin;
        for (; d + 7 <= d_end; d += 8) {
            const size_t self = row + d;
            const size_t src_e = self - stride;
            const size_t src_f = self - 1;

            // E lane: vertical sources, d-contiguous in the row
            // above.
            const __m256i h_e = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x.hCur + src_e));
            const __m256i e_e = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x.eCur + src_e));
            const __m256i e = _mm256_max_epi32(
                _mm256_sub_epi32(h_e, v_open_ext),
                _mm256_sub_epi32(e_e, v_gap_ext));

            // F lane: horizontal sources, shifted one cell left.
            const __m256i h_f = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x.hCur + src_f));
            const __m256i f_f = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x.fCur + src_f));
            const __m256i f = _mm256_max_epi32(
                _mm256_sub_epi32(h_f, v_open_ext),
                _mm256_sub_epi32(f_f, v_gap_ext));

            // Diagonal: cell_q = c - d decreases across the lanes,
            // so the eight query characters are a byte-reversed
            // 8-byte load. (Lean lanes have cell_q >= 1, hence
            // c - d - 8 >= 0 for the block's base d.)
            const __m256i h_s = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x.hCur + self));
            u64 qb;
            std::memcpy(&qb, x.q + (x.c - d - 8), 8);
            const __m256i qv = _mm256_cvtepu8_epi32(
                _mm_cvtsi64_si128(
                    static_cast<long long>(__builtin_bswap64(qb))));
            const __m256i subv = _mm256_blendv_epi8(
                v_mis, v_match, _mm256_cmpeq_epi32(qv, v_r));
            const __m256i diag = _mm256_add_epi32(h_s, subv);

            const __m256i h = _mm256_max_epi32(
                diag, _mm256_max_epi32(e, f));

            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(x.eNext + self), e);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(x.fNext + self), f);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(x.hNext + self), h);

            // Clipping registers: lean-cell H is always a real score
            // (see scoring_machine.cc), so the unconditional fold
            // matches the scalar path's.
            const __m256i seen = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x.bestSeen + self));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(x.bestSeen + self),
                _mm256_max_epi32(seen, h));

            const u32 cm = static_cast<u32>(
                _mm256_movemask_ps(_mm256_castsi256_ps(
                    _mm256_cmpgt_epi32(h, v_thr))));
            for (u32 j = 0; j < 8; ++j)
                if (cm & (1u << j))
                    events.push_back({i, d + j});
        }

        // Scalar tail for the last (d_end - d + 1) < 8 lanes — the
        // same arithmetic, lane by lane.
        for (; d <= d_end; ++d) {
            const size_t self = row + d;
            const size_t src_e = self - stride;
            const size_t src_f = self - 1;

            const i32 e = std::max(x.hCur[src_e] - x.openExt,
                                   x.eCur[src_e] - x.gapExt);
            const i32 f = std::max(x.hCur[src_f] - x.openExt,
                                   x.fCur[src_f] - x.gapExt);
            const u64 cell_q = x.c - d;
            const i32 diag =
                x.hCur[self] +
                (x.q[cell_q - 1] == r_char ? x.match : -x.mismatch);
            const i32 h = std::max({diag, e, f});

            x.eNext[self] = e;
            x.fNext[self] = f;
            x.hNext[self] = h;
            x.bestSeen[self] = std::max(x.bestSeen[self], h);
            if (h >= x.threshold)
                events.push_back({i, d});
        }
    }
}

} // namespace genax::detail
