#include "sillax/comparator_array.hh"

#include <algorithm>

#include "common/logging.hh"

namespace genax {

ComparatorArray::ComparatorArray(u32 k)
    : _k(k),
      _rShift(k + 1, kPadR),
      _qShift(k + 1, kPadQ),
      _cmp(static_cast<size_t>(k + 1) * (k + 1), 0),
      _cmpNext(static_cast<size_t>(k + 1) * (k + 1), 0)
{
}

void
ComparatorArray::reset()
{
    std::fill(_rShift.begin(), _rShift.end(), kPadR);
    std::fill(_qShift.begin(), _qShift.end(), kPadQ);
    std::fill(_cmp.begin(), _cmp.end(), 0);
}

void
ComparatorArray::step(u8 r_sym, u8 q_sym)
{
    // Shift in the new symbols: after this, _rShift[i] == R[c - i]
    // (pad when out of range), likewise for the query.
    std::rotate(_rShift.rbegin(), _rShift.rbegin() + 1, _rShift.rend());
    _rShift[0] = r_sym;
    std::rotate(_qShift.rbegin(), _qShift.rbegin() + 1, _qShift.rend());
    _qShift[0] = q_sym;

    // Pads never match anything, including each other.
    auto eq = [](u8 a, u8 b) {
        return a == b && a != kPadR && a != kPadQ;
    };

    // Periphery: 2K+1 comparators ((i, 0) row, (0, d) column, with
    // (0, 0) shared). Interior: diagonal shift of last cycle's latches.
    for (u32 i = 0; i <= _k; ++i) {
        for (u32 d = 0; d <= _k; ++d) {
            u8 v;
            if (i == 0) {
                v = eq(_rShift[0], _qShift[d]);
            } else if (d == 0) {
                v = eq(_rShift[i], _qShift[0]);
            } else {
                v = _cmp[(i - 1) * (_k + 1) + (d - 1)];
            }
            _cmpNext[i * (_k + 1) + d] = v;
        }
    }
    std::swap(_cmp, _cmpNext);
}

} // namespace genax
