/**
 * @file
 * Vectorized inner row kernel for the structural scoring machine's
 * streaming phase (internal to genax_sillax).
 *
 * Mirrors silla/silla_stream_row.hh for the simpler scoring datapath:
 * the kernel covers only the *lean interior* span of one PE row —
 * cells with i >= 1, d >= 1, cell_r >= 1 and cell_q >= 1, whose
 * sources all sit inside the live window and therefore hold real
 * scores (see scoring_machine.cc) — computing the E/F/H lanes and
 * folding H into the per-PE clipping registers. Cells whose H
 * reaches the caller's current best score are reported back through
 * a compact event list, in ascending-d order, so the caller can
 * replay best-cell updates exactly as the scalar sweep would.
 *
 * The scalar lean path in scoring_machine.cc is the reference; the
 * AVX2 kernel is bit-identical to it by contract (same i32
 * arithmetic, same tie-breaks), so runtime tier selection — via
 * genax::simd::activeKernelTier(), honouring GENAX_FORCE_SCALAR and
 * the --kernel override — never changes any output.
 */

#ifndef GENAX_SILLAX_SCORING_ROW_HH
#define GENAX_SILLAX_SCORING_ROW_HH

#include <vector>

#include "common/types.hh"

namespace genax::detail {

/** Per-cycle inputs of the scoring row kernel (raw spans into the
 *  machine's double-buffered lane arrays). */
struct ScoringCycleCtx
{
    const i32 *hCur;
    const i32 *eCur;
    const i32 *fCur;
    i32 *hNext;
    i32 *eNext;
    i32 *fNext;
    i32 *bestSeen;  //!< per-PE clipping registers, updated in place
    const u8 *r;    //!< reference string (row characters)
    const u8 *q;    //!< query string (for the diagonal comparisons)
    u64 c;          //!< streaming cycle
    u32 k;          //!< edit bound (stride is k + 1)
    i32 openExt;    //!< gapOpen + gapExtend
    i32 gapExt;     //!< gapExtend
    i32 match;      //!< substitution reward
    i32 mismatch;   //!< substitution penalty (magnitude)
    i32 threshold;  //!< caller's best score at cycle entry (>= 0)
};

/**
 * One cell whose H reached the caller's threshold. The filter is a
 * conservative prefilter (the caller's best can only grow within a
 * cycle); re-checking flagged cells against the live best reproduces
 * the scalar winner exactly, by the same tie-break-key argument as
 * the traceback row kernel.
 */
struct ScoringRowEvent
{
    u32 i;
    u32 d;
};

#if defined(GENAX_SIMD_AVX2)
/**
 * AVX2 lean sweep of one streaming cycle: rows i in [iBegin, iEnd],
 * each over d in [dBegin, min(k, c - i)] (rows whose span is empty
 * are skipped). Appends events in (i asc, d asc) order. Call only
 * when the running CPU has AVX2.
 */
void scoringStreamCycleAvx2(const ScoringCycleCtx &ctx, u32 iBegin,
                            u32 iEnd, u32 dBegin,
                            std::vector<ScoringRowEvent> &events);
#endif

} // namespace genax::detail

#endif // GENAX_SILLAX_SCORING_ROW_HH
