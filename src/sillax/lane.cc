#include "sillax/lane.hh"

#include "common/check.hh"
#include "common/faultinject.hh"

namespace genax {

SillaXLane::SillaXLane(u32 k, const Scoring &sc, double f_ghz)
    : _machine(k, sc), _sc(sc), _fGhz(f_ghz)
{
    GENAX_CHECK(f_ghz > 0, "lane clock must be positive: ", f_ghz);
}

SillaAlignment
SillaXLane::extend(const Seq &ref_window, const Seq &read)
{
    SillaAlignment out = _machine.align(ref_window, read);
    GENAX_CHECK(out.refEnd <= ref_window.size() &&
                    out.qryEnd <= read.size(),
                "extension consumed past its windows: refEnd=",
                out.refEnd, "/", ref_window.size(), " qryEnd=",
                out.qryEnd, "/", read.size());
#if GENAX_ENABLE_DCHECKS
    // Traceback re-score equality: the recovered path, replayed over
    // the consumed windows under the lane's scoring scheme, must
    // reproduce exactly the score the machine claims. This is the
    // cross-check that keeps the cycle model's CIGARs bit-for-bit
    // honest against the software baselines.
    {
        Cigar aligned;
        for (const auto &e : out.cigar.elems())
            if (e.op != CigarOp::SoftClip)
                aligned.push(e.op, e.len);
        const Seq ref_win(ref_window.begin(),
                          ref_window.begin() +
                              static_cast<i64>(out.refEnd));
        const Seq qry_win(read.begin(),
                          read.begin() + static_cast<i64>(out.qryEnd));
        GENAX_DCHECK(aligned.rescore(ref_win, qry_win, _sc) ==
                         out.score,
                     "traceback path re-scores to ",
                     aligned.rescore(ref_win, qry_win, _sc),
                     " but the machine claims ", out.score);
    }
#endif
    ++_stats.jobs;
    _stats.streamCycles += out.stats.streamCycles;
    _stats.reduceCycles += out.stats.reduceCycles;
    _stats.collectCycles += out.stats.collectCycles;
    _stats.rerunCycles += out.stats.rerunCycles;
    _stats.reruns += out.stats.reruns;
    _stats.jobsWithRerun += out.stats.reruns > 0;
    return out;
}

StatusOr<SillaAlignment>
SillaXLane::tryExtend(const Seq &ref_window, const Seq &read)
{
    if (faultFires(fault::kLaneIssue)) [[unlikely]] {
        ++_stats.issueFaults;
        return unavailableError("injected fault at " +
                                std::string(fault::kLaneIssue));
    }
    return extend(ref_window, read);
}

} // namespace genax
