#include "sillax/lane.hh"

namespace genax {

SillaXLane::SillaXLane(u32 k, const Scoring &sc, double f_ghz)
    : _machine(k, sc), _fGhz(f_ghz)
{
}

SillaAlignment
SillaXLane::extend(const Seq &ref_window, const Seq &read)
{
    SillaAlignment out = _machine.align(ref_window, read);
    ++_stats.jobs;
    _stats.streamCycles += out.stats.streamCycles;
    _stats.reduceCycles += out.stats.reduceCycles;
    _stats.collectCycles += out.stats.collectCycles;
    _stats.rerunCycles += out.stats.rerunCycles;
    _stats.reruns += out.stats.reruns;
    _stats.jobsWithRerun += out.stats.reruns > 0;
    return out;
}

} // namespace genax
