#include "sillax/tile.hh"

#include <algorithm>

#include "common/check.hh"
#include "silla/silla.hh"

namespace genax {

TileArray::TileArray(u32 tile_k, u32 rows, u32 cols)
    : _tileK(tile_k), _rows(rows), _cols(cols)
{
    GENAX_CHECK(tile_k > 0, "SillaX tile with zero edit bound");
    GENAX_CHECK(tile_k <= kMaxSillaK, "tile edit bound ", tile_k,
                " exceeds the supported maximum ", kMaxSillaK);
    GENAX_CHECK(rows > 0 && cols > 0, "empty tile array: ", rows, "x",
                cols);
    configure({});
}

bool
TileArray::configure(const std::vector<u32> &requested_p)
{
    std::vector<u8> used(tileCount(), 0);
    auto at = [&](u32 r, u32 c) -> u8 & { return used[r * _cols + c]; };

    std::vector<TileEngine> placed;

    // Place the largest engines first so first-fit cannot fragment a
    // feasible request mix.
    std::vector<u32> order = requested_p;
    std::sort(order.begin(), order.end(), std::greater<u32>());

    for (u32 p : order) {
        if (p == 0 || p > maxP())
            return false;
        bool done = false;
        for (u32 r = 0; !done && r + p <= _rows; ++r) {
            for (u32 c = 0; !done && c + p <= _cols; ++c) {
                bool free = true;
                for (u32 dr = 0; free && dr < p; ++dr)
                    for (u32 dc = 0; free && dc < p; ++dc)
                        free = !at(r + dr, c + dc);
                if (!free)
                    continue;
                for (u32 dr = 0; dr < p; ++dr)
                    for (u32 dc = 0; dc < p; ++dc)
                        at(r + dr, c + dc) = 1;
                placed.push_back({r, c, p, composedBound(p)});
                done = true;
            }
        }
        if (!done)
            return false;
    }

    // Remaining tiles operate as independent K_tile engines.
    for (u32 r = 0; r < _rows; ++r)
        for (u32 c = 0; c < _cols; ++c)
            if (!at(r, c))
                placed.push_back({r, c, 1, _tileK});

    // Composition invariant: the engines partition the grid — every
    // tile belongs to exactly one engine, no engine sticks out, and
    // each composed bound matches its block size.
    u64 covered = 0;
    for (const auto &e : placed) {
        GENAX_CHECK(e.p >= 1 && e.row + e.p <= _rows &&
                        e.col + e.p <= _cols,
                    "engine outside the tile grid: (", e.row, ",",
                    e.col, ") p=", e.p);
        GENAX_CHECK(e.editBound == composedBound(e.p),
                    "composed bound ", e.editBound,
                    " inconsistent with p=", e.p);
        covered += static_cast<u64>(e.p) * e.p;
    }
    GENAX_CHECK(covered == tileCount(), "engines cover ", covered,
                " tiles of ", tileCount());

    _engines = std::move(placed);
    return true;
}

double
TileArray::areaMm2(PeType type, double f_ghz) const
{
    double tiles = 0;
    for (u64 t = 0; t < tileCount(); ++t)
        tiles += TechModel::machineAreaMm2(type, _tileK, f_ghz);
    // Inter-tile MUXes and the per-PE input/output steering add a
    // small fixed fraction (Section IV-D).
    return tiles * 1.02;
}

} // namespace genax
