#include "sillax/scoring_machine.hh"

#include <algorithm>
#include <limits>

#include "align/simd/dispatch.hh"
#include "common/check.hh"

namespace genax {

namespace {

constexpr i32 kNegInf = INT32_MIN / 4;

} // namespace

StructuralScoringMachine::StructuralScoringMachine(u32 k,
                                                   const Scoring &sc)
    : _k(k), _sc(sc), _cmps(k)
{
    const size_t n = static_cast<size_t>(k + 1) * (k + 1);
    _hCur.assign(n, kNegInf);
    _hNext.assign(n, kNegInf);
    _eCur.assign(n, kNegInf);
    _eNext.assign(n, kNegInf);
    _fCur.assign(n, kNegInf);
    _fNext.assign(n, kNegInf);
}

SillaScoreResult
StructuralScoringMachine::run(const Seq &r, const Seq &q)
{
#if defined(GENAX_MODEL_ORACLE)
    return runNaive(r, q);
#else
    return runEvent(r, q);
#endif
}

SillaScoreResult
StructuralScoringMachine::runNaive(const Seq &r, const Seq &q)
{
    const u64 n = r.size(), m = q.size();
    _cmps.reset();
    std::fill(_hCur.begin(), _hCur.end(), kNegInf);
    std::fill(_eCur.begin(), _eCur.end(), kNegInf);
    std::fill(_fCur.begin(), _fCur.end(), kNegInf);
    _bestSeen.assign(static_cast<size_t>(_k + 1) * (_k + 1), 0);

    SillaScoreResult res;
    res.best = 0;
    u64 best_rq = 0, best_r = 0;
    bool have_best = false;
    auto consider = [&](i32 score, u32 i, u32 d, u64 cell_r,
                        u64 cell_q, Cycle c) {
        if (score < res.best)
            return;
        const u64 rq = cell_r + cell_q;
        if (score > res.best || !have_best || rq < best_rq ||
            (rq == best_rq && cell_r < best_r)) {
            res.best = score;
            res.winnerI = i;
            res.winnerD = d;
            res.bestCycle = c;
            res.refEnd = cell_r;
            res.qryEnd = cell_q;
            best_rq = rq;
            best_r = cell_r;
            have_best = true;
        }
    };
    consider(0, 0, 0, 0, 0, 0);

    const i32 open_ext = _sc.gapOpen + _sc.gapExtend;
    const u64 max_cycle = std::min(n, m) + _k;
    for (u64 c = 0; c <= max_cycle; ++c) {
        // The comparator array currently holds cycle c-1's retro
        // comparisons — exactly what the diagonal (closed-path)
        // continuation at cycle c consumes.
        std::fill(_hNext.begin(), _hNext.end(), kNegInf);
        std::fill(_eNext.begin(), _eNext.end(), kNegInf);
        std::fill(_fNext.begin(), _fNext.end(), kNegInf);

        // Live-cell window. Scores spread from PE (0,0) one
        // neighbour hop per cycle, so cells with i + d > c are still
        // at -inf (proven inductively: a cell's sources at cycle c-1
        // have index sums >= i + d - 1); cells with i < c - n or
        // d < c - m have walked off the end of a sequence. Both
        // kinds would compute and store -inf — exactly what the fill
        // already left there — so the clamped loops visit precisely
        // the cells that can contribute.
        const u32 i_lo =
            c > n ? static_cast<u32>(std::min<u64>(c - n, _k + 1))
                  : 0;
        const u32 i_hi = static_cast<u32>(
            std::min<u64>(_k, c));
        const u32 d_lo =
            c > m ? static_cast<u32>(std::min<u64>(c - m, _k + 1))
                  : 0;
        for (u32 i = i_lo; i <= i_hi; ++i) {
            const u64 cell_r = c - i;
            const u32 d_hi = static_cast<u32>(
                std::min<u64>(_k, c - i));
            for (u32 d = d_lo; d <= d_hi; ++d) {
                const u64 cell_q = c - d;
                const size_t self = idx(i, d);

                i32 e = kNegInf;
                if (i >= 1 && cell_q >= 1) {
                    const size_t src = idx(i - 1, d);
                    if (_hCur[src] != kNegInf)
                        e = _hCur[src] - open_ext;
                    if (_eCur[src] != kNegInf)
                        e = std::max(e, _eCur[src] - _sc.gapExtend);
                }
                i32 f = kNegInf;
                if (d >= 1 && cell_r >= 1) {
                    const size_t src = idx(i, d - 1);
                    if (_hCur[src] != kNegInf)
                        f = _hCur[src] - open_ext;
                    if (_fCur[src] != kNegInf)
                        f = std::max(f, _fCur[src] - _sc.gapExtend);
                }

                i32 diag = kNegInf;
                if (cell_r >= 1 && cell_q >= 1 &&
                    _hCur[self] != kNegInf) {
                    // Latched systolic comparison instead of a
                    // direct string lookup.
                    diag = _hCur[self] + (_cmps.compare(i, d)
                                              ? _sc.match
                                              : -_sc.mismatch);
                }

                i32 h = std::max({diag, e, f});
                if (c == 0 && i == 0 && d == 0)
                    h = 0;

                _eNext[self] = e;
                _fNext[self] = f;
                _hNext[self] = h;
                if (h != kNegInf) {
                    consider(h, i, d, cell_r, cell_q, c);
                    _bestSeen[self] = std::max(_bestSeen[self], h);
                }
            }
        }
        std::swap(_hCur, _hNext);
        std::swap(_eCur, _eNext);
        std::swap(_fCur, _fNext);

        _cmps.step(c < n ? r[c] : ComparatorArray::kPadR,
                   c < m ? q[c] : ComparatorArray::kPadQ);
    }
    res.streamCycles = max_cycle + 1;
    return res;
}

SillaScoreResult
StructuralScoringMachine::runEvent(const Seq &r, const Seq &q)
{
    const u64 n = r.size(), m = q.size();
    const u32 stride = _k + 1;
    std::fill(_hCur.begin(), _hCur.end(), kNegInf);
    std::fill(_eCur.begin(), _eCur.end(), kNegInf);
    std::fill(_fCur.begin(), _fCur.end(), kNegInf);
    _bestSeen.assign(static_cast<size_t>(stride) * stride, 0);

    SillaScoreResult res;
    res.best = 0;
    u64 best_rq = 0, best_r = 0;
    bool have_best = false;
    auto consider = [&](i32 score, u32 i, u32 d, u64 cell_r,
                        u64 cell_q, Cycle c) {
        if (score < res.best)
            return;
        const u64 rq = cell_r + cell_q;
        if (score > res.best || !have_best || rq < best_rq ||
            (rq == best_rq && cell_r < best_r)) {
            res.best = score;
            res.winnerI = i;
            res.winnerD = d;
            res.bestCycle = c;
            res.refEnd = cell_r;
            res.qryEnd = cell_q;
            best_rq = rq;
            best_r = cell_r;
            have_best = true;
        }
    };
    consider(0, 0, 0, 0, 0, 0);

    const i32 open_ext = _sc.gapOpen + _sc.gapExtend;
    const u64 max_cycle = std::min(n, m) + _k;

#if defined(GENAX_SIMD_AVX2)
    // Lean-interior rows can run on the vector row kernel; all tiers
    // are bit-identical by contract, so this is purely a speed choice
    // (and GENAX_FORCE_SCALAR / --kernel pin the scalar reference).
    const bool use_avx2 =
        simd::activeKernelTier() >= simd::KernelTier::Avx2;
#endif

    for (u64 c = 0; c <= max_cycle; ++c) {
        // Same live-cell window as the dense oracle (see runNaive):
        // cells outside it would compute and store -inf with no
        // consider() or clipping-register update.
        const u32 i_lo =
            c > n ? static_cast<u32>(std::min<u64>(c - n, _k + 1))
                  : 0;
        const u32 i_hi = static_cast<u32>(std::min<u64>(_k, c));
        const u32 d_lo =
            c > m ? static_cast<u32>(std::min<u64>(c - m, _k + 1))
                  : 0;

        // Incremental frontier fill in place of whole-array resets,
        // exactly as in the traceback machine's event path: every
        // cell of the cycle-c window stores all three lanes, and
        // cycle c+1 reads only cells the cycle-c sweep wrote —
        // except the diagonal self-reads on the fresh anti-diagonal
        // i + d == c, which must see the exact -inf a dark PE holds.
        // Everything outside is two-generation-stale garbage that
        // provably stays unread (the scoring and traceback machines
        // share the window geometry).
        {
            const u32 fi_lo = std::max(
                i_lo, c > _k ? static_cast<u32>(c - _k) : 0);
            for (u32 i = fi_lo; i <= i_hi; ++i) {
                const u32 d = static_cast<u32>(c - i);
                if (d < d_lo)
                    break; // d only shrinks as i grows
                _hCur[idx(i, d)] = kNegInf;
            }
        }

        // Guarded cell body for boundary PEs (i == 0, cell_r == 0,
        // d == 0): the reference semantics, -inf checks included,
        // with the comparator read replaced by its latched-datapath
        // identity — at cycle c the array would hold cycle c-1's
        // retro comparisons, i.e. exactly R[cell_r-1] == Q[cell_q-1].
        const auto cell = [&](u32 i, u32 d) {
            const u64 cell_r = c - i;
            const u64 cell_q = c - d;
            const size_t self = idx(i, d);

            i32 e = kNegInf;
            if (i >= 1 && cell_q >= 1) {
                const size_t src = idx(i - 1, d);
                if (_hCur[src] != kNegInf)
                    e = _hCur[src] - open_ext;
                if (_eCur[src] != kNegInf)
                    e = std::max(e, _eCur[src] - _sc.gapExtend);
            }
            i32 f = kNegInf;
            if (d >= 1 && cell_r >= 1) {
                const size_t src = idx(i, d - 1);
                if (_hCur[src] != kNegInf)
                    f = _hCur[src] - open_ext;
                if (_fCur[src] != kNegInf)
                    f = std::max(f, _fCur[src] - _sc.gapExtend);
            }
            i32 diag = kNegInf;
            if (cell_r >= 1 && cell_q >= 1 && _hCur[self] != kNegInf)
                diag = _hCur[self] +
                       _sc.sub(r[cell_r - 1], q[cell_q - 1]);

            i32 h = std::max({diag, e, f});
            if (c == 0 && i == 0 && d == 0)
                h = 0;

            _eNext[self] = e;
            _fNext[self] = f;
            _hNext[self] = h;
            if (h != kNegInf) {
                consider(h, i, d, cell_r, cell_q, c);
                _bestSeen[self] = std::max(_bestSeen[self], h);
            }
        };

#if defined(GENAX_SIMD_AVX2)
        // Vector path: guarded boundary cells first, then one kernel
        // invocation over every lean row of the cycle. Hoisting the
        // guarded cells cannot change any output: within one cycle
        // the best-cell update is order-independent (the tie-break
        // keys pin a unique cell; see scoring_row.hh), and the
        // clipping registers fold disjoint cells.
        if (use_avx2) {
            for (u32 i = i_lo; i <= i_hi; ++i) {
                const u32 d_hi =
                    static_cast<u32>(std::min<u64>(_k, c - i));
                if (i == 0 || c == i) {
                    for (u32 d = d_lo; d <= d_hi; ++d)
                        cell(i, d);
                } else if (d_lo == 0) {
                    cell(i, 0); // a lean row's guarded d == 0 cell
                }
            }
            const u32 lean_lo = std::max(i_lo, 1u);
            if (c >= 1 && lean_lo <= i_hi) {
                const u32 lean_hi = static_cast<u32>(
                    std::min<u64>(i_hi, c - 1));
                const u32 lean_d = std::max(d_lo, 1u);
                if (lean_lo <= lean_hi) {
                    const detail::ScoringCycleCtx ctx{
                        _hCur.data(),  _eCur.data(),
                        _fCur.data(),  _hNext.data(),
                        _eNext.data(), _fNext.data(),
                        _bestSeen.data(),
                        r.data(),      q.data(),
                        c,             _k,
                        open_ext,      _sc.gapExtend,
                        _sc.match,     _sc.mismatch,
                        res.best};
                    _rowEvents.clear();
                    detail::scoringStreamCycleAvx2(
                        ctx, lean_lo, lean_hi, lean_d, _rowEvents);
                    for (const auto &ev : _rowEvents) {
                        const size_t self = idx(ev.i, ev.d);
                        consider(_hNext[self], ev.i, ev.d, c - ev.i,
                                 c - ev.d, c);
                    }
                }
            }
            std::swap(_hCur, _hNext);
            std::swap(_eCur, _eNext);
            std::swap(_fCur, _fNext);
            continue;
        }
#endif
        for (u32 i = i_lo; i <= i_hi; ++i) {
            const u64 cell_r = c - i;
            const u32 d_hi =
                static_cast<u32>(std::min<u64>(_k, c - i));
            if (i == 0 || cell_r == 0) {
                for (u32 d = d_lo; d <= d_hi; ++d)
                    cell(i, d);
                continue;
            }
            u32 d = d_lo;
            if (d == 0 && d <= d_hi) {
                cell(i, 0);
                d = 1;
            }
            // Lean interior: i >= 1 and d >= 1 with cell_r >= 1 and
            // cell_q >= 1, so the E/F source H values are real (every
            // in-window cell's H is real from its entry cycle — the
            // anchor seeds (0,0) and gap openings off a real H reach
            // each fresh cell), making e, f and hence h real. The
            // only possibly-junk term is the diagonal self-read on a
            // fresh cell (exact -inf plus a substitution score),
            // which sits hundreds of millions below any real e/f and
            // loses the max exactly as the guarded body's -inf does.
            const size_t row = static_cast<size_t>(i) * stride;
            for (; d <= d_hi; ++d) {
                const size_t self = row + d;
                const size_t srcE = self - stride;
                const size_t srcF = self - 1;

                const i32 e =
                    std::max(_hCur[srcE] - open_ext,
                             _eCur[srcE] - _sc.gapExtend);
                const i32 f =
                    std::max(_hCur[srcF] - open_ext,
                             _fCur[srcF] - _sc.gapExtend);
                const u64 cell_q = c - d;
                const i32 diag =
                    _hCur[self] + _sc.sub(r[cell_r - 1],
                                          q[cell_q - 1]);
                const i32 h = std::max({diag, e, f});

                _eNext[self] = e;
                _fNext[self] = f;
                _hNext[self] = h;
                consider(h, i, d, cell_r, cell_q, c);
                _bestSeen[self] = std::max(_bestSeen[self], h);
            }
        }
        std::swap(_hCur, _hNext);
        std::swap(_eCur, _eNext);
        std::swap(_fCur, _fNext);
    }
    res.streamCycles = max_cycle + 1;
    return res;
}

std::pair<i32, Cycle>
StructuralScoringMachine::backPropagateBest()
{
#if defined(GENAX_MODEL_ORACLE)
    return backPropagateBestNaive();
#else
    GENAX_CHECK(!_bestSeen.empty(),
                 "backPropagateBest requires a prior run()");
    // Local-only reduction: every cycle a PE folds in its upstream
    // (i+1,d) / (i,d+1) / (i+1,d+1) neighbours' registers, so after
    // p passes a PE holds the maximum over the (p+1)-sided square
    // anchored at it, and its fixed point is the maximum over its
    // whole upper-right quadrant. The pass loop runs until the first
    // all-unchanged pass; a PE last changes on the pass equal to the
    // Chebyshev distance to the nearest maximiser of its quadrant,
    // so the pass count is 1 + the largest such distance. One
    // reverse sweep computes both the quadrant maxima and those
    // distances — same register values, same cycle count, no
    // iteration to a fixed point.
    const u32 kk = _k + 1;
    std::vector<i32> qmax(_bestSeen.size());
    std::vector<Cycle> dist(_bestSeen.size(), 0);
    Cycle max_dist = 0;
    for (u32 i = kk; i-- > 0;) {
        for (u32 d = kk; d-- > 0;) {
            const size_t s = idx(i, d);
            i32 v = _bestSeen[s];
            if (i + 1 < kk)
                v = std::max(v, qmax[idx(i + 1, d)]);
            if (d + 1 < kk)
                v = std::max(v, qmax[idx(i, d + 1)]);
            if (i + 1 < kk && d + 1 < kk)
                v = std::max(v, qmax[idx(i + 1, d + 1)]);
            qmax[s] = v;
            if (_bestSeen[s] == v) {
                dist[s] = 0;
                continue;
            }
            // The maximum came from a neighbour's quadrant; hop to
            // the nearest neighbour that still sees it.
            Cycle best = std::numeric_limits<Cycle>::max();
            if (i + 1 < kk && qmax[idx(i + 1, d)] == v)
                best = std::min(best, dist[idx(i + 1, d)]);
            if (d + 1 < kk && qmax[idx(i, d + 1)] == v)
                best = std::min(best, dist[idx(i, d + 1)]);
            if (i + 1 < kk && d + 1 < kk &&
                qmax[idx(i + 1, d + 1)] == v)
                best = std::min(best, dist[idx(i + 1, d + 1)]);
            GENAX_DCHECK(best != std::numeric_limits<Cycle>::max(),
                         "quadrant max not visible from any "
                         "neighbour");
            dist[s] = best + 1;
            max_dist = std::max(max_dist, dist[s]);
        }
    }
    return {qmax[idx(0, 0)], max_dist + 1};
#endif
}

std::pair<i32, Cycle>
StructuralScoringMachine::backPropagateBestNaive()
{
    GENAX_CHECK(!_bestSeen.empty(),
                 "backPropagateBest requires a prior run()");
    // Lock-step reference for the reduction above: every cycle a PE
    // folds in its upstream neighbours' registers; the grid diameter
    // bounds convergence. Kept as the equivalence oracle.
    std::vector<i32> cur = _bestSeen;
    std::vector<i32> next = cur;
    Cycle cycles = 0;
    for (bool changed = true; changed; ++cycles) {
        changed = false;
        for (u32 i = 0; i <= _k; ++i) {
            for (u32 d = 0; d <= _k; ++d) {
                i32 v = cur[idx(i, d)];
                if (i + 1 <= _k)
                    v = std::max(v, cur[idx(i + 1, d)]);
                if (d + 1 <= _k)
                    v = std::max(v, cur[idx(i, d + 1)]);
                if (i + 1 <= _k && d + 1 <= _k)
                    v = std::max(v, cur[idx(i + 1, d + 1)]);
                next[idx(i, d)] = v;
                changed |= v != cur[idx(i, d)];
            }
        }
        std::swap(cur, next);
    }
    return {cur[idx(0, 0)], cycles};
}

} // namespace genax
