#include "sillax/edit_machine.hh"

#include <algorithm>

#include "common/check.hh"

namespace genax {

StructuralEditMachine::StructuralEditMachine(u32 k)
    : _k(k), _cmps(k)
{
    GENAX_CHECK(k <= kMaxSillaK, "Silla edit bound ", k,
                " exceeds the supported maximum ", kMaxSillaK);
    const size_t n = static_cast<size_t>(k + 1) * (k + 1);
    _cur0.assign(n, 0);
    _cur1.assign(n, 0);
    _curW.assign(n, 0);
    _next0.assign(n, 0);
    _next1.assign(n, 0);
    _nextW.assign(n, 0);
}

std::optional<u32>
StructuralEditMachine::distance(const Seq &r, const Seq &q)
{
#if defined(GENAX_MODEL_ORACLE)
    return distanceNaive(r, q);
#else
    return distanceEvent(r, q);
#endif
}

std::optional<u32>
StructuralEditMachine::distanceNaive(const Seq &r, const Seq &q)
{
    _cmps.reset();
    const u64 n = r.size(), m = q.size();
    return distanceImpl(
        r, q,
        [&](u64 c) {
            // Stream the cycle's characters into the comparator
            // array (pad symbols past the string ends).
            _cmps.step(c < n ? r[c] : ComparatorArray::kPadR,
                       c < m ? q[c] : ComparatorArray::kPadQ);
        },
        [&](u32 i, u32 d, u64) {
            // The latched systolic comparison, not a direct string
            // lookup.
            return _cmps.compare(i, d);
        });
}

std::optional<u32>
StructuralEditMachine::distanceEvent(const Seq &r, const Seq &q)
{
    const u64 n = r.size(), m = q.size();
    return distanceImpl(
        r, q, [](u64) {},
        [&](u32 i, u32 d, u64 c) {
            // Latched-datapath identity: after streaming characters
            // 0..c, state (i, d) sees R[c-i] == Q[c-d], with pads —
            // characters past either string's end — matching
            // nothing. The caller only asks with c - i <= n and
            // c - d <= m, so the range checks are exactly the pad
            // semantics.
            const u64 cr = c - i, cq = c - d;
            return cr < n && cq < m && r[cr] == q[cq];
        });
}

template <typename StepFn, typename CmpFn>
std::optional<u32>
StructuralEditMachine::distanceImpl(const Seq &r, const Seq &q,
                                    StepFn &&step, CmpFn &&cmp)
{
    const u64 n = r.size(), m = q.size();
    _stats = {};
    if (n > m + _k || m > n + _k)
        return std::nullopt;

    // Both buffer generations are all-zero outside the active lists
    // (the sweep re-zeroes each consumed generation), so clearing
    // the previous call's live cells restores a fully blank grid
    // without a (K+1)^2 fill.
    for (const size_t s : _activeCur) {
        _cur0[s] = 0;
        _cur1[s] = 0;
        _curW[s] = 0;
    }
    _cur0[idx(0, 0)] = 1;
    _activeCur.clear();
    _activeCur.push_back(idx(0, 0));

    // A cell enters the next-cycle active list the first time any of
    // its three state bits is set; activation stats count set bits,
    // so the sparse visit order (insertion order, deterministic)
    // accumulates exactly what the dense i-then-d sweep did.
    const auto mark = [&](size_t s) {
        if (!_next0[s] && !_next1[s] && !_nextW[s])
            _activeNext.push_back(s);
    };

    std::optional<u32> best;
    const u64 max_cycle = std::min(n, m) + _k;
    u64 c = 0;
    for (; c <= max_cycle; ++c) {
        step(c);

        _activeNext.clear();
        u64 active = 0;
        bool any = false;

        for (const size_t s : _activeCur) {
            const u32 i = static_cast<u32>(s / (_k + 1));
            const u32 d = static_cast<u32>(s % (_k + 1));
            if (_curW[s]) {
                ++active;
                any = true;
                mark(idx(i + 1, d + 1));
                _next0[idx(i + 1, d + 1)] = 1;
            }
            for (u32 layer = 0; layer <= 1; ++layer) {
                const u8 on = layer == 0 ? _cur0[s] : _cur1[s];
                if (!on)
                    continue;
                ++active;
                if (c - i == n && c - d == m) {
                    const u32 edits = i + d + layer;
                    if (!best || edits < *best)
                        best = edits;
                    continue;
                }
                if (c - i > n || c - d > m)
                    continue;
                any = true;
                if (cmp(i, d, c)) {
                    mark(s);
                    (layer == 0 ? _next0 : _next1)[s] = 1;
                    continue;
                }
                auto &lay = layer == 0 ? _next0 : _next1;
                if (i + 1 + d + layer <= _k) {
                    mark(idx(i + 1, d));
                    lay[idx(i + 1, d)] = 1;
                }
                if (i + d + 1 + layer <= _k) {
                    mark(idx(i, d + 1));
                    lay[idx(i, d + 1)] = 1;
                }
                if (layer == 0) {
                    if (i + d + 1 <= _k) {
                        mark(s);
                        _next1[s] = 1;
                    }
                } else if (i + d + 2 <= _k) {
                    mark(s);
                    _nextW[s] = 1;
                }
            }
        }
        _stats.peakActive = std::max(_stats.peakActive, active);
        _stats.totalActivations += active;
        std::swap(_cur0, _next0);
        std::swap(_cur1, _next1);
        std::swap(_curW, _nextW);
        // Re-zero the consumed generation (now the next buffers) so
        // the all-zero-outside-the-list invariant holds for reuse.
        for (const size_t s : _activeCur) {
            _next0[s] = 0;
            _next1[s] = 0;
            _nextW[s] = 0;
        }
        std::swap(_activeCur, _activeNext);
        if (best || !any)
            break;
    }
    _stats.cycles = c;
    return best;
}

} // namespace genax
