#include "sillax/edit_machine.hh"

#include <algorithm>

#include "common/check.hh"

namespace genax {

StructuralEditMachine::StructuralEditMachine(u32 k)
    : _k(k), _cmps(k)
{
    GENAX_CHECK(k <= kMaxSillaK, "Silla edit bound ", k,
                " exceeds the supported maximum ", kMaxSillaK);
    const size_t n = static_cast<size_t>(k + 1) * (k + 1);
    _cur0.assign(n, 0);
    _cur1.assign(n, 0);
    _curW.assign(n, 0);
    _next0.assign(n, 0);
    _next1.assign(n, 0);
    _nextW.assign(n, 0);
}

std::optional<u32>
StructuralEditMachine::distance(const Seq &r, const Seq &q)
{
    const u64 n = r.size(), m = q.size();
    _stats = {};
    if (n > m + _k || m > n + _k)
        return std::nullopt;

    _cmps.reset();
    std::fill(_cur0.begin(), _cur0.end(), 0);
    std::fill(_cur1.begin(), _cur1.end(), 0);
    std::fill(_curW.begin(), _curW.end(), 0);
    _cur0[idx(0, 0)] = 1;

    std::optional<u32> best;
    const u64 max_cycle = std::min(n, m) + _k;
    u64 c = 0;
    for (; c <= max_cycle; ++c) {
        // Stream the cycle's characters into the comparator array
        // (pad symbols past the string ends).
        _cmps.step(c < n ? r[c] : ComparatorArray::kPadR,
                   c < m ? q[c] : ComparatorArray::kPadQ);

        std::fill(_next0.begin(), _next0.end(), 0);
        std::fill(_next1.begin(), _next1.end(), 0);
        std::fill(_nextW.begin(), _nextW.end(), 0);
        u64 active = 0;
        bool any = false;

        for (u32 i = 0; i <= _k; ++i) {
            for (u32 d = 0; i + d <= _k; ++d) {
                const size_t s = idx(i, d);
                if (_curW[s]) {
                    ++active;
                    any = true;
                    _next0[idx(i + 1, d + 1)] = 1;
                }
                for (u32 layer = 0; layer <= 1; ++layer) {
                    const u8 on = layer == 0 ? _cur0[s] : _cur1[s];
                    if (!on)
                        continue;
                    ++active;
                    if (c - i == n && c - d == m) {
                        const u32 edits = i + d + layer;
                        if (!best || edits < *best)
                            best = edits;
                        continue;
                    }
                    if (c - i > n || c - d > m)
                        continue;
                    any = true;
                    // The latched systolic comparison, not a direct
                    // string lookup.
                    if (_cmps.compare(i, d)) {
                        (layer == 0 ? _next0 : _next1)[s] = 1;
                        continue;
                    }
                    auto &lay = layer == 0 ? _next0 : _next1;
                    if (i + 1 + d + layer <= _k)
                        lay[idx(i + 1, d)] = 1;
                    if (i + d + 1 + layer <= _k)
                        lay[idx(i, d + 1)] = 1;
                    if (layer == 0) {
                        if (i + d + 1 <= _k)
                            _next1[s] = 1;
                    } else if (i + d + 2 <= _k) {
                        _nextW[s] = 1;
                    }
                }
            }
        }
        _stats.peakActive = std::max(_stats.peakActive, active);
        _stats.totalActivations += active;
        std::swap(_cur0, _next0);
        std::swap(_cur1, _next1);
        std::swap(_curW, _nextW);
        if (best || !any)
            break;
    }
    _stats.cycles = c;
    return best;
}

} // namespace genax
