/**
 * @file
 * Model of a banded Smith-Waterman hardware accelerator — the prior
 * art SillaX is compared against in Section VIII-C.
 *
 * A systolic banded-SW array computes the 2K+1 cells of each
 * anti-diagonal in parallel: O(N) time with 2K+1 processing
 * elements. Supporting traceback requires storing the per-cell
 * back-pointers, O(K*N) space that grows with read length — the
 * scaling wall SillaX's O(K^2) in-place traceback removes.
 * (Hirschberg's alternative cuts space to O(K) but raises time to
 * O(N log N), as the paper notes.)
 */

#ifndef GENAX_SILLAX_SW_ACCEL_HH
#define GENAX_SILLAX_SW_ACCEL_HH

#include "common/types.hh"
#include "sillax/tech_model.hh"

namespace genax {

/** Banded Smith-Waterman accelerator cost model. */
class BandedSwAccelModel
{
  public:
    explicit BandedSwAccelModel(u32 band) : _band(band) {}

    u32 band() const { return _band; }

    /** Systolic array size: one PE per band diagonal. */
    u64 peCount() const { return 2 * static_cast<u64>(_band) + 1; }

    /** Cycles to align an N x N-ish band: fill + stream + drain. */
    Cycle
    alignCycles(u64 n) const
    {
        return n + 2 * _band;
    }

    /** Back-pointer storage for traceback: 4 bits per banded cell
     *  (H source + gap-extend flags), O(K*N). */
    u64
    tracebackBytes(u64 n) const
    {
        return (peCount() * n * 4 + 7) / 8;
    }

    /** PE-array area (excludes traceback SRAM). */
    double
    peArrayAreaMm2(double f_ghz) const
    {
        return peCount() * TechModel::bandedSwPeAreaUm2(f_ghz) / 1e6;
    }

    /** Total area including the traceback store for reads of
     *  length n (SRAM at the Table II density). */
    double
    areaMm2(u64 n, double f_ghz) const
    {
        const double sram_mb =
            static_cast<double>(tracebackBytes(n)) / 1e6;
        return peArrayAreaMm2(f_ghz) +
               sram_mb * TechModel::sramAreaPerMb();
    }

  private:
    u32 _band;
};

} // namespace genax

#endif // GENAX_SILLAX_SW_ACCEL_HH
