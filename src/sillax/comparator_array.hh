/**
 * @file
 * Structural model of the SillaX retro-comparison datapath
 * (Section IV-A, Figure 5).
 *
 * A naive design would need one comparator per PE per cycle. SillaX
 * instead computes only the 2K+1 peripheral comparisons each cycle —
 * states (i, 0) compare R[c-i] against the current query character
 * and states (0, d) compare the current reference character against
 * Q[c-d] — and every interior state latches the comparison its
 * up-diagonal neighbour (i-1, d-1) held one cycle earlier:
 *
 *     cmp(i, d) @ c  =  cmp(i-1, d-1) @ c-1  =  R[c-i] == Q[c-d]
 *
 * The strings flow through two (K+1)-deep shift registers. Characters
 * past the end of a string are replaced by per-string pad symbols
 * that match nothing (including each other), so trailing indels are
 * explored exactly as in the functional automaton.
 *
 * This model exists to validate the datapath property structurally;
 * the equivalence with direct retro comparisons is asserted in the
 * tests and exploited by StructuralEditMachine.
 */

#ifndef GENAX_SILLAX_COMPARATOR_ARRAY_HH
#define GENAX_SILLAX_COMPARATOR_ARRAY_HH

#include <vector>

#include "common/dna.hh"
#include "common/types.hh"

namespace genax {

/** Systolic comparator array for a fixed edit bound K. */
class ComparatorArray
{
  public:
    /** Symbol width: 2-bit bases plus two distinct pad symbols. */
    static constexpr u8 kPadR = 4;
    static constexpr u8 kPadQ = 5;

    explicit ComparatorArray(u32 k);

    /** Reset shift registers and comparison latches. */
    void reset();

    /**
     * Advance one cycle: shift in the next reference and query
     * symbols (use the pads past the end of a string), compute the
     * 2K+1 peripheral comparisons and shift the interior latches
     * diagonally.
     */
    void step(u8 r_sym, u8 q_sym);

    /** Latched retro comparison available to state (i, d) this cycle. */
    bool
    compare(u32 i, u32 d) const
    {
        return _cmp[i * (_k + 1) + d];
    }

    u32 k() const { return _k; }

    /** Comparators instantiated (the 2K+1 periphery). */
    u32 comparatorCount() const { return 2 * _k + 1; }

  private:
    u32 _k;
    /** R and Q shift registers: index 0 is the newest symbol. */
    std::vector<u8> _rShift, _qShift;
    /** Comparison latches, one per (i, d). */
    std::vector<u8> _cmp, _cmpNext;
};

} // namespace genax

#endif // GENAX_SILLAX_COMPARATOR_ARRAY_HH
