/**
 * @file
 * Structural SillaX scoring machine (Section IV-B, Figure 7).
 *
 * Functionally identical to the SillaScore automaton, but driven the
 * way the hardware is: the per-PE match/mismatch decision comes from
 * the systolic ComparatorArray (2K+1 peripheral comparators +
 * diagonal latch forwarding) rather than from direct string
 * indexing, and each PE touches only its own latched registers plus
 * its two upstream neighbours' (delayed merging). Equivalence with
 * SillaScore — and hence with banded Gotoh — is property-tested.
 */

#ifndef GENAX_SILLAX_SCORING_MACHINE_HH
#define GENAX_SILLAX_SCORING_MACHINE_HH

#include <vector>

#include "silla/silla_score.hh"
#include "sillax/comparator_array.hh"
#include "sillax/scoring_row.hh"

namespace genax {

/** Cycle-level structural scoring machine. */
class StructuralScoringMachine
{
  public:
    StructuralScoringMachine(u32 k, const Scoring &sc);

    /**
     * Clipped best extension score of q against r (anchored).
     *
     * Two implementations are bit-identical (result, clipping
     * registers, cycle counts): the naive oracle streams the
     * comparator array and dense-fills the grid every cycle as the
     * hardware would; the event path reads comparisons straight off
     * the strings (latched-datapath identity), resets only the fresh
     * anti-diagonal frontier, and sweeps lean interior rows through
     * the AVX2 row kernel when the dispatch tier allows.
     * `-DGENAX_MODEL_ORACLE=ON` pins the naive oracle.
     */
    SillaScoreResult run(const Seq &r, const Seq &q);

    /** The systolic/dense oracle (always available to tests). */
    SillaScoreResult runNaive(const Seq &r, const Seq &q);
    /** The event path (always available to tests). */
    SillaScoreResult runEvent(const Seq &r, const Seq &q);

    /**
     * Phase 2 of Section IV-B, structurally: after run(), each PE
     * holds the best score it ever saw; the maxima are reduced to
     * PE (0,0) purely through nearest-neighbour back-propagation
     * (each cycle a PE takes the max of itself and its three
     * upstream neighbours). Returns the value read out at (0,0) and
     * the cycles the reduction took — always equal to run().best and
     * at most 2K cycles (asserted in the tests).
     *
     * Computed in closed form (one reverse sweep over the grid — the
     * pass count is 1 + the largest Chebyshev distance from a PE to
     * the nearest maximiser of its upper-right quadrant); dispatches
     * to the lock-step reference under GENAX_MODEL_ORACLE.
     */
    std::pair<i32, Cycle> backPropagateBest();

    /** Lock-step reference for backPropagateBest() (the oracle). */
    std::pair<i32, Cycle> backPropagateBestNaive();

    u32 k() const { return _k; }
    u32 comparatorCount() const { return _cmps.comparatorCount(); }

  private:
    size_t idx(u32 i, u32 d) const { return i * (_k + 1) + d; }

    u32 _k;
    Scoring _sc;
    ComparatorArray _cmps;
    std::vector<i32> _hCur, _hNext, _eCur, _eNext, _fCur, _fNext;
    std::vector<i32> _bestSeen; //!< per-PE clipping registers
    /** Event staging for the vector row kernel, reused across
     *  sweeps. */
    std::vector<detail::ScoringRowEvent> _rowEvents;
};

} // namespace genax

#endif // GENAX_SILLAX_SCORING_MACHINE_HH
