/**
 * @file
 * Composable SillaX tiles (Section IV-D, Figure 10).
 *
 * The PE grid's maximum edit distance is fixed in silicon, so SillaX
 * is built from T = rows x cols tiles of native edit bound K_tile.
 * A p x p block of tiles (alternating forward/flipped orientations,
 * with boundary MUXes concatenating the character shift registers)
 * forms one engine whose grid is p*(K_tile+1) PEs on a side, i.e. an
 * effective edit bound of p*(K_tile+1) - 1. Unused tiles keep
 * operating as independent K_tile engines.
 *
 * This model implements the configuration/allocation logic and the
 * MUX overhead accounting; each placed engine is functionally a
 * SillaTraceback machine of the composed bound.
 */

#ifndef GENAX_SILLAX_TILE_HH
#define GENAX_SILLAX_TILE_HH

#include <vector>

#include "common/types.hh"
#include "sillax/tech_model.hh"

namespace genax {

/** One configured engine within the tile array. */
struct TileEngine
{
    u32 row = 0;   //!< top-left tile of the p x p block
    u32 col = 0;
    u32 p = 1;     //!< block side length in tiles
    u32 editBound = 0; //!< effective K of the composed engine
};

/** A reconfigurable array of SillaX tiles. */
class TileArray
{
  public:
    /**
     * @param tile_k  native edit bound of one tile
     * @param rows, cols  tile grid dimensions
     */
    TileArray(u32 tile_k, u32 rows, u32 cols);

    /** Effective edit bound of a p x p composed engine. */
    u32
    composedBound(u32 p) const
    {
        return p * (_tileK + 1) - 1;
    }

    /** Largest composable p (limited by the grid's shorter side). */
    u32 maxP() const { return std::min(_rows, _cols); }

    /**
     * Configure the array: place one p x p engine for each requested
     * block size (first-fit, top-left scan), then fill every
     * remaining tile with an independent 1 x 1 engine.
     *
     * @return true if all requested engines fit; on failure the
     *         array keeps its previous configuration.
     */
    bool configure(const std::vector<u32> &requested_p);

    /** Engines of the current configuration. */
    const std::vector<TileEngine> &engines() const { return _engines; }

    u32 tileK() const { return _tileK; }
    u32 rows() const { return _rows; }
    u32 cols() const { return _cols; }
    u64 tileCount() const { return static_cast<u64>(_rows) * _cols; }

    /** Total PE count across the array (independent of config). */
    u64
    peCount() const
    {
        return tileCount() * TechModel::peCount(_tileK);
    }

    /**
     * Area of the array in mm^2 including the reconfiguration MUX
     * overhead ("only a small overhead of MUXes between tiles and
     * for each PE").
     */
    double areaMm2(PeType type, double f_ghz) const;

  private:
    u32 _tileK;
    u32 _rows;
    u32 _cols;
    std::vector<TileEngine> _engines;
};

} // namespace genax

#endif // GENAX_SILLAX_TILE_HH
