/**
 * @file
 * Cycle model of the 128 seeding lanes sharing the banked
 * index/position SRAM (Section VI, Figure 11).
 *
 * Each lane works through its queue of reads; a read is a number of
 * index-table lookups (issued to pseudo-random SRAM banks, up to the
 * lane's issue width in flight) followed by local CAM operations.
 * Banks grant one access per cycle, so lanes conflict — the effect
 * the closed-form cycle model approximates with an issue-width
 * divisor, here simulated directly. Used by the GenAx system model
 * when GenAxConfig::simulateSeedingLanes is set, and by the
 * bank-count ablation.
 *
 * Two implementations produce bit-identical results:
 *
 *  - simulateNaive(): the lock-step reference — `for (;; ++t)`
 *    touching every lane every cycle. It IS the specification of the
 *    model; it is deliberately kept simple and is never optimized.
 *  - simulateEvent(): event-driven — between issue attempts a lane
 *    evolves deterministically (SRAM retirements, CAM countdown,
 *    zero-lookup read pops), so those stretches collapse to closed
 *    form and only cycles containing at least one issue attempt are
 *    stepped exactly. Bank-address RNG draws happen only on issue
 *    attempts, in rotating lane order, so the draw sequence — and
 *    with it cycles / grants / bankConflicts — replays exactly.
 *
 * simulate() dispatches to the event path, or to the naive path when
 * built with -DGENAX_MODEL_ORACLE=ON (mirroring the kmer-index
 * oracle). tests/test_model_equiv.cc pins the equivalence.
 */

#ifndef GENAX_GENAX_SEEDING_SIM_HH
#define GENAX_GENAX_SEEDING_SIM_HH

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace genax {

/** Simulator parameters. */
struct SeedingSimConfig
{
    u32 lanes = 128;
    u32 banks = 32;       //!< independently-addressable SRAM banks
    u32 sramLatency = 2;  //!< cycles from grant to data
    u32 issueWidth = 4;   //!< outstanding lookups per lane
    u64 seed = 1;         //!< synthetic bank-address stream
};

/** Work of one read on one seeding lane. */
struct LaneWork
{
    u64 indexLookups = 0; //!< banked SRAM accesses
    u64 camOps = 0;       //!< local CAM searches/loads/probes
};

/** Result of one simulation. */
struct SeedingSimResult
{
    Cycle cycles = 0;
    u64 bankConflicts = 0; //!< issue attempts denied by a busy bank
    u64 grants = 0;        //!< accesses served

    /** Fraction of bank-cycles doing useful work. */
    double
    bankUtilization(u32 banks) const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(grants) /
                                 (static_cast<double>(cycles) * banks);
    }
};

/** The lane-array simulator. */
class SeedingLaneSim
{
  public:
    explicit SeedingLaneSim(const SeedingSimConfig &cfg) : _cfg(cfg) {}

    /**
     * Simulate the lane array draining `work` (items are dealt to
     * lanes round-robin) and return the cycle count. Dispatches to
     * simulateEvent(), or simulateNaive() under GENAX_MODEL_ORACLE.
     */
    SeedingSimResult simulate(const std::vector<LaneWork> &work) const;

    /** Lock-step reference implementation (the oracle). */
    SeedingSimResult
    simulateNaive(const std::vector<LaneWork> &work) const;

    /** Event-driven implementation; bit-identical to the oracle. */
    SeedingSimResult
    simulateEvent(const std::vector<LaneWork> &work) const;

    const SeedingSimConfig &config() const { return _cfg; }

  private:
    void checkConfig() const;

    SeedingSimConfig _cfg;
};

} // namespace genax

#endif // GENAX_GENAX_SEEDING_SIM_HH
