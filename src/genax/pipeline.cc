#include "genax/pipeline.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>

#include "common/check.hh"
#include "common/faultinject.hh"
#include "common/logging.hh"
#include "io/sam.hh"
#include "silla/silla.hh"
#include "swbase/bwamem_like.hh"
#include "swbase/paired.hh"

namespace genax {

ContigMap::ContigMap(const std::vector<FastaRecord> &contigs)
{
    GENAX_CHECK(!contigs.empty(), "reference has no contigs");
    for (const auto &rec : contigs) {
        GENAX_CHECK(!rec.seq.empty(), "empty contig: ", rec.name);
        _contigs.push_back({rec.name, _seq.size(), rec.seq.size()});
        _seq.insert(_seq.end(), rec.seq.begin(), rec.seq.end());
    }
}

std::pair<size_t, u64>
ContigMap::locate(u64 pos) const
{
    GENAX_CHECK(pos < _seq.size(), "position beyond reference");
    // Binary search over contig starts.
    size_t lo = 0, hi = _contigs.size() - 1;
    while (lo < hi) {
        const size_t mid = (lo + hi + 1) / 2;
        if (_contigs[mid].start <= pos)
            lo = mid;
        else
            hi = mid - 1;
    }
    return {lo, pos - _contigs[lo].start};
}

namespace {

/** Unmapped SAM record for a read the pipeline could not align. */
SamRecord
unmappedRecord(const FastqRecord &read)
{
    SamRecord rec;
    rec.qname = read.name;
    rec.flag = kSamUnmapped;
    rec.seq = decode(read.seq);
    rec.qual = phredToAscii(read.qual);
    return rec;
}

} // namespace

StatusOr<PipelineResult>
alignToSam(const std::vector<FastaRecord> &ref,
           const std::vector<FastqRecord> &reads, std::ostream &out,
           const PipelineOptions &opts)
{
    if (ref.empty())
        return invalidInputError("reference has no usable contigs");
    for (const auto &rec : ref) {
        if (rec.seq.empty())
            return invalidInputError("reference contig '" + rec.name +
                                     "' is empty");
    }
    const ContigMap contigs(ref);

    PipelineResult res;
    res.reads = reads.size();

    // Admission: the genax.pipeline.read fault point models a read
    // lost inside the pipeline (staging-buffer corruption and the
    // like). Such a read is Failed in the ledger and emitted as an
    // unmapped placeholder so the SAM output stays index-aligned with
    // the input.
    std::vector<u8> failed(reads.size(), 0);
    std::vector<Seq> seqs;
    seqs.reserve(reads.size());
    for (size_t i = 0; i < reads.size(); ++i) {
        if (faultFires(fault::kPipelineRead)) [[unlikely]] {
            failed[i] = 1;
            ++res.failed;
            continue;
        }
        seqs.push_back(reads[i].seq);
    }

    // Graceful degradation: an edit bound beyond what a SillaX lane
    // supports cannot run on the accelerator model at all; the whole
    // run falls back to the software engine and its mapped reads are
    // reported as degraded rather than silently relabelled.
    bool use_software = opts.engine == PipelineOptions::Engine::Software;
    if (!use_software && opts.band > kMaxSillaK) {
        GENAX_WARN("edit bound ", opts.band,
                   " exceeds the SillaX maximum ", kMaxSillaK,
                   "; degrading the run to the software engine");
        use_software = true;
        res.softwareFallback = true;
    }

    std::vector<Mapping> maps;
    std::vector<u8> degraded(seqs.size(), 0);
    const auto t0 = std::chrono::steady_clock::now();
    if (!use_software) {
        GenAxConfig cfg;
        cfg.k = opts.k;
        cfg.editBound = opts.band;
        cfg.segmentCount = opts.segments;
        cfg.segmentOverlap = opts.segmentOverlap;
        cfg.threads = opts.threads;
        GenAxSystem system(contigs.sequence(), cfg);
        maps = system.alignAll(seqs);
        res.perf = system.perf();
        degraded = system.degradedReads();
    } else {
        AlignerConfig cfg;
        cfg.k = opts.k;
        cfg.band = opts.band;
        cfg.threads = opts.threads;
        BwaMemLike aligner(contigs.sequence(), cfg);
        maps = aligner.alignAll(seqs);
        if (res.softwareFallback)
            degraded.assign(seqs.size(), 1);
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.seconds = std::chrono::duration<double>(t1 - t0).count();

    std::vector<SamRefSeq> header;
    for (const auto &c : contigs.contigs())
        header.push_back({c.name, c.length});
    SamWriter sam(out, header);

    size_t live = 0; // index into maps/degraded (admitted reads only)
    for (size_t i = 0; i < reads.size(); ++i) {
        if (failed[i]) {
            sam.write(unmappedRecord(reads[i]));
            continue;
        }
        const Mapping &m = maps[live];
        const bool via_fallback = degraded[live] != 0;
        ++live;
        SamRecord rec;
        rec.qname = reads[i].name;
        const Seq &oriented_seq =
            m.mapped && m.reverse ? reverseComplement(reads[i].seq)
                                  : reads[i].seq;
        rec.seq = decode(oriented_seq);
        if (!m.mapped) {
            rec.flag = kSamUnmapped;
            ++res.unmapped;
        } else {
            if (via_fallback)
                ++res.degraded;
            else
                ++res.mapped;
            const auto [ci, local] = contigs.locate(m.pos);
            rec.flag = m.reverse ? kSamReverse : 0;
            rec.rname = contigs.contigs()[ci].name;
            rec.pos = local;
            rec.mapq = m.mapq;
            rec.cigar = m.cigar.strSamM();
            rec.score = m.score;
            rec.editDistance =
                static_cast<i32>(m.cigar.editDistance());
        }
        rec.qual = phredToAscii(reads[i].qual, m.mapped && m.reverse);
        sam.write(rec);
    }
    if (!out)
        return ioError("failed writing SAM output after " +
                       std::to_string(sam.count()) + " records");
    GENAX_CHECK(res.ledgerBalanced(),
                "pipeline ledger out of balance: ", res.mapped, "+",
                res.unmapped, "+", res.skippedMalformed, "+",
                res.degraded, "+", res.failed, " != ", res.reads);
    return res;
}

namespace {

/** Fill one mate's SAM record from its mapping and its mate's. */
SamRecord
pairedRecord(const ContigMap &contigs, const FastqRecord &read,
             const Mapping &self, const Mapping &mate,
             const PairMapping &pair, bool is_read1)
{
    SamRecord rec;
    rec.qname = read.name;
    rec.flag = kSamPaired | (is_read1 ? kSamRead1 : kSamRead2);
    if (pair.proper)
        rec.flag |= kSamProperPair;
    if (!mate.mapped)
        rec.flag |= kSamMateUnmapped;
    else if (mate.reverse)
        rec.flag |= kSamMateReverse;

    const Seq &oriented = self.mapped && self.reverse
                              ? reverseComplement(read.seq)
                              : read.seq;
    rec.seq = decode(oriented);
    rec.qual = phredToAscii(read.qual, self.mapped && self.reverse);

    if (!self.mapped) {
        rec.flag |= kSamUnmapped;
    } else {
        const auto [ci, local] = contigs.locate(self.pos);
        if (self.reverse)
            rec.flag |= kSamReverse;
        rec.rname = contigs.contigs()[ci].name;
        rec.pos = local;
        rec.mapq = self.mapq;
        rec.cigar = self.cigar.strSamM();
        rec.score = self.score;
        rec.editDistance = static_cast<i32>(self.cigar.editDistance());
    }
    if (mate.mapped) {
        const auto [mci, mlocal] = contigs.locate(mate.pos);
        rec.rnext = self.mapped &&
                            contigs.locate(self.pos).first == mci
                        ? "="
                        : contigs.contigs()[mci].name;
        rec.pnext = mlocal;
    }
    if (pair.proper && self.mapped && mate.mapped) {
        // Leftmost mate carries +tlen, rightmost -tlen.
        rec.tlen = self.pos <= mate.pos ? pair.templateLen
                                        : -pair.templateLen;
    }
    return rec;
}

} // namespace

StatusOr<PipelineResult>
alignPairsToSam(const std::vector<FastaRecord> &ref,
                const std::vector<FastqRecord> &reads1,
                const std::vector<FastqRecord> &reads2,
                std::ostream &out, const PipelineOptions &opts)
{
    if (reads1.size() != reads2.size()) {
        return invalidInputError(
            "mate files differ in read count: " +
            std::to_string(reads1.size()) + " vs " +
            std::to_string(reads2.size()) +
            " (skipped malformed records can desynchronize mates)");
    }
    if (ref.empty())
        return invalidInputError("reference has no usable contigs");
    for (const auto &rec : ref) {
        if (rec.seq.empty())
            return invalidInputError("reference contig '" + rec.name +
                                     "' is empty");
    }
    const ContigMap contigs(ref);

    AlignerConfig cfg;
    cfg.k = opts.k;
    cfg.band = opts.band;
    cfg.threads = opts.threads;
    BwaMemLike aligner(contigs.sequence(), cfg);
    PairedAligner paired(aligner);

    PipelineResult res;
    res.reads = reads1.size() * 2;

    std::vector<SamRefSeq> header;
    for (const auto &c : contigs.contigs())
        header.push_back({c.name, c.length});
    SamWriter sam(out, header);

    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < reads1.size(); ++i) {
        // A pipeline.read fault fails the whole template: both mates
        // are emitted as unmapped placeholders and counted Failed.
        if (faultFires(fault::kPipelineRead)) [[unlikely]] {
            res.failed += 2;
            SamRecord r1 = unmappedRecord(reads1[i]);
            r1.flag |= kSamPaired | kSamRead1 | kSamMateUnmapped;
            SamRecord r2 = unmappedRecord(reads2[i]);
            r2.flag |= kSamPaired | kSamRead2 | kSamMateUnmapped;
            sam.write(r1);
            sam.write(r2);
            continue;
        }
        PairMapping pm = paired.alignPair(reads1[i].seq, reads2[i].seq);
        // Pairing works in concatenated coordinates; a pair whose
        // mates land on different contigs is not a proper pair.
        if (pm.proper &&
            contigs.locate(pm.r1.pos).first !=
                contigs.locate(pm.r2.pos).first) {
            pm.proper = false;
            pm.templateLen = 0;
        }
        res.mapped += pm.r1.mapped + pm.r2.mapped;
        res.unmapped += !pm.r1.mapped + !pm.r2.mapped;
        sam.write(pairedRecord(contigs, reads1[i], pm.r1, pm.r2, pm,
                               true));
        sam.write(pairedRecord(contigs, reads2[i], pm.r2, pm.r1, pm,
                               false));
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.seconds = std::chrono::duration<double>(t1 - t0).count();
    if (!out)
        return ioError("failed writing SAM output after " +
                       std::to_string(sam.count()) + " records");
    GENAX_CHECK(res.ledgerBalanced(),
                "paired pipeline ledger out of balance: ", res.mapped,
                "+", res.unmapped, "+", res.skippedMalformed, "+",
                res.degraded, "+", res.failed, " != ", res.reads);
    return res;
}

StatusOr<PipelineResult>
alignPairFiles(const std::string &ref_fasta,
               const std::string &reads1_fastq,
               const std::string &reads2_fastq,
               const std::string &out_sam, const PipelineOptions &opts)
{
    ReaderOptions ropts;
    ropts.maxMalformed = opts.maxMalformed;
    ReaderStats ref_stats, read1_stats, read2_stats;
    GENAX_TRY_ASSIGN(const auto ref,
                     readFastaFile(ref_fasta, ropts, &ref_stats));
    GENAX_TRY_ASSIGN(const auto reads1,
                     readFastqFile(reads1_fastq, ropts, &read1_stats));
    GENAX_TRY_ASSIGN(const auto reads2,
                     readFastqFile(reads2_fastq, ropts, &read2_stats));
    std::ofstream out(out_sam);
    if (!out)
        return ioErrorFromErrno("cannot open output SAM", out_sam);
    GENAX_TRY_ASSIGN(PipelineResult res,
                     alignPairsToSam(ref, reads1, reads2, out, opts));
    res.refInput = ref_stats;
    res.readInput = read1_stats;
    res.readInput.records += read2_stats.records;
    res.readInput.malformed += read2_stats.malformed;
    res.readInput.errors.insert(res.readInput.errors.end(),
                                read2_stats.errors.begin(),
                                read2_stats.errors.end());
    res.skippedMalformed = res.readInput.malformed;
    res.reads += res.skippedMalformed;
    return res;
}

StatusOr<PipelineResult>
alignFiles(const std::string &ref_fasta, const std::string &reads_fastq,
           const std::string &out_sam, const PipelineOptions &opts)
{
    ReaderOptions ropts;
    ropts.maxMalformed = opts.maxMalformed;
    ReaderStats ref_stats, read_stats;
    GENAX_TRY_ASSIGN(const auto ref,
                     readFastaFile(ref_fasta, ropts, &ref_stats));
    GENAX_TRY_ASSIGN(const auto reads,
                     readFastqFile(reads_fastq, ropts, &read_stats));
    std::ofstream out(out_sam);
    if (!out)
        return ioErrorFromErrno("cannot open output SAM", out_sam);
    GENAX_TRY_ASSIGN(PipelineResult res,
                     alignToSam(ref, reads, out, opts));
    res.refInput = ref_stats;
    res.readInput = read_stats;
    res.skippedMalformed = read_stats.malformed;
    res.reads += res.skippedMalformed;
    return res;
}

} // namespace genax
