#include "genax/pipeline.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>

#include "common/check.hh"
#include "common/logging.hh"
#include "io/sam.hh"
#include "swbase/bwamem_like.hh"
#include "swbase/paired.hh"

namespace genax {

ContigMap::ContigMap(const std::vector<FastaRecord> &contigs)
{
    GENAX_CHECK(!contigs.empty(), "reference has no contigs");
    for (const auto &rec : contigs) {
        GENAX_CHECK(!rec.seq.empty(), "empty contig: ", rec.name);
        _contigs.push_back({rec.name, _seq.size(), rec.seq.size()});
        _seq.insert(_seq.end(), rec.seq.begin(), rec.seq.end());
    }
}

std::pair<size_t, u64>
ContigMap::locate(u64 pos) const
{
    GENAX_CHECK(pos < _seq.size(), "position beyond reference");
    // Binary search over contig starts.
    size_t lo = 0, hi = _contigs.size() - 1;
    while (lo < hi) {
        const size_t mid = (lo + hi + 1) / 2;
        if (_contigs[mid].start <= pos)
            lo = mid;
        else
            hi = mid - 1;
    }
    return {lo, pos - _contigs[lo].start};
}

PipelineResult
alignToSam(const std::vector<FastaRecord> &ref,
           const std::vector<FastqRecord> &reads, std::ostream &out,
           const PipelineOptions &opts)
{
    const ContigMap contigs(ref);

    std::vector<Seq> seqs;
    seqs.reserve(reads.size());
    for (const auto &r : reads)
        seqs.push_back(r.seq);

    PipelineResult res;
    res.reads = reads.size();

    std::vector<Mapping> maps;
    const auto t0 = std::chrono::steady_clock::now();
    if (opts.engine == PipelineOptions::Engine::GenAx) {
        GenAxConfig cfg;
        cfg.k = opts.k;
        cfg.editBound = opts.band;
        cfg.segmentCount = opts.segments;
        cfg.segmentOverlap = opts.segmentOverlap;
        GenAxSystem system(contigs.sequence(), cfg);
        maps = system.alignAll(seqs);
        res.perf = system.perf();
    } else {
        AlignerConfig cfg;
        cfg.k = opts.k;
        cfg.band = opts.band;
        cfg.threads = opts.threads;
        BwaMemLike aligner(contigs.sequence(), cfg);
        maps = aligner.alignAll(seqs);
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.seconds = std::chrono::duration<double>(t1 - t0).count();

    std::vector<SamRefSeq> header;
    for (const auto &c : contigs.contigs())
        header.push_back({c.name, c.length});
    SamWriter sam(out, header);

    for (size_t i = 0; i < maps.size(); ++i) {
        const Mapping &m = maps[i];
        SamRecord rec;
        rec.qname = reads[i].name;
        const Seq &oriented_seq =
            m.mapped && m.reverse ? reverseComplement(reads[i].seq)
                                  : reads[i].seq;
        rec.seq = decode(oriented_seq);
        if (!m.mapped) {
            rec.flag = kSamUnmapped;
        } else {
            ++res.mapped;
            const auto [ci, local] = contigs.locate(m.pos);
            rec.flag = m.reverse ? kSamReverse : 0;
            rec.rname = contigs.contigs()[ci].name;
            rec.pos = local;
            rec.mapq = m.mapq;
            rec.cigar = m.cigar.strSamM();
            rec.score = m.score;
            rec.editDistance =
                static_cast<i32>(m.cigar.editDistance());
        }
        std::string qual;
        for (u8 q : reads[i].qual)
            qual.push_back(static_cast<char>(q + 33));
        if (m.mapped && m.reverse)
            std::reverse(qual.begin(), qual.end());
        rec.qual = qual.empty() ? "*" : qual;
        sam.write(rec);
    }
    return res;
}

namespace {

/** Fill one mate's SAM record from its mapping and its mate's. */
SamRecord
pairedRecord(const ContigMap &contigs, const FastqRecord &read,
             const Mapping &self, const Mapping &mate,
             const PairMapping &pair, bool is_read1)
{
    SamRecord rec;
    rec.qname = read.name;
    rec.flag = kSamPaired | (is_read1 ? kSamRead1 : kSamRead2);
    if (pair.proper)
        rec.flag |= kSamProperPair;
    if (!mate.mapped)
        rec.flag |= kSamMateUnmapped;
    else if (mate.reverse)
        rec.flag |= kSamMateReverse;

    const Seq &oriented = self.mapped && self.reverse
                              ? reverseComplement(read.seq)
                              : read.seq;
    rec.seq = decode(oriented);
    std::string qual;
    for (u8 q : read.qual)
        qual.push_back(static_cast<char>(q + 33));
    if (self.mapped && self.reverse)
        std::reverse(qual.begin(), qual.end());
    rec.qual = qual.empty() ? "*" : qual;

    if (!self.mapped) {
        rec.flag |= kSamUnmapped;
    } else {
        const auto [ci, local] = contigs.locate(self.pos);
        if (self.reverse)
            rec.flag |= kSamReverse;
        rec.rname = contigs.contigs()[ci].name;
        rec.pos = local;
        rec.mapq = self.mapq;
        rec.cigar = self.cigar.strSamM();
        rec.score = self.score;
        rec.editDistance = static_cast<i32>(self.cigar.editDistance());
    }
    if (mate.mapped) {
        const auto [mci, mlocal] = contigs.locate(mate.pos);
        rec.rnext = self.mapped &&
                            contigs.locate(self.pos).first == mci
                        ? "="
                        : contigs.contigs()[mci].name;
        rec.pnext = mlocal;
    }
    if (pair.proper && self.mapped && mate.mapped) {
        // Leftmost mate carries +tlen, rightmost -tlen.
        rec.tlen = self.pos <= mate.pos ? pair.templateLen
                                        : -pair.templateLen;
    }
    return rec;
}

} // namespace

PipelineResult
alignPairsToSam(const std::vector<FastaRecord> &ref,
                const std::vector<FastqRecord> &reads1,
                const std::vector<FastqRecord> &reads2,
                std::ostream &out, const PipelineOptions &opts)
{
    GENAX_CHECK(reads1.size() == reads2.size(),
                 "mate files differ in read count");
    const ContigMap contigs(ref);

    AlignerConfig cfg;
    cfg.k = opts.k;
    cfg.band = opts.band;
    cfg.threads = opts.threads;
    BwaMemLike aligner(contigs.sequence(), cfg);
    PairedAligner paired(aligner);

    PipelineResult res;
    res.reads = reads1.size() * 2;

    std::vector<SamRefSeq> header;
    for (const auto &c : contigs.contigs())
        header.push_back({c.name, c.length});
    SamWriter sam(out, header);

    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < reads1.size(); ++i) {
        PairMapping pm = paired.alignPair(reads1[i].seq, reads2[i].seq);
        // Pairing works in concatenated coordinates; a pair whose
        // mates land on different contigs is not a proper pair.
        if (pm.proper &&
            contigs.locate(pm.r1.pos).first !=
                contigs.locate(pm.r2.pos).first) {
            pm.proper = false;
            pm.templateLen = 0;
        }
        res.mapped += pm.r1.mapped + pm.r2.mapped;
        sam.write(pairedRecord(contigs, reads1[i], pm.r1, pm.r2, pm,
                               true));
        sam.write(pairedRecord(contigs, reads2[i], pm.r2, pm.r1, pm,
                               false));
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.seconds = std::chrono::duration<double>(t1 - t0).count();
    return res;
}

PipelineResult
alignPairFiles(const std::string &ref_fasta,
               const std::string &reads1_fastq,
               const std::string &reads2_fastq,
               const std::string &out_sam, const PipelineOptions &opts)
{
    const auto ref = readFastaFile(ref_fasta);
    const auto reads1 = readFastqFile(reads1_fastq);
    const auto reads2 = readFastqFile(reads2_fastq);
    std::ofstream out(out_sam);
    if (!out)
        GENAX_FATAL("cannot open output SAM: ", out_sam);
    return alignPairsToSam(ref, reads1, reads2, out, opts);
}

PipelineResult
alignFiles(const std::string &ref_fasta, const std::string &reads_fastq,
           const std::string &out_sam, const PipelineOptions &opts)
{
    const auto ref = readFastaFile(ref_fasta);
    const auto reads = readFastqFile(reads_fastq);
    std::ofstream out(out_sam);
    if (!out)
        GENAX_FATAL("cannot open output SAM: ", out_sam);
    return alignToSam(ref, reads, out, opts);
}

} // namespace genax
