#include "genax/pipeline.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/annotations.hh"
#include "common/check.hh"
#include "common/faultinject.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"
#include "io/sam.hh"
#include "seed/index_snapshot.hh"
#include "silla/silla.hh"
#include "swbase/bwamem_like.hh"
#include "swbase/paired.hh"

namespace genax {

ContigMap::ContigMap(const std::vector<FastaRecord> &contigs)
{
    GENAX_CHECK(!contigs.empty(), "reference has no contigs");
    for (const auto &rec : contigs) {
        GENAX_CHECK(!rec.seq.empty(), "empty contig: ", rec.name);
        _contigs.push_back({rec.name, _seq.size(), rec.seq.size()});
        _seq.insert(_seq.end(), rec.seq.begin(), rec.seq.end());
    }
}

std::pair<size_t, u64>
ContigMap::locate(u64 pos) const
{
    GENAX_CHECK(pos < _seq.size(), "position beyond reference");
    // Binary search over contig starts.
    size_t lo = 0, hi = _contigs.size() - 1;
    while (lo < hi) {
        const size_t mid = (lo + hi + 1) / 2;
        if (_contigs[mid].start <= pos)
            lo = mid;
        else
            hi = mid - 1;
    }
    return {lo, pos - _contigs[lo].start};
}

SamRecord
pipelineUnmappedRecord(const FastqRecord &read)
{
    SamRecord rec;
    rec.qname = read.name;
    rec.flag = kSamUnmapped;
    rec.seq = decode(read.seq);
    rec.qual = phredToAscii(read.qual);
    return rec;
}

SamRecord
pipelineSamRecord(const ContigMap &contigs, const FastqRecord &read,
                  const Mapping &m)
{
    SamRecord rec;
    rec.qname = read.name;
    const Seq &oriented_seq = m.mapped && m.reverse
                                  ? reverseComplement(read.seq)
                                  : read.seq;
    rec.seq = decode(oriented_seq);
    if (!m.mapped) {
        rec.flag = kSamUnmapped;
    } else {
        const auto [ci, local] = contigs.locate(m.pos);
        rec.flag = m.reverse ? kSamReverse : 0;
        rec.rname = contigs.contigs()[ci].name;
        rec.pos = local;
        rec.mapq = m.mapq;
        rec.cigar = m.cigar.strSamM();
        rec.score = m.score;
        rec.editDistance = static_cast<i32>(m.cigar.editDistance());
    }
    rec.qual = phredToAscii(read.qual, m.mapped && m.reverse);
    return rec;
}

namespace {

/**
 * Emit one batch's SAM records in input order and fold its outcomes
 * into the ledger. `reads` and `failed` cover the whole batch;
 * `maps` and `degraded` cover only the admitted (non-failed) reads,
 * in the same relative order.
 */
void
emitBatch(SamWriter &sam, const ContigMap &contigs,
          const std::vector<FastqRecord> &reads,
          const std::vector<u8> &failed,
          const std::vector<Mapping> &maps,
          const std::vector<u8> &degraded, PipelineResult &res)
{
    size_t live = 0; // index into maps/degraded (admitted reads only)
    for (size_t i = 0; i < reads.size(); ++i) {
        if (failed[i]) {
            sam.write(pipelineUnmappedRecord(reads[i]));
            continue;
        }
        const Mapping &m = maps[live];
        const bool via_fallback = degraded[live] != 0;
        ++live;
        if (!m.mapped)
            ++res.unmapped;
        else if (via_fallback)
            ++res.degraded;
        else
            ++res.mapped;
        sam.write(pipelineSamRecord(contigs, reads[i], m));
    }
}

/**
 * Single-producer single-consumer bounded queue connecting the
 * streaming pipeline's stages. close() wakes both sides: a blocked
 * pop() drains the remaining items and then reports exhaustion; a
 * blocked push() gives up (the consumer is gone).
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : _capacity(capacity) {}

    /** False when the queue was closed and the item dropped. */
    bool
    push(T item)
    {
        const MutexLock lk(_mu);
        while (_items.size() >= _capacity && !_closed)
            _notFull.wait(_mu);
        if (_closed)
            return false;
        _items.push_back(std::move(item));
        _notEmpty.notifyOne();
        return true;
    }

    /** Next item; empty once the queue is closed and drained. */
    std::optional<T>
    pop()
    {
        const MutexLock lk(_mu);
        while (_items.empty() && !_closed)
            _notEmpty.wait(_mu);
        if (_items.empty())
            return std::nullopt;
        T out = std::move(_items.front());
        _items.pop_front();
        _notFull.notifyOne();
        return out;
    }

    void
    close()
    {
        const MutexLock lk(_mu);
        _closed = true;
        _notEmpty.notifyAll();
        _notFull.notifyAll();
    }

  private:
    const size_t _capacity;
    Mutex _mu;
    CondVar _notFull, _notEmpty;
    std::deque<T> _items GENAX_GUARDED_BY(_mu);
    bool _closed GENAX_GUARDED_BY(_mu) = false;
};

Status
validateReference(const std::vector<FastaRecord> &ref)
{
    if (ref.empty())
        return invalidInputError("reference has no usable contigs");
    for (const auto &rec : ref) {
        if (rec.seq.empty())
            return invalidInputError("reference contig '" + rec.name +
                                     "' is empty");
    }
    return okStatus();
}

/** attachIndexSnapshot() + fold the disposition into a pipeline
 *  result. */
Status
attachSnapshot(const std::string &path, const Seq &refseq,
               IndexAttachment &att, PipelineResult &res)
{
    GENAX_TRY_ASSIGN(att, attachIndexSnapshot(path, refseq));
    res.indexFromSnapshot = att.fromSnapshot;
    res.indexMapped = att.mapped;
    res.indexFallback = att.fallback;
    res.indexNote = att.note;
    return okStatus();
}

} // namespace

StatusOr<IndexAttachment>
attachIndexSnapshot(const std::string &path, const Seq &refseq)
{
    IndexAttachment att;
    auto opened = IndexSnapshot::open(path);
    if (!opened.ok()) {
        att.fallback = true;
        att.note = "index snapshot unusable, rebuilding from "
                   "FASTA: " +
                   opened.status().str();
        GENAX_WARN("index snapshot ", path,
                   " unusable; rebuilding segment indexes from the "
                   "reference: ",
                   opened.status().str());
        return att;
    }
    IndexSnapshot snap = std::move(*opened);
    const IndexFingerprint want =
        referenceFingerprint(refseq, snap.k());
    GENAX_TRY(checkFingerprint(snap.fingerprint(), want)
                  .withContext("index snapshot " + path));
    att.fromSnapshot = true;
    att.mapped = snap.mapped();
    att.note = std::string("index snapshot attached (") +
               (snap.mapped() ? "mmap" : "owned read") + ")";
    att.snapshot = std::move(snap);
    return att;
}

void
applyIndexAttachment(GenAxConfig &cfg, const IndexAttachment &att)
{
    if (!att.snapshot)
        return;
    cfg.k = att.snapshot->k();
    cfg.segmentCount = att.snapshot->segmentCount();
    cfg.segmentOverlap = att.snapshot->segmentOverlap();
    cfg.snapshot = &*att.snapshot;
}

StatusOr<PipelineResult>
alignToSam(const std::vector<FastaRecord> &ref,
           const std::vector<FastqRecord> &reads, std::ostream &out,
           const PipelineOptions &opts)
{
    if (Status s = validateReference(ref); !s.ok())
        return s;
    const ContigMap contigs(ref);

    PipelineResult res;
    res.reads = reads.size();

    IndexAttachment attach;
    if (!opts.indexSnapshot.empty())
        GENAX_TRY(attachSnapshot(opts.indexSnapshot,
                                 contigs.sequence(), attach, res));

    // Admission: the genax.pipeline.read fault point models a read
    // lost inside the pipeline (staging-buffer corruption and the
    // like). Such a read is Failed in the ledger and emitted as an
    // unmapped placeholder so the SAM output stays index-aligned with
    // the input.
    std::vector<u8> failed(reads.size(), 0);
    std::vector<Seq> seqs;
    seqs.reserve(reads.size());
    for (size_t i = 0; i < reads.size(); ++i) {
        if (faultFires(fault::kPipelineRead)) [[unlikely]] {
            failed[i] = 1;
            ++res.failed;
            continue;
        }
        seqs.push_back(reads[i].seq);
    }

    // Graceful degradation: an edit bound beyond what a SillaX lane
    // supports cannot run on the accelerator model at all; the whole
    // run falls back to the software engine and its mapped reads are
    // reported as degraded rather than silently relabelled.
    bool use_software = opts.engine == PipelineOptions::Engine::Software;
    if (!use_software && opts.band > kMaxSillaK) {
        GENAX_WARN("edit bound ", opts.band,
                   " exceeds the SillaX maximum ", kMaxSillaK,
                   "; degrading the run to the software engine");
        use_software = true;
        res.softwareFallback = true;
    }

    std::vector<Mapping> maps;
    std::vector<u8> degraded(seqs.size(), 0);
    const auto t0 = std::chrono::steady_clock::now();
    if (!use_software) {
        GenAxConfig cfg;
        cfg.k = opts.k;
        cfg.editBound = opts.band;
        cfg.segmentCount = opts.segments;
        cfg.segmentOverlap = opts.segmentOverlap;
        cfg.threads = opts.threads;
        applyIndexAttachment(cfg, attach);
        GenAxSystem system(contigs.sequence(), cfg);
        maps = system.alignAll(seqs);
        res.perf = system.perf();
        res.hostProfile = system.hostProfile();
        degraded = system.degradedReads();
    } else {
        AlignerConfig cfg;
        cfg.k = opts.k;
        cfg.band = opts.band;
        cfg.threads = opts.threads;
        BwaMemLike aligner(contigs.sequence(), cfg);
        maps = aligner.alignAll(seqs);
        if (res.softwareFallback)
            degraded.assign(seqs.size(), 1);
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.seconds = std::chrono::duration<double>(t1 - t0).count();

    std::vector<SamRefSeq> header;
    for (const auto &c : contigs.contigs())
        header.push_back({c.name, c.length});
    SamWriter sam(out, header);
    emitBatch(sam, contigs, reads, failed, maps, degraded, res);
    if (!out)
        return ioError("failed writing SAM output after " +
                       std::to_string(sam.count()) + " records");
    GENAX_CHECK(res.ledgerBalanced(),
                "pipeline ledger out of balance: ", res.mapped, "+",
                res.unmapped, "+", res.skippedMalformed, "+",
                res.degraded, "+", res.failed, " != ", res.reads);
    return res;
}

StatusOr<PipelineResult>
alignStreamToSam(const std::vector<FastaRecord> &ref,
                 FastqReader &reads, std::ostream &out,
                 const PipelineOptions &opts)
{
    if (Status s = validateReference(ref); !s.ok())
        return s;
    const ContigMap contigs(ref);

    PipelineResult res;

    IndexAttachment attach;
    if (!opts.indexSnapshot.empty())
        GENAX_TRY(attachSnapshot(opts.indexSnapshot,
                                 contigs.sequence(), attach, res));

    bool use_software = opts.engine == PipelineOptions::Engine::Software;
    if (!use_software && opts.band > kMaxSillaK) {
        GENAX_WARN("edit bound ", opts.band,
                   " exceeds the SillaX maximum ", kMaxSillaK,
                   "; degrading the run to the software engine");
        use_software = true;
        res.softwareFallback = true;
    }

    const u64 batch_size =
        opts.batchReads == 0 ? ~u64{0} : opts.batchReads;

    // IO-overlap policy: at one effective worker nothing can overlap
    // — parallelFor already runs inline at width 1 — so the reader
    // and writer threads plus their queue hand-offs would be pure
    // dispatch overhead. The single-width path parses, aligns and
    // writes synchronously on this thread instead. Record order,
    // every fault site's ordinal stream and the SAM byte stream are
    // identical either way: the threaded reader parses strictly
    // sequentially and the writer drains in batch order.
    const bool inline_io = ThreadPool::resolveWidth(opts.threads) == 1;

    // Reader stage: one prefetch thread keeps the next batch in
    // flight while the current one aligns. The parse itself stays
    // strictly sequential on that thread, so record order — and the
    // parser fault sites' per-site ordinal replay — is exactly what
    // a synchronous read would produce.
    BoundedQueue<StatusOr<std::vector<FastqRecord>>> parsed(1);
    std::thread reader_thread;
    if (!inline_io) {
        reader_thread = std::thread([&] {
            for (;;) {
                auto batch = reads.nextBatch(batch_size);
                const bool stop = !batch.ok() || batch->empty();
                if (!parsed.push(std::move(batch)))
                    break; // aligner bailed out; stop reading
                if (stop)
                    break;
            }
            parsed.close();
        });
    }

    // Writer stage: records are formatted into an in-memory stage on
    // this thread (keeping the sam.write fault ordinals in emission
    // order) and the finished text drains to `out` in batch order on
    // the writer thread. An injected write fault poisons the stage's
    // stream state exactly like a real device error poisons a file
    // stream, and is checked the same way at the end of the run.
    std::vector<SamRefSeq> header;
    for (const auto &c : contigs.contigs())
        header.push_back({c.name, c.length});
    std::ostringstream stage;
    SamWriter sam(stage, header);
    BoundedQueue<std::string> emitted(2);
    std::thread writer_thread;
    if (!inline_io) {
        writer_thread = std::thread([&] {
            for (;;) {
                auto text = emitted.pop();
                if (!text)
                    break;
                out.write(text->data(),
                          static_cast<std::streamsize>(text->size()));
            }
        });
    }
    const auto flush_stage = [&] {
        std::string text = stage.str();
        stage.str(std::string());
        if (text.empty())
            return;
        if (inline_io)
            out.write(text.data(),
                      static_cast<std::streamsize>(text.size()));
        else
            emitted.push(std::move(text));
    };
    flush_stage(); // the header, so an empty input still yields SAM

    double align_seconds = 0;
    const auto timed = [&](auto &&fn) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        // genax-lint: allow(fp-accum): wall-time bookkeeping summed on the caller thread in batch order, not a modelled statistic
        align_seconds +=
            std::chrono::duration<double>(t1 - t0).count();
    };

    std::optional<GenAxSystem> system;
    std::optional<BwaMemLike> aligner;
    timed([&] {
        if (!use_software) {
            GenAxConfig cfg;
            cfg.k = opts.k;
            cfg.editBound = opts.band;
            cfg.segmentCount = opts.segments;
            cfg.segmentOverlap = opts.segmentOverlap;
            cfg.threads = opts.threads;
            applyIndexAttachment(cfg, attach);
            system.emplace(contigs.sequence(), cfg);
            system->streamBegin();
        } else {
            AlignerConfig cfg;
            cfg.k = opts.k;
            cfg.band = opts.band;
            cfg.threads = opts.threads;
            aligner.emplace(contigs.sequence(), cfg);
        }
    });

    Status failure = okStatus();
    u64 base = 0; // admitted reads before the current batch
    for (;;) {
        StatusOr<std::vector<FastqRecord>> next{
            std::vector<FastqRecord>{}};
        if (inline_io) {
            next = reads.nextBatch(batch_size);
        } else {
            auto popped = parsed.pop();
            if (!popped)
                break;
            next = std::move(*popped);
        }
        if (!next.ok()) {
            failure = next.status();
            break;
        }
        const std::vector<FastqRecord> batch =
            std::move(next).value();
        if (batch.empty())
            break;
        res.reads += batch.size();

        // Admission (genax.pipeline.read): on this thread, in read
        // order, so the fault site's ordinals match the load-all
        // path's single admission loop.
        std::vector<u8> failed(batch.size(), 0);
        std::vector<Seq> seqs;
        seqs.reserve(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
            if (faultFires(fault::kPipelineRead)) [[unlikely]] {
                failed[i] = 1;
                ++res.failed;
                continue;
            }
            seqs.push_back(batch[i].seq);
        }

        std::vector<Mapping> maps;
        std::vector<u8> degraded(seqs.size(), 0);
        timed([&] {
            if (system) {
                maps = system->streamBatch(seqs, base);
                degraded = system->degradedReads();
            } else {
                maps = aligner->alignAll(seqs);
                if (res.softwareFallback)
                    degraded.assign(seqs.size(), 1);
            }
        });
        base += seqs.size();

        emitBatch(sam, contigs, batch, failed, maps, degraded, res);
        flush_stage();
    }

    if (system && failure.ok()) {
        timed([&] { system->streamEnd(); });
        res.perf = system->perf();
        res.hostProfile = system->hostProfile();
    }
    res.seconds = align_seconds;

    // Wind down the IO stages (close() unblocks a reader stuck on a
    // full queue after an early exit).
    if (!inline_io) {
        parsed.close();
        reader_thread.join();
        emitted.close();
        writer_thread.join();
    }

    if (!failure.ok())
        return failure;
    if (!stage || !out)
        return ioError("failed writing SAM output after " +
                       std::to_string(sam.count()) + " records");
    GENAX_CHECK(res.ledgerBalanced(),
                "pipeline ledger out of balance: ", res.mapped, "+",
                res.unmapped, "+", res.skippedMalformed, "+",
                res.degraded, "+", res.failed, " != ", res.reads);
    return res;
}

namespace {

/** Fill one mate's SAM record from its mapping and its mate's. */
SamRecord
pairedRecord(const ContigMap &contigs, const FastqRecord &read,
             const Mapping &self, const Mapping &mate,
             const PairMapping &pair, bool is_read1)
{
    SamRecord rec;
    rec.qname = read.name;
    rec.flag = kSamPaired | (is_read1 ? kSamRead1 : kSamRead2);
    if (pair.proper)
        rec.flag |= kSamProperPair;
    if (!mate.mapped)
        rec.flag |= kSamMateUnmapped;
    else if (mate.reverse)
        rec.flag |= kSamMateReverse;

    const Seq &oriented = self.mapped && self.reverse
                              ? reverseComplement(read.seq)
                              : read.seq;
    rec.seq = decode(oriented);
    rec.qual = phredToAscii(read.qual, self.mapped && self.reverse);

    if (!self.mapped) {
        rec.flag |= kSamUnmapped;
    } else {
        const auto [ci, local] = contigs.locate(self.pos);
        if (self.reverse)
            rec.flag |= kSamReverse;
        rec.rname = contigs.contigs()[ci].name;
        rec.pos = local;
        rec.mapq = self.mapq;
        rec.cigar = self.cigar.strSamM();
        rec.score = self.score;
        rec.editDistance = static_cast<i32>(self.cigar.editDistance());
    }
    if (mate.mapped) {
        const auto [mci, mlocal] = contigs.locate(mate.pos);
        rec.rnext = self.mapped &&
                            contigs.locate(self.pos).first == mci
                        ? "="
                        : contigs.contigs()[mci].name;
        rec.pnext = mlocal;
    }
    if (pair.proper && self.mapped && mate.mapped) {
        // Leftmost mate carries +tlen, rightmost -tlen.
        rec.tlen = self.pos <= mate.pos ? pair.templateLen
                                        : -pair.templateLen;
    }
    return rec;
}

} // namespace

StatusOr<PipelineResult>
alignPairsToSam(const std::vector<FastaRecord> &ref,
                const std::vector<FastqRecord> &reads1,
                const std::vector<FastqRecord> &reads2,
                std::ostream &out, const PipelineOptions &opts)
{
    if (reads1.size() != reads2.size()) {
        return invalidInputError(
            "mate files differ in read count: " +
            std::to_string(reads1.size()) + " vs " +
            std::to_string(reads2.size()) +
            " (skipped malformed records can desynchronize mates)");
    }
    if (Status s = validateReference(ref); !s.ok())
        return s;
    const ContigMap contigs(ref);

    AlignerConfig cfg;
    cfg.k = opts.k;
    cfg.band = opts.band;
    cfg.threads = opts.threads;
    BwaMemLike aligner(contigs.sequence(), cfg);
    PairedAligner paired(aligner);

    PipelineResult res;
    res.reads = reads1.size() * 2;

    std::vector<SamRefSeq> header;
    for (const auto &c : contigs.contigs())
        header.push_back({c.name, c.length});
    SamWriter sam(out, header);

    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < reads1.size(); ++i) {
        // A pipeline.read fault fails the whole template: both mates
        // are emitted as unmapped placeholders and counted Failed.
        if (faultFires(fault::kPipelineRead)) [[unlikely]] {
            res.failed += 2;
            SamRecord r1 = pipelineUnmappedRecord(reads1[i]);
            r1.flag |= kSamPaired | kSamRead1 | kSamMateUnmapped;
            SamRecord r2 = pipelineUnmappedRecord(reads2[i]);
            r2.flag |= kSamPaired | kSamRead2 | kSamMateUnmapped;
            sam.write(r1);
            sam.write(r2);
            continue;
        }
        PairMapping pm = paired.alignPair(reads1[i].seq, reads2[i].seq);
        // Pairing works in concatenated coordinates; a pair whose
        // mates land on different contigs is not a proper pair.
        if (pm.proper &&
            contigs.locate(pm.r1.pos).first !=
                contigs.locate(pm.r2.pos).first) {
            pm.proper = false;
            pm.templateLen = 0;
        }
        res.mapped += pm.r1.mapped + pm.r2.mapped;
        res.unmapped += !pm.r1.mapped + !pm.r2.mapped;
        sam.write(pairedRecord(contigs, reads1[i], pm.r1, pm.r2, pm,
                               true));
        sam.write(pairedRecord(contigs, reads2[i], pm.r2, pm.r1, pm,
                               false));
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.seconds = std::chrono::duration<double>(t1 - t0).count();
    if (!out)
        return ioError("failed writing SAM output after " +
                       std::to_string(sam.count()) + " records");
    GENAX_CHECK(res.ledgerBalanced(),
                "paired pipeline ledger out of balance: ", res.mapped,
                "+", res.unmapped, "+", res.skippedMalformed, "+",
                res.degraded, "+", res.failed, " != ", res.reads);
    return res;
}

StatusOr<PipelineResult>
alignPairFiles(const std::string &ref_fasta,
               const std::string &reads1_fastq,
               const std::string &reads2_fastq,
               const std::string &out_sam, const PipelineOptions &opts)
{
    ReaderOptions ropts;
    ropts.maxMalformed = opts.maxMalformed;
    ReaderStats ref_stats, read1_stats, read2_stats;
    GENAX_TRY_ASSIGN(const auto ref,
                     readFastaFile(ref_fasta, ropts, &ref_stats));
    GENAX_TRY_ASSIGN(const auto reads1,
                     readFastqFile(reads1_fastq, ropts, &read1_stats));
    GENAX_TRY_ASSIGN(const auto reads2,
                     readFastqFile(reads2_fastq, ropts, &read2_stats));
    std::ofstream out(out_sam);
    if (!out)
        return ioErrorFromErrno("cannot open output SAM", out_sam);
    GENAX_TRY_ASSIGN(PipelineResult res,
                     alignPairsToSam(ref, reads1, reads2, out, opts));
    // An ofstream buffers; ENOSPC/EIO may only surface at the final
    // flush, and the destructor swallows it — flush and check here
    // so a short SAM file can never look like success.
    out.flush();
    if (!out)
        return ioError("failed flushing SAM output to " + out_sam);
    res.refInput = ref_stats;
    res.readInput = read1_stats;
    res.readInput.records += read2_stats.records;
    res.readInput.malformed += read2_stats.malformed;
    res.readInput.errors.insert(res.readInput.errors.end(),
                                read2_stats.errors.begin(),
                                read2_stats.errors.end());
    res.skippedMalformed = res.readInput.malformed;
    res.reads += res.skippedMalformed;
    return res;
}

StatusOr<PipelineResult>
alignFiles(const std::string &ref_fasta, const std::string &reads_fastq,
           const std::string &out_sam, const PipelineOptions &opts)
{
    ReaderOptions ropts;
    ropts.maxMalformed = opts.maxMalformed;
    ReaderStats ref_stats, read_stats;
    GENAX_TRY_ASSIGN(const auto ref,
                     readFastaFile(ref_fasta, ropts, &ref_stats));

    if (opts.batchReads > 0) {
        std::ifstream in(reads_fastq);
        if (!in)
            return ioErrorFromErrno("cannot open FASTQ file",
                                    reads_fastq);
        std::ofstream out(out_sam);
        if (!out)
            return ioErrorFromErrno("cannot open output SAM", out_sam);
        FastqReader reader(in, ropts);
        GENAX_TRY_ASSIGN(PipelineResult res,
                         alignStreamToSam(ref, reader, out, opts));
        out.flush();
        if (!out)
            return ioError("failed flushing SAM output to " +
                           out_sam);
        res.refInput = ref_stats;
        res.readInput = reader.stats();
        res.skippedMalformed = res.readInput.malformed;
        res.reads += res.skippedMalformed;
        return res;
    }

    GENAX_TRY_ASSIGN(const auto reads,
                     readFastqFile(reads_fastq, ropts, &read_stats));
    std::ofstream out(out_sam);
    if (!out)
        return ioErrorFromErrno("cannot open output SAM", out_sam);
    GENAX_TRY_ASSIGN(PipelineResult res,
                     alignToSam(ref, reads, out, opts));
    out.flush();
    if (!out)
        return ioError("failed flushing SAM output to " + out_sam);
    res.refInput = ref_stats;
    res.readInput = read_stats;
    res.skippedMalformed = read_stats.malformed;
    res.reads += res.skippedMalformed;
    return res;
}

} // namespace genax
