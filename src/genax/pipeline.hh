/**
 * @file
 * File-to-file alignment pipeline: FASTA reference + FASTQ reads in,
 * SAM out — the driver behind the genax_align command-line tool.
 *
 * Multi-contig references are concatenated into one coordinate space
 * with a contig map so SAM records carry per-contig names and
 * positions. Two engines are selectable: the GenAx accelerator model
 * and the BWA-MEM-like software baseline.
 */

#ifndef GENAX_GENAX_PIPELINE_HH
#define GENAX_GENAX_PIPELINE_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "align/mapping.hh"
#include "genax/system.hh"
#include "io/fasta.hh"
#include "io/fastq.hh"
#include "io/sam.hh"
#include "seed/index_snapshot.hh"

namespace genax {

/** Concatenated multi-contig reference with coordinate mapping. */
class ContigMap
{
  public:
    explicit ContigMap(const std::vector<FastaRecord> &contigs);

    const Seq &sequence() const { return _seq; }

    /** Contig descriptors for the SAM header. */
    struct Contig
    {
        std::string name;
        u64 start;
        u64 length;
    };
    const std::vector<Contig> &contigs() const { return _contigs; }

    /**
     * Map a concatenated-space position to (contig index, local
     * position). Positions in the inter-contig padding map to the
     * preceding contig's end.
     */
    std::pair<size_t, u64> locate(u64 pos) const;

  private:
    Seq _seq;
    std::vector<Contig> _contigs;
};

/**
 * Unmapped placeholder SAM record for a read the pipeline could not
 * align (failed admission, or an engine that produced no mapping).
 * This is the exact record alignToSam emits, exposed so the serving
 * layer's per-connection output stays byte-identical to an offline
 * run.
 */
SamRecord pipelineUnmappedRecord(const FastqRecord &read);

/**
 * SAM record for an admitted read and its mapping — the one
 * formatting path shared by the offline pipeline and the serving
 * layer. Orientation, contig translation, CIGAR text, score and
 * quality handling all live here, so "same read, same reference,
 * same config" produces the same SAM bytes no matter which front end
 * asked.
 */
SamRecord pipelineSamRecord(const ContigMap &contigs,
                            const FastqRecord &read, const Mapping &m);

/**
 * Outcome of the snapshot attach policy (see attachIndexSnapshot).
 * When `snapshot` is engaged the attachment must outlive any
 * GenAxConfig it was applied to — the config holds a pointer into it.
 */
struct IndexAttachment
{
    std::optional<IndexSnapshot> snapshot;
    bool fromSnapshot = false; //!< indexes served from the file
    bool mapped = false;       //!< snapshot backing is the mmap path
    bool fallback = false;     //!< unusable; rebuild from the FASTA
    std::string note;          //!< human-readable outcome
};

/**
 * Snapshot attach policy, shared by the offline pipeline and the
 * load-once daemon. Opens `path` and decides how a run gets its
 * per-segment indexes:
 *
 *  - fingerprint mismatch against the parsed reference → hard error
 *    (a snapshot must never be applied to the wrong reference);
 *  - corruption or IO trouble opening it → degrade to the
 *    rebuild-from-FASTA path (`fallback` set, note recorded);
 *  - otherwise the attachment carries the opened snapshot.
 */
StatusOr<IndexAttachment> attachIndexSnapshot(const std::string &path,
                                              const Seq &refseq);

/** Apply an attachment to a GenAx config: the snapshot's build
 *  parameters are authoritative and the engine serves segment
 *  indexes from it. A snapshot-less attachment is a no-op. */
void applyIndexAttachment(GenAxConfig &cfg,
                          const IndexAttachment &att);

/** Pipeline configuration. */
struct PipelineOptions
{
    enum class Engine
    {
        GenAx,    //!< accelerator model
        Software, //!< BWA-MEM-like CPU baseline
    };
    Engine engine = Engine::GenAx;
    u32 k = 12;
    u32 band = 40;         //!< edit bound / extension band
    u64 segments = 8;      //!< GenAx engine only
    u64 segmentOverlap = 256;
    /** Host worker threads for either engine; 0 = all hardware
     *  threads. Output and modelled results are identical at any
     *  width. */
    unsigned threads = 1;
    /** Malformed input records tolerated (skipped and counted) per
     *  input file before the run fails with InvalidInput. */
    u64 maxMalformed = 1000;
    /**
     * Streaming batch size in reads; 0 loads the whole read file
     * before aligning (the legacy path). With batching, parsing,
     * alignment and SAM emission overlap on separate threads and
     * peak host memory is O(batch) instead of O(dataset), while SAM
     * bytes, the outcome ledger, the modelled perf report and armed
     * fault replay stay byte-identical to the load-all path at any
     * batch size and thread count (see DESIGN.md "Memory &
     * streaming"). Only alignFiles() consumes this option —
     * alignToSam() takes pre-parsed reads, and paired mode always
     * loads both mate files whole.
     */
    u64 batchReads = 0;
    /**
     * Optional path to a pre-built index snapshot (genax_index
     * --format flat). When set, the GenAx engine serves each
     * segment's seeding index zero-copy from the snapshot instead of
     * rebuilding it per batch, and the snapshot's k / segment count /
     * overlap override the fields above so the output matches the
     * build. The snapshot's reference fingerprint must match the
     * parsed FASTA — a mismatch fails the run (a snapshot is never
     * applied to the wrong reference). A corrupt or unreadable
     * snapshot degrades to the rebuild-from-FASTA path and is
     * recorded in PipelineResult::indexFallback / indexNote. SAM
     * bytes, the ledger and the modelled perf report are identical
     * with or without a matching snapshot.
     */
    std::string indexSnapshot;
};

/**
 * Summary of one pipeline run.
 *
 * The per-read outcome ledger is disjoint: every read encountered in
 * the input lands in exactly one of mapped / unmapped /
 * skippedMalformed / degraded / failed, so the categories sum back to
 * `reads`.
 */
struct PipelineResult
{
    u64 reads = 0;   //!< reads encountered, including skipped ones
    u64 mapped = 0;  //!< aligned entirely on the configured engine
    u64 unmapped = 0;
    u64 skippedMalformed = 0; //!< unparseable records skipped by IO
    u64 degraded = 0; //!< mapped, but via a fallback path
    u64 failed = 0;   //!< lost to an unrecoverable per-read fault
    /** The whole run fell back from GenAx to the software engine
     *  (e.g. the requested band exceeds the SillaX edit bound). */
    bool softwareFallback = false;
    double seconds = 0;  //!< wall-clock of the alignment phase
    GenAxPerf perf;      //!< populated for the GenAx engine
    /** Host wall-clock per model phase (GenAx engine only) —
     *  profiling output, not part of the modelled report or any
     *  determinism contract. */
    GenAxHostProfile hostProfile;
    ReaderStats refInput;  //!< reference parse stats (file API only)
    ReaderStats readInput; //!< read parse stats (file API only)
    /** @name Index snapshot disposition (opts.indexSnapshot only) */
    ///@{
    bool indexFromSnapshot = false; //!< indexes served from the file
    bool indexMapped = false;  //!< snapshot backing is the mmap path
    bool indexFallback = false; //!< snapshot unusable; indexes were
                                //!< rebuilt from the FASTA reference
    std::string indexNote; //!< human-readable snapshot outcome
    ///@}

    /** Every read accounted for in exactly one category. */
    bool
    ledgerBalanced() const
    {
        return mapped + unmapped + skippedMalformed + degraded +
                   failed ==
               reads;
    }
};

/**
 * Align reads against a (possibly multi-contig) reference and write
 * SAM records to `out`. Recoverable failures (no usable reference,
 * SAM write failure) come back as a Status; per-read trouble is
 * absorbed into the result's outcome ledger instead.
 */
StatusOr<PipelineResult>
alignToSam(const std::vector<FastaRecord> &ref,
           const std::vector<FastqRecord> &reads, std::ostream &out,
           const PipelineOptions &opts);

/**
 * Streaming variant of alignToSam(): reads arrive through a
 * FastqReader and flow through the engine in batches of
 * opts.batchReads (0 = one unbounded batch). A reader thread
 * prefetches the next batch while the current one aligns, and an
 * in-order writer thread drains finished batches to `out`, so
 * parse / align / emit overlap. At one effective worker width the
 * stages instead run synchronously on the calling thread — no
 * overlap is possible there and the queue hand-offs are measurable
 * overhead — with byte-identical output and fault replay. One
 * behavioural difference from the load-all path: a reader failure
 * (IO error, malformed budget exhausted) mid-run surfaces after
 * earlier batches' SAM records were already written.
 */
StatusOr<PipelineResult>
alignStreamToSam(const std::vector<FastaRecord> &ref,
                 FastqReader &reads, std::ostream &out,
                 const PipelineOptions &opts);

/** File-path convenience wrapper; IO failures surface as Status.
 *  Routes through the streaming path when opts.batchReads > 0. */
StatusOr<PipelineResult> alignFiles(const std::string &ref_fasta,
                                    const std::string &reads_fastq,
                                    const std::string &out_sam,
                                    const PipelineOptions &opts);

/**
 * Paired-end alignment (FR libraries): r1/r2 records pair up by
 * index. Runs on the software engine (pairing is a post-processing
 * stage downstream of any single-end engine; the paper's GenAx
 * evaluates single-ended reads). Emits both mates with paired SAM
 * flags, mate coordinates and template length.
 */
StatusOr<PipelineResult>
alignPairsToSam(const std::vector<FastaRecord> &ref,
                const std::vector<FastqRecord> &reads1,
                const std::vector<FastqRecord> &reads2,
                std::ostream &out, const PipelineOptions &opts);

/** File-path convenience wrapper for paired-end mode. */
StatusOr<PipelineResult> alignPairFiles(const std::string &ref_fasta,
                                        const std::string &reads1_fastq,
                                        const std::string &reads2_fastq,
                                        const std::string &out_sam,
                                        const PipelineOptions &opts);

} // namespace genax

#endif // GENAX_GENAX_PIPELINE_HH
