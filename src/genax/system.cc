#include "genax/system.hh"

#include <algorithm>
#include <bit>
#include <chrono>

#include "common/check.hh"
#include "common/faultinject.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"
#include "genax/seeding_sim.hh"
#include "seed/index_snapshot.hh"

namespace genax {

namespace {

void
accumulate(SeedingStats &into, const SeedingStats &from)
{
    into.reads += from.reads;
    into.exactMatchReads += from.exactMatchReads;
    into.indexLookups += from.indexLookups;
    into.smems += from.smems;
    into.hitsReported += from.hitsReported;
    into.cam += from.cam;
}

/**
 * Seeding-lane cycle model: SRAM table reads take two cycles but the
 * banked index SRAM keeps `issue_width` lookups in flight per lane;
 * CAM searches and loads take one cycle each, binary-search probes
 * two (SRAM access + compare).
 */
double
seedingCycles(const SeedingStats &s, u32 issue_width)
{
    return 2.0 * static_cast<double>(s.indexLookups) /
               std::max(1u, issue_width) +
           static_cast<double>(s.cam.searches) +
           static_cast<double>(s.cam.loads) +
           2.0 * static_cast<double>(s.cam.binarySteps);
}

/**
 * A per-read candidate list plus an open-addressing (pos, strand)
 * index over it. Overlapping segments rediscover identical
 * alignments, and the old linear dedup rescan was the host's worst
 * quadratic hot spot at large candidate caps; the flat hash makes
 * every probe O(1) while reproducing the list semantics exactly —
 * in-place replacement on a better score, append order otherwise,
 * and the same prune rule — so the emitted mappings are unchanged.
 */
struct CandidateSet
{
    std::vector<Mapping> list;
    std::vector<u32> table; //!< candidate index + 1; 0 = empty
    u64 mask = 0;

    static u64
    keyOf(const Mapping &m)
    {
        return (m.pos << 1) | (m.reverse ? 1u : 0u);
    }

    static u64
    hashKey(u64 k)
    {
        k ^= k >> 33;
        k *= 0xff51afd7ed558ccdULL;
        k ^= k >> 33;
        return k;
    }

    void
    rehash(u64 slots)
    {
        table.assign(slots, 0);
        mask = slots - 1;
        for (u32 i = 0; i < list.size(); ++i) {
            u64 h = hashKey(keyOf(list[i])) & mask;
            while (table[h] != 0)
                h = (h + 1) & mask;
            table[h] = i + 1;
        }
    }

    void
    insert(const Mapping &m, u32 cap)
    {
        if (table.empty())
            rehash(64);
        const u64 key = keyOf(m);
        u64 h = hashKey(key) & mask;
        while (table[h] != 0) {
            Mapping &c = list[table[h] - 1];
            if (keyOf(c) == key) {
                if (m.score > c.score)
                    c = m;
                return;
            }
            h = (h + 1) & mask;
        }
        table[h] = static_cast<u32>(list.size()) + 1;
        list.push_back(m);
        // Bound memory: prune the tail when well over the cap (the
        // same threshold and comparator as the pre-hash code, so the
        // surviving set is identical).
        if (list.size() > 4 * static_cast<size_t>(cap)) {
            std::partial_sort(list.begin(), list.begin() + 2 * cap,
                              list.end(),
                              [](const Mapping &a, const Mapping &b) {
                                  return a.score > b.score;
                              });
            list.resize(2 * cap);
            rehash(std::max<u64>(64, std::bit_ceil(u64{8} * cap)));
        } else if (2 * (list.size() + 1) > mask + 1) {
            rehash(2 * (mask + 1));
        }
    }

    /**
     * Empty the set for reuse, keeping both allocations. Find/insert
     * results depend only on the insertion sequence, never on the
     * table size, so starting a batch from a previously-grown table
     * produces the identical candidate list.
     */
    void
    reset()
    {
        list.clear();
        std::fill(table.begin(), table.end(), 0u);
    }
};

/**
 * Phase-A output for one (read, strand): either the exact-match
 * mappings (whole-read SMEM hit) or the anchors to extend. Nothing
 * is inserted into the candidate set until phase B replays the
 * staged work in the original strand-major order — the set's prune
 * uses an unstable partial_sort, so the insertion sequence is part
 * of the output contract.
 */
struct StrandStage
{
    std::vector<Mapping> exact;
    std::vector<Anchor> anchors;
};

/** Per-read staging between the seeding and extension phases. */
struct ReadStage
{
    StrandStage strand[2]; //!< [0] forward, [1] reverse
    Seq revOriented;       //!< reverse complement (phase B reuses it)

    void
    clear()
    {
        for (auto &s : strand) {
            s.exact.clear();
            s.anchors.clear();
        }
    }
};

/**
 * Per-runner shard of the mutable alignment state. Each parallelFor
 * slot owns one shard, so the hot path touches no shared mutable
 * state; shards are reduced in slot order after the pass. Every
 * reduced quantity is an integer sum — and a SillaX lane's cycle
 * count for a job depends only on the job itself — so the merged
 * perf report is bit-identical at any thread count.
 */
struct WorkerShard
{
    SillaXLane lane;
    u64 extensionJobs = 0;
    u64 laneFaults = 0;
    u64 degradedJobs = 0;
    /** Host wall-clock this shard spent inside the extension kernel
     *  (profiling only — never part of the modelled report). */
    double extHostSeconds = 0;
    /** Host wall-clock this shard spent in the seeding phase (SMEM
     *  engine, anchor staging) — profiling only. */
    double seedHostSeconds = 0;
    /** Reused unpack buffer for the extension kernel's packed
     *  reference windows (one live job per shard at a time). */
    Seq unpackScratch;
    SeedingStats segSeeding; //!< current segment only

    explicit WorkerShard(const GenAxConfig &cfg)
        : lane(cfg.editBound, cfg.scoring, cfg.sillaxFreqGhz)
    {
    }
};

u64
camOps(const SeedingStats &s)
{
    return s.cam.searches + s.cam.loads + s.cam.binarySteps;
}

} // namespace

/**
 * Accumulators of one streaming pass (streamBegin .. streamEnd).
 *
 * Everything summed across batches is an exact integer (u64 stats,
 * lane-cycle deltas), so the per-segment doubles derived at
 * streamEnd() are bit-identical whether the reads arrived in one
 * batch or many. The worker shards persist across batches: a SillaX
 * lane's cycles per job depend only on the job, so letting the lane
 * counters run across batches changes nothing, and the per-segment
 * before/after snapshots still isolate each segment's share.
 */
struct GenAxSystem::StreamState
{
    unsigned width = 1;
    std::vector<WorkerShard> shards;
    /** Per-segment seeding stats summed across batches. */
    std::vector<SeedingStats> segSeeding;
    /** Per-segment SillaX cycle totals summed across batches. */
    std::vector<Cycle> segLaneCycles;
    /** Per-segment per-read lane work in global read order; only
     *  populated under cfg.simulateSeedingLanes (the cycle-stepped
     *  simulation needs the whole per-read list, so that mode keeps
     *  O(reads) state per segment). */
    std::vector<std::vector<LaneWork>> segLaneWork;
    u64 readsBytes = 0;  //!< packed read bytes streamed per segment
    u64 totalReads = 0;  //!< reads admitted so far (= next base)
    u64 exactReads = 0;  //!< reads resolved by the exact-match path
    /** Wall-clock of the streamBatchCandidates calls (profiling). */
    double batchHostSeconds = 0;
    /** Per-read candidate sets, reused across batches so the hash
     *  tables and lists reach a steady-state capacity instead of
     *  reallocating per batch. */
    std::vector<CandidateSet> cands;
    /** Per-read phase-A staging, reused across segments and batches
     *  (cleared per use; capacities persist). */
    std::vector<ReadStage> stages;
};

GenAxSystem::~GenAxSystem() = default;

GenAxSystem::GenAxSystem(const Seq &ref, const GenAxConfig &cfg)
    : _ref(ref), _cfg(cfg),
      _segments(ref, SegmentConfig{cfg.segmentCount, cfg.segmentOverlap,
                                   cfg.k}),
      _dram(cfg.dram)
{
    GENAX_CHECK(cfg.sillaxLanes > 0, "need at least one SillaX lane");
    GENAX_CHECK(cfg.seedingLanes > 0, "need at least one seeding lane");
    GENAX_CHECK(cfg.editBound > 0 && cfg.editBound <= kMaxSillaK,
                "edit bound out of range: ", cfg.editBound);
    if (cfg.snapshot != nullptr) {
        // The attach path (pipeline.cc) has already verified the
        // fingerprint against the parsed reference; same reference +
        // same config deterministically produce the same
        // segmentation, so a geometry mismatch here is a programming
        // error, not an input error.
        const IndexSnapshot &snap = *cfg.snapshot;
        GENAX_CHECK(snap.k() == cfg.k, "snapshot k ", snap.k(),
                    " != configured k ", cfg.k);
        GENAX_CHECK(snap.segmentCount() == _segments.count(),
                    "snapshot has ", snap.segmentCount(),
                    " segments, segmentation produced ",
                    _segments.count());
        for (u64 i = 0; i < _segments.count(); ++i) {
            GENAX_CHECK(snap.segmentStart(i) == _segments.start(i) &&
                            snap.segmentLength(i) ==
                                _segments.length(i),
                        "snapshot segment ", i,
                        " geometry does not match the segmentation");
        }
    }
}

void
GenAxSystem::streamBegin()
{
    GENAX_CHECK(!_stream, "streamBegin with a stream already open");
    _perf = {};
    _perf.segments = _segments.count();
    _hostProfile = {};

    auto st = std::make_unique<StreamState>();
    st->width = ThreadPool::resolveWidth(_cfg.threads);
    // One shard per runner slot. The host-side lane count is a
    // sharding artifact (one lane object per worker); the *model*
    // still charges cfg.sillaxLanes lanes at streamEnd(), and since
    // a lane's cycles per job depend only on the job, the summed
    // cycle count is invariant to how jobs land on shards.
    st->shards.reserve(st->width);
    for (unsigned s = 0; s < st->width; ++s)
        st->shards.emplace_back(_cfg);
    st->segSeeding.resize(_segments.count());
    st->segLaneCycles.assign(_segments.count(), 0);
    if (_cfg.simulateSeedingLanes)
        st->segLaneWork.resize(_segments.count());
    _stream = std::move(st);
}

std::vector<std::vector<Mapping>>
GenAxSystem::streamBatchCandidates(const std::vector<Seq> &reads,
                                   u64 base_read_index,
                                   u32 max_candidates)
{
    GENAX_CHECK(_stream, "streamBatchCandidates without streamBegin");
    const auto batch_t0 = std::chrono::steady_clock::now();
    StreamState &st = *_stream;
    GENAX_CHECK(base_read_index == st.totalReads,
                "batch base ", base_read_index, " but ",
                st.totalReads, " reads already streamed");
    st.totalReads += reads.size();
    _perf.reads += reads.size();

    if (st.cands.size() < reads.size())
        st.cands.resize(reads.size());
    for (u64 r = 0; r < reads.size(); ++r)
        st.cands[r].reset();
    std::vector<CandidateSet> &cands = st.cands;
    if (st.stages.size() < reads.size())
        st.stages.resize(reads.size());
    // The reverse-complemented read is segment-independent: compute
    // it at most once per read per batch (phase A fills it lazily on
    // the first reverse-strand search) instead of once per segment.
    // Only the orientation cache is invalidated here — the strand
    // stages are cleared per segment in phase A.
    for (u64 r = 0; r < reads.size(); ++r)
        st.stages[r].revOriented.clear();
    std::vector<u8> exact_seen(reads.size(), 0);
    _degraded.assign(reads.size(), 0);

    for (const auto &r : reads)
        st.readsBytes += (r.size() + 3) / 4;

    // Per-read seeding work for the optional lane simulation,
    // indexed by read so concurrent chunks never contend.
    std::vector<LaneWork> lane_work;
    if (_cfg.simulateSeedingLanes)
        lane_work.resize(reads.size());

    // The segment loop stays serial; reads within a segment are
    // sharded across the pool. Without a snapshot the index is
    // rebuilt per batch (the price of O(batch) resident memory —
    // caching every segment's index would cost tens of bytes per
    // reference base); with one, the segment's tables are a
    // zero-copy view over the snapshot file.
    for (u64 seg = 0; seg < _segments.count(); ++seg) {
#if defined(GENAX_KMER_INDEX_ORACLE)
        // The oracle's SeedIndex is the dense layout; snapshots hold
        // flat tables, so the oracle always rebuilds (the SeedIndex
        // equivalence keeps the output identical).
        const SeedIndex index = _segments.buildSeedIndex(seg);
#else
        const SeedIndex index =
            _cfg.snapshot != nullptr ? _cfg.snapshot->segmentView(seg)
                                     : _segments.buildSeedIndex(seg);
#endif

        Cycle lane_cycles_before = 0;
        for (auto &ws : st.shards) {
            ws.segSeeding = {};
            lane_cycles_before += ws.lane.stats().totalCycles();
        }

        // Phase A — seeding. Each shard seeds its reads against the
        // shared index and *stages* the per-strand outcome (exact
        // mappings or anchors) without touching the candidate sets
        // or the lanes. Splitting the read's fault scope in two is
        // sound because the seeding sites (seed.cam.*) and the lane
        // site (sillax.lane.issue) are disjoint and per-site
        // ordinals restart per scope instance, so each site sees the
        // same ordinal stream it saw in the fused loop.
        ThreadPool::global().parallelFor(
            reads.size(), st.width,
            [&](unsigned slot, u64 lo, u64 hi) {
                WorkerShard &ws = st.shards[slot];
                const auto seed_t0 = std::chrono::steady_clock::now();
                // The index is shared read-only; each chunk gets its
                // own engine (it accumulates stats and CAM state).
                SmemEngine engine(index, _cfg.seeding);
                u64 prev_lookups = 0, prev_cam = 0;

                for (u64 r = lo; r < hi; ++r) {
                    ReadStage &rs = st.stages[r];
                    rs.clear();
                    // Fault decisions inside this read are keyed on
                    // (segment, global read index) — a pure function
                    // of the work item, not of arrival order or
                    // batch composition — so an armed plan fires
                    // identically at any thread count and any batch
                    // size.
                    FaultKeyScope fault_key(FaultKeyScope::mixKey(
                        seg + 1, base_read_index + r));
                    for (int sidx = 0; sidx < 2; ++sidx) {
                        const bool reverse = sidx == 1;
                        StrandStage &ss = rs.strand[sidx];
                        if (reverse && rs.revOriented.empty())
                            reverseComplementInto(reads[r],
                                                  rs.revOriented);
                        const Seq &oriented =
                            reverse ? rs.revOriented : reads[r];
                        const auto smems = engine.seed(oriented);
                        if (smems.empty())
                            continue;

                        // Exact whole-read match: no extension needed
                        // (Section V's common-case optimization).
                        if (smems.size() == 1 &&
                            smems[0].qryBegin == 0 &&
                            smems[0].qryEnd == oriented.size()) {
                            exact_seen[r] = 1;
                            for (u32 local : smems[0].positions) {
                                Mapping m;
                                m.mapped = true;
                                m.reverse = reverse;
                                m.pos = _segments.toGlobal(seg, local);
                                m.score =
                                    static_cast<i32>(oriented.size()) *
                                    _cfg.scoring.match;
                                m.cigar.push(
                                    CigarOp::Match,
                                    static_cast<u32>(oriented.size()));
                                ss.exact.push_back(m);
                            }
                            continue;
                        }

                        ss.anchors =
                            makeAnchors(smems, _segments.start(seg),
                                        reverse, _cfg.anchors);
                    }
                    if (_cfg.simulateSeedingLanes) {
                        const u64 lookups =
                            engine.stats().indexLookups;
                        const u64 cam = camOps(engine.stats());
                        lane_work[r] = {lookups - prev_lookups,
                                        cam - prev_cam};
                        prev_lookups = lookups;
                        prev_cam = cam;
                    }
                }
                accumulate(ws.segSeeding, engine.stats());
                // genax-lint: allow(fp-accum): shard-local host profiling, never a modelled quantity
                ws.seedHostSeconds +=
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - seed_t0)
                        .count();
            });

        // Phase B — extension. The staged jobs of the whole batch
        // run cross-read through the per-shard lanes, and the
        // candidate insertions replay in the exact strand-major,
        // anchor-ordered sequence the fused loop used (the set's
        // prune is insertion-order sensitive). Lane cycle counts per
        // job depend only on the job, so sharding jobs differently
        // from phase A changes no modelled quantity.
        ThreadPool::global().parallelFor(
            reads.size(), st.width,
            [&](unsigned slot, u64 lo, u64 hi) {
                WorkerShard &ws = st.shards[slot];
                u64 cur_read = 0;

                // Extension kernel with graceful degradation: a job
                // the lane refuses (injected issue fault) is re-run
                // on the software kernel (SIMD score pass + truncated
                // scalar traceback) instead of being dropped, and the
                // read is flagged so the pipeline ledger can report
                // it as degraded.
                const ExtendFn kernel = [&](const PackedSeq &rw,
                                            const Seq &qry) {
                    ++ws.extensionJobs;
                    const auto ext_t0 =
                        std::chrono::steady_clock::now();
                    rw.unpackInto(ws.unpackScratch);
                    auto attempt =
                        ws.lane.tryExtend(ws.unpackScratch, qry);
                    ExtensionResult out;
                    if (!attempt.ok()) [[unlikely]] {
                        ++ws.laneFaults;
                        ++ws.degradedJobs;
                        _degraded[cur_read] = 1;
                        out = gotohExtendViaScore(rw, qry, _cfg.scoring,
                                                  _cfg.editBound);
                    } else {
                        const SillaAlignment &a = *attempt;
                        out.score = a.score;
                        out.refConsumed = a.refEnd;
                        out.qryConsumed = a.qryEnd;
                        for (const auto &e : a.cigar.elems())
                            if (e.op != CigarOp::SoftClip)
                                out.cigar.push(e.op, e.len);
                    }
                    // genax-lint: allow(fp-accum): shard-local host profiling, never a modelled quantity
                    ws.extHostSeconds +=
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - ext_t0)
                            .count();
                    return out;
                };

                for (u64 r = lo; r < hi; ++r) {
                    const ReadStage &rs = st.stages[r];
                    cur_read = r;
                    // Same key as phase A; the lane-issue ordinals
                    // within this fresh scope instance match the
                    // fused loop's because no lane site was hit
                    // during seeding.
                    FaultKeyScope fault_key(FaultKeyScope::mixKey(
                        seg + 1, base_read_index + r));
                    for (int sidx = 0; sidx < 2; ++sidx) {
                        const StrandStage &ss = rs.strand[sidx];
                        for (const Mapping &m : ss.exact)
                            cands[r].insert(m, max_candidates);
                        if (ss.anchors.empty())
                            continue;
                        const Seq &oriented =
                            sidx == 1 ? rs.revOriented : reads[r];
                        for (const auto &anchor : ss.anchors) {
                            cands[r].insert(
                                extendAnchor(_ref, oriented, anchor,
                                             _cfg.scoring,
                                             _cfg.editBound, kernel),
                                max_candidates);
                        }
                    }
                }
            });

        // Deterministic reduction: per-segment seeding stats are u64
        // sums over shards (in slot order) and then over batches, so
        // the totals — and the seconds streamEnd() derives from them
        // — are bit-identical at any thread count and batch size.
        SeedingStats batch_seg;
        for (const auto &ws : st.shards)
            accumulate(batch_seg, ws.segSeeding);
        accumulate(st.segSeeding[seg], batch_seg);
        accumulate(_perf.seeding, batch_seg);

        Cycle lane_cycles_after = 0;
        for (const auto &ws : st.shards)
            lane_cycles_after += ws.lane.stats().totalCycles();
        st.segLaneCycles[seg] += lane_cycles_after - lane_cycles_before;

        // The cycle-stepped lane simulation consumes the whole
        // per-read work list at streamEnd(); batches append in
        // global read order (the base check above pins the order).
        if (_cfg.simulateSeedingLanes)
            st.segLaneWork[seg].insert(st.segLaneWork[seg].end(),
                                       lane_work.begin(),
                                       lane_work.end());
    }

    for (const u8 seen : exact_seen)
        st.exactReads += seen;

    // Finalize: sort candidates by descending score with the same
    // deterministic tie-break as the software aligner. Per-read and
    // independent, so this also shards cleanly.
    std::vector<std::vector<Mapping>> out(reads.size());
    ThreadPool::global().parallelFor(
        reads.size(), st.width, [&](unsigned, u64 lo, u64 hi) {
            for (u64 r = lo; r < hi; ++r) {
                auto &c = cands[r].list;
                std::sort(c.begin(), c.end(),
                          [](const Mapping &a, const Mapping &b) {
                              if (a.score != b.score)
                                  return a.score > b.score;
                              if (a.reverse != b.reverse)
                                  return !a.reverse;
                              return a.pos < b.pos;
                          });
                if (c.size() > max_candidates)
                    c.resize(max_candidates);
                out[r] = std::move(c);
            }
        });
    // genax-lint: allow(fp-accum): serial host profiling of the batch call, never a modelled quantity
    st.batchHostSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      batch_t0)
            .count();
    return out;
}

std::vector<Mapping>
GenAxSystem::streamBatch(const std::vector<Seq> &reads,
                         u64 base_read_index)
{
    const auto cands = streamBatchCandidates(reads, base_read_index);
    std::vector<Mapping> out(reads.size());
    for (u64 r = 0; r < reads.size(); ++r) {
        const auto &c = cands[r];
        if (c.empty())
            continue;
        out[r] = c[0];
        if (c.size() == 1) {
            out[r].mapq = 60;
        } else if (c[1].score >= c[0].score) {
            out[r].mapq = 0;
        } else {
            out[r].mapq = static_cast<u8>(
                std::min<i32>(60, 6 * (c[0].score - c[1].score)));
        }
    }
    return out;
}

void
GenAxSystem::streamEnd()
{
    GENAX_CHECK(_stream, "streamEnd without streamBegin");
    const auto end_t0 = std::chrono::steady_clock::now();
    StreamState &st = *_stream;

    // The cycle-stepped seeding-lane simulations are sharded across
    // the pool: each segment's simulation is a pure function of
    // (segment seed, that segment's work list) — its RNG is its own,
    // it touches no fault site, and its result lands in that
    // segment's slot — so any work division produces bit-identical
    // cycle counts, and the serial reduction below consumes them in
    // segment order exactly as the single-threaded pass did.
    std::vector<Cycle> sim_cycles;
    if (_cfg.simulateSeedingLanes) {
        sim_cycles.assign(_segments.count(), 0);
        ThreadPool::global().parallelFor(
            _segments.count(), st.width,
            [&](unsigned, u64 lo, u64 hi) {
                for (u64 seg = lo; seg < hi; ++seg) {
                    SeedingSimConfig sim_cfg;
                    sim_cfg.lanes = _cfg.seedingLanes;
                    sim_cfg.banks = _cfg.seedingSramBanks;
                    sim_cfg.issueWidth = _cfg.seedingIssueWidth;
                    sim_cfg.seed = seg + 1;
                    sim_cycles[seg] = SeedingLaneSim(sim_cfg)
                                          .simulate(st.segLaneWork[seg])
                                          .cycles;
                }
            });
        _hostProfile.seedingSimSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - end_t0)
                .count();
    }

    // Per-segment DRAM streams and modelled seconds, in segment
    // order. The DRAM fault site replays by per-site ordinal, so the
    // one-stream-per-segment call sequence here is exactly the
    // sequence a single alignAll() pass issues.
    for (u64 seg = 0; seg < _segments.count(); ++seg) {
        // Stream the segment's tables, reference and the read set.
        const u64 dram_bytes = _segments.indexTableBytes() +
                               _segments.positionTableBytes(seg) +
                               _segments.refBytes(seg) + st.readsBytes;
        double dram_sec;
        if (auto streamed = _dram.stream(dram_bytes); streamed.ok()) {
            dram_sec = *streamed;
        } else {
            // Stream failed even after the controller's retry: keep
            // the pass alive on the closed-form estimate and record
            // the degradation in the perf report.
            ++_perf.dramFaults;
            GENAX_WARN("segment ", seg, " table stream degraded: ",
                       streamed.status().str());
            dram_sec = 2.0 * _dram.streamSeconds(dram_bytes);
        }

        // Per-segment timing: table streaming overlaps with the
        // previous segment's compute; seeding and extension lanes
        // run concurrently.
        double seed_sec;
        if (_cfg.simulateSeedingLanes) {
            seed_sec = static_cast<double>(sim_cycles[seg]) /
                       (_cfg.seedingFreqGhz * 1e9);
        } else {
            seed_sec = seedingCycles(st.segSeeding[seg],
                                     _cfg.seedingIssueWidth) /
                       (_cfg.seedingLanes * _cfg.seedingFreqGhz * 1e9);
        }

        const double ext_sec =
            static_cast<double>(st.segLaneCycles[seg]) /
            (_cfg.sillaxLanes * _cfg.sillaxFreqGhz * 1e9);

        // Derived doubles summed in the serial segment loop, in
        // segment order, from already-folded u64 cycle counters —
        // the accumulation order is fixed at any thread count.
        // genax-lint: allow(fp-accum): serial segment-order sums of per-segment derived doubles
        _perf.seedingSeconds += seed_sec;
        // genax-lint: allow(fp-accum): serial segment-order sums of per-segment derived doubles
        _perf.extensionSeconds += ext_sec;
        // genax-lint: allow(fp-accum): serial segment-order sums of per-segment derived doubles
        _perf.dramSeconds += dram_sec;
        _perf.totalSeconds += std::max({dram_sec, seed_sec, ext_sec});
    }

    for (const auto &ws : st.shards) {
        const LaneStats &s = ws.lane.stats();
        _perf.lanes.jobs += s.jobs;
        _perf.lanes.streamCycles += s.streamCycles;
        _perf.lanes.reduceCycles += s.reduceCycles;
        _perf.lanes.collectCycles += s.collectCycles;
        _perf.lanes.rerunCycles += s.rerunCycles;
        _perf.lanes.reruns += s.reruns;
        _perf.lanes.jobsWithRerun += s.jobsWithRerun;
        _perf.lanes.issueFaults += s.issueFaults;
        _perf.extensionJobs += ws.extensionJobs;
        _perf.laneFaults += ws.laneFaults;
        _perf.degradedJobs += ws.degradedJobs;
    }
    _perf.exactReads += st.exactReads;
    // Pipeline occupancy: every extension job dispatched by the
    // kernel must be accounted for by exactly one lane or by the
    // software fallback — the sharded dispatch dropped or
    // double-counted nothing.
    GENAX_CHECK(_perf.lanes.jobs + _perf.degradedJobs ==
                    _perf.extensionJobs,
                "lane stats record ", _perf.lanes.jobs, " jobs plus ",
                _perf.degradedJobs,
                " degraded jobs but the system dispatched ",
                _perf.extensionJobs);

    // Host-phase profile of the whole pass. Seeding and extension
    // time are shard sums in slot order (CPU-seconds when threaded);
    // bookkeeping is whatever the batch calls and this finalization
    // spent outside the two instrumented phases. The seeding figure
    // adds the phase-A host time to whatever the cycle-stepped lane
    // simulation recorded above, so it is non-zero in every mode.
    for (const auto &ws : st.shards) {
        _hostProfile.extensionSeconds += ws.extHostSeconds;
        _hostProfile.seedingSimSeconds += ws.seedHostSeconds;
    }
    _hostProfile.totalSeconds =
        st.batchHostSeconds +
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      end_t0)
            .count();
    _hostProfile.bookkeepingSeconds =
        std::max(0.0, _hostProfile.totalSeconds -
                          _hostProfile.seedingSimSeconds -
                          _hostProfile.extensionSeconds);

    _stream.reset();
}

std::vector<std::vector<Mapping>>
GenAxSystem::alignAllCandidates(const std::vector<Seq> &reads,
                                u32 max_candidates)
{
    streamBegin();
    auto out = streamBatchCandidates(reads, 0, max_candidates);
    streamEnd();
    return out;
}

std::vector<Mapping>
GenAxSystem::alignAll(const std::vector<Seq> &reads)
{
    streamBegin();
    auto out = streamBatch(reads, 0);
    streamEnd();
    return out;
}

std::vector<PairMapping>
GenAxSystem::alignPairs(const std::vector<Seq> &reads1,
                        const std::vector<Seq> &reads2,
                        const PairedConfig &pcfg)
{
    GENAX_CHECK(reads1.size() == reads2.size(),
                 "mate batches differ in size");
    const auto c1 = alignAllCandidates(reads1, pcfg.candidatesPerMate);
    // Note: perf for the second pass overwrites the first; callers
    // interested in the model should inspect perf() after each
    // alignAllCandidates call separately.
    const auto c2 = alignAllCandidates(reads2, pcfg.candidatesPerMate);
    std::vector<PairMapping> out(reads1.size());
    for (size_t i = 0; i < reads1.size(); ++i)
        out[i] = resolvePair(c1[i], c2[i], pcfg);
    return out;
}

GenAxAreaPower
GenAxSystem::areaPower(const GenAxConfig &cfg, u64 index_table_bytes,
                       u64 position_table_bytes)
{
    GenAxAreaPower out;
    out.sramBytes = index_table_bytes + position_table_bytes +
                    cfg.referenceCacheBytes + cfg.readBufferBytes;
    const double sram_mb = static_cast<double>(out.sramBytes) / 1e6;

    out.seedingLanesMm2 =
        cfg.seedingLanes * TechModel::seedingLaneAreaMm2();
    out.sillaxLanesMm2 =
        cfg.sillaxLanes * TechModel::machineAreaMm2(
                              PeType::Traceback, cfg.editBound,
                              cfg.sillaxFreqGhz);
    out.sramMm2 = sram_mb * TechModel::sramAreaPerMb();
    out.totalMm2 = out.seedingLanesMm2 + out.sillaxLanesMm2 +
                   out.sramMm2;

    out.seedingLanesW =
        cfg.seedingLanes * TechModel::seedingLanePowerW();
    out.sillaxLanesW =
        cfg.sillaxLanes * TechModel::machinePowerW(
                              PeType::Traceback, cfg.editBound,
                              cfg.sillaxFreqGhz);
    out.sramW = sram_mb * TechModel::sramPowerPerMb();
    out.totalW = out.seedingLanesW + out.sillaxLanesW + out.sramW;
    return out;
}

GenAxSystem::Projection
GenAxSystem::project(const GenAxConfig &cfg, const GenAxPerf &measured,
                     u64 reads, u64 read_len, u64 genome_len,
                     u64 segments)
{
    GENAX_CHECK(measured.reads > 0 && measured.segments > 0,
                 "projection needs a measured run");
    Projection out;

    // Per-read-per-segment seeding seconds (both strands included in
    // the measured stats).
    const double measured_read_segs = static_cast<double>(
        measured.reads * measured.segments);
    const double seed_sec_per_read_seg =
        measured.seedingSeconds / measured_read_segs;
    out.seedingSeconds = seed_sec_per_read_seg *
                         static_cast<double>(reads) *
                         static_cast<double>(segments);

    // Extension: jobs per read and seconds per job carry over.
    const double jobs_per_read =
        static_cast<double>(measured.extensionJobs) /
        static_cast<double>(measured.reads);
    const double ext_sec_per_job =
        measured.extensionJobs > 0
            ? measured.extensionSeconds /
                  static_cast<double>(measured.extensionJobs)
            : 0.0;
    out.extensionSeconds = ext_sec_per_job * jobs_per_read *
                           static_cast<double>(reads);

    // DRAM: per segment, stream tables + reference + the read batch.
    DramModel dram(cfg.dram);
    const u64 seg_len = genome_len / segments;
    const u64 reads_bytes = reads * ((read_len + 3) / 4);
    const u64 per_seg = (u64{1} << (2 * cfg.k)) *
                            KmerIndex::kEntryBytes +     // index
                        seg_len * KmerIndex::kEntryBytes + // positions
                        seg_len / 4 +                     // reference
                        reads_bytes;
    out.dramSeconds = dram.streamSeconds(per_seg) *
                      static_cast<double>(segments);

    // Segments pipeline: each phase bounded by its slowest component.
    const double per_seg_seed = out.seedingSeconds / segments;
    const double per_seg_ext = out.extensionSeconds / segments;
    const double per_seg_dram = out.dramSeconds / segments;
    out.totalSeconds =
        std::max({per_seg_seed, per_seg_ext, per_seg_dram}) * segments;
    out.readsPerSecond =
        out.totalSeconds > 0 ? reads / out.totalSeconds : 0.0;
    return out;
}

GenAxAreaPower
GenAxSystem::areaPower() const
{
    u64 max_pos = 0;
    for (u64 s = 0; s < _segments.count(); ++s)
        max_pos = std::max(max_pos, _segments.positionTableBytes(s));
    return areaPower(_cfg, _segments.indexTableBytes(), max_pos);
}

} // namespace genax
