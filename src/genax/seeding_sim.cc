#include "genax/seeding_sim.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/check.hh"

namespace genax {

void
SeedingLaneSim::checkConfig() const
{
    GENAX_CHECK(_cfg.lanes > 0 && _cfg.banks > 0,
                "seeding sim needs lanes and banks: lanes=",
                _cfg.lanes, " banks=", _cfg.banks);
    GENAX_CHECK(_cfg.issueWidth > 0 && _cfg.sramLatency > 0,
                "seeding sim needs issue width and SRAM latency: "
                "width=", _cfg.issueWidth, " latency=",
                _cfg.sramLatency);
}

SeedingSimResult
SeedingLaneSim::simulate(const std::vector<LaneWork> &work) const
{
#if defined(GENAX_MODEL_ORACLE)
    return simulateNaive(work);
#else
    return simulateEvent(work);
#endif
}

SeedingSimResult
SeedingLaneSim::simulateNaive(const std::vector<LaneWork> &work) const
{
    checkConfig();
    SeedingSimResult res;
    if (work.empty())
        return res;

    struct Lane
    {
        std::deque<LaneWork> queue;
        u64 lookupsToIssue = 0;
        u64 lookupsPending = 0; //!< issued, data not yet returned
        u64 camRemaining = 0;
        /** Completion cycles of in-flight lookups (size <= width). */
        std::vector<Cycle> inflight;
        bool
        busy() const
        {
            return lookupsToIssue || lookupsPending || camRemaining ||
                   !queue.empty();
        }
    };

    std::vector<Lane> lanes(_cfg.lanes);
    for (size_t i = 0; i < work.size(); ++i)
        lanes[i % _cfg.lanes].queue.push_back(work[i]);

    Rng rng(_cfg.seed);
    std::vector<u8> bank_busy(_cfg.banks, 0);

    Cycle t = 0;
    u32 first_lane = 0; // rotating priority
    for (;; ++t) {
        bool any_busy = false;
        std::fill(bank_busy.begin(), bank_busy.end(), 0);

        for (u32 l = 0; l < _cfg.lanes; ++l) {
            Lane &lane = lanes[(first_lane + l) % _cfg.lanes];

            // Retire lookups whose data arrives this cycle.
            for (size_t i = 0; i < lane.inflight.size();) {
                if (lane.inflight[i] <= t) {
                    lane.inflight[i] = lane.inflight.back();
                    lane.inflight.pop_back();
                    --lane.lookupsPending;
                } else {
                    ++i;
                }
            }

            // Start the next read when idle.
            if (!lane.lookupsToIssue && !lane.lookupsPending &&
                !lane.camRemaining && !lane.queue.empty()) {
                const LaneWork w = lane.queue.front();
                lane.queue.pop_front();
                lane.lookupsToIssue = w.indexLookups;
                lane.camRemaining = w.camOps;
            }

            // Issue one lookup per cycle (subject to issue width and
            // bank availability).
            if (lane.lookupsToIssue &&
                lane.lookupsPending < _cfg.issueWidth) {
                const u32 bank =
                    static_cast<u32>(rng.below(_cfg.banks));
                if (!bank_busy[bank]) {
                    bank_busy[bank] = 1;
                    --lane.lookupsToIssue;
                    ++lane.lookupsPending;
                    lane.inflight.push_back(t + _cfg.sramLatency);
                    ++res.grants;
                    // Issue-queue bound: a lane can never have more
                    // requests in flight than its issue width.
                    GENAX_DCHECK(lane.inflight.size() <=
                                     _cfg.issueWidth,
                                 "lane exceeded its issue width: ",
                                 lane.inflight.size(), " > ",
                                 _cfg.issueWidth);
                } else {
                    ++res.bankConflicts;
                }
            } else if (!lane.lookupsToIssue && !lane.lookupsPending &&
                       lane.camRemaining) {
                // CAM operations are lane-local, one per cycle.
                --lane.camRemaining;
            }

            any_busy |= lane.busy();
        }
        ++first_lane;
        if (!any_busy)
            break;
    }
    res.cycles = t + 1;
    return res;
}

namespace {

/**
 * Per-lane state for the event-driven path. The read queue is an
 * index into the shared work vector (lane l owns items l, l+lanes,
 * l+2*lanes, ... — the same round-robin deal as the oracle) and the
 * in-flight retirement times live in a fixed ring: a lane issues at
 * most one lookup per cycle, so the times are strictly increasing
 * and retiring everything <= t is a pop-front loop, not a scan.
 */
struct EvLane
{
    size_t next = 0; //!< next work item; advances by the lane count
    u64 lookupsToIssue = 0;
    u64 lookupsPending = 0;
    u64 camRemaining = 0;
    u32 head = 0;  //!< ring start within this lane's slice
    u32 count = 0; //!< in-flight entries (== lookupsPending)
    /**
     * Next cycle this lane makes an issue attempt; its state is
     * quiescent (all deterministic evolution applied) strictly
     * before that cycle. Meaningless once `complete`.
     */
    i64 eventCycle = 0;
    bool complete = false;
};

} // namespace

SeedingSimResult
SeedingLaneSim::simulateEvent(const std::vector<LaneWork> &work) const
{
    checkConfig();
    SeedingSimResult res;
    if (work.empty())
        return res;

    const u32 L = _cfg.lanes;
    const u32 W = _cfg.issueWidth;
    const size_t n = work.size();

    std::vector<EvLane> lanes(L);
    // Shared ring storage: lane l's slice is ring[l*W .. l*W+W).
    std::vector<Cycle> ring(static_cast<size_t>(L) * W);

    const auto ringFront = [&](const EvLane &ln, u32 li) -> Cycle {
        return ring[static_cast<size_t>(li) * W + ln.head];
    };
    const auto ringBack = [&](const EvLane &ln, u32 li) -> Cycle {
        return ring[static_cast<size_t>(li) * W +
                    (ln.head + ln.count - 1) % W];
    };
    const auto ringPush = [&](EvLane &ln, u32 li, Cycle c) {
        ring[static_cast<size_t>(li) * W + (ln.head + ln.count) % W] =
            c;
        ++ln.count;
    };
    const auto ringPop = [&](EvLane &ln) {
        ln.head = (ln.head + 1) % W;
        --ln.count;
    };

    i64 maxComplete = -1;
    u32 active = 0;

    /**
     * Advance a lane from its state at the end of cycle `T` through
     * everything that happens without an issue attempt — SRAM
     * retirements, the CAM countdown (closed form: camRemaining is a
     * pure per-cycle decrement), and pops of zero-lookup reads — and
     * either park it at its next attempt cycle or mark it complete.
     * The pop and the attempt of a read WITH lookups are left to the
     * exact step, which runs the oracle's per-cycle body verbatim.
     */
    const auto walk = [&](EvLane &ln, u32 li, i64 T) {
        for (;;) {
            if (ln.lookupsToIssue) {
                // Can attempt as soon as an issue slot is free:
                // immediately next cycle, or at the earliest
                // retirement when the width is saturated.
                ln.eventCycle =
                    ln.lookupsPending < W
                        ? T + 1
                        : static_cast<i64>(ringFront(ln, li));
                return;
            }
            // Work out when this read's tail finishes and when the
            // next pop would happen. The oracle's cycle order is
            // retire -> pop -> issue/CAM, so the CAM countdown
            // starts the same cycle the last in-flight lookup
            // returns, and a drained lane with no CAM left pops its
            // next read in the retirement cycle itself; after a CAM
            // countdown the pop lands one cycle later (the pop check
            // precedes the final decrement's cycle).
            i64 done; //!< lane idle (busy()==false) at end of `done`
            i64 pop;  //!< cycle the next read would be popped
            if (ln.lookupsPending) {
                const i64 last = static_cast<i64>(ringBack(ln, li));
                ln.head = 0;
                ln.count = 0;
                ln.lookupsPending = 0;
                if (ln.camRemaining) {
                    done = last + static_cast<i64>(ln.camRemaining) -
                           1;
                    ln.camRemaining = 0;
                    pop = done + 1;
                } else {
                    done = last;
                    pop = last;
                }
            } else if (ln.camRemaining) {
                // Decrements run T+1 .. T+camRemaining.
                done = T + static_cast<i64>(ln.camRemaining);
                ln.camRemaining = 0;
                pop = done + 1;
            } else {
                done = T;
                pop = T + 1;
            }
            if (ln.next >= n) {
                ln.eventCycle = done;
                ln.complete = true;
                return;
            }
            const LaneWork w = work[ln.next];
            if (w.indexLookups) {
                // The exact step pops this read and attempts in the
                // same cycle; leave it on the queue.
                ln.eventCycle = pop;
                return;
            }
            // Zero-lookup read: consume it; its CAM ops (if any)
            // start in the pop cycle itself.
            ln.next += L;
            T = w.camOps ? pop + static_cast<i64>(w.camOps) - 1 : pop;
        }
    };

    for (u32 li = 0; li < L; ++li) {
        EvLane &ln = lanes[li];
        ln.next = li;
        if (ln.next >= n) {
            // Lane never receives work; it is idle for the whole
            // simulation and contributes nothing.
            ln.complete = true;
            ln.eventCycle = -1;
            continue;
        }
        ++active;
        walk(ln, li, -1);
        if (ln.complete) {
            maxComplete = std::max(maxComplete, ln.eventCycle);
            --active;
        }
    }

    Rng rng(_cfg.seed);
    // Generation-stamped bank reservations: bank b is busy in cycle
    // t iff bankMark[b] == t, so no per-cycle refill is needed.
    std::vector<i64> bankMark(_cfg.banks,
                              std::numeric_limits<i64>::min());

    i64 t = -1;
    bool next_known = false; // next attempt cycle is exactly t + 1
    while (active) {
        // Next cycle containing at least one issue attempt. When the
        // previous step parked a lane at t + 1 (a denied or
        // still-issuing lane), that IS the minimum — every other
        // cached event is > t — so the scan is skipped; saturated
        // stretches advance cycle by cycle without rescanning.
        if (next_known) {
            ++t;
        } else {
            t = std::numeric_limits<i64>::max();
            for (u32 li = 0; li < L; ++li)
                if (!lanes[li].complete)
                    t = std::min(t, lanes[li].eventCycle);
            GENAX_DCHECK(t != std::numeric_limits<i64>::max(),
                         "active lanes but no pending attempt");
        }
        next_known = false;

        // Exact step of cycle t: visit attempting lanes in the
        // oracle's rotating priority order (first_lane is a u32 that
        // wraps, hence the cast) and run its per-cycle body —
        // retire, pop, issue — drawing the bank RNG in the same
        // order.
        const u32 first = static_cast<u32>(t);
        for (u32 l = 0; l < L; ++l) {
            const u32 li = (first + l) % L;
            EvLane &ln = lanes[li];
            if (ln.complete || ln.eventCycle != t)
                continue;

            while (ln.count &&
                   static_cast<i64>(ringFront(ln, li)) <= t) {
                ringPop(ln);
                --ln.lookupsPending;
            }
            if (!ln.lookupsToIssue && !ln.lookupsPending &&
                !ln.camRemaining && ln.next < n) {
                const LaneWork w = work[ln.next];
                ln.next += L;
                ln.lookupsToIssue = w.indexLookups;
                ln.camRemaining = w.camOps;
            }
            GENAX_DCHECK(ln.lookupsToIssue &&
                             ln.lookupsPending < W,
                         "event lane parked on a non-attempt cycle");
            const u32 bank = static_cast<u32>(rng.below(_cfg.banks));
            if (bankMark[bank] != t) {
                bankMark[bank] = t;
                --ln.lookupsToIssue;
                ++ln.lookupsPending;
                ringPush(ln, li, static_cast<Cycle>(t) +
                                     _cfg.sramLatency);
                ++res.grants;
                GENAX_DCHECK(ln.count <= W,
                             "lane exceeded its issue width: ",
                             ln.count, " > ", W);
            } else {
                ++res.bankConflicts;
            }

            walk(ln, li, t);
            if (ln.complete) {
                maxComplete = std::max(maxComplete, ln.eventCycle);
                --active;
            } else if (ln.eventCycle == t + 1) {
                next_known = true;
            }
        }
    }

    res.cycles = static_cast<Cycle>(maxComplete + 1);
    return res;
}

} // namespace genax
