#include "genax/seeding_sim.hh"

#include <algorithm>
#include <deque>

#include "common/check.hh"

namespace genax {

SeedingSimResult
SeedingLaneSim::simulate(const std::vector<LaneWork> &work) const
{
    GENAX_CHECK(_cfg.lanes > 0 && _cfg.banks > 0,
                "seeding sim needs lanes and banks: lanes=",
                _cfg.lanes, " banks=", _cfg.banks);
    GENAX_CHECK(_cfg.issueWidth > 0 && _cfg.sramLatency > 0,
                "seeding sim needs issue width and SRAM latency: "
                "width=", _cfg.issueWidth, " latency=",
                _cfg.sramLatency);
    SeedingSimResult res;
    if (work.empty())
        return res;

    struct Lane
    {
        std::deque<LaneWork> queue;
        u64 lookupsToIssue = 0;
        u64 lookupsPending = 0; //!< issued, data not yet returned
        u64 camRemaining = 0;
        /** Completion cycles of in-flight lookups (size <= width). */
        std::vector<Cycle> inflight;
        bool
        busy() const
        {
            return lookupsToIssue || lookupsPending || camRemaining ||
                   !queue.empty();
        }
    };

    std::vector<Lane> lanes(_cfg.lanes);
    for (size_t i = 0; i < work.size(); ++i)
        lanes[i % _cfg.lanes].queue.push_back(work[i]);

    Rng rng(_cfg.seed);
    std::vector<u8> bank_busy(_cfg.banks, 0);

    Cycle t = 0;
    u32 first_lane = 0; // rotating priority
    for (;; ++t) {
        bool any_busy = false;
        std::fill(bank_busy.begin(), bank_busy.end(), 0);

        for (u32 l = 0; l < _cfg.lanes; ++l) {
            Lane &lane = lanes[(first_lane + l) % _cfg.lanes];

            // Retire lookups whose data arrives this cycle.
            for (size_t i = 0; i < lane.inflight.size();) {
                if (lane.inflight[i] <= t) {
                    lane.inflight[i] = lane.inflight.back();
                    lane.inflight.pop_back();
                    --lane.lookupsPending;
                } else {
                    ++i;
                }
            }

            // Start the next read when idle.
            if (!lane.lookupsToIssue && !lane.lookupsPending &&
                !lane.camRemaining && !lane.queue.empty()) {
                const LaneWork w = lane.queue.front();
                lane.queue.pop_front();
                lane.lookupsToIssue = w.indexLookups;
                lane.camRemaining = w.camOps;
            }

            // Issue one lookup per cycle (subject to issue width and
            // bank availability).
            if (lane.lookupsToIssue &&
                lane.lookupsPending < _cfg.issueWidth) {
                const u32 bank =
                    static_cast<u32>(rng.below(_cfg.banks));
                if (!bank_busy[bank]) {
                    bank_busy[bank] = 1;
                    --lane.lookupsToIssue;
                    ++lane.lookupsPending;
                    lane.inflight.push_back(t + _cfg.sramLatency);
                    ++res.grants;
                    // Issue-queue bound: a lane can never have more
                    // requests in flight than its issue width.
                    GENAX_DCHECK(lane.inflight.size() <=
                                     _cfg.issueWidth,
                                 "lane exceeded its issue width: ",
                                 lane.inflight.size(), " > ",
                                 _cfg.issueWidth);
                } else {
                    ++res.bankConflicts;
                }
            } else if (!lane.lookupsToIssue && !lane.lookupsPending &&
                       lane.camRemaining) {
                // CAM operations are lane-local, one per cycle.
                --lane.camRemaining;
            }

            any_busy |= lane.busy();
        }
        ++first_lane;
        if (!any_busy)
            break;
    }
    res.cycles = t + 1;
    return res;
}

} // namespace genax
