/**
 * @file
 * DDR4 streaming model for GenAx table loads (Section VI).
 *
 * GenAx touches main memory only through large sequential streams:
 * before processing a segment, its index table, position table and
 * packed reference are streamed into on-chip SRAM over 8 DDR4
 * channels (19.2 GB/s each), and the read batch is streamed through
 * a small staging buffer during processing. A bandwidth model with a
 * fixed per-transfer latency and a sequential-stream efficiency
 * factor captures this usage; there is no random-access traffic to
 * model (that is precisely the point of segmenting).
 */

#ifndef GENAX_GENAX_DRAM_MODEL_HH
#define GENAX_GENAX_DRAM_MODEL_HH

#include "common/check.hh"
#include "common/faultinject.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace genax {

/** DDR4 subsystem parameters. */
struct DramConfig
{
    u32 channels = 8;
    double gbPerSecPerChannel = 19.2; //!< DDR4-2400 x64 channel
    double streamEfficiency = 0.85;   //!< achievable fraction on streams
    double transferLatencyUs = 2.0;   //!< per-stream startup cost
};

/** Per-instance stream/fault accounting. */
struct DramStats
{
    u64 streams = 0;      //!< stream() calls
    u64 faultRetries = 0; //!< injected faults absorbed by a retry
};

/** Stream-time estimator. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &cfg = {}) : _cfg(cfg)
    {
        GENAX_CHECK(cfg.channels > 0, "DRAM model with no channels");
        GENAX_CHECK(cfg.gbPerSecPerChannel > 0,
                    "non-positive channel bandwidth: ",
                    cfg.gbPerSecPerChannel);
        GENAX_CHECK(cfg.streamEfficiency > 0 &&
                        cfg.streamEfficiency <= 1.0,
                    "stream efficiency outside (0, 1]: ",
                    cfg.streamEfficiency);
        GENAX_CHECK(cfg.transferLatencyUs >= 0,
                    "negative transfer latency: ",
                    cfg.transferLatencyUs);
    }

    /** Aggregate sequential-stream bandwidth in bytes/second. */
    double
    bandwidthBytesPerSec() const
    {
        return _cfg.channels * _cfg.gbPerSecPerChannel * 1e9 *
               _cfg.streamEfficiency;
    }

    /** Seconds to stream `bytes` sequentially. */
    double
    streamSeconds(u64 bytes) const
    {
        if (bytes == 0)
            return 0.0;
        return _cfg.transferLatencyUs * 1e-6 +
               static_cast<double>(bytes) / bandwidthBytesPerSec();
    }

    /**
     * Fault-aware streaming: an injected genax.dram.stream fault
     * models a failed transfer that the memory controller retries
     * (paying the full stream cost again). A fault on the retry too
     * surfaces as Unavailable so the caller can degrade — the system
     * model falls back to its closed-form estimate and keeps going.
     */
    StatusOr<double>
    stream(u64 bytes)
    {
        ++_stats.streams;
        double sec = streamSeconds(bytes);
        if (faultFires(fault::kDramStream)) [[unlikely]] {
            ++_stats.faultRetries;
            sec += streamSeconds(bytes);
            if (faultFires(fault::kDramStream)) {
                return unavailableError(
                    "DRAM stream of " + std::to_string(bytes) +
                    " bytes failed after retry");
            }
        }
        return sec;
    }

    const DramStats &stats() const { return _stats; }
    const DramConfig &config() const { return _cfg; }

  private:
    DramConfig _cfg;
    DramStats _stats;
};

} // namespace genax

#endif // GENAX_GENAX_DRAM_MODEL_HH
