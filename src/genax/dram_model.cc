// DramModel is header-only; this file anchors the library target.
#include "genax/dram_model.hh"
