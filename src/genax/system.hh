/**
 * @file
 * The GenAx system model (Section VI, Figure 11).
 *
 * Brings together the seeding accelerator (128 lanes sharing
 * segment-resident index/position tables) and 4 SillaX seed-extension
 * lanes. The reference genome is processed segment by segment: each
 * segment's tables are streamed from DDR4 into on-chip SRAM, all
 * reads are seeded against the segment, SMEM hits become extension
 * jobs on the SillaX lanes, and the best alignment per read is kept
 * across segments and strands.
 *
 * alignAll() is simultaneously the functional aligner (producing
 * per-read Mappings that the tests check for concordance with the
 * software baseline) and the performance model (producing the cycle,
 * bandwidth, power and area estimates behind Figures 15/16 and
 * Table II).
 */

#ifndef GENAX_GENAX_SYSTEM_HH
#define GENAX_GENAX_SYSTEM_HH

#include <memory>
#include <vector>

#include "align/mapping.hh"
#include "genax/dram_model.hh"
#include "seed/segment.hh"
#include "seed/smem_engine.hh"
#include "sillax/lane.hh"
#include "sillax/tech_model.hh"
#include "swbase/anchor.hh"
#include "swbase/paired.hh"

namespace genax {

class IndexSnapshot;

/** GenAx architecture parameters (defaults per Figure 11). */
struct GenAxConfig
{
    u32 seedingLanes = 128;
    double seedingFreqGhz = 1.0;
    u32 sillaxLanes = 4;
    double sillaxFreqGhz = 2.0;
    u32 k = 12;          //!< seeding k-mer length
    u32 editBound = 40;  //!< SillaX K (Section VIII-A uses 40)
    u64 segmentCount = 512;
    u64 segmentOverlap = 256; //!< >= readLen + 2K so windows stay local
    SeedingConfig seeding;
    AnchorConfig anchors;
    Scoring scoring;
    DramConfig dram;
    u64 readBufferBytes = 16 * 1024;       //!< read staging buffer
    u64 referenceCacheBytes = 4 * 512 * 1024; //!< 4 x 512 KB
    /** Outstanding index-table lookups a seeding lane keeps in
     *  flight (the banked SRAM pipelines accesses). */
    u32 seedingIssueWidth = 4;
    /** Replace the closed-form seeding cycle model with the
     *  cycle-stepped banked-SRAM lane simulation (slower, models
     *  bank conflicts explicitly). */
    bool simulateSeedingLanes = false;
    u32 seedingSramBanks = 32;
    /**
     * Host worker threads for the per-segment read loop (0 = all
     * hardware threads). Purely a host-execution knob: lanes and
     * stats are sharded per worker and reduced as order-invariant
     * sums, so mappings, the perf report and the fault-injection
     * replay are identical at any width (see DESIGN.md).
     */
    unsigned threads = 1;
    /**
     * Optional opened index snapshot (seed/index_snapshot.hh); must
     * outlive the system. When set, each segment's seeding index is
     * a zero-copy view over the snapshot's on-disk tables instead of
     * a per-batch rebuild — a host-speed knob only: mappings, SAM
     * bytes and the modelled perf report are identical either way.
     * The snapshot's fingerprint and segmentation must match this
     * config and reference exactly (checked at construction). Under
     * the dense-index oracle build the snapshot is ignored and
     * indexes are rebuilt — output is identical by the SeedIndex
     * equivalence.
     */
    const IndexSnapshot *snapshot = nullptr;
};

/** Aggregate performance/energy report from one alignAll() pass. */
struct GenAxPerf
{
    u64 reads = 0;
    u64 segments = 0;
    u64 extensionJobs = 0;
    u64 exactReads = 0; //!< reads resolved by the exact-match path
                        //!< in at least one segment
    u64 degradedJobs = 0; //!< extension jobs served by the banded-
                          //!< Gotoh fallback instead of a lane
    u64 laneFaults = 0;   //!< lane issues refused (fault injection)
    u64 dramFaults = 0;   //!< DRAM streams degraded to the estimate

    double seedingSeconds = 0;
    double extensionSeconds = 0;
    double dramSeconds = 0;
    /** Sum over segments of max(dram, seeding, extension). */
    double totalSeconds = 0;

    SeedingStats seeding;
    LaneStats lanes; //!< aggregated over the SillaX lanes

    double
    readsPerSecond() const
    {
        return totalSeconds > 0
                   ? static_cast<double>(reads) / totalSeconds
                   : 0.0;
    }
};

/**
 * Host wall-clock spent per model phase during one streaming pass —
 * where the *simulator* spends its time, as opposed to GenAxPerf,
 * which reports the modelled accelerator's time. Extension seconds
 * are summed across worker shards, so on a multi-threaded run they
 * are CPU-seconds, not elapsed time. Profiling output only: the
 * values vary run to run and are never part of the modelled report
 * or any determinism contract.
 */
struct GenAxHostProfile
{
    /** Seeding-phase host time: the SMEM engine / anchor staging
     *  pass (CPU-seconds across shards) plus the cycle-stepped
     *  SeedingLaneSim when that mode is enabled. */
    double seedingSimSeconds = 0;
    double extensionSeconds = 0;  //!< SillaX lane kernel (CPU-seconds)
    double bookkeepingSeconds = 0; //!< everything else in the pass
    double totalSeconds = 0;       //!< batch + streamEnd wall-clock
};

/** Area/power breakdown in the shape of Table II. */
struct GenAxAreaPower
{
    double seedingLanesMm2 = 0;
    double sillaxLanesMm2 = 0;
    double sramMm2 = 0;
    double totalMm2 = 0;
    u64 sramBytes = 0;

    double seedingLanesW = 0;
    double sillaxLanesW = 0;
    double sramW = 0;
    double totalW = 0;
};

/** The full accelerator model. */
class GenAxSystem
{
  public:
    GenAxSystem(const Seq &ref, const GenAxConfig &cfg);
    ~GenAxSystem();

    /**
     * Align every read (both strands) against the whole genome,
     * segment by segment, and collect the performance model.
     */
    std::vector<Mapping> alignAll(const std::vector<Seq> &reads);

    /**
     * @name Streaming batch interface
     *
     * The streaming pipeline feeds reads in batches so peak host
     * memory stays O(batch) instead of O(dataset):
     *
     *     streamBegin();
     *     while ((batch = reader.nextBatch(n)), !batch.empty())
     *         emit(streamBatch(batch, base)), base += batch.size();
     *     streamEnd();
     *
     * The sequence is bit-identical to one alignAll() over the
     * concatenated reads — SAM bytes, the perf report's modelled
     * cycles/seconds, and armed fault-injection replay all match at
     * any batch size and any thread count. Two mechanisms make that
     * hold: per-segment accumulators (u64 stats and lane-cycle
     * deltas summed across batches, with the derived doubles
     * computed once per segment at streamEnd() in segment order),
     * and fault keys derived from the global read index
     * (base_read_index + r), never from batch-local positions. DRAM
     * table streams — whose fault site replays by per-site ordinal,
     * not by key — are deferred to streamEnd() and issued once per
     * segment in segment order, exactly as alignAll() issues them.
     *
     * alignAll()/alignAllCandidates() are themselves implemented as
     * a single-batch stream, so the equivalence is by construction.
     */
    ///@{

    /** Open a streaming pass: resets the perf report and allocates
     *  the per-segment accumulators. No stream may already be open. */
    void streamBegin();

    /**
     * Align one batch against every segment. `base_read_index` is
     * the number of reads already streamed (checked); it keys fault
     * injection so replay is batch-size-invariant. degradedReads()
     * holds this batch's flags until the next batch is streamed.
     */
    std::vector<Mapping> streamBatch(const std::vector<Seq> &reads,
                                     u64 base_read_index);

    /** Candidate-list form of streamBatch() (same contract). */
    std::vector<std::vector<Mapping>>
    streamBatchCandidates(const std::vector<Seq> &reads,
                          u64 base_read_index, u32 max_candidates = 16);

    /** Close the pass: issue the per-segment DRAM streams, finalize
     *  the modelled seconds and the lane-stat reductions into
     *  perf(). */
    void streamEnd();

    ///@}

    /**
     * Like alignAll() but return each read's distinct candidate
     * mappings (deduplicated by position/strand, sorted by
     * descending score) — the input the paired-end resolver needs.
     */
    std::vector<std::vector<Mapping>>
    alignAllCandidates(const std::vector<Seq> &reads,
                       u32 max_candidates = 16);

    /**
     * Paired-end alignment: the pairing stage (swbase/paired.hh)
     * applied downstream of the accelerator's candidate lists.
     */
    std::vector<PairMapping> alignPairs(const std::vector<Seq> &reads1,
                                        const std::vector<Seq> &reads2,
                                        const PairedConfig &pcfg = {});

    const GenAxPerf &perf() const { return _perf; }

    /** Host-time breakdown of the most recent pass (valid after
     *  streamEnd(); see GenAxHostProfile for what it is NOT). */
    const GenAxHostProfile &hostProfile() const { return _hostProfile; }

    const GenAxConfig &config() const { return _cfg; }
    const GenomeSegments &segments() const { return _segments; }

    /**
     * Per-read degradation flags of the most recent batch (for
     * alignAll / alignAllCandidates, the whole read set): flag r is
     * non-zero when at least one of read r's extension jobs fell
     * back to the software kernel (lane issue fault). The pipeline
     * drains these into its outcome ledger after each batch.
     */
    const std::vector<u8> &degradedReads() const { return _degraded; }

    /**
     * Area and power of a GenAx instance. SRAM is sized for the
     * given per-segment table footprints (pass the paper's human-
     * genome parameters to regenerate Table II).
     */
    static GenAxAreaPower areaPower(const GenAxConfig &cfg,
                                    u64 index_table_bytes,
                                    u64 position_table_bytes);

    /** Area/power for this instance's own segment sizing. */
    GenAxAreaPower areaPower() const;

    /**
     * Project the measured per-read/per-segment averages of a perf
     * report onto a different workload scale — e.g. the paper's
     * whole-genome run (787,265,109 reads, 3.08 Gbp reference, 512
     * segments) — keeping the same architecture configuration.
     */
    struct Projection
    {
        double seedingSeconds = 0;
        double extensionSeconds = 0;
        double dramSeconds = 0;
        double totalSeconds = 0;
        double readsPerSecond = 0;
    };
    static Projection project(const GenAxConfig &cfg,
                              const GenAxPerf &measured, u64 reads,
                              u64 read_len, u64 genome_len,
                              u64 segments);

  private:
    struct StreamState; //!< per-pass accumulators (system.cc)

    const Seq &_ref;
    GenAxConfig _cfg;
    GenomeSegments _segments;
    DramModel _dram;
    GenAxPerf _perf;
    GenAxHostProfile _hostProfile; //!< host time of the latest pass
    std::vector<u8> _degraded; //!< per-batch fallback flags
    std::unique_ptr<StreamState> _stream;
};

} // namespace genax

#endif // GENAX_GENAX_SYSTEM_HH
