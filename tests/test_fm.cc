/**
 * @file
 * Tests for the FM-index substrate: suffix array, backward search,
 * locate, and the FM-based SMEM seeder's exact agreement with the
 * hash-based SmemEngine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hh"
#include "seed/fm_index.hh"
#include "seed/fm_seeder.hh"
#include "seed/kmer_index.hh"
#include "seed/smem_engine.hh"

namespace genax {
namespace {

Seq
randomSeq(Rng &rng, size_t len, unsigned alphabet = 4)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(alphabet)));
    return s;
}

std::vector<u32>
occurrences(const Seq &ref, const Seq &pat)
{
    std::vector<u32> out;
    if (pat.empty() || pat.size() > ref.size())
        return out;
    for (size_t r = 0; r + pat.size() <= ref.size(); ++r) {
        if (std::equal(pat.begin(), pat.end(), ref.begin() + r))
            out.push_back(static_cast<u32>(r));
    }
    return out;
}

// ------------------------------------------------------ suffix array

TEST(SuffixArray, MatchesBruteForce)
{
    Rng rng(8000);
    for (int t = 0; t < 30; ++t) {
        const unsigned alphabet = t % 2 == 0 ? 2 : 4;
        Seq s = randomSeq(rng, 1 + rng.below(200), alphabet);
        if (t == 0)
            s = encode("AAAAAAA"); // all-equal degenerate case
        const auto sa = buildSuffixArray(s);
        ASSERT_EQ(sa.size(), s.size());
        // Brute force: sort suffix start indices lexicographically.
        std::vector<u32> expect(s.size());
        std::iota(expect.begin(), expect.end(), 0);
        std::sort(expect.begin(), expect.end(), [&](u32 a, u32 b) {
            return std::lexicographical_compare(
                s.begin() + a, s.end(), s.begin() + b, s.end());
        });
        EXPECT_EQ(sa, expect) << "t=" << t;
    }
}

// ---------------------------------------------------------- FM index

class FmIndexTest : public ::testing::TestWithParam<u32>
{};

TEST_P(FmIndexTest, CountAndLocateMatchBruteForce)
{
    const u32 rate = GetParam();
    Rng rng(8100 + rate);
    Seq ref = randomSeq(rng, 3000);
    // Splice in a repeat so multi-hit patterns exist.
    ref.insert(ref.end(), ref.begin() + 100, ref.begin() + 400);
    FmIndex index(ref, rate);

    for (int t = 0; t < 40; ++t) {
        const size_t plen = 1 + rng.below(30);
        const size_t pos = rng.below(ref.size() - plen);
        Seq pat(ref.begin() + static_cast<i64>(pos),
                ref.begin() + static_cast<i64>(pos + plen));
        if (t % 5 == 0)
            pat = randomSeq(rng, plen); // likely-absent pattern
        const auto expect = occurrences(ref, pat);
        EXPECT_EQ(index.count(pat), expect.size());

        FmIndex::Interval iv = index.all();
        for (auto it = pat.rbegin(); it != pat.rend(); ++it)
            iv = index.extend(iv, *it);
        const auto got = index.locate(iv, iv.size());
        ASSERT_EQ(got.size(), expect.size());
        EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin()));
    }
}

INSTANTIATE_TEST_SUITE_P(SampleRates, FmIndexTest,
                         ::testing::Values(1u, 4u, 8u, 16u));

TEST(FmIndex, EmptyPatternMatchesEverywhere)
{
    Rng rng(8200);
    const Seq ref = randomSeq(rng, 100);
    FmIndex index(ref);
    EXPECT_EQ(index.all().size(), 101u); // n + sentinel
    EXPECT_EQ(index.count(Seq{}), 101u);
}

TEST(FmIndex, TracksRankStatistics)
{
    Rng rng(8300);
    const Seq ref = randomSeq(rng, 1000);
    FmIndex index(ref);
    index.resetStats();
    index.count(randomSeq(rng, 20));
    EXPECT_GT(index.stats().rankCalls, 0u);
    EXPECT_LE(index.stats().rankCalls, 40u); // two per extension
}

TEST(FmIndex, FootprintReasonable)
{
    Rng rng(8400);
    const Seq ref = randomSeq(rng, 10000);
    FmIndex index(ref, 8);
    // ~1 byte BWT + ~0.7 bytes checkpoints + samples per char.
    EXPECT_GT(index.footprintBytes(), 10000u);
    EXPECT_LT(index.footprintBytes(), 10u * 10000u);
}

// ---------------------------------------------------------- FM seeder

TEST(FmSeeder, AgreesExactlyWithHashSmemEngine)
{
    Rng rng(8500);
    Seq ref = randomSeq(rng, 6000);
    ref.insert(ref.end(), ref.begin() + 500, ref.begin() + 900);

    const u32 k = 8;
    SeedIndex kindex(ref, k);
    SeedingConfig cfg;
    cfg.exactMatchFastPath = false;
    SmemEngine hash_engine(kindex, cfg);
    FmSeeder fm(ref, k);

    for (int t = 0; t < 25; ++t) {
        const u32 pos = static_cast<u32>(rng.below(ref.size() - 130));
        Seq read(ref.begin() + pos, ref.begin() + pos + 101);
        for (int e = 0; e < 3; ++e) {
            const u64 p = rng.below(read.size());
            read[p] = static_cast<Base>((read[p] + 1 + rng.below(3)) & 3);
        }
        const auto a = fm.seed(read);
        const auto b = hash_engine.seed(read);
        ASSERT_EQ(a.size(), b.size()) << "t=" << t;
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].qryBegin, b[i].qryBegin);
            EXPECT_EQ(a[i].qryEnd, b[i].qryEnd);
            EXPECT_EQ(a[i].positions, b[i].positions) << "smem " << i;
        }
    }
}

TEST(FmSeeder, AgreesWithHashEngineAtNonPowerOfTwoK)
{
    // Regression: with k = 12 the naive k/2, k/4, ... refinement
    // strides {6, 3, 1} cannot compose a +2 extension, making hash
    // RMEMs non-maximal. The FM seeder is the independent oracle
    // that caught it.
    Rng rng(8800);
    Seq ref = randomSeq(rng, 8000);
    ref.insert(ref.end(), ref.begin() + 700, ref.begin() + 1200);

    for (u32 k : {12u, 11u, 13u}) {
        SeedIndex kindex(ref, k);
        SeedingConfig cfg;
        cfg.exactMatchFastPath = false;
        SmemEngine hash_engine(kindex, cfg);
        FmSeeder fm(ref, k);
        for (int t = 0; t < 20; ++t) {
            const u32 pos =
                static_cast<u32>(rng.below(ref.size() - 130));
            Seq read(ref.begin() + pos, ref.begin() + pos + 101);
            for (int e = 0; e < 3; ++e) {
                const u64 p = rng.below(read.size());
                read[p] =
                    static_cast<Base>((read[p] + 1 + rng.below(3)) & 3);
            }
            const auto a = fm.seed(read);
            const auto b = hash_engine.seed(read);
            ASSERT_EQ(a.size(), b.size()) << "k=" << k << " t=" << t;
            for (size_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a[i].qryBegin, b[i].qryBegin);
                EXPECT_EQ(a[i].qryEnd, b[i].qryEnd) << "k=" << k;
                EXPECT_EQ(a[i].positions, b[i].positions);
            }
        }
    }
}

TEST(FmSeeder, RankChainIsTheLocalityBottleneck)
{
    // The paper's argument, measured: FM seeding performs an order
    // of magnitude more dependent random accesses than the hash
    // engine's k-mer lookups.
    Rng rng(8600);
    const Seq ref = randomSeq(rng, 20000);
    const u32 k = 10;
    SeedIndex kindex(ref, k);
    SeedingConfig cfg;
    cfg.exactMatchFastPath = false;
    SmemEngine hash_engine(kindex, cfg);
    FmSeeder fm(ref, k);

    u64 reads = 0;
    for (int t = 0; t < 10; ++t) {
        const u32 pos = static_cast<u32>(rng.below(ref.size() - 130));
        Seq read(ref.begin() + pos, ref.begin() + pos + 101);
        read[50] = static_cast<Base>((read[50] + 1) & 3);
        fm.seed(read);
        hash_engine.seed(read);
        ++reads;
    }
    const double fm_accesses =
        static_cast<double>(fm.stats().rankCalls +
                            fm.stats().locateSteps) /
        reads;
    const double hash_accesses =
        static_cast<double>(hash_engine.stats().indexLookups) / reads;
    EXPECT_GT(fm_accesses, 3.0 * hash_accesses);
}

TEST(FmSeeder, ShortReadYieldsNothing)
{
    Rng rng(8700);
    const Seq ref = randomSeq(rng, 1000);
    FmSeeder fm(ref, 12);
    EXPECT_TRUE(fm.seed(encode("ACGT")).empty());
}

} // namespace
} // namespace genax
