/**
 * @file
 * Tests for the GenAx system model: DRAM streaming, end-to-end
 * alignment accuracy, concordance with the software baseline
 * (mirroring the paper's BWA-MEM validation), and the Table II
 * area/power generator.
 */

#include <gtest/gtest.h>

#include <memory>

#include "genax/dram_model.hh"
#include "genax/system.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "swbase/bwamem_like.hh"

namespace genax {
namespace {

// --------------------------------------------------------------- DRAM

TEST(DramModel, BandwidthAndStreamTime)
{
    DramModel dram; // 8 x 19.2 GB/s, 85% efficient
    EXPECT_NEAR(dram.bandwidthBytesPerSec(), 8 * 19.2e9 * 0.85, 1e6);
    EXPECT_DOUBLE_EQ(dram.streamSeconds(0), 0.0);
    // 1 GB stream: startup + transfer.
    const double t = dram.streamSeconds(1'000'000'000);
    EXPECT_NEAR(t, 2e-6 + 1e9 / (8 * 19.2e9 * 0.85), 1e-6);
    // Time is monotone in bytes.
    EXPECT_LT(dram.streamSeconds(1000), dram.streamSeconds(100000));
}

TEST(DramModel, ConfigurableChannels)
{
    DramConfig cfg;
    cfg.channels = 2;
    DramModel dram(cfg);
    EXPECT_NEAR(dram.bandwidthBytesPerSec(), 2 * 19.2e9 * 0.85, 1e6);
}

// ------------------------------------------------------------- system

class GenAxSystemTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        RefGenConfig rcfg;
        rcfg.length = 200000;
        rcfg.seed = 11;
        ref = generateReference(rcfg);

        cfg.k = 10;
        cfg.editBound = 16;
        cfg.segmentCount = 8;
        cfg.segmentOverlap = 160; // >= readLen + 2K for local windows
        system = std::make_unique<GenAxSystem>(ref, cfg);

        ReadSimConfig rs;
        rs.numReads = 150;
        rs.seed = 21;
        sim = simulateReads(ref, rs);
        for (const auto &r : sim)
            reads.push_back(r.seq);
    }

    Seq ref;
    GenAxConfig cfg;
    std::unique_ptr<GenAxSystem> system;
    std::vector<SimRead> sim;
    std::vector<Seq> reads;
};

TEST_F(GenAxSystemTest, AlignsReadsNearTruth)
{
    const auto maps = system->alignAll(reads);
    ASSERT_EQ(maps.size(), reads.size());
    u64 correct = 0, mapped = 0;
    for (size_t i = 0; i < maps.size(); ++i) {
        if (!maps[i].mapped)
            continue;
        ++mapped;
        const i64 delta = static_cast<i64>(maps[i].pos) -
                          static_cast<i64>(sim[i].truthPos);
        if (maps[i].reverse == sim[i].reverse && std::abs(delta) <= 12)
            ++correct;
    }
    EXPECT_GT(static_cast<double>(mapped) / reads.size(), 0.98);
    EXPECT_GT(static_cast<double>(correct) / reads.size(), 0.95);
}

TEST_F(GenAxSystemTest, PerfModelPopulated)
{
    system->alignAll(reads);
    const GenAxPerf &p = system->perf();
    EXPECT_EQ(p.reads, reads.size());
    EXPECT_EQ(p.segments, 8u);
    EXPECT_GT(p.seedingSeconds, 0.0);
    EXPECT_GT(p.dramSeconds, 0.0);
    EXPECT_GT(p.totalSeconds, 0.0);
    // Sum-of-max is at least each individual total.
    EXPECT_GE(p.totalSeconds, p.dramSeconds - 1e-12);
    EXPECT_GT(p.readsPerSecond(), 0.0);
    // ~75% of default-simulated reads resolve via the exact path.
    const double exact_frac =
        static_cast<double>(p.exactReads) / p.reads;
    EXPECT_GT(exact_frac, 0.5);
    EXPECT_LT(exact_frac, 0.95);
    // Non-exact reads produced extension jobs on the lanes.
    EXPECT_GT(p.extensionJobs, 0u);
    EXPECT_EQ(p.lanes.jobs, p.extensionJobs);
}

TEST_F(GenAxSystemTest, ConcordantWithSoftwareBaseline)
{
    // The paper validates SillaX against BWA-MEM: identical scores,
    // negligible (0.0023%) alignment variance (Section VIII-A).
    const auto hw = system->alignAll(reads);

    AlignerConfig sw_cfg;
    sw_cfg.k = cfg.k;
    sw_cfg.band = cfg.editBound;
    BwaMemLike sw(ref, sw_cfg);
    const auto swm = sw.alignAll(reads);

    u64 same_score = 0, same_pos = 0, both_mapped = 0;
    for (size_t i = 0; i < hw.size(); ++i) {
        if (!hw[i].mapped || !swm[i].mapped)
            continue;
        ++both_mapped;
        same_score += hw[i].score == swm[i].score;
        same_pos += hw[i].pos == swm[i].pos &&
                    hw[i].reverse == swm[i].reverse;
    }
    ASSERT_GT(both_mapped, reads.size() * 9 / 10);
    EXPECT_GT(static_cast<double>(same_score) / both_mapped, 0.97);
    EXPECT_GT(static_cast<double>(same_pos) / both_mapped, 0.95);
}

TEST_F(GenAxSystemTest, MappingsCigarConsistency)
{
    const auto maps = system->alignAll(reads);
    for (size_t i = 0; i < maps.size(); ++i) {
        if (!maps[i].mapped)
            continue;
        EXPECT_EQ(maps[i].cigar.queryLen(), reads[i].size())
            << "read " << i << " cigar " << maps[i].cigar.str();
        const u64 ref_len = maps[i].cigar.refLen();
        EXPECT_LE(maps[i].pos + ref_len, ref.size());
    }
}

TEST_F(GenAxSystemTest, CandidatesSortedAndDeduped)
{
    const auto cands = system->alignAllCandidates(reads, 8);
    ASSERT_EQ(cands.size(), reads.size());
    for (const auto &c : cands) {
        EXPECT_LE(c.size(), 8u);
        for (size_t i = 1; i < c.size(); ++i) {
            EXPECT_GE(c[i - 1].score, c[i].score);
            EXPECT_FALSE(c[i - 1].pos == c[i].pos &&
                         c[i - 1].reverse == c[i].reverse)
                << "duplicate candidate";
        }
    }
}

TEST_F(GenAxSystemTest, PairedEndRescueThroughAccelerator)
{
    // Duplicate a block so a mate inside it is ambiguous alone; the
    // accelerator's candidates + the pairing stage must rescue it.
    Seq dup_ref = ref;
    const u64 src = 100000;
    dup_ref.insert(dup_ref.end(), ref.begin() + src,
                   ref.begin() + src + 150);
    GenAxConfig dcfg = cfg;
    GenAxSystem dup_system(dup_ref, dcfg);

    const Seq r2_inner(dup_ref.begin() + static_cast<i64>(src) + 20,
                       dup_ref.begin() + static_cast<i64>(src) + 121);
    const u64 frag_start = src + 141 - 300;
    const Seq r1_unique(dup_ref.begin() + static_cast<i64>(frag_start),
                        dup_ref.begin() +
                            static_cast<i64>(frag_start + 101));

    const auto pairs = dup_system.alignPairs(
        {r1_unique}, {reverseComplement(r2_inner)});
    ASSERT_EQ(pairs.size(), 1u);
    ASSERT_TRUE(pairs[0].r1.mapped);
    ASSERT_TRUE(pairs[0].r2.mapped);
    EXPECT_TRUE(pairs[0].proper);
    EXPECT_EQ(pairs[0].r2.pos, src + 20);
    EXPECT_GT(pairs[0].r2.mapq, 0);
}

// --------------------------------------------------- area and power

TEST(GenAxAreaPower, TableTwoAtPaperScale)
{
    // Paper parameters: k = 12 index (48 MB), 6 Mbp segment position
    // table (18 MB), 4 x 512 KB reference cache, 16 KB read buffer.
    GenAxConfig cfg; // defaults are the paper's architecture
    const u64 index_bytes = (u64{1} << 24) * 3;   // 50.3 MB
    const u64 pos_bytes = u64{6'100'000} * 3;     // 18.3 MB
    const auto ap = GenAxSystem::areaPower(cfg, index_bytes, pos_bytes);

    // Table II: 4.224 / 5.36 / 163.2 / 172.78 mm^2.
    EXPECT_NEAR(ap.seedingLanesMm2, 4.224, 0.001);
    EXPECT_NEAR(ap.sillaxLanesMm2, 5.36, 0.45);
    EXPECT_NEAR(ap.sramMm2, 163.2, 12.0);
    EXPECT_NEAR(ap.totalMm2, 172.78, 12.0);

    // Power lands near the ~12x-below-CPU point of Figure 15b.
    EXPECT_GT(ap.totalW, 8.0);
    EXPECT_LT(ap.totalW, 16.0);
}

TEST(GenAxAreaPower, ScalesWithLanes)
{
    GenAxConfig small, big;
    big.sillaxLanes = 8;
    big.seedingLanes = 256;
    const auto a = GenAxSystem::areaPower(small, 1 << 20, 1 << 20);
    const auto b = GenAxSystem::areaPower(big, 1 << 20, 1 << 20);
    EXPECT_NEAR(b.sillaxLanesMm2, 2 * a.sillaxLanesMm2, 1e-9);
    EXPECT_NEAR(b.seedingLanesW, 2 * a.seedingLanesW, 1e-9);
}

} // namespace
} // namespace genax
