/**
 * @file
 * Tests for the software baseline: anchor generation, bidirectional
 * seed extension and the BWA-MEM-like whole-genome aligner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>

#include "common/rng.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "swbase/bwamem_like.hh"

namespace genax {
namespace {

Seq
randomSeq(Rng &rng, size_t len)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(4)));
    return s;
}

// ------------------------------------------------------------ anchors

TEST(Anchors, DedupByDiagonalAndCap)
{
    std::vector<Smem> smems;
    Smem a;
    a.qryBegin = 0;
    a.qryEnd = 20;
    a.positions = {100, 200, 300};
    smems.push_back(a);
    Smem b; // same diagonals shifted: 110 - 10 == 100 - 0
    b.qryBegin = 10;
    b.qryEnd = 35;
    b.positions = {110, 400};
    smems.push_back(b);

    AnchorConfig cfg;
    const auto anchors = makeAnchors(smems, 0, false, cfg);
    // 100/200/300 from the first smem; 110 dedups onto diagonal 100;
    // 400 - 10 = 390 is new.
    ASSERT_EQ(anchors.size(), 4u);
    // Longer seeds come first.
    EXPECT_EQ(anchors[0].seedLen(), 25u);

    AnchorConfig capped;
    capped.maxAnchors = 2;
    EXPECT_EQ(makeAnchors(smems, 0, false, capped).size(), 2u);
}

TEST(Anchors, DropsUltraRepetitiveSeeds)
{
    Smem s;
    s.qryBegin = 0;
    s.qryEnd = 15;
    s.positions.resize(1000);
    for (u32 i = 0; i < 1000; ++i)
        s.positions[i] = i * 7;
    AnchorConfig cfg;
    cfg.maxHitsPerSmem = 256;
    EXPECT_TRUE(makeAnchors({s}, 0, false, cfg).empty());
}

TEST(Anchors, SegmentStartShiftsToGlobal)
{
    Smem s;
    s.qryBegin = 5;
    s.qryEnd = 25;
    s.positions = {50};
    const auto anchors = makeAnchors({s}, 10000, true, {});
    ASSERT_EQ(anchors.size(), 1u);
    EXPECT_EQ(anchors[0].refPos, 10050u);
    EXPECT_TRUE(anchors[0].reverse);
}

// ----------------------------------------------------- extendAnchor

class ExtendAnchorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Rng rng(800);
        ref = randomSeq(rng, 2000);
        sc = Scoring{};
        kernel = [this](const PackedSeq &rw, const Seq &q) {
            return gotohExtendKernel(rw, q, sc, 16);
        };
    }

    Seq ref;
    Scoring sc;
    ExtendFn kernel;
};

TEST_F(ExtendAnchorTest, ExactReadFullSeed)
{
    const Seq read(ref.begin() + 500, ref.begin() + 601);
    Anchor a{0, 101, 500, false};
    const auto m = extendAnchor(ref, read, a, sc, 16, kernel);
    EXPECT_TRUE(m.mapped);
    EXPECT_EQ(m.pos, 500u);
    EXPECT_EQ(m.score, 101);
    EXPECT_EQ(m.cigar.str(), "101=");
}

TEST_F(ExtendAnchorTest, SnpOnEachSideOfSeed)
{
    Seq read(ref.begin() + 500, ref.begin() + 601);
    read[10] = static_cast<Base>((read[10] + 1) & 3);
    read[90] = static_cast<Base>((read[90] + 1) & 3);
    // Seed covers the clean middle.
    Anchor a{30, 60, 530, false};
    const auto m = extendAnchor(ref, read, a, sc, 16, kernel);
    EXPECT_EQ(m.pos, 500u);
    EXPECT_EQ(m.score, 99 - 2 * 4);
    EXPECT_EQ(m.cigar.queryLen(), 101u);
    EXPECT_EQ(m.cigar.editDistance(), 2u);
}

TEST_F(ExtendAnchorTest, DeletionLeftOfSeed)
{
    // Read skips 3 reference bases before the seed region.
    Seq read;
    read.reserve(101);
    std::copy(ref.begin() + 500, ref.begin() + 540,  // 40 bases
              std::back_inserter(read));
    std::copy(ref.begin() + 543, ref.begin() + 604,
              std::back_inserter(read));
    ASSERT_EQ(read.size(), 101u);
    Anchor a{60, 101, 563, false}; // seed inside the right part
    const auto m = extendAnchor(ref, read, a, sc, 16, kernel);
    EXPECT_EQ(m.pos, 500u);
    EXPECT_EQ(m.score, 101 - (6 + 3));
    EXPECT_EQ(m.cigar.editDistance(), 3u);
    EXPECT_EQ(m.cigar.refLen(), 104u);
}

TEST_F(ExtendAnchorTest, ClipsAtReferenceStart)
{
    // Read hangs off the reference start: head must be soft-clipped.
    Rng head_rng(801);
    Seq read = randomSeq(head_rng, 20); // junk head
    read.insert(read.end(), ref.begin(), ref.begin() + 81);
    Anchor a{20, 101, 0, false};
    const auto m = extendAnchor(ref, read, a, sc, 16, kernel);
    EXPECT_EQ(m.pos, 0u);
    ASSERT_FALSE(m.cigar.elems().empty());
    EXPECT_EQ(m.cigar.elems()[0].op, CigarOp::SoftClip);
    EXPECT_EQ(m.cigar.elems()[0].len, 20u);
    EXPECT_EQ(m.score, 81);
}

// ------------------------------------------------------- BwaMemLike

class BwaMemLikeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        RefGenConfig rcfg;
        rcfg.length = 300000;
        rcfg.seed = 9;
        ref = generateReference(rcfg);
        cfg.k = 11;
        cfg.band = 16;
        aligner = std::make_unique<BwaMemLike>(ref, cfg);
    }

    Seq ref;
    AlignerConfig cfg;
    std::unique_ptr<BwaMemLike> aligner;
};

TEST_F(BwaMemLikeTest, ErrorFreeReadsMapExactly)
{
    ReadSimConfig rs;
    rs.numReads = 100;
    rs.snpRate = 0;
    rs.donorIndelRate = 0;
    rs.baseErrorRate = 0;
    rs.readIndelRate = 0;
    rs.sampleReverse = false;
    const auto reads = simulateReads(ref, rs);
    for (const auto &r : reads) {
        const auto m = aligner->alignRead(r.seq);
        ASSERT_TRUE(m.mapped) << r.name;
        EXPECT_EQ(m.score, 101);
        EXPECT_FALSE(m.reverse);
        // Repeats can yield a different-but-equal placement; the
        // score and cigar must still be perfect.
        EXPECT_EQ(m.cigar.str(), "101=");
    }
}

TEST_F(BwaMemLikeTest, MutatedReadsMapNearTruth)
{
    ReadSimConfig rs;
    rs.numReads = 200;
    const auto reads = simulateReads(ref, rs);
    u64 correct = 0;
    for (const auto &r : reads) {
        const auto m = aligner->alignRead(r.seq);
        if (!m.mapped)
            continue;
        const i64 delta = static_cast<i64>(m.pos) -
                          static_cast<i64>(r.truthPos);
        if (m.reverse == r.reverse && std::abs(delta) <= 12)
            ++correct;
    }
    EXPECT_GT(static_cast<double>(correct) / reads.size(), 0.95);
}

TEST_F(BwaMemLikeTest, ReverseStrandRecovered)
{
    ReadSimConfig rs;
    rs.numReads = 60;
    rs.snpRate = 0;
    rs.donorIndelRate = 0;
    rs.baseErrorRate = 0;
    rs.readIndelRate = 0;
    const auto reads = simulateReads(ref, rs);
    bool saw_reverse = false;
    for (const auto &r : reads) {
        const auto m = aligner->alignRead(r.seq);
        ASSERT_TRUE(m.mapped);
        EXPECT_EQ(m.reverse, r.reverse);
        EXPECT_EQ(m.score, 101);
        saw_reverse |= r.reverse;
    }
    EXPECT_TRUE(saw_reverse);
}

TEST_F(BwaMemLikeTest, GarbageReadIsUnmapped)
{
    // A read over a 2-letter alphabet pattern absent from the
    // reference is exceedingly unlikely to seed.
    Seq junk;
    for (int i = 0; i < 101; ++i)
        junk.push_back(i % 2 == 0 ? kBaseA : kBaseC);
    const auto m = aligner->alignRead(junk);
    // Either unmapped or a weak partial alignment.
    if (m.mapped) {
        EXPECT_LT(m.score, 60);
    }
}

TEST_F(BwaMemLikeTest, MultithreadedMatchesSingleThreaded)
{
    ReadSimConfig rs;
    rs.numReads = 80;
    const auto sim = simulateReads(ref, rs);
    std::vector<Seq> reads;
    for (const auto &r : sim)
        reads.push_back(r.seq);

    const auto single = aligner->alignAll(reads);
    AlignerConfig mt_cfg = cfg;
    mt_cfg.threads = 4;
    BwaMemLike mt(ref, mt_cfg);
    const auto multi = mt.alignAll(reads);
    ASSERT_EQ(single.size(), multi.size());
    for (size_t i = 0; i < single.size(); ++i) {
        EXPECT_EQ(single[i].mapped, multi[i].mapped);
        EXPECT_EQ(single[i].pos, multi[i].pos);
        EXPECT_EQ(single[i].score, multi[i].score);
        EXPECT_EQ(single[i].cigar.str(), multi[i].cigar.str());
    }
}

TEST_F(BwaMemLikeTest, MapqReflectsUniqueness)
{
    // A read from a unique region has high MAPQ.
    const Seq unique(ref.begin() + 12345, ref.begin() + 12446);
    const auto m = aligner->alignRead(unique);
    ASSERT_TRUE(m.mapped);
    EXPECT_GT(m.mapq, 20);

    // An artificial exact repeat gives MAPQ 0.
    Seq dup_ref = ref;
    dup_ref.insert(dup_ref.end(), ref.begin() + 50000,
                   ref.begin() + 50500);
    BwaMemLike dup_aligner(dup_ref, cfg);
    const Seq rep(ref.begin() + 50100, ref.begin() + 50201);
    const auto dm = dup_aligner.alignRead(rep);
    ASSERT_TRUE(dm.mapped);
    EXPECT_EQ(dm.mapq, 0);
}

} // namespace
} // namespace genax
