/**
 * @file
 * Integration tests for the file-to-file pipeline: multi-contig
 * coordinate mapping, SAM emission, both engines, and a real
 * FASTA/FASTQ/SAM round trip through the filesystem.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "genax/pipeline.hh"
#include "io/sam.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "silla/silla.hh"

namespace genax {
namespace {

std::vector<FastaRecord>
twoContigReference(u64 len_a, u64 len_b, u64 seed)
{
    RefGenConfig cfg;
    cfg.length = len_a;
    cfg.seed = seed;
    std::vector<FastaRecord> ref;
    ref.push_back({"chrA", generateReference(cfg)});
    cfg.length = len_b;
    cfg.seed = seed + 1;
    ref.push_back({"chrB", generateReference(cfg)});
    return ref;
}

TEST(ContigMap, LocateMapsAcrossContigs)
{
    std::vector<FastaRecord> ref;
    ref.push_back({"a", encode("ACGTACGT")}); // [0, 8)
    ref.push_back({"b", encode("TTTT")});     // [8, 12)
    ref.push_back({"c", encode("GG")});       // [12, 14)
    const ContigMap map(ref);
    EXPECT_EQ(map.sequence().size(), 14u);

    EXPECT_EQ(map.locate(0), (std::pair<size_t, u64>{0, 0}));
    EXPECT_EQ(map.locate(7), (std::pair<size_t, u64>{0, 7}));
    EXPECT_EQ(map.locate(8), (std::pair<size_t, u64>{1, 0}));
    EXPECT_EQ(map.locate(11), (std::pair<size_t, u64>{1, 3}));
    EXPECT_EQ(map.locate(12), (std::pair<size_t, u64>{2, 0}));
    EXPECT_EQ(map.locate(13), (std::pair<size_t, u64>{2, 1}));
}

TEST(Pipeline, MultiContigReadsLandOnTheRightContig)
{
    const auto ref = twoContigReference(60000, 40000, 77);

    // Error-free reads with known contig/position.
    std::vector<FastqRecord> reads;
    std::vector<std::pair<std::string, u64>> truth;
    Rng rng(5);
    for (int i = 0; i < 40; ++i) {
        const bool on_b = i % 2 == 1;
        const Seq &contig = ref[on_b ? 1 : 0].seq;
        const u64 pos = rng.below(contig.size() - 101);
        FastqRecord rec;
        rec.name = "r";
        rec.name += std::to_string(i);
        rec.seq = Seq(contig.begin() + static_cast<i64>(pos),
                      contig.begin() + static_cast<i64>(pos + 101));
        rec.qual.assign(101, 35);
        reads.push_back(std::move(rec));
        truth.emplace_back(on_b ? "chrB" : "chrA", pos);
    }

    PipelineOptions opts;
    opts.k = 11;
    opts.band = 16;
    opts.segments = 4;
    std::ostringstream sam;
    const auto status_or_res = alignToSam(ref, reads, sam, opts);
    ASSERT_TRUE(status_or_res.ok());
    const PipelineResult &res = *status_or_res;
    EXPECT_EQ(res.reads, reads.size());
    EXPECT_EQ(res.mapped, reads.size());
    EXPECT_TRUE(res.ledgerBalanced());
    EXPECT_EQ(res.degraded, 0u);
    EXPECT_EQ(res.failed, 0u);

    // Check every alignment line against the truth.
    std::istringstream in(sam.str());
    std::string line;
    size_t idx = 0;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '@')
            continue;
        std::istringstream fields(line);
        std::string qname, flag, rname, pos;
        fields >> qname >> flag >> rname >> pos;
        ASSERT_LT(idx, truth.size());
        EXPECT_EQ(qname, "r" + std::to_string(idx));
        EXPECT_EQ(rname, truth[idx].first) << qname;
        EXPECT_EQ(static_cast<u64>(std::stoull(pos)),
                  truth[idx].second + 1) // SAM is 1-based
            << qname;
        ++idx;
    }
    EXPECT_EQ(idx, reads.size());
}

TEST(Pipeline, BothEnginesProduceSameMappedCount)
{
    const auto ref = twoContigReference(50000, 30000, 99);
    ContigMap map(ref);

    ReadSimConfig rs;
    rs.numReads = 60;
    rs.seed = 6;
    const auto sim = simulateReads(map.sequence(), rs);
    std::vector<FastqRecord> reads;
    for (const auto &r : sim)
        reads.push_back({r.name, r.seq, r.qual});

    PipelineOptions hw;
    hw.k = 11;
    hw.band = 16;
    hw.segments = 4;
    PipelineOptions sw = hw;
    sw.engine = PipelineOptions::Engine::Software;

    std::ostringstream hw_sam, sw_sam;
    const auto hw_res = alignToSam(ref, reads, hw_sam, hw);
    const auto sw_res = alignToSam(ref, reads, sw_sam, sw);
    ASSERT_TRUE(hw_res.ok());
    ASSERT_TRUE(sw_res.ok());
    EXPECT_EQ(hw_res->mapped, sw_res->mapped);
    EXPECT_GT(hw_res->mapped, reads.size() * 9 / 10);
    // With no faults armed, nothing degrades on either engine.
    EXPECT_EQ(hw_res->degraded, 0u);
    EXPECT_EQ(sw_res->degraded, 0u);
    // GenAx engine populates the hardware perf model.
    EXPECT_GT(hw_res->perf.totalSeconds, 0.0);
}

TEST(Pipeline, FileRoundTrip)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "genax_pipeline_test";
    fs::create_directories(dir);
    const std::string ref_path = (dir / "ref.fa").string();
    const std::string reads_path = (dir / "reads.fq").string();
    const std::string sam_path = (dir / "out.sam").string();

    const auto ref = twoContigReference(30000, 20000, 123);
    {
        std::ofstream out(ref_path);
        ASSERT_TRUE(writeFasta(out, ref).ok());
    }
    ContigMap map(ref);
    ReadSimConfig rs;
    rs.numReads = 30;
    rs.seed = 8;
    const auto sim = simulateReads(map.sequence(), rs);
    {
        std::vector<FastqRecord> reads;
        for (const auto &r : sim)
            reads.push_back({r.name, r.seq, r.qual});
        std::ofstream out(reads_path);
        ASSERT_TRUE(writeFastq(out, reads).ok());
    }

    PipelineOptions opts;
    opts.k = 11;
    opts.band = 16;
    opts.segments = 4;
    const auto status_or_res =
        alignFiles(ref_path, reads_path, sam_path, opts);
    ASSERT_TRUE(status_or_res.ok());
    const PipelineResult &res = *status_or_res;
    EXPECT_EQ(res.reads, 30u);
    EXPECT_GT(res.mapped, 26u);
    EXPECT_TRUE(res.ledgerBalanced());
    EXPECT_EQ(res.skippedMalformed, 0u);

    // The SAM file exists, has the header and one line per read.
    std::ifstream in(sam_path);
    ASSERT_TRUE(in.good());
    std::string line;
    u64 headers = 0, records = 0;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] == '@')
            ++headers;
        else if (!line.empty())
            ++records;
    }
    EXPECT_EQ(headers, 2u + 2u); // @HD, 2x @SQ, @PG
    EXPECT_EQ(records, 30u);

    fs::remove_all(dir);
}

TEST(Pipeline, PairedEndSamFlagsAndTlen)
{
    const auto ref = twoContigReference(80000, 40000, 777);
    ContigMap map(ref);

    ReadSimConfig rs;
    rs.numReads = 25;
    rs.seed = 9;
    const auto pairs = simulatePairs(map.sequence(), rs);
    std::vector<FastqRecord> r1, r2;
    for (const auto &p : pairs) {
        r1.push_back({p.r1.name, p.r1.seq, p.r1.qual});
        r2.push_back({p.r2.name, p.r2.seq, p.r2.qual});
    }

    PipelineOptions opts;
    opts.k = 11;
    opts.band = 16;
    std::ostringstream sam;
    const auto status_or_res = alignPairsToSam(ref, r1, r2, sam, opts);
    ASSERT_TRUE(status_or_res.ok());
    const PipelineResult &res = *status_or_res;
    EXPECT_EQ(res.reads, 50u);
    EXPECT_GE(res.mapped, 48u);
    EXPECT_TRUE(res.ledgerBalanced());

    std::istringstream in(sam.str());
    std::string line;
    u64 records = 0, proper = 0;
    i64 tlen_sum = 0;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '@')
            continue;
        ++records;
        std::istringstream fields(line);
        std::string f[11];
        for (auto &s : f)
            fields >> s;
        const u16 flag = static_cast<u16>(std::stoi(f[1]));
        EXPECT_TRUE(flag & kSamPaired);
        EXPECT_TRUE((flag & kSamRead1) || (flag & kSamRead2));
        if (flag & kSamProperPair) {
            ++proper;
            const i64 tlen = std::stoll(f[8]);
            EXPECT_NE(tlen, 0);
            if (tlen > 0)
                tlen_sum += tlen;
            // Proper mates share a contig: RNEXT is "=".
            EXPECT_EQ(f[6], "=");
        }
    }
    EXPECT_EQ(records, 50u);
    EXPECT_GT(proper, 40u);
    // Mean positive template length tracks the simulated insert.
    EXPECT_NEAR(static_cast<double>(tlen_sum) /
                    static_cast<double>(proper / 2),
                300.0, 60.0);
}

TEST(Pipeline, EmptyReferenceIsInvalidInput)
{
    std::ostringstream sam;
    const auto res = alignToSam({}, {}, sam, PipelineOptions{});
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::InvalidInput);
}

TEST(Pipeline, MateCountMismatchIsInvalidInput)
{
    const auto ref = twoContigReference(20000, 10000, 13);
    std::vector<FastqRecord> r1{{"a", encode("ACGTACGTACGT"), {}}};
    std::ostringstream sam;
    const auto res =
        alignPairsToSam(ref, r1, {}, sam, PipelineOptions{});
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::InvalidInput);
}

TEST(Pipeline, OversizedBandDegradesToSoftwareEngine)
{
    const auto ref = twoContigReference(30000, 20000, 55);
    ContigMap map(ref);
    ReadSimConfig rs;
    rs.numReads = 12;
    rs.seed = 21;
    const auto sim = simulateReads(map.sequence(), rs);
    std::vector<FastqRecord> reads;
    for (const auto &r : sim)
        reads.push_back({r.name, r.seq, r.qual});

    PipelineOptions opts;
    opts.k = 11;
    opts.band = kMaxSillaK + 1; // beyond what a SillaX lane supports
    std::ostringstream sam;
    const auto res = alignToSam(ref, reads, sam, opts);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->softwareFallback);
    EXPECT_TRUE(res->ledgerBalanced());
    // Every mapped read is accounted as degraded, not mapped.
    EXPECT_EQ(res->mapped, 0u);
    EXPECT_GT(res->degraded, reads.size() * 9 / 10);
}

TEST(Pipeline, MalformedReadsAreSkippedAndLedgered)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "genax_pipeline_malformed";
    fs::create_directories(dir);
    const std::string ref_path = (dir / "ref.fa").string();
    const std::string reads_path = (dir / "reads.fq").string();
    const std::string sam_path = (dir / "out.sam").string();

    const auto ref = twoContigReference(30000, 20000, 42);
    {
        std::ofstream out(ref_path);
        ASSERT_TRUE(writeFasta(out, ref).ok());
    }
    ContigMap map(ref);
    ReadSimConfig rs;
    rs.numReads = 10;
    rs.seed = 31;
    const auto sim = simulateReads(map.sequence(), rs);
    {
        std::vector<FastqRecord> reads;
        for (const auto &r : sim)
            reads.push_back({r.name, r.seq, r.qual});
        std::ofstream out(reads_path);
        ASSERT_TRUE(writeFastq(out, reads).ok());
        // Append two malformed records: a quality-length mismatch and
        // a record truncated at EOF.
        out << "@mismatch\nACGTACGT\n+\nIII\n";
        out << "@truncated\nACGT\n";
    }

    PipelineOptions opts;
    opts.k = 11;
    opts.band = 16;
    opts.segments = 4;
    const auto res = alignFiles(ref_path, reads_path, sam_path, opts);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->reads, 12u);
    EXPECT_EQ(res->skippedMalformed, 2u);
    EXPECT_TRUE(res->ledgerBalanced());
    EXPECT_EQ(res->readInput.errors.size(), 2u);

    fs::remove_all(dir);
}

TEST(Pipeline, ReverseReadsQualityIsReversed)
{
    const auto ref = twoContigReference(30000, 10000, 321);
    ContigMap map(ref);
    // One reverse-strand error-free read with a ramp quality string.
    const Seq frag(map.sequence().begin() + 5000,
                   map.sequence().begin() + 5101);
    FastqRecord rec;
    rec.name = "rev1";
    rec.seq = reverseComplement(frag);
    for (int i = 0; i < 101; ++i)
        rec.qual.push_back(static_cast<u8>(i % 40));

    PipelineOptions opts;
    opts.k = 11;
    opts.band = 16;
    opts.segments = 2;
    std::ostringstream sam;
    ASSERT_TRUE(alignToSam(ref, {rec}, sam, opts).ok());

    std::istringstream in(sam.str());
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '@')
            continue;
        std::istringstream fields(line);
        std::string f[11];
        for (auto &s : f)
            fields >> s;
        EXPECT_EQ(f[1], "16"); // reverse flag
        // Sequence is stored reverse-complemented (reference
        // orientation), quality reversed accordingly.
        EXPECT_EQ(f[9], decode(frag));
        EXPECT_EQ(f[10].front(), static_cast<char>((100 % 40) + 33));
    }
}

} // namespace
} // namespace genax
