/**
 * @file
 * SIMD kernel subsystem tests: dispatch-tier selection and forcing,
 * and bit-identity of every vectorized kernel against its scalar
 * reference oracle across all tiers the host supports — randomized
 * fuzz plus the adversarial shapes called out in the kernel
 * contracts (overflow-forcing high-identity reads, gate-busting
 * scoring schemes, degenerate N-dense windows, empty and 1-bp
 * sequences).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "align/gotoh.hh"
#include "align/myers.hh"
#include "align/simd/batch_score.hh"
#include "align/simd/dispatch.hh"
#include "align/simd/myers_batch.hh"
#include "align/simd/striped.hh"
#include "common/rng.hh"

namespace genax {
namespace {

using simd::ExtendJob;
using simd::KernelTier;
using simd::MyersJob;

/** Clears any forced tier when a test scope ends. */
struct TierGuard
{
    ~TierGuard() { simd::clearKernelTierOverride(); }
};

std::vector<KernelTier>
supportedTiers()
{
    std::vector<KernelTier> out;
    for (KernelTier t : {KernelTier::Scalar, KernelTier::Sse41,
                         KernelTier::Avx2}) {
        if (simd::kernelTierSupported(t))
            out.push_back(t);
    }
    return out;
}

Seq
randomSeq(Rng &rng, size_t len)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(4)));
    return s;
}

/** Copy with a few random substitutions/indels (high identity). */
Seq
mutate(Rng &rng, const Seq &src, unsigned edits)
{
    Seq s = src;
    for (unsigned e = 0; e < edits && !s.empty(); ++e) {
        const size_t pos = rng.below(s.size());
        switch (rng.below(3)) {
          case 0:
            s[pos] = static_cast<Base>(rng.below(4));
            break;
          case 1:
            s.insert(s.begin() + static_cast<std::ptrdiff_t>(pos),
                     static_cast<Base>(rng.below(4)));
            break;
          default:
            s.erase(s.begin() + static_cast<std::ptrdiff_t>(pos));
            break;
        }
    }
    return s;
}

// ---------------------------------------------------------------------
// Dispatch.

TEST(SimdDispatch, TierNamesRoundTrip)
{
    EXPECT_STREQ(simd::kernelTierName(KernelTier::Scalar), "scalar");
    EXPECT_STREQ(simd::kernelTierName(KernelTier::Sse41), "sse41");
    EXPECT_STREQ(simd::kernelTierName(KernelTier::Avx2), "avx2");
}

TEST(SimdDispatch, ScalarAlwaysSupported)
{
    EXPECT_TRUE(simd::kernelTierCompiled(KernelTier::Scalar));
    EXPECT_TRUE(simd::kernelTierSupported(KernelTier::Scalar));
}

TEST(SimdDispatch, ForceAndClear)
{
    TierGuard guard;
    for (KernelTier t : supportedTiers()) {
        ASSERT_TRUE(simd::setKernelTier(t).ok());
        EXPECT_EQ(simd::activeKernelTier(), t);
    }
    simd::clearKernelTierOverride();
    EXPECT_EQ(simd::activeKernelTier(), simd::detectKernelTier());
}

TEST(SimdDispatch, ByNameParsesAndRejects)
{
    TierGuard guard;
    ASSERT_TRUE(simd::setKernelTierByName("scalar").ok());
    EXPECT_EQ(simd::activeKernelTier(), KernelTier::Scalar);
    ASSERT_TRUE(simd::setKernelTierByName("auto").ok());
    EXPECT_EQ(simd::activeKernelTier(), simd::detectKernelTier());

    const Status bad = simd::setKernelTierByName("avx512");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), StatusCode::InvalidInput);
}

TEST(SimdDispatch, EnvForcesScalarDetection)
{
    TierGuard guard;
    ASSERT_EQ(setenv("GENAX_FORCE_SCALAR", "1", 1), 0);
    EXPECT_EQ(simd::detectKernelTier(), KernelTier::Scalar);
    EXPECT_EQ(simd::activeKernelTier(), KernelTier::Scalar);
    // "0" and empty mean not forced.
    ASSERT_EQ(setenv("GENAX_FORCE_SCALAR", "0", 1), 0);
    const KernelTier t0 = simd::detectKernelTier();
    ASSERT_EQ(unsetenv("GENAX_FORCE_SCALAR"), 0);
    EXPECT_EQ(simd::detectKernelTier(), t0);
}

// ---------------------------------------------------------------------
// Banded Extend batch vs gotohBandedExtendScore.

void
expectBatchMatchesScalar(const std::vector<PackedSeq> &refs,
                         const std::vector<Seq> &qrys, const Scoring &sc,
                         u32 band)
{
    ASSERT_EQ(refs.size(), qrys.size());
    std::vector<ExtendJob> jobs(refs.size());
    for (size_t i = 0; i < refs.size(); ++i)
        jobs[i] = {&refs[i], &qrys[i]};

    std::vector<BandedExtendScore> want(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        want[i] = gotohBandedExtendScore(refs[i], qrys[i], sc, band);

    TierGuard guard;
    for (KernelTier t : supportedTiers()) {
        ASSERT_TRUE(simd::setKernelTier(t).ok());
        const auto got = simd::scoreCandidateBatch(jobs, sc, band);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i].score, want[i].score)
                << "tier=" << simd::kernelTierName(t) << " job=" << i;
            EXPECT_EQ(got[i].refEnd, want[i].refEnd)
                << "tier=" << simd::kernelTierName(t) << " job=" << i;
            EXPECT_EQ(got[i].qryEnd, want[i].qryEnd)
                << "tier=" << simd::kernelTierName(t) << " job=" << i;
        }
    }
}

TEST(SimdBatchScore, RandomizedFuzzAllTiers)
{
    Rng rng(20240806);
    for (u32 band : {4u, 8u, 16u, 32u}) {
        for (int round = 0; round < 6; ++round) {
            std::vector<PackedSeq> refs;
            std::vector<Seq> qrys;
            for (int i = 0; i < 41; ++i) {
                const size_t qlen = rng.below(140);
                Seq q = randomSeq(rng, qlen);
                // Mix related and unrelated windows.
                Seq r = rng.chance(0.5) ? mutate(rng, q, 4)
                                        : randomSeq(rng, rng.below(200));
                refs.emplace_back(r);
                qrys.push_back(std::move(q));
            }
            expectBatchMatchesScalar(refs, qrys, Scoring{}, band);
        }
    }
}

TEST(SimdBatchScore, AdversarialShapes)
{
    Rng rng(7);
    std::vector<PackedSeq> refs;
    std::vector<Seq> qrys;
    auto add = [&](Seq r, Seq q) {
        refs.emplace_back(r);
        qrys.push_back(std::move(q));
    };
    add({}, {});                                 // both empty
    add({}, randomSeq(rng, 30));                 // empty window
    add(randomSeq(rng, 30), {});                 // empty query
    add({kBaseA}, {kBaseA});                     // 1 bp each
    add({kBaseC}, {kBaseG});                     // 1 bp mismatch
    add(Seq(120, kBaseA), Seq(100, kBaseA));     // N-dense (N -> A)
    add(Seq(3, kBaseT), Seq(90, kBaseT));        // query >> window
    // High-identity long pair: every cell on the diagonal is a max
    // candidate, stressing the tie-break replication.
    const Seq base = randomSeq(rng, 1000);
    add(base, mutate(rng, base, 3));
    expectBatchMatchesScalar(refs, qrys, Scoring{}, 16);
}

TEST(SimdBatchScore, ScoringVariantsIncludingGateBusters)
{
    Rng rng(99);
    std::vector<PackedSeq> refs;
    std::vector<Seq> qrys;
    for (int i = 0; i < 17; ++i) {
        const Seq q = randomSeq(rng, 60 + rng.below(60));
        refs.emplace_back(mutate(rng, q, 5));
        qrys.push_back(q);
    }
    // Long high-identity read that overflows the 16-bit value gate
    // (m * match > 12000) and must take the scalar re-run path.
    {
        const Seq q = randomSeq(rng, 900);
        refs.emplace_back(mutate(rng, q, 4));
        qrys.push_back(q);
    }

    const Scoring schemes[] = {
        Scoring{},                  // BWA-MEM defaults
        Scoring::unitEdit(),        // {0, 1, 0, 1}
        Scoring{2, 3, 5, 2},
        Scoring{1000, 4000, 4000, 1000}, // busts the product gate
        Scoring{5000, 1, 1, 1},          // busts the param gate
    };
    for (const Scoring &sc : schemes)
        expectBatchMatchesScalar(refs, qrys, sc, 8);
}

TEST(SimdBatchScore, LongJobsBustLengthGate)
{
    Rng rng(11);
    std::vector<PackedSeq> refs;
    std::vector<Seq> qrys;
    // n + m + 2 > 8000: scalar re-run path, mixed with short eligible
    // jobs in the same batch.
    const Seq longQ = randomSeq(rng, 5000);
    refs.emplace_back(mutate(rng, longQ, 10));
    qrys.push_back(longQ);
    for (int i = 0; i < 9; ++i) {
        const Seq q = randomSeq(rng, 80);
        refs.emplace_back(mutate(rng, q, 3));
        qrys.push_back(q);
    }
    expectBatchMatchesScalar(refs, qrys, Scoring::unitEdit(), 8);
}

TEST(SimdBatchScore, TruncatedRerunReproducesFullResult)
{
    // The winner-only traceback contract: re-running the banded DP on
    // the (refEnd, qryEnd) prefix reproduces the full Extend result.
    Rng rng(5);
    for (int round = 0; round < 40; ++round) {
        const Seq q = randomSeq(rng, 10 + rng.below(120));
        const PackedSeq r(mutate(rng, q, 4));
        const u32 band = 12;
        const auto hint = gotohBandedExtendScore(r, q, Scoring{}, band);
        const AlignResult full =
            gotohBanded(r, q, Scoring{}, AlignMode::Extend, band);
        ASSERT_TRUE(full.valid);
        EXPECT_EQ(hint.score, full.score);
        EXPECT_EQ(hint.refEnd, full.refEnd);
        EXPECT_EQ(hint.qryEnd, full.qryEnd);

        const PackedSeq rTrunc = r.prefix(hint.refEnd);
        const Seq qTrunc(q.begin(),
                         q.begin() + static_cast<std::ptrdiff_t>(
                                         hint.qryEnd));
        const AlignResult rerun = gotohBanded(rTrunc, qTrunc, Scoring{},
                                              AlignMode::Extend, band);
        ASSERT_TRUE(rerun.valid);
        EXPECT_EQ(rerun.score, full.score);
        EXPECT_EQ(rerun.refEnd, full.refEnd);
        EXPECT_EQ(rerun.qryEnd, full.qryEnd);
        // Same path, modulo the soft-clip the full run appends for
        // the untruncated query tail.
        Cigar fullCore;
        for (const auto &el : full.cigar.elems()) {
            if (el.op != CigarOp::SoftClip)
                fullCore.push(el.op, el.len);
        }
        Cigar rerunCore;
        for (const auto &el : rerun.cigar.elems()) {
            if (el.op != CigarOp::SoftClip)
                rerunCore.push(el.op, el.len);
        }
        EXPECT_EQ(fullCore.str(), rerunCore.str());
    }
}

// ---------------------------------------------------------------------
// Striped local Smith-Waterman vs gotohAlign(Local).

void
expectStripedMatches(const Seq &ref, const Seq &qry, const Scoring &sc)
{
    const i32 want = gotohAlign(ref, qry, sc, AlignMode::Local).score;
    EXPECT_EQ(simd::localScoreScalar(ref, qry, sc), want);
    TierGuard guard;
    for (KernelTier t : supportedTiers()) {
        ASSERT_TRUE(simd::setKernelTier(t).ok());
        EXPECT_EQ(simd::stripedLocalScore(ref, qry, sc), want)
            << "tier=" << simd::kernelTierName(t)
            << " n=" << ref.size() << " m=" << qry.size();
    }
}

TEST(SimdStriped, RandomizedFuzzAllTiers)
{
    Rng rng(20240807);
    for (int round = 0; round < 60; ++round) {
        const size_t m = rng.below(180);
        const Seq q = randomSeq(rng, m);
        const Seq r = rng.chance(0.5) ? mutate(rng, q, 6)
                                      : randomSeq(rng, rng.below(220));
        expectStripedMatches(r, q, Scoring{});
    }
}

TEST(SimdStriped, DegenerateShapes)
{
    expectStripedMatches({}, {}, Scoring{});
    expectStripedMatches({}, {kBaseA}, Scoring{});
    expectStripedMatches({kBaseA}, {}, Scoring{});
    expectStripedMatches({kBaseA}, {kBaseA}, Scoring{});
    expectStripedMatches({kBaseC}, {kBaseG}, Scoring{});
    expectStripedMatches(Seq(300, kBaseA), Seq(200, kBaseA), Scoring{});
}

TEST(SimdStriped, EightBitOverflowRerunsInSixteen)
{
    // Identical 400 bp: score 400 with default scoring, past the
    // 8-bit re-run threshold (255 - bias - match = 250).
    Rng rng(3);
    const Seq q = randomSeq(rng, 400);
    expectStripedMatches(q, q, Scoring{});
    // And a high-identity variant.
    expectStripedMatches(mutate(rng, q, 2), q, Scoring{});
}

TEST(SimdStriped, SixteenBitOverflowRerunsScalar)
{
    // match = 1000 on an identical 101 bp pair: 101000 > 65535, so
    // even the 16-bit pass must hand off to the scalar kernel.
    Rng rng(4);
    const Seq q = randomSeq(rng, 101);
    expectStripedMatches(q, q, Scoring{1000, 4, 6, 1});
}

TEST(SimdStriped, UnitEditScoring)
{
    Rng rng(6);
    for (int round = 0; round < 10; ++round) {
        const Seq q = randomSeq(rng, 50 + rng.below(100));
        expectStripedMatches(mutate(rng, q, 5), q, Scoring::unitEdit());
    }
}

// ---------------------------------------------------------------------
// Batched Myers edit distance vs myersEditDistance.

void
expectMyersMatches(const std::vector<Seq> &pats,
                   const std::vector<PackedSeq> &texts)
{
    ASSERT_EQ(pats.size(), texts.size());
    std::vector<MyersJob> jobs(pats.size());
    for (size_t i = 0; i < pats.size(); ++i)
        jobs[i] = {&pats[i], &texts[i]};
    std::vector<u64> want(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        want[i] = myersEditDistance(pats[i], texts[i]);

    TierGuard guard;
    for (KernelTier t : supportedTiers()) {
        ASSERT_TRUE(simd::setKernelTier(t).ok());
        const auto got = simd::myersEditDistanceBatch(jobs);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i], want[i])
                << "tier=" << simd::kernelTierName(t) << " job=" << i
                << " m=" << pats[i].size() << " n=" << texts[i].size();
        }
    }
}

TEST(SimdMyers, RandomizedFuzzAllTiers)
{
    Rng rng(20240808);
    for (int round = 0; round < 8; ++round) {
        std::vector<Seq> pats;
        std::vector<PackedSeq> texts;
        for (int i = 0; i < 23; ++i) {
            // Spread across 1..4 blocks to exercise the multi-block
            // carry chain.
            const size_t m = 1 + rng.below(250);
            Seq p = randomSeq(rng, m);
            Seq t = rng.chance(0.5) ? mutate(rng, p, 8)
                                    : randomSeq(rng, rng.below(300));
            pats.push_back(std::move(p));
            texts.emplace_back(t);
        }
        expectMyersMatches(pats, texts);
    }
}

TEST(SimdMyers, DegenerateAndBlockBoundaryShapes)
{
    Rng rng(12);
    std::vector<Seq> pats;
    std::vector<PackedSeq> texts;
    auto add = [&](Seq p, Seq t) {
        pats.push_back(std::move(p));
        texts.emplace_back(t);
    };
    add({}, {});                              // both empty
    add({}, randomSeq(rng, 40));              // empty pattern
    add(randomSeq(rng, 40), {});              // empty text
    add({kBaseA}, {kBaseT});                  // 1 bp
    add(Seq(64, kBaseA), Seq(64, kBaseA));    // exact block boundary
    add(Seq(65, kBaseA), Seq(64, kBaseA));    // one past the boundary
    add(randomSeq(rng, 128), randomSeq(rng, 128));
    add(Seq(200, kBaseA), Seq(10, kBaseA));   // N-dense, m >> n
    const Seq big = randomSeq(rng, 400);      // 7-block pattern
    add(big, mutate(rng, big, 12));
    expectMyersMatches(pats, texts);
}

} // namespace
} // namespace genax
