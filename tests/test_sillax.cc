/**
 * @file
 * Tests for the SillaX hardware model: systolic comparator array,
 * structural edit machine, technology model, composable tiles and
 * lane accounting.
 */

#include <gtest/gtest.h>

#include "align/edit_distance.hh"
#include "common/rng.hh"
#include "silla/silla_edit.hh"
#include "sillax/comparator_array.hh"
#include "sillax/edit_machine.hh"
#include "silla/silla_score.hh"
#include "sillax/lane.hh"
#include "sillax/scoring_machine.hh"
#include "sillax/tech_model.hh"
#include "sillax/tile.hh"

namespace genax {
namespace {

Seq
randomSeq(Rng &rng, size_t len)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(4)));
    return s;
}

Seq
mutateSeq(Rng &rng, const Seq &s, unsigned num_edits)
{
    Seq out = s;
    for (unsigned e = 0; e < num_edits && !out.empty(); ++e) {
        const u64 pos = rng.below(out.size());
        switch (rng.below(3)) {
          case 0:
            out[pos] = static_cast<Base>((out[pos] + 1 + rng.below(3)) & 3);
            break;
          case 1:
            out.insert(out.begin() + static_cast<i64>(pos),
                       static_cast<Base>(rng.below(4)));
            break;
          default:
            out.erase(out.begin() + static_cast<i64>(pos));
            break;
        }
    }
    return out;
}

// ------------------------------------------------- comparator array

TEST(ComparatorArray, MatchesDirectRetroComparison)
{
    // The systolic property of Section IV-A: peripheral comparison +
    // diagonal latch forwarding reproduces R[c-i] == Q[c-d] at every
    // state, every cycle.
    Rng rng(600);
    for (u32 k : {1u, 4u, 9u}) {
        ComparatorArray arr(k);
        const Seq r = randomSeq(rng, 60);
        const Seq q = randomSeq(rng, 55);
        for (u64 c = 0; c < 70; ++c) {
            arr.step(c < r.size() ? r[c] : ComparatorArray::kPadR,
                     c < q.size() ? q[c] : ComparatorArray::kPadQ);
            for (u32 i = 0; i <= k; ++i) {
                for (u32 d = 0; d <= k; ++d) {
                    // The latch chain for (i, d) is warm only once
                    // c >= min(i, d); states are never consulted
                    // earlier.
                    if (c < std::min(i, d))
                        continue;
                    EXPECT_EQ(arr.compare(i, d),
                              retroCompare(r, q, c, i, d))
                        << "k=" << k << " c=" << c << " i=" << i
                        << " d=" << d;
                }
            }
        }
    }
}

TEST(ComparatorArray, PadsNeverMatch)
{
    ComparatorArray arr(2);
    // Stream pads only: everything must mismatch, including pad-pad.
    for (int c = 0; c < 8; ++c) {
        arr.step(ComparatorArray::kPadR, ComparatorArray::kPadQ);
        for (u32 i = 0; i <= 2; ++i)
            for (u32 d = 0; d <= 2; ++d)
                EXPECT_FALSE(arr.compare(i, d));
    }
}

TEST(ComparatorArray, ComparatorCountIs2KPlus1)
{
    EXPECT_EQ(ComparatorArray(40).comparatorCount(), 81u);
    EXPECT_EQ(ComparatorArray(0).comparatorCount(), 1u);
}

// --------------------------------------------- structural edit machine

TEST(StructuralEditMachine, MatchesFunctionalSilla)
{
    Rng rng(601);
    for (u32 k : {0u, 1u, 2u, 4u, 8u}) {
        StructuralEditMachine hw(k);
        SillaEdit sw(k);
        for (int t = 0; t < 30; ++t) {
            const Seq a = randomSeq(rng, 5 + rng.below(60));
            const Seq b =
                mutateSeq(rng, a, static_cast<unsigned>(rng.below(k + 3)));
            EXPECT_EQ(hw.distance(a, b), sw.distance(a, b))
                << "k=" << k << " a=" << decode(a) << " b=" << decode(b);
        }
    }
}

TEST(StructuralEditMachine, MatchesDpOracle)
{
    Rng rng(602);
    StructuralEditMachine hw(6);
    for (int t = 0; t < 40; ++t) {
        const Seq a = randomSeq(rng, 40);
        const Seq b = mutateSeq(rng, a, static_cast<unsigned>(rng.below(9)));
        const auto oracle = editDistanceBounded(a, b, 6);
        const auto got = hw.distance(a, b);
        ASSERT_EQ(got.has_value(), oracle.has_value());
        if (oracle) {
            EXPECT_EQ(static_cast<u64>(*got), *oracle);
        }
    }
}

// ------------------------------------------- structural scoring machine

TEST(StructuralScoringMachine, MatchesFunctionalScoringMachine)
{
    const Scoring sc;
    Rng rng(606);
    for (u32 k : {4u, 8u, 16u}) {
        StructuralScoringMachine hw(k, sc);
        SillaScore sw(k, sc);
        for (int t = 0; t < 25; ++t) {
            const Seq ref = randomSeq(rng, 60 + rng.below(60));
            const Seq qry =
                mutateSeq(rng, ref, static_cast<unsigned>(rng.below(6)));
            const auto a = hw.run(ref, qry);
            const auto b = sw.run(ref, qry);
            EXPECT_EQ(a.best, b.best) << "k=" << k;
            EXPECT_EQ(a.refEnd, b.refEnd);
            EXPECT_EQ(a.qryEnd, b.qryEnd);
            EXPECT_EQ(a.streamCycles, b.streamCycles);
        }
    }
}

TEST(StructuralScoringMachine, BackPropagationReachesGlobalBest)
{
    // Phase 2 of Section IV-B: the clipped maximum is reduced to
    // PE (0,0) using only nearest-neighbour links, within the grid
    // diameter's worth of cycles.
    const Scoring sc;
    Rng rng(608);
    for (u32 k : {4u, 12u}) {
        StructuralScoringMachine hw(k, sc);
        for (int t = 0; t < 15; ++t) {
            const Seq ref = randomSeq(rng, 80);
            const Seq qry =
                mutateSeq(rng, ref, static_cast<unsigned>(rng.below(6)));
            const auto res = hw.run(ref, qry);
            const auto [best, cycles] = hw.backPropagateBest();
            EXPECT_EQ(best, res.best);
            EXPECT_LE(cycles, 2u * k + 1);
        }
    }
}

TEST(StructuralScoringMachine, PerfectAndHopelessPairs)
{
    const Scoring sc;
    StructuralScoringMachine hw(8, sc);
    Rng rng(607);
    const Seq s = randomSeq(rng, 101);
    EXPECT_EQ(hw.run(s, s).best, 101);
    EXPECT_EQ(hw.run(Seq(50, kBaseA), Seq(50, kBaseG)).best, 0);
}

// ----------------------------------------------------------- tech model

TEST(TechModel, EditMachineCalibrationPoint)
{
    // Section VIII-A: edit machine at 2 GHz = 0.012 mm^2 / 0.047 W.
    const double area = TechModel::machineAreaMm2(PeType::Edit, 40, 2.0);
    const double power = TechModel::machinePowerW(PeType::Edit, 40, 2.0);
    EXPECT_NEAR(area, 0.012, 0.002);
    EXPECT_NEAR(power, 0.047, 0.005);
    EXPECT_NEAR(TechModel::peLatencyNs(PeType::Edit, 2.0), 0.17, 0.01);
}

TEST(TechModel, TracebackMachineCalibrationPoint)
{
    const double area =
        TechModel::machineAreaMm2(PeType::Traceback, 40, 2.0);
    const double power =
        TechModel::machinePowerW(PeType::Traceback, 40, 2.0);
    EXPECT_NEAR(area, 1.41, 0.1);
    EXPECT_NEAR(power, 1.54, 0.1);
    EXPECT_NEAR(TechModel::peLatencyNs(PeType::Traceback, 2.0), 0.33, 0.01);
}

TEST(TechModel, EditPeAt5GhzNear9p7Um2)
{
    EXPECT_NEAR(TechModel::peAreaUm2(PeType::Edit, 5.0), 9.7, 0.5);
}

TEST(TechModel, BandedSwPeIs30xLargerThanEditPe)
{
    // Section VIII-C: 300 um^2 vs 9.7 um^2 at 5 GHz.
    const double ratio = TechModel::bandedSwPeAreaUm2(5.0) /
                         TechModel::peAreaUm2(PeType::Edit, 5.0);
    EXPECT_NEAR(ratio, 30.9, 1.5);
}

TEST(TechModel, AreaAndPowerMonotoneInFrequency)
{
    for (PeType t :
         {PeType::Edit, PeType::Scoring, PeType::Traceback}) {
        double prev_a = 0, prev_p = 0;
        for (double f = 1.0; f <= 8.0; f += 0.5) {
            const double a = TechModel::peAreaUm2(t, f);
            const double p = TechModel::pePowerW(t, f);
            EXPECT_GT(a, prev_a);
            EXPECT_GT(p, prev_p);
            prev_a = a;
            prev_p = p;
        }
    }
}

TEST(TechModel, LatencyDecreasesWithFrequencyTarget)
{
    EXPECT_GT(TechModel::peLatencyNs(PeType::Edit, 1.0),
              TechModel::peLatencyNs(PeType::Edit, 6.0));
    // The edit machine reaches 6 GHz; scoring/traceback do not.
    EXPECT_GE(TechModel::maxFrequencyGhz(PeType::Edit), 6.0);
    EXPECT_LT(TechModel::maxFrequencyGhz(PeType::Traceback), 4.0);
}

TEST(TechModel, GateCounts)
{
    EXPECT_EQ(TechModel::peGates(PeType::Edit), 13u);
    EXPECT_GT(TechModel::peGates(PeType::Scoring),
              TechModel::peGates(PeType::Edit));
    EXPECT_GT(TechModel::peGates(PeType::Traceback),
              TechModel::peGates(PeType::Scoring));
}

TEST(TechModel, PeCountFormula)
{
    EXPECT_EQ(TechModel::peCount(40), 1681u); // Section VIII-A
}

// -------------------------------------------------------------- tiles

TEST(TileArray, DefaultConfigIsAllSingles)
{
    TileArray arr(40, 2, 3);
    EXPECT_EQ(arr.engines().size(), 6u);
    for (const auto &e : arr.engines()) {
        EXPECT_EQ(e.p, 1u);
        EXPECT_EQ(e.editBound, 40u);
    }
}

TEST(TileArray, ComposeOne2x2Engine)
{
    TileArray arr(40, 2, 3);
    ASSERT_TRUE(arr.configure({2}));
    // One 2x2 engine + two leftover singles.
    ASSERT_EQ(arr.engines().size(), 3u);
    u32 composed = 0, singles = 0;
    for (const auto &e : arr.engines()) {
        if (e.p == 2) {
            ++composed;
            EXPECT_EQ(e.editBound, 81u); // 2*(40+1)-1
        } else {
            ++singles;
        }
    }
    EXPECT_EQ(composed, 1u);
    EXPECT_EQ(singles, 2u);
}

TEST(TileArray, RejectsInfeasibleRequests)
{
    TileArray arr(40, 2, 2);
    EXPECT_FALSE(arr.configure({3}));    // larger than the grid
    EXPECT_FALSE(arr.configure({2, 2})); // two 2x2 in a 2x2 grid
    EXPECT_FALSE(arr.configure({0}));
    // A failed configure keeps the previous (all-singles) state.
    EXPECT_EQ(arr.engines().size(), 4u);
}

TEST(TileArray, PackingPlacesLargestFirst)
{
    TileArray arr(20, 4, 4);
    ASSERT_TRUE(arr.configure({2, 2, 2, 2}));
    EXPECT_EQ(arr.engines().size(), 4u);
    ASSERT_TRUE(arr.configure({3, 1}));
    // One 3x3 engine + 7 singles.
    EXPECT_EQ(arr.engines().size(), 8u);
}

TEST(TileArray, ComposedEngineAlignsBeyondTileBound)
{
    // Functional check of the reconfiguration payoff: a pair needing
    // more edits than one tile supports is handled by the composed
    // engine.
    TileArray arr(4, 2, 2);
    ASSERT_TRUE(arr.configure({2}));
    const u32 big_k = arr.engines()[0].editBound;
    EXPECT_EQ(big_k, 9u);

    Rng rng(603);
    const Seq a = randomSeq(rng, 60);
    const Seq b = mutateSeq(rng, a, 7); // up to 7 edits > tile K of 4

    SillaEdit small(4), big(big_k);
    const u64 d = editDistance(a, b);
    if (d > 4 && d <= 9) {
        EXPECT_FALSE(small.distance(a, b).has_value());
        ASSERT_TRUE(big.distance(a, b).has_value());
        EXPECT_EQ(*big.distance(a, b), d);
    }
}

TEST(TileArray, MuxOverheadIsSmall)
{
    TileArray arr(40, 2, 2);
    const double tiles_alone =
        4 * TechModel::machineAreaMm2(PeType::Traceback, 40, 2.0);
    const double with_mux = arr.areaMm2(PeType::Traceback, 2.0);
    EXPECT_GT(with_mux, tiles_alone);
    EXPECT_LT(with_mux, tiles_alone * 1.05);
}

// --------------------------------------------------------------- lane

TEST(SillaXLane, AccumulatesStatsAndThroughput)
{
    const Scoring sc;
    SillaXLane lane(12, sc, 2.0);
    Rng rng(604);
    for (int t = 0; t < 50; ++t) {
        const Seq ref = randomSeq(rng, 110);
        const Seq read = mutateSeq(rng, randomSeq(rng, 101),
                                   static_cast<unsigned>(rng.below(3)));
        lane.extend(ref, read);
    }
    const LaneStats &st = lane.stats();
    EXPECT_EQ(st.jobs, 50u);
    EXPECT_GT(st.streamCycles, 0u);
    EXPECT_GT(st.cyclesPerJob(), 101.0); // at least the stream phase
    EXPECT_LT(st.cyclesPerJob(), 400.0); // but O(N + K), not O(N^2)
    // Millions of 101 bp extensions per second at 2 GHz.
    EXPECT_GT(st.jobsPerSecond(2.0), 5e6);
}

TEST(SillaXLane, ExtendReturnsSameAlignmentAsMachine)
{
    const Scoring sc;
    SillaXLane lane(8, sc);
    SillaTraceback machine(8, sc);
    Rng rng(605);
    const Seq ref = randomSeq(rng, 101);
    const Seq read = mutateSeq(rng, ref, 2);
    const auto a = lane.extend(ref, read);
    const auto b = machine.align(ref, read);
    EXPECT_EQ(a.score, b.score);
    EXPECT_EQ(a.cigar.str(), b.cigar.str());
}

TEST(SillaXLane, ResetStats)
{
    const Scoring sc;
    SillaXLane lane(4, sc);
    lane.extend(encode("ACGTACGT"), encode("ACGTACGT"));
    EXPECT_EQ(lane.stats().jobs, 1u);
    lane.resetStats();
    EXPECT_EQ(lane.stats().jobs, 0u);
}

} // namespace
} // namespace genax
