/**
 * @file
 * parallelFor contract tests plus multi-threaded stress intended to
 * run under ThreadSanitizer (the tsan CMake preset): the aligner
 * batch path and parallelFor itself are exercised under contention,
 * and the threaded results are checked against single-threaded runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "swbase/bwamem_like.hh"

namespace genax {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    const u64 n = 1013; // prime, so chunks never divide evenly
    std::vector<std::atomic<u32>> hits(n);
    parallelFor(n, 7, [&](u64 lo, u64 hi) {
        for (u64 i = lo; i < hi; ++i)
            ++hits[i];
    });
    for (u64 i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ParallelFor, InlineWhenSingleThreaded)
{
    std::thread::id caller = std::this_thread::get_id();
    parallelFor(100, 1, [&](u64 lo, u64 hi) {
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 100u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ParallelFor, WorkerExceptionPropagates)
{
    // A throw from a worker must surface in the caller, not
    // std::terminate the process.
    EXPECT_THROW(
        parallelFor(64, 4,
                    [](u64 lo, u64) {
                        if (lo == 0)
                            throw std::runtime_error("chunk failed");
                    }),
        std::runtime_error);
}

TEST(ParallelFor, AllWorkersJoinBeforeRethrow)
{
    // Every chunk runs to completion even when one throws: the
    // rethrow happens only after all workers are joined, so no work
    // is silently lost and no thread outlives the call.
    std::atomic<u64> done{0};
    try {
        parallelFor(1000, 8, [&](u64 lo, u64 hi) {
            done += hi - lo;
            if (lo == 0)
                throw std::logic_error("first chunk");
        });
        FAIL() << "exception swallowed";
    } catch (const std::logic_error &e) {
        EXPECT_STREQ(e.what(), "first chunk");
    }
    EXPECT_EQ(done.load(), 1000u);
}

TEST(ParallelFor, FirstExceptionWins)
{
    // Several workers throw; exactly one exception reaches the
    // caller and it is one of the thrown ones.
    try {
        parallelFor(400, 4, [](u64 lo, u64) {
            throw std::runtime_error("chunk " + std::to_string(lo));
        });
        FAIL() << "exception swallowed";
    } catch (const std::runtime_error &e) {
        EXPECT_EQ(std::string(e.what()).rfind("chunk ", 0), 0u);
    }
}

TEST(ParallelFor, CheckViolationCrossesThreads)
{
    // GENAX_CHECK with the throwing handler fires inside a worker
    // and still reaches the caller as a CheckViolation.
    ScopedCheckHandler guard(&throwingCheckHandler);
    EXPECT_THROW(parallelFor(32, 4,
                             [](u64 lo, u64) {
                                 GENAX_CHECK(lo != 0,
                                             "worker invariant");
                             }),
                 CheckViolation);
}

TEST(ParallelFor, ZeroThreadsMeansAllHardwareThreads)
{
    // threads == 0 resolves to the hardware width and still covers
    // the range exactly once.
    const unsigned hw = ThreadPool::resolveWidth(0);
    EXPECT_GE(hw, 1u);
    // Explicit requests are clamped to the hardware width so a
    // low-core host never runs oversubscribed.
    EXPECT_EQ(ThreadPool::resolveWidth(3), std::min(3u, hw));
    EXPECT_EQ(ThreadPool::resolveWidth(1), 1u);
    EXPECT_EQ(ThreadPool::resolveWidth(hw + 64), hw);

    const u64 n = 777;
    std::vector<std::atomic<u32>> hits(n);
    parallelFor(n, 0, [&](u64 lo, u64 hi) {
        for (u64 i = lo; i < hi; ++i)
            ++hits[i];
    });
    for (u64 i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ParallelFor, SkewedWorkIsDynamicallyChunked)
{
    // Regression for the static-chunking pathology: with one chunk
    // per thread, an adversarial workload whose last items carry all
    // the cost serializes on the unlucky worker. Dynamic scheduling
    // hands out chunks far smaller than n / width, so no single
    // invocation can receive a static-sized share.
    const u64 n = 4096;
    const unsigned width = 8;
    const u64 static_share = n / width;
    std::vector<std::atomic<u32>> hits(n);
    std::atomic<u64> max_span{0};
    ThreadPool::global().parallelFor(
        n, width, [&](unsigned slot, u64 lo, u64 hi) {
            ASSERT_LT(slot, width);
            // Adversarial skew: the tail of the range is heavy.
            volatile u64 sink = 0;
            for (u64 i = lo; i < hi; ++i) {
                ++hits[i];
                const u64 cost = i > 7 * n / 8 ? 400 : 1;
                for (u64 w = 0; w < cost; ++w)
                    sink = sink + w;
            }
            u64 span = hi - lo;
            u64 seen = max_span.load(std::memory_order_relaxed);
            while (span > seen &&
                   !max_span.compare_exchange_weak(
                       seen, span, std::memory_order_relaxed)) {
            }
        });
    for (u64 i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
    // Every dispatched chunk must be the dynamic size (n / (8 *
    // width), or the range remainder) — far below a static share.
    EXPECT_LE(max_span.load(), n / (8 * width));
    EXPECT_LT(max_span.load(), static_share);
}

TEST(ThreadPool, SubmitRunsEveryTask)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workerCount(), 3u);
    std::atomic<u32> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran]() { ++ran; });
    while (ran.load() < 100)
        std::this_thread::yield();
    EXPECT_EQ(ran.load(), 100u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<u32> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran]() { ++ran; });
    }
    EXPECT_EQ(ran.load(), 64u);
}

TEST(ParallelForStress, ContendedAccumulation)
{
    // Repeated fork/join with all workers hammering shared atomics;
    // under TSan this flags any unsynchronized access in
    // parallelFor's spawn/join/error plumbing.
    std::atomic<u64> sum{0};
    for (int round = 0; round < 50; ++round) {
        parallelFor(256, 8, [&](u64 lo, u64 hi) {
            for (u64 i = lo; i < hi; ++i)
                sum.fetch_add(i, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(sum.load(), 50u * (255u * 256u / 2));
}

TEST(ParallelForStress, ThreadedAlignerMatchesSerial)
{
    // The full software-baseline batch path under contention: eight
    // workers share the index and reference read-only. Results must
    // be bit-identical to the single-threaded run.
    RefGenConfig ref_cfg;
    ref_cfg.length = 20000;
    ref_cfg.seed = 7;
    const Seq ref = generateReference(ref_cfg);

    ReadSimConfig read_cfg;
    read_cfg.readLen = 100;
    read_cfg.numReads = 64;
    read_cfg.seed = 11;
    const auto reads = simulateReads(ref, read_cfg);
    std::vector<Seq> batch;
    batch.reserve(reads.size());
    for (const auto &r : reads)
        batch.push_back(r.seq);

    AlignerConfig serial_cfg;
    serial_cfg.threads = 1;
    const BwaMemLike serial(ref, serial_cfg);

    AlignerConfig threaded_cfg;
    threaded_cfg.threads = 8;
    const BwaMemLike threaded(ref, threaded_cfg);

    const auto a = serial.alignAll(batch);
    const auto b = threaded.alignAll(batch);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pos, b[i].pos) << "read " << i;
        EXPECT_EQ(a[i].score, b[i].score) << "read " << i;
        EXPECT_EQ(a[i].reverse, b[i].reverse) << "read " << i;
    }
}

} // namespace
} // namespace genax
