/**
 * @file
 * End-to-end determinism tests for the sharded batch engine: the SAM
 * byte stream, the PipelineResult outcome ledger, and the modelled
 * GenAxPerf numbers must be identical at every host thread count AND
 * at every kernel dispatch tier — with and without an armed
 * fault-injection plan. This is the user-visible contract behind
 * `genax_align --threads N` and `genax_align --kernel TIER`.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "align/simd/dispatch.hh"
#include "common/faultinject.hh"
#include "genax/pipeline.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "serve/batcher.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/service.hh"

namespace genax {
namespace {

struct Workload
{
    std::vector<FastaRecord> ref;
    std::vector<FastqRecord> reads;
};

Workload
makeWorkload()
{
    RefGenConfig rcfg;
    rcfg.length = 30000;
    rcfg.seed = 1234;
    const Seq ref = generateReference(rcfg);

    ReadSimConfig rs;
    rs.numReads = 150;
    rs.seed = 5678;
    const auto sim = simulateReads(ref, rs);

    Workload w;
    w.ref.resize(1);
    w.ref[0].name = "det_ref";
    w.ref[0].seq = ref;
    w.reads.resize(sim.size());
    for (size_t i = 0; i < sim.size(); ++i) {
        w.reads[i].name = "r" + std::to_string(i);
        w.reads[i].seq = sim[i].seq;
        w.reads[i].qual = sim[i].qual;
    }
    return w;
}

struct RunOutput
{
    std::string sam;
    PipelineResult res;
};

/**
 * One pipeline run; the fault plan (if any) is re-armed fresh so
 * every run sees identical injector state. batch_reads > 0 routes
 * through the streaming path (alignStreamToSam) instead of the
 * load-all path — the two must be indistinguishable from out here.
 */
RunOutput
runOnce(const Workload &w, PipelineOptions::Engine engine,
        unsigned threads, bool inject, u64 batch_reads = 0)
{
    PipelineOptions opts;
    opts.engine = engine;
    opts.segments = 6;
    opts.threads = threads;
    opts.batchReads = batch_reads;

    FaultInjector &fi = FaultInjector::instance();
    fi.reset();
    if (inject) {
        fi.arm(fault::kLaneIssue, {.probability = 0.2, .seed = 21});
        fi.arm(fault::kCamOverflow, {.probability = 0.1, .seed = 22});
        fi.arm(fault::kPipelineRead, {.probability = 0.05, .seed = 23});
        fi.arm(fault::kDramStream, {.probability = 0.3, .seed = 24});
    }

    std::ostringstream sink;
    const auto res = [&]() -> StatusOr<PipelineResult> {
        if (batch_reads > 0) {
            std::ostringstream fastq;
            GENAX_TRY(writeFastq(fastq, w.reads));
            std::istringstream in(fastq.str());
            FastqReader reader(in);
            return alignStreamToSam(w.ref, reader, sink, opts);
        }
        return alignToSam(w.ref, w.reads, sink, opts);
    }();
    fi.reset();
    EXPECT_TRUE(res.ok()) << res.status().str();
    RunOutput out;
    out.sam = sink.str();
    out.res = res.ok() ? *res : PipelineResult{};
    return out;
}

void
expectSameOutcome(const RunOutput &a, const RunOutput &b,
                  const std::string &what)
{
    // Byte-identical SAM, not merely equivalent records.
    EXPECT_EQ(a.sam, b.sam) << what;

    // Identical outcome ledger.
    EXPECT_EQ(a.res.reads, b.res.reads) << what;
    EXPECT_EQ(a.res.mapped, b.res.mapped) << what;
    EXPECT_EQ(a.res.unmapped, b.res.unmapped) << what;
    EXPECT_EQ(a.res.degraded, b.res.degraded) << what;
    EXPECT_EQ(a.res.failed, b.res.failed) << what;
    EXPECT_EQ(a.res.skippedMalformed, b.res.skippedMalformed) << what;
    EXPECT_TRUE(a.res.ledgerBalanced()) << what;

    // Bit-identical modelled performance: counters are u64 sums
    // reduced in slot order, and every derived double is computed
    // from those sums, so even floating-point results must match
    // exactly.
    const GenAxPerf &pa = a.res.perf;
    const GenAxPerf &pb = b.res.perf;
    EXPECT_EQ(pa.reads, pb.reads) << what;
    EXPECT_EQ(pa.segments, pb.segments) << what;
    EXPECT_EQ(pa.extensionJobs, pb.extensionJobs) << what;
    EXPECT_EQ(pa.exactReads, pb.exactReads) << what;
    EXPECT_EQ(pa.degradedJobs, pb.degradedJobs) << what;
    EXPECT_EQ(pa.laneFaults, pb.laneFaults) << what;
    EXPECT_EQ(pa.dramFaults, pb.dramFaults) << what;
    EXPECT_EQ(pa.seedingSeconds, pb.seedingSeconds) << what;
    EXPECT_EQ(pa.extensionSeconds, pb.extensionSeconds) << what;
    EXPECT_EQ(pa.dramSeconds, pb.dramSeconds) << what;
    EXPECT_EQ(pa.totalSeconds, pb.totalSeconds) << what;
    EXPECT_EQ(pa.seeding.reads, pb.seeding.reads) << what;
    EXPECT_EQ(pa.seeding.exactMatchReads, pb.seeding.exactMatchReads)
        << what;
    EXPECT_EQ(pa.seeding.indexLookups, pb.seeding.indexLookups) << what;
    EXPECT_EQ(pa.seeding.smems, pb.seeding.smems) << what;
    EXPECT_EQ(pa.seeding.hitsReported, pb.seeding.hitsReported) << what;
    EXPECT_EQ(pa.seeding.cam.loads, pb.seeding.cam.loads) << what;
    EXPECT_EQ(pa.seeding.cam.searches, pb.seeding.cam.searches) << what;
    EXPECT_EQ(pa.seeding.cam.binarySteps, pb.seeding.cam.binarySteps)
        << what;
    EXPECT_EQ(pa.seeding.cam.overflowFallbacks,
              pb.seeding.cam.overflowFallbacks)
        << what;
    EXPECT_EQ(pa.lanes.jobs, pb.lanes.jobs) << what;
    EXPECT_EQ(pa.lanes.streamCycles, pb.lanes.streamCycles) << what;
    EXPECT_EQ(pa.lanes.reduceCycles, pb.lanes.reduceCycles) << what;
    EXPECT_EQ(pa.lanes.collectCycles, pb.lanes.collectCycles) << what;
    EXPECT_EQ(pa.lanes.rerunCycles, pb.lanes.rerunCycles) << what;
    EXPECT_EQ(pa.lanes.jobsWithRerun, pb.lanes.jobsWithRerun) << what;
    EXPECT_EQ(pa.lanes.reruns, pb.lanes.reruns) << what;
    EXPECT_EQ(pa.lanes.issueFaults, pb.lanes.issueFaults) << what;
}

TEST(Determinism, GenAxIdenticalAtAnyThreadCount)
{
    const Workload w = makeWorkload();
    const RunOutput serial =
        runOnce(w, PipelineOptions::Engine::GenAx, 1, false);
    EXPECT_GT(serial.res.mapped, 0u);
    for (const unsigned threads : {2u, 8u, 0u}) {
        const RunOutput mt =
            runOnce(w, PipelineOptions::Engine::GenAx, threads, false);
        expectSameOutcome(serial, mt,
                          "threads=" + std::to_string(threads));
    }
}

TEST(Determinism, GenAxIdenticalUnderFaultInjection)
{
    // The stronger claim: an armed fault plan (lane refusals, CAM
    // overflow forcing, pipeline read loss, DRAM stream degradation)
    // fires on the same reads at every thread count, so even the
    // degraded/failed ledger and the SAM placeholders replay exactly.
    const Workload w = makeWorkload();
    const RunOutput serial =
        runOnce(w, PipelineOptions::Engine::GenAx, 1, true);
    EXPECT_GT(serial.res.degraded + serial.res.failed, 0u)
        << "fault plan should visibly perturb the run";
    for (const unsigned threads : {2u, 8u}) {
        const RunOutput mt =
            runOnce(w, PipelineOptions::Engine::GenAx, threads, true);
        expectSameOutcome(serial, mt,
                          "inject threads=" + std::to_string(threads));
    }
}

TEST(Determinism, SoftwareEngineIdenticalAtAnyThreadCount)
{
    const Workload w = makeWorkload();
    const RunOutput serial =
        runOnce(w, PipelineOptions::Engine::Software, 1, false);
    EXPECT_GT(serial.res.mapped, 0u);
    const RunOutput mt =
        runOnce(w, PipelineOptions::Engine::Software, 8, false);
    expectSameOutcome(serial, mt, "software threads=8");
}

TEST(Determinism, StreamingIdenticalAtAnyBatchSize)
{
    // The `--batch-reads` contract: batch size (and with it, the
    // parse/align/emit overlap) is a memory/latency choice only. The
    // streaming path must reproduce the load-all run byte for byte —
    // SAM stream, ledger, and the full modelled perf report — at any
    // batch size crossed with any thread count, on both engines.
    const Workload w = makeWorkload();
    for (const auto engine : {PipelineOptions::Engine::GenAx,
                              PipelineOptions::Engine::Software}) {
        const std::string ename =
            engine == PipelineOptions::Engine::GenAx ? "genax" : "sw";
        const RunOutput loadall = runOnce(w, engine, 1, false);
        EXPECT_GT(loadall.res.mapped, 0u);
        for (const u64 batch : {u64{7}, u64{64}, u64{100000}}) {
            for (const unsigned threads : {1u, 8u}) {
                const RunOutput run =
                    runOnce(w, engine, threads, false, batch);
                expectSameOutcome(loadall, run,
                                  ename + " batch=" +
                                      std::to_string(batch) +
                                      " threads=" +
                                      std::to_string(threads));
            }
        }
    }
}

TEST(Determinism, StreamingIdenticalUnderFaultInjection)
{
    // Armed faults must replay identically through the streaming
    // path: per-read keyed sites see the same global read index, the
    // admission and DRAM-stream sites see the same per-site ordinal
    // sequence, whatever the batch size.
    const Workload w = makeWorkload();
    const RunOutput loadall =
        runOnce(w, PipelineOptions::Engine::GenAx, 1, true);
    EXPECT_GT(loadall.res.degraded + loadall.res.failed, 0u)
        << "fault plan should visibly perturb the run";
    for (const u64 batch : {u64{7}, u64{64}, u64{100000}}) {
        for (const unsigned threads : {1u, 8u}) {
            const RunOutput run = runOnce(
                w, PipelineOptions::Engine::GenAx, threads, true, batch);
            expectSameOutcome(loadall, run,
                              "inject batch=" + std::to_string(batch) +
                                  " threads=" +
                                  std::to_string(threads));
        }
    }
}

/** Every kernel tier the host can run, scalar always included. */
std::vector<simd::KernelTier>
supportedTiers()
{
    std::vector<simd::KernelTier> tiers{simd::KernelTier::Scalar};
    for (const auto t :
         {simd::KernelTier::Sse41, simd::KernelTier::Avx2})
        if (simd::kernelTierSupported(t))
            tiers.push_back(t);
    return tiers;
}

TEST(Determinism, IdenticalAtEveryKernelTier)
{
    // The `--kernel` contract: dispatch tier is a speed choice only.
    // Both engines (the software path batch-scores extensions through
    // the SIMD kernels; the GenAx path routes lane-fault fallbacks
    // through them) must produce byte-identical SAM and ledgers at
    // every tier, serial and sharded alike.
    const Workload w = makeWorkload();
    for (const auto engine : {PipelineOptions::Engine::Software,
                              PipelineOptions::Engine::GenAx}) {
        simd::clearKernelTierOverride();
        ASSERT_EQ(simd::setKernelTier(simd::KernelTier::Scalar).ok(),
                  true);
        const RunOutput baseline = runOnce(w, engine, 1, false);
        EXPECT_GT(baseline.res.mapped, 0u);
        for (const auto tier : supportedTiers()) {
            ASSERT_TRUE(simd::setKernelTier(tier).ok());
            for (const unsigned threads : {1u, 8u}) {
                const RunOutput run = runOnce(w, engine, threads, false);
                expectSameOutcome(
                    baseline, run,
                    std::string("tier=") + kernelTierName(tier) +
                        " threads=" + std::to_string(threads) +
                        " engine=" +
                        (engine == PipelineOptions::Engine::GenAx
                             ? "genax"
                             : "software"));
            }
        }
        simd::clearKernelTierOverride();
    }
}

TEST(Determinism, FaultFallbackIdenticalAtEveryKernelTier)
{
    // Lane-fault degradation re-runs jobs on the software kernel via
    // the SIMD score pass; the degraded reads and their SAM records
    // must not depend on which tier scored them.
    const Workload w = makeWorkload();
    ASSERT_TRUE(simd::setKernelTier(simd::KernelTier::Scalar).ok());
    const RunOutput baseline =
        runOnce(w, PipelineOptions::Engine::GenAx, 1, true);
    EXPECT_GT(baseline.res.degraded + baseline.res.failed, 0u);
    for (const auto tier : supportedTiers()) {
        ASSERT_TRUE(simd::setKernelTier(tier).ok());
        const RunOutput run =
            runOnce(w, PipelineOptions::Engine::GenAx, 1, true);
        expectSameOutcome(baseline, run,
                          std::string("inject tier=") +
                              kernelTierName(tier));
    }
    simd::clearKernelTierOverride();
}

TEST(Determinism, ServedSamMatchesOfflineAtAnyBatchAndThreads)
{
    // The serving layer's byte-identity contract (see
    // src/serve/service.hh): a client that writes samHeader() plus
    // the lines from its align() calls reproduces, byte for byte,
    // what an offline genax_align run over exactly its reads would
    // have written — no matter how the daemon's continuous batcher
    // interleaved it with other tenants' reads, what the flush
    // threshold was, or how many engine threads served the batch.
    const Workload w = makeWorkload();

    constexpr size_t kClients = 4;
    std::vector<std::vector<FastqRecord>> slices(kClients);
    const size_t per = (w.reads.size() + kClients - 1) / kClients;
    for (size_t i = 0; i < w.reads.size(); ++i)
        slices[i / per].push_back(w.reads[i]);

    // Offline expectation: one single-client pipeline run per slice.
    std::vector<std::string> expected(kClients);
    for (size_t c = 0; c < kClients; ++c) {
        PipelineOptions opts;
        opts.segments = 6;
        std::ostringstream sink;
        const auto res = alignToSam(w.ref, slices[c], sink, opts);
        ASSERT_TRUE(res.ok()) << res.status().str();
        expected[c] = sink.str();
    }

    for (const u64 batch : {u64{1}, u64{7}, u64{64}}) {
        for (const unsigned engine_threads : {1u, 3u}) {
            const std::string what =
                "batch=" + std::to_string(batch) +
                " threads=" + std::to_string(engine_threads);

            ServiceConfig scfg;
            scfg.segments = 6;
            scfg.threads = engine_threads;
            auto svc = AlignService::create(w.ref, scfg);
            ASSERT_TRUE(svc.ok()) << svc.status().str();
            BatcherConfig bcfg;
            bcfg.batchReads = batch;
            Batcher batcher(**svc, bcfg);
            Server server(**svc, batcher);
            const auto ep = Endpoint::parse("tcp:0");
            ASSERT_TRUE(ep.ok());
            ASSERT_TRUE(server.start(*ep).ok());

            std::vector<std::string> served(kClients);
            std::vector<std::thread> clients;
            for (size_t c = 0; c < kClients; ++c) {
                clients.emplace_back([&, c] {
                    auto conn = ServeClient::connect(
                        server.boundEndpoint(),
                        "c" + std::to_string(c));
                    ASSERT_TRUE(conn.ok()) << conn.status().str();
                    std::string sam = conn->samHeader();
                    // 5-read requests so every request straddles
                    // batch boundaries at each flush threshold.
                    const auto &mine = slices[c];
                    for (size_t i = 0; i < mine.size(); i += 5) {
                        const size_t n =
                            std::min<size_t>(5, mine.size() - i);
                        auto lines =
                            conn->align(std::vector<FastqRecord>(
                                mine.begin() + static_cast<long>(i),
                                mine.begin() +
                                    static_cast<long>(i + n)));
                        ASSERT_TRUE(lines.ok())
                            << lines.status().str();
                        for (const auto &line : *lines)
                            sam += line;
                    }
                    conn.value().close();
                    served[c] = std::move(sam);
                });
            }
            for (auto &t : clients)
                t.join();
            server.stop();
            (*svc)->finish();

            for (size_t c = 0; c < kClients; ++c)
                EXPECT_EQ(served[c], expected[c])
                    << what << " client=" << c;
        }
    }
}

} // namespace
} // namespace genax
