/**
 * @file
 * Corruption-chaos suite for the crash-safe store layer: checksum
 * algebra, atomic-writer fault sweeps, container validation against
 * truncation and bit rot, index snapshots and the end-to-end
 * alignment-identity guarantee of `genax_align --index`.
 *
 * The invariant under test everywhere: no mutation of on-disk bytes
 * may crash, hang or change alignment output. Corruption surfaces as
 * a typed recoverable Status (InvalidInput from validation, IoError
 * from the OS), and the pipeline degrades to rebuild-from-FASTA with
 * identical SAM bytes.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/faultinject.hh"
#include "common/rng.hh"
#include "genax/pipeline.hh"
#include "io/fasta.hh"
#include "io/fastq.hh"
#include "io/store.hh"
#include "seed/flat_kmer_index.hh"
#include "seed/index_snapshot.hh"

namespace genax {
namespace {

namespace fs = std::filesystem;

Seq
randomSeq(Rng &rng, size_t len)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(4)));
    return s;
}

/** Fresh scratch directory under the system temp root. */
fs::path
scratchDir(const std::string &name)
{
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------ StoreChecksum

TEST(StoreChecksum, SplitInvariantAcrossUpdateBoundaries)
{
    Rng rng(901);
    std::vector<u8> data(4097);
    for (auto &b : data)
        b = static_cast<u8>(rng.below(256));

    const u64 whole = storeChecksum(data.data(), data.size());
    // Feed the same bytes in every awkward chunking: single bytes,
    // word-misaligned runs, one giant piece.
    for (const size_t step : {size_t{1}, size_t{3}, size_t{7},
                              size_t{8}, size_t{13}, size_t{4096}}) {
        StoreChecksum sum;
        for (size_t i = 0; i < data.size(); i += step)
            sum.update(data.data() + i,
                       std::min(step, data.size() - i));
        EXPECT_EQ(sum.digest(), whole) << "step " << step;
    }
}

TEST(StoreChecksum, DistinguishesContentLengthAndOrder)
{
    const u8 a[] = {1, 2, 3, 4, 5};
    const u8 b[] = {1, 2, 3, 4, 6};
    const u8 c[] = {2, 1, 3, 4, 5};
    EXPECT_NE(storeChecksum(a, 5), storeChecksum(b, 5));
    EXPECT_NE(storeChecksum(a, 5), storeChecksum(c, 5));
    EXPECT_NE(storeChecksum(a, 5), storeChecksum(a, 4));
    // Zero-length input is legal and stable.
    EXPECT_EQ(storeChecksum(nullptr, 0), storeChecksum(nullptr, 0));
    // Trailing zero bytes still change the digest (length is mixed
    // in, so zero padding cannot be silently appended).
    const u8 z[] = {1, 2, 3, 4, 5, 0};
    EXPECT_NE(storeChecksum(a, 5), storeChecksum(z, 6));
}

// --------------------------------------------------- AtomicFileWriter

TEST(AtomicWriter, CommitLandsExactBytes)
{
    const fs::path dir = scratchDir("genax_store_atomic");
    const std::string path = (dir / "blob").string();

    auto w = AtomicFileWriter::create(path);
    ASSERT_TRUE(w.ok()) << w.status().str();
    const std::string payload = "store me durably";
    ASSERT_TRUE(w->append(payload.data(), payload.size()).ok());
    // Nothing visible at the destination until commit.
    EXPECT_FALSE(fs::exists(path));
    ASSERT_TRUE(w->commit().ok());
    EXPECT_EQ(slurp(path), payload);
    fs::remove_all(dir);
}

TEST(AtomicWriter, FaultsLeaveOldFileOrNothing)
{
    const fs::path dir = scratchDir("genax_store_atomic_fault");
    const std::string path = (dir / "blob").string();
    const std::string old_payload = "previous generation";
    spit(path, old_payload);

    const std::string new_payload(100000, 'x');
    for (const char *site :
         {fault::kStoreShortWrite, fault::kStoreEnospc,
          fault::kStoreEio}) {
        ScopedFaultPlan plan({{site, {.fireOnNth = 1}}});
        auto w = AtomicFileWriter::create(path);
        ASSERT_TRUE(w.ok());
        Status st =
            w->append(new_payload.data(), new_payload.size());
        if (st.ok())
            st = w->commit();
        ASSERT_FALSE(st.ok()) << site;
        EXPECT_EQ(st.code(), StatusCode::IoError) << site;
        EXPECT_EQ(slurp(path), old_payload) << site;
    }
    // Abandon also keeps the destination untouched and removes the
    // temp file.
    {
        auto w = AtomicFileWriter::create(path);
        ASSERT_TRUE(w.ok());
        ASSERT_TRUE(
            w->append(new_payload.data(), new_payload.size()).ok());
        w->abandon();
    }
    EXPECT_EQ(slurp(path), old_payload);
    size_t entries = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u) << "stray temp files left behind";
    fs::remove_all(dir);
}

// ------------------------------------------------- Store round trips

struct TestStore
{
    std::string path;
    std::vector<u8> alpha;
    std::vector<u32> beta;
    std::vector<u8> empty; // zero-byte section is legal
};

TestStore
buildTestStore(const fs::path &dir)
{
    TestStore t;
    t.path = (dir / "test.gxstore").string();
    Rng rng(902);
    t.alpha.resize(1001); // deliberately not a multiple of 8
    for (auto &b : t.alpha)
        b = static_cast<u8>(rng.below(256));
    t.beta.resize(300);
    for (auto &v : t.beta)
        v = static_cast<u32>(rng.next());

    StoreWriter w("TSTKND", /*kind_version=*/3);
    w.addSection("alpha", t.alpha.data(), t.alpha.size());
    w.addSection("beta", t.beta.data(),
                 t.beta.size() * sizeof(u32));
    w.addSection("empty", nullptr, 0);
    EXPECT_TRUE(w.writeFile(t.path).ok());
    return t;
}

void
expectStoreMatches(const StoreFile &store, const TestStore &t)
{
    EXPECT_EQ(store.kind(), "TSTKND");
    EXPECT_EQ(store.kindVersion(), 3u);
    ASSERT_EQ(store.sections().size(), 3u);

    auto alpha = store.section("alpha");
    ASSERT_TRUE(alpha.ok());
    ASSERT_EQ(alpha->size(), t.alpha.size());
    EXPECT_TRUE(std::equal(alpha->begin(), alpha->end(),
                           t.alpha.begin()));

    auto beta = store.sectionAs<u32>("beta");
    ASSERT_TRUE(beta.ok());
    ASSERT_EQ(beta->size(), t.beta.size());
    EXPECT_TRUE(
        std::equal(beta->begin(), beta->end(), t.beta.begin()));

    auto empty = store.section("empty");
    ASSERT_TRUE(empty.ok());
    EXPECT_EQ(empty->size(), 0u);

    EXPECT_FALSE(store.section("missing").ok());
    EXPECT_EQ(store.section("missing").status().code(),
              StatusCode::NotFound);
    // A section whose size is not a multiple of the element size is
    // a typed error, not a truncated span.
    EXPECT_EQ(store.sectionAs<u64>("alpha").status().code(),
              StatusCode::InvalidInput);
}

TEST(Store, RoundTripMappedAndOwned)
{
    const fs::path dir = scratchDir("genax_store_roundtrip");
    const TestStore t = buildTestStore(dir);

    auto mapped = StoreFile::open(t.path, "TSTKND");
    ASSERT_TRUE(mapped.ok()) << mapped.status().str();
    EXPECT_TRUE(mapped->mapped());
    expectStoreMatches(*mapped, t);

    auto owned = StoreFile::open(t.path, "TSTKND",
                                 /*prefer_mmap=*/false);
    ASSERT_TRUE(owned.ok());
    EXPECT_FALSE(owned->mapped());
    expectStoreMatches(*owned, t);

    // Spans survive moving the owner (mmap pointer and owned buffer
    // are both stable under move).
    StoreFile stolen = std::move(*mapped);
    expectStoreMatches(stolen, t);

    // Wrong kind and any-kind opens.
    auto wrong = StoreFile::open(t.path, "OTHERK");
    ASSERT_FALSE(wrong.ok());
    EXPECT_EQ(wrong.status().code(), StatusCode::InvalidInput);
    EXPECT_TRUE(StoreFile::open(t.path, "").ok());
    fs::remove_all(dir);
}

TEST(Store, MmapFailureFallsBackToOwnedRead)
{
    const fs::path dir = scratchDir("genax_store_mmapfail");
    const TestStore t = buildTestStore(dir);
    ScopedFaultPlan plan(
        {{fault::kStoreMmapFail, {.fireOnNth = 1}}});
    auto store = StoreFile::open(t.path, "TSTKND");
    ASSERT_TRUE(store.ok()) << store.status().str();
    EXPECT_FALSE(store->mapped());
    expectStoreMatches(*store, t);
    fs::remove_all(dir);
}

TEST(Store, OpenRejectsMissingAndTinyFiles)
{
    const fs::path dir = scratchDir("genax_store_tiny");
    const std::string missing = (dir / "nope").string();
    auto r = StoreFile::open(missing, "");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::IoError);

    const std::string tiny = (dir / "tiny").string();
    spit(tiny, "short");
    auto t = StoreFile::open(tiny, "");
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), StatusCode::InvalidInput);
    fs::remove_all(dir);
}

// ----------------------------------------------------- chaos sweeps

TEST(StoreChaos, TruncationAtEverySectionBoundary)
{
    const fs::path dir = scratchDir("genax_store_trunc");
    const TestStore t = buildTestStore(dir);
    const std::string pristine = slurp(t.path);

    // Every section boundary, each off-by-one around it, plus the
    // header and table edges: all must fail with a typed Status.
    std::vector<size_t> cuts = {0, 1, sizeof(StoreHeader) - 1,
                                sizeof(StoreHeader),
                                pristine.size() - 1};
    {
        auto store = StoreFile::open(t.path, "");
        ASSERT_TRUE(store.ok());
        for (const auto &s : store->sections()) {
            for (const i64 d : {-1, 0, 1}) {
                cuts.push_back(static_cast<size_t>(
                    static_cast<i64>(s.offset) + d));
                cuts.push_back(static_cast<size_t>(
                    static_cast<i64>(s.offset + s.bytes) + d));
            }
        }
    }
    const std::string cut_path = (dir / "cut").string();
    for (const size_t cut : cuts) {
        if (cut >= pristine.size())
            continue;
        spit(cut_path, pristine.substr(0, cut));
        for (const bool prefer_mmap : {true, false}) {
            auto r = StoreFile::open(cut_path, "TSTKND",
                                     prefer_mmap);
            ASSERT_FALSE(r.ok())
                << "cut " << cut << " mmap " << prefer_mmap;
            EXPECT_EQ(r.status().code(), StatusCode::InvalidInput)
                << "cut " << cut << ": " << r.status().str();
        }
    }
    fs::remove_all(dir);
}

TEST(StoreChaos, SeededBitFlipsNeverCrashAndNeverLie)
{
    const fs::path dir = scratchDir("genax_store_bitflip");
    const TestStore t = buildTestStore(dir);
    const std::string pristine = slurp(t.path);

    // Checksummed extents: header, section table, every section. A
    // flip inside one MUST be rejected; a flip in alignment padding
    // may legally go unnoticed, but then the payload must still read
    // back identical to the pristine store.
    std::vector<std::pair<size_t, size_t>> checked = {
        {0, sizeof(StoreHeader)}};
    {
        auto store = StoreFile::open(t.path, "");
        ASSERT_TRUE(store.ok());
        checked.emplace_back(sizeof(StoreHeader),
                             store->sections().size() *
                                 sizeof(StoreSectionEntry));
        for (const auto &s : store->sections())
            checked.emplace_back(s.offset, s.bytes);
    }
    auto inChecked = [&](size_t off) {
        for (const auto &[start, bytes] : checked)
            if (off >= start && off < start + bytes)
                return true;
        return false;
    };

    Rng rng(903);
    const std::string flip_path = (dir / "flipped").string();
    int rejected = 0, benign = 0;
    for (int i = 0; i < 300; ++i) {
        const size_t off = rng.below(pristine.size());
        const u8 bit = static_cast<u8>(1u << rng.below(8));
        std::string mutant = pristine;
        mutant[off] = static_cast<char>(
            static_cast<u8>(mutant[off]) ^ bit);
        spit(flip_path, mutant);

        auto r = StoreFile::open(flip_path, "TSTKND",
                                 /*prefer_mmap=*/(i & 1) != 0);
        if (inChecked(off)) {
            ASSERT_FALSE(r.ok())
                << "flip at " << off << " bit " << int(bit)
                << " not detected";
            EXPECT_EQ(r.status().code(), StatusCode::InvalidInput)
                << r.status().str();
            ++rejected;
        } else if (r.ok()) {
            // Padding flip: contents must be indistinguishable from
            // the pristine store.
            expectStoreMatches(*r, t);
            ++benign;
        } else {
            EXPECT_EQ(r.status().code(), StatusCode::InvalidInput);
            ++rejected;
        }
    }
    // The store is dense, so nearly every flip lands in a checksummed
    // extent; the sweep is vacuous if that stops being true.
    EXPECT_GE(rejected, 250);
    fs::remove_all(dir);
}

// ------------------------------------------- FlatKmerIndex snapshots

TEST(FlatIndexSnapshot, SaveLoadMapViewAreEquivalent)
{
    const fs::path dir = scratchDir("genax_flatidx_snap");
    const std::string path = (dir / "seg.fkx").string();

    Rng rng(904);
    const Seq ref = randomSeq(rng, 6000);
    const u32 k = 9;
    const FlatKmerIndex built(ref, k);
    const IndexFingerprint fp = referenceFingerprint(ref, k);
    ASSERT_TRUE(built.save(path, fp).ok());

    auto loaded = FlatKmerIndex::load(path, &fp);
    ASSERT_TRUE(loaded.ok()) << loaded.status().str();
    EXPECT_FALSE(loaded->borrowed());

    auto mapping = FlatKmerIndex::mapView(path, &fp);
    ASSERT_TRUE(mapping.ok()) << mapping.status().str();
    EXPECT_TRUE(mapping->index().borrowed());
    EXPECT_TRUE(mapping->mapped());

    const FlatKmerIndex &owned_idx = *loaded;
    const FlatKmerIndex &mapped_idx = mapping->index();
    for (const FlatKmerIndex *idx : {&owned_idx, &mapped_idx}) {
        EXPECT_EQ(idx->k(), built.k());
        EXPECT_EQ(idx->segmentLength(), built.segmentLength());
        EXPECT_EQ(idx->maxHitListSize(), built.maxHitListSize());
        for (u64 key = 0; key < (u64{1} << (2 * k)); ++key) {
            const auto want = built.lookup(key);
            const auto got = idx->lookup(key);
            ASSERT_EQ(got.size(), want.size()) << "key " << key;
            ASSERT_TRUE(std::equal(got.begin(), got.end(),
                                   want.begin()))
                << "key " << key;
        }
    }

    // A fingerprint from any other reference or k is rejected as
    // FailedPrecondition — distinct from corruption.
    const IndexFingerprint wrong_k = referenceFingerprint(ref, k + 1);
    auto rk = FlatKmerIndex::load(path, &wrong_k);
    ASSERT_FALSE(rk.ok());
    EXPECT_EQ(rk.status().code(), StatusCode::FailedPrecondition);
    const Seq other = randomSeq(rng, 6000);
    const IndexFingerprint wrong_ref = referenceFingerprint(other, k);
    auto rr = FlatKmerIndex::mapView(path, &wrong_ref);
    ASSERT_FALSE(rr.ok());
    EXPECT_EQ(rr.status().code(), StatusCode::FailedPrecondition);
    fs::remove_all(dir);
}

// --------------------------------------------- whole-ref snapshots

TEST(IndexSnapshot, BuildOpenRoundTrip)
{
    const fs::path dir = scratchDir("genax_snap_roundtrip");
    const std::string path = (dir / "ref.gxs").string();

    Rng rng(905);
    const Seq ref = randomSeq(rng, 9000);
    const std::vector<SnapshotContig> contigs = {
        {"chr1", 0, 5000}, {"chr2", 5000, 4000}};
    SegmentConfig cfg;
    cfg.k = 10;
    cfg.segmentCount = 3;
    cfg.overlap = 64;
    ASSERT_TRUE(
        IndexSnapshot::build(path, ref, contigs, cfg).ok());

    auto snap = IndexSnapshot::open(path);
    ASSERT_TRUE(snap.ok()) << snap.status().str();
    EXPECT_EQ(snap->k(), 10u);
    EXPECT_EQ(snap->referenceLength(), ref.size());
    EXPECT_EQ(snap->segmentCount(), 3u);
    EXPECT_EQ(snap->segmentOverlap(), 64u);
    EXPECT_TRUE(snap->mapped());
    ASSERT_EQ(snap->contigs().size(), 2u);
    EXPECT_EQ(snap->contigs()[0].name, "chr1");
    EXPECT_EQ(snap->contigs()[1].start, 5000u);
    EXPECT_EQ(snap->referenceSequence(), ref);

    // Per-segment views agree with freshly built indexes over the
    // same geometry.
    GenomeSegments segs(ref, cfg);
    ASSERT_EQ(segs.count(), snap->segmentCount());
    for (u64 i = 0; i < segs.count(); ++i) {
        EXPECT_EQ(snap->segmentStart(i), segs.start(i));
        EXPECT_EQ(snap->segmentLength(i), segs.length(i));
        const Seq bases(ref.begin() + segs.start(i),
                        ref.begin() + segs.start(i) +
                            segs.length(i));
        const FlatKmerIndex fresh(bases, cfg.k);
        const FlatKmerIndex view = snap->segmentView(i);
        EXPECT_TRUE(view.borrowed());
        EXPECT_EQ(view.maxHitListSize(), fresh.maxHitListSize());
        for (u64 key = 0; key < (u64{1} << (2 * cfg.k));
             key += 7) { // stride keeps the sweep fast
            const auto want = fresh.lookup(key);
            const auto got = view.lookup(key);
            ASSERT_EQ(got.size(), want.size());
            ASSERT_TRUE(std::equal(got.begin(), got.end(),
                                   want.begin()));
        }
    }

    // Fingerprint cross-checks.
    const IndexFingerprint want = referenceFingerprint(ref, cfg.k);
    EXPECT_TRUE(
        checkFingerprint(snap->fingerprint(), want).ok());
    fs::remove_all(dir);
}

TEST(IndexSnapshot, BitFlipSweepRejectsCleanly)
{
    const fs::path dir = scratchDir("genax_snap_bitflip");
    const std::string path = (dir / "ref.gxs").string();

    Rng rng(906);
    const Seq ref = randomSeq(rng, 4000);
    SegmentConfig cfg;
    cfg.k = 8;
    cfg.segmentCount = 2;
    cfg.overlap = 32;
    ASSERT_TRUE(IndexSnapshot::build(
                    path, ref, {{"c", 0, ref.size()}}, cfg)
                    .ok());
    const std::string pristine = slurp(path);

    const std::string flip_path = (dir / "flipped").string();
    for (int i = 0; i < 64; ++i) {
        const size_t off = rng.below(pristine.size());
        std::string mutant = pristine;
        mutant[off] = static_cast<char>(
            static_cast<u8>(mutant[off]) ^
            static_cast<u8>(1u << rng.below(8)));
        spit(flip_path, mutant);
        auto r = IndexSnapshot::open(flip_path);
        if (!r.ok()) {
            EXPECT_EQ(r.status().code(), StatusCode::InvalidInput)
                << "flip " << off << ": " << r.status().str();
        } else {
            // Padding flip — snapshot must be fully intact.
            EXPECT_EQ(r->referenceSequence(), ref);
        }
    }
    fs::remove_all(dir);
}

// ------------------------------------- end-to-end pipeline identity

struct SnapWorkload
{
    std::vector<FastaRecord> ref;
    std::vector<FastqRecord> reads;
    std::string snapPath;
};

SnapWorkload
snapWorkload(const fs::path &dir)
{
    SnapWorkload w;
    Rng rng(907);
    w.ref.push_back({"chrA", randomSeq(rng, 9000)});
    w.ref.push_back({"chrB", randomSeq(rng, 6000)});
    const ContigMap map(w.ref);
    const Seq &cat = map.sequence();
    for (int i = 0; i < 36; ++i) {
        const u64 pos = rng.below(cat.size() - 80);
        Seq s(cat.begin() + pos, cat.begin() + pos + 72);
        if (i % 5 == 0) // sprinkle mismatches
            s[rng.below(s.size())] =
                static_cast<Base>((s[0] + 1) & 3);
        std::vector<u8> qual(s.size(), 30);
        w.reads.push_back(
            {"r" + std::to_string(i), std::move(s), qual});
    }

    std::vector<SnapshotContig> contigs;
    for (const auto &c : map.contigs())
        contigs.push_back({c.name, c.start, c.length});
    SegmentConfig cfg;
    cfg.k = 11;
    cfg.segmentCount = 4;
    cfg.overlap = 256;
    w.snapPath = (dir / "ref.gxs").string();
    EXPECT_TRUE(IndexSnapshot::build(w.snapPath, map.sequence(),
                                     contigs, cfg)
                    .ok());
    return w;
}

struct RunOut
{
    std::string sam;
    PipelineResult res;
};

RunOut
runAligned(const SnapWorkload &w, const PipelineOptions &opts,
           u64 batch_reads)
{
    RunOut out;
    std::ostringstream sink;
    StatusOr<PipelineResult> res = [&] {
        if (batch_reads > 0) {
            std::ostringstream fastq;
            EXPECT_TRUE(writeFastq(fastq, w.reads).ok());
            std::istringstream in(fastq.str());
            FastqReader reader(in);
            PipelineOptions o = opts;
            o.batchReads = batch_reads;
            return alignStreamToSam(w.ref, reader, sink, o);
        }
        return alignToSam(w.ref, w.reads, sink, opts);
    }();
    EXPECT_TRUE(res.ok()) << res.status().str();
    if (res.ok())
        out.res = *res;
    out.sam = sink.str();
    return out;
}

TEST(IndexSnapshotPipeline, SamIdenticalAtAnyBatchAndThreads)
{
    const fs::path dir = scratchDir("genax_snap_pipeline");
    const SnapWorkload w = snapWorkload(dir);

    PipelineOptions base;
    base.k = 11;
    base.segments = 4;
    base.segmentOverlap = 256;

    for (const unsigned threads : {1u, 8u}) {
        PipelineOptions plain = base;
        plain.threads = threads;
        const RunOut want = runAligned(w, plain, 0);
        EXPECT_FALSE(want.res.indexFromSnapshot);

        for (const u64 batch : {u64{0}, u64{7}, u64{64}}) {
            PipelineOptions snap = base;
            snap.threads = threads;
            snap.indexSnapshot = w.snapPath;
            const RunOut got = runAligned(w, snap, batch);
            EXPECT_EQ(got.sam, want.sam)
                << "threads " << threads << " batch " << batch;
#if !defined(GENAX_KMER_INDEX_ORACLE)
            EXPECT_TRUE(got.res.indexFromSnapshot);
            EXPECT_FALSE(got.res.indexFallback);
#endif
            EXPECT_EQ(got.res.mapped, want.res.mapped);
            EXPECT_EQ(got.res.failed, want.res.failed);
            EXPECT_EQ(got.res.perf.totalSeconds,
                      want.res.perf.totalSeconds)
                << "modelled time must not depend on the index "
                   "source";
            EXPECT_EQ(got.res.perf.extensionJobs,
                      want.res.perf.extensionJobs);
        }
    }
    fs::remove_all(dir);
}

TEST(IndexSnapshotPipeline, CorruptSnapshotDegradesToIdenticalRebuild)
{
    const fs::path dir = scratchDir("genax_snap_degrade");
    const SnapWorkload w = snapWorkload(dir);

    PipelineOptions base;
    base.k = 11;
    base.segments = 4;
    base.segmentOverlap = 256;
    const RunOut want = runAligned(w, base, 0);

    // Corrupt a postings byte past the header.
    const std::string bad_path = (dir / "bad.gxs").string();
    std::string bytes = slurp(w.snapPath);
    bytes[bytes.size() / 2] =
        static_cast<char>(static_cast<u8>(bytes[bytes.size() / 2]) ^
                          0x20);
    spit(bad_path, bytes);

    PipelineOptions snap = base;
    snap.indexSnapshot = bad_path;
    const RunOut got = runAligned(w, snap, 0);
    EXPECT_TRUE(got.res.indexFallback);
    EXPECT_FALSE(got.res.indexFromSnapshot);
    EXPECT_NE(got.res.indexNote.find("rebuilding from FASTA"),
              std::string::npos)
        << got.res.indexNote;
    EXPECT_EQ(got.sam, want.sam);

    // A missing snapshot file degrades the same way.
    PipelineOptions missing = base;
    missing.indexSnapshot = (dir / "nope.gxs").string();
    const RunOut got2 = runAligned(w, missing, 0);
    EXPECT_TRUE(got2.res.indexFallback);
    EXPECT_EQ(got2.sam, want.sam);
    fs::remove_all(dir);
}

TEST(IndexSnapshotPipeline, WrongReferenceIsAHardError)
{
    const fs::path dir = scratchDir("genax_snap_wrongref");
    const SnapWorkload w = snapWorkload(dir);

    // Same shape, different bases: the fingerprint must catch it.
    Rng rng(908);
    std::vector<FastaRecord> other = w.ref;
    other[0].seq = randomSeq(rng, other[0].seq.size());

    PipelineOptions opts;
    opts.k = 11;
    opts.segments = 4;
    opts.segmentOverlap = 256;
    opts.indexSnapshot = w.snapPath;
    std::ostringstream sink;
    const auto res = alignToSam(other, w.reads, sink, opts);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::FailedPrecondition);
    EXPECT_NE(res.status().str().find("fingerprint"),
              std::string::npos)
        << res.status().str();
    fs::remove_all(dir);
}

} // namespace
} // namespace genax
