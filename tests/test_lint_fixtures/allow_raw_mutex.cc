// Fixture: raw locking waived (e.g. interop with an external API).
#include <mutex>

// genax-lint: allow(raw-mutex): fixture exercising the suppression path
std::mutex gMu;

void
touch()
{
    // genax-lint: allow(raw-mutex): fixture exercising the suppression path
    const std::lock_guard<std::mutex> lk(gMu);
}
