// Fixture: raw std:: locking outside src/common/.
#include <mutex>

std::mutex gMu;

void
touch()
{
    const std::lock_guard<std::mutex> lk(gMu);
}
