// Fixture: float accumulation in a file that references the pool.
struct ThreadPool;

double
total(const double *xs, int n)
{
    double acc = 0;
    for (int i = 0; i < n; ++i)
        acc += xs[i];
    return acc;
}
