// Fixture: raw RNG outside common/rng.hh.
#include <random>

int
roll()
{
    std::mt19937 gen(42);
    std::mt19937_64 wide(42); // distinct identifier, same rule
    return static_cast<int>((gen() + wide()) & 0xff);
}
