// Fixture: raw RNG outside common/rng.hh.
#include <random>

int
roll()
{
    std::mt19937 gen(42);
    return static_cast<int>(gen() & 0xff);
}
