#!/usr/bin/env bash
# CTest driver for the genax_lint rule fixtures: every bad_<rule>
# fixture must be flagged with exactly that rule, every allow_<rule>
# fixture must come back clean with its suppression counted, a
# reasonless allow() must be rejected, and stripped comments/strings
# must not trip anything.
#
# Usage: run_fixtures.sh <genax_lint-binary> <fixture-dir>
set -u

lint="${1:?usage: run_fixtures.sh <genax_lint> <fixture-dir>}"
dir="${2:?usage: run_fixtures.sh <genax_lint> <fixture-dir>}"
fail=0

err() {
    echo "FIXTURE FAIL: $*" >&2
    fail=1
}

# rule -> repo-relative scope that puts the rule in force
scope_for() {
    case "$1" in
        naked_new) echo "src/seed/fixture.cc" ;;
        raw_rng) echo "src/align/fixture.cc" ;;
        unchecked_write) echo "src/io/fixture.cc" ;;
        wall_clock_hist) echo "src/serve/fixture.cc" ;;
        *) echo "src/genax/fixture.cc" ;;
    esac
}

# rule name as reported (underscores in file names, dashes in rules;
# a _<variant> suffix selects a second fixture pair for the same
# rule).
rule_name() {
    case "$1" in
        wall_clock_hist) echo "wall-clock" ;;
        *) echo "${1//_/-}" ;;
    esac
}

for f in "$dir"/bad_*.cc; do
    base=$(basename "$f" .cc)
    key="${base#bad_}"
    [[ "$key" == "noreason" ]] && continue
    rule=$(rule_name "$key")
    scope=$(scope_for "$key")
    out=$("$lint" --scope-as "$scope" --files "$f" 2>&1)
    rc=$?
    ((rc != 0)) || err "$base: expected findings, got exit 0: $out"
    grep -q "\[$rule\]" <<<"$out" ||
        err "$base: output does not flag [$rule]: $out"
done

for f in "$dir"/allow_*.cc; do
    base=$(basename "$f" .cc)
    key="${base#allow_}"
    scope=$(scope_for "$key")
    out=$("$lint" --scope-as "$scope" --files "$f" 2>&1)
    rc=$?
    ((rc == 0)) || err "$base: expected clean exit, got $rc: $out"
    grep -qE '[1-9][0-9]* suppression' <<<"$out" ||
        err "$base: suppression not counted: $out"
done

# A reasonless allow() is itself an error even though it names the
# right rule.
out=$("$lint" --scope-as "src/genax/fixture.cc" \
      --files "$dir/bad_noreason.cc" 2>&1)
rc=$?
((rc != 0)) || err "bad_noreason: expected failure, got exit 0"
grep -qi "without a reason" <<<"$out" ||
    err "bad_noreason: missing reason diagnostic: $out"

# Clean code stays clean under the strictest scope.
out=$("$lint" --scope-as "src/genax/fixture.cc" \
      --files "$dir/clean.cc" 2>&1)
rc=$?
((rc == 0)) || err "clean: expected exit 0, got $rc: $out"

if ((fail)); then
    echo "lint fixtures: FAILED" >&2
    exit 1
fi
echo "lint fixtures: OK"
