// Fixture: naked allocation in an arena-backed directory. Scanned
// as src/seed/fixture.cc by run_fixtures.sh.
int *
make()
{
    return new int[4];
}
