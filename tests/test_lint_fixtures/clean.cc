// Fixture: unremarkable code that trips no rule, even when scanned
// under the strictest scope. Mentions of banned identifiers inside
// comments ("std::mutex") and strings must not count.
#include <vector>

const char *kNote = "std::mutex lives in strings safely";

int
sum(const std::vector<int> &xs)
{
    int s = 0;
    for (const int x : xs)
        s += x;
    return s;
}
