// Fixture: a suppression without a reason is itself an error.
#include <mutex>

// genax-lint: allow(raw-mutex)
std::mutex gMu;
