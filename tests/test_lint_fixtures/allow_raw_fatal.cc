// Fixture: GENAX_FATAL waived with a reason.
void
die()
{
    // genax-lint: allow(raw-fatal): fixture exercising the suppression path
    GENAX_FATAL("unrecoverable");
}
