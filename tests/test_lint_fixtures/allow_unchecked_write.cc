// Fixture: a discarded write waived with a reason, plus the checked
// patterns the rule must not flag.
long checkedWrite(int fd, const void *p, unsigned long n);

int
save(int fd, const void *p, unsigned long n)
{
    // genax-lint: allow(unchecked-write): fixture exercising the suppression path
    ::write(fd, p, n);
    if (::write(fd, p, n) < 0)
        return -1;
    const long got = ::write(fd, p, n);
    return got < 0 ? -1 : ::fsync(fd);
}
