// Fixture: hash-order iteration in a file that touches ledger
// output. Scanned as src/genax/fixture.cc by run_fixtures.sh.
#include <unordered_map>

int ledger = 0;
std::unordered_map<int, int> counts;

int
digest()
{
    int s = 0;
    for (const auto &kv : counts)
        s ^= kv.second;
    return s;
}
