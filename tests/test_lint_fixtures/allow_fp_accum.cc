// Fixture: the same accumulation, waived with a reason.
struct ThreadPool;

double
total(const double *xs, int n)
{
    double acc = 0;
    for (int i = 0; i < n; ++i) {
        // genax-lint: allow(fp-accum): serial loop, never sharded
        acc += xs[i];
    }
    return acc;
}
