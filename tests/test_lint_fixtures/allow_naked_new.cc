// Fixture: a waived allocation (e.g. one-time setup, not per-read).
int *
make()
{
    // genax-lint: allow(naked-new): one-time table built at startup, not per-read scratch
    return new int[4];
}
