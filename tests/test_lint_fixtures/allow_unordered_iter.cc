// Fixture: the same iteration, waived with a reasoned directive.
#include <unordered_map>

int ledger = 0;
std::unordered_map<int, int> counts;

int
digest()
{
    int s = 0;
    // genax-lint: allow(unordered-iter): XOR digest is order-insensitive
    for (const auto &kv : counts)
        s ^= kv.second;
    return s;
}
