// Fixture: POSIX/stdio write results discarded in src/io/. Never
// compiled, so no headers are needed.
void
flushAll(int fd, const void *p, unsigned long n, void *f)
{
    ::write(fd, p, n);
    fwrite(p, 1, n, f);
    (void)::fsync(fd);
}
