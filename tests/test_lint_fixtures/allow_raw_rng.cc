// Fixture: raw RNG waived with a reason.
#include <random>

int
roll()
{
    // genax-lint: allow(raw-rng): fixture exercising the suppression path
    std::mt19937 gen(42);
    return static_cast<int>(gen() & 0xff);
}
