// Fixture: the same reads, each waived with a reason.
#include <cstdlib>
#include <ctime>

long
stamp()
{
    // genax-lint: allow(wall-clock): fixture exercising the suppression path
    const char *tz = std::getenv("TZ");
    // genax-lint: allow(wall-clock): fixture exercising the suppression path
    long t = time(nullptr);
    return t + (tz != nullptr ? 1 : 0);
}
