// Fixture: wall-clock and environment reads inside src/.
#include <cstdlib>
#include <ctime>

long
stamp()
{
    const char *tz = std::getenv("TZ");
    long t = time(nullptr);
    return t + (tz != nullptr ? 1 : 0);
}
