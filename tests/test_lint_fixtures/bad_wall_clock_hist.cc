// Fixture: latency timing with the non-monotonic
// high_resolution_clock inside src/. The sanctioned pattern is
// steady_clock deltas feeding a LatencyHistogram, which this fixture
// deliberately does not use.
#include <chrono>

long
latencyNanos()
{
    const auto t0 = std::chrono::high_resolution_clock::now();
    const auto t1 = std::chrono::high_resolution_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                t0)
        .count();
}
