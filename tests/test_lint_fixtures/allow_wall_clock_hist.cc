// Fixture: the same non-monotonic clock, waived with a reason. The
// un-suppressed fix is steady_clock deltas into a LatencyHistogram.
#include <chrono>

long
latencyNanos()
{
    // genax-lint: allow(wall-clock): fixture exercising the suppression path
    const auto t0 = std::chrono::high_resolution_clock::now();
    // genax-lint: allow(wall-clock): fixture exercising the suppression path
    const auto t1 = std::chrono::high_resolution_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                t0)
        .count();
}
