// Fixture: GENAX_FATAL outside src/common/ and tests/. Never
// compiled, so the macro needs no definition here.
void
die()
{
    GENAX_FATAL("unrecoverable");
}
