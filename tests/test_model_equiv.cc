/**
 * @file
 * Model-equivalence pins for the event-driven accelerator model: the
 * optimized closed-form / event-driven implementations must be
 * bit-identical to their lock-step oracles, and the end-to-end
 * modelled numbers must be invariant to every host-execution knob
 * (threads, batch size). These tests are what lets the
 * GENAX_MODEL_ORACLE CI leg mean something: the oracle and the
 * production path are both always compiled, and this file diffs them
 * directly regardless of which one simulate() dispatches to.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "align/simd/dispatch.hh"
#include "common/check.hh"
#include "common/faultinject.hh"
#include "common/rng.hh"
#include "genax/pipeline.hh"
#include "genax/seeding_sim.hh"
#include "genax/system.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "silla/silla_traceback.hh"
#include "sillax/edit_machine.hh"
#include "sillax/scoring_machine.hh"

namespace genax {
namespace {

// ------------------------------------------ seeding lane simulator

void
expectSimEqual(const SeedingSimConfig &cfg,
               const std::vector<LaneWork> &work, const char *what)
{
    const SeedingLaneSim sim(cfg);
    const auto naive = sim.simulateNaive(work);
    const auto event = sim.simulateEvent(work);
    EXPECT_EQ(naive.cycles, event.cycles)
        << what << " lanes=" << cfg.lanes << " banks=" << cfg.banks
        << " width=" << cfg.issueWidth << " lat=" << cfg.sramLatency;
    EXPECT_EQ(naive.grants, event.grants) << what;
    EXPECT_EQ(naive.bankConflicts, event.bankConflicts) << what;
}

std::vector<LaneWork>
randomWork(Rng &rng, u64 reads, u64 max_lookups, u64 max_cam)
{
    std::vector<LaneWork> work(reads);
    for (auto &w : work) {
        // Leave a healthy share of degenerate reads in the mix:
        // zero-lookup (CAM only), zero-CAM, and fully empty reads
        // exercise the event paths that skip issue cycles entirely.
        const u64 shape = rng.below(10);
        w.indexLookups = shape < 2 ? 0 : rng.below(max_lookups + 1);
        w.camOps = shape == 2 ? 0 : rng.below(max_cam + 1);
    }
    return work;
}

TEST(ModelEquiv, SeedingSimEventMatchesNaiveAcrossConfigs)
{
    Rng rng(9001);
    for (const u32 lanes : {1u, 3u, 8u, 128u}) {
        for (const u32 banks : {1u, 2u, 32u}) {
            for (const u32 width : {1u, 4u}) {
                SeedingSimConfig cfg;
                cfg.lanes = lanes;
                cfg.banks = banks;
                cfg.issueWidth = width;
                cfg.sramLatency = 1 + static_cast<u32>(rng.below(4));
                cfg.seed = 1 + rng.below(1000);
                const auto work =
                    randomWork(rng, 2 * lanes + 7, 60, 40);
                expectSimEqual(cfg, work, "config sweep");
            }
        }
    }
}

TEST(ModelEquiv, SeedingSimDegenerateWorkloads)
{
    SeedingSimConfig cfg;
    cfg.lanes = 8;
    cfg.banks = 2;

    expectSimEqual(cfg, {}, "empty work list");
    expectSimEqual(cfg, std::vector<LaneWork>(20, LaneWork{0, 0}),
                   "all-empty reads");
    expectSimEqual(cfg, std::vector<LaneWork>(20, LaneWork{0, 13}),
                   "CAM-only reads");
    expectSimEqual(cfg, std::vector<LaneWork>(20, LaneWork{17, 0}),
                   "lookup-only reads");
    expectSimEqual(cfg, {{1, 0}}, "single one-lookup read");

    // Fewer reads than lanes: some lanes never work at all.
    cfg.lanes = 128;
    expectSimEqual(cfg, {{5, 3}, {0, 0}, {9, 1}},
                   "mostly idle lane array");
}

TEST(ModelEquiv, SeedingSimHeavyContention)
{
    // Long runs through a single bank maximize the stretches the
    // event path must collapse to closed form while every issue
    // attempt conflicts.
    SeedingSimConfig cfg;
    cfg.lanes = 16;
    cfg.banks = 1;
    cfg.issueWidth = 4;
    Rng rng(424);
    expectSimEqual(cfg, randomWork(rng, 64, 120, 20),
                   "single-bank contention");

    cfg.banks = 32;
    cfg.lanes = 128;
    expectSimEqual(cfg, randomWork(rng, 300, 80, 60),
                   "full-array contention");
}

TEST(ModelEquiv, SeedingSimSeedSensitivity)
{
    // Identical config + work + seed must replay exactly; a
    // different seed draws a different bank-address stream. (The
    // second half is a sanity check that the pin is not vacuous.)
    SeedingSimConfig cfg;
    cfg.lanes = 32;
    cfg.banks = 4;
    Rng rng(77);
    const auto work = randomWork(rng, 100, 50, 30);

    for (const u64 seed : {1ull, 2ull, 999ull}) {
        cfg.seed = seed;
        expectSimEqual(cfg, work, "seed sweep");
    }

    cfg.seed = 1;
    const auto a = SeedingLaneSim(cfg).simulateEvent(work);
    cfg.seed = 2;
    const auto b = SeedingLaneSim(cfg).simulateEvent(work);
    EXPECT_NE(a.bankConflicts, b.bankConflicts)
        << "different bank-address streams should conflict "
           "differently";
}

// ------------------------------------- scoring-machine back-propagation

Seq
randomSeq(Rng &rng, size_t len)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(4)));
    return s;
}

TEST(ModelEquiv, BackPropagateClosedFormMatchesNaive)
{
    // The closed-form reduction (one reverse sweep) and the
    // lock-step nearest-neighbour reference must agree on both the
    // reduced value and the cycle count, for every PE-grid state a
    // run() can leave behind.
    const Scoring sc;
    Rng rng(1331);
    for (const u32 k : {4u, 8u, 16u}) {
        // Two machines fed identically, so neither reduction can
        // disturb the other's register state.
        StructuralScoringMachine closed(k, sc), naive(k, sc);
        for (int t = 0; t < 20; ++t) {
            const Seq ref = randomSeq(rng, 40 + rng.below(80));
            Seq qry = ref;
            for (u64 e = rng.below(8); e > 0 && !qry.empty(); --e)
                qry[rng.below(qry.size())] =
                    static_cast<Base>(rng.below(4));
            const auto a = closed.run(ref, qry);
            const auto b = naive.run(ref, qry);
            ASSERT_EQ(a.best, b.best);

            const auto [cv, cc] = closed.backPropagateBest();
            const auto [nv, nc] = naive.backPropagateBestNaive();
            EXPECT_EQ(cv, nv) << "k=" << k << " t=" << t;
            EXPECT_EQ(cc, nc) << "k=" << k << " t=" << t;
            EXPECT_EQ(cv, a.best);
        }
    }
}

// --------------------------------- extension-machine equivalence

/** Mutate `qry` in place with `edits` random substitutions and
 *  occasional single-base indels — enough path diversity to exercise
 *  gap adoptions and broken-trail reruns in the traceback machine. */
void
mutate(Rng &rng, Seq &qry, unsigned edits)
{
    for (unsigned e = 0; e < edits && !qry.empty(); ++e) {
        const auto pos = static_cast<std::ptrdiff_t>(
            rng.below(qry.size()));
        switch (rng.below(6)) {
          case 0:
            qry.erase(qry.begin() + pos);
            break;
          case 1:
            qry.insert(qry.begin() + pos,
                       static_cast<Base>(rng.below(4)));
            break;
          default:
            qry[static_cast<size_t>(pos)] = static_cast<Base>(
                (qry[static_cast<size_t>(pos)] + 1 + rng.below(3)) & 3);
            break;
        }
    }
}

void
expectSameAlignment(const SillaAlignment &a, const SillaAlignment &b,
                    u32 k, size_t len, unsigned edits)
{
    const std::string what = "k=" + std::to_string(k) +
                             " len=" + std::to_string(len) +
                             " edits=" + std::to_string(edits);
    EXPECT_EQ(a.score, b.score) << what;
    EXPECT_EQ(a.refEnd, b.refEnd) << what;
    EXPECT_EQ(a.qryEnd, b.qryEnd) << what;
    EXPECT_EQ(a.cigar.str(), b.cigar.str()) << what;
    EXPECT_EQ(a.stats.streamCycles, b.stats.streamCycles) << what;
    EXPECT_EQ(a.stats.reduceCycles, b.stats.reduceCycles) << what;
    EXPECT_EQ(a.stats.collectCycles, b.stats.collectCycles) << what;
    EXPECT_EQ(a.stats.reruns, b.stats.reruns) << what;
    EXPECT_EQ(a.stats.rerunCycles, b.stats.rerunCycles) << what;
}

TEST(ModelEquiv, TracebackEventMatchesNaiveAcrossJobs)
{
    // The escalating-subgrid event path must reproduce the full-grid
    // oracle bit-for-bit — scores, CIGARs and the modelled cycle /
    // rerun accounting — across edit bounds and job sizes, including
    // clean reads (B stays at the smallest bound) and heavily edited
    // ones (escalation up to B = K).
    Rng rng(2468);
    for (const u32 k : {8u, 16u, 40u}) {
        SillaTraceback naive_m(k, Scoring{}), event_m(k, Scoring{});
        for (const size_t len : {size_t{24}, size_t{101}, size_t{150}}) {
            for (const unsigned edits : {0u, 1u, 3u, 9u}) {
                for (int t = 0; t < 4; ++t) {
                    const Seq ref = randomSeq(rng, len);
                    Seq qry = ref;
                    mutate(rng, qry, edits);
                    expectSameAlignment(naive_m.alignNaive(ref, qry),
                                        event_m.alignEvent(ref, qry),
                                        k, len, edits);
                }
            }
        }
    }
}

TEST(ModelEquiv, EditMachineEventMatchesNaive)
{
    // Result and run stats (cycles, activation counts) must agree —
    // the event path reads comparisons off the strings but models the
    // same machine.
    Rng rng(1357);
    for (const u32 k : {4u, 8u, 16u, 40u}) {
        StructuralEditMachine m(k);
        for (int t = 0; t < 24; ++t) {
            const Seq ref = randomSeq(rng, 20 + rng.below(130));
            Seq qry = ref;
            mutate(rng, qry, static_cast<unsigned>(rng.below(k + 4)));
            const auto a = m.distanceNaive(ref, qry);
            const SillaRunStats sa = m.lastStats();
            const auto b = m.distanceEvent(ref, qry);
            const SillaRunStats sb = m.lastStats();
            const std::string what =
                "k=" + std::to_string(k) + " t=" + std::to_string(t);
            EXPECT_EQ(a, b) << what;
            EXPECT_EQ(sa.cycles, sb.cycles) << what;
            EXPECT_EQ(sa.peakActive, sb.peakActive) << what;
            EXPECT_EQ(sa.totalActivations, sb.totalActivations) << what;
        }
    }
}

TEST(ModelEquiv, ScoringMachineEventMatchesNaive)
{
    Rng rng(8642);
    for (const u32 k : {8u, 16u, 40u}) {
        StructuralScoringMachine naive_m(k, Scoring{}),
            event_m(k, Scoring{});
        for (int t = 0; t < 16; ++t) {
            const Seq ref = randomSeq(rng, 30 + rng.below(120));
            Seq qry = ref;
            mutate(rng, qry, static_cast<unsigned>(rng.below(10)));
            const auto a = naive_m.runNaive(ref, qry);
            const auto b = event_m.runEvent(ref, qry);
            const std::string what =
                "k=" + std::to_string(k) + " t=" + std::to_string(t);
            EXPECT_EQ(a.best, b.best) << what;
            EXPECT_EQ(a.winnerI, b.winnerI) << what;
            EXPECT_EQ(a.winnerD, b.winnerD) << what;
            EXPECT_EQ(a.bestCycle, b.bestCycle) << what;
            EXPECT_EQ(a.refEnd, b.refEnd) << what;
            EXPECT_EQ(a.qryEnd, b.qryEnd) << what;
            EXPECT_EQ(a.streamCycles, b.streamCycles) << what;
        }
    }
}

TEST(ModelEquiv, KernelTierSweepAvx2MatchesScalar)
{
    // The AVX2 row kernels must be bit-identical to the scalar
    // reference through the public machines — forced-tier runs of the
    // event paths are diffed field by field. Skipped (not silently
    // passed) when the host or build cannot run AVX2.
    namespace simd = genax::simd;
    if (!simd::kernelTierSupported(simd::KernelTier::Avx2))
        GTEST_SKIP() << "AVX2 tier not compiled or not supported here";
    struct TierGuard
    {
        ~TierGuard() { simd::clearKernelTierOverride(); }
    } guard;

    Rng rng(97531);
    std::vector<std::pair<Seq, Seq>> jobs;
    for (int t = 0; t < 12; ++t) {
        Seq ref = randomSeq(rng, 40 + rng.below(110));
        Seq qry = ref;
        mutate(rng, qry, static_cast<unsigned>(rng.below(8)));
        jobs.emplace_back(std::move(ref), std::move(qry));
    }

    auto run_tier = [&](simd::KernelTier tier) {
        GENAX_CHECK(simd::setKernelTier(tier).ok(),
                    "forcing tier must succeed");
        std::vector<SillaScoreResult> scores;
        std::vector<SillaAlignment> aligns;
        std::vector<std::optional<u32>> dists;
        StructuralScoringMachine score_m(40, Scoring{});
        SillaTraceback trace_m(40, Scoring{});
        StructuralEditMachine edit_m(40);
        for (const auto &[ref, qry] : jobs) {
            scores.push_back(score_m.runEvent(ref, qry));
            aligns.push_back(trace_m.alignEvent(ref, qry));
            dists.push_back(edit_m.distanceEvent(ref, qry));
        }
        return std::tuple(std::move(scores), std::move(aligns),
                          std::move(dists));
    };

    const auto scalar = run_tier(simd::KernelTier::Scalar);
    const auto avx2 = run_tier(simd::KernelTier::Avx2);
    for (size_t j = 0; j < jobs.size(); ++j) {
        const auto &sa = std::get<0>(scalar)[j];
        const auto &sb = std::get<0>(avx2)[j];
        EXPECT_EQ(sa.best, sb.best) << "job " << j;
        EXPECT_EQ(sa.streamCycles, sb.streamCycles) << "job " << j;
        EXPECT_EQ(sa.refEnd, sb.refEnd) << "job " << j;
        EXPECT_EQ(sa.qryEnd, sb.qryEnd) << "job " << j;
        expectSameAlignment(std::get<1>(scalar)[j],
                            std::get<1>(avx2)[j], 40,
                            jobs[j].first.size(), 0);
        EXPECT_EQ(std::get<2>(scalar)[j], std::get<2>(avx2)[j])
            << "job " << j;
    }
}

// ------------------------------------------- end-to-end invariance

struct Workload
{
    std::vector<FastaRecord> ref;
    std::vector<FastqRecord> reads;
};

Workload
makeWorkload()
{
    RefGenConfig rcfg;
    rcfg.length = 24000;
    rcfg.seed = 4321;
    const Seq ref = generateReference(rcfg);

    ReadSimConfig rs;
    rs.numReads = 90;
    rs.seed = 8765;
    const auto sim = simulateReads(ref, rs);

    Workload w;
    w.ref.resize(1);
    w.ref[0].name = "equiv_ref";
    w.ref[0].seq = ref;
    w.reads.resize(sim.size());
    for (size_t i = 0; i < sim.size(); ++i) {
        w.reads[i].name = "r" + std::to_string(i);
        w.reads[i].seq = sim[i].seq;
        w.reads[i].qual = sim[i].qual;
    }
    return w;
}

struct RunOutput
{
    std::string sam;
    PipelineResult res;
};

RunOutput
runPipeline(const Workload &w, unsigned threads, u64 batch_reads)
{
    PipelineOptions opts;
    opts.engine = PipelineOptions::Engine::GenAx;
    opts.segments = 5;
    opts.threads = threads;
    opts.batchReads = batch_reads;

    std::ostringstream sink;
    const auto res = [&]() -> StatusOr<PipelineResult> {
        if (batch_reads > 0) {
            std::ostringstream fastq;
            GENAX_TRY(writeFastq(fastq, w.reads));
            std::istringstream in(fastq.str());
            FastqReader reader(in);
            return alignStreamToSam(w.ref, reader, sink, opts);
        }
        return alignToSam(w.ref, w.reads, sink, opts);
    }();
    EXPECT_TRUE(res.ok()) << res.status().str();
    return {sink.str(), res.ok() ? *res : PipelineResult{}};
}

void
expectSameModel(const RunOutput &a, const RunOutput &b,
                const std::string &what)
{
    EXPECT_EQ(a.sam, b.sam) << what;
    EXPECT_EQ(a.res.mapped, b.res.mapped) << what;
    EXPECT_EQ(a.res.degraded, b.res.degraded) << what;
    // The modelled report must be bit-identical — the doubles are
    // derived from slot-ordered u64 sums, so exact equality is the
    // contract, not a tolerance.
    EXPECT_EQ(a.res.perf.seedingSeconds, b.res.perf.seedingSeconds)
        << what;
    EXPECT_EQ(a.res.perf.extensionSeconds, b.res.perf.extensionSeconds)
        << what;
    EXPECT_EQ(a.res.perf.dramSeconds, b.res.perf.dramSeconds) << what;
    EXPECT_EQ(a.res.perf.totalSeconds, b.res.perf.totalSeconds) << what;
    EXPECT_EQ(a.res.perf.seeding.indexLookups,
              b.res.perf.seeding.indexLookups)
        << what;
    EXPECT_EQ(a.res.perf.lanes.streamCycles,
              b.res.perf.lanes.streamCycles)
        << what;
}

TEST(ModelEquiv, PipelineInvariantToThreadsAndBatch)
{
    const Workload w = makeWorkload();
    const RunOutput base = runPipeline(w, 1, 0);
    EXPECT_GT(base.res.mapped, 0u);
    for (const unsigned threads : {1u, 8u}) {
        for (const u64 batch : {u64{7}, u64{64}}) {
            const RunOutput run = runPipeline(w, threads, batch);
            expectSameModel(base, run,
                            "threads=" + std::to_string(threads) +
                                " batch=" + std::to_string(batch));
        }
    }
}

TEST(ModelEquiv, PipelineInvariantUnderArmedFaults)
{
    // With seeding-phase (CAM overflow) and extension-phase (lane
    // issue) faults armed, the keyed fault scopes must make every
    // firing decision a pure function of (segment, read) — so the SAM
    // bytes, outcome ledger and modelled report stay identical at any
    // threads × batch combination even while faults bite. This is the
    // pin for the two-phase seeding/extension split: each phase
    // re-opens the read's scope, and the two sites hit in disjoint
    // phases.
    const Workload w = makeWorkload();
    FaultSpec lane;
    lane.probability = 0.25;
    lane.seed = 99;
    FaultSpec cam;
    cam.probability = 0.15;
    cam.seed = 7;
    ScopedFaultPlan plan{{fault::kLaneIssue, lane},
                         {fault::kCamOverflow, cam}};

    const RunOutput base = runPipeline(w, 1, 0);
    EXPECT_GT(FaultInjector::instance().fires(fault::kLaneIssue), 0u)
        << "fault plan never bit; the sweep would be vacuous";
    for (const unsigned threads : {1u, 8u}) {
        for (const u64 batch : {u64{7}, u64{64}}) {
            const RunOutput run = runPipeline(w, threads, batch);
            expectSameModel(base, run,
                            "faults armed, threads=" +
                                std::to_string(threads) +
                                " batch=" + std::to_string(batch));
        }
    }
}

TEST(ModelEquiv, SimulatedSeedingLanesInvariantToThreads)
{
    // With simulateSeedingLanes on, streamEnd() shards the
    // per-segment lane simulations across the worker pool; each
    // simulation is a pure function of (segment seed, work list), so
    // the modelled cycles must not depend on the shard layout.
    RefGenConfig rcfg;
    rcfg.length = 60000;
    rcfg.seed = 31;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig rs;
    rs.numReads = 80;
    rs.seed = 32;
    const auto sim_reads = simulateReads(ref, rs);
    std::vector<Seq> reads;
    for (const auto &r : sim_reads)
        reads.push_back(r.seq);

    GenAxConfig cfg;
    cfg.segmentCount = 6;
    cfg.simulateSeedingLanes = true;

    GenAxPerf base;
    std::vector<Mapping> base_maps;
    for (const unsigned threads : {1u, 8u, 0u}) {
        cfg.threads = threads;
        GenAxSystem sys(ref, cfg);
        const auto maps = sys.alignAll(reads);
        if (threads == 1) {
            base = sys.perf();
            base_maps = maps;
            EXPECT_GT(base.seedingSeconds, 0.0);
            continue;
        }
        const std::string what = "threads=" + std::to_string(threads);
        EXPECT_EQ(sys.perf().seedingSeconds, base.seedingSeconds)
            << what;
        EXPECT_EQ(sys.perf().totalSeconds, base.totalSeconds) << what;
        ASSERT_EQ(maps.size(), base_maps.size());
        for (size_t i = 0; i < maps.size(); ++i) {
            EXPECT_EQ(maps[i].pos, base_maps[i].pos) << what;
            EXPECT_EQ(maps[i].score, base_maps[i].score) << what;
        }
    }
}

} // namespace
} // namespace genax
