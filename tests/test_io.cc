/**
 * @file
 * Unit tests for FASTA/FASTQ parsing and SAM emission.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "io/fasta.hh"
#include "io/fastq.hh"
#include "io/sam.hh"

namespace genax {
namespace {

TEST(Fasta, ParseMultiRecordWrapped)
{
    std::istringstream in(">chr1 some description\nACGT\nACGT\n"
                          ">chr2\nTTTT\n");
    const auto recs = readFasta(in);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].name, "chr1");
    EXPECT_EQ(decode(recs[0].seq), "ACGTACGT");
    EXPECT_EQ(recs[1].name, "chr2");
    EXPECT_EQ(decode(recs[1].seq), "TTTT");
}

TEST(Fasta, SkipsBlankLinesAndCarriageReturns)
{
    std::istringstream in(">r\r\nAC\r\n\r\nGT\r\n");
    const auto recs = readFasta(in);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(decode(recs[0].seq), "ACGT");
}

TEST(Fasta, RoundTrip)
{
    std::vector<FastaRecord> recs{{"a", encode("ACGTACGTACGT")},
                                  {"b", encode("TTT")}};
    std::ostringstream out;
    writeFasta(out, recs, 5);
    std::istringstream in(out.str());
    const auto back = readFasta(in);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].seq, recs[0].seq);
    EXPECT_EQ(back[1].seq, recs[1].seq);
}

TEST(Fastq, ParseAndQualities)
{
    std::istringstream in("@r1 extra\nACGT\n+\nIIII\n@r2\nTT\n+anything\n!J\n");
    const auto recs = readFastq(in);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].name, "r1");
    EXPECT_EQ(decode(recs[0].seq), "ACGT");
    EXPECT_EQ(recs[0].qual, (std::vector<u8>{40, 40, 40, 40}));
    EXPECT_EQ(recs[1].qual, (std::vector<u8>{0, 41}));
}

TEST(Fastq, RoundTrip)
{
    std::vector<FastqRecord> recs{
        {"x", encode("ACGTA"), {30, 31, 32, 33, 34}}};
    std::ostringstream out;
    writeFastq(out, recs);
    std::istringstream in(out.str());
    const auto back = readFastq(in);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].seq, recs[0].seq);
    EXPECT_EQ(back[0].qual, recs[0].qual);
}

TEST(Sam, HeaderAndRecord)
{
    std::ostringstream out;
    SamWriter writer(out, {{"chr1", 1000}});
    SamRecord rec;
    rec.qname = "read1";
    rec.rname = "chr1";
    rec.pos = 41; // 0-based
    rec.mapq = 60;
    rec.cigar = "101M";
    rec.seq = "ACGT";
    rec.qual = "IIII";
    rec.score = 97;
    rec.editDistance = 2;
    writer.write(rec);
    EXPECT_EQ(writer.count(), 1u);

    const std::string text = out.str();
    EXPECT_NE(text.find("@SQ\tSN:chr1\tLN:1000"), std::string::npos);
    // Position is written 1-based.
    EXPECT_NE(text.find("read1\t0\tchr1\t42\t60\t101M"), std::string::npos);
    EXPECT_NE(text.find("AS:i:97"), std::string::npos);
    EXPECT_NE(text.find("NM:i:2"), std::string::npos);
}

TEST(Sam, ReadBackRoundTrip)
{
    std::ostringstream out;
    SamWriter writer(out, {{"chr1", 5000}, {"chr2", 800}});

    SamRecord a;
    a.qname = "q1";
    a.flag = kSamPaired | kSamRead1 | kSamProperPair;
    a.rname = "chr1";
    a.pos = 0; // boundary: first base
    a.mapq = 37;
    a.cigar = "50M";
    a.rnext = "=";
    a.pnext = 250;
    a.tlen = 300;
    a.seq = "ACGT";
    a.qual = "IIII";
    a.score = 48;
    a.editDistance = 1;
    writer.write(a);

    SamRecord b;
    b.qname = "q2";
    b.flag = kSamUnmapped;
    writer.write(b);

    std::istringstream in(out.str());
    const SamFile sam = readSam(in);
    ASSERT_EQ(sam.refs.size(), 2u);
    EXPECT_EQ(sam.refs[0].name, "chr1");
    EXPECT_EQ(sam.refs[0].length, 5000u);
    EXPECT_EQ(sam.refs[1].name, "chr2");

    ASSERT_EQ(sam.records.size(), 2u);
    const SamRecord &ra = sam.records[0];
    EXPECT_EQ(ra.qname, "q1");
    EXPECT_EQ(ra.flag, a.flag);
    EXPECT_EQ(ra.rname, "chr1");
    EXPECT_EQ(ra.pos, 0u);
    EXPECT_EQ(ra.mapq, 37);
    EXPECT_EQ(ra.cigar, "50M");
    EXPECT_EQ(ra.rnext, "=");
    EXPECT_EQ(ra.pnext, 250u);
    EXPECT_EQ(ra.tlen, 300);
    EXPECT_EQ(ra.score, 48);
    EXPECT_EQ(ra.editDistance, 1);

    const SamRecord &rb = sam.records[1];
    EXPECT_TRUE(rb.flag & kSamUnmapped);
    EXPECT_EQ(rb.pos, kNoPos);
    EXPECT_EQ(rb.pnext, kNoPos);
}

TEST(Sam, UnmappedRecord)
{
    std::ostringstream out;
    SamWriter writer(out, {});
    SamRecord rec;
    rec.qname = "read2";
    rec.flag = kSamUnmapped;
    writer.write(rec);
    EXPECT_NE(out.str().find("read2\t4\t*\t0\t0\t*"), std::string::npos);
}

} // namespace
} // namespace genax
