/**
 * @file
 * Unit tests for FASTA/FASTQ parsing (including the malformed-input
 * recovery corpus) and SAM emission.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "io/fasta.hh"
#include "io/fastq.hh"
#include "io/sam.hh"

namespace genax {
namespace {

TEST(Fasta, ParseMultiRecordWrapped)
{
    std::istringstream in(">chr1 some description\nACGT\nACGT\n"
                          ">chr2\nTTTT\n");
    const auto recs = readFasta(in);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 2u);
    EXPECT_EQ((*recs)[0].name, "chr1");
    EXPECT_EQ(decode((*recs)[0].seq), "ACGTACGT");
    EXPECT_EQ((*recs)[1].name, "chr2");
    EXPECT_EQ(decode((*recs)[1].seq), "TTTT");
}

TEST(Fasta, SkipsBlankLinesAndCarriageReturns)
{
    std::istringstream in(">r\r\nAC\r\n\r\nGT\r\n");
    const auto recs = readFasta(in);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 1u);
    EXPECT_EQ(decode((*recs)[0].seq), "ACGT");
}

TEST(Fasta, RoundTrip)
{
    std::vector<FastaRecord> recs{{"a", encode("ACGTACGTACGT")},
                                  {"b", encode("TTT")}};
    std::ostringstream out;
    ASSERT_TRUE(writeFasta(out, recs, 5).ok());
    std::istringstream in(out.str());
    const auto back = readFasta(in);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->size(), 2u);
    EXPECT_EQ((*back)[0].seq, recs[0].seq);
    EXPECT_EQ((*back)[1].seq, recs[1].seq);
}

TEST(Fasta, EmptyStreamYieldsNoRecords)
{
    std::istringstream in("");
    ReaderStats stats;
    const auto recs = readFasta(in, {}, &stats);
    ASSERT_TRUE(recs.ok());
    EXPECT_TRUE(recs->empty());
    EXPECT_EQ(stats.records, 0u);
    EXPECT_EQ(stats.malformed, 0u);
}

TEST(Fasta, LowercaseAndIupacBasesAccepted)
{
    std::istringstream in(">r\nacgtN\nRYacg\n");
    const auto recs = readFasta(in);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 1u);
    EXPECT_EQ((*recs)[0].seq.size(), 10u);
}

TEST(Fasta, MissingFinalNewlineTolerated)
{
    std::istringstream in(">r\nACGT");
    const auto recs = readFasta(in);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 1u);
    EXPECT_EQ(decode((*recs)[0].seq), "ACGT");
}

TEST(Fasta, StrayDataBeforeHeaderSkippedAndCounted)
{
    std::istringstream in("ACGTACGT\n>r\nTTTT\n");
    ReaderOptions opts;
    opts.maxMalformed = 10;
    ReaderStats stats;
    const auto recs = readFasta(in, opts, &stats);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 1u);
    EXPECT_EQ((*recs)[0].name, "r");
    EXPECT_EQ(stats.malformed, 1u);
    ASSERT_EQ(stats.errors.size(), 1u);
    EXPECT_NE(stats.errors[0].message.find("before first header"),
              std::string::npos);
}

TEST(Fasta, EmptyNameEmptySeqAndGarbageSkipped)
{
    std::istringstream in(">\nACGT\n"      // empty name
                          ">ok1\nACGT\n"
                          ">empty\n"       // empty sequence
                          ">bad\nAC!T\n"   // invalid character
                          ">ok2\nTT\n");
    ReaderOptions opts;
    opts.maxMalformed = 10;
    ReaderStats stats;
    const auto recs = readFasta(in, opts, &stats);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 2u);
    EXPECT_EQ((*recs)[0].name, "ok1");
    EXPECT_EQ((*recs)[1].name, "ok2");
    EXPECT_EQ(stats.malformed, 3u);
    EXPECT_EQ(stats.records, 2u);
}

TEST(Fasta, DuplicateContigNamesRejectedRecoverably)
{
    std::istringstream in(">chr1\nACGT\n>chr1\nTTTT\n>chr2\nGG\n");
    ReaderOptions opts;
    opts.maxMalformed = 10;
    ReaderStats stats;
    const auto recs = readFasta(in, opts, &stats);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 2u);
    EXPECT_EQ((*recs)[0].name, "chr1");
    EXPECT_EQ((*recs)[1].name, "chr2");
    EXPECT_EQ(stats.malformed, 1u);
    ASSERT_EQ(stats.errors.size(), 1u);
    EXPECT_NE(stats.errors[0].message.find("duplicate"),
              std::string::npos);
}

TEST(Fasta, MalformedBudgetExhaustedIsInvalidInput)
{
    // Default budget is zero: the first bad record fails the read.
    std::istringstream in(">\nACGT\n>ok\nTT\n");
    const auto recs = readFasta(in);
    ASSERT_FALSE(recs.ok());
    EXPECT_EQ(recs.status().code(), StatusCode::InvalidInput);
}

TEST(Fasta, OpenFailureReportsPathAndErrno)
{
    const auto recs = readFastaFile("/nonexistent/genax-no-such.fa");
    ASSERT_FALSE(recs.ok());
    EXPECT_EQ(recs.status().code(), StatusCode::IoError);
    EXPECT_NE(recs.status().message().find("/nonexistent/genax-no-such.fa"),
              std::string::npos);
}

TEST(Fastq, ParseAndQualities)
{
    std::istringstream in("@r1 extra\nACGT\n+\nIIII\n@r2\nTT\n+anything\n!J\n");
    const auto recs = readFastq(in);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 2u);
    EXPECT_EQ((*recs)[0].name, "r1");
    EXPECT_EQ(decode((*recs)[0].seq), "ACGT");
    EXPECT_EQ((*recs)[0].qual, (std::vector<u8>{40, 40, 40, 40}));
    EXPECT_EQ((*recs)[1].qual, (std::vector<u8>{0, 41}));
}

TEST(Fastq, RoundTrip)
{
    std::vector<FastqRecord> recs{
        {"x", encode("ACGTA"), {30, 31, 32, 33, 34}}};
    std::ostringstream out;
    ASSERT_TRUE(writeFastq(out, recs).ok());
    std::istringstream in(out.str());
    const auto back = readFastq(in);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->size(), 1u);
    EXPECT_EQ((*back)[0].seq, recs[0].seq);
    EXPECT_EQ((*back)[0].qual, recs[0].qual);
}

TEST(Fastq, EmptyStreamYieldsNoRecords)
{
    std::istringstream in("");
    ReaderStats stats;
    const auto recs = readFastq(in, {}, &stats);
    ASSERT_TRUE(recs.ok());
    EXPECT_TRUE(recs->empty());
    EXPECT_EQ(stats.malformed, 0u);
}

TEST(Fastq, CrlfAndLowercaseTolerated)
{
    std::istringstream in("@r\r\nacgtn\r\n+\r\nIIIII\r\n");
    const auto recs = readFastq(in);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 1u);
    EXPECT_EQ((*recs)[0].seq.size(), 5u);
}

TEST(Fastq, TruncatedRecordAtEofSkippedAndCounted)
{
    std::istringstream in("@ok\nACGT\n+\nIIII\n@trunc\nAC\n+\n");
    ReaderOptions opts;
    opts.maxMalformed = 10;
    ReaderStats stats;
    const auto recs = readFastq(in, opts, &stats);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 1u);
    EXPECT_EQ((*recs)[0].name, "ok");
    EXPECT_EQ(stats.malformed, 1u);
    ASSERT_EQ(stats.errors.size(), 1u);
    EXPECT_NE(stats.errors[0].message.find("truncated"),
              std::string::npos);
}

TEST(Fastq, BadSeparatorResyncsOnNextHeader)
{
    // Record r1's sequence spans several lines (which the 4-line
    // format forbids), so the separator check fails; the reader
    // resynchronizes on '@r2' and parses it intact.
    std::istringstream in("@r1\nACGT\nACGT\nIIII\nJUNK\n@r2\nTT\n+\nII\n");
    ReaderOptions opts;
    opts.maxMalformed = 10;
    ReaderStats stats;
    const auto recs = readFastq(in, opts, &stats);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 1u);
    EXPECT_EQ((*recs)[0].name, "r2");
    EXPECT_EQ(stats.malformed, 1u);
}

TEST(Fastq, QualityLengthMismatchSkipped)
{
    std::istringstream in("@bad\nACGT\n+\nII\n@ok\nTT\n+\nII\n");
    ReaderOptions opts;
    opts.maxMalformed = 10;
    ReaderStats stats;
    const auto recs = readFastq(in, opts, &stats);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 1u);
    EXPECT_EQ((*recs)[0].name, "ok");
    EXPECT_EQ(stats.malformed, 1u);
    ASSERT_EQ(stats.errors.size(), 1u);
    EXPECT_NE(stats.errors[0].message.find("length mismatch"),
              std::string::npos);
}

TEST(Fastq, EmptyNameAndBadBasesSkipped)
{
    std::istringstream in("@\nACGT\n+\nIIII\n"   // empty name
                          "@bad\nAC-T\n+\nIIII\n" // invalid base
                          "@ok\nGG\n+\nII\n");
    ReaderOptions opts;
    opts.maxMalformed = 10;
    ReaderStats stats;
    const auto recs = readFastq(in, opts, &stats);
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs->size(), 1u);
    EXPECT_EQ((*recs)[0].name, "ok");
    EXPECT_EQ(stats.malformed, 2u);
}

TEST(Fastq, MalformedBudgetExhaustedIsInvalidInput)
{
    std::istringstream in("@bad\nACGT\n+\nII\n@ok\nTT\n+\nII\n");
    ReaderOptions opts;
    opts.maxMalformed = 0;
    const auto recs = readFastq(in, opts);
    ASSERT_FALSE(recs.ok());
    EXPECT_EQ(recs.status().code(), StatusCode::InvalidInput);
    EXPECT_NE(recs.status().message().find("budget"),
              std::string::npos);
}

TEST(Fastq, OpenFailureReportsPathAndErrno)
{
    const auto recs = readFastqFile("/nonexistent/genax-no-such.fq");
    ASSERT_FALSE(recs.ok());
    EXPECT_EQ(recs.status().code(), StatusCode::IoError);
    EXPECT_NE(recs.status().message().find("/nonexistent/genax-no-such.fq"),
              std::string::npos);
}

TEST(FastqStreaming, PerRecordIterationWithStats)
{
    std::istringstream in("@r1\nACGT\n+\nIIII\n"
                          "@bad\nAC\n+\nIIII\n"
                          "@r2\nTT\n+\nII\n");
    ReaderOptions opts;
    opts.maxMalformed = 5;
    FastqReader reader(in, opts);

    auto r1 = reader.next();
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(r1->name, "r1");
    auto r2 = reader.next();
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2->name, "r2");
    auto end = reader.next();
    ASSERT_FALSE(end.ok());
    EXPECT_TRUE(isEndOfStream(end.status()));
    EXPECT_EQ(reader.stats().records, 2u);
    EXPECT_EQ(reader.stats().malformed, 1u);
}

TEST(Sam, HeaderAndRecord)
{
    std::ostringstream out;
    SamWriter writer(out, {{"chr1", 1000}});
    SamRecord rec;
    rec.qname = "read1";
    rec.rname = "chr1";
    rec.pos = 41; // 0-based
    rec.mapq = 60;
    rec.cigar = "101M";
    rec.seq = "ACGT";
    rec.qual = "IIII";
    rec.score = 97;
    rec.editDistance = 2;
    writer.write(rec);
    EXPECT_EQ(writer.count(), 1u);

    const std::string text = out.str();
    EXPECT_NE(text.find("@SQ\tSN:chr1\tLN:1000"), std::string::npos);
    // Position is written 1-based.
    EXPECT_NE(text.find("read1\t0\tchr1\t42\t60\t101M"), std::string::npos);
    EXPECT_NE(text.find("AS:i:97"), std::string::npos);
    EXPECT_NE(text.find("NM:i:2"), std::string::npos);
}

TEST(Sam, ReadBackRoundTrip)
{
    std::ostringstream out;
    SamWriter writer(out, {{"chr1", 5000}, {"chr2", 800}});

    SamRecord a;
    a.qname = "q1";
    a.flag = kSamPaired | kSamRead1 | kSamProperPair;
    a.rname = "chr1";
    a.pos = 0; // boundary: first base
    a.mapq = 37;
    a.cigar = "50M";
    a.rnext = "=";
    a.pnext = 250;
    a.tlen = 300;
    a.seq = "ACGT";
    a.qual = "IIII";
    a.score = 48;
    a.editDistance = 1;
    writer.write(a);

    SamRecord b;
    b.qname = "q2";
    b.flag = kSamUnmapped;
    writer.write(b);

    std::istringstream in(out.str());
    const auto parsed = readSam(in);
    ASSERT_TRUE(parsed.ok());
    const SamFile &sam = *parsed;
    ASSERT_EQ(sam.refs.size(), 2u);
    EXPECT_EQ(sam.refs[0].name, "chr1");
    EXPECT_EQ(sam.refs[0].length, 5000u);
    EXPECT_EQ(sam.refs[1].name, "chr2");

    ASSERT_EQ(sam.records.size(), 2u);
    const SamRecord &ra = sam.records[0];
    EXPECT_EQ(ra.qname, "q1");
    EXPECT_EQ(ra.flag, a.flag);
    EXPECT_EQ(ra.rname, "chr1");
    EXPECT_EQ(ra.pos, 0u);
    EXPECT_EQ(ra.mapq, 37);
    EXPECT_EQ(ra.cigar, "50M");
    EXPECT_EQ(ra.rnext, "=");
    EXPECT_EQ(ra.pnext, 250u);
    EXPECT_EQ(ra.tlen, 300);
    EXPECT_EQ(ra.score, 48);
    EXPECT_EQ(ra.editDistance, 1);

    const SamRecord &rb = sam.records[1];
    EXPECT_TRUE(rb.flag & kSamUnmapped);
    EXPECT_EQ(rb.pos, kNoPos);
    EXPECT_EQ(rb.pnext, kNoPos);
}

TEST(Sam, MalformedRecordIsInvalidInput)
{
    std::istringstream in("q1\t0\tchr1\tnot-enough-fields\n");
    const auto parsed = readSam(in);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::InvalidInput);
}

TEST(Sam, UnmappedRecord)
{
    std::ostringstream out;
    SamWriter writer(out, {});
    SamRecord rec;
    rec.qname = "read2";
    rec.flag = kSamUnmapped;
    writer.write(rec);
    EXPECT_NE(out.str().find("read2\t4\t*\t0\t0\t*"), std::string::npos);
}

} // namespace
} // namespace genax
