/**
 * @file
 * Edge cases, failure injection and death tests across modules:
 * logging contracts, parallel helper coverage, degenerate sequences,
 * boundary-sized inputs, and invariant violations that must abort.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "align/cigar.hh"
#include "align/edit_distance.hh"
#include "align/gotoh.hh"
#include "align/myers.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "genax/dram_model.hh"
#include "seed/smem_engine.hh"
#include "silla/silla_edit.hh"
#include "silla/silla_score.hh"
#include "silla/silla_traceback.hh"
#include "sillax/tile.hh"

namespace genax {
namespace {

// ------------------------------------------------------------ logging

TEST(LoggingDeath, PanicAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(GENAX_PANIC("invariant ", 42, " broken"),
                 "panic: invariant 42 broken");
}

TEST(LoggingDeath, FatalExits)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(GENAX_FATAL("bad config: ", "k"),
                ::testing::ExitedWithCode(1), "fatal: bad config: k");
}

TEST(LoggingDeath, AssertFiresOnlyWhenFalse)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    GENAX_ASSERT(1 + 1 == 2, "fine");
    EXPECT_DEATH(GENAX_ASSERT(1 + 1 == 3, "math"), "assertion failed");
}

// ----------------------------------------------------------- parallel

TEST(Parallel, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(1000, 4, [&](u64 lo, u64 hi) {
        for (u64 i = lo; i < hi; ++i)
            hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, MoreThreadsThanWork)
{
    std::atomic<u64> sum{0};
    parallelFor(3, 16, [&](u64 lo, u64 hi) {
        for (u64 i = lo; i < hi; ++i)
            sum.fetch_add(i + 1);
    });
    EXPECT_EQ(sum.load(), 6u);
}

TEST(Parallel, ZeroItemsIsNoop)
{
    bool called_nonempty = false;
    parallelFor(0, 4, [&](u64 lo, u64 hi) {
        called_nonempty |= hi > lo;
    });
    EXPECT_FALSE(called_nonempty);
}

TEST(Parallel, SingleThreadRunsInline)
{
    u64 total = 0; // no atomics needed inline
    parallelFor(100, 1, [&](u64 lo, u64 hi) { total += hi - lo; });
    EXPECT_EQ(total, 100u);
}

// -------------------------------------------------------------- cigar

TEST(CigarDeath, ParseRejectsUnknownOp)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(Cigar::parse("10Z"), "bad cigar op");
    EXPECT_DEATH(Cigar::parse("10"), "cigar missing op");
}

TEST(CigarDeath, RescoreDetectsLyingMatch)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const Cigar c = Cigar::parse("4=");
    EXPECT_DEATH(c.rescore(encode("AAAA"), encode("AAAT"), Scoring{}),
                 "cigar '=' on mismatching pair");
}

TEST(CigarDeath, RescoreDetectsOverrun)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const Cigar c = Cigar::parse("9=");
    EXPECT_DEATH(c.rescore(encode("AAAA"), encode("AAAA"), Scoring{}),
                 "overruns");
}

// ----------------------------------------------------- degenerate DP

TEST(GotohEdge, SingleCharacterPairs)
{
    const Scoring sc;
    auto r = gotohAlign(encode("A"), encode("A"), sc, AlignMode::Global);
    EXPECT_EQ(r.score, 1);
    r = gotohAlign(encode("A"), encode("C"), sc, AlignMode::Global);
    EXPECT_EQ(r.score, -4);
    r = gotohAlign(encode("A"), encode("C"), sc, AlignMode::Extend);
    EXPECT_EQ(r.score, 0); // clip everything
    r = gotohAlign(encode("A"), encode("C"), sc, AlignMode::Local);
    EXPECT_EQ(r.score, 0);
}

TEST(GotohEdge, EmptyReferenceExtendClipsQuery)
{
    const Scoring sc;
    const auto r =
        gotohAlign(encode(""), encode("ACGT"), sc, AlignMode::Extend);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 0);
    EXPECT_EQ(r.cigar.str(), "4S");
}

TEST(GotohEdge, BandZeroIsDiagonalOnly)
{
    const Scoring sc;
    // Band 0 forbids indels entirely.
    const auto r = gotohBanded(encode("ACGTAC"), encode("ACTTAC"), sc,
                               AlignMode::Global, 0);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.score, 5 - 4);
    EXPECT_FALSE(gotohBanded(encode("ACGT"), encode("ACG"), sc,
                             AlignMode::Global, 0)
                     .valid);
}

TEST(MyersEdge, BlockBoundaryLengths)
{
    Rng rng(901);
    for (size_t len : {64u, 65u, 127u, 128u, 129u, 192u}) {
        Seq a, b;
        for (size_t i = 0; i < len; ++i)
            a.push_back(static_cast<Base>(rng.below(4)));
        b = a;
        b[len / 2] = static_cast<Base>((b[len / 2] + 1) & 3);
        EXPECT_EQ(myersEditDistance(a, b), 1u) << len;
        EXPECT_EQ(myersEditDistance(a, a), 0u) << len;
    }
}

TEST(EditDistanceEdge, BandZero)
{
    EXPECT_EQ(editDistanceBanded(encode("ACGT"), encode("ACGT"), 0), 0u);
    EXPECT_EQ(editDistanceBanded(encode("ACGT"), encode("ACTT"), 0), 1u);
    EXPECT_FALSE(
        editDistanceBanded(encode("ACGT"), encode("ACG"), 0).has_value());
}

// ----------------------------------------------------- Silla machines

TEST(SillaEdge, EmptyQueryScoresZero)
{
    const Scoring sc;
    SillaScore score(4, sc);
    EXPECT_EQ(score.run(encode("ACGT"), encode("")).best, 0);
    SillaTraceback tb(4, sc);
    const auto a = tb.align(encode("ACGT"), encode(""));
    EXPECT_EQ(a.score, 0);
    EXPECT_TRUE(a.cigar.empty());
}

TEST(SillaEdge, EmptyReferenceFullyClips)
{
    const Scoring sc;
    SillaTraceback tb(4, sc);
    const auto a = tb.align(encode(""), encode("ACGT"));
    EXPECT_EQ(a.score, 0);
    EXPECT_EQ(a.cigar.str(), "4S");
}

TEST(SillaEdge, BothEmpty)
{
    SillaEdit edit(2);
    EXPECT_EQ(edit.distance(encode(""), encode("")), 0u);
    const Scoring sc;
    SillaTraceback tb(2, sc);
    const auto a = tb.align(encode(""), encode(""));
    EXPECT_EQ(a.score, 0);
}

TEST(SillaEdge, QueryMuchLongerThanReference)
{
    // Reference window shorter than the read: the tail must clip.
    const Scoring sc;
    SillaTraceback tb(8, sc);
    Rng rng(902);
    Seq ref;
    for (int i = 0; i < 30; ++i)
        ref.push_back(static_cast<Base>(rng.below(4)));
    Seq qry = ref;
    for (int i = 0; i < 40; ++i)
        qry.push_back(static_cast<Base>(rng.below(4)));
    const auto a = tb.align(ref, qry);
    EXPECT_GE(a.score, 30);
    EXPECT_EQ(a.cigar.queryLen(), qry.size());
    EXPECT_LE(a.refEnd, ref.size());
}

// -------------------------------------------------------------- seed

TEST(SeedEdge, ReadExactlyKLong)
{
    Rng rng(903);
    Seq ref;
    for (int i = 0; i < 4000; ++i)
        ref.push_back(static_cast<Base>(rng.below(4)));
    SeedIndex index(ref, 8);
    SmemEngine engine(index, {});
    const Seq read(ref.begin() + 100, ref.begin() + 108);
    const auto seeds = engine.seed(read);
    ASSERT_EQ(seeds.size(), 1u);
    EXPECT_EQ(seeds[0].qryBegin, 0u);
    EXPECT_EQ(seeds[0].qryEnd, 8u);
}

TEST(SeedEdge, CamCapacityOne)
{
    // The engine must stay functionally correct with a degenerate
    // CAM (every oversized list falls back or multi-passes).
    Rng rng(904);
    Seq ref;
    for (int i = 0; i < 4000; ++i)
        ref.push_back(static_cast<Base>(rng.below(4)));
    SeedIndex index(ref, 8);
    SeedingConfig tiny;
    tiny.camSize = 1;
    SeedingConfig normal;
    SmemEngine a(index, tiny), b(index, normal);
    const Seq read(ref.begin() + 500, ref.begin() + 601);
    const auto sa = a.seed(read);
    const auto sb = b.seed(read);
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i)
        EXPECT_EQ(sa[i].positions, sb[i].positions);
}

// ------------------------------------------------------------- system

TEST(DramEdge, ZeroLatencyConfig)
{
    DramConfig cfg;
    cfg.transferLatencyUs = 0;
    cfg.streamEfficiency = 1.0;
    DramModel dram(cfg);
    EXPECT_DOUBLE_EQ(dram.streamSeconds(8 * 19'200'000'000ULL), 1.0);
}

TEST(TileEdge, SingleTileArray)
{
    TileArray arr(16, 1, 1);
    EXPECT_EQ(arr.maxP(), 1u);
    EXPECT_EQ(arr.composedBound(1), 16u);
    EXPECT_TRUE(arr.configure({1}));
    EXPECT_FALSE(arr.configure({2}));
    EXPECT_EQ(arr.engines().size(), 1u);
}

TEST(RngEdge, BelowOneAlwaysZero)
{
    Rng rng(905);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

} // namespace
} // namespace genax
