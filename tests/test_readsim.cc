/**
 * @file
 * Unit tests for the synthetic reference generator and read
 * simulator.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "align/edit_distance.hh"
#include "readsim/eval.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"

namespace genax {
namespace {

TEST(RefGen, LengthAndDeterminism)
{
    RefGenConfig cfg;
    cfg.length = 50000;
    cfg.seed = 5;
    const Seq a = generateReference(cfg);
    const Seq b = generateReference(cfg);
    EXPECT_EQ(a.size(), cfg.length);
    EXPECT_EQ(a, b);
    cfg.seed = 6;
    EXPECT_NE(generateReference(cfg), a);
}

TEST(RefGen, BaseCompositionRoughlyMatchesGcBias)
{
    RefGenConfig cfg;
    cfg.length = 200000;
    cfg.repeatFraction = 0; // pure iid stream for this check
    const Seq ref = generateReference(cfg);
    u64 gc = 0;
    for (Base b : ref)
        gc += (b == kBaseG || b == kBaseC);
    const double frac = static_cast<double>(gc) / cfg.length;
    EXPECT_NEAR(frac, cfg.gcBias, 0.01);
}

TEST(RefGen, RepeatsCreateDuplicateKmers)
{
    RefGenConfig with;
    with.length = 100000;
    with.repeatFraction = 0.2;
    RefGenConfig without = with;
    without.repeatFraction = 0;

    auto max_kmer_multiplicity = [](const Seq &ref) {
        std::vector<u64> kmers;
        PackedSeq p(ref);
        for (size_t i = 0; i + 16 <= ref.size(); i += 16)
            kmers.push_back(p.kmer(i, 16));
        std::sort(kmers.begin(), kmers.end());
        u64 best = 1, run = 1;
        for (size_t i = 1; i < kmers.size(); ++i) {
            run = kmers[i] == kmers[i - 1] ? run + 1 : 1;
            best = std::max(best, run);
        }
        return best;
    };

    EXPECT_GT(max_kmer_multiplicity(generateReference(with)),
              max_kmer_multiplicity(generateReference(without)));
}

TEST(Donor, CoordinateMapIsMonotone)
{
    RefGenConfig rcfg;
    rcfg.length = 100000;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig cfg;
    Rng rng(3);
    const Donor donor = buildDonor(ref, cfg, rng);
    ASSERT_EQ(donor.seq.size(), donor.donorToRef.size());
    for (size_t i = 1; i < donor.donorToRef.size(); ++i)
        EXPECT_LE(donor.donorToRef[i - 1], donor.donorToRef[i]);
    EXPECT_LT(donor.donorToRef.back(), ref.size());
    EXPECT_GT(donor.numSnps, 0u);
}

TEST(Donor, NoVariantsMeansIdentity)
{
    RefGenConfig rcfg;
    rcfg.length = 5000;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig cfg;
    cfg.snpRate = 0;
    cfg.donorIndelRate = 0;
    Rng rng(4);
    const Donor donor = buildDonor(ref, cfg, rng);
    EXPECT_EQ(donor.seq, ref);
    EXPECT_EQ(donor.numSnps, 0u);
    EXPECT_EQ(donor.numIndels, 0u);
}

TEST(ReadSim, BasicShapeAndDeterminism)
{
    RefGenConfig rcfg;
    rcfg.length = 100000;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig cfg;
    cfg.numReads = 500;
    const auto reads = simulateReads(ref, cfg);
    ASSERT_EQ(reads.size(), cfg.numReads);
    for (const auto &r : reads) {
        EXPECT_EQ(r.seq.size(), cfg.readLen);
        EXPECT_LT(r.truthPos, ref.size());
    }
    const auto again = simulateReads(ref, cfg);
    EXPECT_EQ(reads[7].seq, again[7].seq);
    EXPECT_EQ(reads[7].truthPos, again[7].truthPos);
}

TEST(ReadSim, ErrorFreeReadsMatchReferenceAtTruth)
{
    RefGenConfig rcfg;
    rcfg.length = 100000;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig cfg;
    cfg.numReads = 300;
    cfg.snpRate = 0;
    cfg.donorIndelRate = 0;
    cfg.baseErrorRate = 0;
    cfg.readIndelRate = 0;
    cfg.sampleReverse = false;
    const auto reads = simulateReads(ref, cfg);
    for (const auto &r : reads) {
        const Seq window(ref.begin() + static_cast<i64>(r.truthPos),
                         ref.begin() + static_cast<i64>(r.truthPos) +
                             static_cast<i64>(cfg.readLen));
        EXPECT_EQ(r.seq, window) << r.name;
        EXPECT_EQ(r.numErrors, 0u);
    }
}

TEST(ReadSim, ReverseReadsMatchAfterReverseComplement)
{
    RefGenConfig rcfg;
    rcfg.length = 50000;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig cfg;
    cfg.numReads = 200;
    cfg.snpRate = 0;
    cfg.donorIndelRate = 0;
    cfg.baseErrorRate = 0;
    cfg.readIndelRate = 0;
    const auto reads = simulateReads(ref, cfg);
    bool saw_reverse = false;
    for (const auto &r : reads) {
        const Seq fwd = r.reverse ? reverseComplement(r.seq) : r.seq;
        saw_reverse |= r.reverse;
        const Seq window(ref.begin() + static_cast<i64>(r.truthPos),
                         ref.begin() + static_cast<i64>(r.truthPos) +
                             static_cast<i64>(cfg.readLen));
        EXPECT_EQ(fwd, window);
    }
    EXPECT_TRUE(saw_reverse);
}

TEST(ReadSim, DefaultRatesGiveMostlyExactReads)
{
    // The paper reports ~75% of real reads match the reference
    // exactly (Section V); the default simulation should land in that
    // regime.
    RefGenConfig rcfg;
    rcfg.length = 200000;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig cfg;
    cfg.numReads = 2000;
    cfg.sampleReverse = false;
    const auto reads = simulateReads(ref, cfg);
    u64 exact = 0;
    for (const auto &r : reads) {
        const u64 end = std::min<u64>(r.truthPos + cfg.readLen, ref.size());
        const Seq window(ref.begin() + static_cast<i64>(r.truthPos),
                         ref.begin() + static_cast<i64>(end));
        if (window.size() == r.seq.size() && window == r.seq)
            ++exact;
    }
    const double frac = static_cast<double>(exact) / reads.size();
    EXPECT_GT(frac, 0.55);
    EXPECT_LT(frac, 0.92);
}

TEST(ReadSim, PositionalErrorsRampTowardThreePrime)
{
    RefGenConfig rcfg;
    rcfg.length = 300000;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig cfg;
    cfg.numReads = 4000;
    cfg.snpRate = 0;
    cfg.donorIndelRate = 0;
    cfg.readIndelRate = 0;
    cfg.baseErrorRate = 0.02;
    cfg.positionalErrors = true;
    cfg.sampleReverse = false;
    const auto reads = simulateReads(ref, cfg);

    u64 head_errors = 0, tail_errors = 0;
    for (const auto &r : reads) {
        for (u64 i = 0; i < cfg.readLen; ++i) {
            if (r.seq[i] != ref[r.truthPos + i])
                (i < cfg.readLen / 2 ? head_errors : tail_errors) += 1;
        }
    }
    // The 3' half carries roughly 5/3 of the 5' half's errors.
    EXPECT_GT(tail_errors, head_errors * 13 / 10);

    // Quality scores decrease along the read and match the model.
    const auto &q = reads[0].qual;
    EXPECT_GT(q.front(), q.back());
    EXPECT_EQ(q.front(), 20); // -10*log10(0.01)
}

TEST(ReadSim, FlatProfileWhenPositionalErrorsOff)
{
    RefGenConfig rcfg;
    rcfg.length = 50000;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig cfg;
    cfg.numReads = 5;
    const auto reads = simulateReads(ref, cfg);
    for (const auto &r : reads)
        for (u8 q : r.qual)
            EXPECT_EQ(q, 35);
}

TEST(Eval, AccuracyAndConcordanceArithmetic)
{
    std::vector<SimRead> truth(3);
    truth[0].truthPos = 100;
    truth[1].truthPos = 200;
    truth[1].reverse = true;
    truth[2].truthPos = 300;

    std::vector<Mapping> maps(3);
    maps[0].mapped = true;
    maps[0].pos = 105; // within tolerance
    maps[1].mapped = true;
    maps[1].pos = 200;
    maps[1].reverse = false; // wrong strand
    // maps[2] unmapped

    const auto acc = evaluateAccuracy(truth, maps, 12);
    EXPECT_EQ(acc.reads, 3u);
    EXPECT_EQ(acc.mapped, 2u);
    EXPECT_EQ(acc.correct, 1u);
    EXPECT_NEAR(acc.correctFraction(), 1.0 / 3, 1e-9);

    std::vector<Mapping> other = maps;
    other[0].score = 99;
    maps[0].score = 99;
    other[1].pos = 777;
    const auto conc = evaluateConcordance(maps, other);
    EXPECT_EQ(conc.bothMapped, 2u);
    EXPECT_EQ(conc.sameScore, 2u);
    EXPECT_EQ(conc.samePlacement, 1u);
}

TEST(ReadSim, ReadsAlignNearTruthWithinSmallEditDistance)
{
    RefGenConfig rcfg;
    rcfg.length = 100000;
    const Seq ref = generateReference(rcfg);
    ReadSimConfig cfg;
    cfg.numReads = 100;
    cfg.sampleReverse = false;
    const auto reads = simulateReads(ref, cfg);
    for (const auto &r : reads) {
        const u64 end =
            std::min<u64>(r.truthPos + cfg.readLen + 8, ref.size());
        const Seq window(ref.begin() + static_cast<i64>(r.truthPos),
                         ref.begin() + static_cast<i64>(end));
        // Edit distance to the truth window is small (errors +
        // variants + boundary slack).
        EXPECT_LE(editDistance(r.seq, window), 16u) << r.name;
    }
}

} // namespace
} // namespace genax
