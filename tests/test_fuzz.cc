/**
 * @file
 * Randomized cross-implementation consistency sweeps ("fuzz" tests):
 *
 *  - seven independent edit-distance implementations must agree on
 *    random pairs over 2- and 4-letter alphabets (small alphabets
 *    maximize accidental repeats and tie-rich cases),
 *  - the scoring machines must agree with banded Gotoh under
 *    randomized affine scoring schemes (the "programmable scoring
 *    logic" of Figure 7),
 *  - every traceback the hardware model produces must re-score to
 *    exactly its claimed value,
 *  - chaos sweeps: with fault-injection sites armed across the IO,
 *    DRAM, CAM and SillaX layers, the pipeline must complete without
 *    aborting and its outcome ledger must stay balanced.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "align/edit_distance.hh"
#include "align/gotoh.hh"
#include "align/lev_automaton.hh"
#include "align/myers.hh"
#include "align/ula.hh"
#include "align/wavefront.hh"
#include "common/check.hh"
#include "common/faultinject.hh"
#include "common/rng.hh"
#include "genax/pipeline.hh"
#include "io/fastq.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "silla/silla_edit.hh"
#include "silla/silla_score.hh"
#include "silla/silla_traceback.hh"
#include "sillax/edit_machine.hh"
#include "sillax/scoring_machine.hh"
#include "sillax/tile.hh"

namespace genax {
namespace {

Seq
randomSeq(Rng &rng, size_t len, unsigned alphabet)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(alphabet)));
    return s;
}

Seq
mutateSeq(Rng &rng, const Seq &s, unsigned num_edits, unsigned alphabet)
{
    Seq out = s;
    for (unsigned e = 0; e < num_edits && !out.empty(); ++e) {
        const u64 pos = rng.below(out.size());
        switch (rng.below(3)) {
          case 0:
            out[pos] = static_cast<Base>(rng.below(alphabet));
            break;
          case 1:
            out.insert(out.begin() + static_cast<i64>(pos),
                       static_cast<Base>(rng.below(alphabet)));
            break;
          default:
            out.erase(out.begin() + static_cast<i64>(pos));
            break;
        }
    }
    return out;
}

TEST(Fuzz, SevenEditDistanceImplementationsAgree)
{
    Rng rng(77001);
    const u32 k = 6;
    SillaEdit silla(k);
    Silla3D silla3d(k);
    StructuralEditMachine structural(k);
    UniversalLevAutomaton ula(k);

    for (int t = 0; t < 250; ++t) {
        const unsigned alphabet = t % 3 == 0 ? 2 : 4;
        const size_t len = rng.below(60);
        const Seq a = randomSeq(rng, len, alphabet);
        const Seq b = t % 2 == 0
                          ? randomSeq(rng, rng.below(60), alphabet)
                          : mutateSeq(rng, a,
                                      static_cast<unsigned>(rng.below(9)),
                                      alphabet);

        const u64 truth = editDistance(a, b);
        EXPECT_EQ(myersEditDistance(a, b), truth);
        EXPECT_EQ(wavefrontEditDistance(a, b), truth);

        const auto bounded = editDistanceBounded(a, b, k);
        ASSERT_EQ(bounded.has_value(), truth <= k);

        const auto s2 = silla.distance(a, b);
        const auto s3 = silla3d.distance(a, b);
        const auto hw = structural.distance(a, b);
        const auto u = ula.distance(a, b);
        if (truth <= k) {
            ASSERT_TRUE(s2 && s3 && hw && u)
                << "a=" << decode(a) << " b=" << decode(b);
            EXPECT_EQ(*s2, truth);
            EXPECT_EQ(*s3, truth);
            EXPECT_EQ(*hw, truth);
            EXPECT_EQ(*u, truth);
        } else {
            EXPECT_FALSE(s2.has_value());
            EXPECT_FALSE(s3.has_value());
            EXPECT_FALSE(hw.has_value());
            EXPECT_FALSE(u.has_value());
        }

        // The classic LA is string-dependent: built per pattern.
        if (len <= 40) {
            LevenshteinAutomaton la(a, k);
            const auto l = la.distanceTo(b);
            ASSERT_EQ(l.has_value(), truth <= k);
            if (l) {
                EXPECT_EQ(*l, truth);
            }
        }
    }
}

TEST(Fuzz, ScoringMachinesAgreeUnderRandomSchemes)
{
    Rng rng(77002);
    for (int t = 0; t < 120; ++t) {
        Scoring sc;
        sc.match = 1 + static_cast<i32>(rng.below(3));
        sc.mismatch = 1 + static_cast<i32>(rng.below(6));
        sc.gapOpen = static_cast<i32>(rng.below(9));
        sc.gapExtend = 1 + static_cast<i32>(rng.below(3));

        const u32 k = 4 + static_cast<u32>(rng.below(10));
        const unsigned alphabet = t % 4 == 0 ? 2 : 4;
        const Seq ref = randomSeq(rng, 30 + rng.below(90), alphabet);
        const Seq qry = mutateSeq(
            rng, ref, static_cast<unsigned>(rng.below(k / 2 + 1)),
            alphabet);

        const auto oracle =
            gotohBanded(ref, qry, sc, AlignMode::Extend, k);
        ASSERT_TRUE(oracle.valid);

        SillaScore score(k, sc);
        StructuralScoringMachine structural(k, sc);
        SillaTraceback traceback(k, sc);

        const auto s = score.run(ref, qry);
        const auto h = structural.run(ref, qry);
        const auto tb = traceback.align(ref, qry);
        EXPECT_EQ(s.best, oracle.score)
            << "t=" << t << " k=" << k << " match=" << sc.match
            << " mis=" << sc.mismatch << " go=" << sc.gapOpen
            << " ge=" << sc.gapExtend;
        EXPECT_EQ(h.best, oracle.score);
        EXPECT_EQ(tb.score, oracle.score);

        // The recovered path must re-score to exactly the claim.
        Cigar aligned;
        for (const auto &e : tb.cigar.elems())
            if (e.op != CigarOp::SoftClip)
                aligned.push(e.op, e.len);
        const Seq ref_win(ref.begin(),
                          ref.begin() + static_cast<i64>(tb.refEnd));
        const Seq qry_win(qry.begin(),
                          qry.begin() + static_cast<i64>(tb.qryEnd));
        EXPECT_EQ(aligned.rescore(ref_win, qry_win, sc), tb.score)
            << tb.cigar.str();
    }
}

TEST(Fuzz, TracebackValidOnAdversarialTandemRepeats)
{
    // Tandem repeats create massive tie ambiguity in gap placement —
    // the classic trap for traceback implementations.
    Rng rng(77003);
    const Scoring sc;
    SillaTraceback machine(12, sc);
    for (int t = 0; t < 60; ++t) {
        const u32 unit = 1 + static_cast<u32>(rng.below(6));
        Seq ref;
        const Seq u = randomSeq(rng, unit, 4);
        while (ref.size() < 80)
            ref.insert(ref.end(), u.begin(), u.end());
        Seq qry =
            mutateSeq(rng, ref, static_cast<unsigned>(rng.below(6)), 4);

        const auto got = machine.align(ref, qry);
        const auto oracle =
            gotohBanded(ref, qry, sc, AlignMode::Extend, 12);
        EXPECT_EQ(got.score, oracle.score) << "unit=" << unit;
        EXPECT_EQ(got.cigar.queryLen(), qry.size());
        Cigar aligned;
        for (const auto &e : got.cigar.elems())
            if (e.op != CigarOp::SoftClip)
                aligned.push(e.op, e.len);
        const Seq ref_win(ref.begin(),
                          ref.begin() + static_cast<i64>(got.refEnd));
        const Seq qry_win(qry.begin(),
                          qry.begin() + static_cast<i64>(got.qryEnd));
        EXPECT_EQ(aligned.rescore(ref_win, qry_win, sc), got.score);
    }
}

// The invariant layer must actually catch corrupted hardware
// configurations: with the throwing handler installed, constructing
// a SillaX tile array from impossible parameters surfaces as a
// CheckViolation instead of silently building a broken model.
TEST(CheckFuzz, CorruptTileConfigurationIsCaught)
{
    ScopedCheckHandler guard(&throwingCheckHandler);
    EXPECT_THROW(TileArray(0, 4, 4), CheckViolation);   // K = 0
    EXPECT_THROW(TileArray(3, 0, 8), CheckViolation);   // no rows
    EXPECT_THROW(TileArray(3, 8, 0), CheckViolation);   // no columns
    EXPECT_THROW(TileArray(1u << 20, 4, 4), CheckViolation);
    // A sane configuration still constructs under the same handler.
    EXPECT_NO_THROW(TileArray(3, 4, 4));
}

TEST(CheckFuzz, CorruptScoringSchemeIsCaught)
{
    ScopedCheckHandler guard(&throwingCheckHandler);
    Scoring sc;
    sc.mismatch = 0; // free mismatches: every alignment degenerate
    EXPECT_THROW(SillaScore(8, sc), CheckViolation);
    EXPECT_THROW(SillaTraceback(8, sc), CheckViolation);
}

// ------------------------------------------------------------- chaos

namespace {

struct ChaosWorkload
{
    std::vector<FastaRecord> ref;
    std::vector<FastqRecord> reads;
};

ChaosWorkload
chaosWorkload(u64 seed, u64 num_reads)
{
    ChaosWorkload w;
    RefGenConfig rc;
    rc.length = 40000;
    rc.seed = seed;
    w.ref.push_back({"chr1", generateReference(rc)});
    ReadSimConfig rs;
    rs.numReads = num_reads;
    rs.seed = seed + 1;
    for (const auto &r : simulateReads(w.ref[0].seq, rs))
        w.reads.push_back({r.name, r.seq, r.qual});
    return w;
}

PipelineOptions
chaosOptions()
{
    PipelineOptions opts;
    opts.k = 11;
    opts.band = 16;
    opts.segments = 4;
    return opts;
}

} // namespace

TEST(Chaos, LaneIssueFaultsDegradeToSoftwareKernel)
{
    const auto w = chaosWorkload(8801, 30);

    std::ostringstream clean_sam;
    const auto clean =
        alignToSam(w.ref, w.reads, clean_sam, chaosOptions());
    ASSERT_TRUE(clean.ok());

    ScopedFaultPlan plan(
        {{fault::kLaneIssue, {.probability = 0.2, .seed = 5}}});
    std::ostringstream sam;
    const auto res = alignToSam(w.ref, w.reads, sam, chaosOptions());
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->ledgerBalanced());
    EXPECT_GT(res->perf.laneFaults, 0u);
    EXPECT_EQ(res->perf.degradedJobs, res->perf.laneFaults);
    EXPECT_GT(res->degraded, 0u);
    // The Gotoh fallback kernel is score-equivalent to the lanes:
    // degraded reads still align, so total placed reads match the
    // clean run.
    EXPECT_EQ(res->mapped + res->degraded,
              clean->mapped + clean->degraded);
}

TEST(Chaos, DramStreamFaultsAreAbsorbed)
{
    const auto w = chaosWorkload(8802, 20);
    ScopedFaultPlan plan(
        {{fault::kDramStream, {.probability = 0.8, .seed = 3}}});
    std::ostringstream sam;
    const auto res = alignToSam(w.ref, w.reads, sam, chaosOptions());
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->ledgerBalanced());
    // Retried or estimated streams cost extra modelled time but
    // never lose reads.
    EXPECT_EQ(res->failed, 0u);
    EXPECT_GT(res->mapped, 0u);
}

TEST(Chaos, CamOverflowFaultsForceTheFallbackDatapath)
{
    const auto w = chaosWorkload(8803, 20);

    std::ostringstream clean_sam, sam;
    const auto clean =
        alignToSam(w.ref, w.reads, clean_sam, chaosOptions());
    ASSERT_TRUE(clean.ok());
    ScopedFaultPlan plan(
        {{fault::kCamOverflow, {.probability = 0.5, .seed = 11}}});
    const auto res = alignToSam(w.ref, w.reads, sam, chaosOptions());
    ASSERT_TRUE(res.ok());
    // The binary-search fallback is a correct (slower) datapath, so
    // forcing it must not change what maps.
    EXPECT_EQ(res->mapped, clean->mapped);
    EXPECT_GT(res->perf.seeding.cam.overflowFallbacks,
              clean->perf.seeding.cam.overflowFallbacks);
}

TEST(Chaos, PipelineReadFaultsBecomeFailedLedgerEntries)
{
    const auto w = chaosWorkload(8804, 25);
    ScopedFaultPlan plan(
        {{fault::kPipelineRead, {.probability = 0.25, .seed = 17}}});
    std::ostringstream sam;
    const auto res = alignToSam(w.ref, w.reads, sam, chaosOptions());
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->ledgerBalanced());
    EXPECT_GT(res->failed, 0u);
    EXPECT_LT(res->failed, res->reads);
    // Failed reads still produce (unmapped) SAM records.
    std::istringstream in(sam.str());
    std::string line;
    u64 records = 0;
    while (std::getline(in, line))
        records += !line.empty() && line[0] != '@';
    EXPECT_EQ(records, res->reads);
}

TEST(Chaos, FastqIoFaultsSurfaceAsIoError)
{
    // A reader hit by an injected IO fault reports IoError through
    // its Status channel instead of aborting or fabricating records.
    std::string text;
    for (int i = 0; i < 50; ++i)
        text += "@r" + std::to_string(i) + "\nACGTACGT\n+\nIIIIIIII\n";
    ScopedFaultPlan plan(
        {{fault::kFastqRecord, {.fireOnNth = 10}}});
    std::istringstream in(text);
    const auto recs = readFastq(in);
    ASSERT_FALSE(recs.ok());
    EXPECT_EQ(recs.status().code(), StatusCode::IoError);
    EXPECT_NE(recs.status().message().find(fault::kFastqRecord),
              std::string::npos);
}

TEST(Chaos, CombinedFaultStormStillBalancesTheLedger)
{
    const auto w = chaosWorkload(8805, 40);
    ScopedFaultPlan plan({
        {fault::kLaneIssue, {.probability = 0.1, .seed = 1}},
        {fault::kDramStream, {.probability = 0.3, .seed = 2}},
        {fault::kCamOverflow, {.probability = 0.2, .seed = 3}},
        {fault::kPipelineRead, {.probability = 0.1, .seed = 4}},
    });
    std::ostringstream sam;
    const auto res = alignToSam(w.ref, w.reads, sam, chaosOptions());
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->ledgerBalanced());
    EXPECT_EQ(res->mapped + res->unmapped + res->degraded +
                  res->failed,
              res->reads);
    // Determinism: the same fault plan replays to the same ledger.
    ScopedFaultPlan replay({
        {fault::kLaneIssue, {.probability = 0.1, .seed = 1}},
        {fault::kDramStream, {.probability = 0.3, .seed = 2}},
        {fault::kCamOverflow, {.probability = 0.2, .seed = 3}},
        {fault::kPipelineRead, {.probability = 0.1, .seed = 4}},
    });
    std::ostringstream sam2;
    const auto res2 = alignToSam(w.ref, w.reads, sam2, chaosOptions());
    ASSERT_TRUE(res2.ok());
    EXPECT_EQ(res2->mapped, res->mapped);
    EXPECT_EQ(res2->degraded, res->degraded);
    EXPECT_EQ(res2->failed, res->failed);
    EXPECT_EQ(sam2.str(), sam.str());
}

} // namespace
} // namespace genax
