/**
 * @file
 * Randomized cross-implementation consistency sweeps ("fuzz" tests):
 *
 *  - seven independent edit-distance implementations must agree on
 *    random pairs over 2- and 4-letter alphabets (small alphabets
 *    maximize accidental repeats and tie-rich cases),
 *  - the scoring machines must agree with banded Gotoh under
 *    randomized affine scoring schemes (the "programmable scoring
 *    logic" of Figure 7),
 *  - every traceback the hardware model produces must re-score to
 *    exactly its claimed value,
 *  - chaos sweeps: with fault-injection sites armed across the IO,
 *    DRAM, CAM and SillaX layers, the pipeline must complete without
 *    aborting and its outcome ledger must stay balanced.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "align/edit_distance.hh"
#include "align/gotoh.hh"
#include "align/lev_automaton.hh"
#include "align/myers.hh"
#include "align/ula.hh"
#include "align/wavefront.hh"
#include "common/check.hh"
#include "common/faultinject.hh"
#include "common/rng.hh"
#include "genax/pipeline.hh"
#include "io/fastq.hh"
#include "readsim/readsim.hh"
#include "readsim/refgen.hh"
#include "silla/silla_edit.hh"
#include "silla/silla_score.hh"
#include "silla/silla_traceback.hh"
#include "sillax/edit_machine.hh"
#include "sillax/scoring_machine.hh"
#include "sillax/tile.hh"

namespace genax {
namespace {

Seq
randomSeq(Rng &rng, size_t len, unsigned alphabet)
{
    Seq s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i)
        s.push_back(static_cast<Base>(rng.below(alphabet)));
    return s;
}

Seq
mutateSeq(Rng &rng, const Seq &s, unsigned num_edits, unsigned alphabet)
{
    Seq out = s;
    for (unsigned e = 0; e < num_edits && !out.empty(); ++e) {
        const u64 pos = rng.below(out.size());
        switch (rng.below(3)) {
          case 0:
            out[pos] = static_cast<Base>(rng.below(alphabet));
            break;
          case 1:
            out.insert(out.begin() + static_cast<i64>(pos),
                       static_cast<Base>(rng.below(alphabet)));
            break;
          default:
            out.erase(out.begin() + static_cast<i64>(pos));
            break;
        }
    }
    return out;
}

TEST(Fuzz, SevenEditDistanceImplementationsAgree)
{
    Rng rng(77001);
    const u32 k = 6;
    SillaEdit silla(k);
    Silla3D silla3d(k);
    StructuralEditMachine structural(k);
    UniversalLevAutomaton ula(k);

    for (int t = 0; t < 250; ++t) {
        const unsigned alphabet = t % 3 == 0 ? 2 : 4;
        const size_t len = rng.below(60);
        const Seq a = randomSeq(rng, len, alphabet);
        const Seq b = t % 2 == 0
                          ? randomSeq(rng, rng.below(60), alphabet)
                          : mutateSeq(rng, a,
                                      static_cast<unsigned>(rng.below(9)),
                                      alphabet);

        const u64 truth = editDistance(a, b);
        EXPECT_EQ(myersEditDistance(a, b), truth);
        EXPECT_EQ(wavefrontEditDistance(a, b), truth);

        const auto bounded = editDistanceBounded(a, b, k);
        ASSERT_EQ(bounded.has_value(), truth <= k);

        const auto s2 = silla.distance(a, b);
        const auto s3 = silla3d.distance(a, b);
        const auto hw = structural.distance(a, b);
        const auto u = ula.distance(a, b);
        if (truth <= k) {
            ASSERT_TRUE(s2 && s3 && hw && u)
                << "a=" << decode(a) << " b=" << decode(b);
            EXPECT_EQ(*s2, truth);
            EXPECT_EQ(*s3, truth);
            EXPECT_EQ(*hw, truth);
            EXPECT_EQ(*u, truth);
        } else {
            EXPECT_FALSE(s2.has_value());
            EXPECT_FALSE(s3.has_value());
            EXPECT_FALSE(hw.has_value());
            EXPECT_FALSE(u.has_value());
        }

        // The classic LA is string-dependent: built per pattern.
        if (len <= 40) {
            LevenshteinAutomaton la(a, k);
            const auto l = la.distanceTo(b);
            ASSERT_EQ(l.has_value(), truth <= k);
            if (l) {
                EXPECT_EQ(*l, truth);
            }
        }
    }
}

TEST(Fuzz, ScoringMachinesAgreeUnderRandomSchemes)
{
    Rng rng(77002);
    for (int t = 0; t < 120; ++t) {
        Scoring sc;
        sc.match = 1 + static_cast<i32>(rng.below(3));
        sc.mismatch = 1 + static_cast<i32>(rng.below(6));
        sc.gapOpen = static_cast<i32>(rng.below(9));
        sc.gapExtend = 1 + static_cast<i32>(rng.below(3));

        const u32 k = 4 + static_cast<u32>(rng.below(10));
        const unsigned alphabet = t % 4 == 0 ? 2 : 4;
        const Seq ref = randomSeq(rng, 30 + rng.below(90), alphabet);
        const Seq qry = mutateSeq(
            rng, ref, static_cast<unsigned>(rng.below(k / 2 + 1)),
            alphabet);

        const auto oracle =
            gotohBanded(ref, qry, sc, AlignMode::Extend, k);
        ASSERT_TRUE(oracle.valid);

        SillaScore score(k, sc);
        StructuralScoringMachine structural(k, sc);
        SillaTraceback traceback(k, sc);

        const auto s = score.run(ref, qry);
        const auto h = structural.run(ref, qry);
        const auto tb = traceback.align(ref, qry);
        EXPECT_EQ(s.best, oracle.score)
            << "t=" << t << " k=" << k << " match=" << sc.match
            << " mis=" << sc.mismatch << " go=" << sc.gapOpen
            << " ge=" << sc.gapExtend;
        EXPECT_EQ(h.best, oracle.score);
        EXPECT_EQ(tb.score, oracle.score);

        // The recovered path must re-score to exactly the claim.
        Cigar aligned;
        for (const auto &e : tb.cigar.elems())
            if (e.op != CigarOp::SoftClip)
                aligned.push(e.op, e.len);
        const Seq ref_win(ref.begin(),
                          ref.begin() + static_cast<i64>(tb.refEnd));
        const Seq qry_win(qry.begin(),
                          qry.begin() + static_cast<i64>(tb.qryEnd));
        EXPECT_EQ(aligned.rescore(ref_win, qry_win, sc), tb.score)
            << tb.cigar.str();
    }
}

TEST(Fuzz, TracebackValidOnAdversarialTandemRepeats)
{
    // Tandem repeats create massive tie ambiguity in gap placement —
    // the classic trap for traceback implementations.
    Rng rng(77003);
    const Scoring sc;
    SillaTraceback machine(12, sc);
    for (int t = 0; t < 60; ++t) {
        const u32 unit = 1 + static_cast<u32>(rng.below(6));
        Seq ref;
        const Seq u = randomSeq(rng, unit, 4);
        while (ref.size() < 80)
            ref.insert(ref.end(), u.begin(), u.end());
        Seq qry =
            mutateSeq(rng, ref, static_cast<unsigned>(rng.below(6)), 4);

        const auto got = machine.align(ref, qry);
        const auto oracle =
            gotohBanded(ref, qry, sc, AlignMode::Extend, 12);
        EXPECT_EQ(got.score, oracle.score) << "unit=" << unit;
        EXPECT_EQ(got.cigar.queryLen(), qry.size());
        Cigar aligned;
        for (const auto &e : got.cigar.elems())
            if (e.op != CigarOp::SoftClip)
                aligned.push(e.op, e.len);
        const Seq ref_win(ref.begin(),
                          ref.begin() + static_cast<i64>(got.refEnd));
        const Seq qry_win(qry.begin(),
                          qry.begin() + static_cast<i64>(got.qryEnd));
        EXPECT_EQ(aligned.rescore(ref_win, qry_win, sc), got.score);
    }
}

// The invariant layer must actually catch corrupted hardware
// configurations: with the throwing handler installed, constructing
// a SillaX tile array from impossible parameters surfaces as a
// CheckViolation instead of silently building a broken model.
TEST(CheckFuzz, CorruptTileConfigurationIsCaught)
{
    ScopedCheckHandler guard(&throwingCheckHandler);
    EXPECT_THROW(TileArray(0, 4, 4), CheckViolation);   // K = 0
    EXPECT_THROW(TileArray(3, 0, 8), CheckViolation);   // no rows
    EXPECT_THROW(TileArray(3, 8, 0), CheckViolation);   // no columns
    EXPECT_THROW(TileArray(1u << 20, 4, 4), CheckViolation);
    // A sane configuration still constructs under the same handler.
    EXPECT_NO_THROW(TileArray(3, 4, 4));
}

TEST(CheckFuzz, CorruptScoringSchemeIsCaught)
{
    ScopedCheckHandler guard(&throwingCheckHandler);
    Scoring sc;
    sc.mismatch = 0; // free mismatches: every alignment degenerate
    EXPECT_THROW(SillaScore(8, sc), CheckViolation);
    EXPECT_THROW(SillaTraceback(8, sc), CheckViolation);
}

// ------------------------------------------------------------- chaos

namespace {

struct ChaosWorkload
{
    std::vector<FastaRecord> ref;
    std::vector<FastqRecord> reads;
};

ChaosWorkload
chaosWorkload(u64 seed, u64 num_reads)
{
    ChaosWorkload w;
    RefGenConfig rc;
    rc.length = 40000;
    rc.seed = seed;
    w.ref.push_back({"chr1", generateReference(rc)});
    ReadSimConfig rs;
    rs.numReads = num_reads;
    rs.seed = seed + 1;
    for (const auto &r : simulateReads(w.ref[0].seq, rs))
        w.reads.push_back({r.name, r.seq, r.qual});
    return w;
}

PipelineOptions
chaosOptions()
{
    PipelineOptions opts;
    opts.k = 11;
    opts.band = 16;
    opts.segments = 4;
    return opts;
}

} // namespace

TEST(Chaos, LaneIssueFaultsDegradeToSoftwareKernel)
{
    const auto w = chaosWorkload(8801, 30);

    std::ostringstream clean_sam;
    const auto clean =
        alignToSam(w.ref, w.reads, clean_sam, chaosOptions());
    ASSERT_TRUE(clean.ok());

    ScopedFaultPlan plan(
        {{fault::kLaneIssue, {.probability = 0.2, .seed = 5}}});
    std::ostringstream sam;
    const auto res = alignToSam(w.ref, w.reads, sam, chaosOptions());
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->ledgerBalanced());
    EXPECT_GT(res->perf.laneFaults, 0u);
    EXPECT_EQ(res->perf.degradedJobs, res->perf.laneFaults);
    EXPECT_GT(res->degraded, 0u);
    // The Gotoh fallback kernel is score-equivalent to the lanes:
    // degraded reads still align, so total placed reads match the
    // clean run.
    EXPECT_EQ(res->mapped + res->degraded,
              clean->mapped + clean->degraded);
}

TEST(Chaos, DramStreamFaultsAreAbsorbed)
{
    const auto w = chaosWorkload(8802, 20);
    ScopedFaultPlan plan(
        {{fault::kDramStream, {.probability = 0.8, .seed = 3}}});
    std::ostringstream sam;
    const auto res = alignToSam(w.ref, w.reads, sam, chaosOptions());
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->ledgerBalanced());
    // Retried or estimated streams cost extra modelled time but
    // never lose reads.
    EXPECT_EQ(res->failed, 0u);
    EXPECT_GT(res->mapped, 0u);
}

TEST(Chaos, CamOverflowFaultsForceTheFallbackDatapath)
{
    const auto w = chaosWorkload(8803, 20);

    std::ostringstream clean_sam, sam;
    const auto clean =
        alignToSam(w.ref, w.reads, clean_sam, chaosOptions());
    ASSERT_TRUE(clean.ok());
    ScopedFaultPlan plan(
        {{fault::kCamOverflow, {.probability = 0.5, .seed = 11}}});
    const auto res = alignToSam(w.ref, w.reads, sam, chaosOptions());
    ASSERT_TRUE(res.ok());
    // The binary-search fallback is a correct (slower) datapath, so
    // forcing it must not change what maps.
    EXPECT_EQ(res->mapped, clean->mapped);
    EXPECT_GT(res->perf.seeding.cam.overflowFallbacks,
              clean->perf.seeding.cam.overflowFallbacks);
}

TEST(Chaos, PipelineReadFaultsBecomeFailedLedgerEntries)
{
    const auto w = chaosWorkload(8804, 25);
    ScopedFaultPlan plan(
        {{fault::kPipelineRead, {.probability = 0.25, .seed = 17}}});
    std::ostringstream sam;
    const auto res = alignToSam(w.ref, w.reads, sam, chaosOptions());
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->ledgerBalanced());
    EXPECT_GT(res->failed, 0u);
    EXPECT_LT(res->failed, res->reads);
    // Failed reads still produce (unmapped) SAM records.
    std::istringstream in(sam.str());
    std::string line;
    u64 records = 0;
    while (std::getline(in, line))
        records += !line.empty() && line[0] != '@';
    EXPECT_EQ(records, res->reads);
}

TEST(Chaos, FastqIoFaultsSurfaceAsIoError)
{
    // A reader hit by an injected IO fault reports IoError through
    // its Status channel instead of aborting or fabricating records.
    std::string text;
    for (int i = 0; i < 50; ++i)
        text += "@r" + std::to_string(i) + "\nACGTACGT\n+\nIIIIIIII\n";
    ScopedFaultPlan plan(
        {{fault::kFastqRecord, {.fireOnNth = 10}}});
    std::istringstream in(text);
    const auto recs = readFastq(in);
    ASSERT_FALSE(recs.ok());
    EXPECT_EQ(recs.status().code(), StatusCode::IoError);
    EXPECT_NE(recs.status().message().find(fault::kFastqRecord),
              std::string::npos);
}

TEST(Chaos, CombinedFaultStormStillBalancesTheLedger)
{
    const auto w = chaosWorkload(8805, 40);
    ScopedFaultPlan plan({
        {fault::kLaneIssue, {.probability = 0.1, .seed = 1}},
        {fault::kDramStream, {.probability = 0.3, .seed = 2}},
        {fault::kCamOverflow, {.probability = 0.2, .seed = 3}},
        {fault::kPipelineRead, {.probability = 0.1, .seed = 4}},
    });
    std::ostringstream sam;
    const auto res = alignToSam(w.ref, w.reads, sam, chaosOptions());
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->ledgerBalanced());
    EXPECT_EQ(res->mapped + res->unmapped + res->degraded +
                  res->failed,
              res->reads);
    // Determinism: the same fault plan replays to the same ledger.
    ScopedFaultPlan replay({
        {fault::kLaneIssue, {.probability = 0.1, .seed = 1}},
        {fault::kDramStream, {.probability = 0.3, .seed = 2}},
        {fault::kCamOverflow, {.probability = 0.2, .seed = 3}},
        {fault::kPipelineRead, {.probability = 0.1, .seed = 4}},
    });
    std::ostringstream sam2;
    const auto res2 = alignToSam(w.ref, w.reads, sam2, chaosOptions());
    ASSERT_TRUE(res2.ok());
    EXPECT_EQ(res2->mapped, res->mapped);
    EXPECT_EQ(res2->degraded, res->degraded);
    EXPECT_EQ(res2->failed, res->failed);
    EXPECT_EQ(sam2.str(), sam.str());
}

TEST(Fuzz, FastqBatchRefillMatchesWholeParseUnderCorruption)
{
    // Random FASTQ files with random corruption (bad separators,
    // length mismatches, stray garbage, CRLF, truncation) parsed two
    // ways: one whole-stream pass vs nextBatch() refills at several
    // batch sizes. Record streams and malformed counts must agree —
    // the refill boundary can land anywhere, including mid-recovery.
    Rng rng(9906);
    for (int round = 0; round < 20; ++round) {
        std::string text;
        const int n = 3 + static_cast<int>(rng.below(40));
        for (int i = 0; i < n; ++i) {
            const size_t len = 4 + rng.below(30);
            std::string bases, quals;
            for (size_t j = 0; j < len; ++j) {
                bases += "ACGT"[rng.below(4)];
                quals += static_cast<char>('!' + rng.below(40));
            }
            const std::string eol = rng.below(4) == 0 ? "\r\n" : "\n";
            switch (rng.below(8)) {
            case 0: // bad separator: framing slips, resync needed
                text += "@r" + std::to_string(i) + eol + bases + eol +
                        "oops" + eol + quals + eol;
                break;
            case 1: // length mismatch
                text += "@r" + std::to_string(i) + eol + bases + eol +
                        "+" + eol + quals + "JJ" + eol;
                break;
            case 2: // stray garbage between records
                text += "not a header" + eol;
                break;
            default:
                text += "@r" + std::to_string(i) + eol + bases + eol +
                        "+" + eol + quals + eol;
            }
        }
        if (rng.below(3) == 0 && !text.empty())
            text.pop_back(); // missing final newline

        ReaderOptions opts;
        opts.maxMalformed = 1000;
        std::istringstream whole(text);
        ReaderStats whole_stats;
        const auto all = readFastq(whole, opts, &whole_stats);
        ASSERT_TRUE(all.ok()) << all.status().str();

        for (const u64 batch_size : {u64{1}, u64{2}, u64{7}}) {
            std::istringstream in(text);
            FastqReader reader(in, opts);
            std::vector<FastqRecord> got;
            for (;;) {
                auto batch = reader.nextBatch(batch_size);
                ASSERT_TRUE(batch.ok()) << batch.status().str();
                if (batch->empty())
                    break;
                ASSERT_LE(batch->size(), batch_size);
                for (auto &rec : *batch)
                    got.push_back(std::move(rec));
            }
            ASSERT_EQ(got.size(), all->size())
                << "round=" << round << " batch=" << batch_size;
            for (size_t i = 0; i < got.size(); ++i) {
                ASSERT_EQ(got[i].name, (*all)[i].name);
                ASSERT_EQ(got[i].seq, (*all)[i].seq);
                ASSERT_EQ(got[i].qual, (*all)[i].qual);
            }
            EXPECT_EQ(reader.stats().records, whole_stats.records);
            EXPECT_EQ(reader.stats().malformed, whole_stats.malformed);
        }
    }
}

TEST(Chaos, StreamingPipelineMatchesLoadAllUnderFaultStorm)
{
    // The streaming pipeline replays an armed fault plan to the very
    // same SAM bytes and ledger as the load-all path, at any batch
    // size: admission, seeding and lane fault sites must see the
    // same per-read keys and per-site ordinals either way.
    const auto w = chaosWorkload(8806, 48);
    const auto opts = chaosOptions();

    std::ostringstream fastq_text;
    ASSERT_TRUE(writeFastq(fastq_text, w.reads).ok());
    const std::string fastq = fastq_text.str();

    std::string base_sam;
    PipelineResult base_res;
    {
        ScopedFaultPlan plan({
            {fault::kLaneIssue, {.probability = 0.1, .seed = 1}},
            {fault::kCamOverflow, {.probability = 0.2, .seed = 3}},
            {fault::kPipelineRead, {.probability = 0.1, .seed = 4}},
        });
        std::ostringstream sam;
        const auto res = alignToSam(w.ref, w.reads, sam, opts);
        ASSERT_TRUE(res.ok());
        base_sam = sam.str();
        base_res = *res;
    }

    for (const u64 batch : {u64{5}, u64{1000}}) {
        ScopedFaultPlan plan({
            {fault::kLaneIssue, {.probability = 0.1, .seed = 1}},
            {fault::kCamOverflow, {.probability = 0.2, .seed = 3}},
            {fault::kPipelineRead, {.probability = 0.1, .seed = 4}},
        });
        std::istringstream in(fastq);
        FastqReader reader(in);
        std::ostringstream sam;
        auto sopts = opts;
        sopts.batchReads = batch;
        const auto res = alignStreamToSam(w.ref, reader, sam, sopts);
        ASSERT_TRUE(res.ok()) << res.status().str();
        EXPECT_EQ(sam.str(), base_sam) << "batch=" << batch;
        EXPECT_EQ(res->mapped, base_res.mapped);
        EXPECT_EQ(res->unmapped, base_res.unmapped);
        EXPECT_EQ(res->degraded, base_res.degraded);
        EXPECT_EQ(res->failed, base_res.failed);
        EXPECT_EQ(res->reads, base_res.reads);
    }
}

} // namespace
} // namespace genax
