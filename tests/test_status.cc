/**
 * @file
 * Unit tests for the Status/StatusOr error channel, the
 * fault-injection registry, and the error behaviour of the streaming
 * readers' batch refill (records never split across batches; budget
 * exhaustion fails the whole batch).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hh"
#include "common/faultinject.hh"
#include "common/status.hh"
#include "io/fasta.hh"
#include "io/fastq.hh"

namespace genax {
namespace {

TEST(Status, DefaultIsOk)
{
    const Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_TRUE(s.message().empty());
}

TEST(Status, FactoriesCarryCodeAndMessage)
{
    EXPECT_TRUE(okStatus().ok());
    const Status s = invalidInputError("bad record");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::InvalidInput);
    EXPECT_EQ(s.message(), "bad record");
    EXPECT_EQ(ioError("x").code(), StatusCode::IoError);
    EXPECT_EQ(notFoundError("x").code(), StatusCode::NotFound);
    EXPECT_EQ(resourceExhaustedError("x").code(),
              StatusCode::ResourceExhausted);
    EXPECT_EQ(unavailableError("x").code(), StatusCode::Unavailable);
    EXPECT_EQ(failedPreconditionError("x").code(),
              StatusCode::FailedPrecondition);
    EXPECT_EQ(internalError("x").code(), StatusCode::Internal);
    EXPECT_TRUE(isEndOfStream(endOfStream()));
}

TEST(Status, CodeNamesAreStable)
{
    EXPECT_STREQ(statusCodeName(StatusCode::Ok), "ok");
    EXPECT_STREQ(statusCodeName(StatusCode::InvalidInput),
                 "invalid-input");
    EXPECT_STREQ(statusCodeName(StatusCode::IoError), "io-error");
    EXPECT_STREQ(statusCodeName(StatusCode::EndOfStream),
                 "end-of-stream");
}

TEST(Status, ContextChainsOutward)
{
    const Status inner = invalidInputError("truncated record");
    const Status outer =
        inner.withContext("FASTQ file 'r.fq'").withContext("align files");
    EXPECT_EQ(outer.code(), StatusCode::InvalidInput);
    EXPECT_EQ(outer.message(),
              "align files: FASTQ file 'r.fq': truncated record");
    EXPECT_EQ(outer.str(),
              "[invalid-input] align files: FASTQ file 'r.fq': "
              "truncated record");
    // OK statuses pass through withContext unchanged.
    EXPECT_TRUE(okStatus().withContext("ignored").ok());
}

TEST(Status, ErrnoAnnotation)
{
    errno = ENOENT;
    const Status s = ioErrorFromErrno("cannot open FASTA file", "/x/y");
    EXPECT_EQ(s.code(), StatusCode::IoError);
    EXPECT_NE(s.message().find("/x/y"), std::string::npos);
    EXPECT_NE(s.message().find("cannot open FASTA file"),
              std::string::npos);
}

TEST(StatusOr, HoldsValueOrStatus)
{
    const StatusOr<int> good = 42;
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);
    EXPECT_EQ(*good, 42);

    const StatusOr<int> bad = invalidInputError("nope");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::InvalidInput);
}

TEST(StatusOr, ValueOnErrorIsACheckViolation)
{
    ScopedCheckHandler guard(&throwingCheckHandler);
    const StatusOr<int> bad = ioError("gone");
    EXPECT_THROW(bad.value(), CheckViolation);
    // And building a StatusOr from an OK status is a programmer bug.
    EXPECT_THROW(StatusOr<int>{okStatus()}, CheckViolation);
}

TEST(StatusOr, MoveOutAndContext)
{
    StatusOr<std::string> s = std::string("payload");
    const std::string v = std::move(s).value();
    EXPECT_EQ(v, "payload");

    auto with = [](Status st) -> StatusOr<std::string> {
        return StatusOr<std::string>(std::move(st))
            .withContext("loading");
    };
    const auto bad = with(notFoundError("key"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().message(), "loading: key");
}

namespace trymacros {

Status
failInner()
{
    return resourceExhaustedError("budget spent");
}

Status
propagate()
{
    GENAX_TRY(okStatus());
    GENAX_TRY(failInner());
    return internalError("unreachable");
}

StatusOr<int>
half(int v)
{
    if (v % 2 != 0)
        return invalidInputError("odd");
    return v / 2;
}

StatusOr<int>
quarter(int v)
{
    GENAX_TRY_ASSIGN(const int h, half(v));
    GENAX_TRY_ASSIGN(const int q, half(h));
    return q;
}

} // namespace trymacros

TEST(StatusMacros, TryPropagatesFirstError)
{
    const Status s = trymacros::propagate();
    EXPECT_EQ(s.code(), StatusCode::ResourceExhausted);
    EXPECT_EQ(s.message(), "budget spent");
}

TEST(StatusMacros, TryAssignUnwrapsOrReturns)
{
    const auto ok = trymacros::quarter(8);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(*ok, 2);
    const auto bad = trymacros::quarter(6); // 6/2 = 3 is odd
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::InvalidInput);
}

TEST(FaultInject, DisarmedSitesNeverFire)
{
    FaultInjector &fi = FaultInjector::instance();
    fi.reset();
    EXPECT_FALSE(fi.anyArmed());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(faultFires(fault::kFastqRecord));
    EXPECT_EQ(fi.hits(fault::kFastqRecord), 0u);
}

TEST(FaultInject, FireOnNthHitIsExact)
{
    ScopedFaultPlan plan({{fault::kLaneIssue, {.fireOnNth = 3}}});
    EXPECT_FALSE(faultFires(fault::kLaneIssue));
    EXPECT_FALSE(faultFires(fault::kLaneIssue));
    EXPECT_TRUE(faultFires(fault::kLaneIssue));
    EXPECT_FALSE(faultFires(fault::kLaneIssue));
    FaultInjector &fi = FaultInjector::instance();
    EXPECT_EQ(fi.hits(fault::kLaneIssue), 4u);
    EXPECT_EQ(fi.fires(fault::kLaneIssue), 1u);
}

TEST(FaultInject, ProbabilityStreamIsDeterministic)
{
    auto run = [] {
        ScopedFaultPlan plan(
            {{fault::kDramStream, {.probability = 0.3, .seed = 99}}});
        std::vector<bool> fires;
        for (int i = 0; i < 200; ++i)
            fires.push_back(faultFires(fault::kDramStream));
        return fires;
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a, b);
    const auto fired =
        static_cast<size_t>(std::count(a.begin(), a.end(), true));
    EXPECT_GT(fired, 30u);
    EXPECT_LT(fired, 90u);
}

TEST(FaultInject, MaxFiresBoundsProbabilityRule)
{
    ScopedFaultPlan plan({{fault::kCamOverflow,
                           {.probability = 1.0, .maxFires = 2}}});
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        fired += faultFires(fault::kCamOverflow);
    EXPECT_EQ(fired, 2);
}

TEST(FaultInject, KeyScopeDecisionsAreOrderIndependent)
{
    // Inside a FaultKeyScope, firing is a pure function of (site
    // seed, scope key, within-scope ordinal): evaluating the same
    // work items in a different order produces identical per-item
    // decision vectors — the property the sharded system relies on.
    auto evaluate = [](const std::vector<u64> &item_order) {
        ScopedFaultPlan plan(
            {{fault::kLaneIssue, {.probability = 0.35, .seed = 5}}});
        std::map<u64, std::vector<bool>> decisions;
        for (const u64 item : item_order) {
            FaultKeyScope scope(item);
            for (int hit = 0; hit < 4; ++hit)
                decisions[item].push_back(
                    faultFires(fault::kLaneIssue));
        }
        return decisions;
    };
    const auto forward = evaluate({0, 1, 2, 3, 4, 5, 6, 7});
    const auto shuffled = evaluate({5, 2, 7, 0, 6, 1, 4, 3});
    EXPECT_EQ(forward, shuffled);
    bool any = false;
    for (const auto &[item, fires] : forward)
        for (const bool f : fires)
            any = any || f;
    EXPECT_TRUE(any) << "p=0.35 over 32 decisions should fire";
}

TEST(FaultInject, KeyScopeCountsNthHitPerScope)
{
    // n= counts hits within the scope, not process-wide: every work
    // item sees its own 2nd hit fire.
    ScopedFaultPlan plan({{fault::kCamOverflow, {.fireOnNth = 2}}});
    for (u64 item = 0; item < 3; ++item) {
        FaultKeyScope scope(FaultKeyScope::mixKey(9, item));
        EXPECT_FALSE(faultFires(fault::kCamOverflow)) << item;
        EXPECT_TRUE(faultFires(fault::kCamOverflow)) << item;
        EXPECT_FALSE(faultFires(fault::kCamOverflow)) << item;
    }
    FaultInjector &fi = FaultInjector::instance();
    EXPECT_EQ(fi.hits(fault::kCamOverflow), 9u);
    EXPECT_EQ(fi.fires(fault::kCamOverflow), 3u);
}

TEST(FaultInject, KeyScopeNestsAndRestores)
{
    // The ordinal stream restarts per scope instance, and the legacy
    // (unscoped) path keeps its process-wide hit counting once the
    // last scope exits.
    ScopedFaultPlan plan({{fault::kLaneIssue, {.fireOnNth = 2}}});
    {
        FaultKeyScope outer(1);
        EXPECT_FALSE(faultFires(fault::kLaneIssue)); // outer hit 1
        {
            FaultKeyScope inner(2);
            EXPECT_FALSE(faultFires(fault::kLaneIssue)); // inner hit 1
            EXPECT_TRUE(faultFires(fault::kLaneIssue));  // inner hit 2
        }
    }
    // Unscoped again: hits at this site so far = 3; the 2nd-hit rule
    // already passed process-wide, so no further legacy fire.
    EXPECT_FALSE(faultFires(fault::kLaneIssue));
    EXPECT_EQ(FaultInjector::instance().fires(fault::kLaneIssue), 1u);
}

TEST(FaultInject, ConfigureParsesSpecStrings)
{
    FaultInjector &fi = FaultInjector::instance();
    fi.reset();
    const Status st = fi.configure(
        "io.fastq.record:p=0.5,seed=7;sillax.lane.issue:n=2,max=1");
    ASSERT_TRUE(st.ok()) << st.str();
    const auto sites = fi.armedSites();
    ASSERT_EQ(sites.size(), 2u);
    EXPECT_EQ(sites[0], "io.fastq.record");
    EXPECT_EQ(sites[1], "sillax.lane.issue");
    EXPECT_FALSE(faultFires(fault::kLaneIssue));
    EXPECT_TRUE(faultFires(fault::kLaneIssue));
    fi.reset();
}

TEST(FaultInject, ConfigureRejectsBadSpecs)
{
    FaultInjector &fi = FaultInjector::instance();
    fi.reset();
    EXPECT_FALSE(fi.configure("no-colon-here").ok());
    EXPECT_FALSE(fi.configure("site:p=2.0").ok());
    EXPECT_FALSE(fi.configure("site:seed=1").ok()); // no p= or n=
    EXPECT_FALSE(fi.configure("site:what=1").ok());
    EXPECT_TRUE(fi.armedSites().empty());
    fi.reset();
}

// ------------------------------------------------------ nextBatch
//
// The streaming pipeline refills through nextBatch(); records must
// never split, reorder or re-parse across a batch boundary, whatever
// the input throws at the parser right at the boundary (CRLF,
// multi-line records, resync-on-'@' recovery, missing final newline).

TEST(BatchBoundary, FastaBatchesConcatenateToFullParse)
{
    // Multi-line records with CRLF endings; batch size 2 puts every
    // kind of line-continuation right at a refill boundary.
    const std::string text = ">r1\r\nACGT\r\nACGT\r\n"
                             ">r2\r\nTTTT\r\n"
                             ">r3\r\nGG\r\nGG\r\nGG\r\n"
                             ">r4\r\nCCCC\r\n"
                             ">r5\r\nAAAA"; // no final newline
    std::istringstream whole(text);
    const auto all = readFasta(whole);
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(all->size(), 5u);

    std::istringstream in(text);
    FastaReader reader(in);
    std::vector<FastaRecord> got;
    for (;;) {
        auto batch = reader.nextBatch(2);
        ASSERT_TRUE(batch.ok()) << batch.status().str();
        if (batch->empty())
            break;
        EXPECT_LE(batch->size(), 2u);
        for (auto &rec : *batch)
            got.push_back(std::move(rec));
    }
    ASSERT_EQ(got.size(), all->size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].name, (*all)[i].name) << i;
        EXPECT_EQ(got[i].seq, (*all)[i].seq) << i;
    }
    // A drained reader keeps reporting clean EOF, not an error.
    auto again = reader.nextBatch(2);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->empty());
}

TEST(BatchBoundary, FastqResyncSpansARefill)
{
    // The bad separator is the last record of batch 1, so the
    // resync-on-'@' hunt for the next header runs at the boundary:
    // the skip must consume 'garbage' exactly once, not once per
    // refill path.
    const std::string text = "@a\nACGT\n+\nIIII\n"
                             "@bad\nACGT\nnot-a-plus\nIIII\n"
                             "garbage line\n"
                             "@b\nTTTT\n+\nIIII\n"
                             "@c\nGGGG\n+\nIIII\n";
    ReaderOptions opts;
    opts.maxMalformed = 100;
    std::istringstream whole(text);
    ReaderStats whole_stats;
    const auto all = readFastq(whole, opts, &whole_stats);
    ASSERT_TRUE(all.ok());

    std::istringstream in(text);
    FastqReader reader(in, opts);
    std::vector<FastqRecord> got;
    for (;;) {
        auto batch = reader.nextBatch(2);
        ASSERT_TRUE(batch.ok()) << batch.status().str();
        if (batch->empty())
            break;
        for (auto &rec : *batch)
            got.push_back(std::move(rec));
    }
    ASSERT_EQ(got.size(), all->size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].name, (*all)[i].name) << i;
        EXPECT_EQ(got[i].seq, (*all)[i].seq) << i;
        EXPECT_EQ(got[i].qual, (*all)[i].qual) << i;
    }
    EXPECT_EQ(reader.stats().records, whole_stats.records);
    EXPECT_EQ(reader.stats().malformed, whole_stats.malformed);
}

TEST(BatchBoundary, FastqCrlfAndNoFinalNewline)
{
    const std::string text = "@a\r\nACGT\r\n+\r\nIIII\r\n"
                             "@b\r\nTT\r\n+\r\nII"; // truncation-free
    std::istringstream in(text);
    FastqReader reader(in);
    auto first = reader.nextBatch(1);
    ASSERT_TRUE(first.ok());
    ASSERT_EQ(first->size(), 1u);
    EXPECT_EQ((*first)[0].name, "a");
    auto second = reader.nextBatch(1);
    ASSERT_TRUE(second.ok());
    ASSERT_EQ(second->size(), 1u);
    EXPECT_EQ((*second)[0].name, "b");
    EXPECT_EQ((*second)[0].seq, encode("TT"));
    auto done = reader.nextBatch(1);
    ASSERT_TRUE(done.ok());
    EXPECT_TRUE(done->empty());
}

TEST(BatchBoundary, BudgetExhaustionFailsTheWholeBatch)
{
    // One good record, then junk past the zero budget: the second
    // refill must surface InvalidInput rather than a partial batch.
    const std::string text = "@a\nACGT\n+\nIIII\n"
                             "@bad\nACGT\n+\nIII\n" // length mismatch
                             "@b\nTTTT\n+\nIIII\n";
    std::istringstream in(text);
    ReaderOptions opts;
    opts.maxMalformed = 0;
    FastqReader reader(in, opts);
    auto first = reader.nextBatch(1);
    ASSERT_TRUE(first.ok());
    ASSERT_EQ(first->size(), 1u);
    auto second = reader.nextBatch(1);
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.status().code(), StatusCode::InvalidInput);
}


TEST(BatchBoundary, FastqTruncatedMidRecordAtRefill)
{
    // The stream dies mid-record (quality line missing) exactly when
    // the second refill starts: the truncated tail must surface as
    // one skipped-malformed record and a clean EOF, never as a
    // half-parsed record or a hang.
    const std::string text = "@a\nACGT\n+\nIIII\n"
                             "@b\nTTTT\n+\nIIII\n"
                             "@cut\nACGT\n+\n"; // EOF before quality
    ReaderOptions opts;
    opts.maxMalformed = 100;
    std::istringstream in(text);
    FastqReader reader(in, opts);
    auto first = reader.nextBatch(2);
    ASSERT_TRUE(first.ok());
    ASSERT_EQ(first->size(), 2u);
    auto second = reader.nextBatch(2);
    ASSERT_TRUE(second.ok()) << second.status().str();
    EXPECT_TRUE(second->empty());
    EXPECT_EQ(reader.stats().records, 2u);
    EXPECT_EQ(reader.stats().malformed, 1u);

    // With a zero malformed budget the same truncation is an error
    // on the refill that meets it, not a silent empty batch.
    std::istringstream strict_in(text);
    ReaderOptions strict;
    strict.maxMalformed = 0;
    FastqReader strict_reader(strict_in, strict);
    auto ok_batch = strict_reader.nextBatch(2);
    ASSERT_TRUE(ok_batch.ok());
    ASSERT_EQ(ok_batch->size(), 2u);
    auto bad_batch = strict_reader.nextBatch(2);
    ASSERT_FALSE(bad_batch.ok());
    EXPECT_EQ(bad_batch.status().code(), StatusCode::InvalidInput);
}

TEST(BatchBoundary, FastaTruncatedHeaderAtRefill)
{
    // A FASTA that ends right after a header: the empty-sequence
    // pseudo-record sits at the start of the second refill and must
    // be counted exactly once across the batch boundary.
    const std::string text = ">a\nACGT\nACGT\n"
                             ">b\nTTTT\n"
                             ">cut\n"; // EOF before any sequence
    ReaderOptions opts;
    opts.maxMalformed = 100;
    std::istringstream in(text);
    FastaReader reader(in, opts);
    std::vector<FastaRecord> got;
    for (;;) {
        auto batch = reader.nextBatch(2);
        ASSERT_TRUE(batch.ok()) << batch.status().str();
        if (batch->empty())
            break;
        for (auto &rec : *batch)
            got.push_back(std::move(rec));
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].name, "a");
    EXPECT_EQ(got[1].name, "b");
    EXPECT_EQ(reader.stats().malformed, 1u);
    // Whole-file parse agrees with the batched parse on both the
    // records kept and the malformed count.
    std::istringstream whole(text);
    ReaderStats whole_stats;
    const auto all = readFasta(whole, opts, &whole_stats);
    ASSERT_TRUE(all.ok());
    EXPECT_EQ(all->size(), got.size());
    EXPECT_EQ(whole_stats.malformed, reader.stats().malformed);
}

} // namespace
} // namespace genax
